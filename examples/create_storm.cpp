// The paper's motivating workload: an HPC application creating thousands
// of files in ONE directory, with the directory's entries and the files'
// inodes on different metadata servers (paper §I: "it therefore makes
// sense to spread the files within the directory across multiple MDSs and
// use the proposed protocol to handle distributed transactions").
//
// Runs the storm under a chosen protocol and reports throughput, latency
// distribution and device utilization.
//
//   $ ./create_storm [prn|prc|ep|1pc] [concurrency] [seconds]
//   $ ./create_storm all            # compare all four protocols
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.h"
#include "core/sweep.h"
#include "stats/table.h"

namespace {

bool parse_protocol(const char* s, opc::ProtocolKind& out) {
  if (std::strcmp(s, "prn") == 0) out = opc::ProtocolKind::kPrN;
  else if (std::strcmp(s, "prc") == 0) out = opc::ProtocolKind::kPrC;
  else if (std::strcmp(s, "ep") == 0) out = opc::ProtocolKind::kEP;
  else if (std::strcmp(s, "1pc") == 0) out = opc::ProtocolKind::kOnePC;
  else return false;
  return true;
}

void report(const opc::ExperimentResult& r, opc::ProtocolKind proto) {
  std::printf("protocol %-4s: %7.2f creates/s   committed=%llu aborted=%llu"
              "   p50=%s p99=%s   coordinator log device %4.1f%% busy\n",
              std::string(opc::protocol_name(proto)).c_str(),
              r.ops_per_second, static_cast<unsigned long long>(r.committed),
              static_cast<unsigned long long>(r.aborted),
              opc::to_string(r.latency.quantile_duration(0.5)).c_str(),
              opc::to_string(r.latency.quantile_duration(0.99)).c_str(),
              r.coordinator_disk_busy * 100.0);
  if (r.invariant_violations != 0) {
    std::printf("  !!! invariant violations:\n%s", r.violation_report.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opc;
  std::uint32_t concurrency = 100;
  std::int64_t seconds = 30;
  if (argc >= 3) concurrency = static_cast<std::uint32_t>(std::atoi(argv[2]));
  if (argc >= 4) seconds = std::atoll(argv[3]);

  auto config = [&](ProtocolKind p) {
    ExperimentConfig cfg = paper_fig6_config(p);
    cfg.source.concurrency = concurrency;
    cfg.run_for = Duration::seconds(seconds);
    cfg.warmup = Duration::seconds(std::max<std::int64_t>(1, seconds / 6));
    return cfg;
  };

  std::printf("create storm: %u concurrent clients, one hot directory, "
              "%lld simulated seconds\n\n", concurrency,
              static_cast<long long>(seconds));

  if (argc < 2 || std::strcmp(argv[1], "all") == 0) {
    std::vector<ProtocolKind> protos(std::begin(kAllProtocols),
                                     std::end(kAllProtocols));
    const auto results = ParallelSweep::map<ProtocolKind, ExperimentResult>(
        protos, [&](const ProtocolKind& p) {
          return run_create_storm(config(p));
        });
    for (std::size_t i = 0; i < protos.size(); ++i) {
      report(results[i], protos[i]);
    }
    std::printf("\n1PC speedup over PrN: %.2fx (paper: >1.55x)\n",
                results[3].ops_per_second / results[0].ops_per_second);
    return 0;
  }

  ProtocolKind proto;
  if (!parse_protocol(argv[1], proto)) {
    std::fprintf(stderr,
                 "usage: %s [prn|prc|ep|1pc|all] [concurrency] [seconds]\n",
                 argv[0]);
    return 2;
  }
  report(run_create_storm(config(proto)), proto);
  return 0;
}
