// Namespace explorer: a four-MDS cluster serving a mixed CREATE / DELETE /
// RENAME workload over a hash-partitioned tree — the paper's Figure 1
// world, exercised end to end.  Shows how operations split across servers
// and how the hybrid protocol selector dispatches them: local fast path
// for co-located ops, 1PC for two-server ops, PrN fallback for renames
// touching up to four servers.
//
//   $ ./namespace_explorer [ops] [seed]
#include <cstdio>
#include <cstdlib>

#include "mds/namespace.h"
#include "stats/table.h"
#include "workload/source.h"

int main(int argc, char** argv) {
  using namespace opc;
  const std::uint64_t total_ops =
      argc >= 2 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  const std::uint64_t seed =
      argc >= 3 ? std::strtoull(argv[2], nullptr, 10) : 7;

  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  ClusterConfig cfg;
  cfg.n_nodes = 4;
  cfg.protocol = ProtocolKind::kOnePC;
  cfg.record_history = true;
  cfg.seed = seed;
  Cluster cluster(sim, cfg, stats, trace);

  IdAllocator ids;
  HashPartitioner part(4);
  NamespacePlanner planner(part, OpCosts{});
  std::vector<ObjectId> dirs;
  for (int i = 0; i < 8; ++i) {
    const ObjectId dir = ids.next();
    dirs.push_back(dir);
    cluster.bootstrap_directory(dir, part.home_of(dir));
  }

  ThroughputMeter meter;
  SourceConfig scfg;
  scfg.concurrency = 8;
  scfg.max_ops = total_ops;
  MixedSource source(cluster.env(), cluster, scfg, meter, stats, planner, ids, dirs,
                     MixedSource::Mix{0.55, 0.30}, seed);
  source.start();
  sim.run();

  std::printf("=== namespace explorer: %llu mixed operations over 4 MDSs "
              "===\n\n",
              static_cast<unsigned long long>(total_ops));

  TextTable placement({"server", "inodes", "dentries", "log device busy"});
  for (std::uint32_t n = 0; n < 4; ++n) {
    placement.add_row(
        {NodeId(n).str(),
         std::to_string(cluster.store(NodeId(n)).stable_inode_count()),
         std::to_string(cluster.store(NodeId(n)).stable_dentry_count()),
         to_string(cluster.storage().partition(NodeId(n)).device()
                       .busy_time())});
  }
  std::fputs(placement.render().c_str(), stdout);

  std::printf("\noperation mix submitted:  CREATE=%lld DELETE=%lld "
              "RENAME=%lld\n",
              static_cast<long long>(stats.get("acp.submitted.CREATE")),
              static_cast<long long>(stats.get("acp.submitted.DELETE")),
              static_cast<long long>(stats.get("acp.submitted.RENAME")));
  std::printf("dispatch:  local fast-path=%lld  distributed=%lld "
              "(renames wider than two MDSs ran as PrN)\n",
              static_cast<long long>(stats.get("acp.local")),
              static_cast<long long>(stats.get("acp.submitted") -
                                     stats.get("acp.local")));
  std::printf("committed=%llu aborted=%llu   elapsed(sim)=%s   %.1f ops/s\n",
              static_cast<unsigned long long>(source.committed()),
              static_cast<unsigned long long>(source.aborted()),
              to_string(sim.now()).c_str(),
              static_cast<double>(source.committed()) /
                  sim.now().to_seconds_f());

  const auto violations = cluster.check_invariants(dirs);
  std::printf("invariants: %s\n",
              violations.empty() ? "clean" : render_violations(violations).c_str());
  const bool serializable = cluster.history()->serializable();
  std::printf("committed history conflict-serializable: %s\n",
              serializable ? "yes" : "NO");
  return (violations.empty() && serializable) ? 0 : 1;
}
