// Quickstart: the smallest complete use of the library.
//
// Builds a two-MDS cluster on the paper's parameters, performs one
// distributed CREATE and one distributed DELETE with the One Phase Commit
// protocol, and shows what the protocol actually did (the full event
// trace) plus proof that both servers agree.
//
//   $ ./quickstart
#include <cstdio>

#include "cluster/cluster.h"
#include "mds/namespace.h"

int main() {
  using namespace opc;

  // 1. A simulator plus shared observability objects.
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(/*enabled=*/true);

  // 2. Two metadata servers over a 100 us network with 400 KB/s log
  //    devices on shared storage — the paper's evaluation substrate.
  ClusterConfig cfg;
  cfg.n_nodes = 2;
  cfg.protocol = ProtocolKind::kOnePC;
  Cluster cluster(sim, cfg, stats, trace);

  // 3. A namespace: the directory lives on mds0, new files' inodes on mds1,
  //    so every CREATE/DELETE is a two-server distributed transaction.
  IdAllocator ids;
  const ObjectId home_dir = ids.next();
  PinnedPartitioner placement(2, NodeId(1));
  placement.assign(home_dir, NodeId(0));
  cluster.bootstrap_directory(home_dir, NodeId(0));
  NamespacePlanner planner(placement, OpCosts{});

  // 4. CREATE /home/paper.pdf.
  const ObjectId inode = ids.next();
  cluster.submit(planner.plan_create(home_dir, "paper.pdf", inode, false),
                 [&](TxnId id, TxnOutcome outcome) {
                   std::printf("client: CREATE paper.pdf -> %s (txn %llu, "
                               "t=%s)\n",
                               outcome == TxnOutcome::kCommitted ? "committed"
                                                                 : "aborted",
                               static_cast<unsigned long long>(id),
                               to_string(sim.now()).c_str());
                 });
  sim.run();

  // 5. Both servers agree, durably.
  std::printf("mds0 dentry:  paper.pdf -> inode %llu\n",
              static_cast<unsigned long long>(
                  cluster.store(NodeId(0))
                      .stable_lookup(home_dir, "paper.pdf")
                      .value()
                      .value()));
  std::printf("mds1 inode:   nlink=%u\n",
              cluster.store(NodeId(1)).stable_inode(inode)->nlink);

  // 6. DELETE it again.
  cluster.submit(planner.plan_delete(home_dir, "paper.pdf", inode),
                 [&](TxnId, TxnOutcome outcome) {
                   std::printf("client: DELETE paper.pdf -> %s (t=%s)\n",
                               outcome == TxnOutcome::kCommitted ? "committed"
                                                                 : "aborted",
                               to_string(sim.now()).c_str());
                 });
  sim.run();

  std::printf("after delete: dentry %s, inode %s\n",
              cluster.store(NodeId(0)).stable_lookup(home_dir, "paper.pdf")
                      .has_value()
                  ? "still there (BUG)"
                  : "gone",
              cluster.store(NodeId(1)).stable_inode(inode).has_value()
                  ? "still there (BUG)"
                  : "gone");

  const auto violations = cluster.check_invariants({home_dir});
  std::printf("namespace invariants: %s\n\n",
              violations.empty() ? "clean" : "VIOLATED");

  // 7. What actually happened, event by event.
  std::printf("--- full event trace ---\n%s", trace.render().c_str());
  return violations.empty() ? 0 : 1;
}
