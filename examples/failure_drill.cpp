// Failure drill: walks through the 1PC recovery scenarios from paper
// §III-C with narration, showing the shared-log architecture doing its
// job:
//
//   drill 1 — worker dies AFTER committing (reply lost): the coordinator
//             fences it, finds COMMITTED in its log partition, and commits.
//   drill 2 — worker dies BEFORE committing: the fenced log is empty, so
//             the coordinator aborts; nothing leaks.
//   drill 3 — network partition (split brain): the worker is alive but
//             unreachable; STONITH power-cycles it so the log read is safe.
//   drill 4 — coordinator dies after STARTED: on reboot it re-executes the
//             transaction from its redo record.
//
//   $ ./failure_drill
#include <cstdio>

#include "cluster/cluster.h"
#include "mds/namespace.h"

namespace {

using namespace opc;

struct Drill {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace{true};
  std::unique_ptr<Cluster> cluster;
  IdAllocator ids;
  std::unique_ptr<PinnedPartitioner> part;
  std::unique_ptr<NamespacePlanner> planner;
  ObjectId dir;

  explicit Drill(bool heartbeats) {
    ClusterConfig cfg;
    cfg.n_nodes = 2;
    cfg.protocol = ProtocolKind::kOnePC;
    cfg.acp.response_timeout = Duration::millis(300);
    cfg.acp.retry_interval = Duration::millis(100);
    if (heartbeats) {
      cfg.heartbeat.enabled = true;
      cfg.heartbeat.interval = Duration::millis(50);
      cfg.heartbeat.suspicion_timeout = Duration::millis(200);
    }
    cluster = std::make_unique<Cluster>(sim, cfg, stats, trace);
    dir = ids.next();
    part = std::make_unique<PinnedPartitioner>(2, NodeId(1));
    part->assign(dir, NodeId(0));
    cluster->bootstrap_directory(dir, NodeId(0));
    planner = std::make_unique<NamespacePlanner>(*part, OpCosts{});
  }

  void conclude(const char* name, ObjectId inode, TxnOutcome outcome) {
    const bool dentry =
        cluster->store(NodeId(0)).stable_lookup(dir, name).has_value();
    const bool ino = cluster->store(NodeId(1)).stable_inode(inode).has_value();
    std::printf("  outcome reported to client: %s\n",
                outcome == TxnOutcome::kCommitted  ? "committed"
                : outcome == TxnOutcome::kAborted ? "aborted"
                                                   : "none (client timed out)");
    std::printf("  mds0 dentry present: %s | mds1 inode present: %s -> %s\n",
                dentry ? "yes" : "no", ino ? "yes" : "no",
                dentry == ino ? "ATOMIC" : "TORN (BUG!)");
    const auto violations = cluster->check_invariants({dir});
    std::printf("  invariants: %s\n",
                violations.empty() ? "clean"
                                   : render_violations(violations).c_str());
    std::printf("  key recovery events:\n");
    for (const TraceEvent& e : trace.events()) {
      if (e.kind == TraceKind::kFence || e.kind == TraceKind::kRecoveryStep ||
          e.kind == TraceKind::kCrash || e.kind == TraceKind::kReboot) {
        std::printf("    [%9.1fms] %-8s %-6s %s\n", e.at.to_millis_f(),
                    std::string(trace_kind_name(e.kind)).c_str(),
                    e.actor.c_str(), e.detail.c_str());
      }
    }
    std::printf("\n");
  }
};

void drill_worker_dies_after_commit() {
  std::printf("=== drill 1: worker dies after committing, reply lost ===\n");
  Drill d(/*heartbeats=*/false);
  const ObjectId inode = d.ids.next();
  TxnOutcome outcome = TxnOutcome::kPending;
  d.cluster->submit(d.planner->plan_create(d.dir, "a", inode, false),
                    [&](TxnId, TxnOutcome o) { outcome = o; });
  // The worker's commit force lands at ~40 ms; cut the link first so the
  // UPDATED reply is lost, then kill the node.
  d.sim.schedule_after(Duration::millis(40), [&] {
    d.cluster->partition_pair(NodeId(0), NodeId(1));
  });
  d.sim.schedule_after(Duration::millis(45), [&] {
    d.cluster->crash_node(NodeId(1));
    d.cluster->heal_pair(NodeId(0), NodeId(1));
  });
  d.sim.run_until(SimTime::zero() + Duration::seconds(30));
  d.conclude("a", inode, outcome);
}

void drill_worker_dies_before_commit() {
  std::printf("=== drill 2: worker dies before its commit is durable ===\n");
  Drill d(/*heartbeats=*/false);
  const ObjectId inode = d.ids.next();
  TxnOutcome outcome = TxnOutcome::kPending;
  d.cluster->submit(d.planner->plan_create(d.dir, "b", inode, false),
                    [&](TxnId, TxnOutcome o) { outcome = o; });
  d.cluster->schedule_crash(NodeId(1), Duration::millis(30));
  d.sim.run_until(SimTime::zero() + Duration::seconds(30));
  d.conclude("b", inode, outcome);
}

void drill_split_brain() {
  std::printf("=== drill 3: network partition — the worker is ALIVE, the "
              "coordinator cannot know ===\n");
  Drill d(/*heartbeats=*/true);
  const ObjectId inode = d.ids.next();
  TxnOutcome outcome = TxnOutcome::kPending;
  d.cluster->submit(d.planner->plan_create(d.dir, "c", inode, false),
                    [&](TxnId, TxnOutcome o) { outcome = o; });
  d.sim.schedule_after(Duration::millis(25), [&] {
    d.cluster->partition_pair(NodeId(0), NodeId(1));
  });
  d.sim.schedule_after(Duration::seconds(2), [&] {
    d.cluster->heal_pair(NodeId(0), NodeId(1));
  });
  d.sim.run_until(SimTime::zero() + Duration::seconds(30));
  d.conclude("c", inode, outcome);
}

void drill_coordinator_redo() {
  std::printf("=== drill 4: coordinator dies mid-transaction, re-executes "
              "from its redo record ===\n");
  Drill d(/*heartbeats=*/false);
  const ObjectId inode = d.ids.next();
  TxnOutcome outcome = TxnOutcome::kPending;
  d.cluster->submit(d.planner->plan_create(d.dir, "d", inode, false),
                    [&](TxnId, TxnOutcome o) { outcome = o; });
  // STARTED+REDO is durable at 20 ms; kill the coordinator right after.
  d.cluster->schedule_crash(NodeId(0), Duration::millis(22),
                            /*reboot_after=*/Duration::millis(500));
  d.sim.run_until(SimTime::zero() + Duration::seconds(30));
  d.conclude("d", inode, outcome);
}

}  // namespace

int main() {
  drill_worker_dies_after_commit();
  drill_worker_dies_before_commit();
  drill_split_brain();
  drill_coordinator_redo();
  std::printf("all drills complete.\n");
  return 0;
}
