// A scripted file-system session against the metadata cluster, through the
// path-based client API.  Every mutation below runs the full 1PC commit
// machinery across four metadata servers; every read resolves the path
// over the simulated network.  The tree is printed via recursive readdir.
//
//   $ ./fs_shell
#include <cstdio>
#include <functional>

#include "fs/client.h"

namespace {

using namespace opc;

struct Shell {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace{false};
  std::unique_ptr<Cluster> cluster;
  IdAllocator ids;
  std::unique_ptr<HashPartitioner> part;
  std::unique_ptr<NamespacePlanner> planner;
  ObjectId root;
  std::unique_ptr<FsClient> fs;

  Shell() {
    ClusterConfig cc;
    cc.n_nodes = 4;
    cc.protocol = ProtocolKind::kOnePC;
    cluster = std::make_unique<Cluster>(sim, cc, stats, trace);
    part = std::make_unique<HashPartitioner>(4);
    planner = std::make_unique<NamespacePlanner>(*part, OpCosts{});
    root = ids.next();
    cluster->bootstrap_directory(root, part->home_of(root));
    fs = std::make_unique<FsClient>(cluster->env(), *cluster, *planner, ids, root,
                                    NodeId(10));
  }

  void mutate(const char* verb, const std::string& path,
              std::function<void(FsClient::StatusCb)> op) {
    const SimTime t0 = sim.now();
    FsStatus st = FsStatus::kAborted;
    op([&](FsStatus s) { st = s; });
    sim.run();
    std::printf("$ %-6s %-28s -> %-9s (%s)\n", verb, path.c_str(),
                fs_status_name(st), to_string(sim.now() - t0).c_str());
  }

  void tree(const std::string& path, int depth) {
    std::vector<std::pair<std::string, ObjectId>> entries;
    fs->readdir(path, [&](FsStatus, auto e) { entries = std::move(e); });
    sim.run();
    for (const auto& [name, child] : entries) {
      Inode ino;
      const std::string child_path =
          (path == "/" ? "" : path) + "/" + name;
      fs->stat(child_path, [&](FsStatus, Inode i) { ino = i; });
      sim.run();
      std::printf("%*s%s%s   [inode %llu on %s]\n", depth * 2, "",
                  name.c_str(), ino.is_dir ? "/" : "",
                  static_cast<unsigned long long>(ino.id.value()),
                  part->home_of(ino.id).str().c_str());
      if (ino.is_dir) tree(child_path, depth + 1);
    }
  }
};

}  // namespace

int main() {
  Shell sh;
  std::printf("four metadata servers, One Phase Commit, hash-partitioned "
              "namespace\n\n");

  sh.mutate("mkdir", "/home", [&](auto cb) { sh.fs->mkdir("/home", cb); });
  sh.mutate("mkdir", "/home/ada", [&](auto cb) { sh.fs->mkdir("/home/ada", cb); });
  sh.mutate("mkdir", "/tmp", [&](auto cb) { sh.fs->mkdir("/tmp", cb); });
  sh.mutate("create", "/home/ada/notes.txt",
            [&](auto cb) { sh.fs->create("/home/ada/notes.txt", cb); });
  sh.mutate("create", "/tmp/scratch",
            [&](auto cb) { sh.fs->create("/tmp/scratch", cb); });
  sh.mutate("create", "/tmp/scratch",
            [&](auto cb) { sh.fs->create("/tmp/scratch", cb); });  // Exists
  sh.mutate("mv", "/tmp/scratch -> /home/ada/draft", [&](auto cb) {
    sh.fs->rename("/tmp/scratch", "/home/ada/draft", cb);
  });
  sh.mutate("rm", "/home/ada (non-empty)",
            [&](auto cb) { sh.fs->unlink("/home/ada", cb); });  // Aborted
  sh.mutate("rm", "/home/ada/draft",
            [&](auto cb) { sh.fs->unlink("/home/ada/draft", cb); });

  std::printf("\nfinal tree (each entry shows which MDS hosts its inode):\n/\n");
  sh.tree("/", 1);

  const auto violations = sh.cluster->check_invariants({sh.root});
  std::printf("\nnamespace invariants: %s\n",
              violations.empty() ? "clean" : render_violations(violations).c_str());
  std::printf("metadata read RPCs served: %lld\n",
              static_cast<long long>(sh.stats.get("fs.rpcs")));
  return violations.empty() ? 0 : 1;
}
