// Ablation F: WAL group commit.
//
// Paper §VI: the MDS can "interleave expensive log writes with many
// operations in order to reduce the impact of the protocol on the
// performance".  Group commit is the WAL-level half of that idea: forces
// that arrive while one is in flight coalesce into a single device write.
//
// Two regimes are measured:
//   * 1 hot directory  — the paper's storm.  The directory lock serializes
//     the coordinator, so there is almost nothing to coalesce: group
//     commit is expected to be a no-op.  (The lock-level half of §VI —
//     transaction batching — is Ablation D.)
//   * 8 hot directories — independent directories on one coordinator
//     contend on its log device; coalescing their STARTED/commit forces
//     into shared blocks multiplies throughput.
#include <cstdio>

#include "core/experiment.h"
#include "core/sweep.h"
#include "smoke.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace opc;
  const bool smoke = benchutil::smoke_mode(argc, argv);
  struct Cell {
    ProtocolKind proto;
    std::uint32_t dirs;
    bool group_commit;
  };
  std::vector<Cell> cells;
  for (ProtocolKind p : kAllProtocols) {
    for (std::uint32_t dirs : {1u, 8u}) {
      cells.push_back({p, dirs, false});
      cells.push_back({p, dirs, true});
    }
  }
  // Keep one off/on pair: the row loop below walks cells two at a time.
  if (smoke) benchutil::smoke_truncate(cells, 2);
  const auto results = ParallelSweep::map<Cell, ExperimentResult>(
      cells, [smoke](const Cell& c) {
        ExperimentConfig cfg = paper_fig6_config(c.proto);
        cfg.run_for = Duration::seconds(20);
        cfg.warmup = Duration::seconds(4);
        if (smoke) benchutil::smoke_window(cfg);
        cfg.n_directories = c.dirs;
        cfg.cluster.wal.group_commit = c.group_commit;
        return run_create_storm(cfg);
      });

  std::printf("=== Ablation F: WAL group commit (paper SVI: interleave log "
              "writes with many operations) ===\n\n");
  TextTable table({"protocol", "hot dirs", "ops/s (individual)",
                   "ops/s (group commit)", "gain", "coalesced forces"});
  bool clean = true;
  for (std::size_t i = 0; i < cells.size(); i += 2) {
    const auto& off = results[i];
    const auto& on = results[i + 1];
    clean = clean && off.invariant_violations == 0 &&
            on.invariant_violations == 0;
    table.add_row({std::string(protocol_name(cells[i].proto)),
                   std::to_string(cells[i].dirs),
                   TextTable::num(off.ops_per_second, 2),
                   TextTable::num(on.ops_per_second, 2),
                   TextTable::num(
                       (on.ops_per_second / off.ops_per_second - 1) * 100.0,
                       1) + "%",
                   std::to_string(on.stats.get("wal.force.coalesced"))});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nall runs invariant-clean: %s\n", clean ? "yes" : "NO");
  return clean ? 0 : 1;
}
