// Ablation A: network latency sensitivity.
//
// The paper's setting (100 µs, 400 KB/s logs) is disk-dominated, so the
// protocols' message-count differences barely move throughput.  As latency
// approaches the forced-write cost, the message savings of EP and 1PC
// become visible in the throughput gap — this sweep locates that crossover.
#include "ablation_common.h"
#include "smoke.h"

int main(int argc, char** argv) {
  using namespace opc;
  const bool smoke = benchutil::smoke_mode(argc, argv);
  std::vector<benchutil::SweepPoint> points;
  for (std::int64_t us : {10LL, 100LL, 1000LL, 5000LL, 20000LL}) {
    benchutil::SweepPoint p;
    p.label = "net latency " + to_string(Duration::micros(us));
    p.cfg = paper_fig6_config(ProtocolKind::kPrN);
    p.cfg.cluster.net.latency = Duration::micros(us);
    p.cfg.run_for = Duration::seconds(20);
    p.cfg.warmup = Duration::seconds(4);
    if (smoke) benchutil::smoke_window(p.cfg);
    points.push_back(std::move(p));
  }
  if (smoke) benchutil::smoke_truncate(points, 1);
  return benchutil::run_protocol_sweep(
      "Ablation A: throughput vs one-way network latency "
      "(Fig. 6 workload otherwise)",
      std::move(points));
}
