// Ablation B: log-device bandwidth sensitivity.
//
// The paper's 400 KB/s shared-storage figure makes forced log writes the
// dominant cost (20 ms per 8 KiB block), which is exactly where 1PC's
// fewer-critical-writes design pays.  Faster devices shrink every
// protocol's write cost; once the network round trip rivals the write
// time, the gap narrows — the sweep shows where.
#include "ablation_common.h"
#include "smoke.h"

int main(int argc, char** argv) {
  using namespace opc;
  const bool smoke = benchutil::smoke_mode(argc, argv);
  struct Bw {
    double bytes_per_second;
    const char* label;
  };
  const Bw sweeps[] = {
      {100.0 * 1024, "100 KB/s"},  {400.0 * 1024, "400 KB/s (paper)"},
      {1600.0 * 1024, "1.6 MB/s"}, {6400.0 * 1024, "6.4 MB/s"},
      {25.0 * 1024 * 1024, "25 MB/s"}, {100.0 * 1024 * 1024, "100 MB/s"},
  };
  std::vector<benchutil::SweepPoint> points;
  for (const Bw& bw : sweeps) {
    benchutil::SweepPoint p;
    p.label = std::string("log device ") + bw.label;
    p.cfg = paper_fig6_config(ProtocolKind::kPrN);
    p.cfg.cluster.disk.bytes_per_second = bw.bytes_per_second;
    p.cfg.run_for = Duration::seconds(20);
    p.cfg.warmup = Duration::seconds(4);
    if (smoke) benchutil::smoke_window(p.cfg);
    points.push_back(std::move(p));
  }
  if (smoke) benchutil::smoke_truncate(points, 1);
  return benchutil::run_protocol_sweep(
      "Ablation B: throughput vs log-device bandwidth "
      "(Fig. 6 workload otherwise)",
      std::move(points));
}
