// Table I reproduction: per-protocol log-write and message counts measured
// from one instrumented distributed CREATE.  The paper's figures are an
// analytical property of the protocols; here they are *measured* from the
// simulation and must match exactly.
#include <cstdio>

#include "core/timeline.h"
#include "smoke.h"
#include "stats/table.h"

namespace {

struct PaperRow {
  opc::ProtocolKind proto;
  int sync_total, async_total, sync_crit, async_crit, msgs, msgs_crit;
};

constexpr PaperRow kPaper[] = {
    {opc::ProtocolKind::kPrN, 5, 1, 4, 1, 4, 4},
    {opc::ProtocolKind::kPrC, 4, 1, 3, 0, 3, 2},
    {opc::ProtocolKind::kEP, 4, 1, 3, 0, 1, 0},
    {opc::ProtocolKind::kOnePC, 3, 1, 2, 0, 1, 0},
};

std::string pair_str(int a, int b) {
  return "(" + std::to_string(a) + ", " + std::to_string(b) + ")";
}

}  // namespace

int main(int argc, char** argv) {
  // Each row is already a single instrumented create, and trimming rows
  // would weaken the paper-exactness check — smoke is accepted as a no-op.
  (void)opc::benchutil::smoke_mode(argc, argv);
  std::printf("=== Table I: protocol costs for one distributed namespace "
              "operation ===\n");
  std::printf("(messages counted beyond the base UPDATE_REQ/UPDATED pair, "
              "as in the paper)\n\n");

  opc::TextTable table({"protocol", "total log writes (sync, async)",
                        "critical-path writes (sync, async)", "total msgs",
                        "critical msgs", "matches paper"});
  bool all_match = true;
  for (const PaperRow& row : kPaper) {
    const opc::TimelineResult r = opc::run_single_create(row.proto);
    const bool match =
        r.sync_writes == row.sync_total && r.async_writes == row.async_total &&
        r.sync_writes_critical == row.sync_crit &&
        r.async_writes_critical == row.async_crit &&
        r.extra_msgs == row.msgs && r.extra_msgs_critical == row.msgs_crit;
    all_match = all_match && match;
    table.add_row({std::string(opc::protocol_name(row.proto)),
                   pair_str(r.sync_writes, r.async_writes),
                   pair_str(r.sync_writes_critical, r.async_writes_critical),
                   std::to_string(r.extra_msgs),
                   std::to_string(r.extra_msgs_critical),
                   match ? "yes" : "NO"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nall rows match the paper's Table I: %s\n",
              all_match ? "yes" : "NO");
  return all_match ? 0 : 1;
}
