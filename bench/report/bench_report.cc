#include "report/bench_report.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>

#include <map>

#include "cluster/cluster.h"
#include "mds/namespace.h"
#include "obs/assembler.h"
#include "obs/phase.h"
#include "report/alloc_hook.h"
#include "sim/simulator.h"
#include "stats/table.h"
#include "workload/source.h"

namespace opc::benchreport {
namespace {

using Clock = std::chrono::steady_clock;

/// One measured region: runs `body` (which returns the number of kernel
/// events it dispatched) repeatedly until ~0.4 s of wall clock accumulates,
/// then reports the aggregate rates.  Smoke mode runs the body exactly once
/// — the point is executing the code path, not a stable number.
BenchSample measure(const std::string& name, bool smoke,
                    const std::function<std::uint64_t()>& body) {
  BenchSample s;
  s.name = name;
  const double min_wall = smoke ? 0.0 : 0.4;
  // Untimed warm-up pass: first-touch page faults and lazy init land here.
  if (!smoke) body();
  const std::uint64_t allocs0 = allocation_count();
  const Clock::time_point t0 = Clock::now();
  double elapsed = 0;
  do {
    s.events += body();
    elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  } while (elapsed < min_wall);
  const std::uint64_t allocs = allocation_count() - allocs0;
  s.wall_seconds = elapsed;
  if (s.events > 0 && elapsed > 0) {
    s.events_per_sec = static_cast<double>(s.events) / elapsed;
    s.ns_per_event = elapsed * 1e9 / static_cast<double>(s.events);
    s.allocs_per_event =
        static_cast<double>(allocs) / static_cast<double>(s.events);
  }
  return s;
}

/// The dominant cycle in isolation: schedule N small-capture callbacks,
/// drain the queue.  Mirrors BM_EventScheduleDispatch/16384.
std::uint64_t schedule_dispatch_pass(int batch) {
  Simulator sim;
  std::uint64_t sink = 0;
  for (int i = 0; i < batch; ++i) {
    sim.schedule_after(Duration::nanos(i % 977), [&sink] { ++sink; });
  }
  sim.run();
  SIM_CHECK(sink == static_cast<std::uint64_t>(batch));
  return sim.dispatched_events();
}

/// Timer churn: every event is scheduled, cancelled and rescheduled —
/// the timeout-bookkeeping pattern of src/acp and src/wal.
std::uint64_t cancel_churn_pass(int batch) {
  Simulator sim;
  std::vector<EventHandle> handles;
  handles.reserve(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    handles.push_back(sim.schedule_after(Duration::micros(1), [] {}));
  }
  for (EventHandle& h : handles) sim.cancel(h);
  for (int i = 0; i < batch; ++i) {
    sim.schedule_after(Duration::micros(2), [] {});
  }
  sim.run();
  return static_cast<std::uint64_t>(batch) * 2;  // cancel + dispatch ops
}

/// Fixed-seed Figure-6 storm (2 MDSs, 100 concurrent creates): the
/// workload whose wall-clock speed bounds every sweep in the repo.
/// Constructed once per bench row, then stepped over successive windows of
/// simulated time, so the row reports the steady-state storm — the regime
/// every sweep actually spends its wall clock in — rather than re-paying
/// construction and the cold-start issue burst on every pass.
class StormFixture {
 public:
  explicit StormFixture(ProtocolKind proto, std::uint32_t participants = 2)
      : trace_(false), part_(std::max<std::uint32_t>(2, participants),
                             NodeId(1)),
        planner_(part_, OpCosts{}) {
    cc_.n_nodes = std::max<std::uint32_t>(2, participants);
    cc_.protocol = proto;
    cluster_ = std::make_unique<Cluster>(sim_, cc_, stats_, trace_);
    dir_ = ids_.next();
    part_.assign(dir_, NodeId(0));
    cluster_->bootstrap_directory(dir_, NodeId(0));
    scfg_.concurrency = 100;
    // participants == 2 keeps the legacy plan_create path; wider storms
    // spread one create per worker node (same shape as run_create_storm).
    std::vector<NodeId> spread;
    for (std::uint32_t w = 1; participants > 2 && w < participants; ++w) {
      spread.push_back(NodeId(w));
    }
    source_ = std::make_unique<CreateStormSource>(
        cluster_->env(), *cluster_, scfg_, meter_, stats_, planner_, ids_,
        dir_, "f", /*batch=*/1, std::move(spread));
    source_->start();
  }

  /// Advances one window of simulated time.  Returns kernel events
  /// dispatched in the window; *out_sim_ops gets the window's
  /// simulated-time op rate.
  std::uint64_t step(Duration window, double* out_sim_ops) {
    const std::uint64_t ev0 = sim_.dispatched_events();
    const std::uint64_t ops0 = meter_.measured_events();
    deadline_ = deadline_ + window;
    sim_.run_until(deadline_);
    if (out_sim_ops != nullptr) {
      *out_sim_ops = static_cast<double>(meter_.measured_events() - ops0) /
                     window.to_seconds_f();
    }
    return sim_.dispatched_events() - ev0;
  }

 private:
  Simulator sim_;
  StatsRegistry stats_;
  TraceRecorder trace_;
  ClusterConfig cc_;
  std::unique_ptr<Cluster> cluster_;
  IdAllocator ids_;
  ObjectId dir_;
  PinnedPartitioner part_;
  NamespacePlanner planner_;
  ThroughputMeter meter_;
  SourceConfig scfg_;
  std::unique_ptr<CreateStormSource> source_;
  SimTime deadline_ = SimTime::zero();
};

/// Hot-counter updates through StatsRegistry: after the first touch of a
/// name the transparent-comparator lookup must be allocation-free (the
/// whole point of CounterMap using std::less<>).  Asserted here so the
/// bench smoke — which tier-1 runs via `ctest -L bench` — catches a
/// regression to per-update std::string temporaries.
std::uint64_t stats_counter_pass(int batch) {
  StatsRegistry stats;
  static constexpr std::string_view kHot[] = {
      "acp.msg.total", "wal.force.count", "lock.grants.immediate",
      "net.delivered"};
  for (const std::string_view name : kHot) stats.add(name, 0);
  const std::uint64_t allocs0 = allocation_count();
  for (int i = 0; i < batch; ++i) {
    stats.add(kHot[i & 3]);
  }
  const std::uint64_t delta = allocation_count() - allocs0;
  SIM_CHECK_MSG(delta == 0, "hot counter updates must not allocate");
  SIM_CHECK(stats.get("acp.msg.total") > 0);
  return static_cast<std::uint64_t>(batch);
}

}  // namespace

std::vector<PhaseBreakdownSample> storm_phase_breakdown(double sim_seconds) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(true);  // instrumented pass, never a timed region
  obs::PhaseLog phases;
  ClusterConfig cc;
  cc.n_nodes = 2;
  cc.protocol = ProtocolKind::kOnePC;
  cc.phase_log = &phases;
  Cluster cluster(sim, cc, stats, trace);
  IdAllocator ids;
  const ObjectId dir = ids.next();
  PinnedPartitioner part(2, NodeId(1));
  part.assign(dir, NodeId(0));
  cluster.bootstrap_directory(dir, NodeId(0));
  NamespacePlanner planner(part, OpCosts{});
  ThroughputMeter meter;
  SourceConfig scfg;
  scfg.concurrency = 100;
  CreateStormSource source(cluster.env(), cluster, scfg, meter, stats, planner, ids,
                           dir);
  source.start();
  sim.run_until(SimTime::zero() + Duration::from_seconds_f(sim_seconds));

  const obs::SpanSet spans = obs::assemble_spans(trace.events(), &phases);
  std::map<std::string, PhaseBreakdownSample> agg;
  for (const obs::Span& s : spans.spans) {
    if (s.kind != obs::SpanKind::kPhase) continue;
    PhaseBreakdownSample& row = agg[s.name];
    row.phase = s.name;
    row.count += 1;
    row.total_ns += s.duration_ns();
  }
  std::vector<PhaseBreakdownSample> out;
  for (auto& [name, row] : agg) {
    row.mean_ns = row.count > 0 ? row.total_ns / row.count : 0;
    out.push_back(row);
  }
  return out;
}

std::vector<BenchSample> run_kernel_report(const ReportOptions& opt) {
  std::vector<BenchSample> out;
  const int batch = opt.smoke ? 256 : 16384;
  out.push_back(measure("kernel_schedule_dispatch_16384", opt.smoke,
                        [batch] { return schedule_dispatch_pass(batch); }));
  const int churn = opt.smoke ? 256 : 4096;
  out.push_back(measure("kernel_cancel_churn_4096", opt.smoke,
                        [churn] { return cancel_churn_pass(churn); }));
  // One storm row per protocol so the allocation profile of every engine
  // stays visible and regression-gated (the 1PC row is the one the
  // committed baseline has always carried).
  static constexpr struct {
    const char* name;
    ProtocolKind proto;
    std::uint32_t participants;
  } kStorms[] = {
      {"fig6_storm_prn", ProtocolKind::kPrN, 2},
      {"fig6_storm_prc", ProtocolKind::kPrC, 2},
      {"fig6_storm_ep", ProtocolKind::kEP, 2},
      {"fig6_storm_1pc", ProtocolKind::kOnePC, 2},
      // 3-participant rows (ISSUE 10): one create spread across two worker
      // MDSs, so the per-participant ACK/vote bookkeeping stays gated.  The
      // 1PC row measures the presumed-abort degradation path.
      {"fig6_storm_prn_3p", ProtocolKind::kPrN, 3},
      {"fig6_storm_prc_3p", ProtocolKind::kPrC, 3},
      {"fig6_storm_ep_3p", ProtocolKind::kEP, 3},
      {"fig6_storm_1pc_3p", ProtocolKind::kOnePC, 3},
  };
  const Duration window = Duration::from_seconds_f(opt.smoke ? 0.05 : 1.0);
  // A storm directory only grows (creates, no deletes), and the flat dentry
  // table pays O(n) per insert into a big directory — so an unbounded
  // fixture would decelerate instead of reaching a steady state.  Recycling
  // the fixture every few windows bounds directory size; the reconstruction
  // cost lands inside the measured region and amortizes to well under one
  // alloc per event.
  constexpr int kRecycleWindows = 16;
  for (const auto& cfg : kStorms) {
    auto fx = std::make_unique<StormFixture>(cfg.proto, cfg.participants);
    int windows = 0;
    double sim_ops = 0;
    BenchSample storm =
        measure(cfg.name, opt.smoke, [&cfg, &fx, &windows, window, &sim_ops] {
          if (windows == kRecycleWindows) {
            fx = std::make_unique<StormFixture>(cfg.proto, cfg.participants);
            windows = 0;
          }
          ++windows;
          return fx->step(window, &sim_ops);
        });
    storm.sim_ops_per_sec = sim_ops;
    out.push_back(storm);
  }
  // New since the committed baseline; tools/bench_diff.py only compares
  // benches present in the baseline, so this sample is baseline-safe.
  const int counter_batch = opt.smoke ? 4096 : 65536;
  out.push_back(measure("stats_counter_add_65536", opt.smoke,
                        [counter_batch] {
                          return stats_counter_pass(counter_batch);
                        }));
  return out;
}

std::string render_json(const std::vector<BenchSample>& samples, bool smoke,
                        const std::vector<PhaseBreakdownSample>& breakdown) {
  std::string json = "{\n  \"schema\": 1,\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  json += "  \"benches\": [\n";
  char buf[512];
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const BenchSample& s = samples[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"events\": %llu, "
                  "\"events_per_sec\": %.1f, \"ns_per_event\": %.2f, "
                  "\"allocs_per_event\": %.4f, \"sim_ops_per_sec\": %.3f}%s\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.events),
                  s.events_per_sec, s.ns_per_event, s.allocs_per_event,
                  s.sim_ops_per_sec, i + 1 < samples.size() ? "," : "");
    json += buf;
  }
  json += "  ]";
  if (!breakdown.empty()) {
    json += ",\n  \"storm_phase_breakdown\": [\n";
    for (std::size_t i = 0; i < breakdown.size(); ++i) {
      const PhaseBreakdownSample& b = breakdown[i];
      std::snprintf(buf, sizeof(buf),
                    "    {\"phase\": \"%s\", \"count\": %lld, "
                    "\"total_ns\": %lld, \"mean_ns\": %lld}%s\n",
                    b.phase.c_str(), static_cast<long long>(b.count),
                    static_cast<long long>(b.total_ns),
                    static_cast<long long>(b.mean_ns),
                    i + 1 < breakdown.size() ? "," : "");
      json += buf;
    }
    json += "  ]";
  }
  json += "\n}\n";
  return json;
}

int run_bench_command(const ReportOptions& opt) {
  const std::vector<BenchSample> samples = run_kernel_report(opt);

  TextTable table({"bench", "events/sec", "ns/event", "allocs/event",
                   "sim ops/s"});
  for (const BenchSample& s : samples) {
    table.add_row({s.name, TextTable::num(s.events_per_sec, 0),
                   TextTable::num(s.ns_per_event, 2),
                   TextTable::num(s.allocs_per_event, 4),
                   TextTable::num(s.sim_ops_per_sec, 3)});
  }
  std::fputs(table.render().c_str(), stdout);

  // Untimed, traced storm pass: where simulated time goes per phase.
  const std::vector<PhaseBreakdownSample> breakdown =
      storm_phase_breakdown(opt.smoke ? 0.05 : 0.5);
  TextTable ptable({"storm phase", "count", "total ns", "mean ns"});
  for (const PhaseBreakdownSample& b : breakdown) {
    ptable.add_row({b.phase, std::to_string(b.count),
                    std::to_string(b.total_ns), std::to_string(b.mean_ns)});
  }
  std::fputs(ptable.render().c_str(), stdout);

  if (!opt.json_path.empty()) {
    const std::string json = render_json(samples, opt.smoke, breakdown);
    FILE* f = std::fopen(opt.json_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write '%s'\n", opt.json_path.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", opt.json_path.c_str());
  }
  return 0;
}

}  // namespace opc::benchreport
