#include "report/alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace opc::benchreport {
namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

std::uint64_t allocation_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

}  // namespace opc::benchreport

// --- Global replacement of the allocation functions (counting shims) ---

void* operator new(std::size_t size) {
  void* p = opc::benchreport::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return opc::benchreport::counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return opc::benchreport::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = opc::benchreport::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return opc::benchreport::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return opc::benchreport::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
