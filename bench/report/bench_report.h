// Machine-readable kernel benchmark report (`opc bench`).
//
// Runs a fixed set of wall-clock benchmarks — the raw event-kernel cycle
// plus a fixed-seed Figure-6 storm configuration — and emits one JSON
// document (BENCH_kernel.json) with events/sec, ns/event and
// allocations/event per bench.  CI compares the JSON against the committed
// baseline in bench/baselines/ via tools/bench_diff.py and fails the perf
// job on a >30 % throughput regression.
//
// Unlike the google-benchmark binaries (bench_sim_kernel), this runner has
// no framework dependency and a stable output schema, so the comparator
// stays a 50-line script.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace opc::benchreport {

struct BenchSample {
  std::string name;
  std::uint64_t events = 0;       // kernel events dispatched in the window
  double wall_seconds = 0;        // measured wall-clock time
  double events_per_sec = 0;      // events / wall_seconds
  double ns_per_event = 0;
  double allocs_per_event = 0;    // operator-new calls per event
  double sim_ops_per_sec = 0;     // workload benches: simulated-time ops/s
};

struct ReportOptions {
  bool smoke = false;       // single iteration per bench, no repetition
  std::string json_path;    // empty = stdout table only
};

/// Span-derived storm timing: where a protocol's simulated time goes, per
/// engine phase (docs/OBSERVABILITY.md §3).  Produced by an instrumented
/// (traced) storm pass run *outside* the timed benches — tracing stays off
/// in every measured region, so the kernel numbers and the committed
/// baseline are unaffected.
struct PhaseBreakdownSample {
  std::string phase;         // e.g. "coord.commit_force"
  std::int64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t mean_ns = 0;
};

/// Runs every bench once (or repeatedly until the measurement window fills)
/// and returns the samples in a fixed order.
[[nodiscard]] std::vector<BenchSample> run_kernel_report(
    const ReportOptions& opt);

/// One traced fixed-seed 1PC storm of `sim_seconds`, folded into the
/// per-phase time breakdown.
[[nodiscard]] std::vector<PhaseBreakdownSample> storm_phase_breakdown(
    double sim_seconds);

/// Renders the samples as the BENCH_kernel.json document.  The breakdown
/// lands under an extra "storm_phase_breakdown" key, which
/// tools/bench_diff.py ignores (it only compares benches present in the
/// baseline).
[[nodiscard]] std::string render_json(
    const std::vector<BenchSample>& samples, bool smoke,
    const std::vector<PhaseBreakdownSample>& breakdown = {});

/// `opc bench` entry point: run, print a table, optionally write JSON.
/// Returns a process exit code.
int run_bench_command(const ReportOptions& opt);

}  // namespace opc::benchreport
