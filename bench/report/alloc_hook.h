// Process-wide heap-allocation counter for the benchmark report runner.
//
// Linking the opc_bench_report library replaces the global operator
// new/delete family with thin forwarding shims around malloc/free that bump
// an atomic counter.  The kernel report uses the delta across a timed
// region to compute allocations/event — the number the inline-callback
// fast path is supposed to hold at zero.
//
// The shims add one relaxed atomic increment per allocation; they are
// counting instrumentation, not an allocator.
#pragma once

#include <cstdint>

namespace opc::benchreport {

/// Total allocations (operator new family) since process start.
[[nodiscard]] std::uint64_t allocation_count();

}  // namespace opc::benchreport
