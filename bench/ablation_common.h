// Shared scaffolding for the ablation benches: run the Figure 6 workload
// across a parameter sweep x all four protocols in parallel and print one
// table with PrN-relative gains.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/sweep.h"
#include "stats/table.h"

namespace opc::benchutil {

struct SweepPoint {
  std::string label;
  ExperimentConfig cfg;  // protocol is overwritten per column
};

/// Runs every (point, protocol) cell of the sweep and prints a table whose
/// rows are points and columns are protocols, with the 1PC/PrN ratio last.
inline int run_protocol_sweep(const char* title,
                              std::vector<SweepPoint> points,
                              bool scale_is_ops = true) {
  struct Cell {
    std::size_t point;
    ProtocolKind proto;
  };
  std::vector<Cell> cells;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (ProtocolKind p : kAllProtocols) cells.push_back({i, p});
  }
  const auto results = ParallelSweep::map<Cell, ExperimentResult>(
      cells, [&](const Cell& c) {
        ExperimentConfig cfg = points[c.point].cfg;
        cfg.cluster.protocol = c.proto;
        return run_create_storm(cfg);
      });

  std::printf("=== %s ===\n\n", title);
  TextTable table({"sweep point", "PrN", "PrC", "EP", "1PC", "1PC/PrN"});
  bool clean = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double ops[4] = {};
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].point != i) continue;
      ops[static_cast<int>(cells[c].proto)] = results[c].ops_per_second;
      if (results[c].invariant_violations != 0) clean = false;
    }
    table.add_row({points[i].label, TextTable::num(ops[0], 2),
                   TextTable::num(ops[1], 2), TextTable::num(ops[2], 2),
                   TextTable::num(ops[3], 2),
                   ops[0] > 0 ? TextTable::num(ops[3] / ops[0], 2) + "x"
                              : "-"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%s; all runs invariant-clean: %s\n",
              scale_is_ops ? "cells are namespace operations per second"
                           : "cells as labelled",
              clean ? "yes" : "NO");
  return clean ? 0 : 1;
}

}  // namespace opc::benchutil
