// `--smoke` support for the bench binaries (DESIGN.md §5).
//
// Every bench accepts `--smoke` and collapses to a single fast iteration:
// sweeps keep their first point(s), simulated windows shrink from tens of
// seconds to half a second.  The numbers printed under smoke are
// meaningless — the mode exists so `ctest -L bench` executes every bench's
// code path on every tier-1 run and a refactor cannot bit-rot a figure
// binary silently.  Exit-code checks (invariants, abort-freedom, Table I
// exactness) still apply where the shrunk run keeps them meaningful.
#pragma once

#include <cstring>

#include "sim/time.h"

namespace opc::benchutil {

/// True when `--smoke` appears anywhere on the command line.
inline bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

/// Shrinks an experiment's measured window to smoke scale (0.1 s warmup +
/// 0.4 s measured).  Works on any config with `run_for`/`warmup` members.
template <typename Config>
void smoke_window(Config& cfg) {
  cfg.run_for = Duration::millis(500);
  cfg.warmup = Duration::millis(100);
}

/// Truncates a sweep (points, cells, rates, ...) to its first `keep`
/// entries.  Callers whose result-rendering walks cells in fixed-size
/// groups must keep `keep` a multiple of the group size.
template <typename Vec>
void smoke_truncate(Vec& v, std::size_t keep) {
  if (v.size() > keep) v.resize(keep);
}

}  // namespace opc::benchutil
