// Figure 6 reproduction: distributed namespace operations per second for
// PrN, PrC, EP and 1PC under the paper's parameters (1 µs method compute,
// 100 µs network latency, 400 KB/s log devices, 100 concurrent distributed
// creates against one MDS).
//
// Paper values: PrN 15, PrC 15 (+0.39 %), EP 16 (+6.60 %), 1PC 24 (+>55 %).
#include <cstdio>

#include "core/experiment.h"
#include "core/sweep.h"
#include "smoke.h"
#include "stats/table.h"

namespace {

struct PaperRow {
  opc::ProtocolKind proto;
  double paper_ops;
  const char* paper_gain;
};

constexpr PaperRow kPaper[] = {
    {opc::ProtocolKind::kPrN, 15.0, "baseline"},
    {opc::ProtocolKind::kPrC, 15.0, "+0.39%"},
    {opc::ProtocolKind::kEP, 16.0, "+6.60%"},
    {opc::ProtocolKind::kOnePC, 24.0, "+>55%"},
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = opc::benchutil::smoke_mode(argc, argv);
  std::printf("=== Figure 6: distributed namespace operations per second ===\n");
  std::printf("workload: 100 concurrent distributed CREATEs, one hot "
              "directory, every create spans two MDSs\n");
  std::printf("params: method 1us, network 100us one-way, log device "
              "400 KB/s, 8 KiB forced-write blocks\n\n");

  std::vector<PaperRow> rows(std::begin(kPaper), std::end(kPaper));
  const auto results =
      opc::ParallelSweep::map<PaperRow, opc::ExperimentResult>(
          rows, [smoke](const PaperRow& row) {
            opc::ExperimentConfig cfg = opc::paper_fig6_config(row.proto);
            if (smoke) opc::benchutil::smoke_window(cfg);
            return opc::run_create_storm(cfg);
          });

  const double prn = results[0].ops_per_second;
  opc::TextTable table({"protocol", "ops/s (measured)", "ops/s (paper)",
                        "gain vs PrN (measured)", "gain vs PrN (paper)",
                        "p50 latency", "coordinator disk busy"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = results[i];
    const double gain = (r.ops_per_second / prn - 1.0) * 100.0;
    table.add_row({std::string(opc::protocol_name(rows[i].proto)),
                   opc::TextTable::num(r.ops_per_second, 2),
                   opc::TextTable::num(rows[i].paper_ops, 0),
                   (gain >= 0 ? "+" : "") + opc::TextTable::num(gain, 2) + "%",
                   rows[i].paper_gain,
                   opc::to_string(r.latency.quantile_duration(0.5)),
                   opc::TextTable::num(r.coordinator_disk_busy * 100.0, 1) +
                       "%"});
  }
  std::fputs(table.render().c_str(), stdout);

  bool clean = true;
  for (const auto& r : results) {
    if (r.invariant_violations != 0 || r.aborted != 0) clean = false;
  }
  std::printf("\nall runs invariant-clean and abort-free: %s\n",
              clean ? "yes" : "NO");
  std::printf("shape check (paper: 1PC wins by >55%%): 1PC/PrN = %.2fx\n",
              results[3].ops_per_second / prn);
  return clean ? 0 : 1;
}
