// Ablation C: client concurrency scaling.
//
// Every create contends on one directory, so past a handful of outstanding
// operations the system saturates at the lock-hold-limited rate; the sweep
// verifies the plateau and that 1PC's advantage is already present at
// concurrency 1 (it is a latency win, not a parallelism win).
#include "ablation_common.h"
#include "smoke.h"

int main(int argc, char** argv) {
  using namespace opc;
  const bool smoke = benchutil::smoke_mode(argc, argv);
  std::vector<benchutil::SweepPoint> points;
  for (std::uint32_t conc : {1u, 2u, 4u, 16u, 64u, 100u, 256u, 512u}) {
    benchutil::SweepPoint p;
    p.label = "concurrency " + std::to_string(conc);
    p.cfg = paper_fig6_config(ProtocolKind::kPrN);
    p.cfg.source.concurrency = conc;
    p.cfg.run_for = Duration::seconds(20);
    p.cfg.warmup = Duration::seconds(4);
    if (smoke) benchutil::smoke_window(p.cfg);
    points.push_back(std::move(p));
  }
  if (smoke) benchutil::smoke_truncate(points, 1);
  return benchutil::run_protocol_sweep(
      "Ablation C: throughput vs concurrent clients on one directory "
      "(paper uses 100)",
      std::move(points));
}
