// Ablation D: operation aggregation (the paper's §VI future work).
//
// "...the MDS responsible for managing the parent directory can aggregate
// multiple namespace operations in only one big transaction, thus reducing
// the number of messages and log writes per block of requests."
//
// Each transaction carries `batch` creates in the hot directory: one
// STARTED force, one directory lock episode, one commit force per batch.
// Throughput is reported in namespace operations (files created) per
// second.
#include <cstdio>

#include "core/experiment.h"
#include "core/sweep.h"
#include "smoke.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace opc;
  const bool smoke = benchutil::smoke_mode(argc, argv);
  const std::uint32_t batches[] = {1, 2, 4, 8, 16, 32, 64};
  struct Cell {
    std::uint32_t batch;
    ProtocolKind proto;
  };
  std::vector<Cell> cells;
  for (std::uint32_t b : batches) {
    cells.push_back({b, ProtocolKind::kPrN});
    cells.push_back({b, ProtocolKind::kOnePC});
  }
  // Keep one PrN/1PC pair: the row loop below walks cells two at a time.
  if (smoke) benchutil::smoke_truncate(cells, 2);
  const auto results = ParallelSweep::map<Cell, ExperimentResult>(
      cells, [smoke](const Cell& c) {
        ExperimentConfig cfg = paper_fig6_config(c.proto);
        cfg.run_for = Duration::seconds(20);
        cfg.warmup = Duration::seconds(4);
        if (smoke) benchutil::smoke_window(cfg);
        return run_batched_storm(cfg, c.batch);
      });

  std::printf("=== Ablation D: operation aggregation (paper SVI future "
              "work) ===\n\n");
  TextTable table({"batch size", "PrN ops/s", "1PC ops/s", "1PC speedup vs "
                   "batch=1"});
  double base_1pc = 0;
  bool clean = true;
  for (std::size_t i = 0; i < cells.size(); i += 2) {
    const double prn = results[i].ops_per_second;
    const double onepc = results[i + 1].ops_per_second;
    if (cells[i].batch == 1) base_1pc = onepc;
    clean = clean && results[i].invariant_violations == 0 &&
            results[i + 1].invariant_violations == 0;
    table.add_row({std::to_string(cells[i].batch), TextTable::num(prn, 1),
                   TextTable::num(onepc, 1),
                   TextTable::num(onepc / base_1pc, 2) + "x"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nall runs invariant-clean: %s\n", clean ? "yes" : "NO");
  return clean ? 0 : 1;
}
