// Ablation G: recovery time after a coordinator crash.
//
// The paper argues 1PC "minimizes ... recovery time in case of failing
// metadata servers": its log scan yields either a redo record to re-execute
// or a COMMITTED record to ignore — no vote collection, no blocking on
// peers.  This bench primes N in-flight transactions, kills the
// coordinator, reboots it after a fixed repair time, and measures how long
// the engine needs from power-on until every outstanding transaction is
// resolved (plus how many of the primed operations survived).
#include <cstdio>

#include "cluster/cluster.h"
#include "core/sweep.h"
#include "mds/namespace.h"
#include "smoke.h"
#include "stats/table.h"

namespace {

using namespace opc;

struct Outcome {
  double recovery_ms = 0;
  std::uint64_t survived = 0;   // primed creates present after recovery
  std::uint64_t resolved = 0;   // total primed creates
  bool clean = false;
};

Outcome measure(ProtocolKind proto, std::uint32_t inflight) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  ClusterConfig cc;
  cc.n_nodes = 2;
  cc.protocol = proto;
  // No failure timeouts: priming happens under a partition, and nothing may
  // resolve (or start fencing) before the crash lands.
  cc.acp.response_timeout = Duration::zero();
  cc.acp.retry_interval = Duration::millis(100);
  // Group commit lets all N STARTED records reach the log quickly, so
  // recovery really has N transactions to deal with.
  cc.wal.group_commit = true;
  Cluster cluster(sim, cc, stats, trace);

  IdAllocator ids;
  PinnedPartitioner part(2, NodeId(1));
  NamespacePlanner planner(part, OpCosts{});
  // One independent directory per transaction: no lock serialization, so
  // every transaction is genuinely in flight when the plug is pulled.
  std::vector<ObjectId> dirs;
  for (std::uint32_t i = 0; i < inflight; ++i) {
    const ObjectId dir = ids.next();
    part.assign(dir, NodeId(0));
    cluster.bootstrap_directory(dir, NodeId(0));
    dirs.push_back(dir);
  }
  // Prime under a partition: every transaction forces STARTED (+ the 1PC
  // redo record) but none can make progress, so all N are in the log when
  // the plug is pulled.
  cluster.partition_pair(NodeId(0), NodeId(1));
  for (std::uint32_t i = 0; i < inflight; ++i) {
    cluster.submit(
        planner.plan_create(dirs[i], "r" + std::to_string(i), ids.next(),
                            false),
        [](TxnId, TxnOutcome) {});
  }
  while (sim.now() < SimTime::zero() + Duration::seconds(30)) {
    sim.run_for(Duration::millis(5));
    if (cluster.storage().partition(NodeId(0)).live_transactions().size() >=
        inflight) {
      break;
    }
  }
  cluster.crash_node(NodeId(0));
  cluster.heal_pair(NodeId(0), NodeId(1));
  sim.run_until(sim.now() + Duration::millis(200));

  SimTime recovered = SimTime::zero();
  bool scan_done = false;
  bool done = false;
  // The recovery callback fires once the scan completed AND every re-driven
  // transaction reached a decision; engine quiescence covers the tail.
  cluster.reboot_node(NodeId(0), [&] { scan_done = true; });
  const SimTime power_on = sim.now();
  const SimTime cap = sim.now() + Duration::seconds(120);
  while (sim.now() < cap) {
    sim.run_for(Duration::millis(10));
    if (scan_done &&
        cluster.engine(NodeId(0)).active_coordinations() == 0 &&
        cluster.engine(NodeId(1)).active_participations() == 0) {
      recovered = sim.now();
      done = true;
      break;
    }
  }

  Outcome out;
  out.recovery_ms = done ? (recovered - power_on).to_millis_f() : -1;
  out.resolved = inflight;
  for (std::uint32_t i = 0; i < inflight; ++i) {
    if (cluster.store(NodeId(0))
            .stable_lookup(dirs[i], "r" + std::to_string(i))
            .has_value()) {
      ++out.survived;
    }
  }
  out.clean = cluster.check_invariants(dirs).empty() && done;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::smoke_mode(argc, argv);
  std::printf("=== Ablation G: coordinator recovery time vs in-flight "
              "transactions ===\n");
  std::printf("(N transactions logged under a partition, coordinator crashed, rebooted 200ms later; recovery time "
              "= power-on until every transaction resolved)\n\n");

  struct Cell {
    ProtocolKind proto;
    std::uint32_t inflight;
  };
  std::vector<Cell> cells;
  for (ProtocolKind p : kAllProtocols) {
    for (std::uint32_t n : {1u, 10u, 50u, 100u}) cells.push_back({p, n});
  }
  // Smoke: one PrN cell with a single in-flight transaction — the prime,
  // crash, reboot, and scan paths all still execute.
  if (smoke) benchutil::smoke_truncate(cells, 1);
  const auto results = ParallelSweep::map<Cell, Outcome>(
      cells, [](const Cell& c) { return measure(c.proto, c.inflight); });

  TextTable table({"protocol", "in-flight", "recovery time",
                   "creates completed", "creates aborted", "invariants"});
  bool clean = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Outcome& o = results[i];
    clean = clean && o.clean;
    table.add_row({std::string(protocol_name(cells[i].proto)),
                   std::to_string(cells[i].inflight),
                   TextTable::num(o.recovery_ms, 1) + " ms",
                   std::to_string(o.survived),
                   std::to_string(o.resolved - o.survived),
                   o.clean ? "clean" : "PROBLEM"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nNote: 1PC re-executes crashed work from redo records "
              "(creates complete); the 2PC family aborts it (creates "
              "abort) — both are correct, the difference is the paper's "
              "\"aggressive recovery\" trade-off.\n");
  std::printf("all scenarios clean: %s\n", clean ? "yes" : "NO");
  return clean ? 0 : 1;
}
