// Figure 1 reproduction: a namespace distributed over a cluster of four
// metadata servers.  Builds a realistic tree through the actual commit
// machinery (hash partitioning, hybrid protocol selection) and prints the
// per-server metadata placement, including parent/child splits like the
// paper's file1-vs-dir2 example.
#include <cstdio>

#include "cluster/cluster.h"
#include "mds/namespace.h"
#include "smoke.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace opc;
  // Smoke keeps the same machinery (4 servers, hybrid protocol selection)
  // over a smaller tree.
  const bool smoke = benchutil::smoke_mode(argc, argv);
  const int n_dirs = smoke ? 2 : 6;
  const int n_files = smoke ? 2 : 8;
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  ClusterConfig cc;
  cc.n_nodes = 4;
  cc.protocol = ProtocolKind::kOnePC;
  Cluster cluster(sim, cc, stats, trace);

  IdAllocator ids;
  HashPartitioner part(4);
  NamespacePlanner planner(part, OpCosts{});

  const ObjectId root = ids.next();
  cluster.bootstrap_directory(root, part.home_of(root));

  // Build /dirN/fileM: 6 directories, 8 files each.
  std::vector<ObjectId> dirs;
  std::uint64_t committed = 0, distributed = 0, local = 0;
  auto submit = [&](Transaction txn) {
    (txn.is_local() ? local : distributed)++;
    cluster.submit(std::move(txn), [&](TxnId, TxnOutcome o) {
      if (o == TxnOutcome::kCommitted) ++committed;
    });
    sim.run();
  };
  for (int d = 0; d < n_dirs; ++d) {
    const ObjectId dir = ids.next();
    dirs.push_back(dir);
    submit(planner.plan_create(root, "dir" + std::to_string(d), dir,
                               /*is_dir=*/true, static_cast<std::uint64_t>(d)));
    for (int f = 0; f < n_files; ++f) {
      submit(planner.plan_create(dir, "file" + std::to_string(f), ids.next(),
                                 false,
                                 static_cast<std::uint64_t>(d * 100 + f)));
    }
  }

  std::printf("=== Figure 1: distributed namespace over 4 metadata servers "
              "===\n\n");
  TextTable table({"server", "inodes", "dentries", "sample objects"});
  for (std::uint32_t n = 0; n < 4; ++n) {
    const MetaStore& store = cluster.store(NodeId(n));
    std::string sample;
    int shown = 0;
    for (const auto& [dir, name, child] : store.stable_dentries()) {
      (void)child;
      if (shown++ == 3) break;
      sample += (sample.empty() ? "" : ", ") + name + "@dir" +
                std::to_string(dir.value());
    }
    table.add_row({NodeId(n).str(), std::to_string(store.stable_inode_count()),
                   std::to_string(store.stable_dentry_count()), sample});
  }
  std::fputs(table.render().c_str(), stdout);

  // The paper's point: a file and its parent directory can live on
  // different MDSs, which is what makes CREATE/DELETE distributed.
  std::printf("\ncommitted namespace operations: %llu (distributed: %llu, "
              "local: %llu)\n",
              static_cast<unsigned long long>(committed),
              static_cast<unsigned long long>(distributed),
              static_cast<unsigned long long>(local));
  const auto violations = cluster.check_invariants({root});
  std::printf("namespace invariants: %s\n",
              violations.empty() ? "clean" : render_violations(violations).c_str());
  return violations.empty() &&
                 committed == static_cast<std::uint64_t>(n_dirs +
                                                         n_dirs * n_files)
             ? 0
             : 1;
}
