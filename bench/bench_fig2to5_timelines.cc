// Figures 2-5 reproduction: the message/log-write timeline of one
// distributed CREATE under each protocol, rendered as a two-column
// sequence chart (the textual equivalent of the paper's diagrams).
#include <cstdio>

#include "core/timeline.h"
#include "smoke.h"

int main(int argc, char** argv) {
  // Smoke renders one timeline (1PC, the paper's contribution) instead of
  // all four.
  const bool smoke = opc::benchutil::smoke_mode(argc, argv);
  struct Fig {
    opc::ProtocolKind proto;
    const char* caption;
  };
  const Fig figs[] = {
      {opc::ProtocolKind::kPrN,
       "Figure 2 — PrN (2PC): two message round trips and four forced "
       "writes on the operation's path"},
      {opc::ProtocolKind::kPrC,
       "Figure 3 — PrC: the ACK disappears; the coordinator answers the "
       "client before the worker commits"},
      {opc::ProtocolKind::kEP,
       "Figure 4 — EP: the prepare rides the job request; only the COMMIT "
       "remains as an extra message"},
      {opc::ProtocolKind::kOnePC,
       "Figure 5 — 1PC: the worker commits inside the update round trip; "
       "the coordinator commits off the critical path"},
  };
  for (const Fig& f : figs) {
    if (smoke && f.proto != opc::ProtocolKind::kOnePC) continue;
    const opc::TimelineResult r = opc::run_single_create(f.proto);
    std::printf("=== %s ===\n", f.caption);
    std::printf("client latency: %s   protocol fully finished: %s\n\n",
                opc::to_string(r.client_latency).c_str(),
                opc::to_string(r.txn_complete).c_str());
    std::fputs(r.chart.c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}
