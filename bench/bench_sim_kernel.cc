// Kernel micro-benchmarks (google-benchmark): the substrate's raw speed —
// event queue throughput, record codec, lock manager, and a full small
// simulation per iteration.  These guard against performance regressions
// in the simulator itself; simulated-time results live in the other
// benches.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "cluster/cluster.h"
#include "env/sim_env.h"
#include "lock/lock_manager.h"
#include "mds/namespace.h"
#include "sim/simulator.h"
#include "wal/record.h"
#include "workload/source.h"

namespace {

using namespace opc;

void BM_EventScheduleDispatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    std::uint64_t sink = 0;
    for (int i = 0; i < batch; ++i) {
      sim.schedule_after(Duration::nanos(i % 977), [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventScheduleDispatch)->Arg(1024)->Arg(16384);

void BM_EventCancel(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    std::vector<EventHandle> handles;
    handles.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      handles.push_back(sim.schedule_after(Duration::micros(1), [] {}));
    }
    for (EventHandle& h : handles) sim.cancel(h);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventCancel);

void BM_RecordEncodeDecode(benchmark::State& state) {
  LogRecord rec;
  rec.type = RecordType::kUpdate;
  rec.txn = 12345;
  rec.writer = NodeId(3);
  rec.modeled_bytes = 8192;
  rec.payload.assign(256, 0xAB);
  for (auto _ : state) {
    std::vector<std::uint8_t> buf;
    encode_record(rec, buf);
    std::size_t off = 0;
    auto got = decode_record(buf, off);
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordEncodeDecode);

void BM_LockAcquireRelease(benchmark::State& state) {
  Simulator sim;
  SimEnv env(sim);
  StatsRegistry stats;
  TraceRecorder trace(false);
  LockManager lm(env, "bench", stats, trace);
  std::uint64_t txn = 1;
  for (auto _ : state) {
    lm.acquire(txn, txn % 64, LockMode::kExclusive, [] {});
    lm.release_all(txn);
    ++txn;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockAcquireRelease);

void BM_FullCreateTransaction(benchmark::State& state) {
  // Wall-clock cost of simulating one full distributed CREATE end to end.
  const auto proto = static_cast<ProtocolKind>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    StatsRegistry stats;
    TraceRecorder trace(false);
    ClusterConfig cc;
    cc.n_nodes = 2;
    cc.protocol = proto;
    Cluster cluster(sim, cc, stats, trace);
    IdAllocator ids;
    const ObjectId dir = ids.next();
    PinnedPartitioner part(2, NodeId(1));
    part.assign(dir, NodeId(0));
    cluster.bootstrap_directory(dir, NodeId(0));
    NamespacePlanner planner(part, OpCosts{});
    cluster.submit(planner.plan_create(dir, "f", ids.next(), false),
                   [](TxnId, TxnOutcome) {});
    sim.run();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(protocol_name(proto)));
}
BENCHMARK(BM_FullCreateTransaction)
    ->Arg(static_cast<int>(ProtocolKind::kPrN))
    ->Arg(static_cast<int>(ProtocolKind::kOnePC));

void BM_SimulatedSecondOfStorm(benchmark::State& state) {
  // Wall-clock cost per simulated second of the Figure 6 workload — the
  // figure that bounds how fast sweeps run.
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    StatsRegistry stats;
    TraceRecorder trace(false);
    ClusterConfig cc;
    cc.n_nodes = 2;
    cc.protocol = ProtocolKind::kOnePC;
    Cluster cluster(sim, cc, stats, trace);
    IdAllocator ids;
    const ObjectId dir = ids.next();
    PinnedPartitioner part(2, NodeId(1));
    part.assign(dir, NodeId(0));
    cluster.bootstrap_directory(dir, NodeId(0));
    NamespacePlanner planner(part, OpCosts{});
    ThroughputMeter meter;
    SourceConfig scfg;
    scfg.concurrency = 100;
    CreateStormSource source(cluster.env(), cluster, scfg, meter, stats, planner, ids,
                             dir);
    source.start();
    state.ResumeTiming();
    sim.run_until(SimTime::zero() + Duration::seconds(1));
  }
}
BENCHMARK(BM_SimulatedSecondOfStorm);

}  // namespace

// Custom main instead of benchmark_main: `--smoke` (the bench ctest label's
// single-pass mode, see bench/smoke.h) maps onto the shortest measurement
// window google-benchmark 1.7 accepts, so every benchmark body runs but
// none is repeated for statistics.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  static char min_time[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
