// Ablation E: throughput under periodic failures.
//
// Crashes the worker (and optionally the coordinator) every `period` with a
// 500 ms repair time while the Figure 6 storm runs.  Shows the price of
// each protocol's recovery: 2PC-family aborts + decision retries vs 1PC's
// STONITH-fence-and-read rounds.  Atomicity must survive every run (the
// invariant checker gates the exit code).
#include <cstdio>

#include "core/experiment.h"
#include "core/sweep.h"
#include "smoke.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace opc;
  const bool smoke = benchutil::smoke_mode(argc, argv);
  struct Point {
    Duration period;
    std::string label;
  };
  std::vector<Point> points = {
      {Duration::zero(), "no failures"},
      {Duration::seconds(5), "worker crash every 5s"},
      {Duration::seconds(2), "worker crash every 2s"},
      {Duration::seconds(1), "worker crash every 1s"},
  };
  // Smoke keeps one crashing point so the fencing path still executes; the
  // window stays a few seconds so a 1s crash period + 500ms repair fits.
  if (smoke) {
    points = {{Duration::seconds(1), "worker crash every 1s (smoke)"}};
  }
  struct Cell {
    std::size_t point;
    ProtocolKind proto;
  };
  std::vector<Cell> cells;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (ProtocolKind p : kAllProtocols) cells.push_back({i, p});
  }
  const auto results = ParallelSweep::map<Cell, ExperimentResult>(
      cells, [&](const Cell& c) {
        ExperimentConfig cfg = paper_fig6_config(c.proto);
        cfg.run_for = smoke ? Duration::seconds(3) : Duration::seconds(20);
        cfg.warmup = smoke ? Duration::millis(500) : Duration::seconds(4);
        cfg.crash_period = points[c.point].period;
        cfg.crash_worker = true;
        cfg.crash_coordinator = false;
        cfg.crash_reboot_after = Duration::millis(500);
        cfg.cluster.acp.response_timeout = Duration::millis(300);
        cfg.cluster.acp.retry_interval = Duration::millis(100);
        cfg.source.client_timeout = Duration::seconds(15);
        cfg.cluster.heartbeat.enabled = true;
        cfg.cluster.heartbeat.interval = Duration::millis(50);
        cfg.cluster.heartbeat.suspicion_timeout = Duration::millis(250);
        return run_create_storm(cfg);
      });

  std::printf("=== Ablation E: throughput under periodic worker crashes "
              "===\n\n");
  TextTable table({"failure rate", "PrN", "PrC", "EP", "1PC",
                   "1PC fencing rounds", "invariants"});
  bool clean = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double ops[4] = {};
    std::int64_t fences = 0;
    bool row_clean = true;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].point != i) continue;
      ops[static_cast<int>(cells[c].proto)] = results[c].ops_per_second;
      row_clean = row_clean && results[c].invariant_violations == 0;
      if (cells[c].proto == ProtocolKind::kOnePC) {
        fences = results[c].stats.get("acp.onepc.fencing_recoveries");
      }
    }
    clean = clean && row_clean;
    table.add_row({points[i].label, TextTable::num(ops[0], 1),
                   TextTable::num(ops[1], 1), TextTable::num(ops[2], 1),
                   TextTable::num(ops[3], 1), std::to_string(fences),
                   row_clean ? "clean" : "VIOLATED"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nall runs atomicity-clean: %s\n", clean ? "yes" : "NO");
  return clean ? 0 : 1;
}
