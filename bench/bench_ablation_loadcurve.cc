// Ablation H: latency vs offered load (open-loop Poisson arrivals).
//
// The paper reports saturated closed-loop throughput; this curve shows the
// other axis a file-system operator cares about: how operation latency
// grows as the arrival rate approaches each protocol's capacity.  1PC's
// shorter lock hold (~40 ms vs ~60 ms) both lowers its unloaded latency
// and pushes its saturation knee from ~16 ops/s to ~25 ops/s.
#include <cstdio>

#include "core/sweep.h"
#include "smoke.h"
#include "mds/namespace.h"
#include "stats/table.h"
#include "workload/source.h"

namespace {

using namespace opc;

struct Point {
  double achieved = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  bool overload = false;
};

Point measure(ProtocolKind proto, double rate, bool smoke) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  ClusterConfig cc;
  cc.n_nodes = 2;
  cc.protocol = proto;
  Cluster cluster(sim, cc, stats, trace);

  IdAllocator ids;
  const ObjectId dir = ids.next();
  PinnedPartitioner part(2, NodeId(1));
  part.assign(dir, NodeId(0));
  cluster.bootstrap_directory(dir, NodeId(0));
  NamespacePlanner planner(part, OpCosts{});

  ThroughputMeter meter;
  const Duration warmup = smoke ? Duration::millis(500) : Duration::seconds(10);
  const Duration run = smoke ? Duration::seconds(3) : Duration::seconds(60);
  meter.set_warmup_until(SimTime::zero() + warmup);
  meter.set_cutoff(SimTime::zero() + run);

  OpenLoopCreateSource source(cluster.env(), cluster, rate, meter, stats, planner, ids,
                              dir, /*seed=*/7);
  source.start(SimTime::zero() + run);
  // Drain: give in-flight operations one more latency budget to finish.
  sim.run_until(SimTime::zero() + run +
                (smoke ? Duration::seconds(5) : Duration::seconds(60)));

  Point p;
  p.achieved = meter.events_per_second_over(run - warmup);
  p.p50_ms = source.latency().quantile_duration(0.5).to_millis_f();
  p.p99_ms = source.latency().quantile_duration(0.99).to_millis_f();
  // Overload: the system completed markedly less than was offered.
  p.overload = p.achieved < rate * 0.9;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::smoke_mode(argc, argv);
  std::printf("=== Ablation H: latency vs offered load (open-loop Poisson "
              "arrivals, one hot directory) ===\n\n");
  std::vector<double> rates = {4, 8, 12, 15, 18, 22, 24};
  if (smoke) rates = {4};
  struct Cell {
    ProtocolKind proto;
    double rate;
  };
  std::vector<Cell> cells;
  for (ProtocolKind p : {ProtocolKind::kPrN, ProtocolKind::kOnePC}) {
    for (double r : rates) cells.push_back({p, r});
  }
  const auto results = ParallelSweep::map<Cell, Point>(
      cells,
      [smoke](const Cell& c) { return measure(c.proto, c.rate, smoke); });

  TextTable table({"offered ops/s", "PrN p50", "PrN p99", "PrN state",
                   "1PC p50", "1PC p99", "1PC state"});
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const Point& prn = results[i];
    const Point& onepc = results[rates.size() + i];
    auto fmt = [](const Point& p) {
      return p.overload ? std::string("OVERLOAD")
                        : TextTable::num(p.p50_ms, 0) + " ms";
    };
    table.add_row({TextTable::num(rates[i], 0), fmt(prn),
                   prn.overload ? "-" : TextTable::num(prn.p99_ms, 0) + " ms",
                   prn.overload ? "saturated" : "stable", fmt(onepc),
                   onepc.overload ? "-"
                                  : TextTable::num(onepc.p99_ms, 0) + " ms",
                   onepc.overload ? "saturated" : "stable"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nreading: PrN saturates between 15-18 offered ops/s; 1PC "
              "stays stable into the low 20s — the paper's throughput gap "
              "seen from the latency side.\n");
  return 0;
}
