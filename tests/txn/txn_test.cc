// Transaction layer: operation codec, transaction codec, conflict-graph
// serializability checker.
#include <gtest/gtest.h>

#include "acp/messages.h"
#include "txn/serializability.h"
#include "txn/types.h"

namespace opc {
namespace {

Operation make_op(OpType t, std::uint64_t target, std::string name = "",
                  std::uint64_t child = 0) {
  Operation op;
  op.type = t;
  op.target = ObjectId(target);
  op.child = ObjectId(child);
  op.name = std::move(name);
  op.log_bytes = 2048;
  op.compute = Duration::micros(1);
  return op;
}

TEST(OpsCodec, RoundTrips) {
  std::vector<Operation> ops{
      make_op(OpType::kAddDentry, 1, "file with spaces.txt", 7),
      make_op(OpType::kCreateInode, 7),
      make_op(OpType::kIncLink, 7),
      make_op(OpType::kRemoveDentry, 1, "", 9),
  };
  ops[0].compute = Duration::micros(5);
  ops[1].log_bytes = 12345;
  std::vector<std::uint8_t> buf;
  encode_ops(ops, buf);
  std::vector<Operation> got;
  ASSERT_TRUE(decode_ops(buf, got));
  EXPECT_EQ(got, ops);
}

TEST(OpsCodec, EmptyListRoundTrips) {
  std::vector<std::uint8_t> buf;
  encode_ops({}, buf);
  std::vector<Operation> got;
  ASSERT_TRUE(decode_ops(buf, got));
  EXPECT_TRUE(got.empty());
}

TEST(OpsCodec, RejectsTruncation) {
  std::vector<std::uint8_t> buf;
  encode_ops({make_op(OpType::kAddDentry, 1, "x", 2)}, buf);
  buf.resize(buf.size() - 3);
  std::vector<Operation> got;
  EXPECT_FALSE(decode_ops(buf, got));
}

TEST(OpsCodec, RejectsTrailingGarbage) {
  std::vector<std::uint8_t> buf;
  encode_ops({make_op(OpType::kSetAttr, 3)}, buf);
  buf.push_back(0xFF);
  std::vector<Operation> got;
  EXPECT_FALSE(decode_ops(buf, got));
}

TEST(TxnCodec, RoundTripsParticipants) {
  Transaction txn;
  txn.id = 777;
  txn.kind = NamespaceOpKind::kRename;
  txn.participants.push_back(
      Participant{NodeId(0), {make_op(OpType::kRemoveDentry, 1, "a", 5)}});
  txn.participants.push_back(
      Participant{NodeId(2),
                  {make_op(OpType::kAddDentry, 2, "b", 5),
                   make_op(OpType::kSetAttr, 5)}});
  std::vector<std::uint8_t> buf;
  encode_txn(txn, buf);
  Transaction got;
  ASSERT_TRUE(decode_txn(buf, got));
  EXPECT_EQ(got.id, txn.id);
  EXPECT_EQ(got.kind, txn.kind);
  ASSERT_EQ(got.participants.size(), 2u);
  EXPECT_EQ(got.participants[0].node, NodeId(0));
  EXPECT_EQ(got.participants[1].ops, txn.participants[1].ops);
}

TEST(TxnCodec, RoundTripsManyParticipants) {
  // N-participant shares (ISSUE 10): one coordinator plus 4 workers, each
  // carrying its own op list, survive the codec byte-exactly.
  Transaction txn;
  txn.id = 31337;
  txn.kind = NamespaceOpKind::kCreate;
  txn.participants.push_back(
      Participant{NodeId(0), {make_op(OpType::kAddDentry, 1, "w0", 10),
                              make_op(OpType::kAddDentry, 1, "w1", 11)}});
  for (std::uint32_t w = 1; w <= 4; ++w) {
    txn.participants.push_back(
        Participant{NodeId(w), {make_op(OpType::kCreateInode, 9 + w),
                                make_op(OpType::kIncLink, 9 + w)}});
  }
  std::vector<std::uint8_t> buf;
  encode_txn(txn, buf);
  Transaction got;
  ASSERT_TRUE(decode_txn(buf, got));
  ASSERT_EQ(got.participants.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got.participants[i].node, txn.participants[i].node) << i;
    EXPECT_EQ(got.participants[i].ops, txn.participants[i].ops) << i;
  }
}

TEST(TxnCodec, RejectsTruncatedParticipantList) {
  // The header promises 3 participants; cut the buffer inside the second
  // and third shares at every byte boundary — each cut must be rejected,
  // never decoded into a shorter (and silently wrong) participant list.
  Transaction txn;
  txn.id = 5;
  txn.kind = NamespaceOpKind::kCreate;
  for (std::uint32_t n = 0; n < 3; ++n) {
    txn.participants.push_back(
        Participant{NodeId(n), {make_op(OpType::kCreateInode, 20 + n)}});
  }
  std::vector<std::uint8_t> full;
  encode_txn(txn, full);
  std::vector<std::uint8_t> one_share;
  encode_txn(Transaction{txn.id, txn.kind, {txn.participants[0]}}, one_share);
  for (std::size_t len = one_share.size(); len < full.size(); ++len) {
    std::vector<std::uint8_t> cut(full.begin(),
                                  full.begin() + static_cast<long>(len));
    Transaction got;
    EXPECT_FALSE(decode_txn(cut, got)) << "prefix length " << len;
  }
}

TEST(TransactionTest, Accessors) {
  Transaction txn;
  EXPECT_TRUE(txn.is_local());
  EXPECT_EQ(txn.coordinator(), kNoNode);
  EXPECT_EQ(txn.n_workers(), 0u);
  txn.participants.push_back(Participant{NodeId(3), {}});
  EXPECT_TRUE(txn.is_local());
  EXPECT_EQ(txn.coordinator(), NodeId(3));
  EXPECT_EQ(txn.n_workers(), 0u);
  EXPECT_EQ(txn.sole_worker(), kNoNode);
  txn.participants.push_back(Participant{NodeId(1), {}});
  EXPECT_FALSE(txn.is_local());
  EXPECT_EQ(txn.n_workers(), 1u);
  EXPECT_EQ(txn.sole_worker(), NodeId(1));
  EXPECT_EQ(txn.participant(0).node, NodeId(3));
  EXPECT_EQ(txn.participant(1).node, NodeId(1));
}

TEST(TransactionTest, WideTransactionHasNoSoleWorker) {
  Transaction txn;
  for (std::uint32_t n = 0; n < 4; ++n) {
    txn.participants.push_back(Participant{NodeId(n), {}});
  }
  EXPECT_EQ(txn.n_participants(), 4u);
  EXPECT_EQ(txn.n_workers(), 3u);
  // The sole-worker view is a two-party notion; wider transactions must be
  // addressed through participant(i), and 1PC must never see one.
  EXPECT_EQ(txn.sole_worker(), kNoNode);
  EXPECT_EQ(txn.participant(3).node, NodeId(3));
}

TEST(TransactionTest, ObjectsAtDeduplicates) {
  Transaction txn;
  txn.participants.push_back(
      Participant{NodeId(0),
                  {make_op(OpType::kAddDentry, 1, "a", 5),
                   make_op(OpType::kRemoveDentry, 1, "b", 6)}});
  const auto objs = txn.objects_at(NodeId(0));
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0], ObjectId(1));
  EXPECT_TRUE(txn.objects_at(NodeId(9)).empty());
}

// ---------------------------------------------------------------------------

TEST(SerializabilityTest, DisjointTxnsAreSerializable) {
  HistoryRecorder h;
  h.record_access(1, ObjectId(10), true, SimTime::zero());
  h.record_access(2, ObjectId(20), true, SimTime::zero());
  h.record_commit(1);
  h.record_commit(2);
  EXPECT_TRUE(h.serializable());
  EXPECT_TRUE(h.conflict_edges().empty());
}

TEST(SerializabilityTest, OrderedConflictIsSerializable) {
  HistoryRecorder h;
  h.record_access(1, ObjectId(10), true, SimTime::zero());
  h.record_access(2, ObjectId(10), true,
                  SimTime::zero() + Duration::millis(1));
  h.record_commit(1);
  h.record_commit(2);
  EXPECT_TRUE(h.serializable());
  EXPECT_EQ(h.serialization_order(), (std::vector<TxnId>{1, 2}));
}

TEST(SerializabilityTest, CycleIsDetected) {
  HistoryRecorder h;
  // t1 writes A before t2; t2 writes B before t1 — classic non-serializable
  // interleaving (impossible under strict 2PL, constructible by hand).
  h.record_access(1, ObjectId(1), true, SimTime::zero());
  h.record_access(2, ObjectId(1), true, SimTime::zero() + Duration::millis(1));
  h.record_access(2, ObjectId(2), true, SimTime::zero() + Duration::millis(2));
  h.record_access(1, ObjectId(2), true, SimTime::zero() + Duration::millis(3));
  h.record_commit(1);
  h.record_commit(2);
  EXPECT_FALSE(h.serializable());
  EXPECT_TRUE(h.serialization_order().empty());
}

TEST(SerializabilityTest, ReadsDoNotConflictWithReads) {
  HistoryRecorder h;
  h.record_access(1, ObjectId(1), false, SimTime::zero());
  h.record_access(2, ObjectId(1), false, SimTime::zero() + Duration::millis(1));
  h.record_commit(1);
  h.record_commit(2);
  EXPECT_TRUE(h.conflict_edges().empty());
}

TEST(SerializabilityTest, ReadWriteConflictsCount) {
  HistoryRecorder h;
  h.record_access(1, ObjectId(1), false, SimTime::zero());
  h.record_access(2, ObjectId(1), true, SimTime::zero() + Duration::millis(1));
  h.record_commit(1);
  h.record_commit(2);
  EXPECT_EQ(h.conflict_edges().size(), 1u);
  EXPECT_TRUE(h.serializable());
}

TEST(SerializabilityTest, AbortedTxnsAreIgnored) {
  HistoryRecorder h;
  h.record_access(1, ObjectId(1), true, SimTime::zero());
  h.record_access(2, ObjectId(1), true, SimTime::zero() + Duration::millis(1));
  h.record_commit(1);
  h.record_abort(2);
  EXPECT_TRUE(h.conflict_edges().empty());
  EXPECT_TRUE(h.serializable());
}

TEST(SerializabilityTest, EmptyHistoryIsSerializable) {
  HistoryRecorder h;
  EXPECT_TRUE(h.serializable());
}

TEST(SerializabilityTest, LongChainOrdersCorrectly) {
  HistoryRecorder h;
  for (TxnId t = 1; t <= 20; ++t) {
    h.record_access(t, ObjectId(5), true,
                    SimTime::zero() + Duration::millis(static_cast<int>(t)));
    h.record_commit(t);
  }
  const auto order = h.serialization_order();
  ASSERT_EQ(order.size(), 20u);
  for (TxnId t = 1; t <= 20; ++t) EXPECT_EQ(order[t - 1], t);
}

}  // namespace
}  // namespace opc
