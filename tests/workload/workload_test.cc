// Workload sources: closed-loop pacing, abort resubmission, client
// watchdogs, mixed-workload image consistency.
#include <gtest/gtest.h>

#include "mds/namespace.h"
#include "workload/source.h"

namespace opc {
namespace {

struct WorkloadFixture {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace{false};
  ClusterConfig cc;
  std::unique_ptr<Cluster> cluster;
  IdAllocator ids;
  std::unique_ptr<PinnedPartitioner> part;
  std::unique_ptr<NamespacePlanner> planner;
  ThroughputMeter meter;
  ObjectId dir;

  explicit WorkloadFixture(ProtocolKind proto = ProtocolKind::kOnePC) {
    cc.n_nodes = 2;
    cc.protocol = proto;
    cluster = std::make_unique<Cluster>(sim, cc, stats, trace);
    dir = ids.next();
    part = std::make_unique<PinnedPartitioner>(2, NodeId(1));
    part->assign(dir, NodeId(0));
    cluster->bootstrap_directory(dir, NodeId(0));
    planner = std::make_unique<NamespacePlanner>(*part, OpCosts{});
  }
};

TEST(CreateStorm, MaxOpsBoundsIssuedWork) {
  WorkloadFixture f;
  SourceConfig cfg;
  cfg.concurrency = 4;
  cfg.max_ops = 20;
  CreateStormSource src(f.cluster->env(), *f.cluster, cfg, f.meter, f.stats, *f.planner,
                        f.ids, f.dir);
  src.start();
  f.sim.run();
  EXPECT_EQ(src.issued(), 20u);
  EXPECT_EQ(src.committed(), 20u);
  EXPECT_EQ(src.aborted(), 0u);
  EXPECT_EQ(f.cluster->store(NodeId(0)).stable_dentry_count(), 20u);
}

TEST(CreateStorm, ClosedLoopKeepsConcurrencyBounded) {
  // PrN replies to the client only when the transaction fully finishes, so
  // engine-side active coordinations directly mirror the closed loop.  (1PC
  // intentionally pipelines its commit tail past the reply.)
  WorkloadFixture f(ProtocolKind::kPrN);
  SourceConfig cfg;
  cfg.concurrency = 3;
  cfg.max_ops = 30;
  CreateStormSource src(f.cluster->env(), *f.cluster, cfg, f.meter, f.stats, *f.planner,
                        f.ids, f.dir);
  src.start();
  // At any instant the coordinator holds at most `concurrency` transactions.
  std::size_t max_seen = 0;
  for (int step = 0; step < 100000 && !f.sim.idle(); ++step) {
    f.sim.step();
    max_seen = std::max(max_seen,
                        f.cluster->engine(NodeId(0)).active_coordinations());
  }
  EXPECT_LE(max_seen, 3u);
  EXPECT_EQ(src.committed(), 30u);
}

TEST(CreateStorm, ThinkTimeSlowsIssueRate) {
  WorkloadFixture f;
  SourceConfig fast_cfg;
  fast_cfg.concurrency = 1;
  fast_cfg.max_ops = 5;
  CreateStormSource fast(f.cluster->env(), *f.cluster, fast_cfg, f.meter, f.stats,
                         *f.planner, f.ids, f.dir, "fast");
  fast.start();
  f.sim.run();
  const SimTime t_fast = f.sim.now();

  WorkloadFixture g;
  SourceConfig slow_cfg = fast_cfg;
  slow_cfg.think_time = Duration::millis(100);
  CreateStormSource slow(g.cluster->env(), *g.cluster, slow_cfg, g.meter, g.stats,
                         *g.planner, g.ids, g.dir, "slow");
  slow.start();
  g.sim.run();
  // 4 think pauses of 100 ms; the last one overlaps the asynchronous commit
  // tail, hence the slightly sub-400ms bound.
  EXPECT_GT(g.sim.now() - SimTime::zero(),
            (t_fast - SimTime::zero()) + Duration::millis(350));
}

TEST(CreateStorm, BatchModePlansMultiCreateTransactions) {
  WorkloadFixture f;
  SourceConfig cfg;
  cfg.concurrency = 1;
  cfg.max_ops = 4;
  CreateStormSource src(f.cluster->env(), *f.cluster, cfg, f.meter, f.stats, *f.planner,
                        f.ids, f.dir, "b", /*batch=*/8);
  src.start();
  f.sim.run();
  EXPECT_EQ(src.committed(), 4u);
  EXPECT_EQ(f.cluster->store(NodeId(0)).stable_dentry_count(), 32u)
      << "4 transactions x 8 files";
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

TEST(Watchdog, CoordinatorCrashDoesNotStallTheLoop) {
  WorkloadFixture f;
  SourceConfig cfg;
  cfg.concurrency = 2;
  cfg.max_ops = 0;
  cfg.client_timeout = Duration::millis(500);
  CreateStormSource src(f.cluster->env(), *f.cluster, cfg, f.meter, f.stats, *f.planner,
                        f.ids, f.dir);
  src.start();
  f.cluster->schedule_crash(NodeId(0), Duration::millis(30),
                            Duration::millis(200));
  f.sim.run_until(SimTime::zero() + Duration::seconds(10));
  src.stop();
  f.sim.run_until(SimTime::zero() + Duration::seconds(20));
  EXPECT_GT(src.lost(), 0u) << "the crash must have eaten replies";
  EXPECT_GT(src.committed(), 20u) << "yet the loop kept making progress";
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

TEST(OpenLoop, ArrivalRateIsRespectedAndLatencyRecorded) {
  WorkloadFixture f;
  OpenLoopCreateSource src(f.cluster->env(), *f.cluster, /*ops_per_second=*/10.0,
                           f.meter, f.stats, *f.planner, f.ids, f.dir,
                           /*seed=*/3);
  f.meter.set_warmup_until(SimTime::zero() + Duration::seconds(5));
  f.meter.set_cutoff(SimTime::zero() + Duration::seconds(65));
  src.start(SimTime::zero() + Duration::seconds(65));
  f.sim.run_until(SimTime::zero() + Duration::seconds(80));

  // 10 ops/s offered, capacity ~25: achieved rate tracks the offer.
  const double achieved = f.meter.events_per_second_over(Duration::seconds(60));
  EXPECT_NEAR(achieved, 10.0, 1.5);
  EXPECT_GT(src.latency().count(), 400u);
  // Unloaded-ish latency: a create takes ~40 ms under 1PC plus queueing.
  EXPECT_GT(src.latency().quantile_duration(0.5), Duration::millis(35));
  EXPECT_LT(src.latency().quantile_duration(0.5), Duration::millis(200));
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

TEST(OpenLoop, StopsIssuingAtDeadline) {
  WorkloadFixture f;
  OpenLoopCreateSource src(f.cluster->env(), *f.cluster, 20.0, f.meter, f.stats,
                           *f.planner, f.ids, f.dir, 4);
  src.start(SimTime::zero() + Duration::seconds(2));
  f.sim.run_until(SimTime::zero() + Duration::seconds(30));
  const std::uint64_t issued_at_deadline = src.issued();
  f.sim.run_until(SimTime::zero() + Duration::seconds(40));
  EXPECT_EQ(src.issued(), issued_at_deadline);
  EXPECT_LE(src.committed(), src.issued());
  EXPECT_GT(src.committed(), 20u);
}

TEST(MixedWorkloadSource, ImageMatchesClusterState) {
  WorkloadFixture f;
  SourceConfig cfg;
  cfg.concurrency = 4;
  cfg.max_ops = 200;
  MixedSource src(f.cluster->env(), *f.cluster, cfg, f.meter, f.stats, *f.planner,
                  f.ids, {f.dir}, MixedSource::Mix{0.5, 0.3}, 42);
  src.start();
  f.sim.run();
  EXPECT_EQ(src.committed() + src.aborted(), 200u);
  EXPECT_EQ(src.aborted(), 0u)
      << "the image prevents conflicting self-submissions";
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

TEST(MixedWorkloadSource, DeterministicForFixedSeed) {
  auto run_once = [] {
    WorkloadFixture f;
    SourceConfig cfg;
    cfg.concurrency = 4;
    cfg.max_ops = 100;
    ThroughputMeter meter;
    MixedSource src(f.cluster->env(), *f.cluster, cfg, meter, f.stats, *f.planner, f.ids,
                    {f.dir}, MixedSource::Mix{0.6, 0.2}, 99);
    src.start();
    f.sim.run();
    return f.cluster->store(NodeId(0)).stable_dentry_count();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace opc
