// Loopback end-to-end (the tentpole's tier-1 gate): serve a 3-node 1PC
// cluster over a Unix domain socket, drive 10k namespace operations
// through the real client, and assert zero lost replies plus a clean
// namespace invariant check.  TSan runs this in CI (`ctest -L rt`).
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "rpc/client.h"
#include "rpc/server.h"
#include "rt/rt_cluster.h"

namespace opc::rpc {
namespace {

TEST(RpcE2E, TenThousandOpsOverUdsZeroLost) {
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint64_t kOps = 10000;
  constexpr std::uint64_t kWindow = 64;  // outstanding cap per client

  RtClusterConfig cfg;
  cfg.n_nodes = kNodes;
  cfg.protocol = ProtocolKind::kOnePC;
  cfg.net.latency = Duration::zero();
  cfg.disk.bytes_per_second = 2.0 * 1024 * 1024 * 1024;
  cfg.seed = 20260807;
  RtCluster cluster(cfg);
  std::vector<ObjectId> dirs;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    dirs.push_back(ObjectId(i + 1));
    cluster.bootstrap_directory(ObjectId(i + 1), NodeId(i));
  }

  RpcServerConfig scfg;
  scfg.uds_path =
      "/tmp/opc-e2e-" + std::to_string(::getpid()) + ".sock";
  scfg.max_inflight = 4096;  // the window keeps us far below this
  RpcServer server(cluster, scfg);
  ASSERT_TRUE(server.start());

  RpcClient client;
  ASSERT_TRUE(client.connect_uds(scfg.uds_path));

  std::uint64_t sent = 0, ok = 0, failed = 0;
  auto drain_one = [&]() -> bool {
    Reply r;
    if (!client.recv_reply(r, 60.0)) return false;
    if (r.status == Status::kOk) ++ok;
    else ++failed;
    return true;
  };
  while (sent < kOps) {
    if (client.outstanding() >= kWindow) {
      ASSERT_TRUE(drain_one()) << client.error();
    }
    // Round-robin the hot directories; every third create is a mkdir so
    // the mix exercises both inode kinds.
    const std::uint64_t dir = sent % kNodes + 1;
    client.send_create(dir, "e2e_" + std::to_string(sent),
                       /*is_dir=*/sent % 3 == 0);
    ++sent;
    ASSERT_TRUE(client.flush(60.0)) << client.error();
  }
  // Drain on the consumed count, not client.outstanding(): replies can sit
  // decoded-but-unread in the client's ready queue after a flush.
  while (ok + failed < kOps) {
    ASSERT_TRUE(drain_one()) << client.error();
  }

  // Zero lost replies: every request got an answer, and every answer was a
  // commit — creates of unique names in bootstrapped directories have no
  // legitimate abort path in a quiescent cluster.
  EXPECT_EQ(sent, kOps);
  EXPECT_EQ(ok, kOps);
  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(server.committed(), kOps);

  server.stop();
  cluster.env().wait_idle();

  // The served namespace passes the same invariant oracle the storms use.
  EXPECT_TRUE(cluster.check_invariants(dirs).empty());
  std::uint64_t dentries = 0;
  for (const MetaStore* s : cluster.stores()) {
    dentries += s->stable_dentry_count();
  }
  EXPECT_EQ(dentries, kOps);
}

// Wide creates over the wire (ISSUE 10): kCreateSpread requests plan one
// atomic create spanning `width` MDSs.  Every reply commits, the namespace
// stays invariant-clean with width-1 entries per request (primary name plus
// .sK siblings), and a width beyond the cluster is answered kBadRequest
// without disturbing the connection.
TEST(RpcE2E, SpreadCreatesCommitAtomicallyAcrossThreeNodes) {
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint64_t kOps = 500;
  constexpr std::uint8_t kWidth = 3;

  RtClusterConfig cfg;
  cfg.n_nodes = kNodes;
  cfg.protocol = ProtocolKind::kOnePC;  // degrades wide txns to PrA
  cfg.net.latency = Duration::zero();
  cfg.disk.bytes_per_second = 2.0 * 1024 * 1024 * 1024;
  cfg.seed = 20260807;
  RtCluster cluster(cfg);
  std::vector<ObjectId> dirs;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    dirs.push_back(ObjectId(i + 1));
    cluster.bootstrap_directory(ObjectId(i + 1), NodeId(i));
  }

  RpcServerConfig scfg;
  scfg.uds_path =
      "/tmp/opc-e2e-spread-" + std::to_string(::getpid()) + ".sock";
  RpcServer server(cluster, scfg);
  ASSERT_TRUE(server.start());

  RpcClient client;
  ASSERT_TRUE(client.connect_uds(scfg.uds_path));

  std::uint64_t ok = 0, failed = 0;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    client.send_create_spread(i % kNodes + 1, "w" + std::to_string(i),
                              kWidth);
    ASSERT_TRUE(client.flush(60.0)) << client.error();
    if (client.outstanding() >= 64) {
      Reply r;
      ASSERT_TRUE(client.recv_reply(r, 60.0)) << client.error();
      r.status == Status::kOk ? ++ok : ++failed;
    }
  }
  while (ok + failed < kOps) {
    Reply r;
    ASSERT_TRUE(client.recv_reply(r, 60.0)) << client.error();
    r.status == Status::kOk ? ++ok : ++failed;
  }
  EXPECT_EQ(ok, kOps);
  EXPECT_EQ(failed, 0u);

  // Width beyond the cluster: semantic rejection, connection stays usable.
  client.send_create_spread(1, "too_wide", kNodes + 1);
  ASSERT_TRUE(client.flush(60.0)) << client.error();
  Reply bad;
  ASSERT_TRUE(client.recv_reply(bad, 60.0)) << client.error();
  EXPECT_EQ(bad.status, Status::kBadRequest);
  client.send_create(1, "still_alive", false);
  ASSERT_TRUE(client.flush(60.0)) << client.error();
  Reply alive;
  ASSERT_TRUE(client.recv_reply(alive, 60.0)) << client.error();
  EXPECT_EQ(alive.status, Status::kOk);

  server.stop();
  cluster.env().wait_idle();

  EXPECT_TRUE(cluster.check_invariants(dirs).empty());
  std::uint64_t dentries = 0;
  for (const MetaStore* s : cluster.stores()) {
    dentries += s->stable_dentry_count();
  }
  // Atomicity at the namespace level: all width-1 entries of each wide
  // create landed (plus the one recovery probe above) — never a partial
  // subset.
  EXPECT_EQ(dentries, kOps * (kWidth - 1) + 1);
}

}  // namespace
}  // namespace opc::rpc
