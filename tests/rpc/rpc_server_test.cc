// RpcServer behaviour at the socket boundary: bounded in-flight admission
// sheds bursts with BUSY (never queues unboundedly, never drops), and the
// server survives protocol-level abuse (bad requests) without wedging.
// Runs under TSan in CI (`ctest -L rt`): the cross-thread reply path is
// exactly what thread sanitizers are for.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>

#include "rpc/client.h"
#include "rpc/server.h"
#include "rt/rt_cluster.h"

namespace opc::rpc {
namespace {

std::string test_sock(const char* tag) {
  return "/tmp/opc-" + std::string(tag) + "-" + std::to_string(::getpid()) +
         ".sock";
}

RtClusterConfig slow_cluster(std::uint32_t nodes, double disk_bw) {
  RtClusterConfig cfg;
  cfg.n_nodes = nodes;
  cfg.protocol = ProtocolKind::kOnePC;
  cfg.net.latency = Duration::zero();
  cfg.disk.bytes_per_second = disk_bw;
  cfg.seed = 7;
  return cfg;
}

TEST(RpcServer, BusySheddingUnderBurst) {
  // Capacity: 8 admitted requests against a disk that needs ~2 ms per
  // commit force (8 KiB at 4 MB/s).  A 10x burst must get explicit BUSY
  // replies for the overflow — and an answer for every single request.
  RtCluster cluster(slow_cluster(2, 4.0 * 1024 * 1024));
  for (std::uint32_t i = 0; i < 2; ++i) {
    cluster.bootstrap_directory(ObjectId(i + 1), NodeId(i));
  }
  RpcServerConfig scfg;
  scfg.uds_path = test_sock("busy");
  scfg.max_inflight = 8;
  RpcServer server(cluster, scfg);
  ASSERT_TRUE(server.start());

  RpcClient client;
  ASSERT_TRUE(client.connect_uds(scfg.uds_path));
  constexpr int kBurst = 80;  // 10x over max_inflight
  for (int i = 0; i < kBurst; ++i) {
    client.send_create(1, "burst_" + std::to_string(i), false);
  }
  ASSERT_TRUE(client.flush(30.0)) << client.error();

  int ok = 0, busy = 0, other = 0;
  for (int i = 0; i < kBurst; ++i) {
    Reply r;
    ASSERT_TRUE(client.recv_reply(r, 30.0))
        << "reply " << i << " missing: " << client.error();
    if (r.status == Status::kOk) ++ok;
    else if (r.status == Status::kBusy) ++busy;
    else ++other;
  }
  EXPECT_EQ(ok + busy, kBurst);
  EXPECT_EQ(other, 0);
  EXPECT_GT(busy, 0) << "a 10x burst over capacity must shed";
  EXPECT_GE(ok, 8) << "admitted requests must still commit";
  EXPECT_EQ(server.busy_count(), static_cast<std::uint64_t>(busy));
  EXPECT_EQ(client.outstanding(), 0u);
  server.stop();
}

TEST(RpcServer, SemanticErrorsGetTypedReplies) {
  RtCluster cluster(slow_cluster(2, 512.0 * 1024 * 1024));
  for (std::uint32_t i = 0; i < 2; ++i) {
    cluster.bootstrap_directory(ObjectId(i + 1), NodeId(i));
  }
  RpcServerConfig scfg;
  scfg.uds_path = test_sock("sem");
  RpcServer server(cluster, scfg);
  ASSERT_TRUE(server.start());

  RpcClient client;
  ASSERT_TRUE(client.connect_uds(scfg.uds_path));

  Reply r;
  ASSERT_TRUE(client.call_ping(r));
  EXPECT_EQ(r.status, Status::kOk);

  // Empty name: semantically invalid, typed rejection.
  ASSERT_TRUE(client.call_create(1, "", false, r));
  EXPECT_EQ(r.status, Status::kBadRequest);

  // Remove of a name that does not exist.
  const std::uint64_t id = client.send_remove(1, "never_created");
  ASSERT_TRUE(client.flush());
  ASSERT_TRUE(client.recv_reply(r));
  EXPECT_EQ(r.id, id);
  EXPECT_EQ(r.status, Status::kNotFound);

  // A real create commits and returns the allocated inode.
  ASSERT_TRUE(client.call_create(1, "real_file", false, r));
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_GT(r.inode, 2u) << "created inodes live above the directory ids";

  // Rename it cross-directory (dir 2 is homed on the other node).
  const std::uint64_t rid = client.send_rename(1, "real_file", 2, "moved");
  ASSERT_TRUE(client.flush());
  ASSERT_TRUE(client.recv_reply(r));
  EXPECT_EQ(r.id, rid);
  EXPECT_EQ(r.status, Status::kOk);
  // Stores are worker-confined; only read them once the server is drained
  // and the cluster quiescent.
  server.stop();
  cluster.env().wait_idle();
  EXPECT_TRUE(cluster.node(NodeId(1))
                  .store()
                  .mem_lookup(ObjectId(2), "moved")
                  .has_value());
}

TEST(RpcServer, TcpEphemeralPortWorks) {
  RtCluster cluster(slow_cluster(2, 512.0 * 1024 * 1024));
  for (std::uint32_t i = 0; i < 2; ++i) {
    cluster.bootstrap_directory(ObjectId(i + 1), NodeId(i));
  }
  RpcServerConfig scfg;
  scfg.tcp = true;  // port 0 = ephemeral
  RpcServer server(cluster, scfg);
  ASSERT_TRUE(server.start());
  ASSERT_GT(server.tcp_port(), 0);

  RpcClient client;
  ASSERT_TRUE(client.connect_tcp(server.tcp_port()));
  Reply r;
  ASSERT_TRUE(client.call_create(1, "tcp_file", false, r));
  EXPECT_EQ(r.status, Status::kOk);
  server.stop();
}

TEST(RpcServer, RequestsAfterStopAreShedAsShutdown) {
  RtCluster cluster(slow_cluster(2, 512.0 * 1024 * 1024));
  for (std::uint32_t i = 0; i < 2; ++i) {
    cluster.bootstrap_directory(ObjectId(i + 1), NodeId(i));
  }
  RpcServerConfig scfg;
  scfg.uds_path = test_sock("shut");
  RpcServer server(cluster, scfg);
  ASSERT_TRUE(server.start());

  RpcClient client;
  ASSERT_TRUE(client.connect_uds(scfg.uds_path));
  Reply r;
  ASSERT_TRUE(client.call_ping(r));
  server.stop();
  // The listener is gone and the connection is closed; a fresh connect
  // must fail quickly rather than hang.
  RpcClient late;
  EXPECT_FALSE(late.connect_uds(scfg.uds_path, /*deadline_wall=*/0.3));
}

}  // namespace
}  // namespace opc::rpc
