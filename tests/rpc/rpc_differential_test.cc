// Sim-vs-served differential: the same StormPlan workload driven (a)
// straight into RtCluster::run_storm and (b) through the RPC boundary must
// land on identical commit/abort totals and identical dentry counts — the
// socket, codec and server add transport, not semantics.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>

#include "rpc/client.h"
#include "rpc/server.h"
#include "rt/rt_cluster.h"
#include "rt/storm_plan.h"

namespace opc::rpc {
namespace {

constexpr std::uint32_t kNodes = 3;
constexpr std::uint32_t kOpsPerNode = 400;

RtClusterConfig cluster_config() {
  RtClusterConfig cfg;
  cfg.n_nodes = kNodes;
  cfg.protocol = ProtocolKind::kOnePC;
  cfg.net.latency = Duration::zero();
  cfg.disk.bytes_per_second = 1.0 * 1024 * 1024 * 1024;
  cfg.seed = 99;
  return cfg;
}

std::uint64_t total_dentries(const RtCluster& cluster) {
  std::uint64_t n = 0;
  for (const MetaStore* s : cluster.stores()) n += s->stable_dentry_count();
  return n;
}

TEST(RpcDifferential, ServedStormMatchesDirectStorm) {
  const StormPlan plan = make_storm_plan(kNodes, kOpsPerNode);

  // (a) Direct: the closed-loop storm executes the pre-planned txns.
  std::uint64_t direct_committed, direct_aborted, direct_dentries;
  {
    RtCluster cluster(cluster_config());
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      cluster.bootstrap_directory(plan.dirs[i], NodeId(i));
    }
    const RtCluster::StormResult res = cluster.run_storm(plan, 16);
    direct_committed = res.committed;
    direct_aborted = res.aborted;
    direct_dentries = total_dentries(cluster);
    EXPECT_TRUE(cluster.check_invariants(plan.dirs).empty());
  }

  // (b) Served: the same (dir, name) create set crosses the wire.  The
  // server allocates its own inode ids, so placement differs in detail —
  // but the workload is conflict-free, so outcome totals must be equal.
  std::uint64_t served_committed = 0, served_aborted = 0;
  std::uint64_t served_dentries, server_side_committed;
  {
    RtCluster cluster(cluster_config());
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      cluster.bootstrap_directory(plan.dirs[i], NodeId(i));
    }
    RpcServerConfig scfg;
    scfg.uds_path =
        "/tmp/opc-diff-" + std::to_string(::getpid()) + ".sock";
    RpcServer server(cluster, scfg);
    ASSERT_TRUE(server.start());

    RpcClient client;
    ASSERT_TRUE(client.connect_uds(scfg.uds_path));
    std::uint64_t outstanding_budget = 64;
    auto drain_one = [&]() -> bool {
      Reply r;
      if (!client.recv_reply(r, 60.0)) return false;
      if (r.status == Status::kOk) ++served_committed;
      else ++served_aborted;
      return true;
    };
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      for (std::uint32_t j = 0; j < kOpsPerNode; ++j) {
        if (client.outstanding() >= outstanding_budget) {
          ASSERT_TRUE(drain_one()) << client.error();
        }
        // Mirror make_storm_plan's naming: node i creates f{i}_{j} in its
        // own hot directory.
        client.send_create(plan.dirs[i].value(),
                           "f" + std::to_string(i) + "_" + std::to_string(j),
                           false);
        ASSERT_TRUE(client.flush(60.0)) << client.error();
      }
    }
    // Drain on the consumed count, not client.outstanding(): replies can
    // sit decoded-but-unread in the client's ready queue after a flush.
    while (served_committed + served_aborted <
           static_cast<std::uint64_t>(kNodes) * kOpsPerNode) {
      ASSERT_TRUE(drain_one()) << client.error();
    }
    server_side_committed = server.committed();
    server.stop();
    cluster.env().wait_idle();
    served_dentries = total_dentries(cluster);
    EXPECT_TRUE(cluster.check_invariants(plan.dirs).empty());
  }

  EXPECT_EQ(served_committed, direct_committed);
  EXPECT_EQ(served_aborted, direct_aborted);
  EXPECT_EQ(served_dentries, direct_dentries);
  EXPECT_EQ(server_side_committed, served_committed);
  EXPECT_EQ(direct_committed,
            static_cast<std::uint64_t>(kNodes) * kOpsPerNode);
}

}  // namespace
}  // namespace opc::rpc
