// Wire codec contract (docs/SERVING.md §2): byte-exact round-trips, strict
// rejection of corrupt frames, and graceful NeedMore on every possible
// truncation point — the decoder must never read past the bytes it was
// given (ASan enforces that here) and never mis-frame a stream.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rpc/wire.h"
#include "sim/rng.h"

namespace opc::rpc {
namespace {

TEST(RpcCodec, CreateRoundTrip) {
  WireBuf b;
  encode_create(b, /*id=*/42, /*dir=*/7, "hello.txt", /*is_dir=*/false);
  const Decoded d = decode_frame(b.bytes.data(), b.bytes.size());
  ASSERT_EQ(d.status, DecodeStatus::kRequest);
  EXPECT_EQ(d.consumed, b.bytes.size());
  EXPECT_EQ(d.request.op, MsgType::kCreate);
  EXPECT_EQ(d.request.id, 42u);
  EXPECT_EQ(d.request.dir, 7u);
  EXPECT_EQ(d.request.name, "hello.txt");
}

TEST(RpcCodec, MkdirRoundTrip) {
  WireBuf b;
  encode_create(b, 1, 3, "subdir", /*is_dir=*/true);
  const Decoded d = decode_frame(b.bytes.data(), b.bytes.size());
  ASSERT_EQ(d.status, DecodeStatus::kRequest);
  EXPECT_EQ(d.request.op, MsgType::kMkdir);
}

TEST(RpcCodec, RemoveRoundTrip) {
  WireBuf b;
  encode_remove(b, 9, 2, "gone");
  const Decoded d = decode_frame(b.bytes.data(), b.bytes.size());
  ASSERT_EQ(d.status, DecodeStatus::kRequest);
  EXPECT_EQ(d.request.op, MsgType::kRemove);
  EXPECT_EQ(d.request.dir, 2u);
  EXPECT_EQ(d.request.name, "gone");
}

TEST(RpcCodec, RenameRoundTrip) {
  WireBuf b;
  encode_rename(b, 77, /*src_dir=*/1, "old", /*dst_dir=*/2, "new_name");
  const Decoded d = decode_frame(b.bytes.data(), b.bytes.size());
  ASSERT_EQ(d.status, DecodeStatus::kRequest);
  EXPECT_EQ(d.request.op, MsgType::kRename);
  EXPECT_EQ(d.request.dir, 1u);
  EXPECT_EQ(d.request.dir2, 2u);
  EXPECT_EQ(d.request.name, "old");
  EXPECT_EQ(d.request.name2, "new_name");
}

TEST(RpcCodec, CreateSpreadRoundTrip) {
  WireBuf b;
  encode_create_spread(b, /*id=*/55, /*dir=*/3, "wide.txt", /*width=*/5);
  const Decoded d = decode_frame(b.bytes.data(), b.bytes.size());
  ASSERT_EQ(d.status, DecodeStatus::kRequest);
  EXPECT_EQ(d.consumed, b.bytes.size());
  EXPECT_EQ(d.request.op, MsgType::kCreateSpread);
  EXPECT_EQ(d.request.id, 55u);
  EXPECT_EQ(d.request.dir, 3u);
  EXPECT_EQ(d.request.name, "wide.txt");
  EXPECT_EQ(d.request.width, 5);
}

TEST(RpcCodec, CreateSpreadBelowMinimumWidthIsCorrupt) {
  // Width 2 is spelled kCreate; a spread frame claiming fewer than 3
  // participants means the peer disagrees about the format, which is a
  // codec-level rejection, not a semantic kBadRequest.
  for (std::uint8_t w : {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{2}}) {
    WireBuf b;
    encode_create_spread(b, 1, 1, "x", w);
    EXPECT_EQ(decode_frame(b.bytes.data(), b.bytes.size()).status,
              DecodeStatus::kCorrupt)
        << "width " << int(w);
  }
}

TEST(RpcCodec, CreateSpreadEveryTruncationPointIsNeedMore) {
  WireBuf b;
  encode_create_spread(b, 88, 2, "truncated_spread_name", 3);
  for (std::size_t len = 0; len < b.bytes.size(); ++len) {
    const Decoded d = decode_frame(b.bytes.data(), len);
    EXPECT_EQ(d.status, DecodeStatus::kNeedMore) << "prefix length " << len;
    EXPECT_EQ(d.consumed, 0u);
  }
}

TEST(RpcCodec, PingAndEmptyNameSurvive) {
  WireBuf b;
  encode_ping(b, 5);
  Decoded d = decode_frame(b.bytes.data(), b.bytes.size());
  ASSERT_EQ(d.status, DecodeStatus::kRequest);
  EXPECT_EQ(d.request.op, MsgType::kPing);

  // Empty names are wire-legal (the server rejects them semantically with
  // kBadRequest — not the codec's business).
  b.clear();
  encode_create(b, 6, 1, "", false);
  d = decode_frame(b.bytes.data(), b.bytes.size());
  ASSERT_EQ(d.status, DecodeStatus::kRequest);
  EXPECT_TRUE(d.request.name.empty());
}

TEST(RpcCodec, ReplyRoundTripAllStatuses) {
  for (std::uint8_t s = 0; s <= static_cast<std::uint8_t>(Status::kShutdown);
       ++s) {
    WireBuf b;
    const Reply in{1234, static_cast<Status>(s), 999};
    encode_reply(b, in);
    const Decoded d = decode_frame(b.bytes.data(), b.bytes.size());
    ASSERT_EQ(d.status, DecodeStatus::kReply) << "status byte " << int(s);
    EXPECT_EQ(d.reply.id, 1234u);
    EXPECT_EQ(d.reply.status, in.status);
    EXPECT_EQ(d.reply.inode, 999u);
  }
}

TEST(RpcCodec, SequentialFramesDecodeWithConsumed) {
  WireBuf b;
  encode_create(b, 1, 1, "a", false);
  encode_remove(b, 2, 1, "b");
  encode_reply(b, {3, Status::kOk, 8});

  std::size_t off = 0;
  Decoded d = decode_frame(b.bytes.data() + off, b.bytes.size() - off);
  ASSERT_EQ(d.status, DecodeStatus::kRequest);
  EXPECT_EQ(d.request.id, 1u);
  off += d.consumed;
  d = decode_frame(b.bytes.data() + off, b.bytes.size() - off);
  ASSERT_EQ(d.status, DecodeStatus::kRequest);
  EXPECT_EQ(d.request.id, 2u);
  off += d.consumed;
  d = decode_frame(b.bytes.data() + off, b.bytes.size() - off);
  ASSERT_EQ(d.status, DecodeStatus::kReply);
  off += d.consumed;
  EXPECT_EQ(off, b.bytes.size());
}

TEST(RpcCodec, EveryTruncationPointIsNeedMore) {
  WireBuf b;
  encode_rename(b, 31, 1, "source_name", 2, "destination_name");
  for (std::size_t len = 0; len < b.bytes.size(); ++len) {
    const Decoded d = decode_frame(b.bytes.data(), len);
    EXPECT_EQ(d.status, DecodeStatus::kNeedMore) << "prefix length " << len;
    EXPECT_EQ(d.consumed, 0u);
  }
}

TEST(RpcCodec, CorruptMagicVersionType) {
  WireBuf base;
  encode_create(base, 1, 1, "x", false);

  auto corrupted_at = [&](std::size_t at, std::uint8_t v) {
    std::vector<std::uint8_t> f = base.bytes;
    f[at] = v;
    return decode_frame(f.data(), f.size()).status;
  };
  EXPECT_EQ(corrupted_at(4, 0x00), DecodeStatus::kCorrupt);  // magic lo
  EXPECT_EQ(corrupted_at(5, 0x00), DecodeStatus::kCorrupt);  // magic hi
  EXPECT_EQ(corrupted_at(6, 99), DecodeStatus::kCorrupt);    // version
  EXPECT_EQ(corrupted_at(7, 42), DecodeStatus::kCorrupt);    // unknown type
}

TEST(RpcCodec, OversizeAndUndersizeLengthAreCorrupt) {
  WireBuf b;
  encode_ping(b, 1);
  // Patch the length word to something absurd; the decoder must reject it
  // immediately instead of waiting for 2 GiB that never arrives.
  std::vector<std::uint8_t> f = b.bytes;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(f.data(), &huge, 4);
  EXPECT_EQ(decode_frame(f.data(), f.size()).status, DecodeStatus::kCorrupt);

  f = b.bytes;
  const std::uint32_t tiny = 3;  // below the fixed header remainder
  std::memcpy(f.data(), &tiny, 4);
  EXPECT_EQ(decode_frame(f.data(), f.size()).status, DecodeStatus::kCorrupt);
}

TEST(RpcCodec, TrailingBytesInsideFrameAreCorrupt) {
  WireBuf b;
  encode_remove(b, 4, 1, "y");
  // Declare one byte more than the body uses and supply it: the body/length
  // mismatch must be detected, not silently skipped.
  std::vector<std::uint8_t> f = b.bytes;
  std::uint32_t len;
  std::memcpy(&len, f.data(), 4);
  len += 1;
  std::memcpy(f.data(), &len, 4);
  f.push_back(0);
  EXPECT_EQ(decode_frame(f.data(), f.size()).status, DecodeStatus::kCorrupt);
}

TEST(RpcCodec, TruncatedBodyInsideDeclaredLengthIsCorrupt) {
  WireBuf b;
  encode_create(b, 8, 1, "abcdef", false);
  // Shrink the declared name length's payload: name_len says 6 but the
  // frame only carries 3 bytes of it -> embedded truncation.
  std::vector<std::uint8_t> f = b.bytes;
  std::uint32_t len;
  std::memcpy(&len, f.data(), 4);
  len -= 3;
  std::memcpy(f.data(), &len, 4);
  f.resize(f.size() - 3);
  EXPECT_EQ(decode_frame(f.data(), f.size()).status, DecodeStatus::kCorrupt);
}

TEST(RpcCodec, NameAboveCapIsCorrupt) {
  WireBuf b;
  encode_create(b, 1, 1, std::string(kMaxNameBytes + 1, 'n'), false);
  EXPECT_EQ(decode_frame(b.bytes.data(), b.bytes.size()).status,
            DecodeStatus::kCorrupt);
}

TEST(RpcCodec, ReplyWithUnknownStatusIsCorrupt) {
  WireBuf b;
  encode_reply(b, {1, Status::kOk, 0});
  std::vector<std::uint8_t> f = b.bytes;
  f[kHeaderBytes] = 250;  // status byte is the first body byte
  EXPECT_EQ(decode_frame(f.data(), f.size()).status, DecodeStatus::kCorrupt);
}

// Fuzz-ish: random single-byte flips and random length cuts over valid
// frames must always land in a defined state (kRequest with sane fields,
// kReply, kNeedMore or kCorrupt) and never read out of bounds — running
// under ASan makes the second half of that claim real.
TEST(RpcCodec, ByteFlipFuzz) {
  WireBuf b;
  encode_rename(b, 991, 3, "fuzz_src", 1, "fuzz_dst");
  encode_create(b, 992, 2, "fuzz_file", false);
  encode_create_spread(b, 993, 1, "fuzz_spread", 4);
  Rng rng(20260807, 0);
  for (int iter = 0; iter < 5000; ++iter) {
    std::vector<std::uint8_t> f = b.bytes;
    const std::size_t at = rng.index(f.size());
    f[at] = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    const std::size_t len = rng.uniform_u64(0, f.size());
    const Decoded d = decode_frame(f.data(), len);
    switch (d.status) {
      case DecodeStatus::kNeedMore:
        EXPECT_EQ(d.consumed, 0u);
        break;
      case DecodeStatus::kRequest:
      case DecodeStatus::kReply:
        EXPECT_GT(d.consumed, 0u);
        EXPECT_LE(d.consumed, len);
        break;
      case DecodeStatus::kCorrupt:
        break;
    }
  }
}

TEST(RpcCodec, WireBufCompactKeepsUnreadBytes) {
  WireBuf b;
  for (int i = 0; i < 600; ++i) encode_ping(b, static_cast<std::uint64_t>(i));
  // Drain two thirds, compact, and decode the rest: offsets must stay
  // consistent across the memmove.
  std::uint64_t expect = 0;
  while (b.unread() > 0) {
    const Decoded d = decode_frame(b.data(), b.unread());
    ASSERT_EQ(d.status, DecodeStatus::kRequest);
    EXPECT_EQ(d.request.id, expect++);
    b.offset += d.consumed;
    b.compact();
  }
  EXPECT_EQ(expect, 600u);
}

}  // namespace
}  // namespace opc::rpc
