// Property-based system tests: randomized mixed workloads under randomized
// crash/reboot schedules, for every protocol and a sweep of seeds.  The
// properties (the ACID obligations from DESIGN.md §6):
//   * namespace invariants hold in stable state after the dust settles,
//   * the committed history is conflict-serializable,
//   * the cluster quiesces (no transaction is stuck forever),
// plus codec robustness against arbitrary byte soup.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "mds/namespace.h"
#include "wal/record.h"
#include "workload/source.h"

namespace opc {
namespace {

struct ChaosCase {
  ProtocolKind proto;
  std::uint64_t seed;
};

class ChaosTest : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosTest, MixedWorkloadSurvivesRandomCrashes) {
  const ChaosCase cp = GetParam();
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);

  ClusterConfig cc;
  cc.n_nodes = 3;
  cc.protocol = cp.proto;
  cc.seed = cp.seed;
  cc.record_history = true;
  cc.acp.response_timeout = Duration::millis(300);
  cc.acp.retry_interval = Duration::millis(100);
  cc.heartbeat.enabled = true;
  cc.heartbeat.interval = Duration::millis(50);
  cc.heartbeat.suspicion_timeout = Duration::millis(250);
  Cluster cluster(sim, cc, stats, trace);

  IdAllocator ids;
  HashPartitioner part(3);
  NamespacePlanner planner(part, OpCosts{});
  std::vector<ObjectId> dirs;
  for (int i = 0; i < 4; ++i) {
    const ObjectId dir = ids.next();
    dirs.push_back(dir);
    cluster.bootstrap_directory(dir, part.home_of(dir));
  }

  ThroughputMeter meter;
  SourceConfig scfg;
  scfg.concurrency = 6;
  scfg.client_timeout = Duration::seconds(1);
  MixedSource source(cluster.env(), cluster, scfg, meter, stats, planner, ids, dirs,
                     MixedSource::Mix{0.6, 0.25}, cp.seed);
  source.start();

  // Random crash schedule: ~6 crashes over 15 simulated seconds, random
  // victims, 400 ms repair time.
  Rng chaos(cp.seed, /*stream=*/0xBAD);
  Duration at = Duration::zero();
  for (int i = 0; i < 6; ++i) {
    at += Duration::millis(500) + chaos.exponential(Duration::millis(2000));
    if (at > Duration::seconds(15)) break;
    const NodeId victim(static_cast<std::uint32_t>(chaos.index(3)));
    cluster.schedule_crash(victim, at, Duration::millis(400));
  }

  sim.run_until(SimTime::zero() + Duration::seconds(15));
  source.stop();
  // Make sure everything is repaired, then drain completely.
  sim.run_until(SimTime::zero() + Duration::seconds(18));
  for (std::uint32_t n = 0; n < 3; ++n) cluster.reboot_node(NodeId(n));
  sim.run_until(SimTime::zero() + Duration::seconds(60));

  // Quiescence: only heartbeat timers remain.
  for (std::uint32_t n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster.engine(NodeId(n)).active_coordinations(), 0u)
        << "node " << n << " proto " << protocol_name(cp.proto) << " seed "
        << cp.seed;
    EXPECT_EQ(cluster.engine(NodeId(n)).active_participations(), 0u);
    EXPECT_TRUE(cluster.node(NodeId(n)).alive());
  }

  const auto violations = cluster.check_invariants(dirs);
  EXPECT_TRUE(violations.empty())
      << protocol_name(cp.proto) << " seed " << cp.seed << "\n"
      << render_violations(violations);
  ASSERT_NE(cluster.history(), nullptr);
  EXPECT_TRUE(cluster.history()->serializable())
      << protocol_name(cp.proto) << " seed " << cp.seed;
  EXPECT_GT(source.committed(), 50u) << "progress was made despite crashes";
}

std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> cases;
  for (ProtocolKind p : kAllProtocolsExt) {
    for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull}) {
      cases.push_back({p, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChaosTest, ::testing::ValuesIn(chaos_cases()),
                         [](const auto& info) {
                           return std::string(protocol_name(info.param.proto)) +
                                  "_seed" + std::to_string(info.param.seed);
                         });

// Network-loss chaos (no crashes): retries must mask a lossy fabric.
class LossTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(LossTest, RetriesMaskMessageLoss) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  ClusterConfig cc;
  cc.n_nodes = 2;
  cc.protocol = GetParam();
  cc.net.loss_probability = 0.05;
  cc.acp.response_timeout = Duration::millis(250);
  cc.acp.retry_interval = Duration::millis(100);
  cc.record_history = true;
  Cluster cluster(sim, cc, stats, trace);

  IdAllocator ids;
  const ObjectId dir = ids.next();
  PinnedPartitioner part(2, NodeId(1));
  part.assign(dir, NodeId(0));
  cluster.bootstrap_directory(dir, NodeId(0));
  NamespacePlanner planner(part, OpCosts{});

  ThroughputMeter meter;
  SourceConfig scfg;
  scfg.concurrency = 4;
  scfg.max_ops = 60;
  scfg.client_timeout = Duration::seconds(2);
  CreateStormSource source(cluster.env(), cluster, scfg, meter, stats, planner, ids,
                           dir);
  source.start();
  sim.run_until(SimTime::zero() + Duration::seconds(120));

  EXPECT_TRUE(cluster.check_invariants({dir}).empty());
  EXPECT_TRUE(cluster.history()->serializable());
  // Commits must dominate; a dropped UPDATE_REQ surfaces as an abort
  // (2PC-family timeout) or a full STONITH fencing round (1PC — the paper's
  // recovery is deliberately heavy-handed, so its floor is lower).
  const std::uint64_t floor =
      GetParam() == ProtocolKind::kOnePC ? 20u : 40u;
  EXPECT_GT(source.committed(), floor) << protocol_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, LossTest,
                         ::testing::ValuesIn(kAllProtocolsExt),
                         [](const auto& info) {
                           return std::string(protocol_name(info.param));
                         });

// Codec fuzz: random bytes never decode into nonsense (they fail cleanly),
// and random valid records always round-trip.
TEST(CodecFuzz, RandomBytesNeverDecode) {
  Rng rng(123);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> junk(rng.index(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.index(256));
    std::size_t off = 0;
    // Overwhelmingly these must fail; if one "decodes" (magic+CRC collision
    // is astronomically unlikely), offset discipline must still hold.
    const auto rec = decode_record(junk, off);
    if (rec.has_value()) {
      EXPECT_LE(off, junk.size());
    } else {
      EXPECT_EQ(off, 0u);
    }
  }
}

TEST(CodecFuzz, RandomRecordsRoundTrip) {
  Rng rng(321);
  for (int round = 0; round < 2000; ++round) {
    LogRecord rec;
    rec.type = static_cast<RecordType>(1 + rng.index(8));
    rec.txn = rng.next_u64();
    rec.writer = NodeId(static_cast<std::uint32_t>(rng.index(1000)));
    rec.modeled_bytes = rng.next_u64() % 100000;
    rec.payload.resize(rng.index(300));
    for (auto& b : rec.payload) b = static_cast<std::uint8_t>(rng.index(256));
    std::vector<std::uint8_t> buf;
    encode_record(rec, buf);
    std::size_t off = 0;
    const auto got = decode_record(buf, off);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, rec);
    EXPECT_EQ(off, buf.size());
  }
}

TEST(CodecFuzz, RandomOpsRoundTrip) {
  Rng rng(456);
  for (int round = 0; round < 500; ++round) {
    std::vector<Operation> ops(rng.index(8));
    for (auto& op : ops) {
      op.type = static_cast<OpType>(1 + rng.index(8));
      op.target = ObjectId(rng.next_u64() | 1);
      op.child = ObjectId(rng.next_u64());
      op.name.resize(rng.index(40));
      for (auto& c : op.name) {
        c = static_cast<char>('a' + rng.index(26));
      }
      op.log_bytes = rng.index(100000);
      op.compute = Duration::nanos(static_cast<std::int64_t>(rng.index(1000)));
    }
    std::vector<std::uint8_t> buf;
    encode_ops(ops, buf);
    std::vector<Operation> got;
    ASSERT_TRUE(decode_ops(buf, got));
    EXPECT_EQ(got, ops);
  }
}

}  // namespace
}  // namespace opc
