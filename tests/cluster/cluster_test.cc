// Cluster services: node lifecycle, heartbeat suspicion, STONITH
// controller holds, failure scheduling helpers.
#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace opc {
namespace {

ClusterConfig base_config(std::uint32_t n = 2) {
  ClusterConfig cc;
  cc.n_nodes = n;
  cc.protocol = ProtocolKind::kOnePC;
  return cc;
}

TEST(NodeLifecycle, CrashDetachesFromNetwork) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  Cluster cluster(sim, base_config(), stats, trace);
  EXPECT_TRUE(cluster.network().attached(NodeId(0)));
  cluster.crash_node(NodeId(0));
  EXPECT_FALSE(cluster.network().attached(NodeId(0)));
  EXPECT_FALSE(cluster.node(NodeId(0)).alive());
  cluster.reboot_node(NodeId(0));
  sim.run();
  EXPECT_TRUE(cluster.node(NodeId(0)).alive());
  EXPECT_TRUE(cluster.network().attached(NodeId(0)));
}

TEST(NodeLifecycle, CrashAndRebootAreIdempotentHelpers) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  Cluster cluster(sim, base_config(), stats, trace);
  cluster.crash_node(NodeId(0));
  cluster.crash_node(NodeId(0));  // no-op, no crash
  cluster.reboot_node(NodeId(0));
  cluster.reboot_node(NodeId(0));  // no-op
  sim.run();
  EXPECT_TRUE(cluster.node(NodeId(0)).alive());
}

TEST(NodeLifecycle, ScheduledCrashAndRebootFire) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  Cluster cluster(sim, base_config(), stats, trace);
  cluster.schedule_crash(NodeId(1), Duration::millis(10),
                         Duration::millis(20));
  sim.run_until(SimTime::zero() + Duration::millis(15));
  EXPECT_FALSE(cluster.node(NodeId(1)).alive());
  sim.run_until(SimTime::zero() + Duration::seconds(1));
  EXPECT_TRUE(cluster.node(NodeId(1)).alive());
}

TEST(Heartbeats, CrashTriggersSuspicion) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  ClusterConfig cc = base_config();
  cc.heartbeat.enabled = true;
  cc.heartbeat.interval = Duration::millis(50);
  cc.heartbeat.suspicion_timeout = Duration::millis(200);
  Cluster cluster(sim, cc, stats, trace);
  sim.run_until(SimTime::zero() + Duration::millis(300));
  EXPECT_EQ(stats.get("cluster.suspicions"), 0) << "healthy cluster";
  cluster.crash_node(NodeId(1));
  sim.run_until(SimTime::zero() + Duration::millis(700));
  EXPECT_GE(stats.get("cluster.suspicions"), 1);
}

TEST(Heartbeats, PartitionCausesFalseSuspicion) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  ClusterConfig cc = base_config();
  cc.heartbeat.enabled = true;
  cc.heartbeat.interval = Duration::millis(50);
  cc.heartbeat.suspicion_timeout = Duration::millis(200);
  Cluster cluster(sim, cc, stats, trace);
  cluster.partition_pair(NodeId(0), NodeId(1));
  sim.run_until(SimTime::zero() + Duration::millis(600));
  // Both sides suspect the other although both are alive — the split-brain
  // hazard the paper's fencing requirement exists for.
  EXPECT_GE(stats.get("cluster.suspicions"), 2);
  EXPECT_TRUE(cluster.node(NodeId(0)).alive());
  EXPECT_TRUE(cluster.node(NodeId(1)).alive());
}

TEST(Stonith, FencePowerCyclesLiveTarget) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  Cluster cluster(sim, base_config(), stats, trace);
  bool fenced = false;
  cluster.fencing().fence_and_isolate(NodeId(0), NodeId(1),
                                      [&] { fenced = true; });
  sim.run_until(SimTime::zero() + Duration::millis(100));
  EXPECT_TRUE(fenced);
  EXPECT_FALSE(cluster.node(NodeId(1)).alive()) << "STONITH powered it off";
  EXPECT_TRUE(cluster.storage().is_fenced(NodeId(1)));
}

TEST(Stonith, HoldBlocksRebootUntilRelease) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  Cluster cluster(sim, base_config(), stats, trace);
  cluster.fencing().fence_and_isolate(NodeId(0), NodeId(1), [] {});
  sim.run_until(SimTime::zero() + Duration::millis(100));
  ASSERT_TRUE(cluster.fencing().held(NodeId(1)));
  cluster.reboot_node(NodeId(1));  // must be refused while held
  sim.run_until(SimTime::zero() + Duration::millis(200));
  EXPECT_FALSE(cluster.node(NodeId(1)).alive());

  cluster.fencing().release(NodeId(0), NodeId(1));
  EXPECT_FALSE(cluster.fencing().held(NodeId(1)));
  sim.run_until(SimTime::zero() + Duration::seconds(2));
  EXPECT_TRUE(cluster.node(NodeId(1)).alive()) << "auto-reboot after release";
  EXPECT_FALSE(cluster.storage().is_fenced(NodeId(1)))
      << "reboot lifts the storage fence";
}

TEST(Stonith, MultipleHoldersAllMustRelease) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  Cluster cluster(sim, base_config(3), stats, trace);
  cluster.fencing().fence_and_isolate(NodeId(0), NodeId(2), [] {});
  cluster.fencing().fence_and_isolate(NodeId(1), NodeId(2), [] {});
  sim.run_until(SimTime::zero() + Duration::millis(100));
  cluster.fencing().release(NodeId(0), NodeId(2));
  EXPECT_TRUE(cluster.fencing().held(NodeId(2)));
  cluster.fencing().release(NodeId(1), NodeId(2));
  EXPECT_FALSE(cluster.fencing().held(NodeId(2)));
}

TEST(ClusterSetup, BootstrapDirectoryLandsOnHome) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  Cluster cluster(sim, base_config(4), stats, trace);
  cluster.bootstrap_directory(ObjectId(5), NodeId(2));
  const auto ino = cluster.store(NodeId(2)).stable_inode(ObjectId(5));
  ASSERT_TRUE(ino.has_value());
  EXPECT_TRUE(ino->is_dir);
  EXPECT_FALSE(cluster.store(NodeId(0)).stable_inode(ObjectId(5)).has_value());
}

}  // namespace
}  // namespace opc
