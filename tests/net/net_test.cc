// Network model: latency, FIFO channels, partitions, drops, detach.
#include <gtest/gtest.h>

#include "env/sim_env.h"
#include "net/network.h"

namespace opc {
namespace {

struct NetFixture {
  Simulator sim;
  SimEnv env{sim};
  StatsRegistry stats;
  TraceRecorder trace{false};
  NetworkConfig cfg;
  std::unique_ptr<Network> net;
  std::vector<std::pair<NodeId, std::string>> received;

  explicit NetFixture(NetworkConfig c = {}) : cfg(c) {
    net = std::make_unique<Network>(env, cfg, stats, trace, 1);
    for (std::uint32_t i = 0; i < 3; ++i) {
      const NodeId id(i);
      net->attach(id, [this, id](Envelope env) {
        received.emplace_back(id, env.kind);
      });
    }
  }

  void send(std::uint32_t from, std::uint32_t to, std::string kind,
            std::uint64_t size = 256) {
    Envelope env;
    env.from = NodeId(from);
    env.to = NodeId(to);
    env.kind = std::move(kind);
    env.size_bytes = size;
    net->send(std::move(env));
  }
};

TEST(NetworkTest, DeliversAfterLatency) {
  NetFixture f;
  f.send(0, 1, "ping");
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].second, "ping");
  EXPECT_EQ(f.sim.now() - SimTime::zero(), Duration::micros(100));
}

TEST(NetworkTest, PerByteCostAddsToLatency) {
  NetworkConfig cfg;
  cfg.latency = Duration::micros(100);
  cfg.bytes_per_second = 1'000'000;  // 1 MB/s
  NetFixture f(cfg);
  f.send(0, 1, "big", 1000);  // +1 ms
  f.sim.run();
  EXPECT_EQ(f.sim.now() - SimTime::zero(),
            Duration::micros(100) + Duration::millis(1));
}

TEST(NetworkTest, ChannelIsFifoEvenWithJitter) {
  NetworkConfig cfg;
  cfg.jitter_max = Duration::micros(500);
  NetFixture f(cfg);
  for (int i = 0; i < 50; ++i) f.send(0, 1, std::to_string(i));
  f.sim.run();
  ASSERT_EQ(f.received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(f.received[static_cast<size_t>(i)].second, std::to_string(i));
  }
}

TEST(NetworkTest, PartitionDropsBothDirections) {
  NetFixture f;
  f.net->sever_pair(NodeId(0), NodeId(1));
  f.send(0, 1, "a");
  f.send(1, 0, "b");
  f.send(0, 2, "c");  // unaffected
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].second, "c");
  EXPECT_EQ(f.stats.get("net.dropped.partition"), 2);
}

TEST(NetworkTest, PartitionKillsInFlightTraffic) {
  NetFixture f;
  f.send(0, 1, "inflight");
  // Sever while the message is on the wire.
  f.sim.schedule_after(Duration::micros(50), [&] {
    f.net->sever(NodeId(0), NodeId(1));
  });
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
}

TEST(NetworkTest, HealRestoresDelivery) {
  NetFixture f;
  f.net->sever_pair(NodeId(0), NodeId(1));
  f.send(0, 1, "lost");
  f.net->heal_pair(NodeId(0), NodeId(1));
  f.send(0, 1, "found");
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].second, "found");
}

TEST(NetworkTest, AsymmetricSever) {
  NetFixture f;
  f.net->sever(NodeId(0), NodeId(1));  // only 0 -> 1 cut
  f.send(0, 1, "x");
  f.send(1, 0, "y");
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].first, NodeId(0));
  EXPECT_EQ(f.received[0].second, "y");
}

TEST(NetworkTest, DetachedNodeDropsTraffic) {
  NetFixture f;
  f.net->detach(NodeId(1));
  f.send(0, 1, "gone");
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.stats.get("net.dropped.down"), 1);
}

TEST(NetworkTest, DetachWhileInFlightDropsAtDelivery) {
  NetFixture f;
  f.send(0, 1, "racing");
  f.sim.schedule_after(Duration::micros(50), [&] { f.net->detach(NodeId(1)); });
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.stats.get("net.dropped.down"), 1);
}

TEST(NetworkTest, ProbabilisticLossIsApproximatelyCalibrated) {
  NetworkConfig cfg;
  cfg.loss_probability = 0.25;
  NetFixture f(cfg);
  for (int i = 0; i < 4000; ++i) f.send(0, 1, "p");
  f.sim.run();
  const double delivered = static_cast<double>(f.received.size());
  EXPECT_NEAR(delivered / 4000.0, 0.75, 0.03);
}

TEST(NetworkTest, ReattachAfterDetachResumesDelivery) {
  NetFixture f;
  f.net->detach(NodeId(1));
  f.send(0, 1, "lost");
  f.sim.run();
  f.net->attach(NodeId(1), [&](Envelope env) {
    f.received.emplace_back(NodeId(1), env.kind);
  });
  f.send(0, 1, "back");
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].second, "back");
}

TEST(NetworkTest, StatsCountSendsAndDeliveries) {
  NetFixture f;
  f.send(0, 1, "a");
  f.send(0, 2, "b");
  f.sim.run();
  EXPECT_EQ(f.stats.get("net.sent"), 2);
  EXPECT_EQ(f.stats.get("net.delivered"), 2);
}

}  // namespace
}  // namespace opc
