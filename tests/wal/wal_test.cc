// Write-ahead log: record codec (round-trip, torn writes), partition
// queries, forced/lazy writer semantics, crash/fence behaviour, group
// commit.
#include <gtest/gtest.h>

#include <functional>

#include "cluster/cluster.h"
#include "env/sim_env.h"
#include "mds/namespace.h"
#include "wal/log_writer.h"
#include "wal/partition.h"
#include "wal/record.h"

namespace opc {
namespace {

LogRecord make_rec(RecordType t, std::uint64_t txn, std::uint64_t bytes = 512,
                   std::vector<std::uint8_t> payload = {}) {
  LogRecord r;
  r.type = t;
  r.txn = txn;
  r.writer = NodeId(0);
  r.modeled_bytes = bytes;
  r.payload = std::move(payload);
  return r;
}

TEST(RecordCodec, RoundTripsAllTypes) {
  for (auto t : {RecordType::kStarted, RecordType::kPrepared,
                 RecordType::kCommitted, RecordType::kAborted,
                 RecordType::kEnded, RecordType::kRedo, RecordType::kUpdate,
                 RecordType::kCheckpoint}) {
    LogRecord rec = make_rec(t, 42, 8192, {1, 2, 3, 4, 5});
    std::vector<std::uint8_t> buf;
    encode_record(rec, buf);
    std::size_t off = 0;
    const auto got = decode_record(buf, off);
    ASSERT_TRUE(got.has_value()) << record_type_name(t);
    EXPECT_EQ(*got, rec);
    EXPECT_EQ(off, buf.size());
  }
}

TEST(RecordCodec, MultipleRecordsDecodeSequentially) {
  std::vector<std::uint8_t> buf;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    encode_record(make_rec(RecordType::kUpdate, i), buf);
  }
  std::size_t off = 0;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    const auto got = decode_record(buf, off);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->txn, i);
  }
  EXPECT_EQ(off, buf.size());
}

TEST(RecordCodec, DetectsTornWrite) {
  std::vector<std::uint8_t> buf;
  encode_record(make_rec(RecordType::kCommitted, 7, 512, {9, 9, 9}), buf);
  // Truncate mid-record.
  std::vector<std::uint8_t> torn(buf.begin(), buf.begin() + 10);
  std::size_t off = 0;
  EXPECT_FALSE(decode_record(torn, off).has_value());
  EXPECT_EQ(off, 0u) << "offset untouched on failure";
}

TEST(RecordCodec, DetectsBitFlip) {
  std::vector<std::uint8_t> buf;
  encode_record(make_rec(RecordType::kCommitted, 7, 512, {1, 2, 3}), buf);
  buf[buf.size() / 2] ^= 0x40;
  std::size_t off = 0;
  EXPECT_FALSE(decode_record(buf, off).has_value());
}

TEST(RecordCodec, DetectsBadMagic) {
  std::vector<std::uint8_t> buf{0xde, 0xad, 0xbe, 0xef};
  std::size_t off = 0;
  EXPECT_FALSE(decode_record(buf, off).has_value());
}

TEST(RecordCodec, Crc32KnownVector) {
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
}

// ---------------------------------------------------------------------------

struct WalFixture {
  Simulator sim;
  SimEnv env{sim};
  StatsRegistry stats;
  TraceRecorder trace{false};
  SharedStorage storage{env, stats, trace};
  LogPartition* part;
  std::unique_ptr<LogWriter> writer;

  explicit WalFixture(WalConfig cfg = {}) {
    DiskConfig dc;
    dc.bytes_per_second = 400.0 * 1024.0;
    part = &storage.add_partition(NodeId(0), dc);
    writer = std::make_unique<LogWriter>(env, NodeId(0), *part, stats, trace,
                                         cfg);
  }
};

TEST(LogWriterTest, ForceIsDurableExactlyAtCompletion) {
  WalFixture f;
  bool durable = false;
  f.writer->force({make_rec(RecordType::kStarted, 1)}, {"started", true},
                  [&] { durable = true; });
  EXPECT_FALSE(durable);
  EXPECT_TRUE(f.part->records().empty()) << "not durable before completion";
  f.sim.run();
  EXPECT_TRUE(durable);
  ASSERT_EQ(f.part->records().size(), 1u);
  // Padded to one 8 KiB block at 400 KiB/s = 20 ms.
  EXPECT_EQ(f.sim.now() - SimTime::zero(), Duration::millis(20));
}

TEST(LogWriterTest, ForcePaddingRoundsUpToBlocks) {
  WalFixture f;
  // 3 records x 4096 modeled = 12 KiB -> 2 blocks -> 40 ms.
  f.writer->force({make_rec(RecordType::kUpdate, 1, 4096),
                   make_rec(RecordType::kUpdate, 1, 4096),
                   make_rec(RecordType::kUpdate, 1, 4096)},
                  {"u", true}, [] {});
  f.sim.run();
  EXPECT_EQ(f.sim.now() - SimTime::zero(), Duration::millis(40));
}

TEST(LogWriterTest, CrashLosesInFlightForce) {
  WalFixture f;
  bool durable = false;
  f.writer->force({make_rec(RecordType::kCommitted, 1)}, {"c", true},
                  [&] { durable = true; });
  f.sim.run_until(SimTime::zero() + Duration::millis(10));  // mid-write
  f.writer->crash();
  f.sim.run();
  EXPECT_FALSE(durable);
  EXPECT_TRUE(f.part->records().empty());
}

TEST(LogWriterTest, CrashLosesLazyBuffer) {
  WalFixture f;
  f.writer->lazy(make_rec(RecordType::kEnded, 1), {"e", false});
  EXPECT_EQ(f.writer->lazy_buffered(), 1u);
  f.writer->crash();
  f.sim.run();
  EXPECT_TRUE(f.part->records().empty());
}

TEST(LogWriterTest, LazyBecomesDurableViaBackgroundFlush) {
  WalFixture f;
  // PrC's worker COMMITTED is the canonical lazy state record.  (A lone
  // lazy ENDED would be claimed at append — see the partition tests.)
  f.writer->lazy(make_rec(RecordType::kCommitted, 1), {"c", false});
  f.sim.run();
  ASSERT_EQ(f.part->records().size(), 1u);
  EXPECT_EQ(f.part->records()[0].type, RecordType::kCommitted);
}

TEST(LogWriterTest, LazyPiggybacksOnNextForce) {
  WalFixture f;
  f.writer->lazy(make_rec(RecordType::kCommitted, 1), {"c", false});
  f.writer->force({make_rec(RecordType::kStarted, 2)}, {"s", true}, [] {});
  f.sim.run();
  ASSERT_EQ(f.part->records().size(), 2u);
  // Lazy record rides in front (it was logically written first).
  EXPECT_EQ(f.part->records()[0].type, RecordType::kCommitted);
  EXPECT_EQ(f.part->records()[1].type, RecordType::kStarted);
  EXPECT_EQ(f.stats.get("wal.force.count"), 1);
}

TEST(LogWriterTest, FencedWriterDropsForcesSilently) {
  WalFixture f;
  f.storage.fence(NodeId(0));
  bool durable = false;
  f.writer->force({make_rec(RecordType::kCommitted, 1)}, {"c", true},
                  [&] { durable = true; });
  f.sim.run();
  EXPECT_FALSE(durable);
  EXPECT_EQ(f.stats.get("wal.force.dropped"), 1);
}

TEST(LogWriterTest, GroupCommitCoalescesConcurrentForces) {
  WalConfig cfg;
  cfg.group_commit = true;
  WalFixture f(cfg);
  int done = 0;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    f.writer->force({make_rec(RecordType::kCommitted, i)}, {"c", true},
                    [&] { ++done; });
  }
  f.sim.run();
  EXPECT_EQ(done, 4);
  // One leading write + one coalesced write of the other three
  // (3 x 512 B still fits one block): 2 x 20 ms.
  EXPECT_EQ(f.sim.now() - SimTime::zero(), Duration::millis(40));
  EXPECT_EQ(f.stats.get("wal.force.coalesced"), 3);
}

TEST(LogWriterTest, WithoutGroupCommitForcesSerialize) {
  WalFixture f;
  int done = 0;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    f.writer->force({make_rec(RecordType::kCommitted, i)}, {"c", true},
                    [&] { ++done; });
  }
  f.sim.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(f.sim.now() - SimTime::zero(), Duration::millis(80));
}

TEST(LogWriterTest, CriticalTagCountsSeparately) {
  WalFixture f;
  f.writer->force({make_rec(RecordType::kStarted, 1)}, {"s", true}, [] {});
  f.writer->force({make_rec(RecordType::kCommitted, 1)}, {"c", false}, [] {});
  f.writer->lazy(make_rec(RecordType::kEnded, 1), {"e", true});
  f.sim.run();
  EXPECT_EQ(f.stats.get("wal.force.count"), 2);
  EXPECT_EQ(f.stats.get("wal.force.critical"), 1);
  EXPECT_EQ(f.stats.get("wal.lazy.count"), 1);
  EXPECT_EQ(f.stats.get("wal.lazy.critical"), 1);
}

// ---------------------------------------------------------------------------

TEST(PartitionTest, QueriesAndTruncate) {
  WalFixture f;
  f.part->append_durable({make_rec(RecordType::kStarted, 1),
                          make_rec(RecordType::kUpdate, 1),
                          make_rec(RecordType::kPrepared, 1),
                          make_rec(RecordType::kStarted, 2)});
  EXPECT_EQ(f.part->last_state_for(1), RecordType::kPrepared);
  EXPECT_EQ(f.part->last_state_for(2), RecordType::kStarted);
  EXPECT_FALSE(f.part->last_state_for(3).has_value());
  EXPECT_TRUE(f.part->has_record(1, RecordType::kUpdate));
  EXPECT_EQ(f.part->records_for(1).size(), 3u);
  EXPECT_EQ(f.part->live_transactions(), (std::vector<std::uint64_t>{1, 2}));

  f.part->truncate_txn(1);
  EXPECT_FALSE(f.part->last_state_for(1).has_value());
  EXPECT_EQ(f.part->records().size(), 1u);
}

TEST(PartitionTest, UpdateRecordsDoNotCountAsState) {
  WalFixture f;
  f.part->append_durable({make_rec(RecordType::kUpdate, 1),
                          make_rec(RecordType::kRedo, 1)});
  EXPECT_FALSE(f.part->last_state_for(1).has_value());
}

TEST(PartitionTest, TruncateClaimsLateEnded) {
  WalFixture f;
  f.part->append_durable({make_rec(RecordType::kStarted, 1),
                          make_rec(RecordType::kCommitted, 1)});
  f.part->truncate_txn(1);
  EXPECT_TRUE(f.part->records().empty());
  // The engine's finalize paths write ENDED lazily and truncate in the same
  // event, so the ENDED always lands after the checkpoint.  Storing it
  // would leak one record per transaction (ROADMAP, PR 9); the truncate
  // claims it instead.
  f.part->append_durable({make_rec(RecordType::kEnded, 1)});
  EXPECT_TRUE(f.part->records().empty());
  EXPECT_EQ(f.part->claimed_ended(), 1u);
  EXPECT_EQ(f.part->modeled_size(), 0u);
}

TEST(PartitionTest, EndedWithLiveRecordsIsStored) {
  WalFixture f;
  // An ENDED whose transaction still has durable records is a real state
  // transition (crash window before the checkpoint): it must persist.
  f.part->append_durable({make_rec(RecordType::kStarted, 2)});
  f.part->append_durable({make_rec(RecordType::kEnded, 2)});
  EXPECT_EQ(f.part->records().size(), 2u);
  EXPECT_EQ(f.part->last_state_for(2), RecordType::kEnded);
  EXPECT_EQ(f.part->claimed_ended(), 0u);
}

TEST(PartitionTest, TruncateIsNoOpForUnknownTxn) {
  WalFixture f;
  f.part->append_durable({make_rec(RecordType::kStarted, 1, 512)});
  const std::uint64_t before = f.part->modeled_size();
  f.part->truncate_txn(99);  // indexed: answered without scanning the log
  EXPECT_EQ(f.part->records().size(), 1u);
  EXPECT_EQ(f.part->modeled_size(), before);
  f.part->truncate_txn(1);
  EXPECT_TRUE(f.part->records().empty());
  EXPECT_EQ(f.part->modeled_size(), 0u);
}

TEST(SharedStorageTest, ForeignReadReturnsSnapshotAfterScanDelay) {
  WalFixture f;
  DiskConfig dc;
  dc.bytes_per_second = 400.0 * 1024.0;
  f.storage.add_partition(NodeId(1), dc);
  f.part->append_durable({make_rec(RecordType::kCommitted, 9, 8192)});
  f.storage.fence(NodeId(0));

  std::vector<LogRecord> got;
  SimTime when;
  f.storage.read_partition(NodeId(1), NodeId(0),
                           [&](std::vector<LogRecord> recs) {
                             got = std::move(recs);
                             when = f.sim.now();
                           });
  f.sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].txn, 9u);
  EXPECT_EQ(when - SimTime::zero(), Duration::millis(20));  // 8 KiB scan
  EXPECT_EQ(f.stats.get("storage.reads.unfenced"), 0);
}

TEST(SharedStorageTest, UnfencedForeignReadIsCounted) {
  WalFixture f;
  f.storage.read_partition(NodeId(1), NodeId(0), [](std::vector<LogRecord>) {});
  f.sim.run();
  EXPECT_EQ(f.stats.get("storage.reads.unfenced"), 1);
}

TEST(SharedStorageTest, UnfenceRestoresWrites) {
  WalFixture f;
  f.storage.fence(NodeId(0));
  f.storage.unfence(NodeId(0));
  bool durable = false;
  f.writer->force({make_rec(RecordType::kStarted, 1)}, {"s", true},
                  [&] { durable = true; });
  f.sim.run();
  EXPECT_TRUE(durable);
}

// The ENDED-leak regression (found in PR 9): before the claim-at-append
// rule, every finished 1PC transaction left one lazy kEnded record in the
// coordinator's partition forever, so records_ grew linearly with the storm
// and truncate_txn went quadratic.  A long storm must now leave every
// partition's live log bounded by the in-flight window, independent of how
// many transactions committed.
TEST(PartitionLeakRegression, HundredSecondStormLeavesLiveLogBounded) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  ClusterConfig cc;
  cc.n_nodes = 2;
  cc.protocol = ProtocolKind::kOnePC;
  Cluster cluster(sim, cc, stats, trace);

  IdAllocator ids;
  PinnedPartitioner part(2, NodeId(1));
  NamespacePlanner planner(part, OpCosts{});
  const ObjectId dir = ids.next();
  part.assign(dir, NodeId(0));
  cluster.bootstrap_directory(dir, NodeId(0));

  constexpr std::uint32_t kClients = 16;
  const SimTime end = SimTime::zero() + Duration::seconds(100);
  std::uint64_t committed = 0;
  std::uint64_t seq = 0;
  // Closed loop: each completion resubmits until the window closes.
  std::function<void()> pump = [&] {
    if (sim.now() >= end) return;
    cluster.submit(
        planner.plan_create(dir, "f" + std::to_string(seq++), ids.next(),
                            /*is_dir=*/false),
        [&](TxnId, TxnOutcome o) {
          if (o == TxnOutcome::kCommitted) ++committed;
          pump();
        });
  };
  for (std::uint32_t i = 0; i < kClients; ++i) pump();
  sim.run_until(end + Duration::seconds(30));  // window + drain

  ASSERT_GT(committed, 1000u) << "storm too small to expose a leak";
  for (std::uint32_t n = 0; n < 2; ++n) {
    const LogPartition& p = cluster.storage().partition(NodeId(n));
    // Bounded by in-flight transactions, not by `committed` — a handful of
    // records per outstanding client is the generous ceiling.
    EXPECT_LE(p.records().size(), 8u * kClients)
        << "node " << n << " live log grows with the storm";
  }
  // The bound is real work, not vacuity: somebody claimed one lazy ENDED
  // per finished transaction instead of storing it (in 1PC that is the
  // worker, whose finalize writes ENDED lazily after truncating).
  EXPECT_GE(cluster.storage().partition(NodeId(0)).claimed_ended() +
                cluster.storage().partition(NodeId(1)).claimed_ended(),
            committed);
}

}  // namespace
}  // namespace opc
