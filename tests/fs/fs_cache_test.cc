// Client-side dentry cache: hit/miss accounting, TTL expiry, staleness
// after foreign mutations, and invalidation-driven recovery.
#include <gtest/gtest.h>

#include "fs/client.h"

namespace opc {
namespace {

struct CacheFixture {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace{false};
  std::unique_ptr<Cluster> cluster;
  IdAllocator ids;
  std::unique_ptr<HashPartitioner> part;
  std::unique_ptr<NamespacePlanner> planner;
  ObjectId root;
  std::unique_ptr<FsClient> cached;   // with dentry cache
  std::unique_ptr<FsClient> plain;    // without

  CacheFixture() {
    ClusterConfig cc;
    cc.n_nodes = 4;
    cc.protocol = ProtocolKind::kOnePC;
    cluster = std::make_unique<Cluster>(sim, cc, stats, trace);
    part = std::make_unique<HashPartitioner>(4);
    planner = std::make_unique<NamespacePlanner>(*part, OpCosts{});
    root = ids.next();
    cluster->bootstrap_directory(root, part->home_of(root));
    FsClientConfig ccfg;
    ccfg.dentry_cache_ttl = Duration::seconds(5);
    cached = std::make_unique<FsClient>(cluster->env(), *cluster, *planner, ids, root,
                                        NodeId(10), ccfg);
    plain = std::make_unique<FsClient>(cluster->env(), *cluster, *planner, ids, root,
                                       NodeId(11));
  }

  FsStatus run_op(FsClient& fs,
                  std::function<void(FsClient&, FsClient::StatusCb)> op) {
    FsStatus out = FsStatus::kAborted;
    op(fs, [&](FsStatus st) { out = st; });
    sim.run();
    return out;
  }
};

TEST(DentryCache, RepeatResolutionsSkipTheNetwork) {
  CacheFixture f;
  ASSERT_EQ(f.run_op(*f.cached, [](FsClient& fs, auto cb) {
    fs.mkdir("/a", cb);
  }), FsStatus::kOk);
  ASSERT_EQ(f.run_op(*f.cached, [](FsClient& fs, auto cb) {
    fs.mkdir("/a/b", cb);
  }), FsStatus::kOk);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(f.run_op(*f.cached, [i](FsClient& fs, auto cb) {
      fs.create("/a/b/f" + std::to_string(i), cb);
    }), FsStatus::kOk);
  }
  // Resolutions of /a and /a/b after the first create are all cache hits.
  EXPECT_GE(f.cached->cache_hits(), 8u);

  // The uncached client pays RPCs for every component every time.
  const std::int64_t rpcs_before = f.stats.get("fs.rpcs");
  FsStatus st = FsStatus::kAborted;
  f.plain->stat("/a/b/f0", [&](FsStatus s, Inode) { st = s; });
  f.sim.run();
  ASSERT_EQ(st, FsStatus::kOk);
  EXPECT_EQ(f.stats.get("fs.rpcs") - rpcs_before, 4);  // 3 lookups + stat

  const std::int64_t rpcs_before2 = f.stats.get("fs.rpcs");
  f.cached->stat("/a/b/f0", [&](FsStatus s, Inode) { st = s; });
  f.sim.run();
  ASSERT_EQ(st, FsStatus::kOk);
  EXPECT_LE(f.stats.get("fs.rpcs") - rpcs_before2, 2)
      << "cached components resolve locally";
}

TEST(DentryCache, EntriesExpireAfterTtl) {
  CacheFixture f;
  ASSERT_EQ(f.run_op(*f.cached, [](FsClient& fs, auto cb) {
    fs.mkdir("/ttl", cb);
  }), FsStatus::kOk);
  FsStatus st = FsStatus::kAborted;
  f.cached->stat("/ttl", [&](FsStatus s, Inode) { st = s; });
  f.sim.run();
  ASSERT_EQ(st, FsStatus::kOk);
  const std::uint64_t hits = f.cached->cache_hits();

  // Beyond the 5 s TTL the entry is refetched, not reused.
  f.sim.run_until(f.sim.now() + Duration::seconds(6));
  f.cached->stat("/ttl", [&](FsStatus s, Inode) { st = s; });
  f.sim.run();
  ASSERT_EQ(st, FsStatus::kOk);
  EXPECT_EQ(f.cached->cache_hits(), hits) << "expired entry must not hit";
}

TEST(DentryCache, StaleEntryAfterForeignRenameRecoversViaInvalidation) {
  CacheFixture f;
  ASSERT_EQ(f.run_op(*f.cached, [](FsClient& fs, auto cb) {
    fs.mkdir("/dir", cb);
  }), FsStatus::kOk);
  ASSERT_EQ(f.run_op(*f.cached, [](FsClient& fs, auto cb) {
    fs.create("/dir/old", cb);
  }), FsStatus::kOk);
  // Warm the cached client's view of /dir/old.
  FsStatus st = FsStatus::kAborted;
  f.cached->stat("/dir/old", [&](FsStatus s, Inode) { st = s; });
  f.sim.run();
  ASSERT_EQ(st, FsStatus::kOk);

  // Another client renames it away.
  ASSERT_EQ(f.run_op(*f.plain, [](FsClient& fs, auto cb) {
    fs.rename("/dir/old", "/dir/new", cb);
  }), FsStatus::kOk);

  // The cached client's unlink of the old name fails (the authoritative
  // validation catches the stale view), invalidates, and a retry sees
  // fresh state.
  const FsStatus first = f.run_op(*f.cached, [](FsClient& fs, auto cb) {
    fs.unlink("/dir/old", cb);
  });
  EXPECT_TRUE(first == FsStatus::kNotFound || first == FsStatus::kAborted)
      << fs_status_name(first);
  const FsStatus second = f.run_op(*f.cached, [](FsClient& fs, auto cb) {
    fs.unlink("/dir/new", cb);
  });
  EXPECT_EQ(second, FsStatus::kOk);
  EXPECT_TRUE(f.cluster->check_invariants({f.root}).empty());
}

TEST(DentryCache, ExplicitInvalidateDropsPathEntries) {
  CacheFixture f;
  ASSERT_EQ(f.run_op(*f.cached, [](FsClient& fs, auto cb) {
    fs.mkdir("/x", cb);
  }), FsStatus::kOk);
  ASSERT_EQ(f.run_op(*f.cached, [](FsClient& fs, auto cb) {
    fs.create("/x/y", cb);
  }), FsStatus::kOk);
  FsStatus st = FsStatus::kAborted;
  f.cached->stat("/x/y", [&](FsStatus s, Inode) { st = s; });
  f.sim.run();
  ASSERT_EQ(st, FsStatus::kOk);

  f.cached->invalidate("/x/y");
  const std::uint64_t hits = f.cached->cache_hits();
  f.cached->stat("/x/y", [&](FsStatus s, Inode) { st = s; });
  f.sim.run();
  ASSERT_EQ(st, FsStatus::kOk);
  EXPECT_EQ(f.cached->cache_hits(), hits)
      << "both components were dropped; resolution paid full RPCs";
}

}  // namespace
}  // namespace opc
