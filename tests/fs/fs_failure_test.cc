// The path-based client under failures: crashed metadata servers, 1PC
// fencing recovery behind a path operation, and client retries after
// kUnreachable / kAborted.
#include <gtest/gtest.h>

#include "fs/client.h"

namespace opc {
namespace {

struct FsFailFixture {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace{false};
  std::unique_ptr<Cluster> cluster;
  IdAllocator ids;
  std::unique_ptr<PinnedPartitioner> part;
  std::unique_ptr<NamespacePlanner> planner;
  ObjectId root;
  std::unique_ptr<FsClient> fs;

  FsFailFixture() {
    ClusterConfig cc;
    cc.n_nodes = 2;
    cc.protocol = ProtocolKind::kOnePC;
    cc.acp.response_timeout = Duration::millis(300);
    cc.acp.retry_interval = Duration::millis(100);
    cluster = std::make_unique<Cluster>(sim, cc, stats, trace);
    part = std::make_unique<PinnedPartitioner>(2, NodeId(1));
    planner = std::make_unique<NamespacePlanner>(*part, OpCosts{});
    root = ids.next();
    part->assign(root, NodeId(0));
    cluster->bootstrap_directory(root, NodeId(0));
    fs = std::make_unique<FsClient>(cluster->env(), *cluster, *planner, ids, root,
                                    NodeId(5));
  }
};

TEST(FsFailure, WorkerCrashMidCreateResolvesThroughFencing) {
  FsFailFixture f;
  FsStatus st = FsStatus::kOk;
  f.fs->create("/under_fire", [&](FsStatus s) { st = s; });
  // The worker (inode server) dies while the create's commit force runs.
  f.cluster->schedule_crash(NodeId(1), Duration::millis(30),
                            Duration::millis(400));
  f.sim.run_until(SimTime::zero() + Duration::seconds(30));

  // Fencing found no COMMITTED record -> abort; or (timing) commit.  Either
  // way the client got a definitive answer and the namespace is coherent.
  EXPECT_TRUE(st == FsStatus::kOk || st == FsStatus::kAborted);
  FsStatus stat_st = FsStatus::kAborted;
  f.fs->stat("/under_fire", [&](FsStatus s, Inode) { stat_st = s; });
  f.sim.run_until(SimTime::zero() + Duration::seconds(35));
  if (st == FsStatus::kOk) {
    EXPECT_EQ(stat_st, FsStatus::kOk);
  } else {
    EXPECT_EQ(stat_st, FsStatus::kNotFound);
  }
  EXPECT_TRUE(f.cluster->check_invariants({f.root}).empty());
}

TEST(FsFailure, AbortedCreateSucceedsOnRetry) {
  FsFailFixture f;
  FsStatus first = FsStatus::kOk;
  f.fs->create("/retry_me", [&](FsStatus s) { first = s; });
  f.cluster->schedule_crash(NodeId(1), Duration::millis(30),
                            Duration::millis(400));
  f.sim.run_until(SimTime::zero() + Duration::seconds(30));

  if (first == FsStatus::kAborted) {
    FsStatus second = FsStatus::kAborted;
    f.fs->create("/retry_me", [&](FsStatus s) { second = s; });
    f.sim.run_until(SimTime::zero() + Duration::seconds(60));
    EXPECT_EQ(second, FsStatus::kOk) << "retry after the worker repaired";
  }
  FsStatus stat_st = FsStatus::kAborted;
  f.fs->stat("/retry_me", [&](FsStatus s, Inode) { stat_st = s; });
  f.sim.run_until(SimTime::zero() + Duration::seconds(65));
  EXPECT_EQ(stat_st, FsStatus::kOk);
  EXPECT_TRUE(f.cluster->check_invariants({f.root}).empty());
}

TEST(FsFailure, ResolutionAgainstDeadDirServerTimesOut) {
  FsFailFixture f;
  FsStatus st = FsStatus::kOk;
  f.cluster->crash_node(NodeId(0));  // the root's home
  f.fs->create("/nope", [&](FsStatus s) { st = s; });
  f.sim.run_until(SimTime::zero() + Duration::seconds(10));
  // The existence probe RPC to mds0 times out... note resolve of "/" has no
  // components, so the first RPC is the parent-dir probe at mds0.
  EXPECT_TRUE(st == FsStatus::kUnreachable || st == FsStatus::kAborted)
      << fs_status_name(st);
}

TEST(FsFailure, ReadsFailoverAfterReboot) {
  FsFailFixture f;
  FsStatus st = FsStatus::kAborted;
  f.fs->create("/durable", [&](FsStatus s) { st = s; });
  f.sim.run();
  ASSERT_EQ(st, FsStatus::kOk);

  // Bounce the directory server; after reboot its mem view is rebuilt from
  // stable state and reads work again.
  f.cluster->crash_node(NodeId(0));
  f.sim.run_until(f.sim.now() + Duration::millis(100));
  f.cluster->reboot_node(NodeId(0));
  f.sim.run_until(f.sim.now() + Duration::millis(500));

  FsStatus stat_st = FsStatus::kAborted;
  Inode ino;
  f.fs->stat("/durable", [&](FsStatus s, Inode i) {
    stat_st = s;
    ino = i;
  });
  f.sim.run_until(f.sim.now() + Duration::seconds(5));
  EXPECT_EQ(stat_st, FsStatus::kOk);
  EXPECT_EQ(ino.nlink, 1u);
}

}  // namespace
}  // namespace opc
