// Path-based client API: resolution, create/mkdir/unlink/rename by path,
// stat/readdir, error statuses, rmdir safety, RPC timeouts against dead
// servers, and resolution cost (k components = k round trips).
#include <gtest/gtest.h>

#include "fs/client.h"

namespace opc {
namespace {

struct FsFixture {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace{false};
  std::unique_ptr<Cluster> cluster;
  IdAllocator ids;
  std::unique_ptr<HashPartitioner> part;
  std::unique_ptr<NamespacePlanner> planner;
  ObjectId root;
  std::unique_ptr<FsClient> fs;

  explicit FsFixture(std::uint32_t nodes = 4,
                     ProtocolKind proto = ProtocolKind::kOnePC) {
    ClusterConfig cc;
    cc.n_nodes = nodes;
    cc.protocol = proto;
    cluster = std::make_unique<Cluster>(sim, cc, stats, trace);
    part = std::make_unique<HashPartitioner>(nodes);
    planner = std::make_unique<NamespacePlanner>(*part, OpCosts{});
    root = ids.next();
    cluster->bootstrap_directory(root, part->home_of(root));
    fs = std::make_unique<FsClient>(cluster->env(), *cluster, *planner, ids, root,
                                    NodeId(nodes + 1));
  }

  FsStatus run_op(std::function<void(FsClient::StatusCb)> op) {
    FsStatus out = FsStatus::kAborted;
    bool done = false;
    op([&](FsStatus st) {
      out = st;
      done = true;
    });
    sim.run();
    EXPECT_TRUE(done);
    return out;
  }
};

TEST(PathSplit, AcceptsAndRejectsCorrectly) {
  std::vector<std::string> parts;
  EXPECT_TRUE(FsClient::split_path("/", parts));
  EXPECT_TRUE(parts.empty());
  EXPECT_TRUE(FsClient::split_path("/a/b/c", parts));
  EXPECT_EQ(parts, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(FsClient::split_path("/one", parts));
  EXPECT_EQ(parts, (std::vector<std::string>{"one"}));
  EXPECT_FALSE(FsClient::split_path("", parts));
  EXPECT_FALSE(FsClient::split_path("relative/x", parts));
  EXPECT_FALSE(FsClient::split_path("/a//b", parts));
  EXPECT_FALSE(FsClient::split_path("/a/", parts));
}

TEST(FsClientTest, MkdirCreateStatReaddir) {
  FsFixture f;
  EXPECT_EQ(f.run_op([&](auto cb) { f.fs->mkdir("/projects", cb); }),
            FsStatus::kOk);
  EXPECT_EQ(f.run_op([&](auto cb) { f.fs->mkdir("/projects/opc", cb); }),
            FsStatus::kOk);
  EXPECT_EQ(
      f.run_op([&](auto cb) { f.fs->create("/projects/opc/main.cc", cb); }),
      FsStatus::kOk);
  EXPECT_EQ(
      f.run_op([&](auto cb) { f.fs->create("/projects/opc/util.cc", cb); }),
      FsStatus::kOk);

  FsStatus st = FsStatus::kAborted;
  Inode ino;
  f.fs->stat("/projects/opc/main.cc", [&](FsStatus s, Inode i) {
    st = s;
    ino = i;
  });
  f.sim.run();
  EXPECT_EQ(st, FsStatus::kOk);
  EXPECT_FALSE(ino.is_dir);
  EXPECT_EQ(ino.nlink, 1u);

  std::vector<std::pair<std::string, ObjectId>> entries;
  f.fs->readdir("/projects/opc", [&](FsStatus s, auto e) {
    st = s;
    entries = std::move(e);
  });
  f.sim.run();
  EXPECT_EQ(st, FsStatus::kOk);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "main.cc");  // name-ordered
  EXPECT_EQ(entries[1].first, "util.cc");

  EXPECT_TRUE(f.cluster->check_invariants({f.root}).empty());
}

TEST(FsClientTest, ErrorStatuses) {
  FsFixture f;
  EXPECT_EQ(f.run_op([&](auto cb) { f.fs->create("/no/such/dir/x", cb); }),
            FsStatus::kNotFound);
  EXPECT_EQ(f.run_op([&](auto cb) { f.fs->mkdir("/d", cb); }), FsStatus::kOk);
  EXPECT_EQ(f.run_op([&](auto cb) { f.fs->mkdir("/d", cb); }),
            FsStatus::kExists);
  EXPECT_EQ(f.run_op([&](auto cb) { f.fs->unlink("/d/ghost", cb); }),
            FsStatus::kNotFound);
  EXPECT_EQ(f.run_op([&](auto cb) { f.fs->create("bad path", cb); }),
            FsStatus::kInvalidPath);
  EXPECT_EQ(f.run_op([&](auto cb) { f.fs->rename("/d/ghost", "/d/g2", cb); }),
            FsStatus::kNotFound);

  FsStatus st = FsStatus::kOk;
  f.fs->readdir("/nowhere", [&](FsStatus s, auto) { st = s; });
  f.sim.run();
  EXPECT_EQ(st, FsStatus::kNotFound);
}

TEST(FsClientTest, UnlinkAndRmdirSafety) {
  FsFixture f;
  ASSERT_EQ(f.run_op([&](auto cb) { f.fs->mkdir("/dir", cb); }), FsStatus::kOk);
  ASSERT_EQ(f.run_op([&](auto cb) { f.fs->create("/dir/file", cb); }),
            FsStatus::kOk);

  // Removing a non-empty directory must fail (validated under the lock).
  EXPECT_EQ(f.run_op([&](auto cb) { f.fs->unlink("/dir", cb); }),
            FsStatus::kAborted);
  // Its content is untouched.
  FsStatus st = FsStatus::kAborted;
  f.fs->stat("/dir/file", [&](FsStatus s, Inode) { st = s; });
  f.sim.run();
  EXPECT_EQ(st, FsStatus::kOk);

  // Empty it, then rmdir succeeds.
  EXPECT_EQ(f.run_op([&](auto cb) { f.fs->unlink("/dir/file", cb); }),
            FsStatus::kOk);
  EXPECT_EQ(f.run_op([&](auto cb) { f.fs->unlink("/dir", cb); }),
            FsStatus::kOk);
  f.fs->stat("/dir", [&](FsStatus s, Inode) { st = s; });
  f.sim.run();
  EXPECT_EQ(st, FsStatus::kNotFound);
  EXPECT_TRUE(f.cluster->check_invariants({f.root}).empty());
}

TEST(FsClientTest, RenameMovesAndOverwrites) {
  FsFixture f;
  ASSERT_EQ(f.run_op([&](auto cb) { f.fs->mkdir("/a", cb); }), FsStatus::kOk);
  ASSERT_EQ(f.run_op([&](auto cb) { f.fs->mkdir("/b", cb); }), FsStatus::kOk);
  ASSERT_EQ(f.run_op([&](auto cb) { f.fs->create("/a/x", cb); }),
            FsStatus::kOk);
  ASSERT_EQ(f.run_op([&](auto cb) { f.fs->create("/b/y", cb); }),
            FsStatus::kOk);

  // Plain move.
  EXPECT_EQ(f.run_op([&](auto cb) { f.fs->rename("/a/x", "/b/x", cb); }),
            FsStatus::kOk);
  FsStatus st = FsStatus::kOk;
  f.fs->stat("/a/x", [&](FsStatus s, Inode) { st = s; });
  f.sim.run();
  EXPECT_EQ(st, FsStatus::kNotFound);

  // Overwriting move: /b/x replaces /b/y's name... rename /b/x -> /b/y.
  EXPECT_EQ(f.run_op([&](auto cb) { f.fs->rename("/b/x", "/b/y", cb); }),
            FsStatus::kOk);
  std::vector<std::pair<std::string, ObjectId>> entries;
  f.fs->readdir("/b", [&](FsStatus s, auto e) {
    st = s;
    entries = std::move(e);
  });
  f.sim.run();
  ASSERT_EQ(st, FsStatus::kOk);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, "y");
  EXPECT_TRUE(f.cluster->check_invariants({f.root}).empty());
}

TEST(FsClientTest, DeepResolutionCostsOneRoundTripPerComponent) {
  FsFixture f;
  std::string path;
  for (int depth = 0; depth < 6; ++depth) {
    path += "/l" + std::to_string(depth);
    ASSERT_EQ(f.run_op([&](auto cb) { f.fs->mkdir(path, cb); }), FsStatus::kOk);
  }
  const std::int64_t rpcs_before = f.stats.get("fs.rpcs");
  FsStatus st = FsStatus::kAborted;
  f.fs->stat(path, [&](FsStatus s, Inode) { st = s; });
  f.sim.run();
  EXPECT_EQ(st, FsStatus::kOk);
  // 6 lookups + 1 stat.
  EXPECT_EQ(f.stats.get("fs.rpcs") - rpcs_before, 7);
}

TEST(FsClientTest, RpcTimesOutAgainstCrashedServer) {
  FsFixture f;
  ASSERT_EQ(f.run_op([&](auto cb) { f.fs->mkdir("/t", cb); }), FsStatus::kOk);
  const NodeId home = f.part->home_of(f.root);
  f.cluster->crash_node(home);
  FsStatus st = FsStatus::kOk;
  f.fs->stat("/t", [&](FsStatus s, Inode) { st = s; });
  f.sim.run_until(f.sim.now() + Duration::seconds(5));
  EXPECT_EQ(st, FsStatus::kUnreachable);
}

TEST(FsClientTest, ReadsSeeOnePcCommitsImmediately) {
  // The mem view serves reads: a 1PC commit is visible to lookups as soon
  // as the client got its reply, even though the coordinator's stable
  // flush is still in flight.
  FsFixture f(2);
  bool created = false;
  FsStatus seen = FsStatus::kNotFound;
  f.fs->create("/now", [&](FsStatus st) {
    ASSERT_EQ(st, FsStatus::kOk);
    created = true;
    f.fs->stat("/now", [&](FsStatus s, Inode) { seen = s; });
  });
  f.sim.run();
  EXPECT_TRUE(created);
  EXPECT_EQ(seen, FsStatus::kOk);
}

TEST(FsClientTest, TwoClientsShareTheNamespace) {
  FsFixture f;
  FsClient other(f.cluster->env(), *f.cluster, *f.planner, f.ids, f.root,
                 NodeId(f.cluster->size() + 2));
  ASSERT_EQ(f.run_op([&](auto cb) { f.fs->mkdir("/shared", cb); }),
            FsStatus::kOk);
  FsStatus st = FsStatus::kAborted;
  other.create("/shared/from_other", [&](FsStatus s) { st = s; });
  f.sim.run();
  EXPECT_EQ(st, FsStatus::kOk);
  // First client sees it.
  std::vector<std::pair<std::string, ObjectId>> entries;
  f.fs->readdir("/shared", [&](FsStatus, auto e) { entries = std::move(e); });
  f.sim.run();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, "from_other");
}

TEST(FsClientTest, BuildsLargeTreeAcrossAllProtocols) {
  for (ProtocolKind proto : kAllProtocolsExt) {
    FsFixture f(4, proto);
    int ok = 0;
    const int dirs = 4, files = 6;
    for (int d = 0; d < dirs; ++d) {
      const std::string dir = "/dir" + std::to_string(d);
      ASSERT_EQ(f.run_op([&](auto cb) { f.fs->mkdir(dir, cb); }),
                FsStatus::kOk);
      for (int i = 0; i < files; ++i) {
        if (f.run_op([&](auto cb) {
              f.fs->create(dir + "/f" + std::to_string(i), cb);
            }) == FsStatus::kOk) {
          ++ok;
        }
      }
    }
    EXPECT_EQ(ok, dirs * files) << protocol_name(proto);
    EXPECT_TRUE(f.cluster->check_invariants({f.root}).empty())
        << protocol_name(proto);
  }
}

}  // namespace
}  // namespace opc
