// Nemesis compilation: declarative fault schedules must (a) round-trip
// exactly through the textual codec that repro files use, and (b) compile
// down to the cluster's first-class injection hooks with observable effect
// (node lifecycle, network partitions, trace-triggered crash points).
#include <gtest/gtest.h>

#include "chaos/nemesis.h"
#include "chaos/runner.h"

namespace opc {
namespace {

/// One schedule exercising every fault kind plus a trace trigger.
FaultSchedule full_vocabulary() {
  FaultSchedule s;

  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.node = NodeId(1);
  crash.at = Duration::millis(100);
  crash.duration = Duration::millis(250);
  s.events.push_back(crash);

  FaultEvent part;
  part.kind = FaultKind::kPartition;
  part.node = NodeId(0);
  part.peer = NodeId(2);
  part.at = Duration::millis(50);
  part.duration = Duration::millis(400);
  part.asymmetric = true;
  s.events.push_back(part);

  FaultEvent disk;
  disk.kind = FaultKind::kDiskDegrade;
  disk.node = NodeId(2);
  disk.at = Duration::millis(10);
  disk.duration = Duration::millis(600);
  disk.magnitude = 17.25;
  s.events.push_back(disk);

  FaultEvent mute;
  mute.kind = FaultKind::kHeartbeatMute;
  mute.node = NodeId(0);
  mute.at = Duration::millis(200);
  mute.duration = Duration::millis(100);
  s.events.push_back(mute);

  FaultEvent loss;
  loss.kind = FaultKind::kMessageLoss;
  loss.at = Duration::millis(5);
  loss.duration = Duration::millis(900);
  loss.magnitude = 0.125;
  s.events.push_back(loss);

  FaultEvent jitter;
  jitter.kind = FaultKind::kDelayJitter;
  jitter.at = Duration::zero();
  jitter.duration = Duration::millis(700);
  jitter.magnitude = 250.0;
  s.events.push_back(jitter);

  TraceTrigger t;
  t.on = TraceKind::kLogForceDone;
  t.actor = "log.mds1";
  t.occurrence = 2;
  t.victim = NodeId(1);
  t.delay = Duration::micros(3);
  t.reboot_after = Duration::millis(400);
  s.triggers.push_back(t);

  return s;
}

TEST(ScheduleCodec, FullVocabularyRoundTrips) {
  const FaultSchedule s = full_vocabulary();
  const FaultSchedule back = parse_schedule(render_schedule(s));
  EXPECT_EQ(back, s);
}

TEST(ScheduleCodec, LineParserRejectsMalformedInput) {
  FaultSchedule out;
  EXPECT_FALSE(parse_schedule_line("", out));
  EXPECT_FALSE(parse_schedule_line("random text", out));
  EXPECT_FALSE(parse_schedule_line("fault kind=warp node=0 at_ns=1", out));
  EXPECT_FALSE(parse_schedule_line("fault kind=crash node=", out));
  EXPECT_FALSE(parse_schedule_line("trigger on=NOPE actor=x", out));
  EXPECT_TRUE(out.empty()) << "rejected lines must not touch the schedule";
}

TEST(ScheduleCodec, ParseIgnoresNonScheduleLines) {
  const std::string text =
      "# comment\nproto=1PC\nseed=7\n"
      "fault kind=crash node=1 at_ns=1000000 dur_ns=2000000\n"
      "not a schedule line\n";
  const FaultSchedule s = parse_schedule(text);
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].kind, FaultKind::kCrash);
  EXPECT_TRUE(s.triggers.empty());
}

TEST(ScheduleCodec, HorizonIsTheLatestWindowClose) {
  const FaultSchedule s = full_vocabulary();
  // Latest bounded window: message loss, 5 ms + 900 ms.
  EXPECT_EQ(s.horizon(), Duration::millis(905));
}

TEST(ReproCodec, ConfigAndScheduleRoundTrip) {
  ChaosRunConfig cfg;
  cfg.protocol = ProtocolKind::kPrC;
  cfg.n_nodes = 4;
  cfg.seed = 99;
  cfg.concurrency = 3;
  cfg.n_dirs = 2;
  cfg.run_for = Duration::seconds(5);
  cfg.unsafe_skip_fencing = true;
  const FaultSchedule s = full_vocabulary();

  ChaosRunConfig cfg_back;
  FaultSchedule s_back;
  ASSERT_TRUE(parse_repro(render_repro(cfg, s), cfg_back, s_back));
  EXPECT_EQ(cfg_back, cfg);
  EXPECT_EQ(s_back, s);
}

// ---- Hook compilation against a live cluster ----

struct MiniCluster {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace{true};
  ClusterConfig cc;
  std::unique_ptr<Cluster> cluster;

  MiniCluster() {
    cc.n_nodes = 3;
    cc.protocol = ProtocolKind::kOnePC;
    cc.seed = 17;
    cluster = std::make_unique<Cluster>(sim, cc, stats, trace);
  }
};

TEST(NemesisHooks, CrashFaultDrivesNodeLifecycle) {
  MiniCluster mc;
  FaultSchedule s;
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.node = NodeId(1);
  crash.at = Duration::millis(100);
  crash.duration = Duration::millis(200);
  s.events.push_back(crash);

  Nemesis nem(mc.sim, *mc.cluster, mc.trace);
  nem.install(s);

  mc.sim.run_until(SimTime::zero() + Duration::millis(150));
  EXPECT_FALSE(mc.cluster->node(NodeId(1)).alive());
  mc.sim.run_until(SimTime::zero() + Duration::seconds(2));
  EXPECT_TRUE(mc.cluster->node(NodeId(1)).alive());
}

TEST(NemesisHooks, PartitionFaultSeversWindowThenHeals) {
  MiniCluster mc;
  FaultSchedule s;
  FaultEvent part;
  part.kind = FaultKind::kPartition;
  part.node = NodeId(0);
  part.peer = NodeId(2);
  part.at = Duration::millis(50);
  part.duration = Duration::millis(400);
  s.events.push_back(part);

  Nemesis nem(mc.sim, *mc.cluster, mc.trace);
  nem.install(s);

  mc.sim.run_until(SimTime::zero() + Duration::millis(100));
  EXPECT_TRUE(mc.cluster->network().severed(NodeId(0), NodeId(2)));
  EXPECT_TRUE(mc.cluster->network().severed(NodeId(2), NodeId(0)));
  mc.sim.run_until(SimTime::zero() + Duration::millis(600));
  EXPECT_FALSE(mc.cluster->network().severed(NodeId(0), NodeId(2)));
  EXPECT_FALSE(mc.cluster->network().severed(NodeId(2), NodeId(0)));
}

TEST(NemesisHooks, AsymmetricPartitionSeversOneDirectionOnly) {
  MiniCluster mc;
  FaultSchedule s;
  FaultEvent part;
  part.kind = FaultKind::kPartition;
  part.node = NodeId(0);
  part.peer = NodeId(1);
  part.at = Duration::millis(10);
  part.duration = Duration::millis(300);
  part.asymmetric = true;
  s.events.push_back(part);

  Nemesis nem(mc.sim, *mc.cluster, mc.trace);
  nem.install(s);

  mc.sim.run_until(SimTime::zero() + Duration::millis(50));
  EXPECT_TRUE(mc.cluster->network().severed(NodeId(0), NodeId(1)));
  EXPECT_FALSE(mc.cluster->network().severed(NodeId(1), NodeId(0)));
}

TEST(NemesisHooks, HealUndoesAnUnboundedPartition) {
  MiniCluster mc;
  FaultSchedule s;
  FaultEvent part;
  part.kind = FaultKind::kPartition;
  part.node = NodeId(1);
  part.peer = NodeId(2);
  part.at = Duration::millis(10);
  part.duration = Duration::zero();  // stays until healed
  s.events.push_back(part);

  Nemesis nem(mc.sim, *mc.cluster, mc.trace);
  nem.install(s);
  mc.sim.run_until(SimTime::zero() + Duration::millis(50));
  ASSERT_TRUE(mc.cluster->network().severed(NodeId(1), NodeId(2)));

  nem.disarm();
  nem.heal();
  EXPECT_FALSE(mc.cluster->network().severed(NodeId(1), NodeId(2)));
  EXPECT_FALSE(mc.cluster->network().severed(NodeId(2), NodeId(1)));
}

TEST(NemesisTriggers, CrashPointTriggerFiresAndRunStaysSafe) {
  // "Crash mds1 right after its first forced WAL flush became durable":
  // the trigger must fire exactly once, and the full checker battery must
  // still come back green (crash recovery owes us that).
  ChaosRunConfig cfg;
  cfg.protocol = ProtocolKind::kOnePC;
  cfg.seed = 5;
  cfg.run_for = Duration::seconds(4);

  FaultSchedule s;
  TraceTrigger t;
  t.on = TraceKind::kLogForceDone;
  t.actor = "log.mds1";
  t.occurrence = 1;
  t.victim = NodeId(1);
  t.reboot_after = Duration::millis(300);
  s.triggers.push_back(t);

  const ChaosRunResult r = run_schedule(cfg, s);
  EXPECT_EQ(r.triggers_fired, 1u);
  EXPECT_TRUE(r.passed) << render_schedule(s);
  EXPECT_GT(r.committed, 0u);
}

}  // namespace
}  // namespace opc
