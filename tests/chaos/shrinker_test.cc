// Delta-debugging convergence: a canned known-bad schedule (the fencing
// oracle tripped by the test-only skip-fencing toggle, padded with decoy
// faults) must shrink to a minimal repro that still fails, and that repro
// must replay byte-identically.
#include <gtest/gtest.h>

#include "chaos/shrinker.h"

namespace opc {
namespace {

/// The config the `opc chaos --bug` acceptance demo uses: 1PC, master seed
/// 42, fencing deliberately skipped so unfenced foreign-log reads surface.
ChaosRunConfig bug_cfg() {
  ChaosRunConfig cfg;
  cfg.protocol = ProtocolKind::kOnePC;
  cfg.seed = 42;
  cfg.unsafe_skip_fencing = true;
  return cfg;
}

/// Known-bad: with fencing skipped, any fault that delays a worker's
/// UPDATED past the response budget sends the coordinator into an unfenced
/// foreign-log read.  Several of these three events can do that on their
/// own — which is exactly what makes the schedule a shrinking exercise:
/// ddmin must strip it down to a single event.
FaultSchedule canned_known_bad() {
  FaultSchedule s;

  FaultEvent mute;
  mute.kind = FaultKind::kHeartbeatMute;
  mute.node = NodeId(0);
  mute.at = Duration::millis(1200);
  mute.duration = Duration::millis(400);
  s.events.push_back(mute);

  FaultEvent disk;
  disk.kind = FaultKind::kDiskDegrade;
  disk.node = NodeId(2);
  disk.at = Duration::nanos(4794109050);
  disk.duration = Duration::nanos(354149429);
  disk.magnitude = 11.298411746962774;
  s.events.push_back(disk);

  FaultEvent jitter;
  jitter.kind = FaultKind::kDelayJitter;
  jitter.at = Duration::millis(6500);
  jitter.duration = Duration::millis(800);
  jitter.magnitude = 40.0;
  s.events.push_back(jitter);

  return s;
}

TEST(Shrinker, CannedKnownBadScheduleConvergesToMinimalRepro) {
  const ChaosRunConfig cfg = bug_cfg();
  const FaultSchedule bad = canned_known_bad();

  const ChaosRunResult full = run_schedule(cfg, bad);
  ASSERT_FALSE(full.passed) << "the canned schedule must trip the fencing "
                               "oracle before shrinking means anything";

  const ShrinkResult sr = shrink(cfg, bad);
  EXPECT_TRUE(sr.input_failed);
  EXPECT_FALSE(sr.result.passed);
  EXPECT_GT(sr.runs, 0u);
  // 1-minimal: a single surviving event (which one is ddmin's choice —
  // more than one of the three can trip the oracle alone).
  ASSERT_EQ(sr.minimal.size(), 1u);
  ASSERT_EQ(sr.minimal.events.size(), 1u);
  bool fencing_failure = false;
  for (const CheckFailure& f : sr.result.failures) {
    if (f.oracle == "fencing") fencing_failure = true;
  }
  EXPECT_TRUE(fencing_failure) << render_failures(sr.result.failures);
}

TEST(Shrinker, MinimalReproReplaysDeterministically) {
  const ChaosRunConfig cfg = bug_cfg();
  const ShrinkResult sr = shrink(cfg, canned_known_bad());
  ASSERT_TRUE(sr.input_failed);

  // The repro file round-trips, and replaying it twice is byte-identical.
  ChaosRunConfig cfg_back;
  FaultSchedule s_back;
  ASSERT_TRUE(parse_repro(render_repro(cfg, sr.minimal), cfg_back, s_back));
  EXPECT_EQ(cfg_back, cfg);
  EXPECT_EQ(s_back, sr.minimal);

  const ChaosRunResult a = run_schedule(cfg_back, s_back);
  const ChaosRunResult b = run_schedule(cfg_back, s_back);
  EXPECT_FALSE(a.passed);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.trace_hash, sr.result.trace_hash)
      << "replaying the minimal schedule must reproduce the shrink's run";
}

TEST(Shrinker, PassingInputIsReturnedUnchanged) {
  ChaosRunConfig cfg = bug_cfg();
  cfg.unsafe_skip_fencing = false;  // fencing on: the schedule is harmless
  const FaultSchedule s = canned_known_bad();
  ASSERT_TRUE(run_schedule(cfg, s).passed);

  const ShrinkResult sr = shrink(cfg, s);
  EXPECT_FALSE(sr.input_failed);
  EXPECT_EQ(sr.minimal, s);
}

}  // namespace
}  // namespace opc
