// Schedule exploration: generation determinism, report reproducibility,
// systematic crash-point enumeration, and the four-protocol smoke — 50
// random schedules per paper protocol (200 total) with every checker green.
#include <gtest/gtest.h>

#include "chaos/explorer.h"

namespace opc {
namespace {

ExplorerConfig smoke_cfg(ProtocolKind proto, std::uint32_t n_schedules,
                         std::uint64_t seed) {
  ExplorerConfig cfg;
  cfg.base.protocol = proto;
  cfg.n_schedules = n_schedules;
  cfg.seed = seed;
  return cfg;
}

TEST(RandomSchedules, GenerationIsSeedDeterministicAndBounded) {
  ChaosRunConfig base;
  Rng a(7, 0xC4A05);
  Rng b(7, 0xC4A05);
  for (int i = 0; i < 32; ++i) {
    const FaultSchedule sa = random_schedule(a, base, 4);
    const FaultSchedule sb = random_schedule(b, base, 4);
    EXPECT_EQ(sa, sb);
    EXPECT_GE(sa.size(), 1u);
    // Up to max_faults timed events, plus at most one trace trigger.
    EXPECT_LE(sa.events.size(), 4u);
    EXPECT_LE(sa.triggers.size(), 1u);
  }
}

TEST(Exploration, ReportIsByteIdenticalAcrossReruns) {
  const ExplorerConfig cfg = smoke_cfg(ProtocolKind::kOnePC, 10, 42);
  const ExplorationReport a = explore(cfg);
  const ExplorationReport b = explore(cfg);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(a.combined_hash, b.combined_hash);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.failed, b.failed);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].schedule, b.outcomes[i].schedule);
    EXPECT_EQ(a.outcomes[i].result.trace_hash, b.outcomes[i].result.trace_hash);
  }
}

TEST(Exploration, SystematicModeEnumeratesCrashPoints) {
  ExplorerConfig cfg = smoke_cfg(ProtocolKind::kOnePC, 2, 11);
  cfg.systematic = true;
  cfg.max_systematic = 8;
  const ExplorationReport r = explore(cfg);
  ASSERT_GT(r.outcomes.size(), 2u) << "systematic schedules must be appended";
  std::size_t systematic = 0;
  for (const ScheduleOutcome& o : r.outcomes) {
    if (!o.systematic) continue;
    ++systematic;
    EXPECT_EQ(o.schedule.events.size(), 0u);
    EXPECT_EQ(o.schedule.triggers.size(), 1u);
  }
  EXPECT_GT(systematic, 0u);
  EXPECT_LE(systematic, 8u);
  EXPECT_EQ(r.failed, 0u);
}

class ProtocolSmoke : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ProtocolSmoke, FiftyRandomSchedulesAllCheckersGreen) {
  const ExplorationReport r = explore(smoke_cfg(GetParam(), 50, 7));
  EXPECT_EQ(r.passed, 50u);
  if (r.failed != 0) {
    const ScheduleOutcome* f = r.first_failure();
    ASSERT_NE(f, nullptr);
    std::string detail;
    for (const CheckFailure& cf : f->result.failures) {
      detail += "  [" + cf.oracle + "] " + cf.detail + "\n";
    }
    ADD_FAILURE() << "schedule #" << f->index << " (seed " << f->seed
                  << ") failed:\n"
                  << detail << render_schedule(f->schedule);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPaperProtocols, ProtocolSmoke,
                         ::testing::ValuesIn(kAllProtocols),
                         [](const ::testing::TestParamInfo<ProtocolKind>& i) {
                           return std::string(protocol_name(i.param));
                         });

}  // namespace
}  // namespace opc
