// Differential backend test: the same pre-planned create storm runs on the
// simulator (SimEnv) and on real threads (RtEnv), per protocol, and must
// land in the same place — identical commit/abort/fence totals and an
// identical stable namespace.  The plan fixes every ObjectId, name, and
// participant set up front (storm_plan.h), so the final state is a pure
// function of the plan, not of timing; only timing-dependent measurements
// (latency, wall clock, retry counters) are excluded from the comparison
// (docs/RUNTIME.md §5).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/cluster.h"
#include "rt/rt_cluster.h"
#include "rt/storm_plan.h"
#include "sim/simulator.h"

namespace opc {
namespace {

constexpr std::uint32_t kNodes = 2;
constexpr std::uint32_t kOpsPerNode = 30;
constexpr std::uint32_t kConcurrency = 4;

using Dentry = std::tuple<ObjectId, std::string, ObjectId>;

struct Outcome {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::int64_t fences = 0;
  std::vector<Dentry> dentries;  // sorted
  std::size_t invariant_violations = 0;
};

std::vector<Dentry> collect_dentries(
    const std::vector<const MetaStore*>& stores) {
  std::vector<Dentry> out;
  for (const MetaStore* s : stores) {
    auto d = s->stable_dentries();
    out.insert(out.end(), d.begin(), d.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Outcome run_on_sim(ProtocolKind proto, const StormPlan& plan) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  ClusterConfig cfg;
  cfg.n_nodes = plan.n_nodes;
  cfg.protocol = proto;
  Cluster cluster(sim, cfg, stats, trace);
  for (std::uint32_t i = 0; i < plan.n_nodes; ++i) {
    cluster.bootstrap_directory(plan.dirs[i], NodeId(i));
  }

  // The same closed loop RtCluster runs, on virtual time: `kConcurrency`
  // outstanding per node, refilled from each completion callback.
  struct Loop {
    std::size_t next = 0;
    std::uint32_t inflight = 0;
  };
  std::vector<Loop> loops(plan.n_nodes);
  std::function<void(std::uint32_t)> pump = [&](std::uint32_t i) {
    Loop& lp = loops[i];
    while (lp.inflight < kConcurrency && lp.next < plan.per_node[i].size()) {
      ++lp.inflight;
      Transaction txn = plan.per_node[i][lp.next++];
      cluster.submit(std::move(txn), [&pump, &loops, i](TxnId, TxnOutcome) {
        --loops[i].inflight;
        pump(i);
      });
    }
  };
  for (std::uint32_t i = 0; i < plan.n_nodes; ++i) pump(i);
  sim.run();

  Outcome out;
  for (std::uint32_t i = 0; i < plan.n_nodes; ++i) {
    out.committed += cluster.engine(NodeId(i)).committed_count();
    out.aborted += cluster.engine(NodeId(i)).aborted_count();
  }
  out.fences = stats.get("fencing.requests");
  out.dentries = collect_dentries(cluster.stores());
  out.invariant_violations = cluster.check_invariants(plan.dirs).size();
  return out;
}

Outcome run_on_rt(ProtocolKind proto, const StormPlan& plan) {
  RtClusterConfig cfg;
  cfg.n_nodes = plan.n_nodes;
  cfg.protocol = proto;
  // Faster-than-paper disk keeps the live run short; equivalence is about
  // final state, which the plan makes timing-independent.
  cfg.disk.bytes_per_second = 4.0 * 1024.0 * 1024.0;
  RtCluster cluster(cfg);
  for (std::uint32_t i = 0; i < plan.n_nodes; ++i) {
    cluster.bootstrap_directory(plan.dirs[i], NodeId(i));
  }
  RtCluster::StormResult res = cluster.run_storm(plan, kConcurrency);

  Outcome out;
  out.committed = res.committed;
  out.aborted = res.aborted;
  out.fences = res.stats.get("fencing.requests");
  out.dentries = collect_dentries(cluster.stores());
  out.invariant_violations = cluster.check_invariants(plan.dirs).size();
  return out;
}

void expect_equivalent(ProtocolKind proto, std::uint32_t nodes = kNodes,
                       std::uint32_t participants = 2) {
  const StormPlan plan = make_storm_plan(nodes, kOpsPerNode, participants);
  const Outcome sim = run_on_sim(proto, plan);
  const Outcome rt = run_on_rt(proto, plan);

  // Every planned create commits exactly once on both backends.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(nodes) * kOpsPerNode;
  EXPECT_EQ(sim.committed, expected);
  EXPECT_EQ(rt.committed, sim.committed);
  EXPECT_EQ(sim.aborted, 0u);
  EXPECT_EQ(rt.aborted, sim.aborted);

  // Quiescent runs never fence (heartbeats are off on both backends).
  EXPECT_EQ(sim.fences, 0);
  EXPECT_EQ(rt.fences, sim.fences);

  EXPECT_EQ(sim.invariant_violations, 0u);
  EXPECT_EQ(rt.invariant_violations, 0u);

  // The stable namespace — every (dir, name, inode) edge — matches.
  ASSERT_EQ(rt.dentries.size(), sim.dentries.size());
  EXPECT_EQ(rt.dentries, sim.dentries);
}

TEST(RtEquivalenceTest, PresumedNothing) {
  expect_equivalent(ProtocolKind::kPrN);
}

TEST(RtEquivalenceTest, PresumedCommit) {
  expect_equivalent(ProtocolKind::kPrC);
}

TEST(RtEquivalenceTest, EarlyPrepare) {
  expect_equivalent(ProtocolKind::kEP);
}

TEST(RtEquivalenceTest, OnePhaseCommit) {
  expect_equivalent(ProtocolKind::kOnePC);
}

// Three-participant storms (ISSUE 10): every transaction spans the
// coordinator plus two distinct worker nodes on a 3-node cluster.  Same
// contract — identical totals and an identical stable namespace across the
// two backends.  1PC is the interesting case: every wide submission takes
// the presumed-abort degrade path (src/acp/protocol.h) on both backends.
TEST(RtEquivalenceTest, PresumedNothingThreeParticipants) {
  expect_equivalent(ProtocolKind::kPrN, /*nodes=*/3, /*participants=*/3);
}

TEST(RtEquivalenceTest, PresumedCommitThreeParticipants) {
  expect_equivalent(ProtocolKind::kPrC, /*nodes=*/3, /*participants=*/3);
}

TEST(RtEquivalenceTest, EarlyPrepareThreeParticipants) {
  expect_equivalent(ProtocolKind::kEP, /*nodes=*/3, /*participants=*/3);
}

TEST(RtEquivalenceTest, OnePhaseCommitThreeParticipants) {
  expect_equivalent(ProtocolKind::kOnePC, /*nodes=*/3, /*participants=*/3);
}

}  // namespace
}  // namespace opc
