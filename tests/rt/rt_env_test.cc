// RtEnv executor: ordering, cancellation, cross-worker scheduling,
// quiescence — the Env contract (docs/RUNTIME.md) on the real-time side.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "rt/rt_env.h"

namespace opc {
namespace {

TEST(RtEnvTest, RunsCallbacksInDeadlineOrderOnOneWorker) {
  RtEnv env(1);
  std::vector<int> fired;
  std::atomic<bool> done{false};
  // Schedule from outside the pool (lands on worker 0); reversed deadlines.
  const SimTime base = env.now() + Duration::millis(5);
  env.schedule_on(0, base + Duration::millis(6), [&] {
    fired.push_back(3);
    done.store(true);
  });
  env.schedule_on(0, base + Duration::millis(4), [&] { fired.push_back(2); });
  env.schedule_on(0, base, [&] { fired.push_back(1); });
  while (!done.load()) {
  }
  env.wait_idle();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(RtEnvTest, EqualDeadlinesFireInScheduleOrder) {
  RtEnv env(1);
  std::vector<int> fired;
  const SimTime when = env.now() + Duration::millis(5);
  for (int i = 0; i < 8; ++i) {
    env.schedule_on(0, when, [&fired, i] { fired.push_back(i); });
  }
  env.wait_idle();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(RtEnvTest, CancelPreventsExecutionAndIsIdempotent) {
  RtEnv env(1);
  std::atomic<int> ran{0};
  TimerHandle h =
      env.schedule_on(0, env.now() + Duration::millis(50), [&] { ++ran; });
  EXPECT_TRUE(h.valid());
  EXPECT_TRUE(env.cancel(h));
  EXPECT_FALSE(env.cancel(h)) << "second cancel is a no-op";
  env.wait_idle();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_FALSE(env.cancel(TimerHandle{})) << "default handle never cancels";
}

TEST(RtEnvTest, CancelAfterFireReturnsFalse) {
  RtEnv env(1);
  std::atomic<bool> ran{false};
  TimerHandle h = env.schedule_on(0, env.now(), [&] { ran.store(true); });
  env.wait_idle();
  EXPECT_TRUE(ran.load());
  EXPECT_FALSE(env.cancel(h));
}

TEST(RtEnvTest, SlotReuseInvalidatesStaleHandles) {
  RtEnv env(1);
  std::atomic<int> ran{0};
  TimerHandle a =
      env.schedule_on(0, env.now() + Duration::millis(50), [&] { ++ran; });
  ASSERT_TRUE(env.cancel(a));
  // The freed slot is reused; the old handle's generation is stale.
  TimerHandle b =
      env.schedule_on(0, env.now() + Duration::millis(50), [&] { ++ran; });
  EXPECT_FALSE(env.cancel(a)) << "stale handle must not cancel the new timer";
  EXPECT_TRUE(env.cancel(b));
  env.wait_idle();
  EXPECT_EQ(ran.load(), 0);
}

TEST(RtEnvTest, WorkerAffinityAndCrossWorkerPost) {
  RtEnv env(3);
  std::atomic<std::uint32_t> seen_a{RtEnv::kNoWorker};
  std::atomic<std::uint32_t> seen_b{RtEnv::kNoWorker};
  std::atomic<bool> done{false};
  EXPECT_EQ(env.current_worker(), RtEnv::kNoWorker);
  env.post(1, [&] {
    seen_a.store(env.current_worker());
    // schedule_after from a worker stays on that worker.
    env.schedule_after(Duration::millis(1), [&] {
      seen_b.store(env.current_worker());
      env.post(2, [&] { done.store(true); });
    });
  });
  while (!done.load()) {
  }
  env.wait_idle();
  EXPECT_EQ(seen_a.load(), 1u);
  EXPECT_EQ(seen_b.load(), 1u);
}

TEST(RtEnvTest, NowAdvancesMonotonically) {
  RtEnv env(1);
  const SimTime a = env.now();
  const SimTime b = env.now();
  EXPECT_LE(a, b);
  EXPECT_GE(a, SimTime::zero());
}

TEST(RtEnvTest, PerWorkerRngStreamsDiffer) {
  RtEnv env(2, /*seed=*/7);
  std::atomic<std::uint64_t> d0{0};
  std::atomic<std::uint64_t> d1{0};
  env.post(0, [&] { d0.store(env.rng().uniform_u64(0, UINT64_MAX - 1)); });
  env.post(1, [&] { d1.store(env.rng().uniform_u64(0, UINT64_MAX - 1)); });
  env.wait_idle();
  EXPECT_NE(d0.load(), d1.load());
}

TEST(RtEnvTest, ManyCrossWorkerHopsStayBalanced) {
  // A token bounces across workers; every hop runs exactly once.
  RtEnv env(4);
  std::atomic<int> hops{0};
  constexpr int kHops = 400;
  // Self-referential hop closure via a function pointer shape kept simple:
  struct Bouncer {
    RtEnv* env;
    std::atomic<int>* hops;
    void hop(int remaining) {
      if (remaining == 0) return;
      const std::uint32_t next =
          static_cast<std::uint32_t>(remaining % env->workers());
      env->post(next, [this, remaining] {
        hops->fetch_add(1);
        hop(remaining - 1);
      });
    }
  };
  Bouncer b{&env, &hops};
  b.hop(kHops);
  env.wait_idle();
  EXPECT_EQ(hops.load(), kHops);
}

}  // namespace
}  // namespace opc
