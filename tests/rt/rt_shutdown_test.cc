// Graceful-shutdown audit (ISSUE 6 satellite): the served cluster must
// drain — not hang — when clients vanish mid-request and when stop() races
// in-flight transactions.  RtEnv::wait_idle and RpcServer::stop are the
// two waits that could deadlock; both are exercised with work actually in
// flight on a slow modeled disk.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "rpc/client.h"
#include "rpc/server.h"
#include "rt/rt_cluster.h"

namespace opc::rpc {
namespace {

// Spin (with a wall deadline) until `pred` holds.  flush() only proves the
// bytes reached the socket buffer; these tests must not stop() before the
// server has actually admitted the requests.
template <typename Pred>
bool wait_until(Pred pred, double timeout_s = 30.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

std::string test_sock(const char* tag) {
  return "/tmp/opc-" + std::string(tag) + "-" + std::to_string(::getpid()) +
         ".sock";
}

RtClusterConfig slow_config() {
  RtClusterConfig cfg;
  cfg.n_nodes = 2;
  cfg.protocol = ProtocolKind::kOnePC;
  cfg.net.latency = Duration::zero();
  // ~2 ms per 8 KiB commit force: slow enough that requests are reliably
  // still in flight when the test pulls the rug.
  cfg.disk.bytes_per_second = 4.0 * 1024 * 1024;
  cfg.seed = 11;
  return cfg;
}

TEST(RtShutdown, ConnectionDiesMidRequestWaitIdleStillReturns) {
  RtCluster cluster(slow_config());
  for (std::uint32_t i = 0; i < 2; ++i) {
    cluster.bootstrap_directory(ObjectId(i + 1), NodeId(i));
  }
  RpcServerConfig scfg;
  scfg.uds_path = test_sock("die");
  RpcServer server(cluster, scfg);
  ASSERT_TRUE(server.start());

  // Fire a pile of requests and slam the connection shut without reading a
  // single reply.  The admitted transactions keep running; their replies
  // must be dropped, not leaked or deadlocked on.
  {
    RpcClient client;
    ASSERT_TRUE(client.connect_uds(scfg.uds_path));
    for (int i = 0; i < 64; ++i) {
      client.send_create(1, "orphan_" + std::to_string(i), false);
    }
    ASSERT_TRUE(client.flush(30.0)) << client.error();
  }  // ~> abrupt close with up to 64 requests outstanding

  // UDS delivers the buffered requests even after the peer closed: the
  // server must read, admit, and run every one of them to completion with
  // nobody listening for the replies.
  ASSERT_TRUE(wait_until([&] { return server.committed() == 64; }))
      << "committed " << server.committed() << " of 64 orphaned requests";

  // stop() waits for inflight to drain; if a dead connection could wedge
  // the accounting, this (and the wait_idle after it) would hang and the
  // ctest timeout would flag it.
  server.stop();
  cluster.env().wait_idle();
  EXPECT_EQ(server.inflight(), 0u);

  std::uint64_t committed = 0;
  for (std::uint32_t i = 0; i < 2; ++i) {
    committed += cluster.node(NodeId(i)).engine().committed_count();
  }
  EXPECT_EQ(committed, 64u);
}

TEST(RtShutdown, StopDrainsInflightBeforeReturning) {
  RtCluster cluster(slow_config());
  for (std::uint32_t i = 0; i < 2; ++i) {
    cluster.bootstrap_directory(ObjectId(i + 1), NodeId(i));
  }
  RpcServerConfig scfg;
  scfg.uds_path = test_sock("drain");
  scfg.max_inflight = 256;
  RpcServer server(cluster, scfg);
  ASSERT_TRUE(server.start());

  RpcClient client;
  ASSERT_TRUE(client.connect_uds(scfg.uds_path));
  for (int i = 0; i < 32; ++i) {
    client.send_create(1, "drain_" + std::to_string(i), false);
  }
  ASSERT_TRUE(client.flush(30.0)) << client.error();

  // Wait for every request to be admitted (in flight or already done) so
  // stop() genuinely races live engine work rather than shedding unread
  // frames as SHUTDOWN.
  ASSERT_TRUE(wait_until(
      [&] { return server.committed() + server.inflight() >= 32; }));

  // stop() while those 32 are (mostly) still inside the engines: it must
  // block until each one completed, and the already-encoded replies should
  // still reach the client during the flush grace.
  server.stop();
  EXPECT_EQ(server.inflight(), 0u);

  int answered = 0;
  Reply r;
  while (client.recv_reply(r, 1.0)) {
    EXPECT_TRUE(r.status == Status::kOk || r.status == Status::kAborted);
    ++answered;
  }
  // The drain guarantee is about transactions, not delivery: a reply can
  // race the final socket close.  But in practice the flush grace lands
  // them; requiring >0 catches a stop() that drops everything.
  EXPECT_GT(answered, 0);

  cluster.env().wait_idle();
  std::uint64_t committed = 0;
  for (std::uint32_t i = 0; i < 2; ++i) {
    committed += cluster.node(NodeId(i)).engine().committed_count();
  }
  EXPECT_EQ(committed, 32u);
}

TEST(RtShutdown, StopIsIdempotentAndStartAfterStopFailsCleanly) {
  RtCluster cluster(slow_config());
  cluster.bootstrap_directory(ObjectId(1), NodeId(0));
  RpcServerConfig scfg;
  scfg.uds_path = test_sock("idem");
  RpcServer server(cluster, scfg);
  ASSERT_TRUE(server.start());
  server.stop();
  server.stop();  // second stop is a no-op, not a crash
  EXPECT_FALSE(server.start());  // one-shot lifecycle
  cluster.env().wait_idle();
}

}  // namespace
}  // namespace opc::rpc
