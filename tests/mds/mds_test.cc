// Metadata substrate: store lifecycle (cache/mem/stable), validation,
// replay idempotence, planners, partitioners, invariant checker.
#include <gtest/gtest.h>

#include "mds/invariants.h"
#include "mds/namespace.h"
#include "mds/partition.h"
#include "mds/store.h"

namespace opc {
namespace {

Operation op(OpType t, std::uint64_t target, std::string name = "",
             std::uint64_t child = 0) {
  Operation o;
  o.type = t;
  o.target = ObjectId(target);
  o.child = ObjectId(child);
  o.name = std::move(name);
  return o;
}

struct StoreFixture {
  MetaStore store{NodeId(0)};
  StoreFixture() {
    store.bootstrap_inode(Inode{ObjectId(1), true, 1, 0});  // root dir
  }
};

TEST(StoreTest, PendingIsInvisibleUntilCommitMem) {
  StoreFixture f;
  ASSERT_EQ(f.store.apply(10, op(OpType::kAddDentry, 1, "a", 5)),
            StoreStatus::kOk);
  EXPECT_FALSE(f.store.mem_lookup(ObjectId(1), "a").has_value());
  EXPECT_TRUE(f.store.effective_lookup(10, ObjectId(1), "a").has_value());
  // Another transaction does not see it either.
  EXPECT_FALSE(f.store.effective_lookup(11, ObjectId(1), "a").has_value());
  f.store.commit_mem(10);
  EXPECT_EQ(f.store.mem_lookup(ObjectId(1), "a"), ObjectId(5));
  EXPECT_FALSE(f.store.stable_lookup(ObjectId(1), "a").has_value())
      << "mem runs ahead of stable";
  f.store.commit_stable(10);
  EXPECT_EQ(f.store.stable_lookup(ObjectId(1), "a"), ObjectId(5));
}

TEST(StoreTest, CrashDropsMemAheadOfStable) {
  StoreFixture f;
  ASSERT_EQ(f.store.apply(10, op(OpType::kAddDentry, 1, "a", 5)),
            StoreStatus::kOk);
  f.store.commit_mem(10);
  f.store.crash();
  EXPECT_FALSE(f.store.mem_lookup(ObjectId(1), "a").has_value())
      << "unflushed commit lost with the cache";
  EXPECT_EQ(f.store.unflushed_txns(), 0u);
}

TEST(StoreTest, AbortDropsPending) {
  StoreFixture f;
  ASSERT_EQ(f.store.apply(10, op(OpType::kAddDentry, 1, "a", 5)),
            StoreStatus::kOk);
  f.store.abort_txn(10);
  EXPECT_TRUE(f.store.pending_ops(10).empty());
  ASSERT_EQ(f.store.apply(11, op(OpType::kAddDentry, 1, "a", 6)),
            StoreStatus::kOk)
      << "name free again after abort";
}

TEST(StoreTest, ValidationErrors) {
  StoreFixture f;
  EXPECT_EQ(f.store.apply(1, op(OpType::kAddDentry, 99, "x", 5)),
            StoreStatus::kInodeNotFound);
  f.store.bootstrap_inode(Inode{ObjectId(2), false, 1, 0});
  EXPECT_EQ(f.store.apply(1, op(OpType::kAddDentry, 2, "x", 5)),
            StoreStatus::kNotADirectory);
  EXPECT_EQ(f.store.apply(1, op(OpType::kRemoveDentry, 1, "nope")),
            StoreStatus::kDentryNotFound);
  EXPECT_EQ(f.store.apply(1, op(OpType::kCreateInode, 2)),
            StoreStatus::kInodeExists);
  EXPECT_EQ(f.store.apply(1, op(OpType::kDecLink, 42)),
            StoreStatus::kInodeNotFound);
}

TEST(StoreTest, ChildMismatchGuard) {
  StoreFixture f;
  f.store.bootstrap_inode(Inode{ObjectId(5), false, 1, 0});
  f.store.bootstrap_dentry(ObjectId(1), "a", ObjectId(5));
  Operation rm = op(OpType::kRemoveDentry, 1, "a", 6);  // wrong child
  EXPECT_EQ(f.store.apply(1, rm), StoreStatus::kChildMismatch);
  rm.child = ObjectId(5);
  EXPECT_EQ(f.store.apply(1, rm), StoreStatus::kOk);
}

TEST(StoreTest, DecLinkToZeroRemovesInode) {
  StoreFixture f;
  f.store.bootstrap_inode(Inode{ObjectId(7), false, 1, 0});
  ASSERT_EQ(f.store.apply(1, op(OpType::kDecLink, 7)), StoreStatus::kOk);
  f.store.commit_txn(1);
  EXPECT_FALSE(f.store.stable_inode(ObjectId(7)).has_value());
}

TEST(StoreTest, EffectiveViewChainsOwnPendingOps) {
  StoreFixture f;
  ASSERT_EQ(f.store.apply(1, op(OpType::kCreateInode, 9)), StoreStatus::kOk);
  ASSERT_EQ(f.store.apply(1, op(OpType::kIncLink, 9)), StoreStatus::kOk);
  const auto ino = f.store.effective_inode(1, ObjectId(9));
  ASSERT_TRUE(ino.has_value());
  EXPECT_EQ(ino->nlink, 1u);
  ASSERT_EQ(f.store.apply(1, op(OpType::kDecLink, 9)), StoreStatus::kOk);
  EXPECT_FALSE(f.store.effective_inode(1, ObjectId(9)).has_value());
}

TEST(StoreTest, ReplayIsIdempotent) {
  StoreFixture f;
  std::vector<Operation> ops{op(OpType::kAddDentry, 1, "r", 5),
                             op(OpType::kCreateInode, 5),
                             op(OpType::kIncLink, 5)};
  EXPECT_TRUE(f.store.replay_committed(42, ops));
  EXPECT_FALSE(f.store.replay_committed(42, ops)) << "second replay skipped";
  const auto ino = f.store.stable_inode(ObjectId(5));
  ASSERT_TRUE(ino.has_value());
  EXPECT_EQ(ino->nlink, 1u) << "links not double-counted";
}

TEST(StoreTest, ReplaySkippedWhenCommittedNormally) {
  StoreFixture f;
  ASSERT_EQ(f.store.apply(42, op(OpType::kAddDentry, 1, "n", 5)),
            StoreStatus::kOk);
  f.store.commit_txn(42);
  EXPECT_TRUE(f.store.stable_applied(42));
  EXPECT_FALSE(
      f.store.replay_committed(42, {op(OpType::kAddDentry, 1, "n", 5)}));
}

TEST(StoreTest, DirectoryConventionInCreateInode) {
  StoreFixture f;
  Operation mkdir_op = op(OpType::kCreateInode, 8, "", 8);  // child==target
  ASSERT_EQ(f.store.apply(1, mkdir_op), StoreStatus::kOk);
  f.store.commit_txn(1);
  EXPECT_TRUE(f.store.stable_inode(ObjectId(8))->is_dir);
}

// ---------------------------------------------------------------------------

TEST(PlannerTest, CreateSplitsAcrossTwoNodes) {
  PinnedPartitioner part(2, NodeId(1));
  part.assign(ObjectId(1), NodeId(0));
  NamespacePlanner planner(part, OpCosts{});
  const Transaction txn =
      planner.plan_create(ObjectId(1), "f", ObjectId(2), false);
  ASSERT_EQ(txn.n_participants(), 2u);
  EXPECT_EQ(txn.coordinator(), NodeId(0));
  EXPECT_EQ(txn.sole_worker(), NodeId(1));
  ASSERT_EQ(txn.participants[0].ops.size(), 1u);
  EXPECT_EQ(txn.participants[0].ops[0].type, OpType::kAddDentry);
  ASSERT_EQ(txn.participants[1].ops.size(), 2u);
  EXPECT_EQ(txn.participants[1].ops[0].type, OpType::kCreateInode);
  EXPECT_EQ(txn.participants[1].ops[1].type, OpType::kIncLink);
}

TEST(PlannerTest, ColocatedCreateIsLocal) {
  PinnedPartitioner part(2, NodeId(0));
  part.assign(ObjectId(1), NodeId(0));
  NamespacePlanner planner(part, OpCosts{});
  const Transaction txn =
      planner.plan_create(ObjectId(1), "f", ObjectId(2), false);
  EXPECT_TRUE(txn.is_local());
  EXPECT_EQ(txn.participants[0].ops.size(), 3u);
}

TEST(PlannerTest, RenameWithOverwriteSpansFourNodes) {
  PinnedPartitioner part(4, NodeId(0));
  part.assign(ObjectId(1), NodeId(0));  // src dir
  part.assign(ObjectId(2), NodeId(1));  // dst dir
  part.assign(ObjectId(3), NodeId(2));  // moved inode
  part.assign(ObjectId(4), NodeId(3));  // clobbered inode
  NamespacePlanner planner(part, OpCosts{});
  const Transaction txn = planner.plan_rename(
      ObjectId(1), "a", ObjectId(2), "b", ObjectId(3), ObjectId(4));
  EXPECT_EQ(txn.n_participants(), 4u);
  EXPECT_EQ(txn.coordinator(), NodeId(0));
  EXPECT_EQ(txn.kind, NamespaceOpKind::kRename);
}

TEST(PlannerTest, BatchCreateSharesOneTransaction) {
  PinnedPartitioner part(2, NodeId(1));
  part.assign(ObjectId(1), NodeId(0));
  NamespacePlanner planner(part, OpCosts{});
  const Transaction txn = planner.plan_create_batch(
      ObjectId(1),
      {{"a", ObjectId(2)}, {"b", ObjectId(3)}, {"c", ObjectId(4)}});
  ASSERT_EQ(txn.n_participants(), 2u);
  EXPECT_EQ(txn.participants[0].ops.size(), 3u);  // 3 dentries
  EXPECT_EQ(txn.participants[1].ops.size(), 6u);  // 3 x (create + inclink)
}

TEST(PlannerTest, SpreadCreateSpansNParticipants) {
  PinnedPartitioner part(4, NodeId(1));
  part.assign(ObjectId(1), NodeId(0));
  NamespacePlanner planner(part, OpCosts{});
  const Transaction txn = planner.plan_create_spread(
      ObjectId(1),
      {{"a", ObjectId(2)}, {"b", ObjectId(3)}, {"c", ObjectId(4)}},
      {NodeId(1), NodeId(2), NodeId(3)});
  ASSERT_EQ(txn.n_participants(), 4u);
  EXPECT_EQ(txn.coordinator(), NodeId(0));
  EXPECT_EQ(txn.sole_worker(), kNoNode);
  // Coordinator holds the three dentries; each worker creates one inode.
  EXPECT_EQ(txn.participants[0].ops.size(), 3u);
  for (std::size_t w = 1; w < 4; ++w) {
    ASSERT_EQ(txn.participant(w).ops.size(), 2u);
    EXPECT_EQ(txn.participant(w).ops[0].type, OpType::kCreateInode);
    EXPECT_EQ(txn.participant(w).ops[1].type, OpType::kIncLink);
  }
  EXPECT_EQ(txn.participant(2).node, NodeId(2));
  EXPECT_EQ(txn.participant(2).ops[0].target, ObjectId(3));
}

TEST(PlannerTest, SpreadCreateWithSingleOffHomeEntryMatchesPlanCreate) {
  PinnedPartitioner part(2, NodeId(1));
  part.assign(ObjectId(1), NodeId(0));
  NamespacePlanner planner(part, OpCosts{});
  const Transaction classic =
      planner.plan_create(ObjectId(1), "f", ObjectId(2), false);
  const Transaction spread = planner.plan_create_spread(
      ObjectId(1), {{"f", ObjectId(2)}}, {NodeId(1)});
  ASSERT_EQ(spread.n_participants(), classic.n_participants());
  for (std::size_t i = 0; i < classic.participants.size(); ++i) {
    EXPECT_EQ(spread.participants[i].node, classic.participants[i].node);
    EXPECT_EQ(spread.participants[i].ops, classic.participants[i].ops);
  }
}

TEST(PartitionerTest, HashIsDeterministicAndBalanced) {
  HashPartitioner p(4);
  std::vector<int> counts(4, 0);
  for (std::uint64_t i = 1; i <= 4000; ++i) {
    const NodeId a = p.home_of(ObjectId(i));
    EXPECT_EQ(a, p.home_of(ObjectId(i)));
    ++counts[a.value()];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(PartitionerTest, LocalityKeepsChildrenHome) {
  LocalityPartitioner p(4, 1.0, 7);
  p.assign(ObjectId(1), NodeId(2));
  for (std::uint64_t i = 10; i < 30; ++i) {
    EXPECT_EQ(p.place_child(ObjectId(1), ObjectId(i), i), NodeId(2));
  }
  LocalityPartitioner q(4, 0.0, 7);
  q.assign(ObjectId(1), NodeId(2));
  int away = 0;
  for (std::uint64_t i = 10; i < 110; ++i) {
    if (q.place_child(ObjectId(1), ObjectId(i), i) != NodeId(2)) ++away;
  }
  EXPECT_GT(away, 60) << "locality=0 spills broadly";
}

TEST(PartitionerTest, PlacementIsSticky) {
  LocalityPartitioner p(4, 0.5, 9);
  p.assign(ObjectId(1), NodeId(0));
  const NodeId first = p.place_child(ObjectId(1), ObjectId(5), 1);
  EXPECT_EQ(p.place_child(ObjectId(1), ObjectId(5), 999), first);
  EXPECT_EQ(p.home_of(ObjectId(5)), first);
}

// ---------------------------------------------------------------------------

TEST(InvariantsTest, CleanTreePasses) {
  MetaStore a(NodeId(0)), b(NodeId(1));
  a.bootstrap_inode(Inode{ObjectId(1), true, 1, 0});
  a.bootstrap_dentry(ObjectId(1), "f", ObjectId(2));
  b.bootstrap_inode(Inode{ObjectId(2), false, 1, 0});
  EXPECT_TRUE(check_invariants({&a, &b}, {ObjectId(1)}).empty());
}

TEST(InvariantsTest, DetectsDanglingDentry) {
  MetaStore a(NodeId(0));
  a.bootstrap_inode(Inode{ObjectId(1), true, 1, 0});
  a.bootstrap_dentry(ObjectId(1), "ghost", ObjectId(99));
  const auto v = check_invariants({&a}, {ObjectId(1)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, InvariantViolation::Kind::kDanglingDentry);
}

TEST(InvariantsTest, DetectsOrphanedInode) {
  MetaStore a(NodeId(0)), b(NodeId(1));
  a.bootstrap_inode(Inode{ObjectId(1), true, 1, 0});
  b.bootstrap_inode(Inode{ObjectId(2), false, 1, 0});  // nobody references it
  const auto v = check_invariants({&a, &b}, {ObjectId(1)});
  ASSERT_GE(v.size(), 1u);
  EXPECT_EQ(v[0].kind, InvariantViolation::Kind::kOrphanedInode);
}

TEST(InvariantsTest, DetectsLinkCountMismatch) {
  MetaStore a(NodeId(0));
  a.bootstrap_inode(Inode{ObjectId(1), true, 1, 0});
  a.bootstrap_inode(Inode{ObjectId(2), false, 2, 0});  // claims 2 links
  a.bootstrap_dentry(ObjectId(1), "one", ObjectId(2));
  const auto v = check_invariants({&a}, {ObjectId(1)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, InvariantViolation::Kind::kLinkCountMismatch);
}

TEST(InvariantsTest, DetectsDuplicateInode) {
  MetaStore a(NodeId(0)), b(NodeId(1));
  a.bootstrap_inode(Inode{ObjectId(1), true, 1, 0});
  a.bootstrap_inode(Inode{ObjectId(5), false, 1, 0});
  b.bootstrap_inode(Inode{ObjectId(5), false, 1, 0});
  a.bootstrap_dentry(ObjectId(1), "x", ObjectId(5));
  const auto v = check_invariants({&a, &b}, {ObjectId(1)});
  ASSERT_GE(v.size(), 1u);
  EXPECT_EQ(v[0].kind, InvariantViolation::Kind::kDuplicateInode);
}

TEST(InvariantsTest, RootsAreExemptFromReferenceRules) {
  MetaStore a(NodeId(0));
  a.bootstrap_inode(Inode{ObjectId(1), true, 1, 0});
  EXPECT_TRUE(check_invariants({&a}, {ObjectId(1)}).empty());
  // Without the exemption the unrooted directory trips both rules: orphaned
  // (no referencing dentry) and link-count mismatch (nlink=1 vs 0 refs).
  EXPECT_EQ(check_invariants({&a}, {}).size(), 2u);
}

}  // namespace
}  // namespace opc
