// Hard allocation floor under the bench_diff soft gate.
//
// bench_diff.py compares allocs/event against the committed baseline with a
// fractional threshold — useful for drift, but a refreshed baseline could
// quietly ratchet the number up.  This test pins an absolute ceiling: the
// steady-state Figure-6 1PC storm must stay in single-digit allocations per
// simulator event.  It reuses the global operator-new counting hook from
// bench/report (linking that library replaces the new/delete family with
// counting shims), so the measurement is the same one `opc bench` reports.
//
// Methodology: run one simulated second as warm-up — table growth,
// first-touch pool fills and lazy counter binding all land there — then
// count allocations across the next simulated seconds and divide by the
// kernel events dispatched in that window.  The workload is deterministic,
// so the measured ratio is stable run to run (wall-clock speed is not, and
// is deliberately not asserted here).
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "mds/namespace.h"
#include "report/alloc_hook.h"
#include "sim/simulator.h"
#include "workload/source.h"

namespace opc {
namespace {

// ISSUE 9 acceptance: fig6_storm_1pc at <= 9 allocs/event.  Measured at
// ~8.4 after the memory-architecture pass; the gap to 9.0 is headroom for
// legitimate drift, not an invitation.
constexpr double kAllocsPerEventCeiling = 9.0;

TEST(AllocGate, StormSteadyStateStaysUnderCeiling) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  ClusterConfig cc;
  cc.n_nodes = 2;
  cc.protocol = ProtocolKind::kOnePC;
  Cluster cluster(sim, cc, stats, trace);
  IdAllocator ids;
  const ObjectId dir = ids.next();
  PinnedPartitioner part(2, NodeId(1));
  part.assign(dir, NodeId(0));
  cluster.bootstrap_directory(dir, NodeId(0));
  NamespacePlanner planner(part, OpCosts{});
  ThroughputMeter meter;
  SourceConfig scfg;
  scfg.concurrency = 100;
  CreateStormSource source(cluster.env(), cluster, scfg, meter, stats,
                           planner, ids, dir);
  source.start();

  // Warm-up: one simulated second absorbs all one-time growth.
  sim.run_until(SimTime::zero() + Duration::seconds(1));

  const std::uint64_t events0 = sim.dispatched_events();
  const std::uint64_t allocs0 = benchreport::allocation_count();
  sim.run_until(SimTime::zero() + Duration::seconds(3));
  const std::uint64_t events = sim.dispatched_events() - events0;
  const std::uint64_t allocs = benchreport::allocation_count() - allocs0;

  ASSERT_GT(events, 0u);
  const double per_event =
      static_cast<double>(allocs) / static_cast<double>(events);
  RecordProperty("allocs_per_event", std::to_string(per_event));
  EXPECT_LE(per_event, kAllocsPerEventCeiling)
      << "storm hot path regressed to " << per_event
      << " allocs/event (" << allocs << " allocations over " << events
      << " events); the memory-architecture pass holds this under "
      << kAllocsPerEventCeiling;
}

// Transparent-comparator audit, enforced: every StatsRegistry entry point
// that takes a name must resolve an existing counter without constructing
// a temporary std::string (CounterMap uses std::less<>, so string_view
// probes hit the tree directly).  The obs-side string-keyed maps
// (report/assembler/export) are offline aggregation and deliberately out
// of scope — nothing there runs per simulated event.
TEST(AllocGate, CounterLookupsNeverBuildTemporaryKeys) {
  StatsRegistry stats;
  constexpr std::string_view kNames[] = {
      "acp.msg.total", "wal.force.count", "lock.grants.immediate",
      "net.delivered", "disk.log.mds0.writes"};
  for (const std::string_view n : kNames) stats.add(n, 0);
  Counter handle(stats, "acp.msg.total");
  handle.add();  // first add binds the slot

  const std::uint64_t allocs0 = benchreport::allocation_count();
  for (int i = 0; i < 10000; ++i) {
    stats.add(kNames[i % 5]);
    stats.set(kNames[(i + 1) % 5], i);
    (void)stats.get(kNames[(i + 2) % 5]);
    (void)stats.slot(kNames[(i + 3) % 5]);
    handle.add();
  }
  EXPECT_EQ(benchreport::allocation_count() - allocs0, 0u)
      << "a registry entry point built a temporary std::string key";
}

}  // namespace
}  // namespace opc
