// Simulation kernel: time arithmetic, event ordering, cancellation, RNG
// determinism, trace hashing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace opc {
namespace {

TEST(SimTimeTest, ArithmeticAndComparisons) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + Duration::millis(5);
  EXPECT_EQ((t1 - t0).count_nanos(), 5'000'000);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(t1 - Duration::millis(5), t0);
  EXPECT_EQ(Duration::micros(100) * 3, Duration::micros(300));
  EXPECT_EQ(Duration::seconds(1) / 4, Duration::millis(250));
  EXPECT_EQ((-Duration::millis(2)).count_nanos(), -2'000'000);
}

TEST(SimTimeTest, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds_f(0.5).count_nanos(), 500'000'000);
  EXPECT_EQ(Duration::from_seconds_f(1e-9).count_nanos(), 1);
  // 8192 bytes at 400 KiB/s = 20 ms.
  const Duration d = Duration::from_seconds_f(8192.0 / (400.0 * 1024.0));
  EXPECT_EQ(d.count_nanos(), 20'000'000);
}

TEST(SimTimeTest, Rendering) {
  EXPECT_EQ(to_string(Duration::millis(20)), "20.000ms");
  EXPECT_EQ(to_string(Duration::micros(100)), "100.000us");
  EXPECT_EQ(to_string(Duration::nanos(7)), "7ns");
  EXPECT_EQ(to_string(Duration::seconds(3)), "3.000s");
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::millis(3), [&] { order.push_back(3); });
  sim.schedule_after(Duration::millis(1), [&] { order.push_back(1); });
  sim.schedule_after(Duration::millis(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::zero() + Duration::millis(3));
}

TEST(SimulatorTest, SameInstantIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    sim.schedule_after(Duration::millis(1), [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, NestedSchedulingFromCallbacks) {
  Simulator sim;
  int fired = 0;
  std::function<void(int)> chain = [&](int depth) {
    ++fired;
    if (depth < 10) {
      sim.schedule_after(Duration::micros(1), [&, depth] { chain(depth + 1); });
    }
  };
  sim.schedule_after(Duration::zero(), [&] { chain(0); });
  EXPECT_EQ(sim.run(), 11u);
  EXPECT_EQ(fired, 11);
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_after(Duration::millis(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h)) << "double cancel is a no-op";
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, CancelAfterFireIsNoop) {
  Simulator sim;
  EventHandle h = sim.schedule_after(Duration::millis(1), [] {});
  sim.schedule_after(Duration::millis(5), [] {});  // keeps queue non-empty
  sim.run_until(SimTime::zero() + Duration::millis(2));
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
}

TEST(SimulatorTest, RunUntilStopsAtDeadlineAndResumesCleanly) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::millis(1), [&] { order.push_back(1); });
  sim.schedule_after(Duration::millis(10), [&] { order.push_back(10); });
  sim.run_until(SimTime::zero() + Duration::millis(5));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), SimTime::zero() + Duration::millis(5));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 10}));
}

TEST(SimulatorTest, StopBreaksRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::millis(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_after(Duration::millis(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, IdleAndPendingCounts) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  EventHandle a = sim.schedule_after(Duration::millis(1), [] {});
  sim.schedule_after(Duration::millis(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, StaleHandleAfterSlotReuseIsRejected) {
  Simulator sim;
  bool first = false, second = false;
  EventHandle a =
      sim.schedule_after(Duration::millis(1), [&] { first = true; });
  EXPECT_TRUE(sim.cancel(a));
  // The freed slot is recycled for the next schedule with its generation
  // bumped; the stale handle must not reach the new occupant.
  EventHandle b =
      sim.schedule_after(Duration::millis(2), [&] { second = true; });
  EXPECT_FALSE(sim.cancel(a));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
  // Post-fire, b's slot is free again: both handles are now stale.
  EXPECT_FALSE(sim.cancel(b));
  EXPECT_FALSE(sim.cancel(a));
}

TEST(SimulatorTest, CallbackCanCancelPendingEvent) {
  Simulator sim;
  bool victim_fired = false;
  EventHandle victim =
      sim.schedule_after(Duration::millis(5), [&] { victim_fired = true; });
  sim.schedule_after(Duration::millis(1),
                     [&] { EXPECT_TRUE(sim.cancel(victim)); });
  sim.schedule_after(Duration::millis(9), [] {});
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_FALSE(victim_fired);
}

TEST(SimulatorTest, RepeatedDeadlineProbesPreserveFifoOrder) {
  // O(1) deadline probes: run_until before the first event must not touch
  // the queue (the old kernel popped and re-pushed the head, which is both
  // slow and an ordering hazard).
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule_after(Duration::millis(10), [&] { order.push_back(2); });
  sim.schedule_after(Duration::millis(10), [&] { order.push_back(3); });
  for (int ms = 1; ms <= 9; ++ms) {
    EXPECT_EQ(sim.run_until(SimTime::zero() + Duration::millis(ms)), 0u);
    EXPECT_EQ(sim.pending_events(), 3u);
  }
  // A deadline exactly on the event time dispatches it (inclusive bound).
  EXPECT_EQ(sim.run_until(SimTime::zero() + Duration::millis(10)), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ChurnStressMatchesReferenceModel) {
  // Randomized schedule/cancel/reschedule interleavings, with partial
  // drains between bursts, checked against a brute-force reference model.
  // 20k operations keeps >4096 events live at peaks, so the slab crosses
  // chunk boundaries and interior heap removals happen at every depth.
  Simulator sim;
  Rng rng(0x0206'2012);

  struct Pending {
    std::int64_t when_ns;   // absolute fire time
    std::uint64_t seq;      // global schedule order (FIFO tiebreak)
    std::uint64_t id;
    EventHandle h;
  };
  std::vector<Pending> model;
  std::vector<std::uint64_t> fired;
  std::uint64_t next_seq = 0, next_id = 0;

  auto expect_drain = [&](std::int64_t deadline_ns) {
    // Reference semantics: every pending event with when <= deadline fires,
    // ordered by (when, schedule seq).
    std::vector<Pending> due;
    std::vector<Pending> rest;
    for (const Pending& p : model) {
      (p.when_ns <= deadline_ns ? due : rest).push_back(p);
    }
    std::sort(due.begin(), due.end(), [](const Pending& a, const Pending& b) {
      return a.when_ns != b.when_ns ? a.when_ns < b.when_ns : a.seq < b.seq;
    });
    fired.clear();
    const std::uint64_t n =
        sim.run_until(SimTime::zero() + Duration::nanos(deadline_ns));
    ASSERT_EQ(n, due.size());
    ASSERT_EQ(fired.size(), due.size());
    for (std::size_t i = 0; i < due.size(); ++i) {
      EXPECT_EQ(fired[i], due[i].id) << "drain order diverged at " << i;
    }
    model = std::move(rest);
  };

  const std::int64_t kBurstNs = 100'000;
  std::int64_t base_ns = 0;
  for (int burst = 0; burst < 4; ++burst) {
    for (int op = 0; op < 5000; ++op) {
      const std::uint64_t pick = rng.uniform_u64(0, 99);
      if (pick < 55 || model.empty()) {
        Pending p;
        p.when_ns =
            base_ns + static_cast<std::int64_t>(rng.uniform_u64(0, 2 * kBurstNs));
        p.seq = next_seq++;
        p.id = next_id++;
        p.h = sim.schedule_at(SimTime::zero() + Duration::nanos(p.when_ns),
                              [&fired, id = p.id] { fired.push_back(id); });
        model.push_back(p);
      } else if (pick < 85) {
        const std::size_t victim = rng.index(model.size());
        EXPECT_TRUE(sim.cancel(model[victim].h));
        EXPECT_FALSE(sim.cancel(model[victim].h));
        model.erase(model.begin() + static_cast<std::ptrdiff_t>(victim));
      } else {
        // Reschedule = cancel + new schedule (fresh FIFO position).
        const std::size_t victim = rng.index(model.size());
        Pending p = model[victim];
        EXPECT_TRUE(sim.cancel(p.h));
        model.erase(model.begin() + static_cast<std::ptrdiff_t>(victim));
        p.when_ns =
            base_ns + static_cast<std::int64_t>(rng.uniform_u64(0, 2 * kBurstNs));
        p.seq = next_seq++;
        p.h = sim.schedule_at(SimTime::zero() + Duration::nanos(p.when_ns),
                              [&fired, id = p.id] { fired.push_back(id); });
        model.push_back(p);
      }
    }
    EXPECT_EQ(sim.pending_events(), model.size());
    base_ns += kBurstNs;
    expect_drain(base_ns);
  }
  // Final drain far past every scheduled time empties the queue in order.
  expect_drain(base_ns + 10 * kBurstNs);
  EXPECT_TRUE(sim.idle());
  EXPECT_TRUE(model.empty());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, StreamsDiffer) {
  Rng a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformBoundsRespected) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = r.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  for (int i = 0; i < 10000; ++i) {
    const double d = r.uniform01();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng r(11);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[r.index(10)];
  for (int b : buckets) {
    EXPECT_GT(b, n / 10 - n / 50);
    EXPECT_LT(b, n / 10 + n / 50);
  }
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng r(13);
  const Duration mean = Duration::millis(10);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(r.exponential(mean).count_nanos());
  }
  const double got = sum / n;
  EXPECT_NEAR(got, 1e7, 1e7 * 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(w, v);
}

TEST(TraceTest, HashIsOrderAndContentSensitive) {
  TraceRecorder a, b;
  a.record(SimTime::zero(), TraceKind::kMessageSend, "mds0", "x", 1);
  a.record(SimTime::zero(), TraceKind::kMessageRecv, "mds1", "x", 1);
  b.record(SimTime::zero(), TraceKind::kMessageRecv, "mds1", "x", 1);
  b.record(SimTime::zero(), TraceKind::kMessageSend, "mds0", "x", 1);
  EXPECT_NE(a.history_hash(), b.history_hash());

  TraceRecorder c;
  c.record(SimTime::zero(), TraceKind::kMessageSend, "mds0", "x", 1);
  c.record(SimTime::zero(), TraceKind::kMessageRecv, "mds1", "x", 1);
  EXPECT_EQ(a.history_hash(), c.history_hash());
}

TEST(TraceTest, DisabledRecorderStoresNothing) {
  TraceRecorder t(false);
  t.record(SimTime::zero(), TraceKind::kInfo, "a", "b");
  EXPECT_EQ(t.size(), 0u);
}

TEST(TraceTest, PerTxnFilterAndRender) {
  TraceRecorder t;
  t.record(SimTime::zero(), TraceKind::kTxnBegin, "mds0", "begin", 7);
  t.record(SimTime::zero() + Duration::millis(1), TraceKind::kTxnBegin,
           "mds0", "begin", 8);
  t.record(SimTime::zero() + Duration::millis(2), TraceKind::kTxnCommit,
           "mds0", "done", 7);
  EXPECT_EQ(t.for_txn(7).size(), 2u);
  const std::string rendered = t.render();
  EXPECT_NE(rendered.find("BEGIN"), std::string::npos);
  EXPECT_NE(rendered.find("txn 7"), std::string::npos);
}

}  // namespace
}  // namespace opc
