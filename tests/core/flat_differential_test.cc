// Differential coverage for the flat hot-path containers (core/flat.h) and
// the structures rebuilt on top of them (mds/store.h, lock/lock_manager.h).
//
// The memory-architecture pass swapped std::map / std::unordered_* for
// open-addressing tables on the storm hot path.  The invariant checkers,
// snapshot comparators and readdir all relied on specific semantics of the
// old containers — ordered iteration, erase-anything-anytime, stability of
// values across growth.  Each test here drives the new structure and an
// old-container reference model through the same randomized operation
// sequence and requires identical observable behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/flat.h"
#include "env/sim_env.h"
#include "lock/lock_manager.h"
#include "mds/store.h"
#include "sim/simulator.h"

namespace opc {
namespace {

/// Deterministic xorshift so the differential sequences are reproducible.
struct Rng {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

TEST(FlatDifferential, MapMatchesUnorderedMapUnderChurn) {
  FlatMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng;
  for (int round = 0; round < 20000; ++round) {
    const std::uint64_t key = rng.below(512);  // force collisions and reuse
    switch (rng.below(4)) {
      case 0: {  // insert-or-assign via operator[]
        const std::uint64_t v = rng.next();
        flat[key] = v;
        ref[key] = v;
        break;
      }
      case 1: {  // try_emplace must not clobber
        auto [slot, inserted] = flat.try_emplace(key, round);
        const auto r = ref.try_emplace(key, round);
        ASSERT_EQ(inserted, r.second);
        ASSERT_EQ(*slot, r.first->second);
        break;
      }
      case 2: {  // erase returns whether the key existed
        ASSERT_EQ(flat.erase(key), ref.erase(key) > 0);
        break;
      }
      default: {  // lookup
        const std::uint64_t* p = flat.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(p != nullptr, it != ref.end());
        if (p != nullptr) ASSERT_EQ(*p, it->second);
      }
    }
  }
  // Full-contents equality, iteration order ignored (neither container
  // promises one; everything order-sensitive sorts explicitly).
  ASSERT_EQ(flat.size(), ref.size());
  std::size_t visited = 0;
  flat.for_each([&](const std::uint64_t& k, const std::uint64_t& v) {
    ++visited;
    const auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    ASSERT_EQ(v, it->second);
  });
  ASSERT_EQ(visited, ref.size());
}

TEST(FlatDifferential, SetMatchesStdSetUnderChurn) {
  FlatSet<std::uint64_t> flat;
  std::set<std::uint64_t> ref;
  Rng rng;
  for (int round = 0; round < 20000; ++round) {
    const std::uint64_t key = rng.below(256);
    switch (rng.below(3)) {
      case 0:
        ASSERT_EQ(flat.insert(key), ref.insert(key).second);
        break;
      case 1:
        ASSERT_EQ(flat.erase(key), ref.erase(key) > 0);
        break;
      default:
        ASSERT_EQ(flat.contains(key), ref.count(key) > 0);
    }
  }
  ASSERT_EQ(flat.size(), ref.size());
}

// The checkers drain containers with an "iterate, collect, erase" pattern
// (release_all, reset, crash).  Backward-shift erase makes live iteration
// mutation undefined for FlatMap, so every such site snapshots keys first —
// this test pins that the snapshot-then-erase idiom drains exactly the keys
// a std::map reference drains.
TEST(FlatDifferential, SnapshotThenEraseDrainsLikeOrderedMap) {
  FlatMap<std::uint64_t, std::uint64_t> flat;
  std::map<std::uint64_t, std::uint64_t> ref;
  Rng rng;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t k = rng.next();
    flat[k] = i;
    ref[k] = i;
  }
  std::vector<std::uint64_t> victims;
  flat.for_each([&victims](const std::uint64_t& k, const std::uint64_t& v) {
    if (v % 3 == 0) victims.push_back(k);
  });
  for (const std::uint64_t k : victims) {
    ASSERT_TRUE(flat.erase(k));
    ASSERT_EQ(ref.erase(k), 1u);
  }
  ASSERT_EQ(flat.size(), ref.size());
  ref.erase(ref.begin(), ref.end());  // drain the rest both ways
  std::vector<std::uint64_t> rest;
  flat.for_each(
      [&rest](const std::uint64_t& k, const std::uint64_t&) { rest.push_back(k); });
  for (const std::uint64_t k : rest) ASSERT_TRUE(flat.erase(k));
  ASSERT_TRUE(flat.empty());
  ASSERT_TRUE(ref.empty());
}

// ObjectId keys survive arbitrary growth: every previously inserted id is
// still found (with its value intact) after the table rehashes many times.
// Slot pointers are explicitly NOT stable across growth — the hot paths
// refetch after any insert — so the test validates values, not addresses.
TEST(FlatDifferential, RehashKeepsObjectIdKeysFindable) {
  FlatMap<std::uint64_t, std::uint64_t> flat;
  std::vector<std::uint64_t> ids;
  Rng rng;
  for (int i = 0; i < 50000; ++i) {
    // Realistic ObjectId shapes: small sequential ids plus sparse hashes.
    const std::uint64_t id =
        (i % 2 == 0) ? static_cast<std::uint64_t>(i) : rng.next();
    if (flat.try_emplace(id, id ^ 0xabcdefull).second) ids.push_back(id);
    if (i % 4096 == 0) {
      for (const std::uint64_t seen : ids) {
        const std::uint64_t* p = flat.find(seen);
        ASSERT_NE(p, nullptr) << "id lost across rehash: " << seen;
        ASSERT_EQ(*p, seen ^ 0xabcdefull);
      }
    }
  }
}

// --- MetaStore vs an ordered reference model -------------------------------
//
// The chaos checkers equality-compare stable_dentries()/stable_inodes()
// dumps across crash/recovery, and readdir feeds path resolution: all three
// depended on std::map's sorted iteration.  Drive the flat-table store and
// a std::map model through one randomized namespace history and require
// identical ordered dumps and listings at every commit.
TEST(FlatDifferential, StoreDumpsMatchOrderedMapModel) {
  MetaStore store{NodeId(0)};
  std::map<std::uint64_t, Inode> ref_inodes;
  std::map<std::pair<std::uint64_t, std::string>, ObjectId> ref_dentries;

  const ObjectId root(1);
  store.bootstrap_inode(Inode{root, true, 1, 0});
  ref_inodes[root.value()] = Inode{root, true, 1, 0};

  Rng rng;
  TxnId txn = 100;
  std::uint64_t next_id = 2;
  std::vector<std::pair<std::uint64_t, std::string>> live;  // (dir, name)
  for (int round = 0; round < 400; ++round) {
    ++txn;
    if (live.empty() || rng.below(3) != 0) {
      // CREATE: new file inode + dentry under root.
      const ObjectId child(next_id++);
      const std::string name = "f" + std::to_string(child.value());
      ASSERT_EQ(store.apply(txn, Operation{OpType::kCreateInode, child,
                                           ObjectId{}, ""}),
                StoreStatus::kOk);
      ASSERT_EQ(store.apply(txn, Operation{OpType::kAddDentry, root, child,
                                           name}),
                StoreStatus::kOk);
      store.commit_txn(txn);
      ref_inodes[child.value()] = Inode{child, false, 0, 0};
      ref_dentries[{root.value(), name}] = child;
      live.emplace_back(root.value(), name);
    } else {
      // UNLINK a random live entry.
      const std::size_t pick = rng.below(live.size());
      const auto [dir, name] = live[pick];
      const ObjectId child = ref_dentries.at({dir, name});
      ASSERT_EQ(store.apply(txn, Operation{OpType::kRemoveDentry,
                                           ObjectId(dir), child, name}),
                StoreStatus::kOk);
      ASSERT_EQ(store.apply(txn, Operation{OpType::kRemoveInode, child,
                                           ObjectId{}, ""}),
                StoreStatus::kOk);
      store.commit_txn(txn);
      ref_inodes.erase(child.value());
      ref_dentries.erase({dir, name});
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    if (round % 25 != 0) continue;
    // Ordered dumps must equal the std::map model's natural iteration.
    const std::vector<Inode> inodes = store.stable_inodes();
    ASSERT_EQ(inodes.size(), ref_inodes.size());
    std::size_t i = 0;
    for (const auto& [id, ino] : ref_inodes) {
      ASSERT_EQ(inodes[i].id.value(), id);
      ASSERT_EQ(inodes[i], ino);
      ++i;
    }
    const auto dentries = store.stable_dentries();
    ASSERT_EQ(dentries.size(), ref_dentries.size());
    i = 0;
    for (const auto& [key, child] : ref_dentries) {
      ASSERT_EQ(std::get<0>(dentries[i]).value(), key.first);
      ASSERT_EQ(std::get<1>(dentries[i]), key.second);
      ASSERT_EQ(std::get<2>(dentries[i]), child);
      ++i;
    }
    // readdir order == the old map's (dir, name) range scan order.
    const auto listing = store.mem_list_dir(root);
    ASSERT_TRUE(std::is_sorted(
        listing.begin(), listing.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; }));
    ASSERT_EQ(listing.size(), ref_dentries.size());
  }
}

// --- Lock manager vs a FIFO reference model --------------------------------
//
// The lock table's unordered_map+unordered_set trio became pooled flat
// structures; what must survive is the queueing discipline: FIFO grants per
// resource, shared coalescing, and release_all dropping every hold.  Replay
// a contention scenario and compare the observable grant order against a
// hand-computed reference.
TEST(FlatDifferential, LockQueueKeepsFifoGrantOrder) {
  Simulator sim;
  SimEnv env(sim);
  StatsRegistry stats;
  TraceRecorder trace(false);
  LockManager lm(env, "diff", stats, trace);

  std::vector<std::uint64_t> grants;
  const std::uint64_t kRes = 7;
  lm.acquire(1, kRes, LockMode::kExclusive, [&grants] { grants.push_back(1); });
  for (std::uint64_t t = 2; t <= 6; ++t) {
    lm.acquire(t, kRes, LockMode::kExclusive,
               [&grants, t] { grants.push_back(t); });
  }
  sim.run();
  ASSERT_EQ(grants, (std::vector<std::uint64_t>{1}));
  for (std::uint64_t t = 1; t <= 6; ++t) {
    lm.release_all(t);
    sim.run();
  }
  // Waiters drained strictly in arrival order.
  ASSERT_EQ(grants, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));

  // Shared coalescing: S holders stack, a later X waits for all of them.
  grants.clear();
  lm.acquire(10, kRes, LockMode::kShared, [&grants] { grants.push_back(10); });
  lm.acquire(11, kRes, LockMode::kShared, [&grants] { grants.push_back(11); });
  lm.acquire(12, kRes, LockMode::kExclusive,
             [&grants] { grants.push_back(12); });
  sim.run();
  ASSERT_EQ(grants, (std::vector<std::uint64_t>{10, 11}));
  lm.release_all(10);
  sim.run();
  ASSERT_EQ(grants, (std::vector<std::uint64_t>{10, 11}));  // 11 still holds
  lm.release_all(11);
  sim.run();
  ASSERT_EQ(grants, (std::vector<std::uint64_t>{10, 11, 12}));
  lm.release_all(12);
  sim.run();
}

}  // namespace
}  // namespace opc
