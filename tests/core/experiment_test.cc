// Experiment-driver behaviour: the Figure 6 throughput shape, run
// determinism, and the parallel sweep runner.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/sweep.h"

namespace opc {
namespace {

ExperimentConfig short_fig6(ProtocolKind proto) {
  ExperimentConfig cfg = paper_fig6_config(proto);
  cfg.run_for = Duration::seconds(12);
  cfg.warmup = Duration::seconds(2);
  return cfg;
}

TEST(Fig6Shape, OnePcBeatsTwoPcFamilyByPaperMargin) {
  const double prn = run_create_storm(short_fig6(ProtocolKind::kPrN)).ops_per_second;
  const double prc = run_create_storm(short_fig6(ProtocolKind::kPrC)).ops_per_second;
  const double ep = run_create_storm(short_fig6(ProtocolKind::kEP)).ops_per_second;
  const double onepc =
      run_create_storm(short_fig6(ProtocolKind::kOnePC)).ops_per_second;

  // Paper: PrN 15, PrC ~15, EP 16, 1PC 24 (+>50 %).  We require the shape:
  // absolute values in the same band, ordering preserved, 1PC's win > 40 %.
  EXPECT_GT(prn, 10.0);
  EXPECT_LT(prn, 22.0);
  EXPECT_GT(onepc, 19.0);
  EXPECT_LT(onepc, 32.0);
  EXPECT_NEAR(prc, prn, prn * 0.10);
  EXPECT_GE(ep, prn * 0.99);
  EXPECT_GT(onepc, prn * 1.4) << "1PC must win by the paper's >50% margin "
                              << "(we accept >=40%)";
}

TEST(Fig6Shape, RunsAreCleanAndConsistent) {
  const ExperimentResult r = run_create_storm(short_fig6(ProtocolKind::kOnePC));
  EXPECT_EQ(r.invariant_violations, 0u) << r.violation_report;
  EXPECT_EQ(r.aborted, 0u);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_GT(r.committed, 100u);
}

TEST(Determinism, SameSeedSameHistory) {
  ExperimentConfig cfg = short_fig6(ProtocolKind::kOnePC);
  cfg.run_for = Duration::seconds(4);
  cfg.warmup = Duration::seconds(1);
  cfg.trace = true;
  const ExperimentResult a = run_create_storm(cfg);
  const ExperimentResult b = run_create_storm(cfg);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_DOUBLE_EQ(a.ops_per_second, b.ops_per_second);
}

TEST(Determinism, EqualSeedsEqualTraceHashAcrossProtocols) {
  // The property `opc storm --trace-hash` exposes for scripts: the history
  // hash is a pure function of (config, seed) — equal for equal inputs.
  // The create storm is a closed deterministic loop (the seed never enters
  // it), so every protocol must hash identically across reruns; seed
  // sensitivity is asserted on the mixed workload, whose generator is the
  // one consumer of cluster.seed.
  for (ProtocolKind p : kAllProtocols) {
    ExperimentConfig cfg = paper_fig6_config(p);
    cfg.run_for = Duration::seconds(3);
    cfg.warmup = Duration::seconds(1);
    cfg.trace = true;
    const std::uint64_t first = run_create_storm(cfg).trace_hash;
    EXPECT_EQ(run_create_storm(cfg).trace_hash, first) << protocol_name(p);
  }
  ExperimentConfig cfg = paper_fig6_config(ProtocolKind::kOnePC);
  cfg.run_for = Duration::seconds(3);
  cfg.warmup = Duration::seconds(1);
  cfg.trace = true;
  const std::uint64_t first = run_mixed(cfg, MixedSource::Mix{}, 4).trace_hash;
  EXPECT_EQ(run_mixed(cfg, MixedSource::Mix{}, 4).trace_hash, first);
  cfg.cluster.seed += 1;
  EXPECT_NE(run_mixed(cfg, MixedSource::Mix{}, 4).trace_hash, first)
      << "a different seed must change the mixed-workload history";
}

TEST(Determinism, ParallelSweepMatchesSequential) {
  std::vector<ProtocolKind> protos = {ProtocolKind::kPrN, ProtocolKind::kPrC,
                                      ProtocolKind::kEP, ProtocolKind::kOnePC};
  auto make_cfg = [](ProtocolKind p) {
    ExperimentConfig cfg = paper_fig6_config(p);
    cfg.run_for = Duration::seconds(3);
    cfg.warmup = Duration::seconds(1);
    cfg.trace = true;
    return cfg;
  };
  std::vector<std::uint64_t> sequential;
  for (ProtocolKind p : protos) {
    sequential.push_back(run_create_storm(make_cfg(p)).trace_hash);
  }
  const auto parallel = ParallelSweep::map<ProtocolKind, std::uint64_t>(
      protos,
      [&](const ProtocolKind& p) {
        return run_create_storm(make_cfg(p)).trace_hash;
      },
      /*threads=*/4);
  EXPECT_EQ(parallel, sequential);
}

TEST(Batching, AggregationMultipliesThroughput) {
  // Paper §VI: aggregating ops into one transaction amortizes locks and
  // forced writes.  Batch 8 must beat batch 1 by a wide margin.
  ExperimentConfig cfg = short_fig6(ProtocolKind::kOnePC);
  cfg.run_for = Duration::seconds(8);
  const double b1 = run_batched_storm(cfg, 1).ops_per_second;
  const double b8 = run_batched_storm(cfg, 8).ops_per_second;
  EXPECT_GT(b8, b1 * 3.0);
}

TEST(MixedWorkload, CommitsCleanlyWithRenames) {
  ExperimentConfig cfg;
  cfg.cluster.n_nodes = 4;
  cfg.cluster.protocol = ProtocolKind::kOnePC;
  cfg.cluster.record_history = true;
  cfg.source.concurrency = 8;
  cfg.source.max_ops = 300;
  cfg.run_for = Duration::seconds(60);
  cfg.warmup = Duration::zero();
  const ExperimentResult r = run_mixed(cfg, MixedSource::Mix{0.6, 0.25}, 6);
  EXPECT_GT(r.committed, 250u);
  EXPECT_EQ(r.invariant_violations, 0u) << r.violation_report;
  EXPECT_TRUE(r.serializable);
}

}  // namespace
}  // namespace opc
