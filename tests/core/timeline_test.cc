// The single-transaction instrumentation (timeline/Table-I extraction) and
// the paper-parameter presets.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/sweep.h"
#include "core/timeline.h"

namespace opc {
namespace {

TEST(TimelineTest, ChartContainsTheProtocolChoreography) {
  const TimelineResult prn = run_single_create(ProtocolKind::kPrN);
  EXPECT_NE(prn.chart.find("UPDATE_REQ"), std::string::npos);
  EXPECT_NE(prn.chart.find("PREPARE"), std::string::npos);
  EXPECT_NE(prn.chart.find("COMMIT"), std::string::npos);
  EXPECT_NE(prn.chart.find("ACK"), std::string::npos);
  EXPECT_NE(prn.chart.find("STARTED"), std::string::npos);

  const TimelineResult onepc = run_single_create(ProtocolKind::kOnePC);
  EXPECT_EQ(onepc.chart.find("PREPARE "), std::string::npos)
      << "1PC has no voting phase";
  EXPECT_NE(onepc.chart.find("REDO"), std::string::npos)
      << "the redo record is 1PC's signature";
}

TEST(TimelineTest, SingleCreateLatenciesMatchTheCostModel) {
  // With 20 ms forced blocks and 100 us links, the client latencies are
  // fully determined (see EXPERIMENTS.md Figures 2-5 table).
  const auto tol = Duration::millis(1);
  auto near = [&](Duration got, std::int64_t want_ms) {
    return got > Duration::millis(want_ms) - tol &&
           got < Duration::millis(want_ms) + tol;
  };
  EXPECT_TRUE(near(run_single_create(ProtocolKind::kPrN).client_latency, 81));
  EXPECT_TRUE(near(run_single_create(ProtocolKind::kPrC).client_latency, 60));
  EXPECT_TRUE(near(run_single_create(ProtocolKind::kEP).client_latency, 60));
  EXPECT_TRUE(
      near(run_single_create(ProtocolKind::kOnePC).client_latency, 40));
}

TEST(TimelineTest, RepeatedRunsAreIdentical) {
  const TimelineResult a = run_single_create(ProtocolKind::kEP);
  const TimelineResult b = run_single_create(ProtocolKind::kEP);
  EXPECT_EQ(a.chart, b.chart);
  EXPECT_EQ(a.client_latency, b.client_latency);
  EXPECT_EQ(a.txn_complete, b.txn_complete);
}

TEST(PresetTest, PaperFig6ConfigMatchesThePaper) {
  const ExperimentConfig cfg = paper_fig6_config(ProtocolKind::kOnePC);
  EXPECT_EQ(cfg.cluster.n_nodes, 2u);
  EXPECT_EQ(cfg.cluster.net.latency, Duration::micros(100));
  EXPECT_DOUBLE_EQ(cfg.cluster.disk.bytes_per_second, 400.0 * 1024.0);
  EXPECT_EQ(cfg.source.concurrency, 100u);
  EXPECT_EQ(cfg.cluster.protocol, ProtocolKind::kOnePC);
}

TEST(SweepTest, MapPreservesInputOrderAcrossThreadCounts) {
  std::vector<int> inputs;
  for (int i = 0; i < 64; ++i) inputs.push_back(i);
  for (unsigned threads : {1u, 2u, 8u}) {
    const auto out = ParallelSweep::map<int, int>(
        inputs, [](const int& x) { return x * x; }, threads);
    ASSERT_EQ(out.size(), inputs.size());
    for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
  }
}

TEST(SweepTest, EmptyAndSingleJobEdgeCases) {
  ParallelSweep::run({});  // no-op
  int ran = 0;
  ParallelSweep::run({[&] { ++ran; }}, 4);
  EXPECT_EQ(ran, 1);
}

TEST(MultiDirectoryStorm, ThroughputScalesUntilTheDeviceSaturates) {
  // With independent hot directories the lock stops being the limit and
  // the coordinator's log device takes over (Ablation F's premise).
  ExperimentConfig cfg = paper_fig6_config(ProtocolKind::kOnePC);
  cfg.run_for = Duration::seconds(10);
  cfg.warmup = Duration::seconds(2);
  const double one_dir = run_create_storm(cfg).ops_per_second;
  cfg.n_directories = 4;
  const double four_dirs = run_create_storm(cfg).ops_per_second;
  EXPECT_GT(four_dirs, one_dir * 0.95);
  // Device-bound ceiling: 2 forced blocks per txn at 20 ms each = 25/s.
  EXPECT_LT(four_dirs, 27.0);
}

}  // namespace
}  // namespace opc
