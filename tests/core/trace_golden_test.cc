// Golden end-to-end history hashes for the Figure 6 storm.
//
// The FNV hash over a run's full trace is the repo's determinism
// fingerprint: it covers every message send/recv, log force and commit
// decision in time order.  Pinning one hash per protocol turns "the kernel
// refactor changed no observable behavior" from a claim into a test — any
// change to event ordering, RNG consumption, timer scheduling or protocol
// logic moves at least one of these values.
//
// The values equal `opc storm --proto all --seconds 2 --trace-hash`
// (seed 1) and were verified identical across the seed simulator kernel
// and the indexed-heap rewrite.  If a PR changes them INTENTIONALLY
// (a protocol or workload change), regenerate with that command and say so
// in the PR; an unexplained diff here is a determinism regression.
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace opc {
namespace {

struct Golden {
  ProtocolKind proto;
  std::uint64_t hash;
};

constexpr Golden kGolden[] = {
    {ProtocolKind::kPrN, 0x099585997bc6becbull},
    {ProtocolKind::kPrC, 0x312f4a08f0387a2dull},
    {ProtocolKind::kEP, 0x82ac54bbea6ae422ull},
    {ProtocolKind::kOnePC, 0x8dfd0cada559dc1dull},
};

TEST(TraceGoldenTest, StormHistoryHashesMatchPinnedValues) {
  for (const Golden& g : kGolden) {
    ExperimentConfig cfg = paper_fig6_config(g.proto);
    cfg.cluster.seed = 1;
    cfg.run_for = Duration::seconds(2);
    cfg.warmup = Duration::seconds(1);
    cfg.trace = true;
    const ExperimentResult r = run_create_storm(cfg);
    EXPECT_EQ(r.trace_hash, g.hash)
        << protocol_name(g.proto) << ": history hash moved (got 0x"
        << std::hex << r.trace_hash
        << ") — event order, RNG draws or protocol behavior changed";
    EXPECT_EQ(r.invariant_violations, 0u);
  }
}

// The same config twice must hash identically — run_create_storm is a pure
// function of (config, seed).  Guards the golden values above against
// within-build nondeterminism (which would make their failures noisy).
TEST(TraceGoldenTest, RepeatedRunsHashIdentically) {
  auto run_once = [] {
    ExperimentConfig cfg = paper_fig6_config(ProtocolKind::kOnePC);
    cfg.cluster.seed = 7;
    cfg.run_for = Duration::millis(500);
    cfg.warmup = Duration::millis(100);
    cfg.trace = true;
    return run_create_storm(cfg).trace_hash;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace opc
