// Lock manager: modes, FIFO fairness, reentrancy, upgrades, timeouts,
// release cascades, deadlock detection, crash reset.
#include <gtest/gtest.h>

#include "env/sim_env.h"
#include "lock/lock_manager.h"

namespace opc {
namespace {

struct LockFixture {
  Simulator sim;
  SimEnv env{sim};
  StatsRegistry stats;
  TraceRecorder trace{false};
  LockManager lm{env, "lm", stats, trace};
};

TEST(LockTest, ExclusiveGrantsImmediatelyWhenFree) {
  LockFixture f;
  bool granted = false;
  EXPECT_TRUE(f.lm.acquire(1, 100, LockMode::kExclusive,
                           [&] { granted = true; }));
  EXPECT_TRUE(granted);
  EXPECT_TRUE(f.lm.holds(1, 100, LockMode::kExclusive));
}

TEST(LockTest, SharedLocksCoexist) {
  LockFixture f;
  int granted = 0;
  EXPECT_TRUE(f.lm.acquire(1, 100, LockMode::kShared, [&] { ++granted; }));
  EXPECT_TRUE(f.lm.acquire(2, 100, LockMode::kShared, [&] { ++granted; }));
  EXPECT_EQ(granted, 2);
}

TEST(LockTest, ExclusiveBlocksBehindShared) {
  LockFixture f;
  bool x_granted = false;
  f.lm.acquire(1, 100, LockMode::kShared, [] {});
  EXPECT_FALSE(f.lm.acquire(2, 100, LockMode::kExclusive,
                            [&] { x_granted = true; }));
  EXPECT_FALSE(x_granted);
  f.lm.release(1, 100);
  EXPECT_TRUE(x_granted);
}

TEST(LockTest, FifoNoBarging) {
  LockFixture f;
  std::vector<int> order;
  f.lm.acquire(1, 100, LockMode::kExclusive, [] {});
  f.lm.acquire(2, 100, LockMode::kExclusive, [&] { order.push_back(2); });
  // Txn 3's S request must NOT barge past txn 2's queued X request.
  f.lm.acquire(3, 100, LockMode::kShared, [&] { order.push_back(3); });
  f.lm.release(1, 100);
  EXPECT_EQ(order, (std::vector<int>{2}));
  f.lm.release(2, 100);
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(LockTest, SharedWaveGrantsTogether) {
  LockFixture f;
  int granted = 0;
  f.lm.acquire(1, 100, LockMode::kExclusive, [] {});
  for (std::uint64_t t = 2; t <= 5; ++t) {
    f.lm.acquire(t, 100, LockMode::kShared, [&] { ++granted; });
  }
  f.lm.release(1, 100);
  EXPECT_EQ(granted, 4) << "all queued S requests granted in one wave";
}

TEST(LockTest, ReentrantSameModeAndXCoversS) {
  LockFixture f;
  int granted = 0;
  f.lm.acquire(1, 100, LockMode::kExclusive, [&] { ++granted; });
  EXPECT_TRUE(f.lm.acquire(1, 100, LockMode::kExclusive, [&] { ++granted; }));
  EXPECT_TRUE(f.lm.acquire(1, 100, LockMode::kShared, [&] { ++granted; }));
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(f.lm.held_resources(1), 1u);
}

TEST(LockTest, SoleHolderUpgradesInPlace) {
  LockFixture f;
  bool upgraded = false;
  f.lm.acquire(1, 100, LockMode::kShared, [] {});
  EXPECT_TRUE(f.lm.acquire(1, 100, LockMode::kExclusive,
                           [&] { upgraded = true; }));
  EXPECT_TRUE(upgraded);
  EXPECT_TRUE(f.lm.holds(1, 100, LockMode::kExclusive));
}

TEST(LockTest, UpgradeWaitsForOtherSharersAndJumpsQueue) {
  LockFixture f;
  bool upgraded = false;
  bool third = false;
  f.lm.acquire(1, 100, LockMode::kShared, [] {});
  f.lm.acquire(2, 100, LockMode::kShared, [] {});
  EXPECT_FALSE(f.lm.acquire(1, 100, LockMode::kExclusive,
                            [&] { upgraded = true; }));
  // A new X request queues BEHIND the upgrade.
  f.lm.acquire(3, 100, LockMode::kExclusive, [&] { third = true; });
  f.lm.release(2, 100);
  EXPECT_TRUE(upgraded);
  EXPECT_FALSE(third);
  f.lm.release_all(1);
  EXPECT_TRUE(third);
}

TEST(LockTest, TimeoutFiresAndRemovesWaiter) {
  LockFixture f;
  bool granted = false, timed_out = false;
  f.lm.acquire(1, 100, LockMode::kExclusive, [] {});
  f.lm.acquire(2, 100, LockMode::kExclusive, [&] { granted = true; },
               Duration::millis(10), [&] { timed_out = true; });
  f.sim.run();
  EXPECT_TRUE(timed_out);
  EXPECT_FALSE(granted);
  EXPECT_EQ(f.lm.waiting_count(100), 0u);
  EXPECT_EQ(f.stats.get("lock.timeouts"), 1);
}

TEST(LockTest, GrantCancelsTimeout) {
  LockFixture f;
  bool granted = false, timed_out = false;
  f.lm.acquire(1, 100, LockMode::kExclusive, [] {});
  f.lm.acquire(2, 100, LockMode::kExclusive, [&] { granted = true; },
               Duration::millis(50), [&] { timed_out = true; });
  f.lm.release(1, 100);
  f.sim.run();
  EXPECT_TRUE(granted);
  EXPECT_FALSE(timed_out);
}

TEST(LockTest, TimeoutOfMiddleWaiterUnblocksCompatibleTail) {
  LockFixture f;
  bool s_granted = false;
  f.lm.acquire(1, 100, LockMode::kShared, [] {});
  f.lm.acquire(2, 100, LockMode::kExclusive, [] {}, Duration::millis(10),
               [] {});
  f.lm.acquire(3, 100, LockMode::kShared, [&] { s_granted = true; });
  EXPECT_FALSE(s_granted) << "S waits behind queued X (no barging)";
  f.sim.run();  // X times out
  EXPECT_TRUE(s_granted) << "tail unblocked after the X waiter expired";
}

TEST(LockTest, ReleaseAllDropsHoldsAndWaits) {
  LockFixture f;
  bool w = false;
  f.lm.acquire(1, 100, LockMode::kExclusive, [] {});
  f.lm.acquire(1, 101, LockMode::kExclusive, [] {});
  f.lm.acquire(2, 100, LockMode::kExclusive, [&] { w = true; });
  f.lm.acquire(2, 102, LockMode::kExclusive, [] {});
  f.lm.release_all(1);
  EXPECT_TRUE(w);
  EXPECT_EQ(f.lm.held_resources(1), 0u);
  // Txn 2 still holds what it acquired.
  EXPECT_TRUE(f.lm.holds(2, 100, LockMode::kExclusive));
  f.lm.release_all(2);
  EXPECT_EQ(f.lm.held_resources(2), 0u);
}

TEST(LockTest, ReleaseAllCancelsOwnQueuedRequests) {
  LockFixture f;
  bool leaked = false;
  f.lm.acquire(1, 100, LockMode::kExclusive, [] {});
  f.lm.acquire(2, 100, LockMode::kExclusive, [&] { leaked = true; });
  f.lm.release_all(2);  // abandon the queued request
  f.lm.release_all(1);
  EXPECT_FALSE(leaked) << "released waiter must never be granted";
}

TEST(LockTest, DeadlockDetectorFindsCycle) {
  LockFixture f;
  f.lm.acquire(1, 100, LockMode::kExclusive, [] {});
  f.lm.acquire(2, 200, LockMode::kExclusive, [] {});
  f.lm.acquire(1, 200, LockMode::kExclusive, [] {});  // 1 waits on 2
  f.lm.acquire(2, 100, LockMode::kExclusive, [] {});  // 2 waits on 1
  const auto victims = f.lm.find_deadlock_victims();
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 2u) << "youngest transaction is the victim";
}

TEST(LockTest, NoFalseDeadlocks) {
  LockFixture f;
  f.lm.acquire(1, 100, LockMode::kExclusive, [] {});
  f.lm.acquire(2, 100, LockMode::kExclusive, [] {});
  f.lm.acquire(3, 100, LockMode::kExclusive, [] {});
  EXPECT_TRUE(f.lm.find_deadlock_victims().empty());
}

TEST(LockTest, ResetClearsEverythingAndCancelsTimers) {
  LockFixture f;
  bool timed_out = false;
  f.lm.acquire(1, 100, LockMode::kExclusive, [] {});
  f.lm.acquire(2, 100, LockMode::kExclusive, [] {}, Duration::millis(10),
               [&] { timed_out = true; });
  f.lm.reset();
  f.sim.run();
  EXPECT_FALSE(timed_out);
  EXPECT_FALSE(f.lm.holds(1, 100, LockMode::kExclusive));
  EXPECT_EQ(f.lm.waiting_count(100), 0u);
}

TEST(LockTest, WaitTimesRecorded) {
  LockFixture f;
  f.lm.acquire(1, 100, LockMode::kExclusive, [] {});
  f.lm.acquire(2, 100, LockMode::kExclusive, [] {});
  f.sim.schedule_after(Duration::millis(30), [&] { f.lm.release(1, 100); });
  f.sim.run();
  EXPECT_EQ(f.lm.wait_times().count(), 1u);
  EXPECT_EQ(f.lm.wait_times().mean_duration(), Duration::millis(30));
}

}  // namespace
}  // namespace opc
