// Model-checking the lock manager: thousands of randomized operation
// sequences are executed against both the real LockManager and a
// deliberately naive reference model; observable behaviour (who got
// granted, in what order) must match exactly, and safety properties must
// hold at every step.
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "env/sim_env.h"
#include "lock/lock_manager.h"
#include "sim/rng.h"

namespace opc {
namespace {

/// Straight-line reference implementation: same spec (S/X modes, strict
/// FIFO, reentrancy, sole-holder upgrade, upgrade-jumps-queue), written for
/// obviousness instead of efficiency.
class ReferenceLock {
 public:
  struct Grant {
    std::uint64_t txn;
    std::uint64_t resource;
  };

  std::vector<Grant> grants;  // in grant order — the observable behaviour

  void acquire(std::uint64_t txn, std::uint64_t res, LockMode mode) {
    auto& s = locks_[res];
    // Reentrancy.
    for (auto& [ht, hm] : s.holders) {
      if (ht != txn) continue;
      if (hm == LockMode::kExclusive || hm == mode) {
        grants.push_back({txn, res});
        return;
      }
      bool sole = true;  // sole-distinct-holder upgrade
      for (auto& [ot, om] : s.holders) {
        (void)om;
        if (ot != txn) sole = false;
      }
      if (sole) {
        hm = LockMode::kExclusive;
        grants.push_back({txn, res});
        return;
      }
      s.waiters.push_front({txn, LockMode::kExclusive, true});
      return;
    }
    if (s.waiters.empty() && compatible(s, txn, mode)) {
      s.holders.emplace_back(txn, mode);
      grants.push_back({txn, res});
      return;
    }
    s.waiters.push_back({txn, mode, false});
  }

  void release_all(std::uint64_t txn) {
    for (auto& [res, s] : locks_) {
      std::erase_if(s.waiters,
                    [txn](const Waiter& w) { return w.txn == txn; });
      std::erase_if(s.holders,
                    [txn](const auto& h) { return h.first == txn; });
    }
    // Pump every resource until no more grants are possible.
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto& [res, s] : locks_) {
        while (!s.waiters.empty()) {
          Waiter w = s.waiters.front();
          if (w.upgrade) {
            bool sole = true;
            for (auto& [ht, hm] : s.holders) {
              (void)hm;
              if (ht != w.txn) sole = false;
            }
            if (!sole) break;
            for (auto& [ht, hm] : s.holders) {
              if (ht == w.txn) hm = LockMode::kExclusive;
            }
          } else {
            if (!compatible(s, w.txn, w.mode)) break;
            bool merged = false;
            for (auto& [ht, hm] : s.holders) {
              if (ht != w.txn) continue;
              if (w.mode == LockMode::kExclusive) hm = LockMode::kExclusive;
              merged = true;
              break;
            }
            if (!merged) s.holders.emplace_back(w.txn, w.mode);
          }
          s.waiters.pop_front();
          grants.push_back({w.txn, res});
          progress = true;
        }
      }
    }
  }

  [[nodiscard]] bool holds(std::uint64_t txn, std::uint64_t res,
                           LockMode mode) const {
    auto it = locks_.find(res);
    if (it == locks_.end()) return false;
    for (const auto& [ht, hm] : it->second.holders) {
      if (ht == txn) {
        return mode == LockMode::kShared || hm == LockMode::kExclusive;
      }
    }
    return false;
  }

  /// Safety: an X holder never coexists with a *different* transaction
  /// holding the same resource (duplicate entries by one reentrant
  /// transaction are allowed).
  [[nodiscard]] bool exclusive_is_exclusive() const {
    for (const auto& [res, s] : locks_) {
      (void)res;
      for (const auto& [xt, xm] : s.holders) {
        if (xm != LockMode::kExclusive) continue;
        for (const auto& [ot, om] : s.holders) {
          (void)om;
          if (ot != xt) return false;
        }
      }
    }
    return true;
  }

 private:
  struct Waiter {
    std::uint64_t txn;
    LockMode mode;
    bool upgrade;
  };
  struct State {
    std::vector<std::pair<std::uint64_t, LockMode>> holders;
    std::deque<Waiter> waiters;
  };

  static bool compatible(const State& s, std::uint64_t txn, LockMode mode) {
    for (const auto& [ht, hm] : s.holders) {
      if (ht != txn && !lock_compatible(hm, mode)) return false;
    }
    return true;
  }

  std::map<std::uint64_t, State> locks_;
};

TEST(LockModelCheck, RandomSequencesMatchReference) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Simulator sim;
    SimEnv env(sim);
    StatsRegistry stats;
    TraceRecorder trace(false);
    LockManager real(env, "model", stats, trace);
    ReferenceLock ref;
    std::vector<ReferenceLock::Grant> real_grants;
    Rng rng(seed, 0x10DE1);

    constexpr std::uint64_t kTxns = 8;
    constexpr std::uint64_t kResources = 4;
    std::vector<bool> alive(kTxns + 1, false);

    for (int step = 0; step < 400; ++step) {
      const std::uint64_t txn = 1 + rng.index(kTxns);
      if (!alive[txn] || rng.uniform01() < 0.75) {
        // acquire
        alive[txn] = true;
        const std::uint64_t res = 1 + rng.index(kResources);
        const LockMode mode =
            rng.bernoulli(0.4) ? LockMode::kShared : LockMode::kExclusive;
        real.acquire(txn, res, mode,
                     [&real_grants, txn, res] {
                       real_grants.push_back({txn, res});
                     });
        ref.acquire(txn, res, mode);
      } else {
        alive[txn] = false;
        real.release_all(txn);
        ref.release_all(txn);
      }

      // Observable equivalence after every step.  The grant ORDER is only
      // specified per resource (FIFO within one queue); release_all may
      // pump independent resources in any order, so compare per-resource
      // grant sequences.
      ASSERT_EQ(real_grants.size(), ref.grants.size())
          << "seed " << seed << " step " << step;
      for (std::uint64_t r = 1; r <= kResources; ++r) {
        std::vector<std::uint64_t> real_seq, ref_seq;
        for (const auto& g : real_grants) {
          if (g.resource == r) real_seq.push_back(g.txn);
        }
        for (const auto& g : ref.grants) {
          if (g.resource == r) ref_seq.push_back(g.txn);
        }
        ASSERT_EQ(real_seq, ref_seq)
            << "seed " << seed << " step " << step << " resource " << r;
      }
      // Safety in both models.
      ASSERT_TRUE(ref.exclusive_is_exclusive());
      for (std::uint64_t r = 1; r <= kResources; ++r) {
        int x_holders = 0, s_holders = 0;
        for (std::uint64_t t = 1; t <= kTxns; ++t) {
          if (!real.holds(t, r, LockMode::kShared)) continue;
          if (real.holds(t, r, LockMode::kExclusive)) {
            ++x_holders;
          } else {
            ++s_holders;
          }
        }
        ASSERT_TRUE(x_holders == 0 || (x_holders == 1 && s_holders == 0))
            << "X lock shared at seed " << seed << " step " << step;
      }
      // Cross-check holds() agreement.
      for (std::uint64_t t = 1; t <= kTxns; ++t) {
        for (std::uint64_t r = 1; r <= kResources; ++r) {
          ASSERT_EQ(real.holds(t, r, LockMode::kShared),
                    ref.holds(t, r, LockMode::kShared))
              << "seed " << seed << " step " << step;
        }
      }
    }
  }
}

TEST(SimModelCheck, RandomScheduleCancelMatchesReferenceOrder) {
  // The simulator's dispatch order must equal a stable sort of the
  // surviving events by (time, insertion sequence).
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Simulator sim;
    Rng rng(seed, 0x51A0);

    struct Planned {
      int id;
      std::int64_t at_us;
      EventHandle handle;
      bool cancelled = false;
    };
    std::vector<Planned> plan;
    std::vector<int> fired;

    const int n = 200;
    for (int i = 0; i < n; ++i) {
      Planned p;
      p.id = i;
      p.at_us = static_cast<std::int64_t>(rng.index(50));  // heavy ties
      p.handle = sim.schedule_after(Duration::micros(p.at_us),
                                    [&fired, i] { fired.push_back(i); });
      plan.push_back(p);
    }
    // Cancel a random ~30%.
    for (Planned& p : plan) {
      if (rng.bernoulli(0.3)) {
        p.cancelled = true;
        EXPECT_TRUE(sim.cancel(p.handle));
      }
    }
    sim.run();

    std::vector<int> expected;
    std::vector<const Planned*> sorted;
    for (const Planned& p : plan) {
      if (!p.cancelled) sorted.push_back(&p);
    }
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Planned* a, const Planned* b) {
                       return a->at_us < b->at_us;
                     });
    for (const Planned* p : sorted) expected.push_back(p->id);
    ASSERT_EQ(fired, expected) << "seed " << seed;
  }
}

}  // namespace
}  // namespace opc
