// CLI surface smoke (ISSUE 6 satellite): `opc --help` must list every verb
// in the registry, and the exit-code contract must hold.  This is the
// tripwire for "added a verb but forgot the help text" and for regressions
// in the shared flag layer's dispatch.
//
// The binary path is injected by CMake as OPC_BIN.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

RunResult run(const std::string& args) {
  const std::string cmd = std::string(OPC_BIN) + " " + args + " 2>&1";
  RunResult r;
  FILE* p = ::popen(cmd.c_str(), "r");
  if (p == nullptr) return r;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), p)) > 0) {
    r.output.append(buf, n);
  }
  const int status = ::pclose(p);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

TEST(CliSmoke, HelpListsEveryVerb) {
  const RunResult r = run("--help");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // Keep in lockstep with kVerbs[] in tools/opc_cli.cc.
  const char* verbs[] = {"storm",  "batch",   "mixed", "sweep",    "rtstorm",
                         "serve",  "loadgen", "chaos", "bench",    "trace",
                         "timeline", "table1", "help"};
  for (const char* v : verbs) {
    EXPECT_NE(r.output.find(std::string("\n  ") + v), std::string::npos)
        << "verb '" << v << "' missing from --help output:\n"
        << r.output;
  }
}

TEST(CliSmoke, HelpDocumentsSharedFlags) {
  const RunResult r = run("help");
  EXPECT_EQ(r.exit_code, 0);
  // The shared flag layer (tools/cli_flags.h) must be surfaced for the
  // verbs that use it, with the common spellings present.
  for (const char* flag :
       {"--protocol", "--seed", "--duration", "--report", "--participants"}) {
    EXPECT_NE(r.output.find(flag), std::string::npos)
        << "shared flag " << flag << " missing from help";
  }
  // And the serving path's own flags.
  for (const char* flag : {"--uds", "--rate", "--max-inflight"}) {
    EXPECT_NE(r.output.find(flag), std::string::npos)
        << "serving flag " << flag << " missing from help";
  }
}

TEST(CliSmoke, UnknownSubcommandExitsNonzero) {
  const RunResult r = run("frobnicate");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("unknown subcommand"), std::string::npos);
}

TEST(CliSmoke, BadFlagValueExitsNonzero) {
  const RunResult r = run("storm --duration banana");
  EXPECT_NE(r.exit_code, 0) << r.output;
}

TEST(CliSmoke, ParticipantsOutOfRangeRejected) {
  // One spelling, one validator (tools/cli_flags.h parse_participants).
  const RunResult low = run("storm --participants 1 --duration 250ms");
  EXPECT_EQ(low.exit_code, 2) << low.output;
  EXPECT_NE(low.output.find("--participants"), std::string::npos);
  const RunResult high = run("chaos --participants 65 --schedules 1");
  EXPECT_EQ(high.exit_code, 2) << high.output;
}

TEST(CliSmoke, WideStormRunsAndRaisesNodes) {
  // --participants 3 with the default --nodes 2 must auto-raise the
  // cluster instead of tripping the experiment's SIM_CHECK.
  const RunResult r =
      run("storm --protocol prn --participants 3 --duration 250ms");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(CliSmoke, DurationSpellingsParse) {
  // 250ms of 1PC sim storm: fast, and proves the suffix parser reaches the
  // sim through the shared CommonFlags path.
  const RunResult r = run("storm --protocol 1pc --duration 250ms --nodes 2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("1PC"), std::string::npos) << r.output;
}

}  // namespace
