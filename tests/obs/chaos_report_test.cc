// Chaos-run reports: the observability overload of run_schedule must
// attach the injected fault schedule to the RunReport, produce a
// well-formed report, and change nothing about the simulation itself
// (identical trace hash with and without the report).
#include <gtest/gtest.h>

#include "chaos/runner.h"
#include "obs/report.h"

namespace opc {
namespace {

FaultSchedule one_crash_schedule() {
  FaultSchedule s;
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.node = NodeId(1);
  crash.at = Duration::seconds(2);
  crash.duration = Duration::millis(500);  // reboot after 500 ms
  s.events.push_back(crash);
  return s;
}

ChaosRunConfig small_config() {
  ChaosRunConfig cfg;
  cfg.protocol = ProtocolKind::kOnePC;
  cfg.n_nodes = 3;
  cfg.seed = 7;
  cfg.concurrency = 4;
  cfg.n_dirs = 2;
  cfg.run_for = Duration::seconds(4);
  return cfg;
}

TEST(ChaosReport, RecordsInjectedFaults) {
  const ChaosRunConfig cfg = small_config();
  const FaultSchedule schedule = one_crash_schedule();
  obs::RunReport report;
  const ChaosRunResult r = run_schedule(cfg, schedule, &report);

  ASSERT_TRUE(r.passed) << "checkers failed on a plain crash schedule";
  ASSERT_FALSE(report.faults.empty());
  // The report carries exactly the rendered schedule lines, so a report
  // file is enough to reconstruct what went wrong during the run.
  std::string rendered;
  for (const std::string& line : report.faults) rendered += line + "\n";
  EXPECT_EQ(rendered, render_schedule(schedule));
  EXPECT_NE(report.faults[0].find("crash"), std::string::npos);

  EXPECT_EQ(report.meta.workload, "chaos");
  EXPECT_EQ(report.meta.protocol, "1PC");
  EXPECT_EQ(report.meta.seed, cfg.seed);
  EXPECT_EQ(report.meta.nodes, 3);
  EXPECT_EQ(report.trace_hash, r.trace_hash);
  EXPECT_EQ(report.committed, static_cast<std::int64_t>(r.committed));
  EXPECT_GT(report.span_count, 0);
  // At least the injected crash (STONITH may re-down the victim during
  // the drain, so the exact count is not pinned here).
  ASSERT_GT(report.counters.count("cluster.crashes"), 0u);
  EXPECT_GE(report.counters.at("cluster.crashes"), 1);
}

TEST(ChaosReport, ReportPathDoesNotPerturbTheRun) {
  const ChaosRunConfig cfg = small_config();
  const FaultSchedule schedule = one_crash_schedule();
  obs::RunReport report;
  const ChaosRunResult with_report = run_schedule(cfg, schedule, &report);
  const ChaosRunResult without = run_schedule(cfg, schedule);
  // The observability side-channel must be invisible to the simulation:
  // byte-identical history either way.
  EXPECT_EQ(with_report.trace_hash, without.trace_hash);
  EXPECT_EQ(with_report.committed, without.committed);
  EXPECT_EQ(with_report.aborted, without.aborted);
}

TEST(ChaosReport, FaultFreeScheduleYieldsEmptyFaultList) {
  ChaosRunConfig cfg = small_config();
  cfg.run_for = Duration::seconds(2);
  obs::RunReport report;
  const ChaosRunResult r = run_schedule(cfg, FaultSchedule{}, &report);
  ASSERT_TRUE(r.passed);
  EXPECT_TRUE(report.faults.empty());
  // And the faults section round-trips as absent through the JSON form.
  obs::RunReport parsed;
  ASSERT_TRUE(obs::report_from_json(obs::report_to_json(report), parsed));
  EXPECT_TRUE(parsed.faults.empty());
}

}  // namespace
}  // namespace opc
