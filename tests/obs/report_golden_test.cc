// Golden REPORT.json files: one seeded 2-MDS distributed CREATE per
// protocol, rendered through the full observability pipeline (trace +
// phase log -> spans -> RunReport -> JSON) and byte-compared against the
// committed goldens in tests/obs/golden/.
//
// These pin the REPORT.json *contract* (docs/OBSERVABILITY.md §4): any
// schema change — key order, precision, a new section — fails here and
// must bump kReportSchemaVersion plus regenerate the goldens with
//   OPC_UPDATE_GOLDENS=1 ctest -R ReportGolden
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "mds/namespace.h"
#include "obs/assembler.h"
#include "obs/report.h"

namespace opc {
namespace {

struct SingleCreateRun {
  obs::SpanSet spans;
  obs::RunReport report;
  std::string json;
};

/// The timeline scenario (core/timeline.cc): two MDSs, paper §IV device
/// parameters, one distributed CREATE — fully deterministic.
SingleCreateRun run_single_create(ProtocolKind proto) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(true);
  obs::PhaseLog phases;

  ClusterConfig cc;
  cc.n_nodes = 2;
  cc.protocol = proto;
  cc.net.latency = Duration::micros(100);
  cc.disk.bytes_per_second = 400.0 * 1024.0;
  cc.wal.force_pad_to = 8192;
  cc.phase_log = &phases;
  Cluster cluster(sim, cc, stats, trace);

  IdAllocator ids;
  const ObjectId dir = ids.next();
  PinnedPartitioner part(2, NodeId(1));
  part.assign(dir, NodeId(0));
  cluster.bootstrap_directory(dir, NodeId(0));
  NamespacePlanner planner(part, OpCosts{});

  int committed = 0;
  cluster.submit(planner.plan_create(dir, "paper.dat", ids.next(), false),
                 [&](TxnId, TxnOutcome outcome) {
                   if (outcome == TxnOutcome::kCommitted) ++committed;
                 });
  sim.run();

  SingleCreateRun out;
  out.spans = obs::assemble_spans(trace.events(), &phases);

  Histogram latency;
  for (std::uint32_t i = 0; i < cluster.size(); ++i) {
    latency.merge(cluster.engine(NodeId(i)).client_latency());
  }
  obs::ReportInputs in;
  in.meta.protocol = std::string(protocol_name(proto));
  in.meta.workload = "create";
  in.meta.seed = cc.seed;
  in.meta.nodes = 2;
  in.meta.sim_duration_ns = sim.now().count_nanos();
  in.spans = &out.spans;
  in.stats = &stats;
  in.latency = &latency;
  in.committed = committed;
  in.trace_hash = trace.history_hash();
  out.report = obs::build_report(in);
  out.json = obs::report_to_json(out.report);
  return out;
}

std::string golden_path(ProtocolKind proto) {
  return std::string(OPC_GOLDEN_DIR) + "/REPORT_" +
         std::string(protocol_name(proto)) + ".json";
}

bool read_file(const std::string& path, std::string& out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;) {
    out.append(buf, n);
  }
  std::fclose(f);
  return true;
}

class ReportGoldenTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ReportGoldenTest, MatchesCommittedGolden) {
  const ProtocolKind proto = GetParam();
  const SingleCreateRun run = run_single_create(proto);
  ASSERT_EQ(run.report.committed, 1);
  ASSERT_GT(run.report.span_count, 0);
  EXPECT_EQ(run.report.txn_count, 1);

  const std::string path = golden_path(proto);
  if (std::getenv("OPC_UPDATE_GOLDENS") != nullptr) {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot write golden " << path;
    std::fwrite(run.json.data(), 1, run.json.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "golden regenerated: " << path;
  }

  std::string expected;
  ASSERT_TRUE(read_file(path, expected))
      << "missing golden " << path
      << " — regenerate with OPC_UPDATE_GOLDENS=1";
  EXPECT_EQ(run.json, expected)
      << "REPORT.json drifted from the committed golden for "
      << protocol_name(proto)
      << "; if the schema change is intentional, bump kReportSchemaVersion, "
         "update docs/OBSERVABILITY.md §4 and regenerate with "
         "OPC_UPDATE_GOLDENS=1";
}

TEST_P(ReportGoldenTest, ByteIdenticalAcrossRepeatedRuns) {
  const SingleCreateRun a = run_single_create(GetParam());
  const SingleCreateRun b = run_single_create(GetParam());
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.report.trace_hash, b.report.trace_hash);
}

TEST_P(ReportGoldenTest, JsonRoundTripsThroughParser) {
  const SingleCreateRun run = run_single_create(GetParam());
  obs::RunReport parsed;
  ASSERT_TRUE(obs::report_from_json(run.json, parsed));
  // Re-serializing the parsed report must reproduce the exact bytes: the
  // parser reads every field the serializer writes.
  EXPECT_EQ(obs::report_to_json(parsed), run.json);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ReportGoldenTest,
                         ::testing::Values(ProtocolKind::kPrN,
                                           ProtocolKind::kPrC,
                                           ProtocolKind::kEP,
                                           ProtocolKind::kOnePC),
                         [](const auto& info) {
                           // "1PC" is not a valid gtest identifier.
                           switch (info.param) {
                             case ProtocolKind::kPrN: return std::string("PrN");
                             case ProtocolKind::kPrC: return std::string("PrC");
                             case ProtocolKind::kEP: return std::string("EP");
                             default: return std::string("OnePC");
                           }
                         });

}  // namespace
}  // namespace opc
