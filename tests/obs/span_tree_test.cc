// Span-tree well-formedness over a real traced storm: every assembled
// span set must pass validate_spans (no orphans, parents precede
// children, child intervals within parents, txn consistency), and the
// two export formats must round-trip / parse.
#include <string>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "obs/assembler.h"
#include "obs/export_binary.h"
#include "obs/export_chrome.h"

namespace opc {
namespace {

ExperimentResult traced_storm(ProtocolKind proto) {
  ExperimentConfig cfg = paper_fig6_config(proto);
  cfg.run_for = Duration::seconds(1);
  cfg.warmup = Duration::millis(200);
  cfg.trace = true;
  return run_create_storm(cfg);
}

TEST(SpanTree, StormSpansAreWellFormed) {
  for (ProtocolKind proto : kAllProtocols) {
    const ExperimentResult r = traced_storm(proto);
    ASSERT_FALSE(r.trace_events.empty());
    ASSERT_FALSE(r.phases.empty());
    const obs::SpanSet set = obs::assemble_spans(r.trace_events, &r.phases);
    ASSERT_GT(set.size(), 0u) << protocol_name(proto);
    const std::vector<std::string> violations = obs::validate_spans(set);
    EXPECT_TRUE(violations.empty())
        << protocol_name(proto) << ": " << violations.size()
        << " violation(s), first: " << violations.front();
    // One txn root per committed+aborted client operation that traced.
    EXPECT_GT(set.roots().size(), 0u);
  }
}

TEST(SpanTree, PhaseSpansNestInsideTheirTransaction) {
  const ExperimentResult r = traced_storm(ProtocolKind::kOnePC);
  const obs::SpanSet set = obs::assemble_spans(r.trace_events, &r.phases);
  std::size_t phase_spans = 0;
  for (const obs::Span& s : set.spans) {
    if (s.kind != obs::SpanKind::kPhase) continue;
    ++phase_spans;
    ASSERT_NE(s.parent, obs::kNoParent) << "phase span without a parent";
    const obs::Span& root = set.spans[s.parent];
    EXPECT_EQ(root.kind, obs::SpanKind::kTxn);
    EXPECT_EQ(root.txn, s.txn);
  }
  EXPECT_GT(phase_spans, 0u);
}

TEST(SpanTree, WithoutPhaseLogStillWellFormed) {
  const ExperimentResult r = traced_storm(ProtocolKind::kPrN);
  const obs::SpanSet set = obs::assemble_spans(r.trace_events, nullptr);
  EXPECT_TRUE(obs::validate_spans(set).empty());
  for (const obs::Span& s : set.spans) {
    EXPECT_NE(s.kind, obs::SpanKind::kPhase);
  }
}

TEST(SpanTree, BinarySpanLogRoundTrips) {
  const ExperimentResult r = traced_storm(ProtocolKind::kOnePC);
  const obs::SpanSet set = obs::assemble_spans(r.trace_events, &r.phases);
  const std::string encoded = obs::encode_span_log(set);
  obs::SpanSet decoded;
  ASSERT_TRUE(obs::decode_span_log(encoded, decoded));
  ASSERT_EQ(decoded.size(), set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    const obs::Span& a = set.spans[i];
    const obs::Span& b = decoded.spans[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.actor, b.actor);
    EXPECT_EQ(a.txn, b.txn);
    EXPECT_EQ(a.begin.count_nanos(), b.begin.count_nanos());
    EXPECT_EQ(a.end.count_nanos(), b.end.count_nanos());
  }
}

TEST(SpanTree, BinaryDecoderRejectsCorruption) {
  const ExperimentResult r = traced_storm(ProtocolKind::kEP);
  const obs::SpanSet set = obs::assemble_spans(r.trace_events, &r.phases);
  std::string encoded = obs::encode_span_log(set);
  obs::SpanSet decoded;
  EXPECT_FALSE(obs::decode_span_log("", decoded));
  EXPECT_FALSE(obs::decode_span_log("XXXX", decoded));
  EXPECT_FALSE(
      obs::decode_span_log(encoded.substr(0, encoded.size() / 2), decoded));
  encoded[0] = 'Z';  // bad magic
  EXPECT_FALSE(obs::decode_span_log(encoded, decoded));
}

TEST(SpanTree, ChromeExportIsSaneJson) {
  const ExperimentResult r = traced_storm(ProtocolKind::kPrC);
  const obs::SpanSet set = obs::assemble_spans(r.trace_events, &r.phases);
  const std::string json = obs::export_chrome_trace(set);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(SpanTree, AssemblyIsDeterministic) {
  const ExperimentResult a = traced_storm(ProtocolKind::kOnePC);
  const ExperimentResult b = traced_storm(ProtocolKind::kOnePC);
  ASSERT_EQ(a.trace_hash, b.trace_hash);
  const obs::SpanSet sa = obs::assemble_spans(a.trace_events, &a.phases);
  const obs::SpanSet sb = obs::assemble_spans(b.trace_events, &b.phases);
  EXPECT_EQ(obs::encode_span_log(sa), obs::encode_span_log(sb));
}

}  // namespace
}  // namespace opc
