// Disk model: bandwidth timing, FIFO queueing, owner cancellation,
// utilization accounting.
#include <gtest/gtest.h>

#include "env/sim_env.h"
#include "storage/disk.h"

namespace opc {
namespace {

struct DiskFixture {
  Simulator sim;
  SimEnv env{sim};
  StatsRegistry stats;
  TraceRecorder trace{false};
  DiskConfig cfg;
  std::unique_ptr<Disk> disk;

  explicit DiskFixture(double bps = 400.0 * 1024.0,
                       Duration fixed = Duration::zero()) {
    cfg.bytes_per_second = bps;
    cfg.fixed_latency = fixed;
    disk = std::make_unique<Disk>(env, "d0", cfg, stats, trace);
  }
};

TEST(DiskTest, ServiceTimeMatchesBandwidth) {
  DiskFixture f;
  // 8 KiB at 400 KiB/s = 20 ms.
  EXPECT_EQ(f.disk->service_time(8192), Duration::millis(20));
  EXPECT_EQ(f.disk->service_time(4096), Duration::millis(10));
}

TEST(DiskTest, FixedLatencyAdds) {
  DiskFixture f(400.0 * 1024.0, Duration::millis(5));
  EXPECT_EQ(f.disk->service_time(8192), Duration::millis(25));
}

TEST(DiskTest, WriteCompletesAtServiceTime) {
  DiskFixture f;
  SimTime done;
  f.disk->write(NodeId(0), 8192, "w", [&] { done = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(done - SimTime::zero(), Duration::millis(20));
}

TEST(DiskTest, RequestsQueueFifo) {
  DiskFixture f;
  std::vector<int> order;
  std::vector<SimTime> times(3);
  for (int i = 0; i < 3; ++i) {
    f.disk->write(NodeId(0), 8192, "w" + std::to_string(i), [&, i] {
      order.push_back(i);
      times[static_cast<size_t>(i)] = f.sim.now();
    });
  }
  EXPECT_EQ(f.disk->queue_depth(), 2u);  // one in service
  f.sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(times[2] - SimTime::zero(), Duration::millis(60));
}

TEST(DiskTest, CancelOwnerDropsQueuedRequests) {
  DiskFixture f;
  int a_fired = 0, b_fired = 0;
  f.disk->write(NodeId(0), 8192, "a", [&] { ++a_fired; });
  f.disk->write(NodeId(1), 8192, "b", [&] { ++b_fired; });
  f.disk->write(NodeId(0), 8192, "a2", [&] { ++a_fired; });
  f.disk->cancel_owner(NodeId(0));  // kills in-service "a" and queued "a2"
  f.sim.run();
  EXPECT_EQ(a_fired, 0);
  EXPECT_EQ(b_fired, 1);
}

TEST(DiskTest, CancelledInServiceStillOccupiesDeviceUntilAbort) {
  DiskFixture f;
  SimTime b_done;
  f.disk->write(NodeId(0), 8192, "a", [] { FAIL() << "cancelled"; });
  f.disk->write(NodeId(1), 8192, "b", [&] { b_done = f.sim.now(); });
  f.disk->cancel_owner(NodeId(0));
  f.sim.run();
  // "b" starts only after "a"'s aborted transfer window ends.
  EXPECT_EQ(b_done - SimTime::zero(), Duration::millis(40));
}

TEST(DiskTest, ReadsShareTheQueue) {
  DiskFixture f;
  std::vector<std::string> order;
  f.disk->write(NodeId(0), 8192, "w", [&] { order.push_back("w"); });
  f.disk->read(NodeId(1), 8192, "r", [&] { order.push_back("r"); });
  f.sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"w", "r"}));
}

TEST(DiskTest, BusyTimeAccountsUtilization) {
  DiskFixture f;
  f.disk->write(NodeId(0), 8192, "w", [] {});
  f.disk->write(NodeId(0), 8192, "w", [] {});
  f.sim.run();
  EXPECT_EQ(f.disk->busy_time(), Duration::millis(40));
  EXPECT_FALSE(f.disk->busy());
}

TEST(DiskTest, NewWorkAfterIdleRestartsService) {
  DiskFixture f;
  int fired = 0;
  f.disk->write(NodeId(0), 4096, "w", [&] { ++fired; });
  f.sim.run();
  f.disk->write(NodeId(0), 4096, "w2", [&] { ++fired; });
  f.sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(f.sim.now() - SimTime::zero(), Duration::millis(20));
}

}  // namespace
}  // namespace opc
