// Statistics utilities: histogram quantiles/merge, counters, tables, meter.
#include <gtest/gtest.h>

#include "stats/counters.h"
#include "stats/histogram.h"
#include "stats/meter.h"
#include "stats/table.h"

namespace opc {
namespace {

TEST(HistogramTest, BasicStatistics) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_NEAR(h.stddev(), 29.01, 0.1);
}

TEST(HistogramTest, QuantilesWithinBinAccuracy) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.record(static_cast<double>(i));
  // Log bins are ~2.5% wide; allow 5%.
  EXPECT_NEAR(h.quantile(0.5), 5000, 5000 * 0.05);
  EXPECT_NEAR(h.quantile(0.9), 9000, 9000 * 0.05);
  EXPECT_NEAR(h.quantile(0.99), 9900, 9900 * 0.05);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10000.0);
}

TEST(HistogramTest, EmptyHistogramIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(HistogramTest, MergePreservesTotals) {
  Histogram a, b;
  for (int i = 1; i <= 500; ++i) a.record(static_cast<double>(i));
  for (int i = 501; i <= 1000; ++i) b.record(static_cast<double>(i));
  a.merge(b);
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 1000.0);
  EXPECT_NEAR(a.quantile(0.5), 500, 500 * 0.05);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a, b;
  b.record(42.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.max(), 42.0);
}

TEST(HistogramTest, DurationsAndSummary) {
  Histogram h;
  h.record(Duration::millis(10));
  h.record(Duration::millis(20));
  EXPECT_EQ(h.mean_duration(), Duration::millis(15));
  EXPECT_NE(h.summary().find("n=2"), std::string::npos);
}

TEST(HistogramTest, WideDynamicRange) {
  Histogram h;
  h.record(1.0);       // 1 ns
  h.record(1e9);       // 1 s
  h.record(1e12);      // 1000 s
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.quantile(0.5), 1e9, 1e9 * 0.05);
}

TEST(CountersTest, AddGetSetMergeDump) {
  StatsRegistry r;
  EXPECT_EQ(r.get("missing"), 0);
  r.add("a.b", 2);
  r.add("a.b");
  EXPECT_EQ(r.get("a.b"), 3);
  r.set("gauge", 17);
  EXPECT_EQ(r.get("gauge"), 17);

  StatsRegistry s;
  s.add("a.b", 10);
  s.add("c", 1);
  r.merge(s);
  EXPECT_EQ(r.get("a.b"), 13);
  EXPECT_EQ(r.get("c"), 1);

  const std::string dump = r.dump();
  EXPECT_NE(dump.find("a.b"), std::string::npos);
  EXPECT_LT(dump.find("a.b"), dump.find("gauge")) << "dump sorted by name";
}

TEST(TableTest, RenderAlignsColumns) {
  TextTable t({"proto", "ops/s"});
  t.add_row({"PrN", "15.0"});
  t.add_row({"1PC", "24.1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| proto |"), std::string::npos);
  EXPECT_NE(out.find("| 1PC"), std::string::npos);
  // Header + rule lines present.
  EXPECT_NE(out.find("+-"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecials) {
  TextTable t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(24.0, 1), "24.0");
}

TEST(MeterTest, RateOverWindow) {
  ThroughputMeter m;
  m.set_warmup_until(SimTime::zero() + Duration::seconds(1));
  m.set_cutoff(SimTime::zero() + Duration::seconds(11));
  // 100 events inside [1s, 11s), 5 before, 5 after.
  for (int i = 0; i < 5; ++i) m.record(SimTime::zero() + Duration::millis(i));
  for (int i = 0; i < 100; ++i) {
    m.record(SimTime::zero() + Duration::seconds(1) + Duration::millis(i * 90));
  }
  for (int i = 0; i < 5; ++i) {
    m.record(SimTime::zero() + Duration::seconds(12) + Duration::millis(i));
  }
  EXPECT_EQ(m.total_events(), 110u);
  EXPECT_EQ(m.measured_events(), 100u);
  EXPECT_DOUBLE_EQ(m.events_per_second_over(Duration::seconds(10)), 10.0);
}

TEST(MeterTest, FewEventsYieldZeroIntervalRate) {
  ThroughputMeter m;
  m.record(SimTime::zero() + Duration::seconds(1));
  EXPECT_DOUBLE_EQ(m.events_per_second(), 0.0);
  EXPECT_DOUBLE_EQ(m.events_per_second_over(Duration::zero()), 0.0);
}

}  // namespace
}  // namespace opc
