// Failure-free behaviour of all four protocols: a distributed CREATE
// commits, both stores converge, and the per-protocol cost counters match
// the paper's Table I exactly.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/timeline.h"
#include "mds/namespace.h"

namespace opc {
namespace {

struct Fixture {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace{true};
  ClusterConfig cc;
  std::unique_ptr<Cluster> cluster;
  IdAllocator ids;
  std::unique_ptr<PinnedPartitioner> part;
  std::unique_ptr<NamespacePlanner> planner;
  ObjectId dir;

  explicit Fixture(ProtocolKind proto, std::uint32_t nodes = 2) {
    cc.n_nodes = nodes;
    cc.protocol = proto;
    cc.record_history = true;
    cluster = std::make_unique<Cluster>(sim, cc, stats, trace);
    dir = ids.next();
    part = std::make_unique<PinnedPartitioner>(nodes, NodeId(1));
    part->assign(dir, NodeId(0));
    cluster->bootstrap_directory(dir, NodeId(0));
    planner = std::make_unique<NamespacePlanner>(*part, OpCosts{});
  }
};

class ProtocolParamTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ProtocolParamTest, DistributedCreateCommits) {
  Fixture f(GetParam());
  const ObjectId inode = f.ids.next();
  TxnOutcome outcome = TxnOutcome::kPending;
  f.cluster->submit(f.planner->plan_create(f.dir, "a.txt", inode, false),
                    [&](TxnId, TxnOutcome o) { outcome = o; });
  f.sim.run();

  EXPECT_EQ(outcome, TxnOutcome::kCommitted);
  // Dentry on mds0, inode on mds1, both stable.
  EXPECT_EQ(f.cluster->store(NodeId(0)).stable_lookup(f.dir, "a.txt"), inode);
  const auto ino = f.cluster->store(NodeId(1)).stable_inode(inode);
  ASSERT_TRUE(ino.has_value());
  EXPECT_EQ(ino->nlink, 1u);
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
  // No unfinished protocol state anywhere.
  EXPECT_EQ(f.cluster->engine(NodeId(0)).active_coordinations(), 0u);
  EXPECT_EQ(f.cluster->engine(NodeId(1)).active_participations(), 0u);
}

TEST_P(ProtocolParamTest, DistributedDeleteCommits) {
  Fixture f(GetParam());
  const ObjectId inode = f.ids.next();
  int replies = 0;
  f.cluster->submit(f.planner->plan_create(f.dir, "victim", inode, false),
                    [&](TxnId, TxnOutcome o) {
                      ++replies;
                      ASSERT_EQ(o, TxnOutcome::kCommitted);
                    });
  f.sim.run();
  f.cluster->submit(f.planner->plan_delete(f.dir, "victim", inode),
                    [&](TxnId, TxnOutcome o) {
                      ++replies;
                      ASSERT_EQ(o, TxnOutcome::kCommitted);
                    });
  f.sim.run();

  EXPECT_EQ(replies, 2);
  EXPECT_FALSE(
      f.cluster->store(NodeId(0)).stable_lookup(f.dir, "victim").has_value());
  EXPECT_FALSE(f.cluster->store(NodeId(1)).stable_inode(inode).has_value());
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

TEST_P(ProtocolParamTest, SequentialCreatesAllCommitAndAreSerializable) {
  Fixture f(GetParam());
  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    f.cluster->submit(
        f.planner->plan_create(f.dir, "f" + std::to_string(i), f.ids.next(),
                               false),
        [&](TxnId, TxnOutcome o) {
          if (o == TxnOutcome::kCommitted) ++committed;
        });
  }
  f.sim.run();
  EXPECT_EQ(committed, 10);
  EXPECT_EQ(f.cluster->store(NodeId(0)).stable_dentry_count(), 10u);
  EXPECT_EQ(f.cluster->store(NodeId(1)).stable_inode_count(), 10u);
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
  ASSERT_NE(f.cluster->history(), nullptr);
  EXPECT_TRUE(f.cluster->history()->serializable());
}

TEST_P(ProtocolParamTest, DuplicateNameIsRejectedAtomically) {
  Fixture f(GetParam());
  TxnOutcome first = TxnOutcome::kPending;
  TxnOutcome second = TxnOutcome::kPending;
  f.cluster->submit(f.planner->plan_create(f.dir, "same", f.ids.next(), false),
                    [&](TxnId, TxnOutcome o) { first = o; });
  f.sim.run();
  const ObjectId dup_inode = f.ids.next();
  f.cluster->submit(f.planner->plan_create(f.dir, "same", dup_inode, false),
                    [&](TxnId, TxnOutcome o) { second = o; });
  f.sim.run();

  EXPECT_EQ(first, TxnOutcome::kCommitted);
  EXPECT_EQ(second, TxnOutcome::kAborted);
  // The duplicate's inode must not leak on the worker.
  EXPECT_FALSE(f.cluster->store(NodeId(1)).stable_inode(dup_inode).has_value());
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolParamTest,
                         ::testing::ValuesIn(kAllProtocolsExt),
                         [](const auto& info) {
                           return std::string(protocol_name(info.param));
                         });

// --- Table I ---------------------------------------------------------------

struct TableRow {
  ProtocolKind proto;
  int sync_total, async_total, sync_crit, async_crit, msgs, msgs_crit;
};

class TableOneTest : public ::testing::TestWithParam<TableRow> {};

TEST_P(TableOneTest, CountsMatchPaper) {
  const TableRow row = GetParam();
  const TimelineResult r = run_single_create(row.proto);
  EXPECT_EQ(r.sync_writes, row.sync_total) << "total sync log writes";
  EXPECT_EQ(r.async_writes, row.async_total) << "total async log writes";
  EXPECT_EQ(r.sync_writes_critical, row.sync_crit) << "critical sync writes";
  EXPECT_EQ(r.async_writes_critical, row.async_crit)
      << "critical async writes";
  EXPECT_EQ(r.extra_msgs, row.msgs) << "total extra messages";
  EXPECT_EQ(r.extra_msgs_critical, row.msgs_crit) << "critical extra messages";
}

INSTANTIATE_TEST_SUITE_P(
    PaperTableOne, TableOneTest,
    ::testing::Values(
        TableRow{ProtocolKind::kPrN, 5, 1, 4, 1, 4, 4},
        TableRow{ProtocolKind::kPrC, 4, 1, 3, 0, 3, 2},
        TableRow{ProtocolKind::kEP, 4, 1, 3, 0, 1, 0},
        TableRow{ProtocolKind::kOnePC, 3, 1, 2, 0, 1, 0}),
    [](const auto& info) {
      return std::string(protocol_name(info.param.proto));
    });

// 1PC's headline: the client reply precedes the coordinator's commit force,
// so its latency beats every 2PC variant's.
TEST(LatencyShape, OnePcRepliesFastest) {
  const auto prn = run_single_create(ProtocolKind::kPrN);
  const auto prc = run_single_create(ProtocolKind::kPrC);
  const auto ep = run_single_create(ProtocolKind::kEP);
  const auto onepc = run_single_create(ProtocolKind::kOnePC);
  EXPECT_LT(onepc.client_latency, ep.client_latency);
  EXPECT_LT(ep.client_latency, prn.client_latency);   // EP saves a round trip
  EXPECT_LE(prc.client_latency, prn.client_latency);  // PrC skips the ACK wait
  // And the 1PC coordinator still finishes durably after the reply.
  EXPECT_GT(onepc.txn_complete, onepc.client_latency);
}

}  // namespace
}  // namespace opc
