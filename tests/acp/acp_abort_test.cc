// Abort paths and isolation: worker vetoes, lock timeouts, decision
// retries, concurrency control across protocols.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "mds/namespace.h"

namespace opc {
namespace {

struct AbortFixture {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace{false};
  ClusterConfig cc;
  std::unique_ptr<Cluster> cluster;
  IdAllocator ids;
  std::unique_ptr<PinnedPartitioner> part;
  std::unique_ptr<NamespacePlanner> planner;
  ObjectId dir;

  explicit AbortFixture(ProtocolKind proto, Duration lock_timeout = {}) {
    cc.n_nodes = 2;
    cc.protocol = proto;
    cc.acp.lock_timeout = lock_timeout;
    cc.record_history = true;
    cluster = std::make_unique<Cluster>(sim, cc, stats, trace);
    dir = ids.next();
    part = std::make_unique<PinnedPartitioner>(2, NodeId(1));
    part->assign(dir, NodeId(0));
    cluster->bootstrap_directory(dir, NodeId(0));
    planner = std::make_unique<NamespacePlanner>(*part, OpCosts{});
  }
};

class AbortParamTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(AbortParamTest, WorkerValidationVetoAborts) {
  AbortFixture f(GetParam());
  // Seed an inode so a duplicate CreateInode fails AT THE WORKER while the
  // coordinator's dentry op is fine.
  f.cluster->store(NodeId(1)).bootstrap_inode(
      Inode{ObjectId(777), false, 1, 0});
  // Keep the invariant checker quiet about the seeded inode.
  f.cluster->store(NodeId(0)).bootstrap_dentry(f.dir, "seed", ObjectId(777));

  TxnOutcome outcome = TxnOutcome::kPending;
  f.cluster->submit(
      f.planner->plan_create(f.dir, "clash", ObjectId(777), false),
      [&](TxnId, TxnOutcome o) { outcome = o; });
  f.sim.run();

  EXPECT_EQ(outcome, TxnOutcome::kAborted);
  EXPECT_FALSE(
      f.cluster->store(NodeId(0)).stable_lookup(f.dir, "clash").has_value())
      << "coordinator undid its dentry";
  EXPECT_GT(f.stats.get("acp.worker.validation_vetoes"), 0);
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
  // The directory lock is free again.
  TxnOutcome second = TxnOutcome::kPending;
  f.cluster->submit(f.planner->plan_create(f.dir, "ok", f.ids.next(), false),
                    [&](TxnId, TxnOutcome o) { second = o; });
  f.sim.run();
  EXPECT_EQ(second, TxnOutcome::kCommitted);
}

TEST_P(AbortParamTest, CoordinatorValidationFailureAborts) {
  AbortFixture f(GetParam());
  // Delete a name that does not exist: the coordinator's RemoveDentry fails
  // locally before any worker is involved in the decision.
  TxnOutcome outcome = TxnOutcome::kPending;
  f.cluster->submit(f.planner->plan_delete(f.dir, "ghost", ObjectId(404)),
                    [&](TxnId, TxnOutcome o) { outcome = o; });
  f.sim.run();
  EXPECT_EQ(outcome, TxnOutcome::kAborted);
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
  EXPECT_EQ(f.cluster->engine(NodeId(0)).active_coordinations(), 0u);
  EXPECT_EQ(f.cluster->engine(NodeId(1)).active_participations(), 0u);
}

TEST_P(AbortParamTest, AbortedInodeNeverLeaks) {
  AbortFixture f(GetParam());
  // Two creates race for the same name; one must abort and its inode must
  // not survive anywhere.
  // Keyed by submission: reply order differs per protocol (PrN answers the
  // winner only after the full ACK round, i.e. after the loser's abort).
  TxnOutcome first = TxnOutcome::kPending;
  TxnOutcome second = TxnOutcome::kPending;
  const ObjectId ino_a = f.ids.next();
  const ObjectId ino_b = f.ids.next();
  f.cluster->submit(f.planner->plan_create(f.dir, "race", ino_a, false),
                    [&](TxnId, TxnOutcome o) { first = o; });
  f.cluster->submit(f.planner->plan_create(f.dir, "race", ino_b, false),
                    [&](TxnId, TxnOutcome o) { second = o; });
  f.sim.run();
  EXPECT_EQ(first, TxnOutcome::kCommitted) << "FIFO: first submission wins";
  EXPECT_EQ(second, TxnOutcome::kAborted);
  EXPECT_EQ(f.cluster->store(NodeId(0)).stable_lookup(f.dir, "race"), ino_a);
  EXPECT_FALSE(f.cluster->store(NodeId(1)).stable_inode(ino_b).has_value());
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
  ASSERT_NE(f.cluster->history(), nullptr);
  EXPECT_TRUE(f.cluster->history()->serializable());
}

TEST_P(AbortParamTest, ConcurrentStormSerializesOnDirectoryLock) {
  AbortFixture f(GetParam());
  int committed = 0;
  for (int i = 0; i < 25; ++i) {
    f.cluster->submit(
        f.planner->plan_create(f.dir, "c" + std::to_string(i), f.ids.next(),
                               false),
        [&](TxnId, TxnOutcome o) {
          if (o == TxnOutcome::kCommitted) ++committed;
        });
  }
  f.sim.run();
  EXPECT_EQ(committed, 25);
  EXPECT_EQ(f.cluster->store(NodeId(0)).stable_dentry_count(), 25u);
  EXPECT_TRUE(f.cluster->history()->serializable());
  EXPECT_GT(f.stats.get("lock.grants.queued"), 0)
      << "contention actually exercised the queue";
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, AbortParamTest,
                         ::testing::ValuesIn(kAllProtocolsExt),
                         [](const auto& info) {
                           return std::string(protocol_name(info.param));
                         });

TEST(LockTimeoutAbort, StarvedTransactionAbortsAndRetriesCanSucceed) {
  // Tight lock timeout: with a deep queue, later arrivals time out (the
  // paper's deadlock-avoidance behaviour) instead of waiting forever.
  AbortFixture f(ProtocolKind::kOnePC, /*lock_timeout=*/Duration::millis(50));
  int committed = 0, aborted = 0;
  for (int i = 0; i < 10; ++i) {
    f.cluster->submit(
        f.planner->plan_create(f.dir, "t" + std::to_string(i), f.ids.next(),
                               false),
        [&](TxnId, TxnOutcome o) {
          (o == TxnOutcome::kCommitted ? committed : aborted)++;
        });
  }
  f.sim.run();
  EXPECT_GT(committed, 0);
  EXPECT_GT(aborted, 0) << "50ms budget cannot drain a 10-deep 20ms queue";
  EXPECT_EQ(committed + aborted, 10);
  EXPECT_GT(f.stats.get("lock.timeouts"), 0);
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

TEST(UpdateTimeout, TwoPcFamilyAbortsWhenWorkerIsDown) {
  for (ProtocolKind proto :
       {ProtocolKind::kPrN, ProtocolKind::kPrC, ProtocolKind::kEP}) {
    AbortFixture f(proto);
    f.cc.acp.response_timeout = Duration::millis(200);
    // Rebuild with timeouts enabled.
    Simulator sim;
    StatsRegistry stats;
    TraceRecorder trace(false);
    ClusterConfig cc = f.cc;
    cc.acp.response_timeout = Duration::millis(200);
    cc.acp.retry_interval = Duration::millis(100);
    Cluster cluster(sim, cc, stats, trace);
    IdAllocator ids;
    const ObjectId dir = ids.next();
    PinnedPartitioner part(2, NodeId(1));
    part.assign(dir, NodeId(0));
    cluster.bootstrap_directory(dir, NodeId(0));
    NamespacePlanner planner(part, OpCosts{});

    cluster.crash_node(NodeId(1));  // worker down from the start
    TxnOutcome outcome = TxnOutcome::kPending;
    cluster.submit(planner.plan_create(dir, "x", ids.next(), false),
                   [&](TxnId, TxnOutcome o) { outcome = o; });
    sim.schedule_after(Duration::seconds(1),
                       [&] { cluster.reboot_node(NodeId(1)); });
    sim.run_until(SimTime::zero() + Duration::seconds(30));
    ASSERT_TRUE(sim.idle()) << protocol_name(proto);
    EXPECT_EQ(outcome, TxnOutcome::kAborted) << protocol_name(proto);
    EXPECT_TRUE(cluster.check_invariants({dir}).empty());
  }
}

}  // namespace
}  // namespace opc
