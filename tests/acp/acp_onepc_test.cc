// 1PC-specific behaviour: the shared-log recovery with fencing (paper
// §III-A/C), including the split-brain scenario the centralized-storage
// architecture exists to solve.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "mds/namespace.h"

namespace opc {
namespace {

struct OnePcFixture {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace{false};
  ClusterConfig cc;
  std::unique_ptr<Cluster> cluster;
  IdAllocator ids;
  std::unique_ptr<PinnedPartitioner> part;
  std::unique_ptr<NamespacePlanner> planner;
  ObjectId dir;

  explicit OnePcFixture(bool heartbeats = false) {
    cc.n_nodes = 2;
    cc.protocol = ProtocolKind::kOnePC;
    cc.acp.response_timeout = Duration::millis(300);
    cc.acp.retry_interval = Duration::millis(100);
    if (heartbeats) {
      cc.heartbeat.enabled = true;
      cc.heartbeat.interval = Duration::millis(50);
      cc.heartbeat.suspicion_timeout = Duration::millis(200);
    }
    cluster = std::make_unique<Cluster>(sim, cc, stats, trace);
    dir = ids.next();
    part = std::make_unique<PinnedPartitioner>(2, NodeId(1));
    part->assign(dir, NodeId(0));
    cluster->bootstrap_directory(dir, NodeId(0));
    planner = std::make_unique<NamespacePlanner>(*part, OpCosts{});
  }
};

// Worker dies after committing but before UPDATED reaches the coordinator:
// the coordinator must fence, read the worker's log, find COMMITTED, and
// commit — not abort.
TEST(OnePcFencing, WorkerCommittedLogForcesCommitDecision) {
  OnePcFixture f;
  TxnOutcome outcome = TxnOutcome::kPending;
  const ObjectId inode = f.ids.next();
  f.cluster->submit(f.planner->plan_create(f.dir, "w", inode, false),
                    [&](TxnId, TxnOutcome o) { outcome = o; });
  // 1PC timeline: STARTED force ~[0,20ms]; worker commit force ~[20,40ms];
  // UPDATED in flight ~40.3ms.  Crash the worker at 41ms: its COMMITTED is
  // durable but the reply is about to be dropped?  No — crash *before* the
  // reply is delivered but after the log write: kill the link first so the
  // UPDATED is lost, then the worker.
  f.sim.schedule_after(Duration::millis(40), [&] {
    f.cluster->partition_pair(NodeId(0), NodeId(1));
  });
  f.sim.schedule_after(Duration::millis(45), [&] {
    f.cluster->crash_node(NodeId(1));
    f.cluster->heal_pair(NodeId(0), NodeId(1));
  });
  f.sim.run_until(SimTime::zero() + Duration::seconds(30));
  ASSERT_TRUE(f.sim.idle());

  EXPECT_EQ(outcome, TxnOutcome::kCommitted);
  EXPECT_GT(f.stats.get("acp.onepc.fencing_recoveries"), 0);
  EXPECT_GT(f.stats.get("acp.onepc.fence_commit"), 0);
  EXPECT_TRUE(f.cluster->store(NodeId(0)).stable_lookup(f.dir, "w").has_value());
  EXPECT_TRUE(f.cluster->store(NodeId(1)).stable_inode(inode).has_value());
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

// Worker dies before its commit force completes: the fenced log is empty
// for this transaction, so the coordinator must abort.
TEST(OnePcFencing, EmptyWorkerLogForcesAbortDecision) {
  OnePcFixture f;
  TxnOutcome outcome = TxnOutcome::kPending;
  const ObjectId inode = f.ids.next();
  f.cluster->submit(f.planner->plan_create(f.dir, "v", inode, false),
                    [&](TxnId, TxnOutcome o) { outcome = o; });
  // Crash mid-commit-force (force runs ~[20,40ms]); nothing durable.
  f.cluster->schedule_crash(NodeId(1), Duration::millis(30));
  f.sim.run_until(SimTime::zero() + Duration::seconds(30));
  ASSERT_TRUE(f.sim.idle());

  EXPECT_EQ(outcome, TxnOutcome::kAborted);
  EXPECT_GT(f.stats.get("acp.onepc.fence_abort"), 0);
  EXPECT_FALSE(f.cluster->store(NodeId(0)).stable_lookup(f.dir, "v").has_value());
  EXPECT_FALSE(f.cluster->store(NodeId(1)).stable_inode(inode).has_value());
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

// Split brain: the worker is ALIVE but partitioned away.  Heartbeats make
// the coordinator suspect a crash; STONITH power-cycles the live worker and
// fences its writes before the coordinator reads the log.  Whatever the
// outcome, the two nodes must agree, and the read must never hit an
// unfenced partition.
TEST(OnePcFencing, PartitionSplitBrainStaysConsistent) {
  for (std::int64_t cut_ms = 1; cut_ms <= 60; cut_ms += 4) {
    OnePcFixture f(/*heartbeats=*/true);
    const ObjectId inode = f.ids.next();
    TxnOutcome outcome = TxnOutcome::kPending;
    f.cluster->submit(f.planner->plan_create(f.dir, "s", inode, false),
                      [&](TxnId, TxnOutcome o) { outcome = o; });
    f.sim.schedule_after(Duration::millis(cut_ms), [&] {
      f.cluster->partition_pair(NodeId(0), NodeId(1));
    });
    // Heal the network well after suspicion fires, so the STONITH'd worker
    // reboots into a connected cluster.
    f.sim.schedule_after(Duration::seconds(2), [&] {
      f.cluster->heal_pair(NodeId(0), NodeId(1));
    });
    f.sim.run_until(SimTime::zero() + Duration::seconds(30));

    // The 1PC safety rule: never read a live node's log without fencing.
    EXPECT_EQ(f.stats.get("storage.reads.unfenced"),
              f.stats.get("acp.recoveries"))
        << "every unfenced read must be a node scanning its OWN log";

    const bool dentry =
        f.cluster->store(NodeId(0)).stable_lookup(f.dir, "s").has_value();
    const bool ino =
        f.cluster->store(NodeId(1)).stable_inode(inode).has_value();
    EXPECT_EQ(dentry, ino) << "split brain at cut_ms=" << cut_ms;
    const auto violations = f.cluster->check_invariants({f.dir});
    EXPECT_TRUE(violations.empty())
        << "cut_ms=" << cut_ms << "\n" << render_violations(violations);
    if (outcome == TxnOutcome::kCommitted) {
      EXPECT_TRUE(dentry && ino);
    }
    if (outcome == TxnOutcome::kAborted) {
      EXPECT_FALSE(dentry || ino);
    }
  }
}

// The fenced worker's in-flight log write must be cut off: a commit force
// racing the fence cannot become durable after the coordinator's read.
TEST(OnePcFencing, FenceCancelsInFlightWorkerWrites) {
  OnePcFixture f;
  // Prime: issue a create and fence the worker mid-force.
  f.cluster->submit(f.planner->plan_create(f.dir, "q", f.ids.next(), false),
                    [](TxnId, TxnOutcome) {});
  f.sim.run_until(SimTime::zero() + Duration::millis(30));  // force mid-flight
  f.cluster->storage().fence(NodeId(1));
  const std::size_t durable_before =
      f.cluster->storage().partition(NodeId(1)).records().size();
  f.sim.run_until(SimTime::zero() + Duration::millis(200));
  const std::size_t durable_after =
      f.cluster->storage().partition(NodeId(1)).records().size();
  EXPECT_EQ(durable_before, durable_after)
      << "a fenced partition accepted writes";
}

// After the fencing recovery commits, the rebooted worker must converge:
// its AckReq gets an ACK and its log finalizes.
TEST(OnePcFencing, RebootedWorkerFinalizesAfterFenceCommit) {
  OnePcFixture f;
  const ObjectId inode = f.ids.next();
  f.cluster->submit(f.planner->plan_create(f.dir, "r", inode, false),
                    [](TxnId, TxnOutcome) {});
  f.sim.schedule_after(Duration::millis(40), [&] {
    f.cluster->partition_pair(NodeId(0), NodeId(1));
  });
  f.sim.schedule_after(Duration::millis(45), [&] {
    f.cluster->crash_node(NodeId(1));
    f.cluster->heal_pair(NodeId(0), NodeId(1));
  });
  f.sim.run_until(SimTime::zero() + Duration::seconds(30));
  ASSERT_TRUE(f.sim.idle());
  EXPECT_EQ(f.cluster->engine(NodeId(1)).active_participations(), 0u);
  // The worker's log for the transaction has been checkpointed away (only
  // the lazy ENDED may remain, which recovery also clears on next reboot).
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

// Regression: a coordinator that crashes while holding a STONITH fence must
// release it, or the fenced worker could never reboot.
TEST(OnePcFencing, CoordinatorCrashReleasesItsFenceHolds) {
  OnePcFixture f;
  f.cluster->submit(f.planner->plan_create(f.dir, "h", f.ids.next(), false),
                    [](TxnId, TxnOutcome) {});
  // Kill the worker mid-commit so the coordinator starts a fencing round...
  f.cluster->schedule_crash(NodeId(1), Duration::millis(30));
  // ...and kill the coordinator while the fence is held (fence_delay=50ms
  // after the ~330ms response timeout).
  f.cluster->schedule_crash(NodeId(0), Duration::millis(360),
                            /*reboot_after=*/Duration::millis(300));
  f.sim.run_until(SimTime::zero() + Duration::seconds(30));

  EXPECT_FALSE(f.cluster->fencing().held(NodeId(1)))
      << "fence hold leaked past the holder's crash";
  EXPECT_TRUE(f.cluster->node(NodeId(1)).alive())
      << "worker stuck powered off";
  EXPECT_TRUE(f.cluster->node(NodeId(0)).alive());
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

// Hybrid fallback: a 4-participant RENAME under a 1PC-configured cluster
// must run as PrN and still commit atomically.
TEST(HybridProtocol, FourPartyRenameFallsBackToPrN) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  ClusterConfig cc;
  cc.n_nodes = 4;
  cc.protocol = ProtocolKind::kOnePC;
  Cluster cluster(sim, cc, stats, trace);

  IdAllocator ids;
  PinnedPartitioner part(4, NodeId(3));
  const ObjectId src_dir = ids.next();
  const ObjectId dst_dir = ids.next();
  part.assign(src_dir, NodeId(0));
  part.assign(dst_dir, NodeId(1));
  cluster.bootstrap_directory(src_dir, NodeId(0));
  cluster.bootstrap_directory(dst_dir, NodeId(1));
  NamespacePlanner planner(part, OpCosts{});

  // File inode on mds2, overwritten target inode on mds3.
  const ObjectId moved = ids.next();
  part.assign(moved, NodeId(2));
  const ObjectId clobbered = ids.next();
  part.assign(clobbered, NodeId(3));

  int committed = 0;
  cluster.submit(planner.plan_create(src_dir, "a", moved, false),
                 [&](TxnId, TxnOutcome o) {
                   if (o == TxnOutcome::kCommitted) ++committed;
                 });
  cluster.submit(planner.plan_create(dst_dir, "b", clobbered, false),
                 [&](TxnId, TxnOutcome o) {
                   if (o == TxnOutcome::kCommitted) ++committed;
                 });
  sim.run();
  ASSERT_EQ(committed, 2);

  const Transaction rename =
      planner.plan_rename(src_dir, "a", dst_dir, "b", moved, clobbered);
  EXPECT_EQ(rename.n_participants(), 4u);
  TxnOutcome outcome = TxnOutcome::kPending;
  cluster.submit(rename, [&](TxnId, TxnOutcome o) { outcome = o; });
  sim.run();

  EXPECT_EQ(outcome, TxnOutcome::kCommitted);
  EXPECT_FALSE(cluster.store(NodeId(0)).stable_lookup(src_dir, "a").has_value());
  EXPECT_EQ(cluster.store(NodeId(1)).stable_lookup(dst_dir, "b"), moved);
  EXPECT_FALSE(cluster.store(NodeId(3)).stable_inode(clobbered).has_value());
  EXPECT_TRUE(cluster.check_invariants({src_dir, dst_dir}).empty());
  // The 4-party transaction ran as PrN: its PREPARE round is visible.
  EXPECT_GE(stats.get("acp.msg.total"), 12);
}

}  // namespace
}  // namespace opc
