// Message-drop matrix: for every protocol and every protocol message type,
// deterministically lose the FIRST occurrence of that message (and, in a
// second sweep, the first two) during a distributed CREATE.  With timeouts
// enabled the system must always converge to an atomic outcome, and a
// client that heard "committed" must find its file.
//
// This complements the probabilistic LossTest: instead of hoping the RNG
// hits an interesting message, every single message type gets its turn.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "fs/rpc.h"
#include "mds/namespace.h"

namespace opc {
namespace {

const char* kDroppableKinds[] = {
    "UPDATE_REQ", "UPDATED", "PREPARE", "PREPARED", "COMMIT",
    "ABORT",      "ACK",     "DECISION_REQ", "DECISION", "ACK_REQ",
};

class MsgDropTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(MsgDropTest, EveryLostMessageStillConvergesAtomically) {
  for (const char* kind : kDroppableKinds) {
    for (int drops : {1, 2}) {
      Simulator sim;
      StatsRegistry stats;
      TraceRecorder trace(false);
      ClusterConfig cc;
      cc.n_nodes = 2;
      cc.protocol = GetParam();
      cc.acp.response_timeout = Duration::millis(300);
      cc.acp.retry_interval = Duration::millis(100);
      Cluster cluster(sim, cc, stats, trace);

      int remaining = drops;
      cluster.network().set_drop_filter([&](const Envelope& env) {
        if (remaining > 0 && env.kind == kind) {
          --remaining;
          return true;
        }
        return false;
      });

      IdAllocator ids;
      const ObjectId dir = ids.next();
      PinnedPartitioner part(2, NodeId(1));
      part.assign(dir, NodeId(0));
      cluster.bootstrap_directory(dir, NodeId(0));
      NamespacePlanner planner(part, OpCosts{});
      const ObjectId inode = ids.next();

      TxnOutcome outcome = TxnOutcome::kPending;
      cluster.submit(planner.plan_create(dir, "m", inode, false),
                     [&](TxnId, TxnOutcome o) { outcome = o; });
      sim.run_until(SimTime::zero() + Duration::seconds(60));
      ASSERT_TRUE(sim.idle())
          << protocol_name(GetParam()) << " never quiesced after losing "
          << drops << "x " << kind;

      const bool dentry =
          cluster.store(NodeId(0)).stable_lookup(dir, "m").has_value();
      const bool ino =
          cluster.store(NodeId(1)).stable_inode(inode).has_value();
      EXPECT_EQ(dentry, ino)
          << protocol_name(GetParam()) << " torn after losing " << drops
          << "x " << kind;
      EXPECT_TRUE(cluster.check_invariants({dir}).empty())
          << protocol_name(GetParam()) << " losing " << kind;
      EXPECT_NE(outcome, TxnOutcome::kPending)
          << protocol_name(GetParam()) << " client never answered after "
          << drops << "x " << kind
          << " (acceptable only for coordinator-side losses)";
      if (outcome == TxnOutcome::kCommitted) {
        EXPECT_TRUE(dentry && ino)
            << protocol_name(GetParam()) << " losing " << kind;
      }
      if (outcome == TxnOutcome::kAborted) {
        EXPECT_FALSE(dentry || ino)
            << protocol_name(GetParam()) << " losing " << kind;
      }
      // Both engines fully clean.
      EXPECT_EQ(cluster.engine(NodeId(0)).active_coordinations(), 0u);
      EXPECT_EQ(cluster.engine(NodeId(1)).active_participations(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, MsgDropTest,
                         ::testing::ValuesIn(kAllProtocolsExt),
                         [](const auto& info) {
                           return std::string(protocol_name(info.param));
                         });

// Losing a metadata read RPC (or its reply) must surface as kUnreachable at
// the client after the RPC timeout, never hang.
TEST(MsgDropTest, LostFsRpcTimesOutCleanly) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(false);
  ClusterConfig cc;
  cc.n_nodes = 2;
  Cluster cluster(sim, cc, stats, trace);
  int drop = 1;
  cluster.network().set_drop_filter([&](const Envelope& env) {
    if (drop > 0 && env.kind == "FS_REQ") {
      --drop;
      return true;
    }
    return false;
  });
  // A raw FS RPC via the node's handler path: use an envelope directly.
  bool answered = false;
  cluster.network().attach(NodeId(7), [&](Envelope) { answered = true; });
  Envelope env;
  env.from = NodeId(7);
  env.to = NodeId(0);
  env.kind = "FS_REQ";
  env.payload.emplace<FsRpc>();
  cluster.network().send(std::move(env));
  sim.run();
  EXPECT_FALSE(answered) << "the request was dropped; no reply may arrive";
}

}  // namespace
}  // namespace opc
