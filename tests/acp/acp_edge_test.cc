// Protocol edge cases: read-only fast path, shared-lock concurrency,
// duplicate and stale messages, PrC's presumption, recovery ordering of
// queued submissions.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "mds/namespace.h"

namespace opc {
namespace {

struct EdgeFixture {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace{false};
  ClusterConfig cc;
  std::unique_ptr<Cluster> cluster;
  IdAllocator ids;
  std::unique_ptr<PinnedPartitioner> part;
  std::unique_ptr<NamespacePlanner> planner;
  ObjectId dir;

  explicit EdgeFixture(ProtocolKind proto = ProtocolKind::kOnePC,
                       std::uint32_t nodes = 2) {
    cc.n_nodes = nodes;
    cc.protocol = proto;
    cc.acp.response_timeout = Duration::millis(300);
    cc.acp.retry_interval = Duration::millis(100);
    cluster = std::make_unique<Cluster>(sim, cc, stats, trace);
    dir = ids.next();
    part = std::make_unique<PinnedPartitioner>(nodes, NodeId(1));
    part->assign(dir, NodeId(0));
    cluster->bootstrap_directory(dir, NodeId(0));
    planner = std::make_unique<NamespacePlanner>(*part, OpCosts{});
  }
};

TEST(ReadFastPath, StatWritesNothingToTheLog) {
  EdgeFixture f;
  const ObjectId inode = f.ids.next();
  f.cluster->submit(f.planner->plan_create(f.dir, "s", inode, false),
                    [](TxnId, TxnOutcome) {});
  f.sim.run();
  const auto forces_before = f.stats.get("wal.force.count");

  TxnOutcome outcome = TxnOutcome::kPending;
  SimTime replied;
  f.cluster->submit(f.planner->plan_stat(inode), [&](TxnId, TxnOutcome o) {
    outcome = o;
    replied = f.sim.now();
  });
  const SimTime started = f.sim.now();
  f.sim.run();

  EXPECT_EQ(outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(f.stats.get("wal.force.count"), forces_before)
      << "a stat must not touch the log";
  EXPECT_EQ(f.stats.get("acp.local.read_only"), 1);
  // Just the 1 us method compute, no disk, no network.
  EXPECT_LT(replied - started, Duration::micros(10));
}

TEST(ReadFastPath, ConcurrentStatsShareTheLock) {
  EdgeFixture f;
  const ObjectId inode = f.ids.next();
  f.cluster->submit(f.planner->plan_create(f.dir, "s", inode, false),
                    [](TxnId, TxnOutcome) {});
  f.sim.run();

  int done = 0;
  for (int i = 0; i < 10; ++i) {
    f.cluster->submit(f.planner->plan_stat(inode), [&](TxnId, TxnOutcome o) {
      if (o == TxnOutcome::kCommitted) ++done;
    });
  }
  f.sim.run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(f.stats.get("lock.grants.queued"), 0)
      << "shared locks must not queue behind each other";
}

TEST(ReadFastPath, StatOfMissingInodeAborts) {
  EdgeFixture f;
  // The inode is on the worker node per the pinned partitioner, so route a
  // stat at an id that does not exist anywhere.
  TxnOutcome outcome = TxnOutcome::kPending;
  f.cluster->submit(f.planner->plan_stat(ObjectId(424242)),
                    [&](TxnId, TxnOutcome o) { outcome = o; });
  f.sim.run();
  EXPECT_EQ(outcome, TxnOutcome::kAborted);
}

TEST(PresumedCommit, WorkerLearnsCommitFromFinalizedLog) {
  // PrC's defining behaviour: the coordinator finalizes (truncates) its log
  // right after deciding commit; a worker that later asks and finds nothing
  // must presume COMMIT.  Force that path by dropping the COMMIT message.
  EdgeFixture f(ProtocolKind::kPrC);
  const ObjectId inode = f.ids.next();
  TxnOutcome outcome = TxnOutcome::kPending;
  f.cluster->submit(f.planner->plan_create(f.dir, "p", inode, false),
                    [&](TxnId, TxnOutcome o) { outcome = o; });
  // The COMMIT leaves the coordinator at ~60.5 ms.  Sever just before, heal
  // after: only that one message is lost.
  f.sim.schedule_after(Duration::millis(60), [&] {
    f.cluster->partition_pair(NodeId(0), NodeId(1));
  });
  f.sim.schedule_after(Duration::millis(80), [&] {
    f.cluster->heal_pair(NodeId(0), NodeId(1));
  });
  // Additionally crash+reboot the coordinator so even its in-memory
  // outcome map is gone — the worker's answer can only come from the
  // presumption.
  f.cluster->schedule_crash(NodeId(0), Duration::millis(100),
                            Duration::millis(200));
  f.sim.run_until(SimTime::zero() + Duration::seconds(30));
  ASSERT_TRUE(f.sim.idle());

  EXPECT_EQ(outcome, TxnOutcome::kCommitted);
  EXPECT_GT(f.stats.get("acp.decision.presumed"), 0)
      << "the worker resolved via the presumption, not via state";
  EXPECT_TRUE(f.cluster->store(NodeId(1)).stable_inode(inode).has_value());
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

TEST(RecoveryOrdering, QueuedSubmissionsDrainInOrderAfterRecovery) {
  EdgeFixture f;
  // Prime one transaction, crash mid-flight so recovery has work.
  f.cluster->submit(f.planner->plan_create(f.dir, "pre", f.ids.next(), false),
                    [](TxnId, TxnOutcome) {});
  f.cluster->schedule_crash(NodeId(0), Duration::millis(25));
  f.sim.run_until(SimTime::zero() + Duration::millis(100));

  // Reboot; while the engine is recovering, submit three more.
  f.cluster->reboot_node(NodeId(0));
  std::vector<std::string> commit_order;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "q" + std::to_string(i);
    f.cluster->submit(
        f.planner->plan_create(f.dir, name, f.ids.next(), false),
        [&, name](TxnId, TxnOutcome o) {
          if (o == TxnOutcome::kCommitted) commit_order.push_back(name);
        });
  }
  EXPECT_GT(f.stats.get("acp.submit.queued_behind_recovery"), 0)
      << "submissions were actually gated by recovery";
  f.sim.run_until(SimTime::zero() + Duration::seconds(30));

  ASSERT_EQ(commit_order.size(), 3u);
  EXPECT_EQ(commit_order, (std::vector<std::string>{"q0", "q1", "q2"}));
  // The re-driven "pre" create also landed (1PC redo).
  EXPECT_TRUE(f.cluster->store(NodeId(0)).stable_lookup(f.dir, "pre")
                  .has_value());
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

TEST(DuplicateMessages, RedrivenUpdateReqIsIdempotentAtTheWorker) {
  EdgeFixture f;
  const ObjectId inode = f.ids.next();
  f.cluster->submit(f.planner->plan_create(f.dir, "dup", inode, false),
                    [](TxnId, TxnOutcome) {});
  // Crash the coordinator after the worker committed (>= 40.3 ms) but
  // before the coordinator processed UPDATED; the redo re-sends UPDATE_REQ
  // to a worker that already committed the transaction.
  f.cluster->schedule_crash(NodeId(0), Duration::millis(41),
                            Duration::millis(300));
  f.sim.run_until(SimTime::zero() + Duration::seconds(30));
  ASSERT_TRUE(f.sim.idle());

  const auto ino = f.cluster->store(NodeId(1)).stable_inode(inode);
  ASSERT_TRUE(ino.has_value());
  EXPECT_EQ(ino->nlink, 1u) << "replay must not double-apply IncLink";
  EXPECT_TRUE(f.cluster->store(NodeId(0)).stable_lookup(f.dir, "dup")
                  .has_value());
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

TEST(StaleMessages, LateAcksAndCommitsForFinishedTxnsAreHarmless) {
  // Drive a commit normally, then replay stale COMMIT/ACK/DECISION_REQ
  // envelopes at both engines; nothing may change or crash.
  EdgeFixture f(ProtocolKind::kPrN);
  const ObjectId inode = f.ids.next();
  TxnId txn = 0;
  f.cluster->submit(f.planner->plan_create(f.dir, "z", inode, false),
                    [&](TxnId id, TxnOutcome) { txn = id; });
  f.sim.run();

  auto stale = [&](MsgType type, NodeId from, NodeId to) {
    Msg m;
    m.type = type;
    m.txn = txn;
    m.proto = ProtocolKind::kPrN;
    m.from = from;
    Envelope env;
    env.from = from;
    env.to = to;
    env.kind = std::string(msg_type_name(type));
    env.txn = txn;
    env.payload.emplace<Msg>(m);
    f.cluster->network().send(std::move(env));
  };
  stale(MsgType::kCommit, NodeId(0), NodeId(1));
  stale(MsgType::kAck, NodeId(1), NodeId(0));
  stale(MsgType::kPrepared, NodeId(1), NodeId(0));
  stale(MsgType::kDecisionReq, NodeId(1), NodeId(0));
  f.sim.run();

  EXPECT_TRUE(f.cluster->store(NodeId(0)).stable_lookup(f.dir, "z")
                  .has_value());
  EXPECT_EQ(f.cluster->store(NodeId(1)).stable_inode(inode)->nlink, 1u);
  EXPECT_EQ(f.cluster->engine(NodeId(0)).active_coordinations(), 0u);
  EXPECT_EQ(f.cluster->engine(NodeId(1)).active_participations(), 0u);
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

TEST(HybridProtocol, ProtocolChoiceIsPerTransaction) {
  // Under a 1PC cluster, two-party ops run 1PC while a wide rename runs
  // PrN — concurrently, against overlapping objects, without interference.
  EdgeFixture f(ProtocolKind::kOnePC, 4);
  // dirs on 0 and 1; inodes pinned to 1 by default.
  const ObjectId dir2 = f.ids.next();
  f.part->assign(dir2, NodeId(2));
  f.cluster->bootstrap_directory(dir2, NodeId(2));

  const ObjectId a = f.ids.next();
  const ObjectId b = f.ids.next();
  f.part->assign(b, NodeId(3));
  int committed = 0;
  f.cluster->submit(f.planner->plan_create(f.dir, "a", a, false),
                    [&](TxnId, TxnOutcome o) {
                      if (o == TxnOutcome::kCommitted) ++committed;
                    });
  f.sim.run();
  f.cluster->submit(f.planner->plan_create(dir2, "b", b, false),
                    [&](TxnId, TxnOutcome o) {
                      if (o == TxnOutcome::kCommitted) ++committed;
                    });
  f.sim.run();
  // Wide rename (4 nodes) concurrent with a 2-party create in f.dir.
  f.cluster->submit(
      f.planner->plan_rename(f.dir, "a", dir2, "moved", a, std::nullopt),
      [&](TxnId, TxnOutcome o) {
        if (o == TxnOutcome::kCommitted) ++committed;
      });
  f.cluster->submit(f.planner->plan_create(f.dir, "c", f.ids.next(), false),
                    [&](TxnId, TxnOutcome o) {
                      if (o == TxnOutcome::kCommitted) ++committed;
                    });
  f.sim.run();

  EXPECT_EQ(committed, 4);
  EXPECT_EQ(f.cluster->store(NodeId(2)).stable_lookup(dir2, "moved"), a);
  EXPECT_TRUE(f.cluster->check_invariants({f.dir, dir2}).empty());
}

}  // namespace
}  // namespace opc
