// Crash-recovery matrix: for every protocol, crash the coordinator or the
// worker at a dense sweep of instants covering the whole transaction
// lifetime, reboot, and verify atomicity — the paper's §II invariants (no
// dangling dentries, no orphaned inodes) must hold in stable state no
// matter where the failure lands, and a client that was told "committed"
// must find its file.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "mds/namespace.h"

namespace opc {
namespace {

struct CrashCase {
  ProtocolKind proto;
  bool crash_coordinator;  // else crash the worker
};

class CrashMatrixTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashMatrixTest, AtomicityHoldsAtEveryCrashPoint) {
  const CrashCase cp = GetParam();
  // A distributed CREATE spans ~110 ms under PrN with the paper's disk
  // parameters; sweep well past that.
  for (std::int64_t crash_ms = 1; crash_ms <= 140; crash_ms += 3) {
    Simulator sim;
    StatsRegistry stats;
    TraceRecorder trace(false);
    ClusterConfig cc;
    cc.n_nodes = 2;
    cc.protocol = cp.proto;
    cc.acp.response_timeout = Duration::millis(300);
    cc.acp.retry_interval = Duration::millis(100);
    Cluster cluster(sim, cc, stats, trace);

    IdAllocator ids;
    const ObjectId dir = ids.next();
    PinnedPartitioner part(2, NodeId(1));
    part.assign(dir, NodeId(0));
    cluster.bootstrap_directory(dir, NodeId(0));
    NamespacePlanner planner(part, OpCosts{});
    const ObjectId inode = ids.next();

    TxnOutcome replied = TxnOutcome::kPending;
    cluster.submit(planner.plan_create(dir, "x", inode, false),
                   [&](TxnId, TxnOutcome o) { replied = o; });

    const NodeId victim = cp.crash_coordinator ? NodeId(0) : NodeId(1);
    cluster.schedule_crash(victim, Duration::millis(crash_ms),
                           /*reboot_after=*/Duration::millis(400));

    sim.run_until(SimTime::zero() + Duration::seconds(60));
    ASSERT_TRUE(sim.idle()) << "scenario did not quiesce: proto="
                            << protocol_name(cp.proto)
                            << " crash_ms=" << crash_ms;

    const bool dentry_present =
        cluster.store(NodeId(0)).stable_lookup(dir, "x").has_value();
    const bool inode_present =
        cluster.store(NodeId(1)).stable_inode(inode).has_value();
    EXPECT_EQ(dentry_present, inode_present)
        << "atomicity violated: proto=" << protocol_name(cp.proto)
        << " victim=" << victim.str() << " crash_ms=" << crash_ms;

    const auto violations = cluster.check_invariants({dir});
    EXPECT_TRUE(violations.empty())
        << "proto=" << protocol_name(cp.proto) << " crash_ms=" << crash_ms
        << "\n" << render_violations(violations);

    if (replied == TxnOutcome::kCommitted) {
      EXPECT_TRUE(dentry_present && inode_present)
          << "client saw commit but effects are missing: proto="
          << protocol_name(cp.proto) << " crash_ms=" << crash_ms;
    }
    if (replied == TxnOutcome::kAborted) {
      EXPECT_FALSE(dentry_present || inode_present)
          << "client saw abort but effects exist: proto="
          << protocol_name(cp.proto) << " crash_ms=" << crash_ms;
    }

    // Nothing may remain in flight anywhere.
    for (std::uint32_t n = 0; n < 2; ++n) {
      EXPECT_EQ(cluster.engine(NodeId(n)).active_coordinations(), 0u);
      EXPECT_EQ(cluster.engine(NodeId(n)).active_participations(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsBothVictims, CrashMatrixTest,
    ::testing::Values(CrashCase{ProtocolKind::kPrN, true},
                      CrashCase{ProtocolKind::kPrN, false},
                      CrashCase{ProtocolKind::kPrC, true},
                      CrashCase{ProtocolKind::kPrC, false},
                      CrashCase{ProtocolKind::kEP, true},
                      CrashCase{ProtocolKind::kEP, false},
                      CrashCase{ProtocolKind::kOnePC, true},
                      CrashCase{ProtocolKind::kOnePC, false},
                      CrashCase{ProtocolKind::kPrA, true},
                      CrashCase{ProtocolKind::kPrA, false}),
    [](const auto& info) {
      return std::string(protocol_name(info.param.proto)) +
             (info.param.crash_coordinator ? "_coordinator" : "_worker");
    });

// Double-fault: coordinator AND worker crash close together.
class DoubleCrashTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(DoubleCrashTest, BothNodesCrashingStaysAtomic) {
  for (std::int64_t first_ms = 5; first_ms <= 120; first_ms += 10) {
    for (std::int64_t gap_ms : {3, 30}) {
      Simulator sim;
      StatsRegistry stats;
      TraceRecorder trace(false);
      ClusterConfig cc;
      cc.n_nodes = 2;
      cc.protocol = GetParam();
      cc.acp.response_timeout = Duration::millis(300);
      cc.acp.retry_interval = Duration::millis(100);
      Cluster cluster(sim, cc, stats, trace);

      IdAllocator ids;
      const ObjectId dir = ids.next();
      PinnedPartitioner part(2, NodeId(1));
      part.assign(dir, NodeId(0));
      cluster.bootstrap_directory(dir, NodeId(0));
      NamespacePlanner planner(part, OpCosts{});
      const ObjectId inode = ids.next();

      cluster.submit(planner.plan_create(dir, "y", inode, false),
                     [](TxnId, TxnOutcome) {});
      cluster.schedule_crash(NodeId(0), Duration::millis(first_ms),
                             Duration::millis(500));
      cluster.schedule_crash(NodeId(1), Duration::millis(first_ms + gap_ms),
                             Duration::millis(500));

      sim.run_until(SimTime::zero() + Duration::seconds(60));
      ASSERT_TRUE(sim.idle());

      const bool dentry_present =
          cluster.store(NodeId(0)).stable_lookup(dir, "y").has_value();
      const bool inode_present =
          cluster.store(NodeId(1)).stable_inode(inode).has_value();
      EXPECT_EQ(dentry_present, inode_present)
          << "proto=" << protocol_name(GetParam()) << " first=" << first_ms
          << " gap=" << gap_ms;
      EXPECT_TRUE(cluster.check_invariants({dir}).empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, DoubleCrashTest,
                         ::testing::ValuesIn(kAllProtocolsExt),
                         [](const auto& info) {
                           return std::string(protocol_name(info.param));
                         });

// Repeated crashes of the same node mid-recovery.
TEST(RepeatedCrash, CoordinatorCrashesTwiceDuringOneTransaction) {
  for (ProtocolKind proto : kAllProtocolsExt) {
    Simulator sim;
    StatsRegistry stats;
    TraceRecorder trace(false);
    ClusterConfig cc;
    cc.n_nodes = 2;
    cc.protocol = proto;
    cc.acp.response_timeout = Duration::millis(300);
    cc.acp.retry_interval = Duration::millis(100);
    Cluster cluster(sim, cc, stats, trace);

    IdAllocator ids;
    const ObjectId dir = ids.next();
    PinnedPartitioner part(2, NodeId(1));
    part.assign(dir, NodeId(0));
    cluster.bootstrap_directory(dir, NodeId(0));
    NamespacePlanner planner(part, OpCosts{});
    const ObjectId inode = ids.next();

    cluster.submit(planner.plan_create(dir, "z", inode, false),
                   [](TxnId, TxnOutcome) {});
    cluster.schedule_crash(NodeId(0), Duration::millis(25),
                           Duration::millis(300));
    // Second crash lands inside the recovery re-drive.
    cluster.schedule_crash(NodeId(0), Duration::millis(360),
                           Duration::millis(300));

    sim.run_until(SimTime::zero() + Duration::seconds(60));
    ASSERT_TRUE(sim.idle()) << protocol_name(proto);
    const bool dentry_present =
        cluster.store(NodeId(0)).stable_lookup(dir, "z").has_value();
    const bool inode_present =
        cluster.store(NodeId(1)).stable_inode(inode).has_value();
    EXPECT_EQ(dentry_present, inode_present) << protocol_name(proto);
    EXPECT_TRUE(cluster.check_invariants({dir}).empty())
        << protocol_name(proto);
  }
}

}  // namespace
}  // namespace opc
