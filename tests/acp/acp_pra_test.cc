// Presumed Abort (extension protocol) specifics: aborts are free of log
// records and acknowledgements; absence of information means abort; the
// commit path costs exactly what PrN costs.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/timeline.h"
#include "mds/namespace.h"

namespace opc {
namespace {

struct PraFixture {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace{false};
  std::unique_ptr<Cluster> cluster;
  IdAllocator ids;
  std::unique_ptr<PinnedPartitioner> part;
  std::unique_ptr<NamespacePlanner> planner;
  ObjectId dir;

  PraFixture() {
    ClusterConfig cc;
    cc.n_nodes = 2;
    cc.protocol = ProtocolKind::kPrA;
    cc.acp.response_timeout = Duration::millis(300);
    cc.acp.retry_interval = Duration::millis(100);
    cluster = std::make_unique<Cluster>(sim, cc, stats, trace);
    dir = ids.next();
    part = std::make_unique<PinnedPartitioner>(2, NodeId(1));
    part->assign(dir, NodeId(0));
    cluster->bootstrap_directory(dir, NodeId(0));
    planner = std::make_unique<NamespacePlanner>(*part, OpCosts{});
  }
};

TEST(PresumedAbort, CommitCostsMatchPrN) {
  const TimelineResult pra = run_single_create(ProtocolKind::kPrA);
  const TimelineResult prn = run_single_create(ProtocolKind::kPrN);
  EXPECT_EQ(pra.sync_writes, prn.sync_writes);
  EXPECT_EQ(pra.async_writes, prn.async_writes);
  EXPECT_EQ(pra.extra_msgs, prn.extra_msgs);
  EXPECT_EQ(pra.client_latency, prn.client_latency);
}

TEST(PresumedAbort, AbortWritesNoRecordsAndNeedsNoAcks) {
  PraFixture f;
  // Force a worker veto: the inode id already exists there.
  f.cluster->store(NodeId(1)).bootstrap_inode(Inode{ObjectId(99), false, 1, 0});
  f.cluster->store(NodeId(0)).bootstrap_dentry(f.dir, "seed", ObjectId(99));
  TxnOutcome outcome = TxnOutcome::kPending;
  f.cluster->submit(f.planner->plan_create(f.dir, "x", ObjectId(99), false),
                    [&](TxnId, TxnOutcome o) { outcome = o; });
  f.sim.run();
  ASSERT_TRUE(f.sim.idle());

  EXPECT_EQ(outcome, TxnOutcome::kAborted);
  // No ABORTED records anywhere and no ACK traffic: the decisive PrA saving.
  EXPECT_EQ(f.stats.get("wal.lazy.count"), 0)
      << "PrA must not write abort records";
  EXPECT_EQ(f.stats.get("acp.msg.total"), 2)
      << "UPDATE_REQ + NOT_UPDATED and nothing else";
  // Both logs are empty again (coordinator truncated STARTED on abort).
  EXPECT_TRUE(
      f.cluster->storage().partition(NodeId(0)).records().empty());
  EXPECT_TRUE(
      f.cluster->storage().partition(NodeId(1)).records().empty());
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
}

TEST(PresumedAbort, AbsenceOfInformationMeansAbort) {
  PraFixture f;
  TxnOutcome outcome = TxnOutcome::kPending;
  f.cluster->submit(f.planner->plan_create(f.dir, "y", f.ids.next(), false),
                    [&](TxnId, TxnOutcome o) { outcome = o; });
  // Crash the coordinator after sending PREPARE (20.3 ms) but before its
  // own prepare is durable (40.3 ms): the log holds only STARTED while the
  // worker prepares into the void.  Recovery presumes abort with no abort
  // record ever written.
  f.cluster->schedule_crash(NodeId(0), Duration::millis(30),
                            /*reboot_after=*/Duration::millis(400));
  f.sim.run_until(SimTime::zero() + Duration::seconds(30));
  ASSERT_TRUE(f.sim.idle());

  // The coordinator rebooted with STARTED in its log -> presumed abort,
  // truncated.  The worker's DECISION_REQ got "aborted" either from the
  // rebuilt state or from pure absence.
  EXPECT_FALSE(
      f.cluster->store(NodeId(0)).stable_lookup(f.dir, "y").has_value());
  EXPECT_EQ(f.cluster->store(NodeId(1)).stable_inode_count(), 0u);
  EXPECT_TRUE(f.cluster->check_invariants({f.dir}).empty());
  EXPECT_EQ(f.cluster->engine(NodeId(1)).active_participations(), 0u)
      << "the prepared worker resolved via presumption";
}

TEST(PresumedAbort, MultiWorkerAbortIsCheaperThanPrN) {
  // A three-participant RENAME where one worker vetoes: the innocent
  // bystander worker still needs the ABORT, but under PrA it sends no ACK
  // and the coordinator logs nothing — strictly fewer messages than PrN.
  auto run_abort = [](ProtocolKind proto) {
    Simulator sim;
    StatsRegistry stats;
    TraceRecorder trace(false);
    ClusterConfig cc;
    cc.n_nodes = 3;
    cc.protocol = proto;
    Cluster cluster(sim, cc, stats, trace);
    IdAllocator ids;
    PinnedPartitioner part(3, NodeId(2));
    const ObjectId src_dir = ids.next();   // mds0 (coordinator)
    const ObjectId dst_dir = ids.next();   // mds1 (will veto)
    const ObjectId moved = ids.next();     // mds2 (innocent SetAttr)
    part.assign(src_dir, NodeId(0));
    part.assign(dst_dir, NodeId(1));
    part.assign(moved, NodeId(2));
    cluster.bootstrap_directory(src_dir, NodeId(0));
    cluster.bootstrap_directory(dst_dir, NodeId(1));
    cluster.store(NodeId(0)).bootstrap_dentry(src_dir, "a", moved);
    cluster.store(NodeId(2)).bootstrap_inode(Inode{moved, false, 1, 0});
    // The destination name already exists -> AddDentry vetoes at mds1.
    const ObjectId squatter = ids.next();
    part.assign(squatter, NodeId(2));
    cluster.store(NodeId(1)).bootstrap_dentry(dst_dir, "b", squatter);
    cluster.store(NodeId(2)).bootstrap_inode(Inode{squatter, false, 1, 0});

    NamespacePlanner planner(part, OpCosts{});
    TxnOutcome outcome = TxnOutcome::kPending;
    cluster.submit(
        planner.plan_rename(src_dir, "a", dst_dir, "b", moved, std::nullopt),
        [&](TxnId, TxnOutcome o) { outcome = o; });
    sim.run();
    EXPECT_EQ(outcome, TxnOutcome::kAborted) << protocol_name(proto);
    EXPECT_TRUE(
        cluster.check_invariants({src_dir, dst_dir}).empty());
    return stats.get("acp.msg.total");
  };
  const std::int64_t pra_msgs = run_abort(ProtocolKind::kPrA);
  const std::int64_t prn_msgs = run_abort(ProtocolKind::kPrN);
  EXPECT_LT(pra_msgs, prn_msgs)
      << "PrA abort must save the ACK round (PrA=" << pra_msgs
      << " PrN=" << prn_msgs << ")";
}

}  // namespace
}  // namespace opc
