// Atomic commitment protocol selection.
#pragma once

#include <cstddef>
#include <string_view>

namespace opc {

/// The four protocols the paper evaluates (§II, §III), plus one extension:
///   kPrN   — Two Phase Commit, "Presume Nothing" baseline.
///   kPrC   — Presume Commit optimization (Lampson/Lomet).
///   kEP    — Early Prepare optimization (Stamos/Cristian).
///   kOnePC — the paper's One Phase Commit over shared logs.
///   kPrA   — Presumed Abort (extension; the other Lampson/Lomet
///            optimization): commits cost the same as PrN, but aborts need
///            no log record and no acknowledgement round — absence of
///            information *means* abort.
enum class ProtocolKind : std::uint8_t { kPrN, kPrC, kEP, kOnePC, kPrA };

[[nodiscard]] constexpr std::string_view protocol_name(ProtocolKind p) {
  switch (p) {
    case ProtocolKind::kPrN: return "PrN";
    case ProtocolKind::kPrC: return "PrC";
    case ProtocolKind::kEP: return "EP";
    case ProtocolKind::kOnePC: return "1PC";
    case ProtocolKind::kPrA: return "PrA";
  }
  return "?";
}

/// The paper's four (benches reproducing paper artifacts iterate these).
inline constexpr ProtocolKind kAllProtocols[] = {
    ProtocolKind::kPrN, ProtocolKind::kPrC, ProtocolKind::kEP,
    ProtocolKind::kOnePC};

/// Paper's four plus extensions (test sweeps iterate these).
inline constexpr ProtocolKind kAllProtocolsExt[] = {
    ProtocolKind::kPrN, ProtocolKind::kPrC, ProtocolKind::kEP,
    ProtocolKind::kOnePC, ProtocolKind::kPrA};

/// Hybrid protocol selection (DESIGN.md §14): 1PC is sound only for
/// transactions with exactly one worker.  Each 1PC worker's forced
/// update+COMMITTED block is an independent unilateral commit point; with
/// two or more workers one can commit while another crashes pre-commit, and
/// no single fence-and-read resolves the split — the shared-log rule holds
/// only when every worker's commit point lands in one log partition, and in
/// this deployment each node owns its own partition.  Anything wider — an
/// N-way CREATE or a RENAME touching up to four MDSs — degrades to
/// presumed-abort 2PC (PrA): absence of log state means abort, so the
/// degraded path needs no abort record and no abort-ACK round, the cheapest
/// member of the 2PC family on the paths a wide transaction adds.
[[nodiscard]] constexpr ProtocolKind choose_protocol(ProtocolKind preferred,
                                                     std::size_t participants) {
  if (participants <= 2) return preferred;
  return preferred == ProtocolKind::kOnePC ? ProtocolKind::kPrA : preferred;
}

}  // namespace opc
