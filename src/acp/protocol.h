// Atomic commitment protocol selection.
#pragma once

#include <cstddef>
#include <string_view>

namespace opc {

/// The four protocols the paper evaluates (§II, §III), plus one extension:
///   kPrN   — Two Phase Commit, "Presume Nothing" baseline.
///   kPrC   — Presume Commit optimization (Lampson/Lomet).
///   kEP    — Early Prepare optimization (Stamos/Cristian).
///   kOnePC — the paper's One Phase Commit over shared logs.
///   kPrA   — Presumed Abort (extension; the other Lampson/Lomet
///            optimization): commits cost the same as PrN, but aborts need
///            no log record and no acknowledgement round — absence of
///            information *means* abort.
enum class ProtocolKind : std::uint8_t { kPrN, kPrC, kEP, kOnePC, kPrA };

[[nodiscard]] constexpr std::string_view protocol_name(ProtocolKind p) {
  switch (p) {
    case ProtocolKind::kPrN: return "PrN";
    case ProtocolKind::kPrC: return "PrC";
    case ProtocolKind::kEP: return "EP";
    case ProtocolKind::kOnePC: return "1PC";
    case ProtocolKind::kPrA: return "PrA";
  }
  return "?";
}

/// The paper's four (benches reproducing paper artifacts iterate these).
inline constexpr ProtocolKind kAllProtocols[] = {
    ProtocolKind::kPrN, ProtocolKind::kPrC, ProtocolKind::kEP,
    ProtocolKind::kOnePC};

/// Paper's four plus extensions (test sweeps iterate these).
inline constexpr ProtocolKind kAllProtocolsExt[] = {
    ProtocolKind::kPrN, ProtocolKind::kPrC, ProtocolKind::kEP,
    ProtocolKind::kOnePC, ProtocolKind::kPrA};

/// Hybrid protocol selection (DESIGN.md): 1PC is defined for transactions
/// with exactly one worker (CREATE/DELETE).  Anything wider — RENAME can
/// touch four MDSs — falls back to PrN, the only member of the family whose
/// recovery narrative the paper spells out for the general case.
[[nodiscard]] constexpr ProtocolKind choose_protocol(ProtocolKind preferred,
                                                     std::size_t participants) {
  if (participants <= 2) return preferred;
  return preferred == ProtocolKind::kOnePC ? ProtocolKind::kPrN : preferred;
}

}  // namespace opc
