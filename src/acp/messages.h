// Protocol messages exchanged between metadata servers.
//
// Message vocabulary across the four protocols (a given protocol uses a
// subset):
//
//   kUpdateReq   coordinator -> worker   carry the worker's operations;
//                                        flags select EP piggybacked
//                                        prepare / 1PC piggybacked commit.
//   kUpdated     worker -> coordinator   updates done; `prepared`/`committed`
//                                        report piggybacked outcomes.
//   kNotUpdated  worker -> coordinator   worker vetoes (validation or lock
//                                        timeout); coordinator aborts.
//   kPrepareReq  coordinator -> worker   2PC voting phase.
//   kPrepared / kNotPrepared              worker's vote.
//   kCommit / kAbort                      the decision.
//   kAck         worker -> coordinator   decision processed.
//   kDecisionReq worker -> coordinator   recovery: what happened to txn?
//   kDecision    coordinator -> worker   recovery: the outcome.
//   kAckReq      worker -> coordinator   1PC recovery: please resend ACK.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "acp/protocol.h"
#include "net/types.h"
#include "txn/types.h"

namespace opc {

enum class MsgType : std::uint8_t {
  kUpdateReq,
  kUpdated,
  kNotUpdated,
  kPrepareReq,
  kPrepared,
  kNotPrepared,
  kCommit,
  kAbort,
  kAck,
  kDecisionReq,
  kDecision,
  kAckReq,
};

[[nodiscard]] std::string_view msg_type_name(MsgType t);

struct Msg {
  MsgType type = MsgType::kUpdateReq;
  TxnId txn = 0;
  NodeId from;
  ProtocolKind proto = ProtocolKind::kPrN;
  std::vector<Operation> ops;     // kUpdateReq / kPrepareReq(resend) payload
  bool piggyback_prepare = false;  // kUpdateReq: EP semantics
  bool piggyback_commit = false;   // kUpdateReq: 1PC semantics
  bool prepared = false;           // kUpdated: EP worker already prepared
  bool committed = false;          // kUpdated: 1PC worker already committed
  bool nudge = false;              // retry copy, not the first transmission
  TxnOutcome outcome = TxnOutcome::kPending;  // kDecision
};

/// Approximate wire size for the network cost model.
[[nodiscard]] std::uint64_t msg_wire_size(const Msg& m);

/// Serializes a full transaction (participant list + ops) for REDO / STARTED
/// record payloads; decode is the exact inverse.
void encode_txn(const Transaction& txn, std::vector<std::uint8_t>& out);
[[nodiscard]] bool decode_txn(const std::vector<std::uint8_t>& buf,
                              Transaction& out);

}  // namespace opc
