#include "acp/engine.h"

#include <algorithm>
#include <utility>

#include "sim/check.h"

namespace opc {

AcpEngine::AcpEngine(Env& env, NodeId self, ProtocolKind proto,
                     AcpConfig cfg, Transport& net, LogWriter& wal,
                     LockManager& locks, MetaStore& store,
                     SharedStorage& storage, StatsRegistry& stats,
                     TraceRecorder& trace, FencingService* fencing,
                     HistoryRecorder* history, obs::PhaseLog* phases)
    : env_(env), self_(self), proto_(proto), cfg_(cfg), net_(net), wal_(wal),
      locks_(locks), store_(store), storage_(storage), stats_(stats),
      trace_(trace), fencing_(fencing), history_(history), phases_(phases),
      c_msg_total_(stats, "acp.msg.total"),
      c_msgs_extra_(stats, "acp.msgs.extra"),
      c_committed_(stats, "acp.committed"),
      c_aborted_(stats, "acp.aborted"),
      c_submitted_{Counter(stats, "acp.submitted.CREATE"),
                   Counter(stats, "acp.submitted.DELETE"),
                   Counter(stats, "acp.submitted.RENAME"),
                   Counter(stats, "acp.submitted.CUSTOM")} {}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

TxnId AcpEngine::make_txn_id() {
  // Globally unique and deterministic: node id in the high bits, a local
  // sequence number below.  Never zero.
  return (static_cast<TxnId>(self_.value() + 1) << 40) | ++next_local_txn_;
}

AcpEngine::CoordTxn* AcpEngine::coord_of(TxnId id) {
  CoordTxn* const* p = coord_.find(id);
  return p == nullptr ? nullptr : *p;
}

AcpEngine::WorkTxn* AcpEngine::work_of(TxnId id) {
  WorkTxn* const* p = work_.find(id);
  return p == nullptr ? nullptr : *p;
}

AcpEngine::CoordTxn& AcpEngine::new_coord(TxnId id) {
  CoordTxn* ct = coord_pool_.acquire();
  ct->reset();
  auto [slot, inserted] = coord_.try_emplace(id, ct);
  SIM_CHECK(inserted);
  return *ct;
}

AcpEngine::WorkTxn& AcpEngine::new_work(TxnId id) {
  WorkTxn* wt = work_pool_.acquire();
  wt->reset();
  auto [slot, inserted] = work_.try_emplace(id, wt);
  SIM_CHECK(inserted);
  return *wt;
}

void AcpEngine::destroy_coord(TxnId id) {
  if (CoordTxn** p = coord_.find(id)) {
    CoordTxn* ct = *p;
    coord_.erase(id);
    coord_pool_.release(ct);
  }
}

void AcpEngine::destroy_work(TxnId id) {
  if (WorkTxn** p = work_.find(id)) {
    WorkTxn* wt = *p;
    work_.erase(id);
    work_pool_.release(wt);
  }
}

std::optional<TxnOutcome> AcpEngine::outcome_of(TxnId txn) const {
  const TxnOutcome* p = finished_.find(txn);
  if (p == nullptr) return std::nullopt;
  return *p;
}

LockMode AcpEngine::mode_for(const std::vector<Operation>& ops, ObjectId obj) {
  for (const Operation& op : ops) {
    if (op.target == obj && !op_is_read(op.type)) return LockMode::kExclusive;
  }
  return LockMode::kShared;
}

std::vector<ObjectId> AcpEngine::sorted_objects(
    const std::vector<Operation>& ops) const {
  std::vector<ObjectId> out;
  sorted_objects_into(ops, out);
  return out;
}

void AcpEngine::sorted_objects_into(const std::vector<Operation>& ops,
                                    std::vector<ObjectId>& out) const {
  out.clear();
  for (const Operation& op : ops) {
    if (op.target.valid() &&
        std::find(out.begin(), out.end(), op.target) == out.end()) {
      out.push_back(op.target);
    }
  }
  // Canonical order prevents lock-order deadlocks between transactions that
  // meet on the same node.
  std::sort(out.begin(), out.end());
}

void AcpEngine::record_accesses(TxnId txn,
                                const std::vector<Operation>& ops) {
  if (history_ == nullptr) return;
  // A recovery re-drive of a transaction whose effects already reached
  // stable state re-runs the protocol, but its store effects are no-ops
  // (replay_committed is idempotent).  Recording fresh accesses for such a
  // re-drive would plant artificial late edges in the conflict order: the
  // txn can become stable_applied during recovery *before* its own
  // COMMITTED record is durable, so a second crash re-drives it yet again
  // long after unrelated transactions touched the same objects.
  if (store_.stable_applied(txn)) return;
  for (const Operation& op : ops) {
    if (op.target.valid()) {
      history_->record_access(txn, op.target, !op_is_read(op.type),
                              env_.now(), self_.value());
    }
  }
}

LogRecord AcpEngine::state_record(RecordType t, TxnId txn) const {
  LogRecord rec;
  rec.type = t;
  rec.txn = txn;
  rec.writer = self_;
  rec.modeled_bytes = cfg_.state_record_bytes;
  return rec;
}

LogRecord AcpEngine::ended_record(TxnId txn, TxnOutcome outcome) const {
  LogRecord rec = state_record(RecordType::kEnded, txn);
  rec.payload.push_back(outcome == TxnOutcome::kCommitted ? 1 : 0);
  return rec;
}

LogRecord AcpEngine::update_record(TxnId txn,
                                   const std::vector<Operation>& ops) const {
  LogRecord rec;
  rec.type = RecordType::kUpdate;
  rec.txn = txn;
  rec.writer = self_;
  encode_ops(ops, rec.payload);
  rec.modeled_bytes = 0;
  for (const Operation& op : ops) rec.modeled_bytes += op.log_bytes;
  return rec;
}

void AcpEngine::send(NodeId to, Msg m, bool extra, bool critical) {
  m.from = self_;
  c_msg_total_.add();
  if (extra) {
    c_msgs_extra_.add();
    if (critical) stats_.add("acp.msgs.extra_critical");
  }
  Envelope env;
  env.from = self_;
  env.to = to;
  env.kind = msg_type_name(m.type);  // ≤15 chars: SSO, no allocation
  env.txn = m.txn;
  env.size_bytes = msg_wire_size(m);
  env.payload.emplace<Msg>(std::move(m));
  net_.send(std::move(env));
}

// ---------------------------------------------------------------------------
// Submission / coordinator side
// ---------------------------------------------------------------------------

TxnId AcpEngine::submit(Transaction txn, ClientCallback cb) {
  SIM_CHECK_MSG(!txn.participants.empty(), "transaction without participants");
  SIM_CHECK_MSG(txn.participants.front().node == self_,
                "submit target must be the coordinator");
  txn.id = make_txn_id();
  const TxnId id = txn.id;

  if (crashed_) {
    // The node is down; the client sees a connection failure after a
    // reconnect attempt (a realistic ~1 ms, which also stops closed loops
    // from spinning at event-queue speed against a dead server).
    stats_.add("acp.submit.to_crashed");
    if (cb) {
      env_.schedule_after(Duration::millis(1),
                          [id, cb = std::move(cb)] { cb(id, TxnOutcome::kAborted); });
    }
    return id;
  }
  if (recovering_) {
    // Paper §III-D: after a reboot the coordinator completes outstanding
    // transactions in arrival order before serving new requests.
    queued_submissions_.emplace_back(std::move(txn), std::move(cb));
    stats_.add("acp.submit.queued_behind_recovery");
    return id;
  }

  stats_.add("acp.submitted");
  c_submitted_[static_cast<std::size_t>(txn.kind)].add();

  CoordTxn& ct = new_coord(id);
  ct.txn = std::move(txn);
  ct.proto = choose_protocol(proto_, ct.txn.n_participants());
  if (ct.txn.n_participants() > 2) {
    stats_.add("acp.txn.wide");
    if (ct.proto != proto_) stats_.add("acp.onepc.degraded");
  }
  ct.cb = std::move(cb);
  ct.submitted = env_.now();
  start_coordination(ct);
  return id;
}

void AcpEngine::start_coordination(CoordTxn& ct) {
  const TxnId id = ct.txn.id;
  if (trace_.active()) {
    trace_.record(env_.now(), TraceKind::kTxnBegin, self_.str(),
                  std::string(namespace_op_name(ct.txn.kind)) + " via " +
                      std::string(protocol_name(ct.proto)) +
                      (ct.txn.is_local() ? " (local)" : ""),
                  id);
  }
  phase_mark(id, obs::PhaseId::kLock, true);
  sorted_objects_into(ct.txn.participants.front().ops, ct.lock_objs);
  ct.phase = CoordPhase::kLocking;
  acquire_next_lock(id);
}

void AcpEngine::acquire_next_lock(TxnId id) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr) return;
  if (ct->locks_granted == ct->lock_objs.size()) {
    phase_mark(id, obs::PhaseId::kLock, false);
    record_accesses(id, ct->txn.participants.front().ops);
    if (ct->txn.is_local()) {
      run_local_fastpath(id);
    } else if (ct->recovered && ct->own_prepare_durable) {
      // Reboot recovery from PREPARED: updates and vote are durable; only
      // the vote collection needs re-driving.
      enter_voting(id);
    } else if (ct->recovered) {
      // STARTED (and the 1PC redo record) is already durable from the
      // pre-crash run; go straight to re-execution.
      ct->started_durable = true;
      run_local_updates(id);
    } else {
      force_started(id);
    }
    return;
  }
  const ObjectId obj = ct->lock_objs[ct->locks_granted];
  const LockMode mode = mode_for(ct->txn.participants.front().ops, obj);
  const std::uint64_t epoch = crash_epoch_;
  locks_.acquire(
      id, obj.value(), mode,
      [this, id, epoch] {
        if (epoch != crash_epoch_) return;
        CoordTxn* c = coord_of(id);
        if (c == nullptr) return;
        ++c->locks_granted;
        acquire_next_lock(id);
      },
      cfg_.lock_timeout,
      [this, id, epoch] {
        if (epoch != crash_epoch_) return;
        CoordTxn* c = coord_of(id);
        if (c == nullptr) return;
        // Nothing is logged yet; drop the transaction quietly.
        phase_mark(id, obs::PhaseId::kLock, false);
        stats_.add("acp.abort.lock_timeout");
        locks_.release_all(id);
        if (history_ != nullptr) history_->record_abort(id);
        reply_client(*c, TxnOutcome::kAborted);
        if (trace_.active()) {
          trace_.record(env_.now(), TraceKind::kTxnAbort, self_.str(),
                        "lock timeout before start", id);
        }
        finished_[id] = TxnOutcome::kAborted;
        destroy_coord(id);
      });
}

void AcpEngine::run_local_fastpath(TxnId id) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr) return;
  stats_.add("acp.local");
  for (const Operation& op : ct->txn.participants.front().ops) {
    const StoreStatus st = store_.apply(id, op);
    if (st != StoreStatus::kOk) {
      stats_.add("acp.abort.local_validation");
      store_.abort_txn(id);
      locks_.release_all(id);
      if (history_ != nullptr) history_->record_abort(id);
      reply_client(*ct, TxnOutcome::kAborted);
      finished_[id] = TxnOutcome::kAborted;
      destroy_coord(id);
      return;
    }
  }
  Duration compute = Duration::zero();
  bool read_only = true;
  for (const Operation& op : ct->txn.participants.front().ops) {
    compute += op.compute;
    read_only = read_only && op_is_read(op.type);
  }
  const std::uint64_t epoch = crash_epoch_;
  if (read_only) {
    // Read fast path: shared locks were enough, nothing to log.
    env_.schedule_after(compute, [this, id, epoch] {
      if (epoch != crash_epoch_) return;
      CoordTxn* c = coord_of(id);
      if (c == nullptr) return;
      stats_.add("acp.local.read_only");
      locks_.release_all(id);
      reply_client(*c, TxnOutcome::kCommitted);
      finish_coordination(id, TxnOutcome::kCommitted);
    });
    return;
  }
  env_.schedule_after(compute, [this, id, epoch] {
    if (epoch != crash_epoch_) return;
    CoordTxn* c = coord_of(id);
    if (c == nullptr) return;
    // Single node: one forced write carrying updates + COMMITTED is the
    // whole commit protocol.
    std::vector<LogRecord> recs = wal_.checkout_recs();
    recs.push_back(update_record(id, c->txn.participants.front().ops));
    recs.push_back(state_record(RecordType::kCommitted, id));
    wal_.force(std::move(recs), WriteTag{"local-commit", true},
               [this, id, epoch] {
                 if (epoch != crash_epoch_) return;
                 CoordTxn* c2 = coord_of(id);
                 if (c2 == nullptr) return;
                 store_.commit_txn(id);
                 locks_.release_all(id);
                 if (history_ != nullptr) history_->record_commit(id);
                 reply_client(*c2, TxnOutcome::kCommitted);
                 wal_.partition().truncate_txn(id);
                 finish_coordination(id, TxnOutcome::kCommitted);
               });
  });
}

void AcpEngine::force_started(TxnId id) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr) return;
  ct->phase = CoordPhase::kForcingStart;
  std::vector<LogRecord> recs = wal_.checkout_recs();
  LogRecord started = state_record(RecordType::kStarted, id);
  encode_txn(ct->txn, started.payload);
  recs.push_back(std::move(started));
  if (ct->proto == ProtocolKind::kOnePC) {
    // Paper §III-B: the 1PC coordinator also logs a redo record for the
    // namespace operation so it can re-execute after a crash.
    LogRecord redo;
    redo.type = RecordType::kRedo;
    redo.txn = id;
    redo.writer = self_;
    encode_txn(ct->txn, redo.payload);
    redo.modeled_bytes = cfg_.redo_record_bytes + redo.payload.size();
    recs.push_back(std::move(redo));
  }
  const std::uint64_t epoch = crash_epoch_;
  phase_mark(id, obs::PhaseId::kStartForce, true);
  wal_.force(std::move(recs), WriteTag{"started", true}, [this, id, epoch] {
    if (epoch != crash_epoch_) return;
    CoordTxn* c = coord_of(id);
    if (c == nullptr) return;
    c->started_durable = true;
    phase_mark(id, obs::PhaseId::kStartForce, false);
    run_local_updates(id);
  });
}

void AcpEngine::run_local_updates(TxnId id) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr) return;
  ct->phase = CoordPhase::kUpdating;
  phase_mark(id, obs::PhaseId::kLocalUpdate, true);
  // A re-driven 1PC transaction must not take the unilateral abort path:
  // the worker may already have committed.  Its local updates are not
  // cached — they replay from the redo record at commit time instead.
  const bool replay_later =
      ct->recovered && ct->proto == ProtocolKind::kOnePC;
  if (!replay_later) {
    for (const Operation& op : ct->txn.participants.front().ops) {
      const StoreStatus st = store_.apply(id, op);
      if (st != StoreStatus::kOk) {
        stats_.add("acp.abort.local_validation");
        abort_coordination(id, std::string("local ") + store_status_name(st));
        return;
      }
    }
  }
  Duration compute = Duration::zero();
  for (const Operation& op : ct->txn.participants.front().ops) {
    compute += op.compute;
  }
  const std::uint64_t epoch = crash_epoch_;
  env_.schedule_after(compute, [this, id, epoch] {
    if (epoch != crash_epoch_) return;
    phase_mark(id, obs::PhaseId::kLocalUpdate, false);
    send_update_reqs(id);
  });
}

void AcpEngine::send_update_reqs(TxnId id) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr || ct->aborting) return;
  SIM_CHECK(ct->proto != ProtocolKind::kOnePC ||
            ct->txn.n_participants() == 2);
  // Fast-fail against suspected-dead workers: nothing has been sent, so no
  // participant holds any state — a unilateral abort is always safe and
  // avoids burning a full response timeout (or a STONITH round) per
  // transaction while the worker is down.
  for (std::size_t i = 1; i < ct->txn.participants.size(); ++i) {
    if (!suspected_.contains(ct->txn.participants[i].node)) continue;
    if (ct->recovered && ct->proto == ProtocolKind::kOnePC) {
      // The pre-crash run may have reached the worker; only its log can
      // decide the outcome.
      start_fencing_recovery(id);
    } else {
      stats_.add("acp.abort.suspected_worker");
      abort_coordination(id, "worker suspected down before send");
    }
    return;
  }
  ct->reqs_sent = true;
  phase_mark(id, obs::PhaseId::kUpdateRound, true);
  for (std::size_t i = 1; i < ct->txn.participants.size(); ++i) {
    const Participant& p = ct->txn.participants[i];
    Msg m;
    m.type = MsgType::kUpdateReq;
    m.txn = id;
    m.proto = ct->proto;
    m.ops = p.ops;
    m.piggyback_prepare = ct->proto == ProtocolKind::kEP;
    m.piggyback_commit = ct->proto == ProtocolKind::kOnePC;
    send(p.node, std::move(m), /*extra=*/false, /*critical=*/false);
  }
  if (ct->proto == ProtocolKind::kEP) {
    // Early Prepare: the coordinator prepares in parallel with the workers'
    // combined update+prepare round.
    std::vector<LogRecord> recs = wal_.checkout_recs();
    recs.push_back(update_record(id, ct->txn.participants.front().ops));
    recs.push_back(state_record(RecordType::kPrepared, id));
    const std::uint64_t epoch = crash_epoch_;
    wal_.force(std::move(recs), WriteTag{"prepare", /*critical=*/false},
               [this, id, epoch] {
                 if (epoch != crash_epoch_) return;
                 CoordTxn* c = coord_of(id);
                 if (c == nullptr) return;
                 c->own_prepare_durable = true;
                 maybe_commit(id);
               });
  }
  arm_response_timer(id);
}

void AcpEngine::arm_response_timer(TxnId id) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr) return;
  env_.cancel(ct->response_timer);
  ct->response_timer = TimerHandle{};
  if (cfg_.response_timeout <= Duration::zero()) return;
  const std::uint64_t epoch = crash_epoch_;
  auto timeout_cb = [this, id, epoch] {
    if (epoch != crash_epoch_) return;
    on_response_timeout(id);
  };
  OPC_ASSERT_INLINE_CB(timeout_cb);
  ct->response_timer =
      env_.schedule_after(cfg_.response_timeout, std::move(timeout_cb));
}

void AcpEngine::on_response_timeout(TxnId id) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr) return;
  stats_.add("acp.response_timeouts");
  switch (ct->phase) {
    case CoordPhase::kUpdating:
      if (ct->proto == ProtocolKind::kOnePC) {
        start_fencing_recovery(id);
      } else {
        stats_.add("acp.abort.update_timeout");
        abort_coordination(id, "worker update timeout");
      }
      break;
    case CoordPhase::kVoting:
      stats_.add("acp.abort.prepare_timeout");
      abort_coordination(id, "worker prepare timeout");
      break;
    case CoordPhase::kWaitingAcks:
      // Keep pushing the decision until every worker confirms.
      send_decision_round(*ct, ct->aborting ? MsgType::kAbort
                                            : MsgType::kCommit);
      arm_response_timer(id);
      break;
    default:
      break;
  }
}

void AcpEngine::send_decision_round(CoordTxn& ct, MsgType type) {
  for (std::size_t i = 1; i < ct.txn.participants.size(); ++i) {
    const NodeId node = ct.txn.participants[i].node;
    if (ct.acked.contains(node.value())) continue;
    Msg m;
    m.type = type;
    m.txn = ct.txn.id;
    m.proto = ct.proto;
    send(node, std::move(m), /*extra=*/true, /*critical=*/false);
  }
}

void AcpEngine::on_updated(TxnId id, const Msg& m) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr) {
    // A nudged UPDATED for a transaction this coordinator no longer tracks
    // (PrA notifies aborts once and forgets; duplicates can outlive the
    // ACK round elsewhere): answer with the recorded or presumed decision
    // so the worker can release its locks.  First-transmission copies that
    // merely race the decision are dropped — the decision round in flight
    // already resolves that worker, and answering would tax every abort
    // with a redundant message.
    if (!m.nudge) return;
    const TxnOutcome* fin = finished_.find(id);
    const TxnOutcome out =
        fin != nullptr
            ? *fin
            : ((m.proto == ProtocolKind::kPrC || m.proto == ProtocolKind::kEP)
                   ? TxnOutcome::kCommitted
                   : TxnOutcome::kAborted);
    Msg r;
    r.type = out == TxnOutcome::kCommitted ? MsgType::kCommit
                                           : MsgType::kAbort;
    r.txn = id;
    r.proto = m.proto;
    send(m.from, std::move(r), /*extra=*/true, /*critical=*/false);
    return;
  }
  if (ct->aborting) return;
  if (ct->phase != CoordPhase::kUpdating) return;  // stale duplicate
  ct->updated.insert_unique(m.from.value());
  if (m.prepared) ct->prepared.insert_unique(m.from.value());
  const std::size_t workers = ct->txn.participants.size() - 1;
  if (ct->updated.size() < workers) return;
  env_.cancel(ct->response_timer);
  ct->response_timer = TimerHandle{};
  phase_mark(id, obs::PhaseId::kUpdateRound, false);

  switch (ct->proto) {
    case ProtocolKind::kPrN:
    case ProtocolKind::kPrA:
    case ProtocolKind::kPrC:
      enter_voting(id);
      break;
    case ProtocolKind::kEP:
      maybe_commit(id);
      break;
    case ProtocolKind::kOnePC: {
      SIM_CHECK_MSG(m.committed, "1PC UPDATED must carry the worker commit");
      // Paper §III-B/D: the worker has committed, so this transaction can
      // no longer abort.  Reply to the client and release the locks NOW;
      // the coordinator's own commit proceeds off the critical path.
      ct->mem_committed = true;
      if (ct->recovered) {
        store_.replay_committed(id, ct->txn.participants.front().ops);
      } else {
        store_.commit_mem(id);
      }
      locks_.release_all(id);
      if (history_ != nullptr) history_->record_commit(id);
      reply_client(*ct, TxnOutcome::kCommitted);
      ct->phase = CoordPhase::kForcingCommit;
      phase_mark(id, obs::PhaseId::kCommitForce, true);
      std::vector<LogRecord> recs = wal_.checkout_recs();
      recs.push_back(update_record(id, ct->txn.participants.front().ops));
      recs.push_back(state_record(RecordType::kCommitted, id));
      const std::uint64_t epoch = crash_epoch_;
      wal_.force(std::move(recs), WriteTag{"commit", /*critical=*/false},
                 [this, id, epoch] {
                   if (epoch != crash_epoch_) return;
                   on_commit_durable(id);
                 });
      break;
    }
  }
}

void AcpEngine::enter_voting(TxnId id) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr) return;
  ct->phase = CoordPhase::kVoting;
  phase_mark(id, obs::PhaseId::kVoteRound, true);
  for (std::size_t i = 1; i < ct->txn.participants.size(); ++i) {
    Msg m;
    m.type = MsgType::kPrepareReq;
    m.txn = id;
    m.proto = ct->proto;
    send(ct->txn.participants[i].node, std::move(m), /*extra=*/true,
         /*critical=*/true);
  }
  if (!ct->own_prepare_durable) {
    std::vector<LogRecord> recs = wal_.checkout_recs();
    recs.push_back(update_record(id, ct->txn.participants.front().ops));
    recs.push_back(state_record(RecordType::kPrepared, id));
    const std::uint64_t epoch = crash_epoch_;
    // Parallel with the workers' prepares, hence off the serial chain.
    wal_.force(std::move(recs), WriteTag{"prepare", /*critical=*/false},
               [this, id, epoch] {
                 if (epoch != crash_epoch_) return;
                 CoordTxn* c = coord_of(id);
                 if (c == nullptr) return;
                 c->own_prepare_durable = true;
                 maybe_commit(id);
               });
  }
  arm_response_timer(id);
}

void AcpEngine::maybe_commit(TxnId id) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr || ct->aborting) return;
  SIM_CHECK(ct->proto != ProtocolKind::kOnePC);
  const std::size_t workers = ct->txn.participants.size() - 1;
  if (!ct->own_prepare_durable || ct->prepared.size() < workers) return;
  if (ct->phase == CoordPhase::kForcingCommit ||
      ct->phase == CoordPhase::kWaitingAcks ||
      ct->phase == CoordPhase::kDone) {
    return;  // already past the decision
  }
  ct->phase = CoordPhase::kForcingCommit;
  env_.cancel(ct->response_timer);
  ct->response_timer = TimerHandle{};
  // EP never entered the vote round; the assembler drops unmatched leaves.
  phase_mark(id, obs::PhaseId::kVoteRound, false);
  phase_mark(id, obs::PhaseId::kCommitForce, true);
  std::vector<LogRecord> recs = wal_.checkout_recs();
  recs.push_back(state_record(RecordType::kCommitted, id));
  const std::uint64_t epoch = crash_epoch_;
  wal_.force(std::move(recs), WriteTag{"commit", /*critical=*/true},
             [this, id, epoch] {
               if (epoch != crash_epoch_) return;
               on_commit_durable(id);
             });
}

void AcpEngine::on_commit_durable(TxnId id) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr) return;
  phase_mark(id, obs::PhaseId::kCommitForce, false);
  switch (ct->proto) {
    case ProtocolKind::kPrN:
    case ProtocolKind::kPrA: {
      // Commit locally, release, then drive the decision to the workers;
      // the client reply waits for their ACKs.  (PrA commits exactly like
      // PrN — its savings are all on the abort path.)
      if (ct->recovered) {
        store_.replay_committed(id, ct->txn.participants.front().ops);
      } else {
        store_.commit_txn(id);
      }
      locks_.release_all(id);
      if (history_ != nullptr) history_->record_commit(id);
      ct->phase = CoordPhase::kWaitingAcks;
      phase_mark(id, obs::PhaseId::kAckRound, true);
      for (std::size_t i = 1; i < ct->txn.participants.size(); ++i) {
        Msg m;
        m.type = MsgType::kCommit;
        m.txn = id;
        m.proto = ct->proto;
        send(ct->txn.participants[i].node, std::move(m), /*extra=*/true,
             /*critical=*/true);
      }
      arm_response_timer(id);
      break;
    }
    case ProtocolKind::kPrC:
    case ProtocolKind::kEP: {
      if (ct->recovered) {
        store_.replay_committed(id, ct->txn.participants.front().ops);
      } else {
        store_.commit_txn(id);
      }
      locks_.release_all(id);
      if (history_ != nullptr) history_->record_commit(id);
      // Presume commit: reply to the client before the workers commit, send
      // the decision without waiting for acknowledgements, and finalize
      // (checkpoint) the log immediately — a later DECISION_REQ that finds
      // no log entry presumes commit.
      reply_client(*ct, TxnOutcome::kCommitted);
      for (std::size_t i = 1; i < ct->txn.participants.size(); ++i) {
        Msg m;
        m.type = MsgType::kCommit;
        m.txn = id;
        m.proto = ct->proto;
        send(ct->txn.participants[i].node, std::move(m), /*extra=*/true,
             /*critical=*/false);
      }
      wal_.partition().truncate_txn(id);
      finish_coordination(id, TxnOutcome::kCommitted);
      break;
    }
    case ProtocolKind::kOnePC: {
      // The client was answered when UPDATED arrived; this is the
      // off-critical-path tail: make it stable, then let the worker
      // finalize.
      store_.commit_stable(id);
      Msg m;
      m.type = MsgType::kAck;
      m.txn = id;
      m.proto = ct->proto;
      send(ct->txn.sole_worker(), std::move(m), /*extra=*/true,
           /*critical=*/false);
      wal_.partition().truncate_txn(id);
      finish_coordination(id, TxnOutcome::kCommitted);
      break;
    }
  }
}

void AcpEngine::on_all_acked(TxnId id) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr) return;
  env_.cancel(ct->response_timer);
  ct->response_timer = TimerHandle{};
  phase_mark(id, obs::PhaseId::kAckRound, false);
  const TxnOutcome outcome =
      ct->aborting ? TxnOutcome::kAborted : TxnOutcome::kCommitted;
  // Finalize: the log can be checkpointed and garbage collected.  The ENDED
  // write is asynchronous but still precedes the PrN client reply, which is
  // why Table I counts one async write on PrN's critical path.  The
  // truncate below claims the still-buffered ENDED when it lands
  // (LogPartition::append_durable), so the finalize marker never outlives
  // the checkpoint it announces.
  wal_.lazy(ended_record(id, outcome),
            WriteTag{"ended", outcome == TxnOutcome::kCommitted});
  reply_client(*ct, outcome);
  wal_.partition().truncate_txn(id);
  finish_coordination(id, outcome);
}

void AcpEngine::abort_coordination(TxnId id, const std::string& why) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr || ct->aborting) return;
  SIM_CHECK_MSG(!ct->mem_committed, "abort after commit point");
  ct->aborting = true;
  stats_.add("acp.aborts");
  if (trace_.active()) {
    trace_.record(env_.now(), TraceKind::kTxnAbort, self_.str(), why, id);
  }
  env_.cancel(ct->response_timer);
  ct->response_timer = TimerHandle{};
  store_.abort_txn(id);
  locks_.release_all(id);
  if (history_ != nullptr) history_->record_abort(id);
  reply_client(*ct, TxnOutcome::kAborted);
  if (ct->proto == ProtocolKind::kPrA) {
    // Presumed abort: no abort record, no acknowledgement round.  Workers
    // (and anyone asking later) infer abort from the absence of log state.
    if (ct->reqs_sent) send_decision_round(*ct, MsgType::kAbort);
    wal_.partition().truncate_txn(id);
    finish_coordination(id, TxnOutcome::kAborted);
    return;
  }
  // The abort record needs no force: on a crash the STARTED record alone
  // already drives recovery to the same abort decision.
  wal_.lazy(state_record(RecordType::kAborted, id),
            WriteTag{"abort", /*critical=*/false});
  // Workers only need the decision if they ever heard about the
  // transaction.
  const bool workers_contacted = ct->reqs_sent;
  if (ct->txn.is_local() || !workers_contacted) {
    wal_.partition().truncate_txn(id);
    finish_coordination(id, TxnOutcome::kAborted);
    return;
  }
  ct->phase = CoordPhase::kWaitingAcks;
  phase_mark(id, obs::PhaseId::kAckRound, true);
  if (ct->acked.size() >= ct->txn.participants.size() - 1) {
    // Every worker either vetoed (implicit ack) or already acknowledged.
    on_all_acked(id);
    return;
  }
  send_decision_round(*ct, MsgType::kAbort);
  arm_response_timer(id);
}

void AcpEngine::reply_client(CoordTxn& ct, TxnOutcome outcome) {
  if (ct.replied) return;
  ct.replied = true;
  if (outcome == TxnOutcome::kCommitted) {
    ++committed_;
  } else {
    ++aborted_;
  }
  if (!ct.recovered) latency_.record(env_.now() - ct.submitted);
  if (trace_.active()) {
    trace_.record(env_.now(), TraceKind::kClientReply, self_.str(),
                  outcome == TxnOutcome::kCommitted ? "committed" : "aborted",
                  ct.txn.id);
  }
  if (ct.cb) {
    // Detach from the current call stack so client logic (e.g. a closed
    // loop submitting the next transaction) runs as its own event.
    auto reply_cb = [cb = ct.cb, id = ct.txn.id, outcome] { cb(id, outcome); };
    OPC_ASSERT_INLINE_CB(reply_cb);
    env_.schedule_after(Duration::zero(), std::move(reply_cb));
  }
}

void AcpEngine::finish_coordination(TxnId id, TxnOutcome outcome) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr) return;
  if (trace_.active()) {
    trace_.record(env_.now(),
                  outcome == TxnOutcome::kCommitted ? TraceKind::kTxnCommit
                                                    : TraceKind::kTxnAbort,
                  self_.str(), "finished", id);
  }
  if (outcome == TxnOutcome::kCommitted) {
    c_committed_.add();
  } else {
    c_aborted_.add();
  }
  env_.cancel(ct->response_timer);
  env_.cancel(ct->retry_timer);
  const bool was_recovered = ct->recovered;
  finished_[id] = outcome;
  destroy_coord(id);
  if (was_recovered && recovery_outstanding_ > 0) {
    --recovery_outstanding_;
    maybe_finish_recovery();
  }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

void AcpEngine::worker_handle_update_req(Msg& m) {
  const TxnId id = m.txn;
  if (WorkTxn* wt = work_of(id); wt != nullptr) {
    // Duplicate (coordinator recovery re-sent it).  Resend whatever we last
    // told the coordinator; if still working, stay quiet.
    if (wt->phase == WorkPhase::kPrepared) {
      Msg r;
      r.type = wt->prepare_on_update ? MsgType::kUpdated : MsgType::kPrepared;
      r.txn = id;
      r.proto = wt->proto;
      r.prepared = true;
      send(wt->coord, std::move(r), /*extra=*/!wt->prepare_on_update,
           /*critical=*/false);
    } else if (wt->phase == WorkPhase::kCommitted) {
      Msg r;
      r.type = MsgType::kUpdated;
      r.txn = id;
      r.proto = wt->proto;
      r.prepared = true;
      r.committed = true;
      send(wt->coord, std::move(r), /*extra=*/false, /*critical=*/false);
    }
    return;
  }
  if (const TxnOutcome* fin = finished_.find(id); fin != nullptr) {
    Msg r;
    r.txn = id;
    r.proto = m.proto;
    if (*fin == TxnOutcome::kCommitted) {
      r.type = MsgType::kUpdated;
      r.prepared = true;
      r.committed = true;
      send(m.from, std::move(r), /*extra=*/false, /*critical=*/false);
    } else {
      r.type = MsgType::kNotUpdated;
      send(m.from, std::move(r), /*extra=*/false, /*critical=*/false);
    }
    return;
  }

  stats_.add("acp.worker.update_reqs");
  WorkTxn& wt = new_work(id);
  wt.id = id;
  wt.coord = m.from;
  wt.proto = m.proto;
  wt.ops = std::move(m.ops);
  wt.prepare_on_update = m.piggyback_prepare;
  wt.commit_on_update = m.piggyback_commit;
  wt.phase = WorkPhase::kLocking;
  sorted_objects_into(wt.ops, wt.lock_objs);
  phase_mark(id, obs::PhaseId::kWorkerLock, true);
  worker_acquire_next_lock(id);
}

void AcpEngine::worker_acquire_next_lock(TxnId id) {
  WorkTxn* wt = work_of(id);
  if (wt == nullptr) return;
  if (wt->locks_granted == wt->lock_objs.size()) {
    phase_mark(id, obs::PhaseId::kWorkerLock, false);
    record_accesses(id, wt->ops);
    if (wt->recovered) {
      // Reboot recovery from PREPARED: the objects are re-protected; now
      // chase the decision (paper §II-C).
      wt->phase = WorkPhase::kPrepared;
      Msg m;
      m.type = MsgType::kDecisionReq;
      m.txn = id;
      m.proto = wt->proto;
      send(wt->coord, std::move(m), /*extra=*/true, /*critical=*/false);
      arm_worker_retry(id, MsgType::kDecisionReq);
    } else {
      worker_run_updates(id);
    }
    return;
  }
  const ObjectId obj = wt->lock_objs[wt->locks_granted];
  const LockMode mode = mode_for(wt->ops, obj);
  const std::uint64_t epoch = crash_epoch_;
  locks_.acquire(
      id, obj.value(), mode,
      [this, id, epoch] {
        if (epoch != crash_epoch_) return;
        WorkTxn* w = work_of(id);
        if (w == nullptr) return;
        ++w->locks_granted;
        worker_acquire_next_lock(id);
      },
      cfg_.lock_timeout,
      [this, id, epoch] {
        if (epoch != crash_epoch_) return;
        stats_.add("acp.worker.lock_timeouts");
        worker_veto(id, MsgType::kNotUpdated, "lock timeout");
      });
}

void AcpEngine::worker_run_updates(TxnId id) {
  WorkTxn* wt = work_of(id);
  if (wt == nullptr) return;
  wt->phase = WorkPhase::kUpdating;
  phase_mark(id, obs::PhaseId::kWorkerUpdate, true);
  for (const Operation& op : wt->ops) {
    const StoreStatus st = store_.apply(id, op);
    if (st != StoreStatus::kOk) {
      stats_.add("acp.worker.validation_vetoes");
      worker_veto(id, MsgType::kNotUpdated,
                  std::string("validation ") + store_status_name(st));
      return;
    }
  }
  Duration compute = Duration::zero();
  for (const Operation& op : wt->ops) compute += op.compute;
  const std::uint64_t epoch = crash_epoch_;
  env_.schedule_after(compute, [this, id, epoch] {
    if (epoch != crash_epoch_) return;
    worker_after_updates(id);
  });
}

void AcpEngine::worker_after_updates(TxnId id) {
  WorkTxn* wt = work_of(id);
  if (wt == nullptr) return;
  phase_mark(id, obs::PhaseId::kWorkerUpdate, false);
  if (wt->commit_on_update) {
    // 1PC: commit immediately; the UPDATED reply doubles as the vote and
    // the commit confirmation.
    worker_commit(id, /*forced_record=*/true, /*reply_updated=*/true);
  } else if (wt->prepare_on_update) {
    // EP: prepare now; UPDATED doubles as the PREPARED vote.
    worker_prepare(id, /*also_reply_updated=*/true);
  } else {
    wt->phase = WorkPhase::kUpdated;
    Msg r;
    r.type = MsgType::kUpdated;
    r.txn = id;
    r.proto = wt->proto;
    send(wt->coord, std::move(r), /*extra=*/false, /*critical=*/false);
    // The UPDATED reply — or the decision it provokes — can be lost, and a
    // PrA coordinator announces aborts only once before forgetting.  Keep
    // nudging until the vote round or a decision moves us out of kUpdated;
    // a coordinator with no memory of the transaction answers from its
    // log presumption.
    if (cfg_.response_timeout > Duration::zero()) {
      const std::uint64_t epoch = crash_epoch_;
      env_.cancel(wt->retry_timer);
      wt->retry_timer = env_.schedule_after(
          cfg_.response_timeout, [this, id, epoch] {
            if (epoch != crash_epoch_) return;
            WorkTxn* w = work_of(id);
            if (w == nullptr || w->phase != WorkPhase::kUpdated) return;
            Msg nudge;
            nudge.type = MsgType::kUpdated;
            nudge.txn = id;
            nudge.proto = w->proto;
            nudge.nudge = true;
            send(w->coord, std::move(nudge), /*extra=*/true,
                 /*critical=*/false);
            arm_worker_retry(id, MsgType::kUpdated);
          });
    }
  }
}

void AcpEngine::worker_prepare(TxnId id, bool also_reply_updated) {
  WorkTxn* wt = work_of(id);
  if (wt == nullptr) return;
  std::vector<LogRecord> recs = wal_.checkout_recs();
  recs.push_back(update_record(id, wt->ops));
  LogRecord prepared = state_record(RecordType::kPrepared, id);
  // Remember the coordinator and protocol: a rebooted worker must know whom
  // to ask for the decision and how to finish.
  for (int i = 0; i < 4; ++i) {
    prepared.payload.push_back(
        static_cast<std::uint8_t>(wt->coord.value() >> (8 * i)));
  }
  prepared.payload.push_back(static_cast<std::uint8_t>(wt->proto));
  recs.push_back(std::move(prepared));
  wt->prepare_forced = true;
  const std::uint64_t epoch = crash_epoch_;
  phase_mark(id, obs::PhaseId::kWorkerPrepareForce, true);
  wal_.force(std::move(recs), WriteTag{"prepare", /*critical=*/true},
             [this, id, epoch, also_reply_updated] {
               if (epoch != crash_epoch_) return;
               WorkTxn* w = work_of(id);
               if (w == nullptr) return;
               w->phase = WorkPhase::kPrepared;
               phase_mark(id, obs::PhaseId::kWorkerPrepareForce, false);
               Msg r;
               r.type = also_reply_updated ? MsgType::kUpdated
                                           : MsgType::kPrepared;
               r.txn = id;
               r.proto = w->proto;
               r.prepared = true;
               send(w->coord, std::move(r), /*extra=*/!also_reply_updated,
                    /*critical=*/!also_reply_updated);
               // A prepared worker must not block forever if the decision
               // gets lost (PrC/EP send COMMIT fire-and-forget): poll the
               // coordinator after the response budget expires.
               if (cfg_.response_timeout > Duration::zero()) {
                 env_.cancel(w->retry_timer);
                 w->retry_timer = env_.schedule_after(
                     cfg_.response_timeout, [this, id, epoch] {
                       if (epoch != crash_epoch_) return;
                       WorkTxn* w2 = work_of(id);
                       if (w2 == nullptr || w2->phase != WorkPhase::kPrepared) {
                         return;
                       }
                       Msg ask;
                       ask.type = MsgType::kDecisionReq;
                       ask.txn = id;
                       ask.proto = w2->proto;
                       send(w2->coord, std::move(ask), /*extra=*/true,
                            /*critical=*/false);
                       arm_worker_retry(id, MsgType::kDecisionReq);
                     });
               }
             });
}

void AcpEngine::worker_commit(TxnId id, bool forced_record,
                              bool reply_updated) {
  WorkTxn* wt = work_of(id);
  if (wt == nullptr) return;
  env_.cancel(wt->retry_timer);  // decision arrived; stop polling
  wt->retry_timer = TimerHandle{};
  LogRecord committed = state_record(RecordType::kCommitted, id);
  for (int i = 0; i < 4; ++i) {
    committed.payload.push_back(
        static_cast<std::uint8_t>(wt->coord.value() >> (8 * i)));
  }
  committed.payload.push_back(static_cast<std::uint8_t>(wt->proto));
  const std::uint64_t epoch = crash_epoch_;
  auto complete = [this, id, epoch, reply_updated] {
    if (epoch != crash_epoch_) return;
    WorkTxn* w = work_of(id);
    if (w == nullptr) return;
    // Lazy-path calls never entered the phase; that leave is dropped.
    phase_mark(id, obs::PhaseId::kWorkerCommitForce, false);
    if (w->recovered) {
      store_.replay_committed(id, w->ops);
    } else {
      store_.commit_txn(id);
    }
    locks_.release_all(id);
    if (reply_updated) {
      // 1PC: committed; hold the log open until the coordinator's ACK.
      w->phase = WorkPhase::kCommitted;
      Msg r;
      r.type = MsgType::kUpdated;
      r.txn = id;
      r.proto = w->proto;
      r.prepared = true;
      r.committed = true;
      send(w->coord, std::move(r), /*extra=*/false, /*critical=*/false);
      if (cfg_.response_timeout > Duration::zero()) {
        arm_worker_retry(id, MsgType::kAckReq);
      }
    } else if (w->proto == ProtocolKind::kPrN ||
               w->proto == ProtocolKind::kPrA) {
      Msg r;
      r.type = MsgType::kAck;
      r.txn = id;
      r.proto = w->proto;
      send(w->coord, std::move(r), /*extra=*/true, /*critical=*/true);
      wal_.partition().truncate_txn(id);
      finished_[id] = TxnOutcome::kCommitted;
      destroy_work(id);
    } else {  // PrC / EP: no acknowledgement
      finished_[id] = TxnOutcome::kCommitted;
      destroy_work(id);
    }
  };

  if (forced_record) {
    std::vector<LogRecord> recs = wal_.checkout_recs();
    if (wt->commit_on_update && !wt->recovered) {
      // 1PC folds the update images into the same forced block as the
      // COMMITTED record — the single critical-path write at the worker.
      recs.push_back(update_record(id, wt->ops));
    }
    recs.push_back(std::move(committed));
    phase_mark(id, obs::PhaseId::kWorkerCommitForce, true);
    wal_.force(std::move(recs), WriteTag{"commit", /*critical=*/true},
               std::move(complete));
  } else {
    // PrC/EP worker: COMMITTED may be written lazily (presumed commit).
    wal_.lazy(std::move(committed), WriteTag{"commit", /*critical=*/false});
    complete();
  }
}

void AcpEngine::worker_handle_prepare_req(const Msg& m) {
  const TxnId id = m.txn;
  WorkTxn* wt = work_of(id);
  if (wt == nullptr) {
    if (const TxnOutcome* fin = finished_.find(id);
        fin != nullptr && *fin == TxnOutcome::kCommitted) {
      // Already committed and forgotten: the coordinator must have lost our
      // earlier reply; only COMMIT/ACK remains meaningful.
      Msg r;
      r.type = MsgType::kPrepared;
      r.txn = id;
      r.proto = m.proto;
      send(m.from, std::move(r), /*extra=*/true, /*critical=*/false);
      return;
    }
    // Rebooted before preparing: nothing in the log, vote no (paper §II-C).
    Msg r;
    r.type = MsgType::kNotPrepared;
    r.txn = id;
    r.proto = m.proto;
    send(m.from, std::move(r), /*extra=*/true, /*critical=*/false);
    return;
  }
  if (wt->phase == WorkPhase::kPrepared) {
    Msg r;
    r.type = MsgType::kPrepared;
    r.txn = id;
    r.proto = wt->proto;
    send(wt->coord, std::move(r), /*extra=*/true, /*critical=*/false);
    return;
  }
  if (wt->phase == WorkPhase::kUpdated) {
    worker_prepare(id, /*also_reply_updated=*/false);
  }
  // Still locking/updating: the PREPARE raced ahead of our UPDATED reply;
  // it will be answered when the update phase completes.
}

void AcpEngine::worker_handle_commit(const Msg& m) {
  const TxnId id = m.txn;
  WorkTxn* wt = work_of(id);
  if (wt == nullptr) {
    // Paper §II-C: a COMMIT for an unknown transaction means we committed
    // and checkpointed before the coordinator got our ACK.  Re-ACK.
    Msg r;
    r.type = MsgType::kAck;
    r.txn = id;
    r.proto = m.proto;
    send(m.from, std::move(r), /*extra=*/true, /*critical=*/false);
    return;
  }
  if (wt->phase != WorkPhase::kPrepared) return;  // still preparing; decision
                                                  // will re-arrive via retry
  worker_commit(id,
                /*forced_record=*/wt->proto == ProtocolKind::kPrN ||
                    wt->proto == ProtocolKind::kPrA,
                /*reply_updated=*/false);
}

void AcpEngine::worker_handle_abort(const Msg& m) {
  const TxnId id = m.txn;
  WorkTxn* wt = work_of(id);
  if (wt == nullptr) {
    // Presumed abort never waits for abort ACKs, so don't send one.
    if (m.proto == ProtocolKind::kPrA) return;
    Msg r;
    r.type = MsgType::kAck;
    r.txn = id;
    r.proto = m.proto;
    send(m.from, std::move(r), /*extra=*/true, /*critical=*/false);
    return;
  }
  stats_.add("acp.worker.aborts");
  env_.cancel(wt->retry_timer);
  store_.abort_txn(id);
  locks_.release_all(id);
  if (wt->proto == ProtocolKind::kPrA) {
    // Presumed abort: drop the prepared state, write nothing, ACK nothing.
    wal_.partition().truncate_txn(id);
    finished_[id] = TxnOutcome::kAborted;
    work_.erase(id);
    return;
  }
  if (wt->prepare_forced || wt->recovered ||
      wt->phase == WorkPhase::kPrepared) {
    // Invalidate the prepare — even one still in flight: the disk is FIFO,
    // so this ABORTED lands after it.  Without the invalidation a late-
    // landing PREPARED outlives the acked abort, and the next reboot
    // re-drives it; under presumed-commit the forgotten coordinator would
    // then answer COMMIT for an aborted transaction.
    wal_.lazy(state_record(RecordType::kAborted, id),
              WriteTag{"abort", /*critical=*/false});
  }
  Msg r;
  r.type = MsgType::kAck;
  r.txn = id;
  r.proto = wt->proto;
  send(wt->coord, std::move(r), /*extra=*/true, /*critical=*/false);
  finished_[id] = TxnOutcome::kAborted;
  destroy_work(id);
}

void AcpEngine::worker_veto(TxnId id, MsgType reply_type,
                            const std::string& why) {
  WorkTxn* wt = work_of(id);
  if (wt == nullptr) return;
  if (trace_.active()) {
    trace_.record(env_.now(), TraceKind::kTxnAbort, self_.str(),
                  "worker veto: " + why, id);
  }
  store_.abort_txn(id);
  locks_.release_all(id);
  Msg r;
  r.type = reply_type;
  r.txn = id;
  r.proto = wt->proto;
  send(wt->coord, std::move(r), /*extra=*/false, /*critical=*/false);
  finished_[id] = TxnOutcome::kAborted;
  destroy_work(id);
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

void AcpEngine::on_message(Envelope env) {
  if (crashed_) return;  // the network normally drops these already
  if (scanning_) {
    // Until the reboot scan has rebuilt transaction state, any answer we
    // gave would be derived from *absence* of knowledge (presumed commits,
    // re-ACKs, fresh-looking duplicates) and could contradict what the log
    // is about to tell us.  Defer everything — the paper's rule that a
    // rebooted MDS completes outstanding work before serving requests.
    stats_.add("acp.msgs.deferred_during_scan");
    deferred_msgs_.push_back(std::move(env));
    return;
  }
  Msg& m = *env.payload.get<Msg>();
  switch (m.type) {
    case MsgType::kUpdateReq:
      worker_handle_update_req(m);
      break;
    case MsgType::kUpdated:
      on_updated(m.txn, m);
      break;
    case MsgType::kNotUpdated:
      stats_.add("acp.abort.worker_veto");
      // The vetoing worker already aborted locally; it needs no ABORT and
      // will send no ACK.
      if (CoordTxn* ct = coord_of(m.txn); ct != nullptr) {
        ct->acked.insert_unique(m.from.value());
      }
      abort_coordination(m.txn, "worker rejected update");
      break;
    case MsgType::kPrepareReq:
      worker_handle_prepare_req(m);
      break;
    case MsgType::kPrepared: {
      CoordTxn* ct = coord_of(m.txn);
      if (ct == nullptr || ct->aborting) break;
      ct->prepared.insert_unique(m.from.value());
      maybe_commit(m.txn);
      break;
    }
    case MsgType::kNotPrepared:
      stats_.add("acp.abort.worker_veto");
      if (CoordTxn* ct = coord_of(m.txn); ct != nullptr) {
        ct->acked.insert_unique(m.from.value());
      }
      abort_coordination(m.txn, "worker voted NOT-PREPARED");
      break;
    case MsgType::kCommit:
      worker_handle_commit(m);
      break;
    case MsgType::kAbort:
      worker_handle_abort(m);
      break;
    case MsgType::kAck: {
      if (CoordTxn* ct = coord_of(m.txn); ct != nullptr) {
        ct->acked.insert_unique(m.from.value());
        if (ct->acked.size() >= ct->txn.participants.size() - 1) {
          on_all_acked(m.txn);
        }
        break;
      }
      // 1PC worker receiving the coordinator's ACK.  The truncate claims
      // the lazily buffered ENDED when it becomes durable — see
      // LogPartition::append_durable.
      if (WorkTxn* wt = work_of(m.txn);
          wt != nullptr && wt->phase == WorkPhase::kCommitted) {
        env_.cancel(wt->retry_timer);
        wal_.lazy(ended_record(m.txn, TxnOutcome::kCommitted),
                  WriteTag{"ended", /*critical=*/false});
        wal_.partition().truncate_txn(m.txn);
        finished_[m.txn] = TxnOutcome::kCommitted;
        destroy_work(m.txn);
      }
      break;
    }
    case MsgType::kDecisionReq:
      handle_decision_req(m);
      break;
    case MsgType::kDecision:
      handle_decision(m);
      break;
    case MsgType::kAckReq:
      handle_ack_req(m);
      break;
  }
}

// ---------------------------------------------------------------------------
// Crash
// ---------------------------------------------------------------------------

void AcpEngine::crash() {
  SIM_CHECK(!crashed_);
  crashed_ = true;
  ++crash_epoch_;
  trace_.record(env_.now(), TraceKind::kCrash, self_.str(), "engine down");
  stats_.add("acp.crashes");
  coord_.for_each([this](TxnId id, CoordTxn* ct) {
    env_.cancel(ct->response_timer);
    env_.cancel(ct->retry_timer);
    // Accesses whose effects die with the cache are void for the conflict
    // order; a re-drive records fresh ones at their true position.
    if (history_ != nullptr && !store_.stable_applied(id)) {
      history_->drop_accesses(self_.value(), id);
    }
    coord_pool_.release(ct);
  });
  work_.for_each([this](TxnId id, WorkTxn* wt) {
    env_.cancel(wt->retry_timer);
    if (history_ != nullptr && !store_.stable_applied(id)) {
      history_->drop_accesses(self_.value(), id);
    }
    work_pool_.release(wt);
  });
  coord_.clear();
  work_.clear();
  finished_.clear();
  queued_submissions_.clear();
  deferred_msgs_.clear();
  // Holds this node took on other nodes' fences must not outlive it, or the
  // fenced workers could never reboot.
  if (fencing_ != nullptr) {
    for (const auto& [worker, waiters] : fence_waiters_) {
      (void)waiters;
      fencing_->release(self_, worker);
    }
  }
  fence_waiters_.clear();
  suspected_.clear();
  recovering_ = false;
  scanning_ = false;
  recovery_outstanding_ = 0;
  recovery_done_cb_ = nullptr;
  locks_.reset();
  store_.crash();
  wal_.crash();
}

}  // namespace opc
