// Crash recovery, decision retry and the 1PC fencing path (paper §II-C,
// §III-C).  Normal-case choreography lives in engine.cc.
#include <algorithm>
#include <map>

#include "acp/engine.h"
#include "sim/check.h"

namespace opc {
namespace {

bool is_state(RecordType t) {
  switch (t) {
    case RecordType::kStarted:
    case RecordType::kPrepared:
    case RecordType::kCommitted:
    case RecordType::kAborted:
    case RecordType::kEnded:
      return true;
    default:
      return false;
  }
}

std::optional<RecordType> last_state_in(const std::vector<LogRecord>& recs,
                                        TxnId txn) {
  std::optional<RecordType> last;
  for (const LogRecord& r : recs) {
    if (r.txn == txn && is_state(r.type)) last = r.type;
  }
  return last;
}

/// Outcome recorded in the latest ENDED record (see ended_record()).  An
/// ENDED without a payload predates the outcome byte and can only have been
/// written on the 1PC worker commit path, so commit is the right default.
TxnOutcome ended_outcome(const std::vector<LogRecord>& recs, TxnId txn) {
  for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
    if (it->txn == txn && it->type == RecordType::kEnded) {
      return (!it->payload.empty() && it->payload[0] == 0)
                 ? TxnOutcome::kAborted
                 : TxnOutcome::kCommitted;
    }
  }
  return TxnOutcome::kCommitted;
}

/// Worker-side PREPARED/COMMITTED records carry [coordinator:u32,
/// proto:u8] so a rebooted worker knows whom to ask and how to finish.
void parse_worker_payload(const LogRecord& rec, NodeId& coord,
                          ProtocolKind& proto) {
  SIM_CHECK_MSG(rec.payload.size() >= 5, "worker state record payload short");
  std::uint32_t c = 0;
  for (int i = 0; i < 4; ++i) {
    c |= static_cast<std::uint32_t>(rec.payload[static_cast<std::size_t>(i)])
         << (8 * i);
  }
  coord = NodeId(c);
  proto = static_cast<ProtocolKind>(rec.payload[4]);
}

}  // namespace

void AcpEngine::recover(std::function<void()> on_done) {
  SIM_CHECK_MSG(crashed_, "recover() without a preceding crash()");
  crashed_ = false;
  wal_.reboot();
  recovering_ = true;
  scanning_ = true;
  recovery_outstanding_ = 0;
  recovery_done_cb_ = std::move(on_done);
  trace_.record(env_.now(), TraceKind::kReboot, self_.str(),
                "scanning own log");
  stats_.add("acp.recoveries");
  const std::uint64_t epoch = crash_epoch_;
  storage_.read_partition(self_, self_,
                          [this, epoch](std::vector<LogRecord> recs) {
                            if (epoch != crash_epoch_ || crashed_) return;
                            recover_from_records(recs, nullptr);
                          });
}

void AcpEngine::recover_from_records(const std::vector<LogRecord>& records,
                                     std::function<void()> /*unused*/) {
  // Group per transaction, preserving first-appearance (== arrival) order so
  // re-driven transactions respect the paper's §III-D ordering rule.
  std::vector<TxnId> order;
  std::map<TxnId, std::vector<LogRecord>> per_txn;
  for (const LogRecord& r : records) {
    if (r.txn == 0) continue;
    if (!per_txn.contains(r.txn)) order.push_back(r.txn);
    per_txn[r.txn].push_back(r);
  }
  for (TxnId id : order) {
    const auto& recs = per_txn[id];
    const bool coordinator_role = std::any_of(
        recs.begin(), recs.end(),
        [](const LogRecord& r) { return r.type == RecordType::kStarted; });
    if (coordinator_role) {
      recover_coordinator_txn(id, recs);
    } else {
      recover_worker_txn(id, recs);
    }
  }
  // Scan done: transaction state is rebuilt, so deferred traffic can now be
  // answered from knowledge instead of absence.
  scanning_ = false;
  auto deferred = std::move(deferred_msgs_);
  deferred_msgs_.clear();
  for (Envelope& env : deferred) on_message(std::move(env));
  maybe_finish_recovery();
}

void AcpEngine::recover_coordinator_txn(TxnId id,
                                        const std::vector<LogRecord>& recs) {
  const auto state = last_state_in(recs, id);
  SIM_CHECK(state.has_value());
  trace_.record(env_.now(), TraceKind::kRecoveryStep, self_.str(),
                "coordinator log state " +
                    std::string(record_type_name(*state)),
                id);

  // The STARTED record payload carries the whole transaction.
  Transaction txn;
  {
    auto it = std::find_if(recs.begin(), recs.end(), [](const LogRecord& r) {
      return r.type == RecordType::kStarted;
    });
    SIM_CHECK(it != recs.end());
    SIM_CHECK_MSG(decode_txn(it->payload, txn),
                  "corrupt STARTED payload");
  }
  const ProtocolKind proto = choose_protocol(proto_, txn.n_participants());

  switch (*state) {
    case RecordType::kEnded:
      wal_.partition().truncate_txn(id);
      finished_[id] = ended_outcome(recs, id);
      return;

    case RecordType::kStarted: {
      if (proto == ProtocolKind::kOnePC) {
        // Paper §III-C: re-execute from the redo record.
        stats_.add("acp.recovery.redrive");
        redrive_transaction(std::move(txn));
        return;
      }
      // 2PC family: the updates died with the cache; abort (paper §II-C).
      stats_.add("acp.recovery.abort_from_started");
      if (proto == ProtocolKind::kPrA) {
        // Presumed abort: notify once, forget immediately; workers that
        // missed the ABORT learn the outcome from the missing log state.
        CoordTxn tmp;
        tmp.txn = std::move(txn);
        tmp.proto = proto;
        send_decision_round(tmp, MsgType::kAbort);
        wal_.partition().truncate_txn(id);
        finished_[id] = TxnOutcome::kAborted;
        if (history_ != nullptr) history_->record_abort(id);
        return;
      }
      CoordTxn& ct = new_coord(id);
      ct.txn = std::move(txn);
      ct.proto = proto;
      ct.recovered = true;
      ct.replied = true;  // the client connection died with the crash
      ct.aborting = true;
      ct.submitted = env_.now();
      ct.phase = CoordPhase::kWaitingAcks;
      ++recovery_outstanding_;
      wal_.lazy(state_record(RecordType::kAborted, id),
                WriteTag{"abort", false});
      if (history_ != nullptr) history_->record_abort(id);
      send_decision_round(ct, MsgType::kAbort);
      arm_response_timer(id);
      return;
    }

    case RecordType::kPrepared: {
      // Resume the protocol: re-collect votes, then commit normally.  The
      // cached local updates are gone; on_commit_durable() replays them
      // from the transaction body (ct.recovered selects the replay path).
      stats_.add("acp.recovery.resume_from_prepared");
      CoordTxn& ct = new_coord(id);
      ct.txn = std::move(txn);
      ct.proto = proto;
      ct.recovered = true;
      ct.replied = true;
      ct.started_durable = true;
      ct.own_prepare_durable = true;
      ct.submitted = env_.now();
      ct.phase = CoordPhase::kLocking;
      sorted_objects_into(ct.txn.participants.front().ops, ct.lock_objs);
      ++recovery_outstanding_;
      acquire_next_lock(id);  // -> enter_voting once re-locked
      return;
    }

    case RecordType::kCommitted: {
      stats_.add("acp.recovery.resume_from_committed");
      // COMMITTED durable implies the stable apply already ran (they share
      // one event) and the locks were released; only the decision
      // distribution can be outstanding.
      if (proto == ProtocolKind::kOnePC) {
        store_.replay_committed(id, txn.participants.front().ops);
        Msg m;
        m.type = MsgType::kAck;
        m.txn = id;
        m.proto = proto;
        send(txn.sole_worker(), std::move(m), /*extra=*/true,
             /*critical=*/false);
        wal_.partition().truncate_txn(id);
        finished_[id] = TxnOutcome::kCommitted;
        return;
      }
      store_.replay_committed(id, txn.participants.front().ops);
      if (proto == ProtocolKind::kPrC || proto == ProtocolKind::kEP) {
        // Crash raced the post-decision cleanup; resend COMMIT once and
        // finalize (presumed commit needs no ACKs).
        CoordTxn tmp;
        tmp.txn = std::move(txn);
        tmp.proto = proto;
        send_decision_round(tmp, MsgType::kCommit);
        wal_.partition().truncate_txn(id);
        finished_[id] = TxnOutcome::kCommitted;
        return;
      }
      // PrN: keep resending COMMIT until every worker ACKs.
      CoordTxn& ct = new_coord(id);
      ct.txn = std::move(txn);
      ct.proto = proto;
      ct.recovered = true;
      ct.replied = true;
      ct.started_durable = true;
      ct.own_prepare_durable = true;
      ct.submitted = env_.now();
      ct.phase = CoordPhase::kWaitingAcks;
      ++recovery_outstanding_;
      send_decision_round(ct, MsgType::kCommit);
      arm_response_timer(id);
      return;
    }

    case RecordType::kAborted: {
      stats_.add("acp.recovery.resume_from_aborted");
      CoordTxn& ct = new_coord(id);
      ct.txn = std::move(txn);
      ct.proto = proto;
      ct.recovered = true;
      ct.replied = true;
      ct.aborting = true;
      ct.submitted = env_.now();
      ct.phase = CoordPhase::kWaitingAcks;
      ++recovery_outstanding_;
      send_decision_round(ct, MsgType::kAbort);
      arm_response_timer(id);
      return;
    }

    default:
      SIM_CHECK_MSG(false, "unexpected coordinator log state");
  }
}

void AcpEngine::recover_worker_txn(TxnId id,
                                   const std::vector<LogRecord>& recs) {
  const auto state = last_state_in(recs, id);
  if (!state.has_value()) {
    wal_.partition().truncate_txn(id);
    return;
  }
  trace_.record(env_.now(), TraceKind::kRecoveryStep, self_.str(),
                "worker log state " + std::string(record_type_name(*state)),
                id);

  // Coordinator state records carry no worker payload.  Finding one here —
  // in a group with no STARTED — means the coordinator already finished and
  // checkpointed this transaction, and a force that was still in flight at
  // the checkpoint landed afterwards as a tombstone.  The disk is FIFO, so a
  // tombstone PREPARED can only outlive the checkpoint when no COMMITTED
  // force was ever queued behind it: the coordination aborted.  (A committed
  // coordination's tombstone is the COMMITTED record itself.)
  if ((*state == RecordType::kPrepared ||
       *state == RecordType::kCommitted)) {
    auto it = std::find_if(recs.rbegin(), recs.rend(), [&](const LogRecord& r) {
      return r.type == *state;
    });
    SIM_CHECK(it != recs.rend());
    if (it->payload.size() < 5) {
      stats_.add("acp.recovery.coordinator_tombstone");
      finished_[id] = *state == RecordType::kCommitted
                          ? TxnOutcome::kCommitted
                          : TxnOutcome::kAborted;
      wal_.partition().truncate_txn(id);
      return;
    }
  }

  switch (*state) {
    case RecordType::kPrepared: {
      stats_.add("acp.recovery.worker_prepared");
      NodeId coord;
      ProtocolKind proto = ProtocolKind::kPrN;
      auto it = std::find_if(recs.begin(), recs.end(), [](const LogRecord& r) {
        return r.type == RecordType::kPrepared;
      });
      SIM_CHECK(it != recs.end());
      parse_worker_payload(*it, coord, proto);

      WorkTxn& wt = new_work(id);
      wt.id = id;
      wt.coord = coord;
      wt.proto = proto;
      wt.recovered = true;
      wt.phase = WorkPhase::kLocking;
      for (const LogRecord& r : recs) {
        if (r.type != RecordType::kUpdate) continue;
        std::vector<Operation> ops;
        SIM_CHECK_MSG(decode_ops(r.payload, ops), "corrupt UPDATE payload");
        wt.ops.insert(wt.ops.end(), ops.begin(), ops.end());
      }
      sorted_objects_into(wt.ops, wt.lock_objs);
      // Re-protect the prepared objects, then chase the decision (paper
      // §II-C: the worker asks the coordinator to resend it).
      worker_acquire_next_lock(id);
      return;
    }

    case RecordType::kCommitted: {
      stats_.add("acp.recovery.worker_committed");
      NodeId coord;
      ProtocolKind proto = ProtocolKind::kPrN;
      auto it = std::find_if(recs.begin(), recs.end(), [](const LogRecord& r) {
        return r.type == RecordType::kCommitted;
      });
      SIM_CHECK(it != recs.end());
      parse_worker_payload(*it, coord, proto);
      finished_[id] = TxnOutcome::kCommitted;
      if (proto == ProtocolKind::kOnePC) {
        // Paper §III-C: ask the coordinator to resend the ACKNOWLEDGE so
        // the log can be finalized.
        WorkTxn& wt = new_work(id);
        wt.id = id;
        wt.coord = coord;
        wt.proto = proto;
        wt.recovered = true;
        wt.phase = WorkPhase::kCommitted;
        Msg m;
        m.type = MsgType::kAckReq;
        m.txn = id;
        m.proto = proto;
        send(coord, std::move(m), /*extra=*/true, /*critical=*/false);
        arm_worker_retry(id, MsgType::kAckReq);
        return;
      }
      // 2PC family: nothing to do (paper §II-C); a duplicate COMMIT will be
      // re-ACKed from finished_.
      wal_.partition().truncate_txn(id);
      return;
    }

    case RecordType::kAborted:
      finished_[id] = TxnOutcome::kAborted;
      wal_.partition().truncate_txn(id);
      return;

    case RecordType::kEnded:
      finished_[id] = ended_outcome(recs, id);
      wal_.partition().truncate_txn(id);
      return;

    default:
      SIM_CHECK_MSG(false, "unexpected worker log state");
  }
}

void AcpEngine::redrive_transaction(Transaction txn) {
  const TxnId id = txn.id;
  CoordTxn& ct = new_coord(id);
  ct.txn = std::move(txn);
  ct.proto = choose_protocol(proto_, ct.txn.n_participants());
  ct.recovered = true;
  ct.replied = true;  // client is gone; outcome is recorded, not delivered
  ct.submitted = env_.now();
  ++recovery_outstanding_;
  start_coordination(ct);
}

void AcpEngine::arm_worker_retry(TxnId id, MsgType ask) {
  WorkTxn* wt = work_of(id);
  if (wt == nullptr) return;
  env_.cancel(wt->retry_timer);
  const std::uint64_t epoch = crash_epoch_;
  wt->retry_timer =
      env_.schedule_after(cfg_.retry_interval, [this, id, ask, epoch] {
        if (epoch != crash_epoch_) return;
        WorkTxn* w = work_of(id);
        if (w == nullptr) return;
        Msg m;
        m.type = ask;
        m.txn = id;
        m.proto = w->proto;
        m.nudge = true;  // retries are never the first transmission
        send(w->coord, std::move(m), /*extra=*/true, /*critical=*/false);
        arm_worker_retry(id, ask);
      });
}

void AcpEngine::suspect(NodeId peer) {
  if (crashed_) return;
  suspected_.insert(peer);
  std::vector<TxnId> affected;
  coord_.for_each([&](TxnId id, const CoordTxn* ct) {
    if (ct->proto == ProtocolKind::kOnePC &&
        ct->phase == CoordPhase::kUpdating && !ct->fencing &&
        ct->txn.sole_worker() == peer) {
      affected.push_back(id);
    }
  });
  for (TxnId id : affected) start_fencing_recovery(id);
}

void AcpEngine::start_fencing_recovery(TxnId id) {
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr || ct->fencing || ct->aborting) return;
  SIM_CHECK_MSG(fencing_ != nullptr,
                "1PC recovery requires a fencing service");
  ct->fencing = true;
  env_.cancel(ct->response_timer);
  ct->response_timer = TimerHandle{};
  // choose_protocol keeps 1PC two-party, so the fence target is unique.
  const NodeId worker = ct->txn.sole_worker();
  trace_.record(env_.now(), TraceKind::kRecoveryStep, self_.str(),
                "fencing " + worker.str() + " to read its log", id);

  // Batch: one STONITH round + one log scan answers every transaction
  // blocked on this worker.
  auto& waiters = fence_waiters_[worker];
  waiters.push_back(id);
  if (waiters.size() > 1) return;

  stats_.add("acp.onepc.fencing_recoveries");
  const std::uint64_t epoch = crash_epoch_;
  if (cfg_.unsafe_skip_fencing) {
    // TEST-ONLY bug (see AcpConfig): read the foreign log without STONITH.
    // If the worker is merely partitioned it can still commit after this
    // read — divergence the chaos oracles must catch.
    storage_.read_partition(
        self_, worker, [this, worker, epoch](std::vector<LogRecord> recs) {
          if (epoch != crash_epoch_ || crashed_) return;
          on_worker_log_batch(worker, recs);
        });
    return;
  }
  auto fenced_cb = [this, worker, epoch] {
    if (epoch != crash_epoch_ || crashed_) return;
    storage_.read_partition(
        self_, worker, [this, worker, epoch](std::vector<LogRecord> recs) {
          if (epoch != crash_epoch_ || crashed_) return;
          on_worker_log_batch(worker, recs);
        });
  };
  OPC_ASSERT_INLINE_CB(fenced_cb);
  fencing_->fence_and_isolate(self_, worker, std::move(fenced_cb));
}

void AcpEngine::on_worker_log_batch(NodeId worker,
                                    const std::vector<LogRecord>& records) {
  // The snapshot is in hand; the fenced worker may now be repaired.
  if (!cfg_.unsafe_skip_fencing) fencing_->release(self_, worker);
  auto it = fence_waiters_.find(worker);
  if (it == fence_waiters_.end()) return;
  const std::vector<TxnId> waiting = std::move(it->second);
  fence_waiters_.erase(it);
  for (TxnId id : waiting) on_worker_log_read(id, worker, records);
}

void AcpEngine::on_worker_log_read(TxnId id, NodeId worker,
                                   const std::vector<LogRecord>& records) {
  (void)worker;
  CoordTxn* ct = coord_of(id);
  if (ct == nullptr) return;
  if (ct->phase != CoordPhase::kUpdating) return;  // resolved concurrently
  ct->fencing = false;
  const auto state = last_state_in(records, id);
  const bool committed =
      state.has_value() &&
      (*state == RecordType::kCommitted ||
       (*state == RecordType::kEnded &&
        ended_outcome(records, id) == TxnOutcome::kCommitted));
  trace_.record(env_.now(), TraceKind::kRecoveryStep, self_.str(),
                committed ? "fenced log shows COMMITTED -> commit"
                          : "fenced log empty -> abort",
                id);
  if (committed) {
    stats_.add("acp.onepc.fence_commit");
    if (!ct->mem_committed) {
      ct->mem_committed = true;
      if (ct->recovered) {
        store_.replay_committed(id, ct->txn.participants.front().ops);
      } else {
        store_.commit_mem(id);
      }
      locks_.release_all(id);
      if (history_ != nullptr) history_->record_commit(id);
      reply_client(*ct, TxnOutcome::kCommitted);
    }
    ct->phase = CoordPhase::kForcingCommit;
    std::vector<LogRecord> recs = wal_.checkout_recs();
    recs.push_back(update_record(id, ct->txn.participants.front().ops));
    recs.push_back(state_record(RecordType::kCommitted, id));
    const std::uint64_t epoch = crash_epoch_;
    wal_.force(std::move(recs), WriteTag{"commit", /*critical=*/false},
               [this, id, epoch] {
                 if (epoch != crash_epoch_) return;
                 on_commit_durable(id);
               });
  } else {
    stats_.add("acp.onepc.fence_abort");
    abort_coordination(id, "fenced worker had not committed");
  }
}

void AcpEngine::handle_decision_req(const Msg& m) {
  const TxnId id = m.txn;
  if (CoordTxn* ct = coord_of(id); ct != nullptr) {
    if (ct->aborting) {
      Msg r;
      r.type = MsgType::kDecision;
      r.txn = id;
      r.proto = ct->proto;
      r.outcome = TxnOutcome::kAborted;
      send(m.from, std::move(r), /*extra=*/true, /*critical=*/false);
      return;
    }
    if (ct->phase == CoordPhase::kWaitingAcks || ct->mem_committed) {
      Msg r;
      r.type = MsgType::kDecision;
      r.txn = id;
      r.proto = ct->proto;
      r.outcome = TxnOutcome::kCommitted;
      send(m.from, std::move(r), /*extra=*/true, /*critical=*/false);
      return;
    }
    if (ct->phase == CoordPhase::kVoting) {
      // A DECISION_REQ proves the worker prepared (its vote got lost).
      ct->prepared.insert_unique(m.from.value());
      maybe_commit(id);
    }
    return;  // undecided; the worker keeps retrying
  }
  if (const TxnOutcome* fin = finished_.find(id); fin != nullptr) {
    Msg r;
    r.type = MsgType::kDecision;
    r.txn = id;
    r.proto = m.proto;
    r.outcome = *fin;
    send(m.from, std::move(r), /*extra=*/true, /*critical=*/false);
    return;
  }
  // No trace of the transaction: apply the protocol's presumption
  // (paper §II-D: a finalized PrC log means commit; PrN presumes abort).
  Msg r;
  r.type = MsgType::kDecision;
  r.txn = id;
  r.proto = m.proto;
  r.outcome = (m.proto == ProtocolKind::kPrN ||
               m.proto == ProtocolKind::kPrA)
                  ? TxnOutcome::kAborted
                  : TxnOutcome::kCommitted;
  stats_.add("acp.decision.presumed");
  send(m.from, std::move(r), /*extra=*/true, /*critical=*/false);
}

void AcpEngine::handle_decision(const Msg& m) {
  const TxnId id = m.txn;
  WorkTxn* wt = work_of(id);
  if (wt == nullptr || wt->phase != WorkPhase::kPrepared) return;
  env_.cancel(wt->retry_timer);
  wt->retry_timer = TimerHandle{};
  if (m.outcome == TxnOutcome::kCommitted) {
    worker_commit(id,
                  /*forced_record=*/wt->proto == ProtocolKind::kPrN ||
                      wt->proto == ProtocolKind::kPrA ||
                      wt->proto == ProtocolKind::kOnePC,
                  /*reply_updated=*/false);
  } else {
    SIM_CHECK_MSG(!store_.stable_applied(id),
                  "abort decision for a transaction already stable");
    store_.abort_txn(id);
    locks_.release_all(id);
    wal_.lazy(state_record(RecordType::kAborted, id),
              WriteTag{"abort", false});
    finished_[id] = TxnOutcome::kAborted;
    destroy_work(id);
  }
}

void AcpEngine::handle_ack_req(const Msg& m) {
  const TxnId id = m.txn;
  if (coord_of(id) != nullptr) return;  // still committing; ACK will follow
  // Finished or forgotten: either way the worker may finalize.
  Msg r;
  r.type = MsgType::kAck;
  r.txn = id;
  r.proto = m.proto;
  send(m.from, std::move(r), /*extra=*/true, /*critical=*/false);
}

void AcpEngine::maybe_finish_recovery() {
  if (!recovering_ || recovery_outstanding_ > 0) return;
  recovering_ = false;
  trace_.record(env_.now(), TraceKind::kRecoveryStep, self_.str(),
                "recovery complete; draining " +
                    std::to_string(queued_submissions_.size()) +
                    " queued submissions");
  auto queued = std::move(queued_submissions_);
  queued_submissions_.clear();
  for (auto& [txn, cb] : queued) {
    const TxnId id = txn.id;
    stats_.add("acp.submitted");
    if (coord_.contains(id)) continue;
    CoordTxn& ct = new_coord(id);
    ct.txn = std::move(txn);
    ct.proto = choose_protocol(proto_, ct.txn.n_participants());
    if (ct.txn.n_participants() > 2) {
      stats_.add("acp.txn.wide");
      if (ct.proto != proto_) stats_.add("acp.onepc.degraded");
    }
    ct.cb = std::move(cb);
    ct.submitted = env_.now();
    start_coordination(ct);
  }
  if (recovery_done_cb_) {
    auto cb = std::move(recovery_done_cb_);
    recovery_done_cb_ = nullptr;
    cb();
  }
}

}  // namespace opc
