// Cluster services the protocol engine consumes but does not implement.
//
// The dependency points upward (cluster wires the implementations in), so
// the ACP layer stays testable with in-process fakes.
#pragma once

#include "net/types.h"
#include "sim/inline_callback.h"

namespace opc {

/// Node fencing (paper §III-A).  The 1PC recovery path MUST fence a worker
/// before reading its log: a suspected-dead worker may merely be
/// partitioned away, and reading a log that is still being written could
/// split-brain the outcome.  fence_and_isolate() models STONITH: the target
/// is power-cycled (crash now, reboot later) and its storage partition is
/// fenced; `on_fenced` runs once the target can no longer write.
class FencingService {
 public:
  /// SBO callback (same inline window as the executor callbacks) so the
  /// fencing path stays allocation-free under both backends.  Callers
  /// OPC_ASSERT_INLINE_CB their capture at the creation site.
  using FenceCallback = InlineCallback<void(), kInlineCallbackBytes>;

  virtual ~FencingService() = default;

  /// Power-cycles `target` and fences its log partition; `on_fenced` runs
  /// once the target can no longer write.  The fence (and the target's
  /// reboot) is held until every requester releases it.
  virtual void fence_and_isolate(NodeId requester, NodeId target,
                                 FenceCallback on_fenced) = 0;

  /// The requester is done reading the fenced log; when the last hold
  /// drops, the target may reboot (and will unfence itself on the way up).
  virtual void release(NodeId requester, NodeId target) = 0;
};

}  // namespace opc
