#include "acp/messages.h"

namespace opc {

std::string_view msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kUpdateReq: return "UPDATE_REQ";
    case MsgType::kUpdated: return "UPDATED";
    case MsgType::kNotUpdated: return "NOT_UPDATED";
    case MsgType::kPrepareReq: return "PREPARE";
    case MsgType::kPrepared: return "PREPARED";
    case MsgType::kNotPrepared: return "NOT_PREPARED";
    case MsgType::kCommit: return "COMMIT";
    case MsgType::kAbort: return "ABORT";
    case MsgType::kAck: return "ACK";
    case MsgType::kDecisionReq: return "DECISION_REQ";
    case MsgType::kDecision: return "DECISION";
    case MsgType::kAckReq: return "ACK_REQ";
  }
  return "?";
}

std::uint64_t msg_wire_size(const Msg& m) {
  std::uint64_t size = 128;  // headers, ids, flags
  for (const Operation& op : m.ops) size += 40 + op.name.size();
  return size;
}

namespace {
// Little-endian byte writes, batched (see txn/types.cc): one resize +
// direct stores instead of per-byte push_back capacity checks.
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  for (int i = 0; i < 4; ++i) out[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  for (int i = 0; i < 8; ++i) out[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
}
bool get_u32(const std::vector<std::uint8_t>& b, std::size_t& o, std::uint32_t& v) {
  if (o + 4 > b.size()) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[o + i]) << (8 * i);
  o += 4;
  return true;
}
bool get_u64(const std::vector<std::uint8_t>& b, std::size_t& o, std::uint64_t& v) {
  if (o + 8 > b.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[o + i]) << (8 * i);
  o += 8;
  return true;
}
}  // namespace

void encode_txn(const Transaction& txn, std::vector<std::uint8_t>& out) {
  // Exact-size reserve + in-place op encoding: one allocation for a fresh
  // payload, no temporary per participant.  The byte layout is unchanged
  // (the per-participant length prefix is ops_wire_size, which is what the
  // temporary's size used to be).
  std::size_t total = out.size() + 8 + 1 + 4;
  for (const Participant& p : txn.participants) {
    total += 4 + 4 + ops_wire_size(p.ops);
  }
  out.reserve(total);
  put_u64(out, txn.id);
  out.push_back(static_cast<std::uint8_t>(txn.kind));
  put_u32(out, static_cast<std::uint32_t>(txn.participants.size()));
  for (const Participant& p : txn.participants) {
    put_u32(out, p.node.value());
    put_u32(out, static_cast<std::uint32_t>(ops_wire_size(p.ops)));
    encode_ops(p.ops, out);
  }
}

bool decode_txn(const std::vector<std::uint8_t>& buf, Transaction& out) {
  std::size_t o = 0;
  std::uint64_t id = 0;
  if (!get_u64(buf, o, id)) return false;
  if (o >= buf.size()) return false;
  const auto kind = static_cast<NamespaceOpKind>(buf[o++]);
  std::uint32_t n = 0;
  if (!get_u32(buf, o, n)) return false;
  out.id = id;
  out.kind = kind;
  out.participants.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t node = 0, len = 0;
    if (!get_u32(buf, o, node) || !get_u32(buf, o, len)) return false;
    if (o + len > buf.size()) return false;
    std::vector<std::uint8_t> ops_buf(
        buf.begin() + static_cast<std::ptrdiff_t>(o),
        buf.begin() + static_cast<std::ptrdiff_t>(o + len));
    o += len;
    Participant p;
    p.node = NodeId(node);
    if (!decode_ops(ops_buf, p.ops)) return false;
    out.participants.push_back(std::move(p));
  }
  return o == buf.size();
}

}  // namespace opc
