// Engine tuning knobs.
#pragma once

#include "sim/time.h"

namespace opc {

struct AcpConfig {
  /// Lock wait budget before a participant vetoes / a coordinator aborts
  /// (paper §II-B's deadlock handling).  zero() disables: waiters queue
  /// indefinitely — the right setting for the contention benchmarks, where
  /// FIFO queues are deadlock-free and very deep.
  Duration lock_timeout = Duration::zero();

  /// How long the coordinator waits for a worker response before acting
  /// (abort for the 2PC family; fencing recovery for 1PC).  zero() disables.
  Duration response_timeout = Duration::zero();

  /// Resend interval for decisions/queries that need retrying (COMMIT or
  /// ABORT awaiting ACK, DECISION_REQ, ACK_REQ).
  Duration retry_interval = Duration::millis(200);

  /// WAL footprint of plain state records (STARTED, PREPARED, COMMITTED...).
  std::uint64_t state_record_bytes = 512;

  /// Fixed part of the REDO record's footprint (ops payload adds to it).
  std::uint64_t redo_record_bytes = 512;

  /// TEST-ONLY fault: make the 1PC recovery read the suspected worker's
  /// log WITHOUT fencing it first — the split-brain bug the paper's
  /// §III-A fencing requirement exists to prevent (a merely partitioned,
  /// still-live worker can commit after the coordinator saw an empty log
  /// and aborted).  Exists so the chaos harness (src/chaos) can prove its
  /// oracles catch a real protocol bug.  Never enable outside tests.
  bool unsafe_skip_fencing = false;
};

}  // namespace opc
