// Engine tuning knobs.
#pragma once

#include "sim/time.h"

namespace opc {

struct AcpConfig {
  /// Lock wait budget before a participant vetoes / a coordinator aborts
  /// (paper §II-B's deadlock handling).  zero() disables: waiters queue
  /// indefinitely — the right setting for the contention benchmarks, where
  /// FIFO queues are deadlock-free and very deep.
  Duration lock_timeout = Duration::zero();

  /// How long the coordinator waits for a worker response before acting
  /// (abort for the 2PC family; fencing recovery for 1PC).  zero() disables.
  Duration response_timeout = Duration::zero();

  /// Resend interval for decisions/queries that need retrying (COMMIT or
  /// ABORT awaiting ACK, DECISION_REQ, ACK_REQ).
  Duration retry_interval = Duration::millis(200);

  /// WAL footprint of plain state records (STARTED, PREPARED, COMMITTED...).
  std::uint64_t state_record_bytes = 512;

  /// Fixed part of the REDO record's footprint (ops payload adds to it).
  std::uint64_t redo_record_bytes = 512;
};

}  // namespace opc
