// The per-MDS atomic-commitment engine.
//
// One AcpEngine runs on every metadata server and plays both roles —
// coordinator for transactions submitted to this node, worker for
// transactions coordinated elsewhere — for all four protocols (PrN, PrC,
// EP, 1PC).  The normal-case message/logging choreography lives in
// engine.cc; crash recovery, decision retry and the 1PC fencing path live
// in engine_recovery.cc.  DESIGN.md §4 tabulates the per-protocol costs the
// engine is instrumented to reproduce.
//
// Concurrency model: the engine is a set of event callbacks over the
// deterministic simulator — no threads, no blocking.  Every wait (lock
// grant, disk durability, message arrival, timeout) is a continuation.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "acp/config.h"
#include "core/arena.h"
#include "core/flat.h"
#include "acp/messages.h"
#include "acp/protocol.h"
#include "acp/services.h"
#include "env/env.h"
#include "env/transport.h"
#include "lock/lock_manager.h"
#include "mds/store.h"
#include "obs/phase.h"
#include "stats/histogram.h"
#include "txn/serializability.h"
#include "wal/log_writer.h"

namespace opc {

class AcpEngine {
 public:
  /// Client completion callback: outcome of a submitted transaction.
  using ClientCallback = std::function<void(TxnId, TxnOutcome)>;

  AcpEngine(Env& env, NodeId self, ProtocolKind proto, AcpConfig cfg,
            Transport& net, LogWriter& wal, LockManager& locks,
            MetaStore& store, SharedStorage& storage, StatsRegistry& stats,
            TraceRecorder& trace,
            FencingService* fencing = nullptr,
            HistoryRecorder* history = nullptr,
            obs::PhaseLog* phases = nullptr);

  AcpEngine(const AcpEngine&) = delete;
  AcpEngine& operator=(const AcpEngine&) = delete;

  /// Submits a transaction with this node as coordinator (participants[0]
  /// must be this node).  Assigns and returns the transaction id.  The
  /// callback fires exactly once in the normal case; if this node crashes
  /// mid-transaction it may never fire (the client's timeout problem, by
  /// design).  While recovery is in progress, submissions queue behind the
  /// re-driven transactions (paper §III-D ordering rule).
  TxnId submit(Transaction txn, ClientCallback cb);

  /// Network ingress; the cluster attaches this to the Network.
  void on_message(Envelope env);

  /// Crash: all volatile protocol state (transactions in flight, timers,
  /// locks, caches, lazy log buffer) evaporates.
  void crash();

  /// Reboot-time recovery: scans this node's log partition and re-drives
  /// every unfinished transaction per the protocol's recovery rules.
  /// `on_done` fires when the scan completes and queued submissions drain.
  void recover(std::function<void()> on_done = nullptr);

  /// Failure-detector hint: `peer` is suspected dead.  Triggers the 1PC
  /// fencing recovery for transactions blocked on that worker, and makes
  /// new transactions against it fail fast (safe: nothing was sent yet).
  void suspect(NodeId peer);

  /// Failure-detector all-clear: heartbeats from `peer` resumed.
  void clear_suspicion(NodeId peer) { suspected_.erase(peer); }

  // --- Introspection (tests, benches) ---
  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] ProtocolKind protocol() const { return proto_; }
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] std::size_t active_coordinations() const {
    return coord_.size();
  }
  [[nodiscard]] std::size_t active_participations() const {
    return work_.size();
  }
  [[nodiscard]] std::optional<TxnOutcome> outcome_of(TxnId txn) const;
  [[nodiscard]] const Histogram& client_latency() const { return latency_; }
  [[nodiscard]] std::uint64_t committed_count() const { return committed_; }
  [[nodiscard]] std::uint64_t aborted_count() const { return aborted_; }

 private:
  // ---- per-transaction coordinator state ----
  enum class CoordPhase : std::uint8_t {
    kLocking,
    kForcingStart,
    kUpdating,        // local updates + waiting for workers' UPDATED
    kVoting,          // PrN/PrC: PREPARE round outstanding
    kForcingCommit,
    kWaitingAcks,     // PrN commit / any-protocol abort: ACKs outstanding
    kDone,
  };
  struct CoordTxn {
    Transaction txn;
    ProtocolKind proto;
    ClientCallback cb;
    CoordPhase phase = CoordPhase::kLocking;
    std::vector<ObjectId> lock_objs;
    std::size_t locks_granted = 0;
    SmallVec<std::uint32_t, 4> updated;   // workers that answered UPDATED
    SmallVec<std::uint32_t, 4> prepared;  // workers that voted PREPARED
    SmallVec<std::uint32_t, 4> acked;
    bool own_prepare_durable = false;
    bool started_durable = false;
    bool mem_committed = false;
    bool replied = false;
    bool aborting = false;
    bool recovered = false;   // re-driven by reboot recovery
    bool fencing = false;     // 1PC recovery against the worker in progress
    bool reqs_sent = false;   // UPDATE_REQs actually left this node
    SimTime submitted;
    TimerHandle response_timer;
    TimerHandle retry_timer;

    /// Returns a pool-recycled object to its just-constructed state while
    /// keeping container capacity warm.
    void reset() {
      txn.id = 0;
      txn.participants.clear();
      cb = nullptr;
      phase = CoordPhase::kLocking;
      lock_objs.clear();
      locks_granted = 0;
      updated.clear();
      prepared.clear();
      acked.clear();
      own_prepare_durable = started_durable = mem_committed = false;
      replied = aborting = recovered = fencing = reqs_sent = false;
      submitted = SimTime{};
      response_timer = TimerHandle{};
      retry_timer = TimerHandle{};
    }
  };

  // ---- per-transaction worker state ----
  enum class WorkPhase : std::uint8_t {
    kLocking,
    kUpdating,
    kUpdated,    // PrN/PrC: updates done, voting phase not yet started
    kPrepared,   // waiting for the decision
    kCommitted,  // 1PC: waiting for ACK
    kDone,
  };
  struct WorkTxn {
    TxnId id = 0;
    NodeId coord;
    ProtocolKind proto = ProtocolKind::kPrN;
    std::vector<Operation> ops;
    WorkPhase phase = WorkPhase::kLocking;
    std::vector<ObjectId> lock_objs;
    std::size_t locks_granted = 0;
    bool prepare_on_update = false;  // EP
    bool commit_on_update = false;   // 1PC
    bool recovered = false;          // reconstructed from the log on reboot
    bool prepare_forced = false;     // a PREPARED record was sent to disk
    TimerHandle retry_timer;

    void reset() {
      id = 0;
      coord = NodeId{};
      proto = ProtocolKind::kPrN;
      ops.clear();
      phase = WorkPhase::kLocking;
      lock_objs.clear();
      locks_granted = 0;
      prepare_on_update = commit_on_update = false;
      recovered = prepare_forced = false;
      retry_timer = TimerHandle{};
    }
  };

  // ---- coordinator path (engine.cc) ----
  void start_coordination(CoordTxn& ct);
  void acquire_next_lock(TxnId id);
  void force_started(TxnId id);
  void run_local_updates(TxnId id);
  void send_update_reqs(TxnId id);
  void on_updated(TxnId id, const Msg& m);
  void enter_voting(TxnId id);
  void maybe_commit(TxnId id);
  void on_commit_durable(TxnId id);
  void on_all_acked(TxnId id);
  void abort_coordination(TxnId id, const std::string& why);
  void finish_coordination(TxnId id, TxnOutcome outcome);
  void reply_client(CoordTxn& ct, TxnOutcome outcome);
  void arm_response_timer(TxnId id);
  void on_response_timeout(TxnId id);

  // ---- worker path (engine.cc) ----
  // Non-const: the envelope owns the Msg, so the ops vector is moved
  // into the WorkTxn instead of copied.
  void worker_handle_update_req(Msg& m);
  void worker_acquire_next_lock(TxnId id);
  void worker_run_updates(TxnId id);
  void worker_after_updates(TxnId id);
  void worker_prepare(TxnId id, bool also_reply_updated);
  void worker_commit(TxnId id, bool forced_record, bool reply_updated);
  void worker_handle_prepare_req(const Msg& m);
  void worker_handle_commit(const Msg& m);
  void worker_handle_abort(const Msg& m);
  void worker_veto(TxnId id, MsgType reply_type, const std::string& why);

  // ---- recovery (engine_recovery.cc) ----
  void recover_from_records(const std::vector<LogRecord>& records,
                            std::function<void()> on_done);
  void recover_coordinator_txn(TxnId id, const std::vector<LogRecord>& recs);
  void recover_worker_txn(TxnId id, const std::vector<LogRecord>& recs);
  void redrive_transaction(Transaction txn);
  void start_fencing_recovery(TxnId id);
  void on_worker_log_batch(NodeId worker,
                           const std::vector<LogRecord>& records);
  void on_worker_log_read(TxnId id, NodeId worker,
                          const std::vector<LogRecord>& records);
  void handle_decision_req(const Msg& m);
  void handle_decision(const Msg& m);
  void handle_ack_req(const Msg& m);
  void maybe_finish_recovery();
  void arm_worker_retry(TxnId id, MsgType ask);

  // ---- shared helpers ----
  void send(NodeId to, Msg m, bool extra, bool critical);
  void send_decision_round(CoordTxn& ct, MsgType type);
  [[nodiscard]] LogRecord state_record(RecordType t, TxnId txn) const;
  /// ENDED with the outcome in the payload.  A coordinator writes ENDED for
  /// both outcomes, and because the write is lazy it can land *after* the
  /// checkpoint truncated the transaction — leaving ENDED as the only
  /// surviving record.  Recovery must not guess the outcome from its bare
  /// presence (an aborted transaction misread as committed lets a zombie
  /// prepared worker commit — an atomicity violation the chaos checkers
  /// catch), so the record carries it.
  [[nodiscard]] LogRecord ended_record(TxnId txn, TxnOutcome outcome) const;
  [[nodiscard]] LogRecord update_record(TxnId txn,
                                        const std::vector<Operation>& ops) const;
  [[nodiscard]] static LockMode mode_for(const std::vector<Operation>& ops,
                                         ObjectId obj);
  [[nodiscard]] std::vector<ObjectId> sorted_objects(
      const std::vector<Operation>& ops) const;
  /// Allocation-free variant: refills `out` in place, reusing its capacity.
  void sorted_objects_into(const std::vector<Operation>& ops,
                           std::vector<ObjectId>& out) const;
  void record_accesses(TxnId txn, const std::vector<Operation>& ops);
  [[nodiscard]] TxnId make_txn_id();
  [[nodiscard]] CoordTxn* coord_of(TxnId id);
  [[nodiscard]] WorkTxn* work_of(TxnId id);
  void run_local_fastpath(TxnId id);

  // ---- pooled txn-state lifecycle ----
  // acquire a reset object from the pool and index it; the id must be new.
  CoordTxn& new_coord(TxnId id);
  WorkTxn& new_work(TxnId id);
  // unindex and park the object (capacity kept) for the next transaction.
  void destroy_coord(TxnId id);
  void destroy_work(TxnId id);

  Env& env_;
  NodeId self_;
  ProtocolKind proto_;
  AcpConfig cfg_;
  Transport& net_;
  LogWriter& wal_;
  LockManager& locks_;
  MetaStore& store_;
  SharedStorage& storage_;
  StatsRegistry& stats_;
  TraceRecorder& trace_;
  FencingService* fencing_;
  HistoryRecorder* history_;
  obs::PhaseLog* phases_;  // observability side-channel; null = disabled

  // Phase-boundary annotation for the span assembler (docs/OBSERVABILITY.md
  // §3).  Off by default and never feeds trace_, so the determinism hash
  // and the hot path are untouched: one pointer compare when disabled.
  void phase_mark(TxnId id, obs::PhaseId p, bool enter) {
    if (phases_ != nullptr) {
      phases_->log(env_.now(), self_, id, p, enter);
    }
  }

  bool crashed_ = false;
  bool recovering_ = false;  // until every recovered txn reaches a decision
  bool scanning_ = false;    // until the reboot log scan has been processed
  std::deque<Envelope> deferred_msgs_;  // arrived while scanning
  std::size_t recovery_outstanding_ = 0;
  std::function<void()> recovery_done_cb_;
  std::uint64_t next_local_txn_ = 0;
  std::uint64_t crash_epoch_ = 0;

  // Hot-path txn tables: open-addressing id → pooled-object pointer.  The
  // pools park finished CoordTxn/WorkTxn bodies with their vectors'
  // capacity intact, so steady-state coordination never touches the heap.
  FlatMap<TxnId, CoordTxn*> coord_;
  FlatMap<TxnId, WorkTxn*> work_;
  FlatMap<TxnId, TxnOutcome> finished_;
  Pool<CoordTxn> coord_pool_;
  Pool<WorkTxn> work_pool_;
  std::deque<std::pair<Transaction, ClientCallback>> queued_submissions_;
  std::unordered_set<NodeId> suspected_;
  // Fencing recoveries batched per worker: one STONITH + one log scan
  // serves every transaction blocked on that worker.
  std::unordered_map<NodeId, std::vector<TxnId>> fence_waiters_;

  Histogram latency_;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;

  // Hot-path counter handles (lazy-bound; see stats/counters.h).
  Counter c_msg_total_;
  Counter c_msgs_extra_;
  Counter c_committed_;
  Counter c_aborted_;
  // One per NamespaceOpKind, indexed by the enum value.
  Counter c_submitted_[4];
};

}  // namespace opc
