// Simulated log device.
//
// The paper models stable storage by a single figure: the latency of a log
// write is the block size divided by the device bandwidth (400 KB/s in the
// evaluation; the footnote motivates folding seek/rotational costs into
// that one number because shared-storage access is highly random).  Disk
// reproduces that model and adds the queueing behaviour that matters when
// 100 transactions hammer one log partition: requests are serviced strictly
// FIFO, one at a time, so concurrent forced writes wait for the device.
//
// Crash semantics — on owner crash the WAL layer calls cancel_owner():
// queued requests vanish (the data never reached the device) and the
// in-service request is aborted without side effects (its completion
// callback never fires, so the record is not durable).  "Durable" is
// defined as "the completion callback ran", full stop.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "env/env.h"
#include "net/types.h"
#include "sim/inline_callback.h"
#include "sim/trace.h"
#include "stats/counters.h"

namespace opc {

struct DiskConfig {
  double bytes_per_second = 400.0 * 1024.0;  // paper's 400 KB/s
  Duration fixed_latency = Duration::zero(); // per-op overhead, if any
};

class Disk {
 public:
  using Completion = InlineCallback<void(), kInlineCallbackBytes>;

  Disk(Env& env, std::string name, DiskConfig cfg, StatsRegistry& stats,
       TraceRecorder& trace)
      : env_(env), name_(std::move(name)), cfg_(cfg), stats_(stats),
        trace_(trace),
        sn_writes_("disk." + name_ + ".writes"),
        sn_reads_("disk." + name_ + ".reads"),
        sn_completed_("disk." + name_ + ".completed"),
        sn_cancelled_("disk." + name_ + ".cancelled"),
        sn_aborted_("disk." + name_ + ".aborted_in_service"),
        c_writes_(stats, sn_writes_),
        c_reads_(stats, sn_reads_),
        c_completed_(stats, sn_completed_),
        c_cancelled_(stats, sn_cancelled_),
        c_aborted_(stats, sn_aborted_) {}

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Enqueues a write of `size_bytes` on behalf of `owner`.  `on_durable`
  /// fires exactly when the data is stable; it never fires if the owner is
  /// cancelled first.
  void write(NodeId owner, std::uint64_t size_bytes, std::string kind,
             Completion on_durable);

  /// Enqueues a read of `size_bytes` (used for recovery-time log scans).
  void read(NodeId owner, std::uint64_t size_bytes, std::string kind,
            Completion on_done);

  /// Drops every pending and in-service request from `owner` (crash/fence).
  /// Their completions never fire.
  void cancel_owner(NodeId owner);

  /// Service time for a request of the given size under this configuration,
  /// including any active degradation.
  [[nodiscard]] Duration service_time(std::uint64_t size_bytes) const {
    const Duration base =
        cfg_.fixed_latency +
        Duration::from_seconds_f(static_cast<double>(size_bytes) /
                                 cfg_.bytes_per_second);
    if (degrade_factor_ == 1.0) return base;
    return Duration::from_seconds_f(base.to_seconds_f() * degrade_factor_);
  }

  /// Chaos hook: multiplies service times by `factor` (>= 1 slows the
  /// device down, e.g. a failing or contended spindle) until reset to 1.
  /// Applies to requests *started* after the call; the in-service transfer
  /// keeps its original completion time.
  void set_degrade_factor(double factor) {
    SIM_CHECK(factor > 0.0);
    degrade_factor_ = factor;
  }
  [[nodiscard]] double degrade_factor() const { return degrade_factor_; }

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] bool busy() const { return in_service_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const DiskConfig& config() const { return cfg_; }

  /// Total simulated time the device spent servicing requests.
  [[nodiscard]] Duration busy_time() const { return busy_time_; }

 private:
  struct Request {
    NodeId owner;
    std::uint64_t size;
    std::string kind;
    bool is_read;
    Completion done;
    std::uint64_t id;
  };

  void maybe_start();
  void finish(std::uint64_t id);

  Env& env_;
  std::string name_;
  DiskConfig cfg_;
  StatsRegistry& stats_;
  TraceRecorder& trace_;
  // Counter names are composed from name_ once; Counter holds a view into
  // them, so they must live as long as the counters below.
  const std::string sn_writes_;
  const std::string sn_reads_;
  const std::string sn_completed_;
  const std::string sn_cancelled_;
  const std::string sn_aborted_;
  Counter c_writes_;
  Counter c_reads_;
  Counter c_completed_;
  Counter c_cancelled_;
  Counter c_aborted_;
  std::deque<Request> queue_;
  double degrade_factor_ = 1.0;
  bool in_service_ = false;
  std::uint64_t in_service_id_ = 0;
  NodeId in_service_owner_;
  bool in_service_cancelled_ = false;
  SimTime service_started_ = SimTime::zero();
  Duration busy_time_ = Duration::zero();
  std::uint64_t next_id_ = 1;
  // Retained across cancel: completion of the current (possibly cancelled)
  // request is found by id.
  Completion in_service_done_;
  std::string in_service_kind_;
};

}  // namespace opc
