#include "storage/disk.h"

#include <utility>

namespace opc {

void Disk::write(NodeId owner, std::uint64_t size_bytes, std::string kind,
                 Completion on_durable) {
  SIM_CHECK(on_durable != nullptr);
  c_writes_.add();
  queue_.push_back(Request{owner, size_bytes, std::move(kind), /*is_read=*/false,
                           std::move(on_durable), next_id_++});
  maybe_start();
}

void Disk::read(NodeId owner, std::uint64_t size_bytes, std::string kind,
                Completion on_done) {
  SIM_CHECK(on_done != nullptr);
  c_reads_.add();
  queue_.push_back(Request{owner, size_bytes, std::move(kind), /*is_read=*/true,
                           std::move(on_done), next_id_++});
  maybe_start();
}

void Disk::cancel_owner(NodeId owner) {
  std::size_t dropped = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->owner == owner) {
      it = queue_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (in_service_ && in_service_owner_ == owner && !in_service_cancelled_) {
    // The transfer aborts mid-stream: the device stays "busy" until the
    // scheduled finish event (a sub-millisecond detail), but the completion
    // is suppressed so the record is not durable.
    in_service_cancelled_ = true;
    ++dropped;
  }
  if (dropped > 0) {
    c_cancelled_.add(static_cast<std::int64_t>(dropped));
  }
}

void Disk::maybe_start() {
  if (in_service_ || queue_.empty()) return;
  Request req = std::move(queue_.front());
  queue_.pop_front();

  in_service_ = true;
  in_service_id_ = req.id;
  in_service_owner_ = req.owner;
  in_service_cancelled_ = false;
  in_service_done_ = std::move(req.done);
  in_service_kind_ = req.kind;
  service_started_ = env_.now();

  if (trace_.active()) {
    trace_.record(env_.now(), TraceKind::kLogForceStart, name_,
                  req.kind + (req.is_read ? " [read]" : ""));
  }
  const Duration svc = service_time(req.size);
  const std::uint64_t id = req.id;
  env_.schedule_after(svc, [this, id] { finish(id); });
}

void Disk::finish(std::uint64_t id) {
  SIM_CHECK(in_service_ && in_service_id_ == id);
  busy_time_ += env_.now() - service_started_;
  const bool cancelled = in_service_cancelled_;
  Completion done = std::move(in_service_done_);
  const std::string kind = std::move(in_service_kind_);
  in_service_ = false;
  in_service_done_ = nullptr;

  if (!cancelled) {
    if (trace_.active()) {
      trace_.record(env_.now(), TraceKind::kLogForceDone, name_, kind);
    }
    c_completed_.add();
    done();
  } else {
    c_aborted_.add();
  }
  maybe_start();
}

}  // namespace opc
