// Lightweight invariant checking for the simulation core.
//
// The simulator is deterministic and single-threaded; an invariant violation
// is always a programming error, never an environmental condition, so we
// abort with a readable message instead of throwing.  SIM_CHECK stays active
// in release builds: simulation results are only trustworthy if the model's
// invariants were verified while producing them.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace opc {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "SIM_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace opc

#define SIM_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) [[unlikely]] {                                      \
      ::opc::check_failed(#expr, __FILE__, __LINE__, nullptr);       \
    }                                                                \
  } while (false)

#define SIM_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) [[unlikely]] {                                      \
      ::opc::check_failed(#expr, __FILE__, __LINE__, (msg));         \
    }                                                                \
  } while (false)
