// Small-buffer-optimized, move-only callback for the simulation hot path.
//
// The simulator dispatches tens of millions of events per wall-clock second;
// with std::function every schedule whose capture exceeds the library's tiny
// SBO window (typically 16 bytes) costs a heap allocation plus a matching
// free at dispatch.  InlineCallback widens that window to `InlineBytes`
// (48 by default via Simulator::Callback — enough for a `this` pointer, a
// couple of ids and an epoch, or one boxed payload pointer) and drops the
// copyability requirement, so move-only captures such as
// std::unique_ptr<Envelope> work directly.
//
// Sizing rule for callers (DESIGN.md §9): keep captures at or under
// InlineBytes.  Capture pointers/ids, not value payloads; box anything big
// in a unique_ptr.  `stores_inline<decltype(lambda)>()` lets hot callers
// static_assert that they stayed on the allocation-free path.  Oversized or
// throwing-move callables still work — they transparently fall back to one
// heap allocation, exactly like std::function.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace opc {

/// The repo-wide inline-capture budget: Simulator::Callback and
/// Env::Callback both use it, so a callback built for one executor stays
/// allocation-free on the other.
inline constexpr std::size_t kInlineCallbackBytes = 48;

template <typename Signature, std::size_t InlineBytes>
class InlineCallback;  // only the void() specialization exists today

template <std::size_t InlineBytes>
class InlineCallback<void(), InlineBytes> {
 public:
  InlineCallback() = default;
  InlineCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (stores_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineCallback(InlineCallback&& o) noexcept { move_from(o); }
  InlineCallback& operator=(InlineCallback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InlineCallback& c, std::nullptr_t) {
    return c.ops_ == nullptr;
  }
  friend bool operator!=(const InlineCallback& c, std::nullptr_t) {
    return c.ops_ != nullptr;
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when a callable of type Fn lives in the inline buffer (the
  /// allocation-free path); false when it would be boxed on the heap.
  template <typename Fn>
  [[nodiscard]] static constexpr bool stores_inline() {
    using D = std::decay_t<Fn>;
    return sizeof(D) <= InlineBytes && alignof(D) <= kBufAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  // Hand-rolled vtable: one static Ops per erased type, three operations.
  struct Ops {
    void (*invoke)(void* buf);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void* buf);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* buf) { std::launder(reinterpret_cast<Fn*>(buf))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* buf) { (**std::launder(reinterpret_cast<Fn**>(buf)))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* buf) { delete *std::launder(reinterpret_cast<Fn**>(buf)); },
  };

  void move_from(InlineCallback& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  // Pointer alignment, not max_align_t: it keeps sizeof at InlineBytes + 8
  // (so a 48-byte buffer yields a 56-byte callback and a 64-byte Simulator
  // slot).  The rare over-aligned callable takes the heap path instead.
  static constexpr std::size_t kBufAlign = alignof(void*);
  alignas(kBufAlign) unsigned char buf_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace opc

/// Asserts, at compile time, that the lambda/callable `cb` fits the
/// repo-wide inline window (kInlineCallbackBytes) of the executor callback
/// type — i.e. that scheduling it allocates nothing.  Use at every hot
/// schedule site instead of hand-rolling the static_assert.
#define OPC_ASSERT_INLINE_CB(cb)                                             \
  static_assert(                                                             \
      ::opc::InlineCallback<void(), ::opc::kInlineCallbackBytes>::           \
          template stores_inline<decltype(cb)>(),                            \
      #cb " must stay on the allocation-free inline-callback path")
