#include "sim/rng.h"

#include <cmath>

namespace opc {

Duration Rng::exponential(Duration mean) {
  SIM_CHECK(mean.count_nanos() >= 0);
  // Inverse-CDF sampling; clamp the uniform away from 0 so log() is finite.
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  const double draw = -std::log(u) * static_cast<double>(mean.count_nanos());
  return Duration::nanos(static_cast<std::int64_t>(draw));
}

}  // namespace opc
