#include "sim/simulator.h"

#include <utility>

namespace opc {

EventHandle Simulator::schedule_at(SimTime when, Callback cb) {
  SIM_CHECK_MSG(when >= now_, "cannot schedule into the past");
  SIM_CHECK(cb != nullptr);
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id, std::move(cb)});
  pending_.insert(id);
  return EventHandle{id};
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid()) return false;
  // An event is cancellable only while it is still queued.  Cancellation is
  // lazy: the id moves from `pending_` to `cancelled_`, and the queue entry
  // becomes a tombstone that is discarded when it reaches the front.
  auto it = pending_.find(h.id_);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  cancelled_.insert(h.id_);
  return true;
}

bool Simulator::pop_live(Entry& out) {
  while (!queue_.empty()) {
    if (auto it = cancelled_.find(queue_.top().id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    out = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    return true;
  }
  return false;
}

void Simulator::dispatch(Entry& e) {
  pending_.erase(e.id);
  now_ = e.when;
  ++dispatched_;
  e.cb();
}

bool Simulator::step() {
  Entry e;
  if (!pop_live(e)) return false;
  dispatch(e);
  return true;
}

std::uint64_t Simulator::run() {
  SIM_CHECK_MSG(!running_, "Simulator::run is not reentrant");
  running_ = true;
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  running_ = false;
  return n;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  SIM_CHECK_MSG(!running_, "Simulator::run is not reentrant");
  SIM_CHECK(deadline >= now_);
  running_ = true;
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_) {
    Entry e;
    if (!pop_live(e)) break;
    if (e.when > deadline) {
      // Put it back untouched (its id is still in pending_); it fires in a
      // later run.
      queue_.push(std::move(e));
      break;
    }
    dispatch(e);
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  running_ = false;
  return n;
}

}  // namespace opc
