#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace opc {

void Simulator::grow_slab() {
  SIM_CHECK_MSG((chunks_.size() << kChunkShift) <= kSlotMask,
                "slot space exhausted");
  chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  cap_slots_ = static_cast<std::uint32_t>(chunks_.size() << kChunkShift);
  pos_.resize(cap_slots_);
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid() || h.slot_ >= n_slots_) return false;
  Slot& sl = slot(h.slot_);
  // A recycled (or already-fired) slot has a different generation; the
  // handle is stale and the cancel is a no-op.
  if (sl.gen != h.gen_) return false;
  remove_at(pos_[h.slot_]);
  release(h.slot_);
  return true;
}

void Simulator::sift_down(std::size_t pos, HeapNode n) {
  const std::size_t size = heap_size_;
  for (;;) {
    const std::size_t first = pos * kArity + 1;
    if (first >= size) break;
    // All four children of `pos` live in group pos+1 — one aligned line.
    const HeapNode* ch = heap_[pos + 1].n;
    const std::size_t nch = std::min(kArity, size - first);
    std::size_t best = 0;
    for (std::size_t c = 1; c < nch; ++c) {
      if (before(ch[c], ch[best])) best = c;
    }
    if (!before(ch[best], n)) break;
    node(pos) = ch[best];
    pos_[slot_of(node(pos))] = static_cast<std::uint32_t>(pos);
    pos = first + best;
  }
  node(pos) = n;
  pos_[slot_of(n)] = static_cast<std::uint32_t>(pos);
}

void Simulator::sift_down_from_root(HeapNode n) {
  const std::size_t size = heap_size_;
  std::size_t pos = 0;
  // Pull the min child up at every level without comparing against `n`.
  for (;;) {
    const std::size_t first = pos * kArity + 1;
    if (first >= size) break;
    const HeapNode* ch = heap_[pos + 1].n;
    const std::size_t nch = std::min(kArity, size - first);
    std::size_t best = 0;
    for (std::size_t c = 1; c < nch; ++c) {
      if (before(ch[c], ch[best])) best = c;
    }
    node(pos) = ch[best];
    pos_[slot_of(node(pos))] = static_cast<std::uint32_t>(pos);
    pos = first + best;
  }
  // `n` usually belongs at (or next to) the leaf hole; walk it back up the
  // few levels it overshot.
  sift_up(pos, n);
}

void Simulator::remove_at(std::size_t pos) {
  const HeapNode tail = node(heap_size_ - 1);
  --heap_size_;
  if (pos == heap_size_) return;  // removed the tail itself
  // The substitute may belong either above or below `pos`; exactly one of
  // these walks moves it (the other is a single comparison).
  if (pos > 0 && before(tail, node((pos - 1) / kArity))) {
    sift_up(pos, tail);
  } else {
    sift_down(pos, tail);
  }
}

void Simulator::dispatch_top() {
  const HeapNode top = node(0);
  const HeapNode tail = node(heap_size_ - 1);
  --heap_size_;
  if (heap_size_ != 0) sift_down_from_root(tail);
  now_ = SimTime::from_nanos(top.when_ns);
  // Move the callback out and recycle the slot *before* invoking: the
  // callback is free to schedule new events into the slot it occupied.
  const std::uint32_t s = slot_of(top);
  Callback cb = std::move(slot(s).cb);
  release(s);
  ++dispatched_;
  cb();
}

bool Simulator::step() {
  if (heap_size_ == 0) return false;
  dispatch_top();
  return true;
}

std::uint64_t Simulator::run() {
  SIM_CHECK_MSG(!running_, "Simulator::run is not reentrant");
  running_ = true;
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && heap_size_ != 0) {
    dispatch_top();
    ++n;
  }
  running_ = false;
  return n;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  SIM_CHECK_MSG(!running_, "Simulator::run is not reentrant");
  SIM_CHECK(deadline >= now_);
  running_ = true;
  stopped_ = false;
  const std::int64_t deadline_ns = deadline.count_nanos();
  std::uint64_t n = 0;
  // Peek at the root: a too-late head stays queued untouched, so a deadline
  // probe at a quiescent boundary costs one comparison, not a pop/re-push.
  while (!stopped_ && heap_size_ != 0 && node(0).when_ns <= deadline_ns) {
    dispatch_top();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  running_ = false;
  return n;
}

}  // namespace opc
