// Structured tracing of simulated histories.
//
// Every interesting action in the cluster (message send/receive, forced or
// lazy log write, lock transition, crash, recovery step…) can be recorded
// as a TraceEvent.  Traces serve three purposes:
//
//   1. Debugging — a human-readable interleaved history of a run.
//   2. Reproducing the paper's Figures 2–5 — each figure is a message
//      sequence chart, which we re-derive from the trace of one
//      distributed CREATE (see bench/bench_fig2to5_timelines.cc).
//   3. Determinism checking — a FNV-1a hash over the full trace must be
//      identical across runs with the same seed (tests/sim/*).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace opc {

/// Classifies a trace event; kinds are stable so trace hashes are stable.
enum class TraceKind : std::uint8_t {
  kMessageSend,
  kMessageRecv,
  kMessageDrop,
  kLogForceStart,
  kLogForceDone,
  kLogLazyWrite,
  kLockWait,
  kLockGrant,
  kLockRelease,
  kTxnBegin,
  kTxnCommit,
  kTxnAbort,
  kCrash,
  kReboot,
  kRecoveryStep,
  kFence,
  kClientReply,
  kInfo,
};

/// Stable short label for a trace kind ("SEND", "FORCE", ...).
[[nodiscard]] std::string_view trace_kind_name(TraceKind k);

/// One recorded action.
struct TraceEvent {
  SimTime at;
  TraceKind kind = TraceKind::kInfo;
  std::string actor;   // who performed the action ("mds0", "disk.mds1", ...)
  std::string detail;  // free-form, but deterministic for a given history
  std::uint64_t txn = 0;  // transaction id, 0 if not transaction-scoped
};

/// Collects TraceEvents in arrival (== simulated time) order.
///
/// Recording is cheap but not free; large throughput experiments construct
/// the recorder disabled and only the timeline/debug benches enable it.
class TraceRecorder {
 public:
  /// Live observer of events as they are recorded.  The chaos nemesis uses
  /// this to key fault injection off history points ("crash the worker
  /// right after its first forced WAL flush").  Observers fire even when
  /// storage is disabled; they must not re-enter the recorder.
  using Observer = std::function<void(const TraceEvent&)>;

  explicit TraceRecorder(bool enabled = true) : enabled_(enabled) {}

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// True when record() would do anything.  Hot paths that build event
  /// strings (actor/detail concatenation) check this first so a disabled
  /// recorder costs nothing — throughput runs would otherwise pay a string
  /// allocation per event just to have record() discard it.
  [[nodiscard]] bool active() const { return enabled_ || observer_ != nullptr; }

  /// Installs (or with nullptr, removes) the single live observer.
  void set_observer(Observer obs) { observer_ = std::move(obs); }

  void record(SimTime at, TraceKind kind, std::string actor,
              std::string detail, std::uint64_t txn = 0) {
    if (!enabled_ && !observer_) return;
    TraceEvent ev{at, kind, std::move(actor), std::move(detail), txn};
    if (observer_) observer_(ev);
    if (enabled_) events_.push_back(std::move(ev));
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// FNV-1a hash of the entire trace; equal seeds must yield equal hashes.
  [[nodiscard]] std::uint64_t history_hash() const;

  /// Events for one transaction, in order.
  [[nodiscard]] std::vector<TraceEvent> for_txn(std::uint64_t txn) const;

  /// Renders the trace as aligned text lines ("[  12.300ms] SEND  mds0  ...").
  [[nodiscard]] std::string render() const;

 private:
  std::vector<TraceEvent> events_;
  Observer observer_;
  bool enabled_;
};

}  // namespace opc
