// Strongly typed simulated time.
//
// The simulation clock counts integer nanoseconds from the start of the run.
// Two distinct vocabulary types keep points and spans from being mixed up:
//
//   * SimTime  — a point on the simulated time line ("at 12.3 ms").
//   * Duration — a span between two points ("20 ms of disk service").
//
// Both are trivially copyable 64-bit values; all arithmetic is constexpr.
// 2^63 ns ≈ 292 simulated years, far beyond any experiment in this repo.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace opc {

/// A span of simulated time, in integer nanoseconds.  May be negative as an
/// intermediate value (e.g. when subtracting time points), though the
/// simulator never schedules into the past.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanos(std::int64_t n) {
    return Duration(n);
  }
  [[nodiscard]] static constexpr Duration micros(std::int64_t us) {
    return Duration(us * 1000);
  }
  [[nodiscard]] static constexpr Duration millis(std::int64_t ms) {
    return Duration(ms * 1000 * 1000);
  }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) {
    return Duration(s * 1000 * 1000 * 1000);
  }
  /// Builds a duration from a floating point number of seconds, rounding to
  /// the nearest nanosecond.  Handy for bandwidth-derived service times.
  [[nodiscard]] static constexpr Duration from_seconds_f(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration(0); }
  [[nodiscard]] static constexpr Duration max() {
    return Duration(INT64_MAX);
  }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_micros_f() const { return ns_ / 1e3; }
  [[nodiscard]] constexpr double to_millis_f() const { return ns_ / 1e6; }
  [[nodiscard]] constexpr double to_seconds_f() const { return ns_ / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr Duration operator-() const { return Duration(-ns_); }

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// A point on the simulated time line, in integer nanoseconds since the
/// start of the simulation.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime zero() { return SimTime(0); }
  [[nodiscard]] static constexpr SimTime from_nanos(std::int64_t ns) {
    return SimTime(ns);
  }
  [[nodiscard]] static constexpr SimTime max() { return SimTime(INT64_MAX); }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_micros_f() const { return ns_ / 1e3; }
  [[nodiscard]] constexpr double to_millis_f() const { return ns_ / 1e6; }
  [[nodiscard]] constexpr double to_seconds_f() const { return ns_ / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(Duration d) const {
    return SimTime(ns_ + d.count_nanos());
  }
  constexpr SimTime operator-(Duration d) const {
    return SimTime(ns_ - d.count_nanos());
  }
  constexpr Duration operator-(SimTime o) const {
    return Duration::nanos(ns_ - o.ns_);
  }
  constexpr SimTime& operator+=(Duration d) {
    ns_ += d.count_nanos();
    return *this;
  }

 private:
  explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// Renders a time point as a compact human-readable string ("12.345ms").
[[nodiscard]] std::string to_string(SimTime t);
/// Renders a duration as a compact human-readable string ("20ms", "1.5us").
[[nodiscard]] std::string to_string(Duration d);

}  // namespace opc
