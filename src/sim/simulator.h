// The discrete-event simulation kernel.
//
// A Simulator owns an indexed 4-ary min-heap of (time, sequence) ordered
// events.  Events scheduled for the same instant fire in scheduling order,
// which — together with the deterministic RNG — makes every simulated
// history a pure function of its configuration and seed.
//
// Hot-path layout (DESIGN.md §9):
//   * Events live in a slab-allocated pool of fixed-size slots; the heap is
//     a flat array of 16-byte (when, seq|slot) nodes stored as 64-byte
//     aligned groups of four siblings, so each level of a 4-ary sift reads
//     exactly one cache line in ~half the tree height of a binary heap.
//   * A dense side array maps slot -> heap position (for O(log n) true
//     removal on cancel — no tombstones); each slot carries a generation
//     counter (bumped on free, so stale EventHandles can never touch a
//     recycled slot).
//   * Callbacks are InlineCallback<void(), 48>: captures up to 48 bytes run
//     through schedule→dispatch with zero heap allocations.
//
// This replaces the OMNeT++ / ACID Sim Tools substrate the paper used: all
// modules (network links, disks, lock managers, protocol state machines)
// interact exclusively by scheduling callbacks on one shared Simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/check.h"
#include "sim/inline_callback.h"
#include "sim/time.h"

namespace opc {

class Simulator;

/// Identifies a scheduled event so it can be cancelled.  Handles are cheap
/// value types; cancelling an already-fired or already-cancelled event is a
/// harmless no-op, which keeps timeout bookkeeping simple for callers.
/// Internally a handle is (slot index, generation): the slot is recycled
/// after fire/cancel with its generation bumped, so a stale handle simply
/// fails the generation check.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle was ever bound to a scheduled event.
  [[nodiscard]] bool valid() const { return gen_ != 0; }

 private:
  friend class Simulator;
  friend class SimEnv;  // converts to/from the executor-neutral TimerHandle
  EventHandle(std::uint32_t slot, std::uint32_t gen)
      : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;  // live slot generations are never 0
};

/// Single-threaded deterministic discrete-event simulator.
class Simulator {
 public:
  /// 48 inline bytes: a `this` pointer plus a couple of 64-bit ids and an
  /// epoch, or a std::function client callback plus an id — every
  /// high-rate caller in src/net, src/wal and src/acp fits (they
  /// static_assert it).  Larger captures fall back to one heap allocation.
  using Callback = InlineCallback<void(), kInlineCallbackBytes>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.  Only advances inside run()/step().
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` to fire `delay` from now.  Negative delays are a bug.
  EventHandle schedule_after(Duration delay, Callback cb) {
    SIM_CHECK_MSG(delay.count_nanos() >= 0, "cannot schedule into the past");
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedules `cb` to fire at absolute time `when` (>= now()).  Defined
  /// inline below: schedule sits on the dominant simulation cycle and must
  /// inline into callers across translation units.
  EventHandle schedule_at(SimTime when, Callback cb);

  /// Cancels a pending event with true removal from the heap (no tombstone
  /// churn).  No-op if the event already fired or was already cancelled.
  /// Returns true if something was actually cancelled.
  bool cancel(EventHandle h);

  /// Runs until the event queue drains or stop() is called.
  /// Returns the number of events dispatched.
  std::uint64_t run();

  /// Runs until the queue drains, stop() is called, or simulated time would
  /// pass `deadline`; the clock is left at min(deadline, last event time).
  /// The deadline probe peeks at the heap root — a quiescent boundary check
  /// is O(1), with no pop/re-push of the too-late entry.
  std::uint64_t run_until(SimTime deadline);

  /// Convenience: run_until(now() + d).
  std::uint64_t run_for(Duration d) { return run_until(now_ + d); }

  /// Dispatches exactly one event if available.  Returns false on an empty
  /// queue.
  bool step();

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  /// True when no events remain.
  [[nodiscard]] bool idle() const { return heap_size_ == 0; }

  /// Number of events pending dispatch.
  [[nodiscard]] std::size_t pending_events() const { return heap_size_; }

  /// Total events dispatched over the simulator's lifetime.
  [[nodiscard]] std::uint64_t dispatched_events() const { return dispatched_; }

 private:
  /// One pooled event.  Slots live in fixed-size chunks (stable addresses,
  /// so growth never move-relocates callbacks) and are recycled through a
  /// free list; `gen` is bumped on every release so outstanding handles
  /// become inert.
  /// Field order matters: the 56-byte callback first, then the generation
  /// in its tail padding — sizeof(Slot) is exactly one 64-byte cache line,
  /// so a dispatch touches one line per slot.  The slot's current heap
  /// position deliberately does NOT live here: sift loops store it for
  /// every displaced element, and putting those stores in the dense pos_
  /// side array (16 entries per cache line) instead of scattered 64-byte
  /// slots keeps a deep sift's write set inside L1/L2.
  struct Slot {
    Callback cb;
    std::uint32_t gen = 1;
  };
  static_assert(sizeof(Slot) <= 64, "Slot must stay within one cache line");

  /// One heap element, 16 bytes so a node's four children are exactly one
  /// 64-byte cache line.  The sort key (when, seq) is duplicated here so
  /// the sift loops compare against contiguous heap memory instead of
  /// chasing slot pointers; seq and the slot index share one word
  /// (seq in the high 40 bits, slot in the low 24).  Comparing the packed
  /// word IS comparing seq: sequence numbers are unique, so the slot bits
  /// never decide.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask =
      (std::uint64_t{1} << kSlotBits) - 1;
  struct HeapNode {
    std::int64_t when_ns;
    std::uint64_t key;  // (seq << kSlotBits) | slot
  };
  static constexpr std::uint32_t slot_of(const HeapNode& n) {
    return static_cast<std::uint32_t>(n.key & kSlotMask);
  }
  static bool before(const HeapNode& a, const HeapNode& b) {
    if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
    return a.key < b.key;
  }

  // 4-ary heap indexing: children of i are 4i+1..4i+4, parent is (i-1)/4.
  // Nodes are stored in 64-byte-aligned groups of four with a 3-node front
  // pad (logical index l lives at physical l+3), which lands every sibling
  // group {4l+1..4l+4} at physical {4l+4..4l+7} — exactly group l+1, one
  // aligned cache line.  A sift level therefore reads one line, not two.
  struct alignas(64) HeapGroup {
    HeapNode n[4];
  };
  static constexpr std::size_t kHeapPad = 3;
  [[nodiscard]] HeapNode& node(std::size_t l) {
    const std::size_t p = l + kHeapPad;
    return heap_[p >> 2].n[p & 3];
  }
  [[nodiscard]] const HeapNode& node(std::size_t l) const {
    const std::size_t p = l + kHeapPad;
    return heap_[p >> 2].n[p & 3];
  }
  static constexpr std::size_t kArity = 4;
  // 256 slots (16KB) per chunk: large enough that growth is rare, small
  // enough that a freshly constructed Simulator's first schedule — which
  // builds one whole chunk — stays cheap.  Short-lived simulators matter:
  // the chaos explorer spins up thousands of them.
  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  [[nodiscard]] Slot& slot(std::uint32_t s) {
    return chunks_[s >> kChunkShift][s & (kChunkSize - 1)];
  }
  /// Takes a slot from the free list, growing the slab by a chunk if empty.
  std::uint32_t acquire_slot() {
    if (!free_.empty()) {
      const std::uint32_t s = free_.back();
      free_.pop_back();
      return s;
    }
    if (n_slots_ == cap_slots_) grow_slab();
    return n_slots_++;
  }
  void grow_slab();  // cold path: appends one chunk
  /// Returns the slot to the pool: destroys its callback, bumps the
  /// generation, pushes it on the free list.
  void release(std::uint32_t s) {
    Slot& sl = slot(s);
    sl.cb.reset();
    ++sl.gen;
    free_.push_back(s);
  }

  /// Places `n` at `pos`, walking it toward the root/leaves as needed; both
  /// update pos_ for every displaced element.
  void sift_up(std::size_t pos, HeapNode n) {
    if (pos == heap_size_) {
      if (heap_size_ + kHeapPad + 1 > heap_.size() * kArity) {
        heap_.emplace_back();
      }
      ++heap_size_;
    }
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / kArity;
      if (!before(n, node(parent))) break;
      node(pos) = node(parent);
      pos_[slot_of(node(pos))] = static_cast<std::uint32_t>(pos);
      pos = parent;
    }
    node(pos) = n;
    pos_[slot_of(n)] = static_cast<std::uint32_t>(pos);
  }
  void sift_down(std::size_t pos, HeapNode n);
  /// sift_down specialised for root removal: the substitute comes from the
  /// tail, so it almost always belongs back near the leaves.  Descending
  /// the min-child path first (no compare against `n`) and then nudging
  /// `n` up saves one comparison per level over the classic walk.
  void sift_down_from_root(HeapNode n);
  /// Removes heap_[pos] by re-sifting the tail element into its place.
  void remove_at(std::size_t pos);
  /// Pops the heap root and runs its callback (clock advanced first).
  void dispatch_top();

  std::vector<std::unique_ptr<Slot[]>> chunks_;  // the slab
  std::vector<HeapGroup> heap_;                  // 4-ary min-heap (padded)
  std::size_t heap_size_ = 0;                    // logical node count
  std::vector<std::uint32_t> pos_;               // slot -> heap index
  std::vector<std::uint32_t> free_;              // recycled slot indices
  std::uint32_t n_slots_ = 0;                    // slots ever handed out
  std::uint32_t cap_slots_ = 0;                  // chunks_.size() * kChunkSize
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  bool stopped_ = false;
  bool running_ = false;
};

inline EventHandle Simulator::schedule_at(SimTime when, Callback cb) {
  SIM_CHECK_MSG(when >= now_, "cannot schedule into the past");
  SIM_CHECK(cb != nullptr);
  SIM_CHECK_MSG(next_seq_ < (std::uint64_t{1} << (64 - kSlotBits)),
                "sequence space exhausted");
  const std::uint32_t s = acquire_slot();
  Slot& sl = slot(s);
  sl.cb = std::move(cb);
  sift_up(heap_size_,
          HeapNode{when.count_nanos(), (next_seq_++ << kSlotBits) | s});
  return EventHandle{s, sl.gen};
}

/// Base class for named simulation participants (metadata servers, disks,
/// clients...).  Provides the shared clock and a stable display name.
class Actor {
 public:
  Actor(Simulator& sim, std::string name) : sim_(&sim), name_(std::move(name)) {}
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Simulator& sim() const { return *sim_; }
  [[nodiscard]] SimTime now() const { return sim_->now(); }

 private:
  Simulator* sim_;
  std::string name_;
};

}  // namespace opc
