// The discrete-event simulation kernel.
//
// A Simulator owns a priority queue of (time, sequence) ordered events.
// Events scheduled for the same instant fire in scheduling order, which —
// together with the deterministic RNG — makes every simulated history a
// pure function of its configuration and seed.
//
// This replaces the OMNeT++ / ACID Sim Tools substrate the paper used: all
// modules (network links, disks, lock managers, protocol state machines)
// interact exclusively by scheduling callbacks on one shared Simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/check.h"
#include "sim/time.h"

namespace opc {

class Simulator;

/// Identifies a scheduled event so it can be cancelled.  Handles are cheap
/// value types; cancelling an already-fired or already-cancelled event is a
/// harmless no-op, which keeps timeout bookkeeping simple for callers.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if this handle was ever bound to a scheduled event.
  [[nodiscard]] bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Single-threaded deterministic discrete-event simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.  Only advances inside run()/step().
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` to fire `delay` from now.  Negative delays are a bug.
  EventHandle schedule_after(Duration delay, Callback cb) {
    SIM_CHECK_MSG(delay.count_nanos() >= 0, "cannot schedule into the past");
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedules `cb` to fire at absolute time `when` (>= now()).
  EventHandle schedule_at(SimTime when, Callback cb);

  /// Cancels a pending event.  No-op if the event already fired or was
  /// already cancelled.  Returns true if something was actually cancelled.
  bool cancel(EventHandle h);

  /// Runs until the event queue drains or stop() is called.
  /// Returns the number of events dispatched.
  std::uint64_t run();

  /// Runs until the queue drains, stop() is called, or simulated time would
  /// pass `deadline`; the clock is left at min(deadline, last event time).
  std::uint64_t run_until(SimTime deadline);

  /// Convenience: run_until(now() + d).
  std::uint64_t run_for(Duration d) { return run_until(now_ + d); }

  /// Dispatches exactly one event if available.  Returns false on an empty
  /// queue.
  bool step();

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  /// True when no events remain (cancelled tombstones excluded).
  [[nodiscard]] bool idle() const { return pending_.empty(); }

  /// Number of events pending dispatch.
  [[nodiscard]] std::size_t pending_events() const { return pending_.size(); }

  /// Total events dispatched over the simulator's lifetime.
  [[nodiscard]] std::uint64_t dispatched_events() const { return dispatched_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;  // tie-break: FIFO within an instant
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops the earliest non-cancelled entry into `out`; false if none remain.
  bool pop_live(Entry& out);
  /// Advances the clock to the entry's time and runs its callback.
  void dispatch(Entry& e);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> pending_;    // ids still queued and live
  std::unordered_set<std::uint64_t> cancelled_;  // tombstones awaiting pop
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  bool stopped_ = false;
  bool running_ = false;
};

/// Base class for named simulation participants (metadata servers, disks,
/// clients...).  Provides the shared clock and a stable display name.
class Actor {
 public:
  Actor(Simulator& sim, std::string name) : sim_(&sim), name_(std::move(name)) {}
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Simulator& sim() const { return *sim_; }
  [[nodiscard]] SimTime now() const { return sim_->now(); }

 private:
  Simulator* sim_;
  std::string name_;
};

}  // namespace opc
