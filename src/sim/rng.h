// Deterministic pseudo-random number generation for simulations.
//
// We ship our own generators instead of <random>'s engines because the
// standard does not guarantee identical distribution output across library
// implementations, and reproducibility of a simulated history from its seed
// is a hard requirement (DESIGN.md §6.5).
//
//   * SplitMix64 — tiny seeding/stream-splitting generator.
//   * Xoshiro256StarStar — the main workhorse; fast, 256-bit state, passes
//     BigCrush.  Seeded from SplitMix64 as recommended by its authors.
//
// Rng wraps Xoshiro256StarStar with the distribution helpers the workload
// generators need (uniform ints/doubles, exponential, bernoulli, shuffle).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/check.h"
#include "sim/time.h"

namespace opc {

/// SplitMix64: a 64-bit generator mainly used to expand a single seed into
/// independent streams / wider state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: the repo-wide PRNG.
class Xoshiro256StarStar {
 public:
  explicit Xoshiro256StarStar(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

/// Distribution helpers over Xoshiro256**.  Every consumer of randomness in
/// the simulator owns an Rng derived from the run seed plus a stream id, so
/// adding a consumer never perturbs the draws of existing ones.
class Rng {
 public:
  /// Creates the generator for (seed, stream).  Distinct streams are
  /// statistically independent.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0)
      : gen_(mix(seed, stream)) {}

  /// Raw 64 random bits.
  std::uint64_t next_u64() { return gen_.next(); }

  /// Uniform integer in [lo, hi] (inclusive).  Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    SIM_CHECK(lo <= hi);
    const std::uint64_t range = hi - lo;
    if (range == UINT64_MAX) return gen_.next();
    const std::uint64_t bound = range + 1;
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    std::uint64_t v = gen_.next();
    while (v >= limit) v = gen_.next();
    return lo + v % bound;
  }

  /// Uniform integer in [0, n) — the common indexing form.
  std::size_t index(std::size_t n) {
    SIM_CHECK(n > 0);
    return static_cast<std::size_t>(uniform_u64(0, n - 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Exponentially distributed duration with the given mean; used for open
  /// loop arrival processes and think times.
  Duration exponential(Duration mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  static std::uint64_t mix(std::uint64_t seed, std::uint64_t stream) {
    SplitMix64 sm(seed);
    std::uint64_t s = sm.next();
    // Fold the stream id through a second SplitMix pass so that nearby
    // stream ids do not produce correlated xoshiro seeds.
    SplitMix64 sm2(s ^ (stream * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
    return sm2.next();
  }

  Xoshiro256StarStar gen_;
};

}  // namespace opc
