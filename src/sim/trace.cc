#include "sim/trace.h"

#include <cstdio>

namespace opc {

std::string_view trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kMessageSend: return "SEND";
    case TraceKind::kMessageRecv: return "RECV";
    case TraceKind::kMessageDrop: return "DROP";
    case TraceKind::kLogForceStart: return "FORCE";
    case TraceKind::kLogForceDone: return "FORCED";
    case TraceKind::kLogLazyWrite: return "LAZY";
    case TraceKind::kLockWait: return "LK-WAIT";
    case TraceKind::kLockGrant: return "LK-GRANT";
    case TraceKind::kLockRelease: return "LK-REL";
    case TraceKind::kTxnBegin: return "BEGIN";
    case TraceKind::kTxnCommit: return "COMMIT";
    case TraceKind::kTxnAbort: return "ABORT";
    case TraceKind::kCrash: return "CRASH";
    case TraceKind::kReboot: return "REBOOT";
    case TraceKind::kRecoveryStep: return "RECOVER";
    case TraceKind::kFence: return "FENCE";
    case TraceKind::kClientReply: return "REPLY";
    case TraceKind::kInfo: return "INFO";
  }
  return "?";
}

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}
}  // namespace

std::uint64_t TraceRecorder::history_hash() const {
  std::uint64_t h = kFnvOffset;
  for (const TraceEvent& e : events_) {
    const std::int64_t t = e.at.count_nanos();
    fnv_bytes(h, &t, sizeof(t));
    const auto k = static_cast<std::uint8_t>(e.kind);
    fnv_bytes(h, &k, sizeof(k));
    fnv_bytes(h, e.actor.data(), e.actor.size());
    fnv_bytes(h, e.detail.data(), e.detail.size());
    fnv_bytes(h, &e.txn, sizeof(e.txn));
  }
  return h;
}

std::vector<TraceEvent> TraceRecorder::for_txn(std::uint64_t txn) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.txn == txn) out.push_back(e);
  }
  return out;
}

std::string TraceRecorder::render() const {
  std::string out;
  out.reserve(events_.size() * 64);
  char buf[160];
  for (const TraceEvent& e : events_) {
    std::snprintf(buf, sizeof(buf), "[%12.3fus] %-8s %-12s ",
                  e.at.to_micros_f(),
                  std::string(trace_kind_name(e.kind)).c_str(),
                  e.actor.c_str());
    out += buf;
    out += e.detail;
    if (e.txn != 0) {
      std::snprintf(buf, sizeof(buf), "  (txn %llu)",
                    static_cast<unsigned long long>(e.txn));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace opc
