#include "sim/time.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace opc {
namespace {

std::string format_nanos(std::int64_t ns) {
  char buf[64];
  const std::int64_t abs_ns = ns < 0 ? -ns : ns;
  if (abs_ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", ns / 1e9);
  } else if (abs_ns >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ns / 1e6);
  } else if (abs_ns >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns);
  }
  return buf;
}

}  // namespace

std::string to_string(SimTime t) { return format_nanos(t.count_nanos()); }
std::string to_string(Duration d) { return format_nanos(d.count_nanos()); }

}  // namespace opc
