#include "mds/invariants.h"

#include <algorithm>
#include <map>

namespace opc {

const char* violation_kind_name(InvariantViolation::Kind k) {
  switch (k) {
    case InvariantViolation::Kind::kDanglingDentry: return "DanglingDentry";
    case InvariantViolation::Kind::kOrphanedInode: return "OrphanedInode";
    case InvariantViolation::Kind::kLinkCountMismatch:
      return "LinkCountMismatch";
    case InvariantViolation::Kind::kDuplicateInode: return "DuplicateInode";
    case InvariantViolation::Kind::kDanglingParent: return "DanglingParent";
  }
  return "?";
}

std::vector<InvariantViolation> check_invariants(
    const std::vector<const MetaStore*>& stores,
    const std::vector<ObjectId>& roots) {
  std::vector<InvariantViolation> out;

  // Global inode table and reference counts.
  std::map<ObjectId, Inode> inodes;
  std::map<ObjectId, std::uint32_t> refs;
  for (const MetaStore* s : stores) {
    for (const Inode& ino : s->stable_inodes()) {
      auto [it, inserted] = inodes.emplace(ino.id, ino);
      (void)it;
      if (!inserted) {
        out.push_back({InvariantViolation::Kind::kDuplicateInode,
                       "inode " + std::to_string(ino.id.value()) +
                           " hosted by multiple MDSs"});
      }
    }
  }
  for (const MetaStore* s : stores) {
    for (const auto& [dir, name, child] : s->stable_dentries()) {
      ++refs[child];
      if (!inodes.contains(child)) {
        out.push_back({InvariantViolation::Kind::kDanglingDentry,
                       "dentry (" + std::to_string(dir.value()) + ", \"" +
                           name + "\") -> missing inode " +
                           std::to_string(child.value())});
      }
      if (!inodes.contains(dir)) {
        out.push_back({InvariantViolation::Kind::kDanglingParent,
                       "dentry (" + std::to_string(dir.value()) + ", \"" +
                           name + "\") belongs to a missing directory"});
      }
    }
  }
  for (const auto& [id, ino] : inodes) {
    const bool is_root =
        std::find(roots.begin(), roots.end(), id) != roots.end();
    const std::uint32_t r = refs.contains(id) ? refs.at(id) : 0;
    if (r == 0 && !is_root) {
      out.push_back({InvariantViolation::Kind::kOrphanedInode,
                     "inode " + std::to_string(id.value()) +
                         " has no referencing dentry"});
    }
    if (!is_root && ino.nlink != r) {
      out.push_back({InvariantViolation::Kind::kLinkCountMismatch,
                     "inode " + std::to_string(id.value()) + " nlink=" +
                         std::to_string(ino.nlink) + " but " +
                         std::to_string(r) + " dentries reference it"});
    }
  }
  return out;
}

std::string render_violations(const std::vector<InvariantViolation>& v) {
  std::string out;
  for (const auto& x : v) {
    out += violation_kind_name(x.kind);
    out += ": ";
    out += x.detail;
    out += '\n';
  }
  return out;
}

}  // namespace opc
