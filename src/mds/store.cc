#include "mds/store.h"

#include <algorithm>

#include "sim/check.h"

namespace opc {
namespace {
const std::vector<Operation> kNoOps;
constexpr std::size_t kMaxPooledOps = 32;
}  // namespace

const char* store_status_name(StoreStatus s) {
  switch (s) {
    case StoreStatus::kOk: return "Ok";
    case StoreStatus::kInodeExists: return "InodeExists";
    case StoreStatus::kInodeNotFound: return "InodeNotFound";
    case StoreStatus::kNotADirectory: return "NotADirectory";
    case StoreStatus::kDentryExists: return "DentryExists";
    case StoreStatus::kDentryNotFound: return "DentryNotFound";
    case StoreStatus::kChildMismatch: return "ChildMismatch";
    case StoreStatus::kLinkUnderflow: return "LinkUnderflow";
    case StoreStatus::kDirNotEmpty: return "DirNotEmpty";
  }
  return "?";
}

// --- DentryTable -----------------------------------------------------------

MetaStore::DentryTable::Entries::const_iterator
MetaStore::DentryTable::lower_bound(const Entries& es, std::string_view name) {
  return std::lower_bound(
      es.begin(), es.end(), name,
      [](const std::pair<std::string, ObjectId>& e, std::string_view n) {
        return e.first < n;
      });
}

const ObjectId* MetaStore::DentryTable::find(ObjectId dir,
                                             std::string_view name) const {
  const Entries* es = dirs_.find(dir.value());
  if (es == nullptr) return nullptr;
  auto it = lower_bound(*es, name);
  if (it == es->end() || it->first != name) return nullptr;
  return &it->second;
}

bool MetaStore::DentryTable::insert(ObjectId dir, const std::string& name,
                                    ObjectId child) {
  Entries& es = dirs_[dir.value()];
  auto it = lower_bound(es, name);
  if (it != es.end() && it->first == name) return false;
  es.emplace(it, name, child);
  ++size_;
  return true;
}

bool MetaStore::DentryTable::erase(ObjectId dir, std::string_view name) {
  Entries* es = dirs_.find(dir.value());
  if (es == nullptr) return false;
  auto it = lower_bound(*es, name);
  if (it == es->end() || it->first != name) return false;
  es->erase(it);
  --size_;
  if (es->empty()) dirs_.erase(dir.value());
  return true;
}

void MetaStore::DentryTable::upsert(ObjectId dir, const std::string& name,
                                    ObjectId child) {
  Entries& es = dirs_[dir.value()];
  auto it = lower_bound(es, name);
  if (it != es.end() && it->first == name) {
    es[static_cast<std::size_t>(it - es.begin())].second = child;
    return;
  }
  es.emplace(it, name, child);
  ++size_;
}

std::size_t MetaStore::DentryTable::entry_count(ObjectId dir) const {
  const Entries* es = dirs_.find(dir.value());
  return es == nullptr ? 0 : es->size();
}

const MetaStore::DentryTable::Entries* MetaStore::DentryTable::entries(
    ObjectId dir) const {
  return dirs_.find(dir.value());
}

void MetaStore::DentryTable::clear() {
  dirs_.clear();
  size_ = 0;
}

void MetaStore::DentryTable::clone_from(const DentryTable& o) {
  dirs_.clone_from(o.dirs_);
  size_ = o.size_;
}

// --- MetaStore -------------------------------------------------------------

std::optional<Inode> MetaStore::mem_inode(ObjectId id) const {
  const Inode* ino = mem_inodes_.find(id.value());
  if (ino == nullptr) return std::nullopt;
  return *ino;
}

std::optional<ObjectId> MetaStore::mem_lookup(ObjectId dir,
                                              const std::string& name) const {
  const ObjectId* child = mem_dentries_.find(dir, name);
  if (child == nullptr) return std::nullopt;
  return *child;
}

std::vector<std::pair<std::string, ObjectId>> MetaStore::mem_list_dir(
    ObjectId dir) const {
  const auto* es = mem_dentries_.entries(dir);
  if (es == nullptr) return {};
  return *es;  // already name-sorted
}

std::optional<Inode> MetaStore::effective_inode(TxnId txn, ObjectId id) const {
  std::optional<Inode> ino = mem_inode(id);
  const std::vector<Operation>* pend = pending_.find(txn);
  if (pend == nullptr) return ino;
  for (const Operation& op : *pend) {
    if (op.target != id) continue;
    switch (op.type) {
      case OpType::kCreateInode:
        ino = Inode{id, /*is_dir=*/op.child == id, 0, 0};
        break;
      case OpType::kRemoveInode:
        ino.reset();
        break;
      case OpType::kIncLink:
        if (ino) ++ino->nlink;
        break;
      case OpType::kDecLink:
        if (ino) {
          --ino->nlink;
          if (ino->nlink == 0) ino.reset();
        }
        break;
      case OpType::kSetAttr:
        if (ino) ++ino->version;
        break;
      default:
        break;
    }
  }
  return ino;
}

std::optional<ObjectId> MetaStore::effective_lookup(
    TxnId txn, ObjectId dir, const std::string& name) const {
  std::optional<ObjectId> child = mem_lookup(dir, name);
  const std::vector<Operation>* pend = pending_.find(txn);
  if (pend == nullptr) return child;
  for (const Operation& op : *pend) {
    if (op.target != dir || op.name != name) continue;
    if (op.type == OpType::kAddDentry) child = op.child;
    if (op.type == OpType::kRemoveDentry) child.reset();
  }
  return child;
}

bool MetaStore::effective_dir_empty(TxnId txn, ObjectId dir) const {
  std::size_t entries = mem_dentries_.entry_count(dir);
  if (const std::vector<Operation>* pend = pending_.find(txn)) {
    for (const Operation& op : *pend) {
      if (op.target != dir) continue;
      if (op.type == OpType::kAddDentry) ++entries;
      if (op.type == OpType::kRemoveDentry) --entries;
    }
  }
  return entries == 0;
}

StoreStatus MetaStore::validate(TxnId txn, const Operation& op) const {
  switch (op.type) {
    case OpType::kCreateInode:
      if (effective_inode(txn, op.target)) return StoreStatus::kInodeExists;
      return StoreStatus::kOk;
    case OpType::kRemoveInode: {
      auto ino = effective_inode(txn, op.target);
      if (!ino) return StoreStatus::kInodeNotFound;
      if (ino->is_dir && !effective_dir_empty(txn, op.target)) {
        return StoreStatus::kDirNotEmpty;
      }
      return StoreStatus::kOk;
    }
    case OpType::kSetAttr:
    case OpType::kReadAttr:
    case OpType::kIncLink:
      if (!effective_inode(txn, op.target)) return StoreStatus::kInodeNotFound;
      return StoreStatus::kOk;
    case OpType::kDecLink: {
      auto ino = effective_inode(txn, op.target);
      if (!ino) return StoreStatus::kInodeNotFound;
      if (ino->nlink == 0) return StoreStatus::kLinkUnderflow;
      if (ino->nlink == 1 && ino->is_dir &&
          !effective_dir_empty(txn, op.target)) {
        // The last link is about to drop: an occupied directory must not
        // vanish (it would orphan its children and dangle their dentries).
        return StoreStatus::kDirNotEmpty;
      }
      return StoreStatus::kOk;
    }
    case OpType::kAddDentry: {
      auto dir = effective_inode(txn, op.target);
      if (!dir) return StoreStatus::kInodeNotFound;
      if (!dir->is_dir) return StoreStatus::kNotADirectory;
      if (effective_lookup(txn, op.target, op.name)) {
        return StoreStatus::kDentryExists;
      }
      return StoreStatus::kOk;
    }
    case OpType::kRemoveDentry: {
      auto dir = effective_inode(txn, op.target);
      if (!dir) return StoreStatus::kInodeNotFound;
      if (!dir->is_dir) return StoreStatus::kNotADirectory;
      auto child = effective_lookup(txn, op.target, op.name);
      if (!child) return StoreStatus::kDentryNotFound;
      if (op.child.valid() && *child != op.child) {
        return StoreStatus::kChildMismatch;
      }
      return StoreStatus::kOk;
    }
  }
  return StoreStatus::kOk;
}

StoreStatus MetaStore::apply(TxnId txn, const Operation& op) {
  const StoreStatus st = validate(txn, op);
  if (st != StoreStatus::kOk) return st;
  if (!op_is_read(op.type)) {
    auto [ops, inserted] = pending_.try_emplace(txn);
    if (inserted && !ops_pool_.empty()) {
      *ops = std::move(ops_pool_.back());
      ops_pool_.pop_back();
    }
    ops->push_back(op);
  }
  return StoreStatus::kOk;
}

void MetaStore::apply_to(const Operation& op, InodeTable& inodes,
                         DentryTable& dentries) {
  switch (op.type) {
    case OpType::kCreateInode: {
      // Convention: CreateInode with child==target marks a directory.
      const bool inserted =
          inodes
              .try_emplace(op.target.value(),
                           Inode{op.target, op.child == op.target, 0, 0})
              .second;
      SIM_CHECK_MSG(inserted, "CreateInode on existing inode");
      break;
    }
    case OpType::kRemoveInode:
      SIM_CHECK_MSG(inodes.erase(op.target.value()),
                    "RemoveInode on missing inode");
      break;
    case OpType::kIncLink: {
      Inode* ino = inodes.find(op.target.value());
      SIM_CHECK_MSG(ino != nullptr, "IncLink on missing inode");
      ++ino->nlink;
      break;
    }
    case OpType::kDecLink: {
      Inode* ino = inodes.find(op.target.value());
      SIM_CHECK_MSG(ino != nullptr, "DecLink on missing inode");
      SIM_CHECK_MSG(ino->nlink > 0, "DecLink underflow");
      if (--ino->nlink == 0) inodes.erase(op.target.value());
      break;
    }
    case OpType::kSetAttr: {
      Inode* ino = inodes.find(op.target.value());
      SIM_CHECK_MSG(ino != nullptr, "SetAttr on missing inode");
      ++ino->version;
      break;
    }
    case OpType::kAddDentry:
      SIM_CHECK_MSG(dentries.insert(op.target, op.name, op.child),
                    "AddDentry on existing name");
      break;
    case OpType::kRemoveDentry:
      SIM_CHECK_MSG(dentries.erase(op.target, op.name),
                    "RemoveDentry on missing name");
      break;
    case OpType::kReadAttr:
      break;
  }
}

void MetaStore::recycle_ops(std::vector<Operation>&& ops) {
  if (ops_pool_.size() >= kMaxPooledOps) return;
  ops.clear();
  ops_pool_.push_back(std::move(ops));
}

void MetaStore::commit_mem(TxnId txn) {
  std::vector<Operation>* ops = pending_.find(txn);
  if (ops == nullptr) return;  // read-only or empty share
  SIM_CHECK_MSG(!unflushed_.contains(txn), "commit_mem called twice");
  for (const Operation& op : *ops) {
    apply_to(op, mem_inodes_, mem_dentries_);
  }
  unflushed_.try_emplace(txn, std::move(*ops));
  pending_.erase(txn);
}

void MetaStore::commit_stable(TxnId txn) {
  std::vector<Operation>* ops = unflushed_.find(txn);
  if (ops == nullptr) return;  // read-only or empty share
  for (const Operation& op : *ops) {
    apply_to(op, stable_inodes_, stable_dentries_);
  }
  stable_applied_.insert(txn);
  std::vector<Operation> shell = std::move(*ops);
  unflushed_.erase(txn);
  recycle_ops(std::move(shell));
}

void MetaStore::abort_txn(TxnId txn) {
  SIM_CHECK_MSG(!unflushed_.contains(txn),
                "abort after commit_mem is a protocol bug");
  if (std::vector<Operation>* ops = pending_.find(txn)) {
    std::vector<Operation> shell = std::move(*ops);
    pending_.erase(txn);
    recycle_ops(std::move(shell));
  }
}

void MetaStore::crash() {
  pending_.clear();
  unflushed_.clear();
  mem_inodes_.clone_from(stable_inodes_);
  mem_dentries_.clone_from(stable_dentries_);
}

bool MetaStore::replay_committed(TxnId txn,
                                 const std::vector<Operation>& ops) {
  if (stable_applied_.contains(txn)) return false;
  for (const Operation& op : ops) {
    if (op_is_read(op.type)) continue;
    apply_to(op, stable_inodes_, stable_dentries_);
    apply_to(op, mem_inodes_, mem_dentries_);
  }
  stable_applied_.insert(txn);
  return true;
}

std::optional<Inode> MetaStore::stable_inode(ObjectId id) const {
  const Inode* ino = stable_inodes_.find(id.value());
  if (ino == nullptr) return std::nullopt;
  return *ino;
}

std::optional<ObjectId> MetaStore::stable_lookup(
    ObjectId dir, const std::string& name) const {
  const ObjectId* child = stable_dentries_.find(dir, name);
  if (child == nullptr) return std::nullopt;
  return *child;
}

std::vector<std::tuple<ObjectId, std::string, ObjectId>>
MetaStore::stable_dentries() const {
  std::vector<std::tuple<ObjectId, std::string, ObjectId>> out;
  out.reserve(stable_dentries_.size());
  stable_dentries_.for_each_entry(
      [&out](ObjectId dir, const std::string& name, ObjectId child) {
        out.emplace_back(dir, name, child);
      });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Inode> MetaStore::stable_inodes() const {
  std::vector<Inode> out;
  out.reserve(stable_inodes_.size());
  stable_inodes_.for_each(
      [&out](const std::uint64_t&, const Inode& ino) { out.push_back(ino); });
  std::sort(out.begin(), out.end(),
            [](const Inode& a, const Inode& b) { return a.id < b.id; });
  return out;
}

const std::vector<Operation>& MetaStore::pending_ops(TxnId txn) const {
  const std::vector<Operation>* ops = pending_.find(txn);
  return ops == nullptr ? kNoOps : *ops;
}

void MetaStore::bootstrap_inode(const Inode& ino) {
  mem_inodes_[ino.id.value()] = ino;
  stable_inodes_[ino.id.value()] = ino;
}

void MetaStore::bootstrap_dentry(ObjectId dir, const std::string& name,
                                 ObjectId child) {
  mem_dentries_.upsert(dir, name, child);
  stable_dentries_.upsert(dir, name, child);
}

}  // namespace opc
