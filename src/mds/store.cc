#include "mds/store.h"

#include <algorithm>

#include "sim/check.h"

namespace opc {
namespace {
const std::vector<Operation> kNoOps;
}

const char* store_status_name(StoreStatus s) {
  switch (s) {
    case StoreStatus::kOk: return "Ok";
    case StoreStatus::kInodeExists: return "InodeExists";
    case StoreStatus::kInodeNotFound: return "InodeNotFound";
    case StoreStatus::kNotADirectory: return "NotADirectory";
    case StoreStatus::kDentryExists: return "DentryExists";
    case StoreStatus::kDentryNotFound: return "DentryNotFound";
    case StoreStatus::kChildMismatch: return "ChildMismatch";
    case StoreStatus::kLinkUnderflow: return "LinkUnderflow";
    case StoreStatus::kDirNotEmpty: return "DirNotEmpty";
  }
  return "?";
}

std::optional<Inode> MetaStore::mem_inode(ObjectId id) const {
  auto it = mem_inodes_.find(id);
  if (it == mem_inodes_.end()) return std::nullopt;
  return it->second;
}

std::optional<ObjectId> MetaStore::mem_lookup(ObjectId dir,
                                              const std::string& name) const {
  auto it = mem_dentries_.find({dir, name});
  if (it == mem_dentries_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<std::string, ObjectId>> MetaStore::mem_list_dir(
    ObjectId dir) const {
  std::vector<std::pair<std::string, ObjectId>> out;
  // Dentries are keyed (dir, name) in an ordered map: one range scan.
  for (auto it = mem_dentries_.lower_bound({dir, std::string()});
       it != mem_dentries_.end() && it->first.first == dir; ++it) {
    out.emplace_back(it->first.second, it->second);
  }
  return out;
}

std::optional<Inode> MetaStore::effective_inode(TxnId txn, ObjectId id) const {
  std::optional<Inode> ino = mem_inode(id);
  auto pit = pending_.find(txn);
  if (pit == pending_.end()) return ino;
  for (const Operation& op : pit->second) {
    if (op.target != id) continue;
    switch (op.type) {
      case OpType::kCreateInode:
        ino = Inode{id, /*is_dir=*/op.child == id, 0, 0};
        break;
      case OpType::kRemoveInode:
        ino.reset();
        break;
      case OpType::kIncLink:
        if (ino) ++ino->nlink;
        break;
      case OpType::kDecLink:
        if (ino) {
          --ino->nlink;
          if (ino->nlink == 0) ino.reset();
        }
        break;
      case OpType::kSetAttr:
        if (ino) ++ino->version;
        break;
      default:
        break;
    }
  }
  return ino;
}

std::optional<ObjectId> MetaStore::effective_lookup(
    TxnId txn, ObjectId dir, const std::string& name) const {
  std::optional<ObjectId> child = mem_lookup(dir, name);
  auto pit = pending_.find(txn);
  if (pit == pending_.end()) return child;
  for (const Operation& op : pit->second) {
    if (op.target != dir || op.name != name) continue;
    if (op.type == OpType::kAddDentry) child = op.child;
    if (op.type == OpType::kRemoveDentry) child.reset();
  }
  return child;
}

bool MetaStore::effective_dir_empty(TxnId txn, ObjectId dir) const {
  std::size_t entries = mem_list_dir(dir).size();
  if (auto pit = pending_.find(txn); pit != pending_.end()) {
    for (const Operation& op : pit->second) {
      if (op.target != dir) continue;
      if (op.type == OpType::kAddDentry) ++entries;
      if (op.type == OpType::kRemoveDentry) --entries;
    }
  }
  return entries == 0;
}

StoreStatus MetaStore::validate(TxnId txn, const Operation& op) const {
  switch (op.type) {
    case OpType::kCreateInode:
      if (effective_inode(txn, op.target)) return StoreStatus::kInodeExists;
      return StoreStatus::kOk;
    case OpType::kRemoveInode: {
      auto ino = effective_inode(txn, op.target);
      if (!ino) return StoreStatus::kInodeNotFound;
      if (ino->is_dir && !effective_dir_empty(txn, op.target)) {
        return StoreStatus::kDirNotEmpty;
      }
      return StoreStatus::kOk;
    }
    case OpType::kSetAttr:
    case OpType::kReadAttr:
    case OpType::kIncLink:
      if (!effective_inode(txn, op.target)) return StoreStatus::kInodeNotFound;
      return StoreStatus::kOk;
    case OpType::kDecLink: {
      auto ino = effective_inode(txn, op.target);
      if (!ino) return StoreStatus::kInodeNotFound;
      if (ino->nlink == 0) return StoreStatus::kLinkUnderflow;
      if (ino->nlink == 1 && ino->is_dir &&
          !effective_dir_empty(txn, op.target)) {
        // The last link is about to drop: an occupied directory must not
        // vanish (it would orphan its children and dangle their dentries).
        return StoreStatus::kDirNotEmpty;
      }
      return StoreStatus::kOk;
    }
    case OpType::kAddDentry: {
      auto dir = effective_inode(txn, op.target);
      if (!dir) return StoreStatus::kInodeNotFound;
      if (!dir->is_dir) return StoreStatus::kNotADirectory;
      if (effective_lookup(txn, op.target, op.name)) {
        return StoreStatus::kDentryExists;
      }
      return StoreStatus::kOk;
    }
    case OpType::kRemoveDentry: {
      auto dir = effective_inode(txn, op.target);
      if (!dir) return StoreStatus::kInodeNotFound;
      if (!dir->is_dir) return StoreStatus::kNotADirectory;
      auto child = effective_lookup(txn, op.target, op.name);
      if (!child) return StoreStatus::kDentryNotFound;
      if (op.child.valid() && *child != op.child) {
        return StoreStatus::kChildMismatch;
      }
      return StoreStatus::kOk;
    }
  }
  return StoreStatus::kOk;
}

StoreStatus MetaStore::apply(TxnId txn, const Operation& op) {
  const StoreStatus st = validate(txn, op);
  if (st != StoreStatus::kOk) return st;
  if (!op_is_read(op.type)) pending_[txn].push_back(op);
  return StoreStatus::kOk;
}

void MetaStore::apply_to(const Operation& op, InodeTable& inodes,
                         DentryTable& dentries) {
  switch (op.type) {
    case OpType::kCreateInode: {
      // Convention: CreateInode with child==target marks a directory.
      auto [it, inserted] = inodes.emplace(
          op.target, Inode{op.target, op.child == op.target, 0, 0});
      (void)it;
      SIM_CHECK_MSG(inserted, "CreateInode on existing inode");
      break;
    }
    case OpType::kRemoveInode:
      SIM_CHECK_MSG(inodes.erase(op.target) == 1,
                    "RemoveInode on missing inode");
      break;
    case OpType::kIncLink: {
      auto it = inodes.find(op.target);
      SIM_CHECK_MSG(it != inodes.end(), "IncLink on missing inode");
      ++it->second.nlink;
      break;
    }
    case OpType::kDecLink: {
      auto it = inodes.find(op.target);
      SIM_CHECK_MSG(it != inodes.end(), "DecLink on missing inode");
      SIM_CHECK_MSG(it->second.nlink > 0, "DecLink underflow");
      if (--it->second.nlink == 0) inodes.erase(it);
      break;
    }
    case OpType::kSetAttr: {
      auto it = inodes.find(op.target);
      SIM_CHECK_MSG(it != inodes.end(), "SetAttr on missing inode");
      ++it->second.version;
      break;
    }
    case OpType::kAddDentry: {
      auto [it, inserted] =
          dentries.emplace(std::make_pair(op.target, op.name), op.child);
      (void)it;
      SIM_CHECK_MSG(inserted, "AddDentry on existing name");
      break;
    }
    case OpType::kRemoveDentry:
      SIM_CHECK_MSG(dentries.erase({op.target, op.name}) == 1,
                    "RemoveDentry on missing name");
      break;
    case OpType::kReadAttr:
      break;
  }
}

void MetaStore::commit_mem(TxnId txn) {
  auto it = pending_.find(txn);
  if (it == pending_.end()) return;  // read-only or empty share
  SIM_CHECK_MSG(!unflushed_.contains(txn), "commit_mem called twice");
  for (const Operation& op : it->second) {
    apply_to(op, mem_inodes_, mem_dentries_);
  }
  unflushed_.emplace(txn, std::move(it->second));
  pending_.erase(it);
}

void MetaStore::commit_stable(TxnId txn) {
  auto it = unflushed_.find(txn);
  if (it == unflushed_.end()) return;  // read-only or empty share
  for (const Operation& op : it->second) {
    apply_to(op, stable_inodes_, stable_dentries_);
  }
  stable_applied_.insert(txn);
  unflushed_.erase(it);
}

void MetaStore::abort_txn(TxnId txn) {
  SIM_CHECK_MSG(!unflushed_.contains(txn),
                "abort after commit_mem is a protocol bug");
  pending_.erase(txn);
}

void MetaStore::crash() {
  pending_.clear();
  unflushed_.clear();
  mem_inodes_ = stable_inodes_;
  mem_dentries_ = stable_dentries_;
}

bool MetaStore::replay_committed(TxnId txn,
                                 const std::vector<Operation>& ops) {
  if (stable_applied_.contains(txn)) return false;
  for (const Operation& op : ops) {
    if (op_is_read(op.type)) continue;
    apply_to(op, stable_inodes_, stable_dentries_);
    apply_to(op, mem_inodes_, mem_dentries_);
  }
  stable_applied_.insert(txn);
  return true;
}

std::optional<Inode> MetaStore::stable_inode(ObjectId id) const {
  auto it = stable_inodes_.find(id);
  if (it == stable_inodes_.end()) return std::nullopt;
  return it->second;
}

std::optional<ObjectId> MetaStore::stable_lookup(
    ObjectId dir, const std::string& name) const {
  auto it = stable_dentries_.find({dir, name});
  if (it == stable_dentries_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::tuple<ObjectId, std::string, ObjectId>>
MetaStore::stable_dentries() const {
  std::vector<std::tuple<ObjectId, std::string, ObjectId>> out;
  out.reserve(stable_dentries_.size());
  for (const auto& [key, child] : stable_dentries_) {
    out.emplace_back(key.first, key.second, child);
  }
  return out;
}

std::vector<Inode> MetaStore::stable_inodes() const {
  std::vector<Inode> out;
  out.reserve(stable_inodes_.size());
  for (const auto& [id, ino] : stable_inodes_) {
    (void)id;
    out.push_back(ino);
  }
  return out;
}

const std::vector<Operation>& MetaStore::pending_ops(TxnId txn) const {
  auto it = pending_.find(txn);
  return it == pending_.end() ? kNoOps : it->second;
}

void MetaStore::bootstrap_inode(const Inode& ino) {
  mem_inodes_[ino.id] = ino;
  stable_inodes_[ino.id] = ino;
}

void MetaStore::bootstrap_dentry(ObjectId dir, const std::string& name,
                                 ObjectId child) {
  mem_dentries_[{dir, name}] = child;
  stable_dentries_[{dir, name}] = child;
}

}  // namespace opc
