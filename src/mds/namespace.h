// Namespace planning: path-level operations -> distributed transactions.
//
// A client-facing CREATE/DELETE/RENAME is decomposed here into per-MDS
// operation lists, following the paper's examples (§II: DELETE file1 =
// unlink at the parent's MDS + reference-count update at the inode's MDS).
// The MDS hosting the parent directory is always the coordinator — it is
// the server the client contacts, and it holds the contended directory
// lock the paper's analysis revolves around.
//
// CREATE and DELETE involve at most two MDSs; RENAME up to four (source
// dir, destination dir, moved inode, overwritten inode) — exactly the split
// that motivates running 1PC for the former and falling back to 2PC for
// the latter (src/acp/hybrid.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "mds/partition.h"
#include "txn/types.h"

namespace opc {

/// Allocates cluster-unique object ids (inode numbers).  Id 0 is reserved
/// as "invalid"; id 1 is conventionally the root directory.
class IdAllocator {
 public:
  [[nodiscard]] ObjectId next() { return ObjectId(next_++); }
  [[nodiscard]] std::uint64_t peek() const { return next_; }

 private:
  std::uint64_t next_ = 1;
};

/// WAL footprint / compute cost assigned to planned operations.  Defaults
/// reproduce the paper's simulation (1 µs methods; update records sized so
/// a commit-path force is one 8 KiB device block — DESIGN.md §5).
struct OpCosts {
  std::uint64_t dentry_log_bytes = 2048;
  std::uint64_t inode_log_bytes = 2048;
  Duration method_compute = Duration::micros(1);
};

class NamespacePlanner {
 public:
  NamespacePlanner(Partitioner& partitioner, OpCosts costs)
      : part_(partitioner), costs_(costs) {}

  /// CREATE `name` in `parent_dir`; the new inode id must come from the
  /// IdAllocator.  `is_dir` plans a mkdir.  `hint` feeds randomized
  /// placement policies deterministically.
  [[nodiscard]] Transaction plan_create(ObjectId parent_dir,
                                        const std::string& name,
                                        ObjectId new_inode, bool is_dir,
                                        std::uint64_t hint = 0);

  /// DELETE `name` (referring to `inode`) from `parent_dir`.
  [[nodiscard]] Transaction plan_delete(ObjectId parent_dir,
                                        const std::string& name,
                                        ObjectId inode);

  /// RENAME src_dir/src_name -> dst_dir/dst_name, moving `inode` and
  /// unlinking `overwritten` if the destination name existed.
  [[nodiscard]] Transaction plan_rename(ObjectId src_dir,
                                        const std::string& src_name,
                                        ObjectId dst_dir,
                                        const std::string& dst_name,
                                        ObjectId inode,
                                        std::optional<ObjectId> overwritten);

  /// Local attribute touch (always single-participant).
  [[nodiscard]] Transaction plan_setattr(ObjectId inode);

  /// Read-only attribute lookup (stat): single participant, shared lock,
  /// no log writes at all — the engine's read fast path.
  [[nodiscard]] Transaction plan_stat(ObjectId inode);

  /// Aggregated CREATE (paper §VI future work): all `entries` are created
  /// in `parent_dir` inside ONE transaction, so the directory is locked
  /// once and the protocol overhead is paid once per batch.
  [[nodiscard]] Transaction plan_create_batch(
      ObjectId parent_dir,
      const std::vector<std::pair<std::string, ObjectId>>& entries,
      std::uint64_t hint = 0);

  /// N-participant CREATE: entry k is created in `parent_dir` with its
  /// inode hosted at `homes[k]` (explicit placement, bypassing the
  /// partitioner's place_child).  With the homes spread over k distinct
  /// non-coordinator nodes this yields a 1+k-participant transaction — the
  /// generator for N-way storms.  Per-entry op shapes match plan_create
  /// exactly (AddDentry at the coordinator; CreateInode + IncLink at the
  /// child's home), so every inode ends up referenced by exactly nlink
  /// dentries and the namespace invariant checker stays clean.
  [[nodiscard]] Transaction plan_create_spread(
      ObjectId parent_dir,
      const std::vector<std::pair<std::string, ObjectId>>& entries,
      const std::vector<NodeId>& homes);

  [[nodiscard]] Partitioner& partitioner() { return part_; }
  [[nodiscard]] const OpCosts& costs() const { return costs_; }

 private:
  /// Appends `op` to `node`'s participant, creating it if needed; keeps
  /// `coordinator` as participants[0].
  static void add_op(Transaction& txn, NodeId coordinator, NodeId node,
                     Operation op);

  Partitioner& part_;
  OpCosts costs_;
};

}  // namespace opc
