#include "mds/namespace.h"

#include <algorithm>

#include "sim/check.h"

namespace opc {

void NamespacePlanner::add_op(Transaction& txn, NodeId coordinator,
                              NodeId node, Operation op) {
  auto it = std::find_if(
      txn.participants.begin(), txn.participants.end(),
      [node](const Participant& p) { return p.node == node; });
  if (it == txn.participants.end()) {
    // Plans are 1-2 participants with 1-3 ops each; exact reserves keep a
    // plan at one allocation per vector instead of doubling churn.
    if (txn.participants.capacity() == 0) txn.participants.reserve(2);
    txn.participants.push_back(Participant{node, {}});
    it = std::prev(txn.participants.end());
  }
  if (it->ops.capacity() == 0) it->ops.reserve(2);
  it->ops.push_back(std::move(op));
  // Keep the coordinator in front.
  auto c = std::find_if(
      txn.participants.begin(), txn.participants.end(),
      [coordinator](const Participant& p) { return p.node == coordinator; });
  if (c != txn.participants.end() && c != txn.participants.begin()) {
    std::iter_swap(txn.participants.begin(), c);
  }
}

Transaction NamespacePlanner::plan_create(ObjectId parent_dir,
                                          const std::string& name,
                                          ObjectId new_inode, bool is_dir,
                                          std::uint64_t hint) {
  SIM_CHECK(parent_dir.valid() && new_inode.valid());
  const NodeId coord = part_.home_of(parent_dir);
  const NodeId child_home = part_.place_child(parent_dir, new_inode, hint);

  Transaction txn;
  txn.kind = NamespaceOpKind::kCreate;
  add_op(txn, coord, coord,
         Operation{OpType::kAddDentry, parent_dir, new_inode, name,
                   costs_.dentry_log_bytes, costs_.method_compute});
  add_op(txn, coord, child_home,
         Operation{OpType::kCreateInode, new_inode,
                   is_dir ? new_inode : kNoObject, "",
                   costs_.inode_log_bytes, costs_.method_compute});
  add_op(txn, coord, child_home,
         Operation{OpType::kIncLink, new_inode, kNoObject, "",
                   /*log_bytes=*/0, costs_.method_compute});
  return txn;
}

Transaction NamespacePlanner::plan_delete(ObjectId parent_dir,
                                          const std::string& name,
                                          ObjectId inode) {
  SIM_CHECK(parent_dir.valid() && inode.valid());
  const NodeId coord = part_.home_of(parent_dir);
  const NodeId inode_home = part_.home_of(inode);

  Transaction txn;
  txn.kind = NamespaceOpKind::kDelete;
  add_op(txn, coord, coord,
         Operation{OpType::kRemoveDentry, parent_dir, inode, name,
                   costs_.dentry_log_bytes, costs_.method_compute});
  add_op(txn, coord, inode_home,
         Operation{OpType::kDecLink, inode, kNoObject, "",
                   costs_.inode_log_bytes, costs_.method_compute});
  return txn;
}

Transaction NamespacePlanner::plan_rename(ObjectId src_dir,
                                          const std::string& src_name,
                                          ObjectId dst_dir,
                                          const std::string& dst_name,
                                          ObjectId inode,
                                          std::optional<ObjectId> overwritten) {
  SIM_CHECK(src_dir.valid() && dst_dir.valid() && inode.valid());
  const NodeId coord = part_.home_of(src_dir);

  Transaction txn;
  txn.kind = NamespaceOpKind::kRename;
  add_op(txn, coord, coord,
         Operation{OpType::kRemoveDentry, src_dir, inode, src_name,
                   costs_.dentry_log_bytes, costs_.method_compute});
  if (overwritten) {
    add_op(txn, coord, part_.home_of(dst_dir),
           Operation{OpType::kRemoveDentry, dst_dir, *overwritten, dst_name,
                     costs_.dentry_log_bytes, costs_.method_compute});
    add_op(txn, coord, part_.home_of(*overwritten),
           Operation{OpType::kDecLink, *overwritten, kNoObject, "",
                     costs_.inode_log_bytes, costs_.method_compute});
  }
  add_op(txn, coord, part_.home_of(dst_dir),
         Operation{OpType::kAddDentry, dst_dir, inode, dst_name,
                   costs_.dentry_log_bytes, costs_.method_compute});
  add_op(txn, coord, part_.home_of(inode),
         Operation{OpType::kSetAttr, inode, kNoObject, "",
                   costs_.inode_log_bytes, costs_.method_compute});
  return txn;
}

Transaction NamespacePlanner::plan_create_batch(
    ObjectId parent_dir,
    const std::vector<std::pair<std::string, ObjectId>>& entries,
    std::uint64_t hint) {
  SIM_CHECK(parent_dir.valid() && !entries.empty());
  const NodeId coord = part_.home_of(parent_dir);
  Transaction txn;
  txn.kind = NamespaceOpKind::kCreate;
  for (const auto& [name, inode] : entries) {
    const NodeId child_home = part_.place_child(parent_dir, inode, hint);
    add_op(txn, coord, coord,
           Operation{OpType::kAddDentry, parent_dir, inode, name,
                     costs_.dentry_log_bytes, costs_.method_compute});
    add_op(txn, coord, child_home,
           Operation{OpType::kCreateInode, inode, kNoObject, "",
                     costs_.inode_log_bytes, costs_.method_compute});
    add_op(txn, coord, child_home,
           Operation{OpType::kIncLink, inode, kNoObject, "",
                     /*log_bytes=*/0, costs_.method_compute});
  }
  return txn;
}

Transaction NamespacePlanner::plan_create_spread(
    ObjectId parent_dir,
    const std::vector<std::pair<std::string, ObjectId>>& entries,
    const std::vector<NodeId>& homes) {
  SIM_CHECK(parent_dir.valid() && !entries.empty());
  SIM_CHECK_MSG(entries.size() == homes.size(),
                "one explicit home per entry");
  const NodeId coord = part_.home_of(parent_dir);
  Transaction txn;
  txn.kind = NamespaceOpKind::kCreate;
  for (std::size_t k = 0; k < entries.size(); ++k) {
    const auto& [name, inode] = entries[k];
    add_op(txn, coord, coord,
           Operation{OpType::kAddDentry, parent_dir, inode, name,
                     costs_.dentry_log_bytes, costs_.method_compute});
    add_op(txn, coord, homes[k],
           Operation{OpType::kCreateInode, inode, kNoObject, "",
                     costs_.inode_log_bytes, costs_.method_compute});
    add_op(txn, coord, homes[k],
           Operation{OpType::kIncLink, inode, kNoObject, "",
                     /*log_bytes=*/0, costs_.method_compute});
  }
  return txn;
}

Transaction NamespacePlanner::plan_stat(ObjectId inode) {
  SIM_CHECK(inode.valid());
  const NodeId coord = part_.home_of(inode);
  Transaction txn;
  txn.kind = NamespaceOpKind::kCustom;
  add_op(txn, coord, coord,
         Operation{OpType::kReadAttr, inode, kNoObject, "",
                   /*log_bytes=*/0, costs_.method_compute});
  return txn;
}

Transaction NamespacePlanner::plan_setattr(ObjectId inode) {
  SIM_CHECK(inode.valid());
  const NodeId coord = part_.home_of(inode);
  Transaction txn;
  txn.kind = NamespaceOpKind::kCustom;
  add_op(txn, coord, coord,
         Operation{OpType::kSetAttr, inode, kNoObject, "",
                   costs_.inode_log_bytes, costs_.method_compute});
  return txn;
}

}  // namespace opc
