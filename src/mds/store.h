// Per-MDS metadata store with crash-faithful three-level state.
//
// Updates are first performed "in the cache" (paper §II-A: MDSs perform
// their local updates in the cache, then the commit protocol forces them to
// the log).  MetaStore models the full lifecycle explicitly:
//
//   1. per-transaction pending ops — the volatile cache.  Dropped on crash
//      or abort.
//   2. in-memory committed tables (`mem`) — the logically current state
//      every new transaction validates against.  The 1PC coordinator makes
//      a transaction visible here (and releases its locks) *before* its own
//      commit force completes — the paper's headline latency optimization —
//      so `mem` can run ahead of disk.  Lost on crash, rebuilt from stable
//      state + log recovery.
//   3. stable tables — what survives a crash.  Mutated only by
//      commit_stable()/replay, strictly after the corresponding log force
//      is durable.
//
// Idempotent redo: stable state remembers the ids of transactions whose
// effects it already contains (`stable_applied`).  This models ARIES page
// LSNs at transaction granularity — in a real system "has this update
// reached the stable pages?" is answerable from the pages themselves; here
// the simulator keeps the answer as part of stable state, so recovery can
// replay a committed transaction exactly once no matter how often it is
// re-driven.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/types.h"
#include "txn/types.h"

namespace opc {

struct Inode {
  ObjectId id;
  bool is_dir = false;
  std::uint32_t nlink = 0;
  std::uint64_t version = 0;  // bumped by SetAttr

  [[nodiscard]] bool operator==(const Inode&) const = default;
};

enum class StoreStatus : std::uint8_t {
  kOk,
  kInodeExists,
  kInodeNotFound,
  kNotADirectory,
  kDentryExists,
  kDentryNotFound,
  kChildMismatch,
  kLinkUnderflow,
  kDirNotEmpty,  // removing a directory that still has entries
};

[[nodiscard]] const char* store_status_name(StoreStatus s);

class MetaStore {
 public:
  explicit MetaStore(NodeId owner) : owner_(owner) {}

  [[nodiscard]] NodeId owner() const { return owner_; }

  /// Validates `op` against the transaction's effective view (mem + its own
  /// pending ops) and records it in the cache.  Nothing becomes durable or
  /// visible to others.  Read-only ops validate without being recorded.
  StoreStatus apply(TxnId txn, const Operation& op);

  /// Makes the transaction's cached updates visible in `mem` (logically
  /// committed).  The ops move to the unflushed set awaiting
  /// commit_stable().  Call at most once per transaction.
  void commit_mem(TxnId txn);

  /// Promotes the transaction's unflushed updates into stable state and
  /// marks the transaction applied.  Must only run once the updates are
  /// durable in the WAL.
  void commit_stable(TxnId txn);

  /// commit_mem + commit_stable in one step (the common non-1PC path).
  void commit_txn(TxnId txn) {
    commit_mem(txn);
    commit_stable(txn);
  }

  /// Discards the transaction's cached updates (abort path; only valid
  /// before commit_mem).
  void abort_txn(TxnId txn);

  /// Crash: caches and the mem overlay vanish; mem is rebuilt equal to
  /// stable state.  Recovery then replays from the log.
  void crash();

  /// Replays a committed transaction's operations directly against stable
  /// (and mem) state.  Idempotent: if the transaction was already applied
  /// to stable state, this is a no-op.  Returns true if it applied.
  bool replay_committed(TxnId txn, const std::vector<Operation>& ops);

  /// True if stable state already contains the transaction's effects.
  [[nodiscard]] bool stable_applied(TxnId txn) const {
    return stable_applied_.contains(txn);
  }

  // --- Queries: current logical view (mem) ---
  [[nodiscard]] std::optional<Inode> mem_inode(ObjectId id) const;
  [[nodiscard]] std::optional<ObjectId> mem_lookup(
      ObjectId dir, const std::string& name) const;
  /// All current entries of a directory, name-ordered (readdir).
  [[nodiscard]] std::vector<std::pair<std::string, ObjectId>> mem_list_dir(
      ObjectId dir) const;

  // --- Queries: a transaction's effective view (mem + its pending ops) ---
  [[nodiscard]] std::optional<Inode> effective_inode(TxnId txn,
                                                     ObjectId id) const;
  [[nodiscard]] std::optional<ObjectId> effective_lookup(
      TxnId txn, ObjectId dir, const std::string& name) const;

  // --- Queries: stable view (what a crash preserves) ---
  [[nodiscard]] std::optional<Inode> stable_inode(ObjectId id) const;
  [[nodiscard]] std::optional<ObjectId> stable_lookup(
      ObjectId dir, const std::string& name) const;
  [[nodiscard]] std::size_t stable_inode_count() const {
    return stable_inodes_.size();
  }
  [[nodiscard]] std::size_t stable_dentry_count() const {
    return stable_dentries_.size();
  }
  [[nodiscard]] std::vector<std::tuple<ObjectId, std::string, ObjectId>>
  stable_dentries() const;
  [[nodiscard]] std::vector<Inode> stable_inodes() const;

  /// Cached (not yet mem-committed) ops for a transaction.
  [[nodiscard]] const std::vector<Operation>& pending_ops(TxnId txn) const;
  /// Ops committed to mem but not yet stable.
  [[nodiscard]] std::size_t unflushed_txns() const {
    return unflushed_.size();
  }

  /// Seeds both mem and stable state directly (bootstrap: root directory,
  /// pre-populated trees).  Bypasses logging by design.
  void bootstrap_inode(const Inode& ino);
  void bootstrap_dentry(ObjectId dir, const std::string& name, ObjectId child);

 private:
  using InodeTable = std::map<ObjectId, Inode>;
  using DentryTable = std::map<std::pair<ObjectId, std::string>, ObjectId>;

  [[nodiscard]] StoreStatus validate(TxnId txn, const Operation& op) const;
  /// True if `dir` has no entries in the transaction's effective view.
  [[nodiscard]] bool effective_dir_empty(TxnId txn, ObjectId dir) const;
  static void apply_to(const Operation& op, InodeTable& inodes,
                       DentryTable& dentries);

  NodeId owner_;
  InodeTable mem_inodes_;
  DentryTable mem_dentries_;
  InodeTable stable_inodes_;
  DentryTable stable_dentries_;
  std::unordered_map<TxnId, std::vector<Operation>> pending_;
  std::unordered_map<TxnId, std::vector<Operation>> unflushed_;
  std::unordered_set<TxnId> stable_applied_;
};

}  // namespace opc
