// Per-MDS metadata store with crash-faithful three-level state.
//
// Updates are first performed "in the cache" (paper §II-A: MDSs perform
// their local updates in the cache, then the commit protocol forces them to
// the log).  MetaStore models the full lifecycle explicitly:
//
//   1. per-transaction pending ops — the volatile cache.  Dropped on crash
//      or abort.
//   2. in-memory committed tables (`mem`) — the logically current state
//      every new transaction validates against.  The 1PC coordinator makes
//      a transaction visible here (and releases its locks) *before* its own
//      commit force completes — the paper's headline latency optimization —
//      so `mem` can run ahead of disk.  Lost on crash, rebuilt from stable
//      state + log recovery.
//   3. stable tables — what survives a crash.  Mutated only by
//      commit_stable()/replay, strictly after the corresponding log force
//      is durable.
//
// Idempotent redo: stable state remembers the ids of transactions whose
// effects it already contains (`stable_applied`).  This models ARIES page
// LSNs at transaction granularity — in a real system "has this update
// reached the stable pages?" is answerable from the pages themselves; here
// the simulator keeps the answer as part of stable state, so recovery can
// replay a committed transaction exactly once no matter how often it is
// re-driven.
//
// Hot-path memory: the four metadata tables are open-addressing FlatMaps
// (dentries grouped per directory as name-sorted vectors), and the
// per-transaction op vectors are recycled through a shell pool, so the
// steady-state apply/commit cycle allocates only when a table doubles.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/flat.h"
#include "net/types.h"
#include "txn/types.h"

namespace opc {

struct Inode {
  ObjectId id;
  bool is_dir = false;
  std::uint32_t nlink = 0;
  std::uint64_t version = 0;  // bumped by SetAttr

  [[nodiscard]] bool operator==(const Inode&) const = default;
};

enum class StoreStatus : std::uint8_t {
  kOk,
  kInodeExists,
  kInodeNotFound,
  kNotADirectory,
  kDentryExists,
  kDentryNotFound,
  kChildMismatch,
  kLinkUnderflow,
  kDirNotEmpty,  // removing a directory that still has entries
};

[[nodiscard]] const char* store_status_name(StoreStatus s);

class MetaStore {
 public:
  explicit MetaStore(NodeId owner) : owner_(owner) {}

  [[nodiscard]] NodeId owner() const { return owner_; }

  /// Validates `op` against the transaction's effective view (mem + its own
  /// pending ops) and records it in the cache.  Nothing becomes durable or
  /// visible to others.  Read-only ops validate without being recorded.
  StoreStatus apply(TxnId txn, const Operation& op);

  /// Makes the transaction's cached updates visible in `mem` (logically
  /// committed).  The ops move to the unflushed set awaiting
  /// commit_stable().  Call at most once per transaction.
  void commit_mem(TxnId txn);

  /// Promotes the transaction's unflushed updates into stable state and
  /// marks the transaction applied.  Must only run once the updates are
  /// durable in the WAL.
  void commit_stable(TxnId txn);

  /// commit_mem + commit_stable in one step (the common non-1PC path).
  void commit_txn(TxnId txn) {
    commit_mem(txn);
    commit_stable(txn);
  }

  /// Discards the transaction's cached updates (abort path; only valid
  /// before commit_mem).
  void abort_txn(TxnId txn);

  /// Crash: caches and the mem overlay vanish; mem is rebuilt equal to
  /// stable state.  Recovery then replays from the log.
  void crash();

  /// Replays a committed transaction's operations directly against stable
  /// (and mem) state.  Idempotent: if the transaction was already applied
  /// to stable state, this is a no-op.  Returns true if it applied.
  bool replay_committed(TxnId txn, const std::vector<Operation>& ops);

  /// True if stable state already contains the transaction's effects.
  [[nodiscard]] bool stable_applied(TxnId txn) const {
    return stable_applied_.contains(txn);
  }

  // --- Queries: current logical view (mem) ---
  [[nodiscard]] std::optional<Inode> mem_inode(ObjectId id) const;
  [[nodiscard]] std::optional<ObjectId> mem_lookup(
      ObjectId dir, const std::string& name) const;
  /// All current entries of a directory, name-ordered (readdir).
  [[nodiscard]] std::vector<std::pair<std::string, ObjectId>> mem_list_dir(
      ObjectId dir) const;

  // --- Queries: a transaction's effective view (mem + its pending ops) ---
  [[nodiscard]] std::optional<Inode> effective_inode(TxnId txn,
                                                     ObjectId id) const;
  [[nodiscard]] std::optional<ObjectId> effective_lookup(
      TxnId txn, ObjectId dir, const std::string& name) const;

  // --- Queries: stable view (what a crash preserves) ---
  [[nodiscard]] std::optional<Inode> stable_inode(ObjectId id) const;
  [[nodiscard]] std::optional<ObjectId> stable_lookup(
      ObjectId dir, const std::string& name) const;
  [[nodiscard]] std::size_t stable_inode_count() const {
    return stable_inodes_.size();
  }
  [[nodiscard]] std::size_t stable_dentry_count() const {
    return stable_dentries_.size();
  }
  /// (dir, name, child) tuples sorted by (dir, name) — the iteration order
  /// of the ordered map this table replaced.
  [[nodiscard]] std::vector<std::tuple<ObjectId, std::string, ObjectId>>
  stable_dentries() const;
  /// Inodes sorted by id.
  [[nodiscard]] std::vector<Inode> stable_inodes() const;

  /// Cached (not yet mem-committed) ops for a transaction.
  [[nodiscard]] const std::vector<Operation>& pending_ops(TxnId txn) const;
  /// Ops committed to mem but not yet stable.
  [[nodiscard]] std::size_t unflushed_txns() const {
    return unflushed_.size();
  }

  /// Seeds both mem and stable state directly (bootstrap: root directory,
  /// pre-populated trees).  Bypasses logging by design.
  void bootstrap_inode(const Inode& ino);
  void bootstrap_dentry(ObjectId dir, const std::string& name, ObjectId child);

 private:
  using InodeTable = FlatMap<std::uint64_t, Inode>;

  /// Dentries grouped per directory: a flat table keyed by directory id
  /// whose values are name-sorted entry vectors.  Lookup is a hash probe
  /// plus a binary search; readdir is a copy of an already-sorted vector.
  class DentryTable {
   public:
    using Entries = std::vector<std::pair<std::string, ObjectId>>;

    [[nodiscard]] std::size_t size() const { return size_; }
    /// Child for (dir, name), or nullptr.
    [[nodiscard]] const ObjectId* find(ObjectId dir,
                                       std::string_view name) const;
    /// False (and no change) if the name already exists in dir.
    bool insert(ObjectId dir, const std::string& name, ObjectId child);
    bool erase(ObjectId dir, std::string_view name);
    /// Insert-or-overwrite (bootstrap semantics).
    void upsert(ObjectId dir, const std::string& name, ObjectId child);
    [[nodiscard]] std::size_t entry_count(ObjectId dir) const;
    /// Name-sorted entries of one directory, or nullptr if it has none.
    [[nodiscard]] const Entries* entries(ObjectId dir) const;
    void clear();
    void clone_from(const DentryTable& o);
    /// Visits (dir, name, child) in hash order; callers sort if they need
    /// a deterministic dump.
    template <class F>
    void for_each_entry(F&& fn) const {
      dirs_.for_each([&fn](const std::uint64_t& dir, const Entries& es) {
        for (const auto& [name, child] : es) fn(ObjectId(dir), name, child);
      });
    }

   private:
    [[nodiscard]] static Entries::const_iterator lower_bound(
        const Entries& es, std::string_view name);
    FlatMap<std::uint64_t, Entries> dirs_;
    std::size_t size_ = 0;
  };

  [[nodiscard]] StoreStatus validate(TxnId txn, const Operation& op) const;
  /// True if `dir` has no entries in the transaction's effective view.
  [[nodiscard]] bool effective_dir_empty(TxnId txn, ObjectId dir) const;
  static void apply_to(const Operation& op, InodeTable& inodes,
                       DentryTable& dentries);
  void recycle_ops(std::vector<Operation>&& ops);

  NodeId owner_;
  InodeTable mem_inodes_;
  DentryTable mem_dentries_;
  InodeTable stable_inodes_;
  DentryTable stable_dentries_;
  FlatMap<TxnId, std::vector<Operation>> pending_;
  FlatMap<TxnId, std::vector<Operation>> unflushed_;
  FlatSet<TxnId> stable_applied_;
  // Recycled op-vector shells (bounded): apply() checks one out, the
  // commit/abort paths return it.
  std::vector<std::vector<Operation>> ops_pool_;
};

}  // namespace opc
