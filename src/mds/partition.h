// Metadata placement: which MDS is responsible for which object.
//
// The paper (Fig. 1) assumes a distribution policy that can place a file's
// inode on a different MDS than its parent directory — that is what makes
// CREATE/DELETE distributed in the first place.  Two policies are provided:
//
//   * HashPartitioner — uniform hash placement of every object; with n MDSs
//     a fraction (n-1)/n of creates is distributed.  This reproduces the
//     paper's motivating scenario of spreading one hot directory's files
//     over all servers.
//   * LocalityPartitioner — keeps a child on its parent directory's MDS
//     with probability `locality`, spilling the rest uniformly (Ceph-style
//     locality; used by the distributed-fraction ablation).
#pragma once

#include <cstdint>

#include "net/types.h"
#include "sim/rng.h"
#include "txn/types.h"

namespace opc {

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// The MDS hosting an existing object.
  [[nodiscard]] virtual NodeId home_of(ObjectId obj) const = 0;

  /// Chooses (and remembers, if stateful) the MDS for a new child of
  /// `parent_dir`.  `hint` allows deterministic randomized policies.
  [[nodiscard]] virtual NodeId place_child(ObjectId parent_dir,
                                           ObjectId child,
                                           std::uint64_t hint) = 0;

  [[nodiscard]] virtual std::uint32_t cluster_size() const = 0;
};

/// Uniform hash placement (stateless: home == hash(object id)).
class HashPartitioner final : public Partitioner {
 public:
  explicit HashPartitioner(std::uint32_t n_servers) : n_(n_servers) {}

  [[nodiscard]] NodeId home_of(ObjectId obj) const override {
    return NodeId(static_cast<std::uint32_t>(mix(obj.value()) % n_));
  }
  [[nodiscard]] NodeId place_child(ObjectId, ObjectId child,
                                   std::uint64_t) override {
    return home_of(child);
  }
  [[nodiscard]] std::uint32_t cluster_size() const override { return n_; }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }
  std::uint32_t n_;
};

/// Parent-affine placement with a tunable spill fraction.  Stateful: it
/// remembers every placement so home_of() stays consistent.
class LocalityPartitioner final : public Partitioner {
 public:
  /// `locality` = probability a new child lands on its parent's MDS.
  LocalityPartitioner(std::uint32_t n_servers, double locality,
                      std::uint64_t seed)
      : n_(n_servers), locality_(locality), rng_(seed, /*stream=*/0x10CA1) {}

  [[nodiscard]] NodeId home_of(ObjectId obj) const override;
  [[nodiscard]] NodeId place_child(ObjectId parent_dir, ObjectId child,
                                   std::uint64_t hint) override;
  [[nodiscard]] std::uint32_t cluster_size() const override { return n_; }

  /// Pre-assigns the home of an object (roots, bootstrapped trees).
  void assign(ObjectId obj, NodeId home) { placed_[obj] = home; }

 private:
  std::uint32_t n_;
  double locality_;
  Rng rng_;
  std::unordered_map<ObjectId, NodeId> placed_;
};

/// Fully explicit placement with a default home for new children.  The
/// Figure 6 reproduction uses this to force *every* create to be a
/// distributed transaction: the hot directory is pinned to the coordinator
/// MDS and all new inodes to a different node, matching the paper's "100
/// distributed transactions submitted to the same acp server" workload.
class PinnedPartitioner final : public Partitioner {
 public:
  PinnedPartitioner(std::uint32_t n_servers, NodeId default_child_home)
      : n_(n_servers), default_child_home_(default_child_home) {}

  void assign(ObjectId obj, NodeId home) { placed_[obj] = home; }

  [[nodiscard]] NodeId home_of(ObjectId obj) const override {
    auto it = placed_.find(obj);
    return it != placed_.end() ? it->second : default_child_home_;
  }
  [[nodiscard]] NodeId place_child(ObjectId, ObjectId child,
                                   std::uint64_t) override {
    auto it = placed_.find(child);
    if (it != placed_.end()) return it->second;
    placed_[child] = default_child_home_;
    return default_child_home_;
  }
  [[nodiscard]] std::uint32_t cluster_size() const override { return n_; }

 private:
  std::uint32_t n_;
  NodeId default_child_home_;
  std::unordered_map<ObjectId, NodeId> placed_;
};

}  // namespace opc
