#include "mds/partition.h"

#include "sim/check.h"

namespace opc {

NodeId LocalityPartitioner::home_of(ObjectId obj) const {
  auto it = placed_.find(obj);
  SIM_CHECK_MSG(it != placed_.end(),
                "LocalityPartitioner::home_of on an object never placed");
  return it->second;
}

NodeId LocalityPartitioner::place_child(ObjectId parent_dir, ObjectId child,
                                        std::uint64_t hint) {
  if (auto it = placed_.find(child); it != placed_.end()) return it->second;
  NodeId home;
  if (rng_.bernoulli(locality_)) {
    home = home_of(parent_dir);
  } else {
    // Spill uniformly; the hint decorrelates placement from call order.
    home = NodeId(static_cast<std::uint32_t>((rng_.next_u64() ^ hint) % n_));
  }
  placed_[child] = home;
  return home;
}

}  // namespace opc
