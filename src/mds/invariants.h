// File-system invariant checking across the whole MDS cluster.
//
// The paper motivates atomic commitment with two namespace invariants
// (§II):
//   (a) if a name references a file, that file exists — no dangling
//       dentries;
//   (b) if a file exists, it is referenced at least once — no orphaned
//       inodes.
// plus the book-keeping consistency that each inode's link count equals
// the number of dentries pointing at it.
//
// The failure-injection tests run the checker over every MDS's *stable*
// state after crashes and recovery complete: any violation means a commit
// protocol broke atomicity.
#pragma once

#include <string>
#include <vector>

#include "mds/store.h"

namespace opc {

struct InvariantViolation {
  enum class Kind {
    kDanglingDentry,   // dentry -> inode that does not exist anywhere
    kOrphanedInode,    // inode with no dentry referencing it
    kLinkCountMismatch,
    kDuplicateInode,   // same inode id hosted by two MDSs
    kDanglingParent,   // dentry whose directory inode does not exist
  };
  Kind kind;
  std::string detail;
};

[[nodiscard]] const char* violation_kind_name(InvariantViolation::Kind k);

/// Scans the stable state of every store.  `roots` lists inodes that are
/// legitimately reference-free (e.g. the root directory).
[[nodiscard]] std::vector<InvariantViolation> check_invariants(
    const std::vector<const MetaStore*>& stores,
    const std::vector<ObjectId>& roots);

/// Renders violations one per line (empty string when clean).
[[nodiscard]] std::string render_violations(
    const std::vector<InvariantViolation>& v);

}  // namespace opc
