#include "core/experiment.h"

#include <memory>

namespace opc {
namespace {

/// Shared scaffolding: simulator, cluster, meter, fault injector, result
/// collection.  Each run_* builds its own partitioner/planner/source on top.
struct Runner {
  explicit Runner(const ExperimentConfig& cfg)
      : cfg_(cfg), trace_(cfg.trace), meter_() {
    ClusterConfig cc = cfg.cluster;
    // Phase annotations ride along whenever the trace is on: both are
    // post-hoc observability inputs with the same cost profile.
    if (cfg.trace) cc.phase_log = &phases_;
    cluster_ = std::make_unique<Cluster>(sim_, cc, stats_, trace_);
    meter_.set_warmup_until(SimTime::zero() + cfg.warmup);
    meter_.set_cutoff(SimTime::zero() + cfg.run_for);
  }

  void install_fault_injector() {
    if (cfg_.crash_period <= Duration::zero()) return;
    schedule_next_crash();
  }

  void schedule_next_crash() {
    sim_.schedule_after(cfg_.crash_period, [this] {
      // Alternate targets when both are enabled; NodeId(0) is always the
      // storm coordinator by construction.
      NodeId target;
      if (cfg_.crash_worker && cfg_.crash_coordinator) {
        target = NodeId(crash_toggle_ ? 0 : 1);
        crash_toggle_ = !crash_toggle_;
      } else if (cfg_.crash_coordinator) {
        target = NodeId(0);
      } else {
        target = NodeId(1);
      }
      if (cluster_->node(target).alive()) {
        cluster_->crash_node(target);
        sim_.schedule_after(cfg_.crash_reboot_after, [this, target] {
          cluster_->reboot_node(target);
        });
      }
      schedule_next_crash();
    });
  }

  ExperimentResult finish(ClosedLoopSource& source,
                          const std::vector<ObjectId>& roots) {
    sim_.run_until(SimTime::zero() + cfg_.run_for);
    // Utilization is measured over the measurement window, before drain.
    const double disk_busy =
        cluster_->storage().partition(NodeId(0)).device().busy_time()
            .to_seconds_f() /
        cfg_.run_for.to_seconds_f();
    source.stop();
    // Drain until the cluster is quiescent: the invariant checker examines
    // stable state, which is only meaningful once every in-flight
    // transaction (including those deep in the directory-lock queue) has
    // finished.  Capped generously; a cap hit shows up as violations.
    const SimTime deadline =
        SimTime::zero() + cfg_.run_for + Duration::seconds(600);
    while (sim_.now() < deadline) {
      bool quiescent = true;
      for (std::uint32_t n = 0; n < cluster_->size(); ++n) {
        AcpEngine& e = cluster_->engine(NodeId(n));
        if (e.active_coordinations() != 0 || e.active_participations() != 0) {
          quiescent = false;
          break;
        }
      }
      if (quiescent) break;
      sim_.run_for(Duration::seconds(1));
    }

    ExperimentResult r;
    r.ops_per_second =
        meter_.events_per_second_over(cfg_.run_for - cfg_.warmup);
    r.committed = source.committed();
    r.aborted = source.aborted();
    r.lost = source.lost();
    for (std::uint32_t i = 0; i < cluster_->size(); ++i) {
      r.latency.merge(cluster_->engine(NodeId(i)).client_latency());
    }
    const auto violations = cluster_->check_invariants(roots);
    r.invariant_violations = violations.size();
    r.violation_report = render_violations(violations);
    if (cluster_->history() != nullptr) {
      r.serializable = cluster_->history()->serializable();
    }
    r.coordinator_disk_busy = disk_busy;
    r.trace_hash = trace_.history_hash();
    r.stats = stats_;
    if (cfg_.trace) {
      r.trace_events = trace_.events();
      r.phases = phases_;
    }
    return r;
  }

  ExperimentConfig cfg_;
  Simulator sim_;
  StatsRegistry stats_;
  TraceRecorder trace_;
  obs::PhaseLog phases_;
  ThroughputMeter meter_;
  std::unique_ptr<Cluster> cluster_;
  bool crash_toggle_ = false;
};

}  // namespace

ExperimentConfig paper_fig6_config(ProtocolKind proto) {
  ExperimentConfig cfg;
  cfg.cluster.n_nodes = 2;
  cfg.cluster.protocol = proto;
  cfg.cluster.net.latency = Duration::micros(100);
  cfg.cluster.disk.bytes_per_second = 400.0 * 1024.0;
  cfg.cluster.wal.force_pad_to = 8192;
  cfg.source.concurrency = 100;
  cfg.run_for = Duration::seconds(30);
  cfg.warmup = Duration::seconds(5);
  return cfg;
}

ExperimentResult run_create_storm(const ExperimentConfig& cfg) {
  Runner run(cfg);
  SIM_CHECK(cfg.cluster.n_nodes >= 2);
  SIM_CHECK(cfg.n_directories >= 1);
  SIM_CHECK_MSG(cfg.participants >= 2 &&
                    cfg.participants <= cfg.cluster.n_nodes,
                "storm participants need distinct worker nodes");
  // participants == 2 keeps the legacy plan_create path (and its byte
  // streams) untouched; wider storms spread one create per worker node.
  std::vector<NodeId> spread;
  if (cfg.participants > 2) {
    spread.reserve(cfg.participants - 1);
    for (std::uint32_t w = 1; w < cfg.participants; ++w) {
      spread.push_back(NodeId(w));
    }
  }
  IdAllocator ids;
  // Hot directories on mds0, every new inode on mds1: all creates
  // distributed, all coordinated by mds0.
  PinnedPartitioner part(cfg.cluster.n_nodes, NodeId(1));
  NamespacePlanner planner(part, OpCosts{});
  std::vector<ObjectId> dirs;
  for (std::uint32_t d = 0; d < cfg.n_directories; ++d) {
    const ObjectId dir = ids.next();
    part.assign(dir, NodeId(0));
    run.cluster_->bootstrap_directory(dir, NodeId(0));
    dirs.push_back(dir);
  }

  SourceConfig per_source = cfg.source;
  per_source.concurrency = std::max<std::uint32_t>(
      1, cfg.source.concurrency / cfg.n_directories);
  std::vector<std::unique_ptr<CreateStormSource>> sources;
  for (std::uint32_t d = 0; d < cfg.n_directories; ++d) {
    sources.push_back(std::make_unique<CreateStormSource>(
        run.cluster_->env(), *run.cluster_, per_source, run.meter_,
        run.stats_, planner,
        ids, dirs[d], "d" + std::to_string(d) + "_", /*batch=*/1, spread));
  }
  run.install_fault_injector();
  for (auto& s : sources) s->start();

  // finish() drives one source's lifecycle; stop the others alongside.
  if (sources.size() == 1) return run.finish(*sources.front(), dirs);
  run.sim_.run_until(SimTime::zero() + cfg.run_for);
  for (std::size_t i = 1; i < sources.size(); ++i) sources[i]->stop();
  ExperimentResult r = run.finish(*sources.front(), dirs);
  for (std::size_t i = 1; i < sources.size(); ++i) {
    r.committed += sources[i]->committed();
    r.aborted += sources[i]->aborted();
    r.lost += sources[i]->lost();
  }
  return r;
}

ExperimentResult run_batched_storm(const ExperimentConfig& cfg,
                                   std::uint32_t batch) {
  Runner run(cfg);
  SIM_CHECK(cfg.cluster.n_nodes >= 2);
  IdAllocator ids;
  const ObjectId dir = ids.next();
  PinnedPartitioner part(cfg.cluster.n_nodes, NodeId(1));
  part.assign(dir, NodeId(0));
  run.cluster_->bootstrap_directory(dir, NodeId(0));
  NamespacePlanner planner(part, OpCosts{});

  CreateStormSource source(run.cluster_->env(), *run.cluster_, cfg.source, run.meter_,
                           run.stats_, planner, ids, dir, "b", batch);
  run.install_fault_injector();
  source.start();
  ExperimentResult r = run.finish(source, {dir});
  // The meter counts transactions; scale to namespace operations.
  r.ops_per_second *= batch;
  return r;
}

ExperimentResult run_mixed(const ExperimentConfig& cfg, MixedSource::Mix mix,
                           std::uint32_t n_dirs) {
  Runner run(cfg);
  IdAllocator ids;
  HashPartitioner part(cfg.cluster.n_nodes);
  NamespacePlanner planner(part, OpCosts{});
  std::vector<ObjectId> dirs;
  for (std::uint32_t i = 0; i < n_dirs; ++i) {
    const ObjectId dir = ids.next();
    dirs.push_back(dir);
    run.cluster_->bootstrap_directory(dir, part.home_of(dir));
  }
  MixedSource source(run.cluster_->env(), *run.cluster_, cfg.source, run.meter_,
                     run.stats_, planner, ids, dirs, mix, cfg.cluster.seed);
  run.install_fault_injector();
  source.start();
  return run.finish(source, dirs);
}

}  // namespace opc
