// Epoch/slab arenas and object pools for transaction-lifetime state.
//
// The commit protocols allocate in a strongly phased pattern: a burst of
// small objects when a transaction enters (txn tables, lock wait entries,
// log records), all of it dead by the time the transaction finishes.  The
// general-purpose heap charges a malloc/free pair per object for that
// pattern; the storm bench showed it dominating the per-event cost
// (~29 allocs/event at the PR 8 baseline).  Three tools replace it:
//
//   * Arena — bump allocation out of chained slabs.  Free is a no-op;
//     reset() recycles every slab at a quiescent point (end of a txn
//     lifetime, end of a run).  For state whose lifetime is an epoch, not
//     an object.
//   * PoolAllocator<T> — std-allocator adapter over an Arena so standard
//     containers (e.g. a scratch vector of LogRecords) can borrow arena
//     memory for a bounded scope.
//   * Pool<T> — a free list of *constructed* objects with stable
//     addresses.  release() parks the object without destroying it, so
//     its internal buffers (vectors, strings) keep their capacity and the
//     next acquire() reuses them warm.  This is what the engine's
//     CoordTxn/WorkTxn ride on: after the first few transactions the
//     steady state recycles fully-grown objects and stops allocating.
//
// None of this is thread-aware; each owner (engine, lock manager, bench
// harness) keeps its own instance, matching the one-simulator-per-thread
// execution model.  Introspection flows to MemStats (core/mem_stats.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/mem_stats.h"

namespace opc {

/// Chained-slab bump allocator.  allocate() never fails over to the system
/// allocator per object — it carves from the current slab and chains a new
/// slab (doubling, capped) when one fills.  reset() makes every slab
/// reusable without returning memory to the system.
class Arena {
 public:
  explicit Arena(std::size_t first_slab_bytes = 4096)
      : next_slab_bytes_(first_slab_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    std::size_t off = (used_ + (align - 1)) & ~(align - 1);
    if (cur_ >= slabs_.size() || off + bytes > slabs_[cur_].size) {
      grow(bytes + align);
      off = (used_ + (align - 1)) & ~(align - 1);
    }
    used_ = off + bytes;
    MemStats::global().arena_bytes.fetch_add(
        static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
    return slabs_[cur_].data.get() + off;
  }

  template <class T>
  T* allocate_n(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Recycles all slabs.  Everything previously allocated is dead; callers
  /// only reset at quiescent points (txn epoch boundary, end of run).
  void reset() {
    cur_ = 0;
    used_ = 0;
    MemStats::global().arena_resets.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Slab& s : slabs_) total += s.size;
    return total;
  }

 private:
  struct Slab {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t at_least) {
    // Advance to the next retained slab if it is big enough, else chain a
    // fresh one (doubling up to 256 KiB so pathological first requests do
    // not lock in a tiny slab chain).
    if (cur_ + 1 < slabs_.size() && slabs_[cur_ + 1].size >= at_least) {
      ++cur_;
      used_ = 0;
      return;
    }
    std::size_t want = next_slab_bytes_;
    while (want < at_least) want *= 2;
    next_slab_bytes_ = std::min<std::size_t>(want * 2, 256 * 1024);
    slabs_.push_back(
        Slab{std::make_unique<unsigned char[]>(want), want});
    cur_ = slabs_.size() - 1;
    used_ = 0;
  }

  std::vector<Slab> slabs_;
  std::size_t cur_ = 0;
  std::size_t used_ = 0;
  std::size_t next_slab_bytes_;
};

/// Standard-allocator adapter over an Arena.  deallocate() is a no-op —
/// memory comes back at Arena::reset().  Intended for scratch containers
/// whose lifetime is bounded by the arena's epoch.
template <class T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(Arena& arena) : arena_(&arena) {}
  template <class U>
  PoolAllocator(const PoolAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) { return arena_->allocate_n<T>(n); }
  void deallocate(T*, std::size_t) {}

  [[nodiscard]] Arena* arena() const { return arena_; }

  template <class U>
  bool operator==(const PoolAllocator<U>& o) const {
    return arena_ == o.arena();
  }

 private:
  Arena* arena_;
};

/// Free list of constructed objects with stable addresses.  acquire()
/// hands out a warm recycled object when one is parked (its heap-owning
/// members keep their capacity); release() parks without destroying.
/// The pool owns every object it ever created, so callers treat the
/// returned pointer as a borrow keyed to the pool's lifetime.
template <class T>
class Pool {
 public:
  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  T* acquire() {
    if (!free_.empty()) {
      T* p = free_.back();
      free_.pop_back();
      MemStats::global().pool_free.fetch_add(-1, std::memory_order_relaxed);
      return p;
    }
    all_.push_back(std::make_unique<T>());
    return all_.back().get();
  }

  /// Parks an object for reuse.  The caller is responsible for putting it
  /// into a reusable state first (clear containers, reset flags) — the
  /// pool does not touch it.
  void release(T* p) {
    free_.push_back(p);
    MemStats::global().pool_free.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t created() const { return all_.size(); }
  [[nodiscard]] std::size_t parked() const { return free_.size(); }

 private:
  std::vector<std::unique_ptr<T>> all_;
  std::vector<T*> free_;
};

}  // namespace opc
