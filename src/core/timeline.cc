#include "core/timeline.h"

#include <cstdio>

#include "cluster/cluster.h"
#include "mds/namespace.h"

namespace opc {
namespace {

/// Renders the trace of one transaction as a two-column (mds0 | mds1)
/// chronological chart — the textual equivalent of the paper's Figures 2-5.
std::string render_chart(const TraceRecorder& trace, TxnId txn) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-14s | %-34s | %-34s\n", "time",
                "mds0 (coordinator)", "mds1 (worker)");
  out += buf;
  out += std::string(14, '-') + "-+-" + std::string(34, '-') + "-+-" +
         std::string(34, '-') + "\n";
  for (const TraceEvent& e : trace.events()) {
    if (e.txn != txn &&
        !(e.txn == 0 && e.actor.find("log.") == 0)) {
      continue;
    }
    const bool left = e.actor == "mds0" || e.actor == "log.mds0" ||
                      e.actor == "locks.mds0";
    const bool right = e.actor == "mds1" || e.actor == "log.mds1" ||
                       e.actor == "locks.mds1";
    if (!left && !right) continue;
    std::string what = std::string(trace_kind_name(e.kind)) + " " + e.detail;
    if (what.size() > 34) what.resize(34);
    std::snprintf(buf, sizeof(buf), "%11.3fms | %-34s | %-34s\n",
                  e.at.to_millis_f(), left ? what.c_str() : "",
                  right ? what.c_str() : "");
    out += buf;
  }
  return out;
}

}  // namespace

TimelineResult run_single_create(ProtocolKind proto) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(true);

  ClusterConfig cc;
  cc.n_nodes = 2;
  cc.protocol = proto;
  cc.net.latency = Duration::micros(100);
  cc.disk.bytes_per_second = 400.0 * 1024.0;
  cc.wal.force_pad_to = 8192;
  Cluster cluster(sim, cc, stats, trace);

  IdAllocator ids;
  const ObjectId dir = ids.next();
  PinnedPartitioner part(2, NodeId(1));
  part.assign(dir, NodeId(0));
  cluster.bootstrap_directory(dir, NodeId(0));
  NamespacePlanner planner(part, OpCosts{});

  TimelineResult r;
  r.proto = proto;
  SimTime replied = SimTime::zero();
  const TxnId id = cluster.submit(
      planner.plan_create(dir, "paper.dat", ids.next(), false),
      [&](TxnId, TxnOutcome outcome) {
        SIM_CHECK(outcome == TxnOutcome::kCommitted);
        replied = sim.now();
      });
  sim.run();

  r.client_latency = replied - SimTime::zero();
  r.txn_complete = sim.now() - SimTime::zero();
  r.sync_writes = static_cast<int>(stats.get("wal.force.count"));
  r.sync_writes_critical = static_cast<int>(stats.get("wal.force.critical"));
  r.async_writes = static_cast<int>(stats.get("wal.lazy.count"));
  r.async_writes_critical = static_cast<int>(stats.get("wal.lazy.critical"));
  r.extra_msgs = static_cast<int>(stats.get("acp.msgs.extra"));
  r.extra_msgs_critical =
      static_cast<int>(stats.get("acp.msgs.extra_critical"));
  r.chart = render_chart(trace, id);
  return r;
}

}  // namespace opc
