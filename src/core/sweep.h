// Parallel parameter sweeps.
//
// The simulator is single-threaded and deterministic; sweeps exploit
// machine parallelism the share-nothing way the HPC guides recommend: each
// job owns a complete simulation universe (its own Simulator, Cluster,
// RNG streams), workers communicate nothing, and results land in
// pre-allocated slots — so a sweep's output is bitwise identical to running
// the jobs sequentially, regardless of thread count or scheduling.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace opc {

class ParallelSweep {
 public:
  using Job = std::function<void()>;

  /// Runs every job, `threads`-wide (0 = hardware concurrency).  Blocks
  /// until all jobs complete.  Jobs must be independent: they may only
  /// touch their own result slot.
  static void run(std::vector<Job> jobs, unsigned threads = 0) {
    if (jobs.empty()) return;
    unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
    if (n == 0) n = 1;
    if (n > jobs.size()) n = static_cast<unsigned>(jobs.size());
    if (n == 1) {
      for (Job& j : jobs) j();
      return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t) {
      pool.emplace_back([&jobs, &next] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= jobs.size()) return;
          jobs[i]();
        }
      });
    }
    for (std::thread& th : pool) th.join();
  }

  /// Maps `inputs` through `fn` in parallel; results keep input order.
  template <typename In, typename Out>
  static std::vector<Out> map(const std::vector<In>& inputs,
                              std::function<Out(const In&)> fn,
                              unsigned threads = 0) {
    std::vector<Out> results(inputs.size());
    std::vector<Job> jobs;
    jobs.reserve(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      jobs.push_back([&, i] { results[i] = fn(inputs[i]); });
    }
    run(std::move(jobs), threads);
    return results;
  }
};

}  // namespace opc
