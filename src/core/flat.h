// Flat (open-addressing / inline) replacements for node-based containers
// on the protocol hot path.
//
// std::unordered_map and std::set allocate a node per element; the txn
// tables, lock indexes, and per-txn participant sets churn entries at
// transaction rate, which made node allocation the single largest cost in
// the storm bench.  These containers keep their storage in one flat slab
// (or inline), so steady-state insert/erase cycles allocate nothing once
// the table has grown to its working size:
//
//   * FlatMap / FlatSet — linear-probing open addressing with backward-
//     shift deletion (no tombstones, so load factor never degrades).
//     Iteration order is unspecified, like unordered_map; code that needs
//     an order sorts keys at the (cold) dump site.  Differential tests
//     (tests/core/flat_differential_test.cc) drive these against the
//     std containers they replace.
//   * SmallVec — a vector with inline storage for the common small case
//     (a txn's lock set, a participant list).  Restricted to trivially
//     copyable types, which is all the hot path needs and keeps
//     relocation a memcpy.
//
// Erasing during for_each is not supported (backward shift moves elements
// under the iteration); callsites collect keys first, as the previous
// unordered_map code already did for rehash safety.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/check.h"

namespace opc {

/// Mixing hash for integer-like keys.  Sequential txn/object ids are the
/// common case; splitmix64's finalizer spreads them across the table so
/// linear probing does not cluster.
struct FlatHash {
  [[nodiscard]] std::size_t operator()(std::uint64_t x) const {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

/// Open-addressing hash map from a trivially copyable key (anything
/// convertible to/from its stored form by value) to V.  V may own heap
/// state; it is moved on rehash and backward shift.
template <class K, class V, class Hash = FlatHash>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<K>);

 public:
  FlatMap() = default;
  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;
  FlatMap(FlatMap&& o) noexcept { swap(o); }
  FlatMap& operator=(FlatMap&& o) noexcept {
    if (this != &o) {
      destroy();
      swap(o);
    }
    return *this;
  }
  ~FlatMap() { destroy(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void reserve(std::size_t n) {
    std::size_t want = 8;
    while (want * 3 < n * 4) want *= 2;  // keep load factor under 3/4
    if (want > cap_) rehash(want);
  }

  [[nodiscard]] V* find(const K& key) {
    if (cap_ == 0) return nullptr;
    const std::size_t i = probe(key);
    return full_[i] ? &slots_[i].val : nullptr;
  }
  [[nodiscard]] const V* find(const K& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }
  [[nodiscard]] bool contains(const K& key) const {
    return find(key) != nullptr;
  }

  /// Inserts default-or-given value if absent; returns (slot, inserted).
  template <class... Args>
  std::pair<V*, bool> try_emplace(const K& key, Args&&... args) {
    grow_if_needed();
    const std::size_t i = probe(key);
    if (full_[i]) return {&slots_[i].val, false};
    ::new (&slots_[i].key) K(key);
    ::new (&slots_[i].val) V(std::forward<Args>(args)...);
    full_[i] = true;
    ++size_;
    return {&slots_[i].val, true};
  }

  V& operator[](const K& key) { return *try_emplace(key).first; }

  bool erase(const K& key) {
    if (cap_ == 0) return false;
    std::size_t i = probe(key);
    if (!full_[i]) return false;
    slots_[i].key.~K();
    slots_[i].val.~V();
    full_[i] = false;
    --size_;
    // Backward shift: walk the probe chain after i and move back any
    // element whose ideal slot does not lie strictly after the hole.
    std::size_t hole = i;
    std::size_t j = i;
    while (true) {
      j = (j + 1) & (cap_ - 1);
      if (!full_[j]) break;
      const std::size_t ideal = Hash{}(key_of(j)) & (cap_ - 1);
      // Distance from ideal to j vs. hole to j (cyclic): if the element
      // could legally sit in the hole, move it back.
      if (((j - ideal) & (cap_ - 1)) >= ((j - hole) & (cap_ - 1))) {
        relocate(hole, j);
        hole = j;
      }
    }
    return true;
  }

  void clear() {
    if (cap_ == 0) return;
    for (std::size_t i = 0; i < cap_; ++i) {
      if (full_[i]) {
        slots_[i].key.~K();
        slots_[i].val.~V();
        full_[i] = false;
      }
    }
    size_ = 0;
  }

  /// Replaces contents with a copy of `o` (FlatMap is otherwise move-only;
  /// copying is an explicit, deliberate act).  Capacity is retained.
  void clone_from(const FlatMap& o) {
    clear();
    reserve(o.size() + 1);
    o.for_each([this](const K& k, const V& v) { try_emplace(k, v); });
  }

  /// Visits every (key, value).  Do not insert or erase from `fn`.
  template <class F>
  void for_each(F&& fn) {
    for (std::size_t i = 0; i < cap_; ++i) {
      if (full_[i]) fn(slots_[i].key, slots_[i].val);
    }
  }
  template <class F>
  void for_each(F&& fn) const {
    for (std::size_t i = 0; i < cap_; ++i) {
      if (full_[i]) fn(slots_[i].key, slots_[i].val);
    }
  }

 private:
  struct Slot {
    union {
      K key;
    };
    union {
      V val;
    };
    Slot() {}            // NOLINT: members constructed in place
    ~Slot() {}           // NOLINT: destruction handled by the map
  };

  [[nodiscard]] K key_of(std::size_t i) const { return slots_[i].key; }

  // Returns the slot holding `key`, or the empty slot where it belongs.
  [[nodiscard]] std::size_t probe(const K& key) const {
    std::size_t i = Hash{}(key) & (cap_ - 1);
    while (full_[i] && !(slots_[i].key == key)) i = (i + 1) & (cap_ - 1);
    return i;
  }

  void relocate(std::size_t dst, std::size_t src) {
    ::new (&slots_[dst].key) K(slots_[src].key);
    ::new (&slots_[dst].val) V(std::move(slots_[src].val));
    slots_[src].key.~K();
    slots_[src].val.~V();
    full_[dst] = true;
    full_[src] = false;
  }

  void grow_if_needed() {
    if (cap_ == 0) {
      rehash(8);
    } else if ((size_ + 1) * 4 > cap_ * 3) {
      rehash(cap_ * 2);
    }
  }

  void rehash(std::size_t new_cap) {
    SIM_CHECK((new_cap & (new_cap - 1)) == 0);
    std::unique_ptr<Slot[]> old_slots = std::move(slots_storage_);
    std::unique_ptr<bool[]> old_full = std::move(full_storage_);
    const std::size_t old_cap = cap_;

    slots_storage_ = std::make_unique<Slot[]>(new_cap);
    full_storage_ = std::make_unique<bool[]>(new_cap);
    slots_ = slots_storage_.get();
    full_ = full_storage_.get();
    cap_ = new_cap;
    size_ = 0;

    for (std::size_t i = 0; i < old_cap; ++i) {
      if (!old_full[i]) continue;
      const std::size_t j = probe(old_slots[i].key);
      ::new (&slots_[j].key) K(old_slots[i].key);
      ::new (&slots_[j].val) V(std::move(old_slots[i].val));
      full_[j] = true;
      ++size_;
      old_slots[i].key.~K();
      old_slots[i].val.~V();
    }
  }

  void destroy() {
    clear();
    slots_storage_.reset();
    full_storage_.reset();
    slots_ = nullptr;
    full_ = nullptr;
    cap_ = 0;
  }

  void swap(FlatMap& o) {
    std::swap(slots_storage_, o.slots_storage_);
    std::swap(full_storage_, o.full_storage_);
    std::swap(slots_, o.slots_);
    std::swap(full_, o.full_);
    std::swap(cap_, o.cap_);
    std::swap(size_, o.size_);
  }

  std::unique_ptr<Slot[]> slots_storage_;
  std::unique_ptr<bool[]> full_storage_;
  Slot* slots_ = nullptr;
  bool* full_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
};

/// Open-addressing set over a trivially copyable key.
template <class K, class Hash = FlatHash>
class FlatSet {
 public:
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  void reserve(std::size_t n) { map_.reserve(n); }
  [[nodiscard]] bool contains(const K& k) const { return map_.contains(k); }
  bool insert(const K& k) { return map_.try_emplace(k).second; }
  bool erase(const K& k) { return map_.erase(k); }
  void clear() { map_.clear(); }
  template <class F>
  void for_each(F&& fn) const {
    map_.for_each([&fn](const K& k, const Empty&) { fn(k); });
  }

 private:
  struct Empty {};
  FlatMap<K, Empty, Hash> map_;
};

/// Vector with inline storage for the first N elements.  Restricted to
/// trivially copyable element types (ids, small PODs) so growth and move
/// are memcpys and destruction is free.
template <class T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  SmallVec() = default;
  SmallVec(const SmallVec& o) { assign_from(o); }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      size_ = 0;
      assign_from(o);
    }
    return *this;
  }
  SmallVec(SmallVec&& o) noexcept { take(o); }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      release_heap();
      take(o);
    }
    return *this;
  }
  ~SmallVec() { release_heap(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }

  void clear() { size_ = 0; }  // capacity (inline or heap) is retained

  void push_back(const T& v) {
    if (size_ == cap_) grow();
    data_[size_++] = v;
  }

  /// Appends iff absent; returns true when added.  The linear scan is the
  /// right tool at participant-set sizes (≤ a handful of nodes).
  bool insert_unique(const T& v) {
    for (std::size_t i = 0; i < size_; ++i) {
      if (data_[i] == v) return false;
    }
    push_back(v);
    return true;
  }

  [[nodiscard]] bool contains(const T& v) const {
    for (std::size_t i = 0; i < size_; ++i) {
      if (data_[i] == v) return true;
    }
    return false;
  }

  /// Removes the first occurrence, preserving order of the rest.
  bool erase_value(const T& v) {
    for (std::size_t i = 0; i < size_; ++i) {
      if (data_[i] == v) {
        std::memmove(data_ + i, data_ + i + 1,
                     (size_ - i - 1) * sizeof(T));
        --size_;
        return true;
      }
    }
    return false;
  }

 private:
  void grow() {
    const std::size_t new_cap = cap_ * 2;
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    std::memcpy(fresh, data_, size_ * sizeof(T));
    release_heap();
    data_ = fresh;
    cap_ = new_cap;
  }

  void release_heap() {
    if (data_ != inline_ptr()) ::operator delete(data_);
  }

  void assign_from(const SmallVec& o) {
    if (o.size_ > cap_) {
      release_heap();
      data_ = static_cast<T*>(::operator new(o.cap_ * sizeof(T)));
      cap_ = o.cap_;
    }
    std::memcpy(data_, o.data_, o.size_ * sizeof(T));
    size_ = o.size_;
  }

  void take(SmallVec& o) {
    if (o.data_ == o.inline_ptr()) {
      data_ = inline_ptr();
      cap_ = N;
      std::memcpy(data_, o.data_, o.size_ * sizeof(T));
    } else {
      data_ = o.data_;
      cap_ = o.cap_;
      o.data_ = o.inline_ptr();
      o.cap_ = N;
    }
    size_ = o.size_;
    o.size_ = 0;
  }

  [[nodiscard]] T* inline_ptr() {
    return std::launder(reinterpret_cast<T*>(inline_buf_));
  }
  [[nodiscard]] const T* inline_ptr() const {
    return std::launder(reinterpret_cast<const T*>(inline_buf_));
  }

  alignas(T) unsigned char inline_buf_[N * sizeof(T)];
  T* data_ = inline_ptr();
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace opc
