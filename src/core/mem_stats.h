// Process-wide memory-architecture introspection.
//
// The arena/pool substrate (src/core/arena.h) and the SBO message body
// (src/env/message_body.h) report what they do here so benches and the
// allocation gate can surface the numbers (`mem.*` rows in bench output)
// without the hot path touching a StatsRegistry.  Counters are monotonic
// and process-global; relaxed atomics keep the rt (threaded) backend safe
// at the cost of one uncontended atomic add per (rare) slow-path event —
// fast paths never touch them.
#pragma once

#include <atomic>
#include <cstdint>

namespace opc {

struct MemStats {
  /// Bytes handed out by Arena slab allocations (cumulative).
  std::atomic<std::int64_t> arena_bytes{0};
  /// Number of Arena::reset() calls (slab recycling events).
  std::atomic<std::int64_t> arena_resets{0};
  /// Objects currently parked in Pool free lists.
  std::atomic<std::int64_t> pool_free{0};
  /// MessageBody payloads that exceeded the inline buffer and spilled to
  /// the heap.  Zero for the closed acp/fs message vocabulary.
  std::atomic<std::int64_t> sbo_spills{0};

  static MemStats& global() {
    static MemStats g;
    return g;
  }
};

}  // namespace opc
