// Experiment driver: one self-contained simulation per call.
//
// Each run owns its Simulator, Cluster, planner and sources, making runs
// pure functions of (config, seed) — the property the parallel sweep runner
// (core/sweep.h) relies on to fan experiments out across threads with
// bitwise-reproducible results.
#pragma once

#include <cstdint>
#include <string>

#include <vector>

#include "cluster/cluster.h"
#include "obs/phase.h"
#include "sim/trace.h"
#include "workload/source.h"

namespace opc {

struct ExperimentConfig {
  ClusterConfig cluster;
  SourceConfig source;
  Duration run_for = Duration::seconds(30);
  Duration warmup = Duration::seconds(5);
  bool trace = false;  // record the full event trace (costly; debug only)

  /// Number of independent hot directories (all on the coordinator MDS).
  /// 1 = the paper's single-directory storm; >1 removes the directory-lock
  /// serialization so coordinator-side device contention shows (each
  /// directory gets its own closed-loop source with concurrency/n clients).
  std::uint32_t n_directories = 1;

  /// Participants per storm transaction.  2 = the paper's two-MDS create;
  /// >2 widens every submission to one create per worker node (nodes
  /// 1..participants-1), so each transaction spans the coordinator plus
  /// participants-1 distinct inode servers.  Requires participants <=
  /// cluster.n_nodes.  Note 1PC degrades wider-than-two-party transactions
  /// to presumed-abort (src/acp/protocol.h).
  std::uint32_t participants = 2;

  /// Fault injection (ablation E): crash a node every `crash_period`
  /// (0 = never), alternating worker/coordinator per the flags.
  Duration crash_period = Duration::zero();
  Duration crash_reboot_after = Duration::millis(500);
  bool crash_worker = true;
  bool crash_coordinator = false;
};

struct ExperimentResult {
  double ops_per_second = 0.0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t lost = 0;
  Histogram latency;          // client-visible commit latency
  StatsRegistry stats;        // full counter snapshot
  std::uint64_t trace_hash = 0;
  std::size_t invariant_violations = 0;
  std::string violation_report;
  bool serializable = true;
  double coordinator_disk_busy = 0.0;  // utilization of the hot log device

  // Populated only when ExperimentConfig::trace is set: the raw event
  // stream plus the engine phase side-channel, the inputs the span
  // assembler (obs/assembler.h) and `opc trace` consume.
  std::vector<TraceEvent> trace_events;
  obs::PhaseLog phases;
};

/// The paper's evaluation parameters (§IV): 1 µs method compute, 100 µs
/// network latency, 400 KB/s log devices, 100 concurrent distributed
/// creates against one MDS.  Two nodes: the hot directory's MDS
/// (coordinator) plus the inode server (worker).
[[nodiscard]] ExperimentConfig paper_fig6_config(ProtocolKind proto);

/// Figure 6: distributed CREATE storm into one directory; every create is a
/// two-MDS distributed transaction.
[[nodiscard]] ExperimentResult run_create_storm(const ExperimentConfig& cfg);

/// Mixed CREATE/DELETE/RENAME workload over a hash-partitioned namespace of
/// `n_dirs` directories on a `cluster.n_nodes`-wide cluster; exercises the
/// hybrid 1PC->PrN fallback for four-party renames.
[[nodiscard]] ExperimentResult run_mixed(const ExperimentConfig& cfg,
                                         MixedSource::Mix mix,
                                         std::uint32_t n_dirs);

/// Batched create storm (paper §VI future work): each transaction carries
/// `batch` creates in the hot directory, amortizing locks, messages and
/// forced writes.
[[nodiscard]] ExperimentResult run_batched_storm(const ExperimentConfig& cfg,
                                                 std::uint32_t batch);

}  // namespace opc
