// Single-transaction instrumentation: reproduces the paper's Figures 2-5
// (protocol timelines) and Table I (message / log-write counts).
#pragma once

#include <string>

#include "acp/protocol.h"
#include "sim/time.h"
#include "stats/counters.h"

namespace opc {

struct TimelineResult {
  ProtocolKind proto = ProtocolKind::kPrN;
  // Table I counters, measured from one distributed CREATE.
  int sync_writes = 0;
  int sync_writes_critical = 0;
  int async_writes = 0;
  int async_writes_critical = 0;
  int extra_msgs = 0;           // beyond the UPDATE_REQ/UPDATED base pair
  int extra_msgs_critical = 0;
  // Latency shape.
  Duration client_latency;      // request -> client reply
  Duration txn_complete;        // request -> protocol fully finished
  // Rendered two-column message sequence chart.
  std::string chart;
};

/// Runs exactly one distributed CREATE (coordinator mds0, worker mds1)
/// under `proto` with the paper's cost parameters and full tracing, and
/// extracts the Table I counters plus a rendered timeline.
[[nodiscard]] TimelineResult run_single_create(ProtocolKind proto);

}  // namespace opc
