// Workload sources — the ACID Sim Tools "source" + "leave" modules.
//
// A source drives one coordinator MDS with a closed loop of namespace
// operations: `concurrency` transactions are kept outstanding; each
// completion immediately triggers the next submission (and aborted
// operations are re-submitted, matching the simulator the paper used, whose
// leave module "resubmits aborted transactions to the responsible source").
//
// An optional client-side watchdog re-issues work when a reply never
// arrives (coordinator crash) so closed loops survive failure injection.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/flat.h"
#include "mds/namespace.h"
#include "sim/check.h"
#include "stats/meter.h"

namespace opc {

struct SourceConfig {
  std::uint32_t concurrency = 100;  // paper's Fig. 6 value
  std::uint64_t max_ops = 0;        // 0 = unbounded (run to deadline)
  Duration think_time = Duration::zero();
  Duration client_timeout = Duration::zero();  // 0 = trust the cluster
  bool resubmit_aborted = true;
  /// Pause before re-submitting after an abort; keeps failure storms from
  /// degenerating into tight retry loops against a struggling server.
  Duration retry_backoff = Duration::millis(5);
};

/// Closed-loop source skeleton; subclasses produce the transactions.
class ClosedLoopSource {
 public:
  ClosedLoopSource(Env& env, Cluster& cluster, SourceConfig cfg,
                   ThroughputMeter& meter, StatsRegistry& stats)
      : env_(env), cluster_(cluster), cfg_(cfg), meter_(meter),
        stats_(stats),
        c_issued_(stats, "workload.issued"),
        c_committed_(stats, "workload.committed"),
        c_aborted_(stats, "workload.aborted"),
        c_lost_(stats, "workload.lost"),
        c_late_(stats, "workload.late_replies") {}
  virtual ~ClosedLoopSource() = default;

  ClosedLoopSource(const ClosedLoopSource&) = delete;
  ClosedLoopSource& operator=(const ClosedLoopSource&) = delete;

  /// Fires `concurrency` initial submissions.
  void start();

  /// Stops issuing new work; in-flight transactions drain naturally.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t committed() const { return committed_; }
  [[nodiscard]] std::uint64_t aborted() const { return aborted_; }
  [[nodiscard]] std::uint64_t lost() const { return lost_; }
  [[nodiscard]] std::uint64_t issued() const { return issued_; }

 protected:
  /// Produces the next transaction, or false when the workload is
  /// exhausted.  `retry` is true when re-issuing after an abort/loss.
  virtual bool make_txn(Transaction& out, bool retry) = 0;

  /// Outcome hook for subclasses that track a client-side namespace image.
  virtual void on_outcome(const Transaction& txn, TxnOutcome outcome) {
    (void)txn;
    (void)outcome;
  }

  /// Sources that override on_outcome return true so the submit
  /// continuation carries a copy of the transaction body.  The default
  /// closed loop doesn't need one, and skipping the copy keeps the storm's
  /// issue path off the heap (a 16-byte capture rides std::function's SBO).
  [[nodiscard]] virtual bool wants_outcome_body() const { return false; }

  Env& env_;
  Cluster& cluster_;

 private:
  void issue(bool retry);
  void complete(const Transaction& txn, TxnOutcome outcome,
                std::uint64_t watchdog_gen);

  SourceConfig cfg_;
  ThroughputMeter& meter_;
  StatsRegistry& stats_;
  Counter c_issued_;
  Counter c_committed_;
  Counter c_aborted_;
  Counter c_lost_;
  Counter c_late_;
  FlatSet<std::uint64_t> outstanding_;
  bool stopped_ = false;
  std::uint64_t issued_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t watchdog_gen_ = 0;
};

/// The paper's Figure 6 workload: an HPC application creating many files in
/// one (hot) directory, with every create a two-MDS distributed
/// transaction.  A non-empty `spread` widens each transaction to
/// 1+spread.size() participants: every submission creates one file per
/// listed node, with that node hosting the inode (explicit placement,
/// bypassing the partitioner) — the N-participant storm shape.
class CreateStormSource final : public ClosedLoopSource {
 public:
  CreateStormSource(Env& env, Cluster& cluster, SourceConfig cfg,
                    ThroughputMeter& meter, StatsRegistry& stats,
                    NamespacePlanner& planner, IdAllocator& ids,
                    ObjectId directory, std::string name_prefix = "f",
                    std::uint32_t batch = 1, std::vector<NodeId> spread = {})
      : ClosedLoopSource(env, cluster, cfg, meter, stats), planner_(planner),
        ids_(ids), dir_(directory), prefix_(std::move(name_prefix)),
        batch_(batch), spread_(std::move(spread)) {
    SIM_CHECK_MSG(spread_.empty() || batch_ <= 1,
                  "spread and batch are alternative wide-txn shapes");
  }

 protected:
  bool make_txn(Transaction& out, bool retry) override;

 private:
  NamespacePlanner& planner_;
  IdAllocator& ids_;
  ObjectId dir_;
  std::string prefix_;
  std::uint32_t batch_;
  std::vector<NodeId> spread_;
  std::uint64_t counter_ = 0;
};

/// Open-loop source: namespace operations arrive as a Poisson process at a
/// configured rate, regardless of completions — the standard way to
/// measure latency as a function of offered load (closed loops hide
/// queueing delay behind their self-throttling).  Operations are
/// distributed CREATEs into one hot directory, like the Figure 6 storm.
class OpenLoopCreateSource {
 public:
  OpenLoopCreateSource(Env& env, Cluster& cluster, double ops_per_second,
                       ThroughputMeter& meter, StatsRegistry& stats,
                       NamespacePlanner& planner, IdAllocator& ids,
                       ObjectId directory, std::uint64_t seed);

  /// Starts the arrival process; it stops itself at `stop_at`.
  void start(SimTime stop_at);

  [[nodiscard]] std::uint64_t issued() const { return issued_; }
  [[nodiscard]] std::uint64_t committed() const { return committed_; }
  /// Client-visible latency of committed operations.
  [[nodiscard]] const Histogram& latency() const { return latency_; }

 private:
  void schedule_next();

  Env& env_;
  Cluster& cluster_;
  Duration mean_interarrival_;
  ThroughputMeter& meter_;
  StatsRegistry& stats_;
  NamespacePlanner& planner_;
  IdAllocator& ids_;
  ObjectId dir_;
  Rng rng_;
  SimTime stop_at_;
  Histogram latency_;
  std::uint64_t issued_ = 0;
  std::uint64_t committed_ = 0;
};

/// Mixed namespace workload over a set of directories: CREATE / DELETE /
/// RENAME with configurable ratios.  RENAME can touch up to four MDSs,
/// exercising the hybrid 1PC -> PrN fallback.  `participants` > 2 widens
/// every CREATE to one file per worker node (participants-1 distinct
/// non-coordinator homes); inode ids are drawn until the hash partitioner
/// agrees with the explicit placement, so later DELETE/RENAME plans find
/// the inode where it actually lives.
class MixedSource final : public ClosedLoopSource {
 public:
  struct Mix {
    double create = 0.70;
    double remove = 0.25;  // rest is rename
  };

  MixedSource(Env& env, Cluster& cluster, SourceConfig cfg,
              ThroughputMeter& meter, StatsRegistry& stats,
              NamespacePlanner& planner, IdAllocator& ids,
              std::vector<ObjectId> directories, Mix mix, std::uint64_t seed,
              std::uint32_t participants = 2);

 protected:
  bool make_txn(Transaction& out, bool retry) override;
  void on_outcome(const Transaction& txn, TxnOutcome outcome) override;
  [[nodiscard]] bool wants_outcome_body() const override { return true; }

 private:
  struct FileRef {
    ObjectId dir;
    std::string name;
    ObjectId inode;
  };

  NamespacePlanner& planner_;
  IdAllocator& ids_;
  std::vector<ObjectId> dirs_;
  Mix mix_;
  Rng rng_;
  std::uint32_t participants_;
  std::vector<FileRef> files_;            // committed, not in flight
  FlatSet<std::uint64_t> busy_inodes_;
  std::uint64_t counter_ = 0;
};

}  // namespace opc
