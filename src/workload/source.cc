#include "workload/source.h"

#include <algorithm>

namespace opc {

void ClosedLoopSource::start() {
  for (std::uint32_t i = 0; i < cfg_.concurrency; ++i) issue(false);
}

void ClosedLoopSource::issue(bool retry) {
  if (stopped_) return;
  if (cfg_.max_ops != 0 && issued_ >= cfg_.max_ops) return;
  Transaction txn;
  if (!make_txn(txn, retry)) return;
  ++issued_;
  c_issued_.add();
  const std::uint64_t gen = ++watchdog_gen_;
  outstanding_.insert(gen);

  if (wants_outcome_body()) {
    // The callback owns a copy of the transaction body so on_outcome can
    // update the client-side namespace image.
    if (cfg_.client_timeout > Duration::zero()) {
      env_.schedule_after(cfg_.client_timeout, [this, txn, gen] {
        if (!outstanding_.erase(gen)) return;  // already completed
        ++lost_;
        c_lost_.add();
        on_outcome(txn, TxnOutcome::kPending);
        issue(true);
      });
    }
    AcpEngine::ClientCallback cb = [this, txn,
                                    gen](TxnId, TxnOutcome outcome) {
      complete(txn, outcome, gen);
    };
    cluster_.submit(std::move(txn), std::move(cb));
    return;
  }

  // on_outcome is a no-op for this source: no body copy needed, and the
  // transaction itself is moved all the way into the engine.
  if (cfg_.client_timeout > Duration::zero()) {
    env_.schedule_after(cfg_.client_timeout, [this, gen] {
      if (!outstanding_.erase(gen)) return;  // already completed
      ++lost_;
      c_lost_.add();
      issue(true);
    });
  }
  static const Transaction kNoBody{};
  cluster_.submit(std::move(txn), [this, gen](TxnId, TxnOutcome outcome) {
    complete(kNoBody, outcome, gen);
  });
}

void ClosedLoopSource::complete(const Transaction& txn, TxnOutcome outcome,
                                std::uint64_t watchdog_gen) {
  if (!outstanding_.erase(watchdog_gen)) {
    // The watchdog already gave up on this one; the loop slot has moved on,
    // but the operation really ran — a late commit still counts toward
    // system throughput (the paper measures completed operations, not
    // client-visible ones) and still updates the image.
    c_late_.add();
    if (outcome == TxnOutcome::kCommitted) {
      ++committed_;
      meter_.record(env_.now());
    }
    on_outcome(txn, outcome);
    return;
  }
  on_outcome(txn, outcome);
  const bool retry = outcome != TxnOutcome::kCommitted;
  if (outcome == TxnOutcome::kCommitted) {
    ++committed_;
    meter_.record(env_.now());
    c_committed_.add();
  } else {
    ++aborted_;
    c_aborted_.add();
    if (!cfg_.resubmit_aborted) return;
  }
  Duration pause = cfg_.think_time;
  if (retry) pause += cfg_.retry_backoff;
  if (pause > Duration::zero()) {
    env_.schedule_after(pause, [this, retry] { issue(retry); });
  } else {
    issue(retry);
  }
}

// ---------------------------------------------------------------------------

bool CreateStormSource::make_txn(Transaction& out, bool /*retry*/) {
  if (!spread_.empty()) {
    std::vector<std::pair<std::string, ObjectId>> entries;
    entries.reserve(spread_.size());
    for (std::size_t i = 0; i < spread_.size(); ++i) {
      entries.emplace_back(prefix_ + std::to_string(counter_++), ids_.next());
    }
    out = planner_.plan_create_spread(dir_, entries, spread_);
    return true;
  }
  if (batch_ <= 1) {
    const std::string name = prefix_ + std::to_string(counter_++);
    out = planner_.plan_create(dir_, name, ids_.next(), /*is_dir=*/false,
                               counter_);
    return true;
  }
  std::vector<std::pair<std::string, ObjectId>> entries;
  entries.reserve(batch_);
  for (std::uint32_t i = 0; i < batch_; ++i) {
    entries.emplace_back(prefix_ + std::to_string(counter_++), ids_.next());
  }
  out = planner_.plan_create_batch(dir_, entries, counter_);
  return true;
}

// ---------------------------------------------------------------------------

OpenLoopCreateSource::OpenLoopCreateSource(
    Env& env, Cluster& cluster, double ops_per_second,
    ThroughputMeter& meter, StatsRegistry& stats, NamespacePlanner& planner,
    IdAllocator& ids, ObjectId directory, std::uint64_t seed)
    : env_(env), cluster_(cluster),
      mean_interarrival_(Duration::from_seconds_f(1.0 / ops_per_second)),
      meter_(meter), stats_(stats), planner_(planner), ids_(ids),
      dir_(directory), rng_(seed, /*stream=*/0x0B50) {
  SIM_CHECK(ops_per_second > 0);
}

void OpenLoopCreateSource::start(SimTime stop_at) {
  stop_at_ = stop_at;
  schedule_next();
}

void OpenLoopCreateSource::schedule_next() {
  const Duration gap = rng_.exponential(mean_interarrival_);
  env_.schedule_after(gap, [this] {
    if (env_.now() >= stop_at_) return;
    const std::string name = "o" + std::to_string(issued_++);
    stats_.add("workload.issued");
    const SimTime submitted = env_.now();
    cluster_.submit(
        planner_.plan_create(dir_, name, ids_.next(), false, issued_),
        [this, submitted](TxnId, TxnOutcome outcome) {
          if (outcome == TxnOutcome::kCommitted) {
            ++committed_;
            meter_.record(env_.now());
            latency_.record(env_.now() - submitted);
            stats_.add("workload.committed");
          } else {
            stats_.add("workload.aborted");
          }
        });
    schedule_next();
  });
}

// ---------------------------------------------------------------------------

MixedSource::MixedSource(Env& env, Cluster& cluster, SourceConfig cfg,
                         ThroughputMeter& meter, StatsRegistry& stats,
                         NamespacePlanner& planner, IdAllocator& ids,
                         std::vector<ObjectId> directories, Mix mix,
                         std::uint64_t seed, std::uint32_t participants)
    : ClosedLoopSource(env, cluster, cfg, meter, stats), planner_(planner),
      ids_(ids), dirs_(std::move(directories)), mix_(mix),
      rng_(seed, /*stream=*/0x3157), participants_(participants) {
  SIM_CHECK(!dirs_.empty());
  SIM_CHECK_MSG(participants_ >= 2 &&
                    participants_ <= planner_.partitioner().cluster_size(),
                "wide creates need distinct worker nodes");
}

bool MixedSource::make_txn(Transaction& out, bool /*retry*/) {
  const double roll = rng_.uniform01();
  const bool want_remove = roll >= mix_.create && roll < mix_.create + mix_.remove;
  const bool want_rename = roll >= mix_.create + mix_.remove;

  if (want_remove || want_rename) {
    // Find a committed file that no in-flight operation is touching.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < files_.size(); ++i) {
      if (!busy_inodes_.contains(files_[i].inode.value())) {
        candidates.push_back(i);
      }
    }
    if (!candidates.empty()) {
      const FileRef f = files_[candidates[rng_.index(candidates.size())]];
      busy_inodes_.insert(f.inode.value());
      if (want_remove) {
        out = planner_.plan_delete(f.dir, f.name, f.inode);
      } else {
        const ObjectId dst = dirs_[rng_.index(dirs_.size())];
        out = planner_.plan_rename(f.dir, f.name, dst,
                                   "r" + std::to_string(counter_++), f.inode,
                                   std::nullopt);
      }
      return true;
    }
    // No eligible file yet; fall through to a create.
  }
  const ObjectId dir = dirs_[rng_.index(dirs_.size())];
  if (participants_ > 2) {
    // One create per worker node, workers walking the ring from the
    // coordinator.  Each inode id is drawn until the (stateless) hash
    // partitioner maps it to the intended home, so the explicit spread
    // placement and every later home_of() lookup agree.
    Partitioner& part = planner_.partitioner();
    const NodeId coord = part.home_of(dir);
    const std::uint32_t n = part.cluster_size();
    std::vector<std::pair<std::string, ObjectId>> entries;
    std::vector<NodeId> homes;
    entries.reserve(participants_ - 1);
    homes.reserve(participants_ - 1);
    for (std::uint32_t w = 1; w < participants_; ++w) {
      const NodeId want((coord.value() + w) % n);
      ObjectId inode = ids_.next();
      while (part.home_of(inode) != want) inode = ids_.next();
      entries.emplace_back("m" + std::to_string(counter_++), inode);
      homes.push_back(want);
    }
    out = planner_.plan_create_spread(dir, entries, homes);
    return true;
  }
  const std::uint64_t seq = counter_++;
  out = planner_.plan_create(dir, "m" + std::to_string(seq), ids_.next(),
                             /*is_dir=*/false, seq);
  return true;
}

void MixedSource::on_outcome(const Transaction& txn, TxnOutcome outcome) {
  // Reconstruct what the transaction did from its operation lists.
  const Operation* add = nullptr;
  const Operation* remove = nullptr;
  for (const Participant& p : txn.participants) {
    for (const Operation& op : p.ops) {
      if (op.type == OpType::kAddDentry) add = &op;
      if (op.type == OpType::kRemoveDentry) remove = &op;
    }
  }
  const ObjectId touched =
      add != nullptr ? add->child : (remove != nullptr ? remove->child
                                                       : kNoObject);
  if (touched.valid()) busy_inodes_.erase(touched.value());
  if (outcome != TxnOutcome::kCommitted) return;

  switch (txn.kind) {
    case NamespaceOpKind::kCreate:
      SIM_CHECK(add != nullptr);
      // Wide creates carry one AddDentry per spread entry; record them all
      // so every created file is a DELETE/RENAME candidate.
      for (const Participant& p : txn.participants) {
        for (const Operation& o : p.ops) {
          if (o.type == OpType::kAddDentry) {
            files_.push_back(FileRef{o.target, o.name, o.child});
          }
        }
      }
      break;
    case NamespaceOpKind::kDelete: {
      SIM_CHECK(remove != nullptr);
      auto it = std::find_if(files_.begin(), files_.end(),
                             [&](const FileRef& f) {
                               return f.inode == remove->child;
                             });
      if (it != files_.end()) files_.erase(it);
      break;
    }
    case NamespaceOpKind::kRename: {
      SIM_CHECK(add != nullptr && remove != nullptr);
      auto it = std::find_if(files_.begin(), files_.end(),
                             [&](const FileRef& f) {
                               return f.inode == add->child;
                             });
      if (it != files_.end()) {
        it->dir = add->target;
        it->name = add->name;
      }
      break;
    }
    case NamespaceOpKind::kCustom:
      break;
  }
}

}  // namespace opc
