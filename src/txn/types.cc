#include "txn/types.h"

namespace opc {
namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
// Little-endian byte writes, batched: one resize + direct stores instead of
// per-byte push_back capacity checks (these sit under every log record and
// message encode on the commit hot path).
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  for (int i = 0; i < 4; ++i) out[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  for (int i = 0; i < 8; ++i) out[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
}
bool get_u8(const std::vector<std::uint8_t>& b, std::size_t& o, std::uint8_t& v) {
  if (o + 1 > b.size()) return false;
  v = b[o++];
  return true;
}
bool get_u32(const std::vector<std::uint8_t>& b, std::size_t& o, std::uint32_t& v) {
  if (o + 4 > b.size()) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[o + i]) << (8 * i);
  o += 4;
  return true;
}
bool get_u64(const std::vector<std::uint8_t>& b, std::size_t& o, std::uint64_t& v) {
  if (o + 8 > b.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[o + i]) << (8 * i);
  o += 8;
  return true;
}

}  // namespace

const char* op_type_name(OpType t) {
  switch (t) {
    case OpType::kCreateInode: return "CreateInode";
    case OpType::kRemoveInode: return "RemoveInode";
    case OpType::kIncLink: return "IncLink";
    case OpType::kDecLink: return "DecLink";
    case OpType::kAddDentry: return "AddDentry";
    case OpType::kRemoveDentry: return "RemoveDentry";
    case OpType::kSetAttr: return "SetAttr";
    case OpType::kReadAttr: return "ReadAttr";
  }
  return "?";
}

const char* namespace_op_name(NamespaceOpKind k) {
  switch (k) {
    case NamespaceOpKind::kCreate: return "CREATE";
    case NamespaceOpKind::kDelete: return "DELETE";
    case NamespaceOpKind::kRename: return "RENAME";
    case NamespaceOpKind::kCustom: return "CUSTOM";
  }
  return "?";
}

std::size_t ops_wire_size(const std::vector<Operation>& ops) {
  std::size_t size = 4;  // count
  for (const Operation& op : ops) {
    size += 1 + 8 + 8 + 4 + op.name.size() + 8 + 8;
  }
  return size;
}

void encode_ops(const std::vector<Operation>& ops,
                std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + ops_wire_size(ops));
  put_u32(out, static_cast<std::uint32_t>(ops.size()));
  for (const Operation& op : ops) {
    put_u8(out, static_cast<std::uint8_t>(op.type));
    put_u64(out, op.target.value());
    put_u64(out, op.child.value());
    put_u32(out, static_cast<std::uint32_t>(op.name.size()));
    out.insert(out.end(), op.name.begin(), op.name.end());
    put_u64(out, op.log_bytes);
    put_u64(out, static_cast<std::uint64_t>(op.compute.count_nanos()));
  }
}

bool decode_ops(const std::vector<std::uint8_t>& buf,
                std::vector<Operation>& out) {
  std::size_t o = 0;
  std::uint32_t n = 0;
  if (!get_u32(buf, o, n)) return false;
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Operation op;
    std::uint8_t type = 0;
    std::uint64_t target = 0, child = 0, log_bytes = 0, compute = 0;
    std::uint32_t name_len = 0;
    if (!get_u8(buf, o, type) || type < 1 || type > 8) return false;
    if (!get_u64(buf, o, target) || !get_u64(buf, o, child) ||
        !get_u32(buf, o, name_len)) {
      return false;
    }
    if (o + name_len > buf.size()) return false;
    op.type = static_cast<OpType>(type);
    op.target = ObjectId(target);
    op.child = ObjectId(child);
    op.name.assign(buf.begin() + static_cast<std::ptrdiff_t>(o),
                   buf.begin() + static_cast<std::ptrdiff_t>(o + name_len));
    o += name_len;
    if (!get_u64(buf, o, log_bytes) || !get_u64(buf, o, compute)) return false;
    op.log_bytes = log_bytes;
    op.compute = Duration::nanos(static_cast<std::int64_t>(compute));
    out.push_back(std::move(op));
  }
  return o == buf.size();
}

std::vector<ObjectId> Transaction::objects_at(NodeId node) const {
  std::vector<ObjectId> out;
  for (const Participant& p : participants) {
    if (p.node != node) continue;
    for (const Operation& op : p.ops) {
      if (op.target.valid() &&
          std::find(out.begin(), out.end(), op.target) == out.end()) {
        out.push_back(op.target);
      }
    }
  }
  return out;
}

}  // namespace opc
