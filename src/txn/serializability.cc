#include "txn/serializability.h"

#include <algorithm>
#include <map>

namespace opc {

std::vector<std::pair<TxnId, TxnId>> HistoryRecorder::conflict_edges() const {
  // Group accesses per object in (time, seq) order, then emit an edge for
  // every ordered conflicting pair of distinct committed transactions.
  std::map<ObjectId, std::vector<const Access*>> per_obj;
  for (const Access& a : accesses_) {
    if (!committed_.contains(a.txn)) continue;
    per_obj[a.obj].push_back(&a);
  }
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::pair<TxnId, TxnId>> edges;
  for (auto& [obj, list] : per_obj) {
    (void)obj;
    std::sort(list.begin(), list.end(), [](const Access* x, const Access* y) {
      if (x->at != y->at) return x->at < y->at;
      return x->seq < y->seq;
    });
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        const Access* a = list[i];
        const Access* b = list[j];
        if (a->txn == b->txn) continue;
        if (!a->is_write && !b->is_write) continue;  // RR does not conflict
        const std::uint64_t key = a->txn * 0x9E3779B97F4A7C15ULL ^ b->txn;
        if (seen.insert(key).second) edges.emplace_back(a->txn, b->txn);
      }
    }
  }
  return edges;
}

std::vector<TxnId> HistoryRecorder::serialization_order() const {
  const auto edges = conflict_edges();
  std::unordered_map<TxnId, std::vector<TxnId>> adj;
  std::unordered_map<TxnId, int> indeg;
  for (TxnId t : committed_) indeg.emplace(t, 0);
  for (const auto& [u, v] : edges) {
    adj[u].push_back(v);
    ++indeg[v];
  }
  // Kahn's algorithm with the smallest-id tie-break for determinism.
  std::vector<TxnId> ready;
  for (const auto& [t, d] : indeg) {
    if (d == 0) ready.push_back(t);
  }
  std::sort(ready.begin(), ready.end(), std::greater<>());
  std::vector<TxnId> order;
  while (!ready.empty()) {
    const TxnId u = ready.back();
    ready.pop_back();
    order.push_back(u);
    if (auto it = adj.find(u); it != adj.end()) {
      for (TxnId v : it->second) {
        if (--indeg[v] == 0) {
          ready.push_back(v);
          std::sort(ready.begin(), ready.end(), std::greater<>());
        }
      }
    }
  }
  if (order.size() != indeg.size()) order.clear();  // cycle
  return order;
}

bool HistoryRecorder::serializable() const {
  return committed_.empty() || !serialization_order().empty();
}

}  // namespace opc
