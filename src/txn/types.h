// Transaction-layer vocabulary: metadata objects, operations, transactions.
//
// A distributed namespace operation (paper §II) decomposes into primitive
// metadata *methods* executed at specific MDSs — e.g. DELETE(file1) =
// [RemoveDentry @ MDS of dir] + [DecLink(+maybe RemoveInode) @ MDS of
// inode].  The commit protocols move vectors of these Operations around;
// the MDS layer interprets them against its tables.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "net/types.h"
#include "sim/time.h"

namespace opc {

/// Cluster-global metadata object identifier (an inode number; directories
/// are inodes too).  Doubles as the lock resource key.
class ObjectId {
 public:
  constexpr ObjectId() = default;
  explicit constexpr ObjectId(std::uint64_t v) : v_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != 0; }
  constexpr auto operator<=>(const ObjectId&) const = default;

 private:
  std::uint64_t v_ = 0;  // 0 = invalid / none
};

inline constexpr ObjectId kNoObject{};

using TxnId = std::uint64_t;

/// Primitive metadata methods.
enum class OpType : std::uint8_t {
  kCreateInode = 1,   // target = new inode id
  kRemoveInode = 2,   // target = inode id
  kIncLink = 3,       // target = inode id
  kDecLink = 4,       // target = inode id; removes the inode at nlink==0
  kAddDentry = 5,     // target = directory inode, name + child
  kRemoveDentry = 6,  // target = directory inode, name
  kSetAttr = 7,       // target = inode id (attribute touch)
  kReadAttr = 8,      // target = inode id, read-only (shared lock)
};

[[nodiscard]] const char* op_type_name(OpType t);

/// True for methods that only read (lock in shared mode).
[[nodiscard]] constexpr bool op_is_read(OpType t) {
  return t == OpType::kReadAttr;
}

/// One metadata method at one MDS.
struct Operation {
  OpType type = OpType::kSetAttr;
  ObjectId target;            // object operated on (locked)
  ObjectId child;             // for dentry ops: the referenced inode
  std::string name;           // for dentry ops: the entry name
  std::uint64_t log_bytes = 2048;      // modeled WAL footprint of the update
  Duration compute = Duration::micros(1);  // paper: 1 µs per method

  [[nodiscard]] bool operator==(const Operation&) const = default;
};

/// Serializes operations into an opaque payload (for REDO log records and
/// UPDATE_REQ messages).  Round-trips exactly; see tests/txn.
/// encode_ops reserves the exact encoded size up front, so a fresh payload
/// costs one allocation — these run per log record on the commit hot path.
[[nodiscard]] std::size_t ops_wire_size(const std::vector<Operation>& ops);
void encode_ops(const std::vector<Operation>& ops,
                std::vector<std::uint8_t>& out);
[[nodiscard]] bool decode_ops(const std::vector<std::uint8_t>& buf,
                              std::vector<Operation>& out);

/// What kind of namespace operation a transaction implements (for stats and
/// workload accounting; the protocols do not branch on it).
enum class NamespaceOpKind : std::uint8_t {
  kCreate,
  kDelete,
  kRename,
  kCustom,
};

[[nodiscard]] const char* namespace_op_name(NamespaceOpKind k);

enum class TxnOutcome : std::uint8_t { kPending, kCommitted, kAborted };

/// One participant's share of a transaction.  participants[0] is always the
/// coordinator.
struct Participant {
  NodeId node;
  std::vector<Operation> ops;
};

/// A distributed transaction as submitted to a coordinator MDS.
struct Transaction {
  TxnId id = 0;
  NamespaceOpKind kind = NamespaceOpKind::kCustom;
  std::vector<Participant> participants;

  [[nodiscard]] NodeId coordinator() const {
    return participants.empty() ? kNoNode : participants.front().node;
  }
  /// Indexed participant view: participant(0) is the coordinator,
  /// participant(1..n_workers()) are the workers.
  [[nodiscard]] const Participant& participant(std::size_t i) const {
    return participants[i];
  }
  [[nodiscard]] std::size_t n_workers() const {
    return participants.empty() ? 0 : participants.size() - 1;
  }
  /// The sole worker of a two-party transaction.  1PC's unilateral worker
  /// commit and its fence-and-read recovery rule are defined only for this
  /// shape (choose_protocol degrades wider transactions); kNoNode otherwise.
  [[nodiscard]] NodeId sole_worker() const {
    return participants.size() == 2 ? participants[1].node : kNoNode;
  }
  [[nodiscard]] bool is_local() const { return participants.size() <= 1; }
  [[nodiscard]] std::size_t n_participants() const {
    return participants.size();
  }

  /// Every object the transaction touches at `node`, for locking.
  [[nodiscard]] std::vector<ObjectId> objects_at(NodeId node) const;
};

}  // namespace opc

template <>
struct std::hash<opc::ObjectId> {
  std::size_t operator()(const opc::ObjectId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
