// Conflict-serializability certification for committed histories.
//
// The isolation tests record every object access (who, what, read/write,
// when) and every commit; the checker builds the conflict graph over
// committed transactions — an edge ti -> tj whenever ti's access to an
// object precedes a conflicting access by tj — and certifies the history
// serializable iff that graph is acyclic.  Strict 2PL guarantees this; the
// tests make the guarantee observable.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.h"
#include "txn/types.h"

namespace opc {

class HistoryRecorder {
 public:
  struct Access {
    TxnId txn;
    ObjectId obj;
    bool is_write;
    SimTime at;
    std::uint64_t seq;  // total order among same-instant accesses
    std::uint32_t node;
  };

  /// Records an object access.  `node` identifies the recording MDS so that
  /// drop_accesses() can void a node's pre-crash accesses (whose effects
  /// evaporated with its cache) without touching surviving ones.
  void record_access(TxnId txn, ObjectId obj, bool is_write, SimTime at,
                     std::uint32_t node = UINT32_MAX) {
    accesses_.push_back(Access{txn, obj, is_write, at, seq_++, node});
  }
  void record_commit(TxnId txn) { committed_.insert(txn); }
  void record_abort(TxnId txn) { aborted_.insert(txn); }

  /// Voids the accesses `node` recorded for `txn` — called when the node
  /// crashes while the transaction's effects there were still volatile.  A
  /// later re-drive records fresh accesses at their true (post-recovery)
  /// position in the conflict order.
  void drop_accesses(std::uint32_t node, TxnId txn) {
    std::erase_if(accesses_, [&](const Access& a) {
      return a.node == node && a.txn == txn;
    });
  }

  [[nodiscard]] std::size_t access_count() const { return accesses_.size(); }
  /// Raw access log (debugging failing histories).
  [[nodiscard]] const std::vector<Access>& accesses() const {
    return accesses_;
  }
  [[nodiscard]] const std::unordered_set<TxnId>& committed() const {
    return committed_;
  }

  /// Conflict edges between committed transactions (deduplicated).
  [[nodiscard]] std::vector<std::pair<TxnId, TxnId>> conflict_edges() const;

  /// True iff the committed history is conflict-serializable.
  [[nodiscard]] bool serializable() const;

  /// A topological order witnessing serializability (empty if cyclic).
  [[nodiscard]] std::vector<TxnId> serialization_order() const;

 private:
  std::vector<Access> accesses_;
  std::unordered_set<TxnId> committed_;
  std::unordered_set<TxnId> aborted_;
  std::uint64_t seq_ = 0;
};

}  // namespace opc
