#include "wal/log_writer.h"

#include <utility>

namespace opc {
namespace {
constexpr std::size_t kMaxPooledRecs = 32;
constexpr std::size_t kMaxPooledBatches = 8;
}  // namespace

std::uint64_t LogWriter::padded(std::uint64_t bytes) const {
  if (cfg_.force_pad_to == 0) return bytes;
  const std::uint64_t blocks =
      (bytes + cfg_.force_pad_to - 1) / cfg_.force_pad_to;
  return std::max<std::uint64_t>(blocks, 1) * cfg_.force_pad_to;
}

std::vector<LogRecord> LogWriter::checkout_recs() {
  if (recs_pool_.empty()) return {};
  std::vector<LogRecord> v = std::move(recs_pool_.back());
  recs_pool_.pop_back();
  return v;
}

void LogWriter::recycle_recs(std::vector<LogRecord>&& recs) {
  if (recs_pool_.size() >= kMaxPooledRecs) return;
  recs.clear();
  recs_pool_.push_back(std::move(recs));
}

void LogWriter::force(std::vector<LogRecord> recs, WriteTag tag,
                      ForceCallback on_durable) {
  SIM_CHECK(on_durable != nullptr);
  if (crashed_ || part_.fenced()) {
    stats_.add("wal.force.dropped");
    return;  // the continuation is intentionally lost
  }
  c_force_count_.add();
  if (tag.critical) c_force_critical_.add();

  // Piggyback: lazily buffered records ride this force's block for free.
  if (!lazy_buf_.empty()) {
    recs.insert(recs.begin(), std::make_move_iterator(lazy_buf_.begin()),
                std::make_move_iterator(lazy_buf_.end()));
    lazy_buf_.clear();
    env_.cancel(lazy_flush_timer_);
    lazy_flush_timer_ = TimerHandle{};
  }

  PendingForce pf{std::move(recs), std::move(on_durable)};
  if (cfg_.group_commit && force_in_flight_) {
    coalesce_queue_.push_back(std::move(pf));
    stats_.add("wal.force.coalesced");
    return;
  }
  std::vector<PendingForce> batch;
  if (!batch_pool_.empty()) {
    batch = std::move(batch_pool_.back());
    batch_pool_.pop_back();
  }
  batch.push_back(std::move(pf));
  submit(std::move(batch));
}

void LogWriter::submit(std::vector<PendingForce> batch) {
  std::uint64_t bytes = 0;
  for (const auto& pf : batch) {
    for (const auto& r : pf.recs) bytes += r.modeled_bytes;
  }
  // The label only feeds trace output; skip composing it when nobody reads
  // it (the disk guards its own record calls the same way).
  std::string label;
  if (trace_.active()) {
    label = "force:" + owner_.str();
    for (const auto& pf : batch) {
      for (const auto& r : pf.recs) {
        label += ' ';
        label += record_type_name(r.type);
      }
    }
  }
  bytes = padded(bytes);
  c_force_bytes_.add(static_cast<std::int64_t>(bytes));

  force_in_flight_ = true;
  ++outstanding_forces_;
  const std::uint64_t epoch = crash_epoch_;
  part_.device().write(
      owner_, bytes, std::move(label),
      [this, epoch, batch = std::move(batch)]() mutable {
        // cancel_owner() suppresses this callback on crash/fence, but guard
        // against a crash+reboot cycle that raced the disk completion.
        if (epoch != crash_epoch_ || crashed_) return;
        --outstanding_forces_;
        for (auto& pf : batch) {
          part_.append_durable(pf.recs);
        }
        force_in_flight_ = false;
        // Run continuations after the durable append so they observe the
        // records in the partition.
        for (auto& pf : batch) pf.done();
        for (auto& pf : batch) recycle_recs(std::move(pf.recs));
        batch.clear();
        if (batch_pool_.size() < kMaxPooledBatches) {
          batch_pool_.push_back(std::move(batch));
        }
        if (!coalesce_queue_.empty()) {
          auto next = std::move(coalesce_queue_);
          coalesce_queue_.clear();
          submit(std::move(next));
        }
      });
}

void LogWriter::lazy(LogRecord rec, WriteTag tag) {
  if (crashed_ || part_.fenced()) {
    stats_.add("wal.lazy.dropped");
    return;
  }
  c_lazy_count_.add();
  if (tag.critical) c_lazy_critical_.add();
  if (trace_.active()) {
    trace_.record(env_.now(), TraceKind::kLogLazyWrite, owner_.str(),
                  "lazy " + std::string(record_type_name(rec.type)) + " (" +
                      tag.label + ")",
                  rec.txn);
  }
  lazy_buf_.push_back(std::move(rec));
  schedule_lazy_flush();
}

void LogWriter::schedule_lazy_flush() {
  if (lazy_flush_timer_.valid()) return;
  auto flush_cb = [this] {
    lazy_flush_timer_ = TimerHandle{};
    if (lazy_buf_.empty() || crashed_ || part_.fenced()) return;
    auto recs = std::move(lazy_buf_);
    lazy_buf_.clear();
    if (cfg_.lazy_flush_occupies_device) {
      std::uint64_t bytes = 0;
      for (const auto& r : recs) bytes += r.modeled_bytes;
      const std::uint64_t epoch = crash_epoch_;
      std::string label;
      if (trace_.active()) label = "lazyflush:" + owner_.str();
      part_.device().write(owner_, padded(bytes), std::move(label),
                           [this, epoch, recs = std::move(recs)]() mutable {
                             if (epoch != crash_epoch_ || crashed_) return;
                             part_.append_durable(recs);
                             recycle_recs(std::move(recs));
                           });
    } else {
      // Background flush modeled as free: the device would absorb these in
      // idle gaps; see DESIGN.md §5 (asynchronous writes coalesce).  The
      // device is only idle if no force is outstanding — flushing past a
      // queued force would reorder the durable log (a real WAL appends in
      // LSN order), so re-buffer and retry after the force completes.
      if (outstanding_forces_ > 0) {
        lazy_buf_.insert(lazy_buf_.begin(),
                         std::make_move_iterator(recs.begin()),
                         std::make_move_iterator(recs.end()));
        recycle_recs(std::move(recs));
        schedule_lazy_flush();
        return;
      }
      part_.append_durable(recs);
      recycle_recs(std::move(recs));
    }
  };
  OPC_ASSERT_INLINE_CB(flush_cb);
  lazy_flush_timer_ =
      env_.schedule_after(cfg_.lazy_flush_interval, std::move(flush_cb));
}

void LogWriter::crash() {
  crashed_ = true;
  ++crash_epoch_;
  part_.device().cancel_owner(owner_);
  lazy_buf_.clear();
  coalesce_queue_.clear();
  force_in_flight_ = false;
  outstanding_forces_ = 0;
  env_.cancel(lazy_flush_timer_);
  lazy_flush_timer_ = TimerHandle{};
}

}  // namespace opc
