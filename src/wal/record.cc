#include "wal/record.h"

#include <array>

namespace opc {
namespace {

constexpr std::uint16_t kMagic = 0x1FCD;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

bool get_u16(const std::vector<std::uint8_t>& b, std::size_t& o, std::uint16_t& v) {
  if (o + 2 > b.size()) return false;
  v = static_cast<std::uint16_t>(b[o] | (b[o + 1] << 8));
  o += 2;
  return true;
}
bool get_u32(const std::vector<std::uint8_t>& b, std::size_t& o, std::uint32_t& v) {
  if (o + 4 > b.size()) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[o + i]) << (8 * i);
  o += 4;
  return true;
}
bool get_u64(const std::vector<std::uint8_t>& b, std::size_t& o, std::uint64_t& v) {
  if (o + 8 > b.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[o + i]) << (8 * i);
  o += 8;
  return true;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::string_view record_type_name(RecordType t) {
  switch (t) {
    case RecordType::kStarted: return "STARTED";
    case RecordType::kPrepared: return "PREPARED";
    case RecordType::kCommitted: return "COMMITTED";
    case RecordType::kAborted: return "ABORTED";
    case RecordType::kEnded: return "ENDED";
    case RecordType::kRedo: return "REDO";
    case RecordType::kUpdate: return "UPDATE";
    case RecordType::kCheckpoint: return "CHECKPOINT";
  }
  return "?";
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n, std::uint32_t seed) {
  const auto& t = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void encode_record(const LogRecord& rec, std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  put_u16(out, kMagic);
  out.push_back(static_cast<std::uint8_t>(rec.type));
  put_u32(out, rec.writer.value());
  put_u64(out, rec.txn);
  put_u64(out, rec.modeled_bytes);
  put_u32(out, static_cast<std::uint32_t>(rec.payload.size()));
  out.insert(out.end(), rec.payload.begin(), rec.payload.end());
  const std::uint32_t crc = crc32(out.data() + start, out.size() - start);
  put_u32(out, crc);
}

std::optional<LogRecord> decode_record(const std::vector<std::uint8_t>& buf,
                                       std::size_t& offset) {
  std::size_t o = offset;
  std::uint16_t magic = 0;
  if (!get_u16(buf, o, magic) || magic != kMagic) return std::nullopt;
  if (o >= buf.size()) return std::nullopt;
  const auto type = static_cast<RecordType>(buf[o++]);
  if (static_cast<std::uint8_t>(type) < 1 || static_cast<std::uint8_t>(type) > 8) {
    return std::nullopt;
  }
  std::uint32_t writer = 0;
  std::uint64_t txn = 0;
  std::uint64_t modeled = 0;
  std::uint32_t len = 0;
  if (!get_u32(buf, o, writer) || !get_u64(buf, o, txn) ||
      !get_u64(buf, o, modeled) || !get_u32(buf, o, len)) {
    return std::nullopt;
  }
  if (o + len + 4 > buf.size()) return std::nullopt;
  LogRecord rec;
  rec.type = type;
  rec.writer = NodeId(writer);
  rec.txn = txn;
  rec.modeled_bytes = modeled;
  rec.payload.assign(buf.begin() + static_cast<std::ptrdiff_t>(o),
                     buf.begin() + static_cast<std::ptrdiff_t>(o + len));
  o += len;
  const std::uint32_t want = crc32(buf.data() + offset, o - offset);
  std::uint32_t got = 0;
  if (!get_u32(buf, o, got) || got != want) return std::nullopt;
  offset = o;
  return rec;
}

}  // namespace opc
