// Write-ahead-log records and their binary codec.
//
// Record types mirror the paper's protocol descriptions exactly: STARTED,
// PREPARED, COMMITTED, ABORTED, ENDED state records, plus REDO (the 1PC
// coordinator's "CREATE filename" redo entry) and UPDATE (forced metadata
// updates).  Payload content is opaque bytes — the transaction layer
// serializes its operation lists into it — so the WAL has no upward
// dependency.
//
// Each record tracks two sizes:
//   * encoded size   — the bytes the codec actually produces; exercised by
//     the serialization tests and torn-write detection.
//   * modeled_bytes  — the size the record "occupies in the log" for the
//     simulation cost model (the ACID Sim Tools notion); the disk timing
//     uses this figure.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "net/types.h"

namespace opc {

enum class RecordType : std::uint8_t {
  kStarted = 1,
  kPrepared = 2,
  kCommitted = 3,
  kAborted = 4,
  kEnded = 5,
  kRedo = 6,
  kUpdate = 7,
  kCheckpoint = 8,
};

[[nodiscard]] std::string_view record_type_name(RecordType t);

struct LogRecord {
  RecordType type = RecordType::kStarted;
  std::uint64_t txn = 0;
  NodeId writer;
  std::uint64_t modeled_bytes = 512;      // footprint for the cost model
  std::vector<std::uint8_t> payload;      // opaque (e.g. serialized redo ops)

  [[nodiscard]] bool operator==(const LogRecord&) const = default;
};

/// Appends the wire encoding of `rec` to `out`:
///   magic(2) type(1) writer(4) txn(8) modeled(8) len(4) payload crc32(4)
/// All integers little-endian.  The CRC covers everything before it.
void encode_record(const LogRecord& rec, std::vector<std::uint8_t>& out);

/// Decodes one record starting at `offset`.  On success advances `offset`
/// past the record.  Returns nullopt on truncation, bad magic, or CRC
/// mismatch (torn write) — the recovery scan stops at the first bad record,
/// exactly like a real WAL replay.
[[nodiscard]] std::optional<LogRecord> decode_record(
    const std::vector<std::uint8_t>& buf, std::size_t& offset);

/// CRC-32 (IEEE 802.3 polynomial, reflected).  Exposed for tests.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                                  std::uint32_t seed = 0);

}  // namespace opc
