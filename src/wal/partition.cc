#include "wal/partition.h"

#include <algorithm>

namespace opc {
namespace {

bool is_state_record(RecordType t) {
  switch (t) {
    case RecordType::kStarted:
    case RecordType::kPrepared:
    case RecordType::kCommitted:
    case RecordType::kAborted:
    case RecordType::kEnded:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<LogRecord> LogPartition::records_for(std::uint64_t txn) const {
  std::vector<LogRecord> out;
  for (const auto& r : records_) {
    if (r.txn == txn) out.push_back(r);
  }
  return out;
}

std::optional<RecordType> LogPartition::last_state_for(
    std::uint64_t txn) const {
  std::optional<RecordType> last;
  for (const auto& r : records_) {
    if (r.txn == txn && is_state_record(r.type)) last = r.type;
  }
  return last;
}

bool LogPartition::has_record(std::uint64_t txn, RecordType t) const {
  return std::any_of(records_.begin(), records_.end(), [&](const LogRecord& r) {
    return r.txn == txn && r.type == t;
  });
}

std::vector<std::uint64_t> LogPartition::live_transactions() const {
  std::vector<std::uint64_t> out;
  for (const auto& r : records_) {
    if (r.txn != 0 && std::find(out.begin(), out.end(), r.txn) == out.end()) {
      out.push_back(r.txn);
    }
  }
  return out;
}

void LogPartition::truncate_txn(std::uint64_t txn) {
  std::erase_if(records_, [txn](const LogRecord& r) { return r.txn == txn; });
}

std::uint64_t LogPartition::modeled_size() const {
  std::uint64_t sum = 0;
  for (const auto& r : records_) sum += r.modeled_bytes;
  return sum;
}

LogPartition& SharedStorage::add_partition(NodeId node, DiskConfig disk_cfg) {
  return add_partition(node, disk_cfg, stats_, trace_);
}

LogPartition& SharedStorage::add_partition(NodeId node, DiskConfig disk_cfg,
                                           StatsRegistry& stats,
                                           TraceRecorder& trace) {
  SIM_CHECK_MSG(!parts_.contains(node), "partition already exists");
  auto part =
      std::make_unique<LogPartition>(env_, node, disk_cfg, stats, trace);
  auto& ref = *part;
  parts_.emplace(node, std::move(part));
  return ref;
}

LogPartition& SharedStorage::partition(NodeId node) {
  auto it = parts_.find(node);
  SIM_CHECK_MSG(it != parts_.end(), "unknown partition");
  return *it->second;
}

const LogPartition& SharedStorage::partition(NodeId node) const {
  auto it = parts_.find(node);
  SIM_CHECK_MSG(it != parts_.end(), "unknown partition");
  return *it->second;
}

void SharedStorage::fence(NodeId node) {
  LogPartition& p = partition(node);
  if (p.fenced()) return;
  p.set_fenced(true);
  p.device().cancel_owner(node);
  stats_.add("storage.fences");
  trace_.record(env_.now(), TraceKind::kFence, node.str(),
                "partition fenced");
}

void SharedStorage::unfence(NodeId node) {
  LogPartition& p = partition(node);
  if (!p.fenced()) return;
  p.set_fenced(false);
  stats_.add("storage.unfences");
  trace_.record(env_.now(), TraceKind::kFence, node.str(),
                "partition unfenced");
}

void SharedStorage::read_partition(
    NodeId reader, NodeId target,
    std::function<void(std::vector<LogRecord>)> on_done) {
  LogPartition& p = partition(target);
  stats_.add("storage.reads");
  if (!p.fenced()) {
    stats_.add("storage.reads.unfenced");
    // A node scanning its OWN log (reboot recovery) is legitimate; an
    // unfenced read of a *foreign* partition is the split-brain hazard the
    // chaos checkers assert never happens.
    if (reader != target) stats_.add("storage.reads.unfenced_foreign");
  }
  // Scan cost: at least one device block even for an empty partition.
  const std::uint64_t bytes = std::max<std::uint64_t>(p.modeled_size(), 4096);
  p.device().read(reader, bytes, "scan." + reader.str(),
                  [&p, cb = std::move(on_done)] { cb(p.records()); });
}

}  // namespace opc
