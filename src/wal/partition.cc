#include "wal/partition.h"

#include <algorithm>

namespace opc {
namespace {

bool is_state_record(RecordType t) {
  switch (t) {
    case RecordType::kStarted:
    case RecordType::kPrepared:
    case RecordType::kCommitted:
    case RecordType::kAborted:
    case RecordType::kEnded:
      return true;
    default:
      return false;
  }
}

}  // namespace

void LogPartition::append_durable(std::vector<LogRecord>& recs) {
  for (auto& r : recs) {
    if (r.type == RecordType::kEnded && !txn_counts_.contains(r.txn)) {
      // Claimed by an earlier truncate_txn: the transaction is already
      // checkpointed, so the finalize marker has nothing left to finalize.
      ++claimed_ended_;
      continue;
    }
    ++txn_counts_[r.txn];
    modeled_bytes_ += r.modeled_bytes;
    records_.push_back(std::move(r));
  }
  recs.clear();
}

std::vector<LogRecord> LogPartition::records_for(std::uint64_t txn) const {
  std::vector<LogRecord> out;
  const auto it = txn_counts_.find(txn);
  if (it == txn_counts_.end()) return out;
  out.reserve(it->second);
  for (const auto& r : records_) {
    if (r.txn == txn) out.push_back(r);
  }
  return out;
}

std::optional<RecordType> LogPartition::last_state_for(
    std::uint64_t txn) const {
  if (!txn_counts_.contains(txn)) return std::nullopt;
  std::optional<RecordType> last;
  for (const auto& r : records_) {
    if (r.txn == txn && is_state_record(r.type)) last = r.type;
  }
  return last;
}

bool LogPartition::has_record(std::uint64_t txn, RecordType t) const {
  if (!txn_counts_.contains(txn)) return false;
  return std::any_of(records_.begin(), records_.end(), [&](const LogRecord& r) {
    return r.txn == txn && r.type == t;
  });
}

std::vector<std::uint64_t> LogPartition::live_transactions() const {
  std::vector<std::uint64_t> out;
  for (const auto& r : records_) {
    if (r.txn != 0 && std::find(out.begin(), out.end(), r.txn) == out.end()) {
      out.push_back(r.txn);
    }
  }
  return out;
}

void LogPartition::truncate_txn(std::uint64_t txn) {
  const auto it = txn_counts_.find(txn);
  if (it == txn_counts_.end()) return;  // nothing durable: O(1) no-op
  txn_counts_.erase(it);
  std::erase_if(records_, [&](const LogRecord& r) {
    if (r.txn != txn) return false;
    modeled_bytes_ -= r.modeled_bytes;
    return true;
  });
}

LogPartition& SharedStorage::add_partition(NodeId node, DiskConfig disk_cfg) {
  return add_partition(node, disk_cfg, stats_, trace_);
}

LogPartition& SharedStorage::add_partition(NodeId node, DiskConfig disk_cfg,
                                           StatsRegistry& stats,
                                           TraceRecorder& trace) {
  SIM_CHECK_MSG(!parts_.contains(node), "partition already exists");
  auto part =
      std::make_unique<LogPartition>(env_, node, disk_cfg, stats, trace);
  auto& ref = *part;
  parts_.emplace(node, std::move(part));
  return ref;
}

LogPartition& SharedStorage::partition(NodeId node) {
  auto it = parts_.find(node);
  SIM_CHECK_MSG(it != parts_.end(), "unknown partition");
  return *it->second;
}

const LogPartition& SharedStorage::partition(NodeId node) const {
  auto it = parts_.find(node);
  SIM_CHECK_MSG(it != parts_.end(), "unknown partition");
  return *it->second;
}

void SharedStorage::fence(NodeId node) {
  LogPartition& p = partition(node);
  if (p.fenced()) return;
  p.set_fenced(true);
  p.device().cancel_owner(node);
  stats_.add("storage.fences");
  trace_.record(env_.now(), TraceKind::kFence, node.str(),
                "partition fenced");
}

void SharedStorage::unfence(NodeId node) {
  LogPartition& p = partition(node);
  if (!p.fenced()) return;
  p.set_fenced(false);
  stats_.add("storage.unfences");
  trace_.record(env_.now(), TraceKind::kFence, node.str(),
                "partition unfenced");
}

void SharedStorage::read_partition(
    NodeId reader, NodeId target,
    std::function<void(std::vector<LogRecord>)> on_done) {
  LogPartition& p = partition(target);
  stats_.add("storage.reads");
  if (!p.fenced()) {
    stats_.add("storage.reads.unfenced");
    // A node scanning its OWN log (reboot recovery) is legitimate; an
    // unfenced read of a *foreign* partition is the split-brain hazard the
    // chaos checkers assert never happens.
    if (reader != target) stats_.add("storage.reads.unfenced_foreign");
  }
  // Scan cost: at least one device block even for an empty partition.
  const std::uint64_t bytes = std::max<std::uint64_t>(p.modeled_size(), 4096);
  p.device().read(reader, bytes, "scan." + reader.str(),
                  [&p, cb = std::move(on_done)] { cb(p.records()); });
}

}  // namespace opc
