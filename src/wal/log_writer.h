// The per-MDS "log manager": forced and lazy write-ahead logging.
//
// Semantics follow the paper's cost accounting:
//
//   * force()   — a synchronous log write.  The caller's continuation runs
//     only when the record set is durable; timing goes through the
//     partition's disk (size / bandwidth, FIFO queue).  Forces are padded
//     to whole device blocks (cf. DESIGN.md §5 calibration).
//   * lazy()    — an asynchronous log write.  The record sits in a volatile
//     buffer; it becomes durable for free by riding the next force's block,
//     or via a periodic background flush.  A crash loses whatever is still
//     buffered — which is precisely why the protocols only write ENDED (and
//     PrC's worker COMMITTED) lazily.
//
// Group commit (extension, used by the batching ablation): when enabled,
// forces that arrive while one is in flight coalesce into a single device
// write instead of queueing individually.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/inline_callback.h"
#include "wal/partition.h"

namespace opc {

struct WalConfig {
  std::uint64_t force_pad_to = 8192;        // device block; 0 = no padding
  bool group_commit = false;                // coalesce concurrent forces
  Duration lazy_flush_interval = Duration::millis(10);
  bool lazy_flush_occupies_device = false;  // background flush cost model
};

/// Classification attached to each log write, consumed by the Table I
/// instrumentation.  `critical` marks writes on the serial chain between
/// client request and client reply (an analytical property of the protocol,
/// mirrored from the paper's accounting).
struct WriteTag {
  std::string label;      // "started", "prepare", "commit", "ended", ...
  bool critical = true;
};

class LogWriter {
 public:
  using ForceCallback = InlineCallback<void(), kInlineCallbackBytes>;

  LogWriter(Env& env, NodeId owner, LogPartition& part,
            StatsRegistry& stats, TraceRecorder& trace, WalConfig cfg)
      : env_(env), owner_(owner), part_(part), stats_(stats), trace_(trace),
        cfg_(cfg),
        c_force_count_(stats, "wal.force.count"),
        c_force_critical_(stats, "wal.force.critical"),
        c_force_bytes_(stats, "wal.force.bytes"),
        c_lazy_count_(stats, "wal.lazy.count"),
        c_lazy_critical_(stats, "wal.lazy.critical") {}

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// A record vector with retained capacity, recycled from completed
  /// forces.  Building force() batches out of these keeps the steady state
  /// off the allocator.
  [[nodiscard]] std::vector<LogRecord> checkout_recs();

  /// Synchronous (forced) write.  `on_durable` fires when stable; it never
  /// fires if the writer crashes or is fenced first.  Any lazily buffered
  /// records ride along in the same block for free.
  void force(std::vector<LogRecord> recs, WriteTag tag,
             ForceCallback on_durable);

  /// Asynchronous write: buffered now, durable later (next force or
  /// background flush), lost on crash.
  void lazy(LogRecord rec, WriteTag tag);

  /// Crash: volatile state (lazy buffer, queued/pending forces and their
  /// continuations) evaporates; durable partition content is untouched.
  void crash();

  /// Clears the crashed flag after reboot.  The partition must have been
  /// unfenced by the cluster layer if it was fenced.
  void reboot() { crashed_ = false; }

  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] NodeId owner() const { return owner_; }
  [[nodiscard]] LogPartition& partition() { return part_; }
  [[nodiscard]] const WalConfig& config() const { return cfg_; }

  /// Number of lazily buffered (not yet durable) records.
  [[nodiscard]] std::size_t lazy_buffered() const { return lazy_buf_.size(); }

 private:
  struct PendingForce {
    std::vector<LogRecord> recs;
    ForceCallback done;
  };

  void submit(std::vector<PendingForce> batch);
  void schedule_lazy_flush();
  void recycle_recs(std::vector<LogRecord>&& recs);
  [[nodiscard]] std::uint64_t padded(std::uint64_t bytes) const;

  Env& env_;
  NodeId owner_;
  LogPartition& part_;
  StatsRegistry& stats_;
  TraceRecorder& trace_;
  WalConfig cfg_;

  bool crashed_ = false;
  bool force_in_flight_ = false;           // used only under group_commit
  std::uint32_t outstanding_forces_ = 0;   // submitted, not yet durable
  std::vector<PendingForce> coalesce_queue_;
  std::vector<LogRecord> lazy_buf_;
  TimerHandle lazy_flush_timer_;
  std::uint64_t crash_epoch_ = 0;  // invalidates in-flight continuations

  Counter c_force_count_;
  Counter c_force_critical_;
  Counter c_force_bytes_;
  Counter c_lazy_count_;
  Counter c_lazy_critical_;
  // Recycled shells (bounded; see recycle_recs / submit).
  std::vector<std::vector<LogRecord>> recs_pool_;
  std::vector<std::vector<PendingForce>> batch_pool_;
};

}  // namespace opc
