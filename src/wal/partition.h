// Per-MDS log partitions on centrally shared storage.
//
// The 1PC protocol's key architectural assumption (paper §III-A): every MDS
// keeps its write-ahead log in a separate partition of a central storage
// device (SAN); any MDS can mount and read any partition, but only the
// owner writes it.  SharedStorage models that device: it owns one
// LogPartition (durable record store + a bandwidth-modeled Disk queue) per
// node, plus the fencing state that makes foreign reads safe.
//
// Durability rule: a record is in `records()` iff the disk completion for
// the write that carried it fired before any crash/fence cancelled it.
//
// N-participant recovery rule (DESIGN.md §14): 1PC recovery works by
// fencing the worker and reading its partition — sound because a two-party
// transaction has exactly one unilateral commit point, the worker's forced
// update+COMMITTED block, and that block lives in exactly one partition.
// The rule generalizes only to workers whose commit points share a log
// partition (co-located logs): one fence + one scan then still yields an
// atomic snapshot of every commit point.  In this deployment each node owns
// its own partition, so co-location never holds for distinct workers and
// choose_protocol() degrades wider transactions to presumed-abort 2PC,
// whose recovery needs no foreign reads at all — absence of log state on
// any participant means abort.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "env/env.h"
#include "net/types.h"
#include "storage/disk.h"
#include "wal/record.h"

namespace opc {

/// Durable record store for one MDS.
class LogPartition {
 public:
  LogPartition(Env& env, NodeId owner, DiskConfig disk_cfg,
               StatsRegistry& stats, TraceRecorder& trace)
      : owner_(owner),
        device_(env, "log." + owner.str(), disk_cfg, stats, trace) {}

  [[nodiscard]] NodeId owner() const { return owner_; }
  [[nodiscard]] Disk& device() { return device_; }
  [[nodiscard]] const Disk& device() const { return device_; }

  [[nodiscard]] bool fenced() const { return fenced_; }
  void set_fenced(bool f) { fenced_ = f; }

  /// Appends records that have just become durable.  The vector is drained
  /// but keeps its capacity, so callers can recycle the shell.
  ///
  /// One exception: an ENDED record for a transaction the owner already
  /// checkpointed (truncate_txn ran first) is *claimed* instead of stored.
  /// The engine's finalize paths write ENDED lazily and truncate in the
  /// same event, so the ENDED always lands after the truncate; storing it
  /// would leak one record per transaction forever and make truncate_txn
  /// quadratic over a long storm (ROADMAP, found in PR 9).  Recovery
  /// already treats the resulting empty log correctly — it is the same
  /// state a crash before the lazy flush leaves behind.
  void append_durable(std::vector<LogRecord>& recs);
  void append_durable(std::vector<LogRecord>&& recs) { append_durable(recs); }

  [[nodiscard]] const std::vector<LogRecord>& records() const {
    return records_;
  }

  /// All durable records of one transaction, in log order.
  [[nodiscard]] std::vector<LogRecord> records_for(std::uint64_t txn) const;

  /// The latest *state* record (STARTED/PREPARED/COMMITTED/ABORTED/ENDED)
  /// for a transaction; nullopt if the log holds nothing for it (possibly
  /// because it was checkpointed away — the protocols reason about exactly
  /// this case).
  [[nodiscard]] std::optional<RecordType> last_state_for(
      std::uint64_t txn) const;

  /// True if a record of this type exists for the transaction.
  [[nodiscard]] bool has_record(std::uint64_t txn, RecordType t) const;

  /// Transaction ids that still have records in the log (not checkpointed),
  /// in first-appearance order — the recovery scan's work list.
  [[nodiscard]] std::vector<std::uint64_t> live_transactions() const;

  /// Checkpoint + garbage collect: drops all records of `txn`.  O(1) when
  /// the transaction has no durable records (the per-txn index answers
  /// that without scanning), O(live log) otherwise — and the claimed-ENDED
  /// rule keeps the live log bounded by in-flight transactions.
  void truncate_txn(std::uint64_t txn);

  /// Sum of modeled bytes currently in the partition (drives foreign-read
  /// scan timing).  Maintained incrementally.
  [[nodiscard]] std::uint64_t modeled_size() const { return modeled_bytes_; }

  /// Count of ENDED records claimed by an earlier truncate instead of
  /// stored (leak regression tests pin records() bounded via this).
  [[nodiscard]] std::uint64_t claimed_ended() const { return claimed_ended_; }

 private:
  NodeId owner_;
  Disk device_;
  bool fenced_ = false;
  std::vector<LogRecord> records_;
  // Live durable record count per transaction: the truncate/lookup index.
  std::unordered_map<std::uint64_t, std::uint32_t> txn_counts_;
  std::uint64_t modeled_bytes_ = 0;
  std::uint64_t claimed_ended_ = 0;
};

/// The central storage device: all partitions plus fencing.
class SharedStorage {
 public:
  SharedStorage(Env& env, StatsRegistry& stats, TraceRecorder& trace)
      : env_(env), stats_(stats), trace_(trace) {}

  SharedStorage(const SharedStorage&) = delete;
  SharedStorage& operator=(const SharedStorage&) = delete;

  /// Creates the partition for a node.  Must be called once per node before
  /// any logging.
  LogPartition& add_partition(NodeId node, DiskConfig disk_cfg);

  /// Same, but the partition's device reports into caller-supplied stats /
  /// trace sinks.  The real-time cluster uses this so each node's disk
  /// counters land in that node's (single-threaded) registry.
  LogPartition& add_partition(NodeId node, DiskConfig disk_cfg,
                              StatsRegistry& stats, TraceRecorder& trace);

  [[nodiscard]] LogPartition& partition(NodeId node);
  [[nodiscard]] const LogPartition& partition(NodeId node) const;
  [[nodiscard]] bool has_partition(NodeId node) const {
    return parts_.contains(node);
  }

  /// Fences a node: its queued and future writes are rejected.  This is the
  /// STONITH / persistent-reservation effect on the storage side; the
  /// FencingController drives the node-side power cycle.
  void fence(NodeId node);

  /// Lifts the fence (after the node rebooted and re-registered).
  void unfence(NodeId node);

  [[nodiscard]] bool is_fenced(NodeId node) const {
    return parts_.contains(node) && parts_.at(node)->fenced();
  }

  /// Asynchronously reads a (possibly foreign) partition: models a scan of
  /// the target's log through the target device queue, then hands a snapshot
  /// of the durable records to `on_done`.  If the target is not fenced the
  /// read still proceeds mechanically — real hardware would not stop it —
  /// but it is counted under "storage.reads.unfenced" so tests can assert
  /// the 1PC recovery never performs one (split-brain safety).
  void read_partition(NodeId reader, NodeId target,
                      std::function<void(std::vector<LogRecord>)> on_done);

 private:
  Env& env_;
  StatsRegistry& stats_;
  TraceRecorder& trace_;
  std::unordered_map<NodeId, std::unique_ptr<LogPartition>> parts_;
};

}  // namespace opc
