// End-of-run RunReport: the join of span-derived timing breakdowns with
// the StatsRegistry counters and latency Histogram percentiles, plus run
// metadata (and, for chaos runs, the injected fault schedule).
//
// REPORT.json — the serialized form — is a versioned, documented contract
// (docs/OBSERVABILITY.md §4, kReportSchemaVersion here).  Serialization is
// fully deterministic: object keys in fixed order, counters sorted by
// name, integer nanoseconds, doubles printed with fixed %.3f precision,
// and no wall-clock anywhere — equal (config, seed) runs must produce
// byte-identical files (pinned by tests/obs/report_golden_test.cc).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/span.h"
#include "stats/counters.h"
#include "stats/histogram.h"

namespace opc::obs {

// v2 added latency.p999_ns (the serving path reports four nines).
inline constexpr int kReportSchemaVersion = 2;

struct ReportMeta {
  std::string protocol;  // "prn" | "prc" | "ep" | "1pc" | "pra" | mixed
  std::string workload;  // "storm", "create", "chaos", ...
  std::uint64_t seed = 0;
  int nodes = 0;
  std::int64_t sim_duration_ns = 0;
};

struct PhaseBreakdownRow {
  std::string name;  // phase_name() string
  std::int64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t mean_ns = 0;
  std::int64_t max_ns = 0;
};

struct SlowTxnRow {
  std::uint64_t txn = 0;
  std::string name;
  std::int64_t begin_ns = 0;
  std::int64_t duration_ns = 0;
  // Per-phase time within this transaction, in phase enter order.
  std::vector<std::pair<std::string, std::int64_t>> phases;
};

struct RunReport {
  ReportMeta meta;
  std::int64_t committed = 0;
  std::int64_t aborted = 0;
  std::int64_t lost = 0;
  double ops_per_second = 0.0;
  std::int64_t latency_count = 0;
  std::int64_t latency_p50_ns = 0;
  std::int64_t latency_p95_ns = 0;
  std::int64_t latency_p99_ns = 0;
  std::int64_t latency_p999_ns = 0;
  std::uint64_t trace_hash = 0;
  std::int64_t span_count = 0;
  std::int64_t txn_count = 0;
  std::vector<PhaseBreakdownRow> phases;  // sorted by name
  std::vector<SlowTxnRow> slowest;        // top 10 by duration desc
  std::map<std::string, std::int64_t> counters;
  std::vector<std::string> faults;  // rendered chaos schedule lines
};

/// Everything build_report needs; non-owning.  `spans`, `stats` and
/// `latency` may each be null (the corresponding sections come out empty).
struct ReportInputs {
  ReportMeta meta;
  const SpanSet* spans = nullptr;
  const StatsRegistry* stats = nullptr;
  const Histogram* latency = nullptr;
  std::int64_t committed = 0;
  std::int64_t aborted = 0;
  std::int64_t lost = 0;
  double ops_per_second = 0.0;
  std::uint64_t trace_hash = 0;
  std::vector<std::string> faults;
};

[[nodiscard]] RunReport build_report(const ReportInputs& in);

/// Deterministic REPORT.json (see header comment for the guarantees).
[[nodiscard]] std::string report_to_json(const RunReport& r);

/// Inverse of report_to_json (tolerant of missing optional sections).
[[nodiscard]] bool report_from_json(const std::string& text, RunReport& out);

/// Human-readable multi-section rendering for `opc trace report`.
[[nodiscard]] std::string render_report_text(const RunReport& r);

/// Side-by-side comparison for `opc trace diff A.json B.json`.
[[nodiscard]] std::string render_report_diff(const RunReport& a,
                                             const RunReport& b);

}  // namespace opc::obs
