// Chrome trace_event JSON exporter (the "JSON Array Format" with complete
// "X" events) — the output loads directly in Perfetto (ui.perfetto.dev)
// and chrome://tracing.
//
// Mapping (docs/OBSERVABILITY.md §5):
//   pid  = actor (one "process" per actor: mds0, locks.mds0, log.mds0 ...),
//          named via process_name metadata events;
//   tid  = transaction lane within the actor (txn-less spans share lane 0),
//          so concurrent transactions stack instead of overlapping;
//   ts/dur = simulated microseconds with fractional nanosecond digits;
//   args = {txn, kind} for drill-down in the UI.
#pragma once

#include <string>

#include "obs/span.h"

namespace opc::obs {

[[nodiscard]] std::string export_chrome_trace(const SpanSet& set);

}  // namespace opc::obs
