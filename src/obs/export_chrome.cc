#include "obs/export_chrome.h"

#include <cstdio>
#include <map>
#include <string_view>
#include <utility>

namespace opc::obs {
namespace {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Simulated ns -> trace_event µs with three fractional digits, exact.
std::string micros(std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

}  // namespace

std::string export_chrome_trace(const SpanSet& set) {
  // Stable pid assignment: order of first appearance.
  std::map<std::string, int> pids;
  std::vector<std::string> pid_names;
  auto pid_of = [&](const std::string& actor) {
    auto [it, inserted] =
        pids.try_emplace(actor, static_cast<int>(pids.size()) + 1);
    if (inserted) pid_names.push_back(actor);
    return it->second;
  };
  // Lane (tid) per (pid, txn), again by first appearance within the pid.
  std::map<std::pair<int, std::uint64_t>, int> lanes;
  std::map<int, int> lane_count;
  auto lane_of = [&](int pid, std::uint64_t txn) {
    auto [it, inserted] = lanes.try_emplace({pid, txn}, 0);
    if (inserted) it->second = lane_count[pid]++;
    return it->second;
  };

  std::string j = "{\"traceEvents\":[\n";
  bool first = true;
  for (const Span& s : set.spans) {
    const int pid = pid_of(s.actor.empty() ? std::string("?") : s.actor);
    const int tid = lane_of(pid, s.txn);
    if (!first) j += ",\n";
    first = false;
    const bool instant =
        s.kind == SpanKind::kMark || s.duration_ns() == 0;
    char head[96];
    std::snprintf(head, sizeof(head),
                  "{\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":",
                  instant ? "i" : "X", pid, tid);
    j += head;
    j += micros(s.begin.count_nanos());
    if (!instant) {
      j += ",\"dur\":";
      j += micros(s.duration_ns());
    } else {
      j += ",\"s\":\"t\"";
    }
    j += ",\"name\":\"" + escape(s.name) + "\"";
    j += ",\"cat\":\"" + std::string(span_kind_name(s.kind)) + "\"";
    j += ",\"args\":{\"txn\":" + std::to_string(s.txn) +
         ",\"span\":" + std::to_string(s.id) + "}}";
  }
  // Metadata: name the "processes" after their actors so the Perfetto
  // track list reads mds0 / locks.mds0 / log.mds0 instead of pid numbers.
  for (const std::string& actor : pid_names) {
    if (!first) j += ",\n";
    first = false;
    j += "{\"ph\":\"M\",\"pid\":" + std::to_string(pids[actor]) +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" +
         escape(actor) + "\"}}";
  }
  j += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return j;
}

}  // namespace opc::obs
