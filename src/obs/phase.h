// Engine phase annotations — the side-channel behind causal spans.
//
// The span assembler (obs/assembler.h) can derive message, lock-wait and
// log-force intervals from the TraceEvent stream alone, but protocol
// *phases* (lock acquisition, the update round, the vote round, the commit
// force...) are engine-internal state transitions the trace deliberately
// does not carry: every TraceEvent feeds the FNV determinism hash pinned in
// tests/core/trace_golden_test.cc, so adding events would break the PR 2
// contract.  Phase boundaries therefore go to this separate PhaseLog.
//
// The contract (versioned in docs/OBSERVABILITY.md §3):
//   - Null by default.  AcpEngine holds a PhaseLog* that is nullptr unless
//     a run opts in (ClusterConfig::phase_log); the hot path then pays one
//     pointer compare and nothing else.
//   - Never feeds TraceRecorder.  Equal seeds produce equal trace hashes
//     whether or not a PhaseLog is attached.
//   - Enter/leave events may be unbalanced on abort/crash paths; the
//     assembler closes dangling enters at the transaction's end and drops
//     leaves without a matching enter.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/types.h"
#include "sim/time.h"

namespace opc::obs {

/// Protocol phases annotated by src/acp/engine.cc.  Values are part of the
/// documented observability contract; append only.
enum class PhaseId : std::uint8_t {
  // Coordinator side.
  kLock,          // start_coordination -> all local locks granted
  kStartForce,    // STARTED (+1PC redo) force submitted -> durable
  kLocalUpdate,   // local method execution (modeled compute delay)
  kUpdateRound,   // UPDATE_REQs out -> last UPDATED in
  kVoteRound,     // PREPAREs out -> decision reached (PrN/PrC/PrA only)
  kCommitForce,   // COMMITTED force submitted -> durable
  kAckRound,      // decision round out -> last ACK in (PrN/PrA + aborts)
  // Worker side.
  kWorkerLock,          // UPDATE_REQ arrival -> all locks granted
  kWorkerUpdate,        // worker method execution
  kWorkerPrepareForce,  // worker PREPARED force submitted -> durable
  kWorkerCommitForce,   // worker COMMITTED force submitted -> durable
};

inline constexpr std::size_t kPhaseCount = 11;

/// Stable dotted name ("coord.lock", "worker.commit_force", ...); these
/// strings appear verbatim in REPORT.json and docs/OBSERVABILITY.md.
[[nodiscard]] constexpr std::string_view phase_name(PhaseId p) {
  switch (p) {
    case PhaseId::kLock: return "coord.lock";
    case PhaseId::kStartForce: return "coord.start_force";
    case PhaseId::kLocalUpdate: return "coord.local_update";
    case PhaseId::kUpdateRound: return "coord.update_round";
    case PhaseId::kVoteRound: return "coord.vote_round";
    case PhaseId::kCommitForce: return "coord.commit_force";
    case PhaseId::kAckRound: return "coord.ack_round";
    case PhaseId::kWorkerLock: return "worker.lock";
    case PhaseId::kWorkerUpdate: return "worker.update";
    case PhaseId::kWorkerPrepareForce: return "worker.prepare_force";
    case PhaseId::kWorkerCommitForce: return "worker.commit_force";
  }
  return "?";
}

/// One phase boundary crossing.
struct PhaseEvent {
  SimTime at;
  NodeId node;
  std::uint64_t txn = 0;
  PhaseId phase = PhaseId::kLock;
  bool enter = true;  // false = leave
};

/// Append-only log of phase boundary crossings, in simulated-time order.
class PhaseLog {
 public:
  void log(SimTime at, NodeId node, std::uint64_t txn, PhaseId phase,
           bool enter) {
    events_.push_back({at, node, txn, phase, enter});
  }

  [[nodiscard]] const std::vector<PhaseEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<PhaseEvent> events_;
};

}  // namespace opc::obs
