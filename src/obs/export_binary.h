// Compact binary span log ("OPCS" format, docs/OBSERVABILITY.md §6).
//
// Layout: magic "OPCS", one version byte, uvarint span count, then per
// span: uvarint id, parent+1 (0 = root), kind, txn, begin_ns, duration_ns,
// and length-prefixed name and actor strings.  All integers are LEB128
// unsigned varints; durations rather than end times keep the varints
// short.  Roughly 10x smaller than the Chrome JSON for storm runs.
#pragma once

#include <string>
#include <string_view>

#include "obs/span.h"

namespace opc::obs {

inline constexpr char kSpanLogMagic[4] = {'O', 'P', 'C', 'S'};
inline constexpr std::uint8_t kSpanLogVersion = 1;

[[nodiscard]] std::string encode_span_log(const SpanSet& set);

/// Strict decoder: false on bad magic/version or truncated input.
[[nodiscard]] bool decode_span_log(std::string_view bytes, SpanSet& out);

}  // namespace opc::obs
