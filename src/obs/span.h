// The span model — the unit of the observability contract.
//
// A span is a named, closed time interval attributed to an actor and
// (usually) a transaction, arranged in a forest: one root span per
// transaction, phase spans under the root, and message / log-force /
// lock-wait / point-mark spans under the phase active at their start (or
// the root when no phase covers them).  Spans are *derived* — assembled
// after the run from the TraceEvent stream plus the optional PhaseLog
// (obs/assembler.h) — and never influence the simulation.
//
// Schema notes (docs/OBSERVABILITY.md §2):
//   - ids are dense creation-order indices into SpanSet::spans, which makes
//     serialization deterministic for equal inputs;
//   - parent == kNoParent marks a root;
//   - kMark spans are instants (end == begin);
//   - times are simulated nanoseconds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace opc::obs {

inline constexpr std::uint32_t kNoParent = 0xffffffffu;

/// Span kinds; part of the versioned contract, append only.
enum class SpanKind : std::uint8_t {
  kTxn,       // whole transaction (root)
  kPhase,     // protocol phase (from PhaseLog)
  kMessage,   // network send -> receive (or -> drop)
  kForce,     // log device force write start -> done
  kLockWait,  // lock requested -> granted
  kMark,      // point event (crash, reboot, fence, client reply, ...)
};

[[nodiscard]] constexpr const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kTxn: return "txn";
    case SpanKind::kPhase: return "phase";
    case SpanKind::kMessage: return "message";
    case SpanKind::kForce: return "force";
    case SpanKind::kLockWait: return "lock_wait";
    case SpanKind::kMark: return "mark";
  }
  return "?";
}

struct Span {
  std::uint32_t id = 0;
  std::uint32_t parent = kNoParent;
  SpanKind kind = SpanKind::kTxn;
  std::string name;    // e.g. "CREATE via 1PC", "coord.lock", "UPDATE_REQ"
  std::string actor;   // e.g. "mds0", "locks.mds1", "log.mds0"
  std::uint64_t txn = 0;  // 0 = not transaction-scoped (global forces)
  SimTime begin{};
  SimTime end{};

  [[nodiscard]] std::int64_t duration_ns() const {
    return end.count_nanos() - begin.count_nanos();
  }
};

struct SpanSet {
  std::vector<Span> spans;

  [[nodiscard]] bool empty() const { return spans.empty(); }
  [[nodiscard]] std::size_t size() const { return spans.size(); }

  /// Root (kTxn) span ids in creation order.
  [[nodiscard]] std::vector<std::uint32_t> roots() const;
};

/// Structural well-formedness: every parent id exists and precedes its
/// child (so the forest is acyclic by construction), intervals are
/// non-negative, and every child interval lies within its parent's.
/// Returns human-readable violations; empty means well-formed.
[[nodiscard]] std::vector<std::string> validate_spans(const SpanSet& set);

}  // namespace opc::obs
