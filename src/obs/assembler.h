// Span assembly: fold a recorded TraceEvent stream (plus the optional
// PhaseLog side-channel) into the causal span forest described in
// docs/OBSERVABILITY.md §2.
//
// Assembly is a pure post-hoc consumer: it never touches the simulation,
// emits no events, and is deterministic — equal trace/phase inputs produce
// byte-identical SpanSets (ids are creation-order, and creation order is
// derived only from event order).
#pragma once

#include <vector>

#include "obs/phase.h"
#include "obs/span.h"
#include "sim/trace.h"

namespace opc::obs {

/// Build the span forest.  `phases` may be null (trace-only assembly:
/// roots, messages, lock waits, forces and marks, but no phase layer).
[[nodiscard]] SpanSet assemble_spans(const std::vector<TraceEvent>& events,
                                     const PhaseLog* phases = nullptr);

}  // namespace opc::obs
