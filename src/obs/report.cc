#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "obs/json.h"
#include "stats/table.h"

namespace opc::obs {
namespace {

// ---- deterministic formatting ----------------------------------------

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string fmt_hash(std::uint64_t h) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string q(std::string_view s) { return "\"" + escape(s) + "\""; }

std::string pct(double a, double b) {
  if (a == 0.0) return b == 0.0 ? "+0.0%" : "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (b - a) / a * 100.0);
  return buf;
}

std::string ns_human(std::int64_t ns) {
  char buf[32];
  if (ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", ns / 1e9);
  } else if (ns >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ns / 1e6);
  } else if (ns >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns",
                  static_cast<long long>(ns));
  }
  return buf;
}

}  // namespace

RunReport build_report(const ReportInputs& in) {
  RunReport r;
  r.meta = in.meta;
  r.committed = in.committed;
  r.aborted = in.aborted;
  r.lost = in.lost;
  r.ops_per_second = in.ops_per_second;
  r.trace_hash = in.trace_hash;
  r.faults = in.faults;

  if (in.latency != nullptr && in.latency->count() > 0) {
    r.latency_count = static_cast<std::int64_t>(in.latency->count());
    r.latency_p50_ns = static_cast<std::int64_t>(in.latency->quantile(0.50));
    r.latency_p95_ns = static_cast<std::int64_t>(in.latency->quantile(0.95));
    r.latency_p99_ns = static_cast<std::int64_t>(in.latency->quantile(0.99));
    r.latency_p999_ns =
        static_cast<std::int64_t>(in.latency->quantile(0.999));
  }

  if (in.stats != nullptr) {
    for (const auto& [name, value] : in.stats->all()) {
      r.counters.emplace(name, value);
    }
  }

  if (in.spans != nullptr) {
    const SpanSet& set = *in.spans;
    r.span_count = static_cast<std::int64_t>(set.size());

    std::map<std::string, PhaseBreakdownRow> agg;
    for (const Span& s : set.spans) {
      if (s.kind != SpanKind::kPhase) continue;
      PhaseBreakdownRow& row = agg[s.name];
      row.name = s.name;
      row.count += 1;
      row.total_ns += s.duration_ns();
      row.max_ns = std::max(row.max_ns, s.duration_ns());
    }
    for (auto& [name, row] : agg) {
      row.mean_ns = row.count > 0 ? row.total_ns / row.count : 0;
      r.phases.push_back(row);
    }

    std::vector<const Span*> roots;
    for (const Span& s : set.spans) {
      if (s.kind == SpanKind::kTxn && s.parent == kNoParent) {
        roots.push_back(&s);
      }
    }
    r.txn_count = static_cast<std::int64_t>(roots.size());
    std::sort(roots.begin(), roots.end(), [](const Span* a, const Span* b) {
      if (a->duration_ns() != b->duration_ns()) {
        return a->duration_ns() > b->duration_ns();
      }
      return a->txn < b->txn;
    });
    if (roots.size() > 10) roots.resize(10);
    for (const Span* root : roots) {
      SlowTxnRow row;
      row.txn = root->txn;
      row.name = root->name;
      row.begin_ns = root->begin.count_nanos();
      row.duration_ns = root->duration_ns();
      for (const Span& s : set.spans) {
        if (s.kind != SpanKind::kPhase || s.txn != root->txn) continue;
        auto it = std::find_if(row.phases.begin(), row.phases.end(),
                               [&s](const auto& p) {
                                 return p.first == s.name;
                               });
        if (it == row.phases.end()) {
          row.phases.emplace_back(s.name, s.duration_ns());
        } else {
          it->second += s.duration_ns();
        }
      }
      r.slowest.push_back(std::move(row));
    }
  }
  return r;
}

std::string report_to_json(const RunReport& r) {
  std::string j;
  j.reserve(4096);
  j += "{\n";
  j += "  \"schema\": " + std::to_string(kReportSchemaVersion) + ",\n";
  j += "  \"meta\": {\n";
  j += "    \"protocol\": " + q(r.meta.protocol) + ",\n";
  j += "    \"workload\": " + q(r.meta.workload) + ",\n";
  j += "    \"seed\": " + std::to_string(r.meta.seed) + ",\n";
  j += "    \"nodes\": " + std::to_string(r.meta.nodes) + ",\n";
  j += "    \"sim_duration_ns\": " + std::to_string(r.meta.sim_duration_ns) +
       "\n  },\n";
  j += "  \"outcome\": {\n";
  j += "    \"committed\": " + std::to_string(r.committed) + ",\n";
  j += "    \"aborted\": " + std::to_string(r.aborted) + ",\n";
  j += "    \"lost\": " + std::to_string(r.lost) + ",\n";
  j += "    \"ops_per_second\": " + fmt_double(r.ops_per_second) +
       "\n  },\n";
  j += "  \"latency\": {\n";
  j += "    \"count\": " + std::to_string(r.latency_count) + ",\n";
  j += "    \"p50_ns\": " + std::to_string(r.latency_p50_ns) + ",\n";
  j += "    \"p95_ns\": " + std::to_string(r.latency_p95_ns) + ",\n";
  j += "    \"p99_ns\": " + std::to_string(r.latency_p99_ns) + ",\n";
  j += "    \"p999_ns\": " + std::to_string(r.latency_p999_ns) + "\n  },\n";
  j += "  \"trace\": {\n";
  j += "    \"hash\": " + q(fmt_hash(r.trace_hash)) + ",\n";
  j += "    \"spans\": " + std::to_string(r.span_count) + ",\n";
  j += "    \"txns\": " + std::to_string(r.txn_count) + "\n  },\n";

  j += "  \"phases\": [";
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    const PhaseBreakdownRow& p = r.phases[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    {\"name\": " + q(p.name) +
         ", \"count\": " + std::to_string(p.count) +
         ", \"total_ns\": " + std::to_string(p.total_ns) +
         ", \"mean_ns\": " + std::to_string(p.mean_ns) +
         ", \"max_ns\": " + std::to_string(p.max_ns) + "}";
  }
  j += r.phases.empty() ? "],\n" : "\n  ],\n";

  j += "  \"slowest\": [";
  for (std::size_t i = 0; i < r.slowest.size(); ++i) {
    const SlowTxnRow& s = r.slowest[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    {\"txn\": " + std::to_string(s.txn) +
         ", \"name\": " + q(s.name) +
         ", \"begin_ns\": " + std::to_string(s.begin_ns) +
         ", \"duration_ns\": " + std::to_string(s.duration_ns) +
         ", \"phases\": [";
    for (std::size_t k = 0; k < s.phases.size(); ++k) {
      if (k != 0) j += ", ";
      j += "[" + q(s.phases[k].first) + ", " +
           std::to_string(s.phases[k].second) + "]";
    }
    j += "]}";
  }
  j += r.slowest.empty() ? "],\n" : "\n  ],\n";

  j += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : r.counters) {
    j += first ? "\n" : ",\n";
    first = false;
    j += "    " + q(name) + ": " + std::to_string(value);
  }
  j += r.counters.empty() ? "},\n" : "\n  },\n";

  j += "  \"faults\": [";
  for (std::size_t i = 0; i < r.faults.size(); ++i) {
    j += i == 0 ? "\n" : ",\n";
    j += "    " + q(r.faults[i]);
  }
  j += r.faults.empty() ? "]\n" : "\n  ]\n";
  j += "}\n";
  return j;
}

bool report_from_json(const std::string& text, RunReport& out) {
  JsonValue root;
  if (!json_parse(text, root) || !root.is_object()) return false;
  out = RunReport{};
  const JsonValue& meta = root["meta"];
  out.meta.protocol = meta["protocol"].as_string();
  out.meta.workload = meta["workload"].as_string();
  out.meta.seed = static_cast<std::uint64_t>(meta["seed"].as_int());
  out.meta.nodes = static_cast<int>(meta["nodes"].as_int());
  out.meta.sim_duration_ns = meta["sim_duration_ns"].as_int();
  const JsonValue& oc = root["outcome"];
  out.committed = oc["committed"].as_int();
  out.aborted = oc["aborted"].as_int();
  out.lost = oc["lost"].as_int();
  out.ops_per_second = oc["ops_per_second"].as_double();
  const JsonValue& lat = root["latency"];
  out.latency_count = lat["count"].as_int();
  out.latency_p50_ns = lat["p50_ns"].as_int();
  out.latency_p95_ns = lat["p95_ns"].as_int();
  out.latency_p99_ns = lat["p99_ns"].as_int();
  out.latency_p999_ns = lat["p999_ns"].as_int();  // 0 when reading v1 files
  const JsonValue& tr = root["trace"];
  out.trace_hash =
      std::strtoull(tr["hash"].as_string().c_str(), nullptr, 16);
  out.span_count = tr["spans"].as_int();
  out.txn_count = tr["txns"].as_int();
  for (const JsonValue& p : root["phases"].array) {
    PhaseBreakdownRow row;
    row.name = p["name"].as_string();
    row.count = p["count"].as_int();
    row.total_ns = p["total_ns"].as_int();
    row.mean_ns = p["mean_ns"].as_int();
    row.max_ns = p["max_ns"].as_int();
    out.phases.push_back(std::move(row));
  }
  for (const JsonValue& s : root["slowest"].array) {
    SlowTxnRow row;
    row.txn = static_cast<std::uint64_t>(s["txn"].as_int());
    row.name = s["name"].as_string();
    row.begin_ns = s["begin_ns"].as_int();
    row.duration_ns = s["duration_ns"].as_int();
    for (const JsonValue& ph : s["phases"].array) {
      if (ph.array.size() == 2) {
        row.phases.emplace_back(ph.array[0].as_string(),
                                ph.array[1].as_int());
      }
    }
    out.slowest.push_back(std::move(row));
  }
  for (const auto& [name, v] : root["counters"].object) {
    out.counters.emplace(name, v.as_int());
  }
  for (const JsonValue& f : root["faults"].array) {
    out.faults.push_back(f.as_string());
  }
  return true;
}

std::string render_report_text(const RunReport& r) {
  std::string out;
  out += "run report: protocol=" + r.meta.protocol +
         " workload=" + r.meta.workload +
         " seed=" + std::to_string(r.meta.seed) +
         " nodes=" + std::to_string(r.meta.nodes) +
         " sim_time=" + ns_human(r.meta.sim_duration_ns) + "\n";
  out += "outcome: committed=" + std::to_string(r.committed) +
         " aborted=" + std::to_string(r.aborted) +
         " lost=" + std::to_string(r.lost) +
         " ops/s=" + fmt_double(r.ops_per_second) + "\n";
  out += "latency: n=" + std::to_string(r.latency_count) +
         " p50=" + ns_human(r.latency_p50_ns) +
         " p95=" + ns_human(r.latency_p95_ns) +
         " p99=" + ns_human(r.latency_p99_ns) +
         " p999=" + ns_human(r.latency_p999_ns) + "\n";
  out += "trace: hash=" + fmt_hash(r.trace_hash) +
         " spans=" + std::to_string(r.span_count) +
         " txns=" + std::to_string(r.txn_count) + "\n";
  if (!r.faults.empty()) {
    out += "faults:\n";
    for (const std::string& f : r.faults) out += "  " + f + "\n";
  }
  if (!r.phases.empty()) {
    TextTable t({"phase", "count", "total", "mean", "max"});
    for (const PhaseBreakdownRow& p : r.phases) {
      t.add_row({p.name, std::to_string(p.count), ns_human(p.total_ns),
                 ns_human(p.mean_ns), ns_human(p.max_ns)});
    }
    out += "\nper-phase time breakdown\n" + t.render();
  }
  if (!r.slowest.empty()) {
    TextTable t({"txn", "op", "begin", "duration", "top phases"});
    for (const SlowTxnRow& s : r.slowest) {
      std::vector<std::pair<std::string, std::int64_t>> ph = s.phases;
      std::stable_sort(ph.begin(), ph.end(), [](const auto& a,
                                                const auto& b) {
        return a.second > b.second;
      });
      std::string top;
      for (std::size_t i = 0; i < ph.size() && i < 3; ++i) {
        if (i != 0) top += ", ";
        top += ph[i].first + "=" + ns_human(ph[i].second);
      }
      t.add_row({std::to_string(s.txn), s.name, ns_human(s.begin_ns),
                 ns_human(s.duration_ns), top});
    }
    out += "\nslowest transactions\n" + t.render();
  }
  return out;
}

std::string render_report_diff(const RunReport& a, const RunReport& b) {
  std::string out;
  out += "A: protocol=" + a.meta.protocol + " workload=" + a.meta.workload +
         " seed=" + std::to_string(a.meta.seed) + "\n";
  out += "B: protocol=" + b.meta.protocol + " workload=" + b.meta.workload +
         " seed=" + std::to_string(b.meta.seed) + "\n\n";

  TextTable t({"metric", "A", "B", "delta"});
  auto row = [&t](const std::string& name, std::int64_t va,
                  std::int64_t vb) {
    t.add_row({name, std::to_string(va), std::to_string(vb),
               pct(static_cast<double>(va), static_cast<double>(vb))});
  };
  t.add_row({"ops_per_second", fmt_double(a.ops_per_second),
             fmt_double(b.ops_per_second),
             pct(a.ops_per_second, b.ops_per_second)});
  row("committed", a.committed, b.committed);
  row("aborted", a.aborted, b.aborted);
  row("lost", a.lost, b.lost);
  row("latency.p50_ns", a.latency_p50_ns, b.latency_p50_ns);
  row("latency.p95_ns", a.latency_p95_ns, b.latency_p95_ns);
  row("latency.p99_ns", a.latency_p99_ns, b.latency_p99_ns);
  row("latency.p999_ns", a.latency_p999_ns, b.latency_p999_ns);
  row("spans", a.span_count, b.span_count);
  row("txns", a.txn_count, b.txn_count);
  out += t.render();

  // Phase totals, union of names (A-order first, then B-only names).
  std::vector<std::string> names;
  auto seen = [&names](const std::string& n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  for (const auto& p : a.phases) names.push_back(p.name);
  for (const auto& p : b.phases) {
    if (!seen(p.name)) names.push_back(p.name);
  }
  if (!names.empty()) {
    TextTable pt({"phase", "A total", "B total", "delta"});
    auto total = [](const RunReport& r,
                    const std::string& n) -> std::int64_t {
      for (const auto& p : r.phases) {
        if (p.name == n) return p.total_ns;
      }
      return 0;
    };
    for (const std::string& n : names) {
      const std::int64_t va = total(a, n), vb = total(b, n);
      pt.add_row({n, ns_human(va), ns_human(vb),
                  pct(static_cast<double>(va), static_cast<double>(vb))});
    }
    out += "\nper-phase totals\n" + pt.render();
  }

  // Counters that differ.
  TextTable ct({"counter", "A", "B"});
  for (const auto& [name, va] : a.counters) {
    auto it = b.counters.find(name);
    const std::int64_t vb = it == b.counters.end() ? 0 : it->second;
    if (va != vb) {
      ct.add_row({name, std::to_string(va), std::to_string(vb)});
    }
  }
  for (const auto& [name, vb] : b.counters) {
    if (a.counters.find(name) == a.counters.end() && vb != 0) {
      ct.add_row({name, "0", std::to_string(vb)});
    }
  }
  if (ct.rows() > 0) out += "\ncounters that differ\n" + ct.render();
  return out;
}

}  // namespace opc::obs
