// Minimal JSON reader for the observability tooling (`opc trace diff`,
// report_from_json).  Writing is done with hand-formatted deterministic
// emitters in report.cc / export_chrome.cc — this type is read-only glue,
// not a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace opc::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }

  /// Object member lookup; returns null-typed sentinel when absent.
  [[nodiscard]] const JsonValue& operator[](std::string_view key) const;

  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    return type == Type::kNumber ? static_cast<std::int64_t>(number)
                                 : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    return type == Type::kNumber ? number : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return str; }
};

/// Parse a complete JSON document.  Returns false (and leaves `out`
/// unspecified) on malformed input or trailing garbage.
[[nodiscard]] bool json_parse(std::string_view text, JsonValue& out);

}  // namespace opc::obs
