#include "obs/span.h"

#include <string>

namespace opc::obs {

std::vector<std::uint32_t> SpanSet::roots() const {
  std::vector<std::uint32_t> out;
  for (const Span& s : spans) {
    if (s.parent == kNoParent && s.kind == SpanKind::kTxn) {
      out.push_back(s.id);
    }
  }
  return out;
}

std::vector<std::string> validate_spans(const SpanSet& set) {
  std::vector<std::string> bad;
  auto note = [&bad](std::string msg) { bad.push_back(std::move(msg)); };
  for (std::size_t i = 0; i < set.spans.size(); ++i) {
    const Span& s = set.spans[i];
    if (s.id != i) {
      note("span " + std::to_string(i) + ": id mismatch (" +
           std::to_string(s.id) + ")");
    }
    if (s.end.count_nanos() < s.begin.count_nanos()) {
      note("span " + std::to_string(i) + " '" + s.name +
           "': negative interval");
    }
    if (s.parent == kNoParent) continue;
    if (s.parent >= set.spans.size()) {
      note("span " + std::to_string(i) + " '" + s.name +
           "': dangling parent " + std::to_string(s.parent));
      continue;
    }
    if (s.parent >= i) {
      // Assembler emits parents before children; equality would be a
      // self-loop.  Either way the forest ordering invariant is broken.
      note("span " + std::to_string(i) + " '" + s.name +
           "': parent does not precede child");
      continue;
    }
    const Span& p = set.spans[s.parent];
    if (s.begin.count_nanos() < p.begin.count_nanos() || s.end.count_nanos() > p.end.count_nanos()) {
      note("span " + std::to_string(i) + " '" + s.name +
           "': interval escapes parent '" + p.name + "'");
    }
    if (s.txn != 0 && p.txn != 0 && s.txn != p.txn) {
      note("span " + std::to_string(i) + " '" + s.name +
           "': txn differs from parent");
    }
  }
  return bad;
}

}  // namespace opc::obs
