#include "obs/export_binary.h"

#include <cstdint>

namespace opc::obs {
namespace {

void put_uvarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out += static_cast<char>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  out += static_cast<char>(v);
}

bool get_uvarint(std::string_view& in, std::uint64_t& v) {
  v = 0;
  int shift = 0;
  while (!in.empty() && shift < 64) {
    const auto b = static_cast<std::uint8_t>(in.front());
    in.remove_prefix(1);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

void put_string(std::string& out, std::string_view s) {
  put_uvarint(out, s.size());
  out.append(s);
}

bool get_string(std::string_view& in, std::string& s) {
  std::uint64_t n = 0;
  if (!get_uvarint(in, n) || in.size() < n) return false;
  s.assign(in.substr(0, n));
  in.remove_prefix(n);
  return true;
}

}  // namespace

std::string encode_span_log(const SpanSet& set) {
  std::string out;
  out.reserve(32 + set.size() * 24);
  out.append(kSpanLogMagic, sizeof(kSpanLogMagic));
  out += static_cast<char>(kSpanLogVersion);
  put_uvarint(out, set.size());
  for (const Span& s : set.spans) {
    put_uvarint(out, s.id);
    put_uvarint(out, s.parent == kNoParent
                         ? 0
                         : static_cast<std::uint64_t>(s.parent) + 1);
    put_uvarint(out, static_cast<std::uint64_t>(s.kind));
    put_uvarint(out, s.txn);
    put_uvarint(out, static_cast<std::uint64_t>(s.begin.count_nanos()));
    put_uvarint(out, static_cast<std::uint64_t>(s.duration_ns()));
    put_string(out, s.name);
    put_string(out, s.actor);
  }
  return out;
}

bool decode_span_log(std::string_view bytes, SpanSet& out) {
  out.spans.clear();
  if (bytes.size() < 5 ||
      bytes.compare(0, 4, kSpanLogMagic, 4) != 0 ||
      static_cast<std::uint8_t>(bytes[4]) != kSpanLogVersion) {
    return false;
  }
  bytes.remove_prefix(5);
  std::uint64_t count = 0;
  if (!get_uvarint(bytes, count)) return false;
  out.spans.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t id = 0, parent = 0, kind = 0, txn = 0, begin = 0, dur = 0;
    Span s;
    if (!get_uvarint(bytes, id) || !get_uvarint(bytes, parent) ||
        !get_uvarint(bytes, kind) || !get_uvarint(bytes, txn) ||
        !get_uvarint(bytes, begin) || !get_uvarint(bytes, dur) ||
        !get_string(bytes, s.name) || !get_string(bytes, s.actor)) {
      return false;
    }
    s.id = static_cast<std::uint32_t>(id);
    s.parent = parent == 0 ? kNoParent
                           : static_cast<std::uint32_t>(parent - 1);
    s.kind = static_cast<SpanKind>(kind);
    s.txn = txn;
    s.begin = SimTime::from_nanos(static_cast<std::int64_t>(begin));
    s.end = SimTime::from_nanos(static_cast<std::int64_t>(begin + dur));
    out.spans.push_back(std::move(s));
  }
  return bytes.empty();
}

}  // namespace opc::obs
