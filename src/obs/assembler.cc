#include "obs/assembler.h"

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>

namespace opc::obs {
namespace {

// ---- detail-string parsing helpers -----------------------------------
//
// The formats parsed here are the ones documented (and frozen) in
// docs/OBSERVABILITY.md §1; src/net and src/lock own the emitters.

std::string_view first_token(std::string_view s) {
  const auto sp = s.find(' ');
  return sp == std::string_view::npos ? s : s.substr(0, sp);
}

std::string_view last_token(std::string_view s) {
  const auto sp = s.rfind(' ');
  return sp == std::string_view::npos ? s : s.substr(sp + 1);
}

// "S r5", "X r5 (queued)", "wait-upgrade r5" -> "r5".
std::string_view resource_token(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size()) {
    std::size_t j = s.find(' ', i);
    if (j == std::string_view::npos) j = s.size();
    const std::string_view tok = s.substr(i, j - i);
    if (tok.size() >= 2 && tok[0] == 'r' && tok[1] >= '0' && tok[1] <= '9') {
      return tok;
    }
    i = j + 1;
  }
  return {};
}

// "locks.mds1" -> "mds1"; anything without a dot is returned unchanged.
std::string_view actor_node(std::string_view actor) {
  const auto dot = actor.rfind('.');
  return dot == std::string_view::npos ? actor : actor.substr(dot + 1);
}

// ---- intermediate records --------------------------------------------

struct Child {  // message / lock-wait / mark, pre-parenting
  SpanKind kind;
  std::string name;
  std::string actor;  // emitting actor as traced
  std::string node;   // node the span belongs to, for phase matching
  std::uint64_t txn;
  SimTime begin;
  SimTime end;
};

struct PhaseInterval {
  PhaseId phase;
  std::string node;
  SimTime begin;
  SimTime end;
  bool open = true;
};

struct TxnInfo {
  std::uint64_t txn = 0;
  std::string name;
  std::string actor;
  SimTime begin{};
  SimTime end{};
  bool finished = false;
  SimTime last_seen{};
  std::vector<PhaseInterval> phases;
  std::vector<Child> children;
};

}  // namespace

SpanSet assemble_spans(const std::vector<TraceEvent>& events,
                       const PhaseLog* phases) {
  std::map<std::uint64_t, TxnInfo> txns;
  std::vector<std::uint64_t> txn_order;  // by first kTxnBegin
  std::vector<Child> global_children;
  std::vector<Child> forces;

  auto touch = [&txns](const TraceEvent& e) -> TxnInfo* {
    if (e.txn == 0) return nullptr;
    auto it = txns.find(e.txn);
    if (it == txns.end()) return nullptr;
    if (e.at.count_nanos() > it->second.last_seen.count_nanos()) {
      it->second.last_seen = e.at;
    }
    return &it->second;
  };
  auto add_child = [&](const TraceEvent& e, Child c) {
    if (TxnInfo* t = touch(e); t != nullptr) {
      t->children.push_back(std::move(c));
    } else {
      global_children.push_back(std::move(c));
    }
  };

  // In-flight matching state, all FIFO to mirror the simulator's ordering.
  using MsgKey = std::tuple<std::string, std::string, std::string,
                            std::uint64_t>;  // from, to, kind, txn
  std::map<MsgKey, std::deque<SimTime>> msg_pending;
  using LockKey = std::tuple<std::string, std::uint64_t,
                             std::string>;  // actor, txn, resource
  std::map<LockKey, std::deque<std::pair<SimTime, std::string>>> lock_pending;
  std::map<std::string, std::deque<std::pair<SimTime, std::string>>>
      force_pending;  // disk actor -> (start, detail)

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceKind::kTxnBegin: {
        auto [it, inserted] = txns.try_emplace(e.txn);
        TxnInfo& t = it->second;
        if (inserted) {
          t.txn = e.txn;
          t.name = e.detail;
          t.actor = e.actor;
          t.begin = e.at;
          txn_order.push_back(e.txn);
        }
        t.last_seen = e.at;
        break;
      }
      case TraceKind::kTxnCommit:
      case TraceKind::kTxnAbort: {
        if (TxnInfo* t = touch(e); t != nullptr && e.detail == "finished") {
          t->end = e.at;
          t->finished = true;
        }
        break;
      }
      case TraceKind::kMessageSend: {
        const std::string kind(first_token(e.detail));
        const std::string to(last_token(e.detail));
        if (e.detail.find(" -> ") != std::string::npos &&
            e.detail.find('(') == std::string::npos) {
          msg_pending[{e.actor, to, kind, e.txn}].push_back(e.at);
        }
        touch(e);
        break;
      }
      case TraceKind::kMessageRecv: {
        const std::string kind(first_token(e.detail));
        const std::string from(last_token(e.detail));
        auto it = msg_pending.find({from, e.actor, kind, e.txn});
        if (it != msg_pending.end() && !it->second.empty()) {
          const SimTime sent = it->second.front();
          it->second.pop_front();
          if (e.txn != 0) {
            add_child(e, {SpanKind::kMessage, kind, from, from, e.txn, sent,
                          e.at});
          }
        }
        touch(e);
        break;
      }
      case TraceKind::kMessageDrop: {
        const std::string kind(first_token(e.detail));
        if (const auto fp = e.detail.find(" from ");
            fp != std::string::npos) {
          // Dropped in flight: actor is the (former) destination.
          const std::string from(e.detail.substr(fp + 6));
          auto it = msg_pending.find({from, e.actor, kind, e.txn});
          if (it != msg_pending.end() && !it->second.empty()) {
            const SimTime sent = it->second.front();
            it->second.pop_front();
            if (e.txn != 0) {
              add_child(e, {SpanKind::kMessage, kind + " (dropped)", from,
                            from, e.txn, sent, e.at});
            }
          }
        } else if (e.txn != 0) {
          // Dropped at the send site: never in flight, render as instant.
          add_child(e, {SpanKind::kMessage, kind + " (dropped at send)",
                        e.actor, e.actor, e.txn, e.at, e.at});
        }
        touch(e);
        break;
      }
      case TraceKind::kLockWait: {
        lock_pending[{e.actor, e.txn, std::string(resource_token(e.detail))}]
            .push_back({e.at, e.detail});
        touch(e);
        break;
      }
      case TraceKind::kLockGrant: {
        auto it = lock_pending.find(
            {e.actor, e.txn, std::string(resource_token(e.detail))});
        if (it != lock_pending.end() && !it->second.empty()) {
          auto [start, want] = it->second.front();
          it->second.pop_front();
          if (e.txn != 0) {
            add_child(e, {SpanKind::kLockWait, "wait " + want, e.actor,
                          std::string(actor_node(e.actor)), e.txn, start,
                          e.at});
          }
        }
        touch(e);
        break;
      }
      case TraceKind::kLogForceStart: {
        force_pending[e.actor].push_back({e.at, e.detail});
        break;
      }
      case TraceKind::kLogForceDone: {
        auto it = force_pending.find(e.actor);
        if (it != force_pending.end() && !it->second.empty()) {
          auto [start, what] = it->second.front();
          it->second.pop_front();
          forces.push_back({SpanKind::kForce, std::move(what), e.actor,
                            std::string(actor_node(e.actor)), 0, start,
                            e.at});
        }
        break;
      }
      case TraceKind::kCrash:
      case TraceKind::kReboot:
      case TraceKind::kFence:
      case TraceKind::kRecoveryStep:
      case TraceKind::kClientReply: {
        const char* base = e.kind == TraceKind::kCrash      ? "crash"
                           : e.kind == TraceKind::kReboot   ? "reboot"
                           : e.kind == TraceKind::kFence    ? "fence"
                           : e.kind == TraceKind::kRecoveryStep
                               ? "recovery"
                               : "client_reply";
        std::string name = e.detail.empty()
                               ? std::string(base)
                               : std::string(base) + " " + e.detail;
        add_child(e, {SpanKind::kMark, std::move(name), e.actor, e.actor,
                      e.txn, e.at, e.at});
        break;
      }
      case TraceKind::kLogLazyWrite:
      case TraceKind::kLockRelease:
      case TraceKind::kInfo:
        touch(e);
        break;
    }
  }

  // Phase side-channel: pair enter/leave per (node, txn, phase); leaves
  // without an enter are dropped, enters without a leave stay open and are
  // closed at the transaction's end below.
  if (phases != nullptr) {
    std::map<std::tuple<std::uint32_t, std::uint64_t, std::uint8_t>,
             std::vector<std::size_t>>
        open;  // -> indices into that txn's `phases`
    for (const PhaseEvent& pe : phases->events()) {
      auto it = txns.find(pe.txn);
      if (it == txns.end()) continue;
      TxnInfo& t = it->second;
      const auto key = std::make_tuple(
          pe.node.value(), pe.txn, static_cast<std::uint8_t>(pe.phase));
      if (pe.enter) {
        open[key].push_back(t.phases.size());
        t.phases.push_back({pe.phase, pe.node.str(), pe.at, pe.at, true});
      } else if (auto oi = open.find(key);
                 oi != open.end() && !oi->second.empty()) {
        PhaseInterval& pi = t.phases[oi->second.back()];
        oi->second.pop_back();
        pi.end = pe.at;
        pi.open = false;
      }
      if (pe.at.count_nanos() > t.last_seen.count_nanos()) t.last_seen = pe.at;
    }
  }

  // ---- emit, per transaction in first-begin order ---------------------
  SpanSet set;
  auto push = [&set](Span s) -> std::uint32_t {
    s.id = static_cast<std::uint32_t>(set.spans.size());
    set.spans.push_back(std::move(s));
    return set.spans.back().id;
  };

  for (const std::uint64_t id : txn_order) {
    TxnInfo& t = txns[id];
    SimTime root_end = t.finished ? t.end : t.last_seen;
    for (PhaseInterval& pi : t.phases) {
      if (pi.open) {
        pi.end = root_end;
        pi.open = false;
      }
      if (pi.end.count_nanos() > root_end.count_nanos()) root_end = pi.end;
    }
    for (const Child& c : t.children) {
      if (c.end.count_nanos() > root_end.count_nanos()) root_end = c.end;
    }

    const std::uint32_t root = push({0, kNoParent, SpanKind::kTxn, t.name,
                                     t.actor, t.txn, t.begin, root_end});
    std::vector<std::uint32_t> phase_ids;
    phase_ids.reserve(t.phases.size());
    for (const PhaseInterval& pi : t.phases) {
      phase_ids.push_back(push({0, root, SpanKind::kPhase,
                                std::string(phase_name(pi.phase)), pi.node,
                                t.txn, pi.begin, pi.end}));
    }
    for (Child& c : t.children) {
      // Parent: the innermost phase on the same node whose interval
      // contains the child's; else the transaction root.
      std::uint32_t parent = root;
      std::int64_t best = -1;
      for (std::size_t i = 0; i < t.phases.size(); ++i) {
        const PhaseInterval& pi = t.phases[i];
        if (pi.node != c.node) continue;
        if (c.begin.count_nanos() < pi.begin.count_nanos() ||
            c.end.count_nanos() > pi.end.count_nanos()) {
          continue;
        }
        const std::int64_t dur = pi.end.count_nanos() - pi.begin.count_nanos();
        if (best < 0 || dur <= best) {
          best = dur;
          parent = phase_ids[i];
        }
      }
      push({0, parent, c.kind, std::move(c.name), std::move(c.actor), c.txn,
            c.begin, c.end});
    }
  }

  // Global (txn-less or unrooted) spans: log forces, crash/reboot/fence
  // marks, stray messages.  Unparented, after all transaction trees.
  for (Child& c : forces) {
    push({0, kNoParent, c.kind, std::move(c.name), std::move(c.actor),
          c.txn, c.begin, c.end});
  }
  for (Child& c : global_children) {
    push({0, kNoParent, c.kind, std::move(c.name), std::move(c.actor),
          c.txn, c.begin, c.end});
  }
  return set;
}

}  // namespace opc::obs
