#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace opc::obs {
namespace {

const JsonValue kNullValue{};

struct Parser {
  std::string_view s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\') {
        if (i >= s.size()) return false;
        const char e = s[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            // Our emitters never write \u escapes; decode permissively as
            // a raw code unit truncated to a byte so parsing still works.
            if (i + 4 > s.size()) return false;
            unsigned v = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = s[i++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                v |= static_cast<unsigned>(h - 'A' + 10);
              else
                return false;
            }
            out += static_cast<char>(v & 0xff);
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (i >= s.size()) return false;
    const char c = s[i];
    if (c == '{') {
      ++i;
      out.type = JsonValue::Type::kObject;
      skip_ws();
      if (eat('}')) return true;
      while (true) {
        std::string key;
        if (!parse_string(key)) return false;
        if (!eat(':')) return false;
        JsonValue v;
        if (!parse_value(v)) return false;
        out.object.emplace(std::move(key), std::move(v));
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++i;
      out.type = JsonValue::Type::kArray;
      skip_ws();
      if (eat(']')) return true;
      while (true) {
        JsonValue v;
        if (!parse_value(v)) return false;
        out.array.push_back(std::move(v));
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parse_string(out.str);
    }
    if (s.compare(i, 4, "true") == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      i += 4;
      return true;
    }
    if (s.compare(i, 5, "false") == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      i += 5;
      return true;
    }
    if (s.compare(i, 4, "null") == 0) {
      out.type = JsonValue::Type::kNull;
      i += 4;
      return true;
    }
    // Number.
    std::size_t j = i;
    if (j < s.size() && (s[j] == '-' || s[j] == '+')) ++j;
    while (j < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[j])) || s[j] == '.' ||
            s[j] == 'e' || s[j] == 'E' || s[j] == '-' || s[j] == '+')) {
      ++j;
    }
    if (j == i) return false;
    const std::string num(s.substr(i, j - i));
    char* endp = nullptr;
    out.number = std::strtod(num.c_str(), &endp);
    if (endp == nullptr || *endp != '\0') return false;
    out.type = JsonValue::Type::kNumber;
    i = j;
    return true;
  }
};

}  // namespace

const JsonValue& JsonValue::operator[](std::string_view key) const {
  if (type == Type::kObject) {
    if (auto it = object.find(std::string(key)); it != object.end()) {
      return it->second;
    }
  }
  return kNullValue;
}

bool json_parse(std::string_view text, JsonValue& out) {
  Parser p{text};
  if (!p.parse_value(out)) return false;
  p.skip_ws();
  return p.i == text.size();
}

}  // namespace opc::obs
