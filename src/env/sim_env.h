// Env over the discrete-event Simulator — the deterministic backend.
//
// A pure 1:1 delegation: schedule_at forwards to Simulator::schedule_at
// (same sequence numbers, same (when, seq) dispatch order), so a component
// stack wired through SimEnv produces byte-identical traces to one wired
// against the Simulator directly.  The Rng stream is consumed only by code
// written against Env; pre-existing consumers (Network, workload sources)
// keep their own seeded streams, leaving golden trace hashes untouched.
#pragma once

#include "env/env.h"
#include "sim/simulator.h"

namespace opc {

class SimEnv final : public Env {
 public:
  /// `stream` salts the Env-owned rng; the simulator's existing consumers
  /// each own distinct streams (0xA11CE for the network, 0x0B50 / 0x3157
  /// for sources), so the default cannot collide with them.
  explicit SimEnv(Simulator& sim, std::uint64_t seed = 1,
                  std::uint64_t stream = 0xE4411)
      : sim_(sim), rng_(seed, stream) {}

  [[nodiscard]] SimTime now() const override { return sim_.now(); }

  TimerHandle schedule_at(SimTime when, Callback cb) override {
    const EventHandle h = sim_.schedule_at(when, std::move(cb));
    return TimerHandle{h.slot_, h.gen_};
  }

  bool cancel(TimerHandle h) override {
    if (!h.valid()) return false;
    return sim_.cancel(EventHandle{h.slot(), h.gen()});
  }

  [[nodiscard]] Rng& rng() override { return rng_; }

  /// The wrapped kernel, for the few places that legitimately drive the
  /// event loop (experiment runners, chaos drivers) rather than merely
  /// schedule on it.
  [[nodiscard]] Simulator& simulator() { return sim_; }

 private:
  Simulator& sim_;
  Rng rng_;
};

}  // namespace opc
