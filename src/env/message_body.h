// Small-buffer type-erased message payload.
//
// Envelope used to carry its payload as std::any, which heap-allocates a
// control block per message — one avoidable allocation (plus a free) on
// every in-process delivery.  MessageBody is the std::any shape cut down
// to what a transport needs: move-only, type-checked access, and a small
// inline buffer sized for the closed protocol vocabulary (acp::Msg,
// FsRpc, FsRpcReply — all ≤ 72 bytes), mirroring InlineCallback's
// small-buffer design on the kernel side.  Payloads that outgrow the
// buffer still work (boxed, counted under mem.sbo_spills) so the type
// stays general.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "core/mem_stats.h"

namespace opc {

class MessageBody {
 public:
  static constexpr std::size_t kInlineSize = 80;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  MessageBody() = default;
  MessageBody(const MessageBody&) = delete;
  MessageBody& operator=(const MessageBody&) = delete;

  MessageBody(MessageBody&& other) noexcept { steal(other); }
  MessageBody& operator=(MessageBody&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  ~MessageBody() { reset(); }

  /// Constructs a payload of type T in place, destroying any previous one.
  template <class T, class... Args>
  T& emplace(Args&&... args) {
    static_assert(std::is_nothrow_move_constructible_v<T>);
    reset();
    T* p;
    if constexpr (fits<T>()) {
      p = ::new (static_cast<void*>(buf_)) T(std::forward<Args>(args)...);
    } else {
      p = new T(std::forward<Args>(args)...);
      heap_ = p;
      MemStats::global().sbo_spills.fetch_add(1, std::memory_order_relaxed);
    }
    vt_ = vtable_for<T>();
    return *p;
  }

  /// Typed access; nullptr when empty or holding a different type.
  template <class T>
  [[nodiscard]] T* get() {
    return vt_ == vtable_for<T>() ? static_cast<T*>(ptr()) : nullptr;
  }
  template <class T>
  [[nodiscard]] const T* get() const {
    return vt_ == vtable_for<T>() ? static_cast<const T*>(ptr()) : nullptr;
  }

  [[nodiscard]] bool has_value() const { return vt_ != nullptr; }
  template <class T>
  [[nodiscard]] bool holds() const {
    return vt_ == vtable_for<T>();
  }

  void reset() {
    if (vt_ == nullptr) return;
    vt_->destroy(ptr(), heap_ != nullptr);
    vt_ = nullptr;
    heap_ = nullptr;
  }

 private:
  struct VTable {
    // Move-constructs from src (inline storage only) into dst, then
    // destroys src.  Heap payloads transfer by pointer and never relocate.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* p, bool heap);
  };

  template <class T>
  static constexpr bool fits() {
    return sizeof(T) <= kInlineSize && alignof(T) <= kInlineAlign;
  }

  template <class T>
  static const VTable* vtable_for() {
    static constexpr VTable vt{
        [](void* dst, void* src) {
          if constexpr (MessageBody::fits<T>()) {
            T* s = static_cast<T*>(src);
            ::new (dst) T(std::move(*s));
            s->~T();
          }
        },
        [](void* p, bool heap) {
          if (heap) {
            delete static_cast<T*>(p);
          } else {
            static_cast<T*>(p)->~T();
          }
        },
    };
    return &vt;
  }

  [[nodiscard]] void* ptr() {
    return heap_ != nullptr ? heap_ : static_cast<void*>(buf_);
  }
  [[nodiscard]] const void* ptr() const {
    return heap_ != nullptr ? heap_ : static_cast<const void*>(buf_);
  }

  void steal(MessageBody& other) {
    vt_ = other.vt_;
    heap_ = other.heap_;
    if (vt_ != nullptr && heap_ == nullptr) {
      vt_->relocate(buf_, other.buf_);
    }
    other.vt_ = nullptr;
    other.heap_ = nullptr;
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  void* heap_ = nullptr;
  const VTable* vt_ = nullptr;
};

}  // namespace opc
