// The runtime seam: what a protocol component needs from its executor.
//
// Every layer of the metadata service — commit engines, WAL, lock managers,
// network, workload sources — used to hold a concrete Simulator&.  Env
// narrows that dependency to the four things those layers actually consume:
//
//   * now()            — the current time on the executor's clock.
//   * schedule_at/after — run a callback later, with a cancellable handle.
//   * cancel()         — revoke a pending callback (stale handles are
//                        harmless no-ops, as with EventHandle).
//   * rng()            — a deterministic-per-executor random stream for
//                        code written against Env (pre-existing consumers
//                        such as Network keep their own seeded streams, so
//                        simulated trace hashes are untouched).
//
// Two implementations exist: SimEnv (src/env/sim_env.h) delegates 1:1 to
// the discrete-event Simulator and preserves its determinism guarantees;
// RtEnv (src/rt/rt_env.h) runs the same callbacks on real threads over
// std::chrono::steady_clock.  The contract — what callers may rely on
// under each — is documented in docs/RUNTIME.md.
#pragma once

#include <cstdint>
#include <utility>

#include "sim/check.h"
#include "sim/inline_callback.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace opc {

/// Executor-neutral handle to a scheduled callback.  Mirrors EventHandle's
/// (slot, generation) scheme: executors recycle slots and bump generations,
/// so a handle to an already-fired or cancelled timer simply fails the
/// generation check inside cancel().
class TimerHandle {
 public:
  TimerHandle() = default;
  TimerHandle(std::uint32_t slot, std::uint32_t gen)
      : slot_(slot), gen_(gen) {}

  /// True if this handle was ever bound to a scheduled timer.
  [[nodiscard]] bool valid() const { return gen_ != 0; }

  [[nodiscard]] std::uint32_t slot() const { return slot_; }
  [[nodiscard]] std::uint32_t gen() const { return gen_; }

 private:
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;  // live generations are never 0
};

/// Abstract execution environment.  Virtual dispatch sits one level above
/// the simulator's inlined hot path: the kernel benchmarks drive Simulator
/// directly, and a schedule through SimEnv costs one indirect call on top
/// of the same inlined schedule_at.
class Env {
 public:
  /// Same type (and inline window) as Simulator::Callback, so callbacks
  /// move through SimEnv without conversion or allocation.
  using Callback = InlineCallback<void(), kInlineCallbackBytes>;

  virtual ~Env() = default;

  /// Current time on this executor's clock (simulated or steady_clock
  /// nanoseconds since executor start).
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Schedules `cb` to run at absolute time `when` (>= now()).
  virtual TimerHandle schedule_at(SimTime when, Callback cb) = 0;

  /// Cancels a pending timer.  No-op (returns false) if it already fired
  /// or was already cancelled.
  virtual bool cancel(TimerHandle h) = 0;

  /// Deterministic random stream owned by this executor, for code written
  /// against Env.  In RtEnv the stream is per-worker-thread.
  [[nodiscard]] virtual Rng& rng() = 0;

  /// Schedules `cb` to run `delay` from now.  Negative delays are a bug.
  TimerHandle schedule_after(Duration delay, Callback cb) {
    SIM_CHECK_MSG(delay.count_nanos() >= 0, "cannot schedule into the past");
    return schedule_at(now() + delay, std::move(cb));
  }

 protected:
  Env() = default;
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;
};

}  // namespace opc
