// The message-passing half of the runtime seam.
//
// Transport is what the protocol engines see of "the network": attach a
// per-node receive handler, send typed envelopes.  The simulated Network
// (src/net) implements it over one Simulator with the paper's delay model
// and failure injection; RtTransport (src/rt) implements it as an
// in-process MPSC loopback between worker threads, applying the same
// NetworkConfig delay model as real sleeps.
//
// The payload travels as a MessageBody — a small-buffer type-erased box
// (env/message_body.h): transports are deliberately ignorant of protocol
// message contents; the ACP layer defines and downcasts its own message
// struct (src/acp/messages.h).  Unlike the std::any it replaced, the
// closed protocol vocabulary rides entirely in the envelope's inline
// buffer, so handing a message through a transport allocates nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "env/message_body.h"
#include "net/types.h"

namespace opc {

/// One in-flight message.  Move-only (the payload owns its content).
struct Envelope {
  NodeId from;
  NodeId to;
  std::string kind;        // short label for tracing ("UPDATE_REQ", ...)
  std::uint64_t txn = 0;   // transaction id for tracing, 0 if none
  std::uint64_t size_bytes = 256;
  MessageBody payload;     // protocol-defined content
};

/// Abstract node-to-node message fabric.  Delivery is at-most-once and
/// FIFO per directed (from, to) channel; a node with no attached handler
/// drops everything sent to it.  See docs/RUNTIME.md for what each
/// implementation additionally promises.
class Transport {
 public:
  using Handler = std::function<void(Envelope)>;

  virtual ~Transport() = default;

  /// Attaches the receive handler for a node; replaces any previous one.
  /// A node with no handler (never attached, or detached by a crash) drops
  /// everything sent to it.
  virtual void attach(NodeId node, Handler handler) = 0;

  /// Detaches a node (crash).  In-flight messages to it will be dropped at
  /// delivery time — they were "on the wire" when the node died.
  virtual void detach(NodeId node) = 0;

  [[nodiscard]] virtual bool attached(NodeId node) const = 0;

  /// Sends an envelope; delivery is scheduled after the link delay unless
  /// the message is dropped (partition, loss, dead receiver).
  virtual void send(Envelope env) = 0;

 protected:
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
};

}  // namespace opc
