// Cluster-wide identifier vocabulary.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace opc {

/// Identifies one node (metadata server or client host) in the simulated
/// cluster.  A strong type so node ids, transaction ids and object ids can
/// never be swapped silently.
class NodeId {
 public:
  constexpr NodeId() = default;
  explicit constexpr NodeId(std::uint32_t v) : v_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  constexpr auto operator<=>(const NodeId&) const = default;

  [[nodiscard]] std::string str() const { return "mds" + std::to_string(v_); }

 private:
  std::uint32_t v_ = UINT32_MAX;
};

/// Sentinel used for "no node" (e.g. a transaction with no worker).
inline constexpr NodeId kNoNode{};

}  // namespace opc

template <>
struct std::hash<opc::NodeId> {
  std::size_t operator()(const opc::NodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
