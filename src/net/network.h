// Simulated cluster interconnect.
//
// The Network delivers typed envelopes between nodes with a configurable
// one-way latency (the paper's experiments use 100 µs) plus an optional
// per-byte cost.  Per-(source, destination) channels are FIFO: even with
// jitter enabled a later send never overtakes an earlier one, matching the
// in-order links the commit protocols assume.
//
// Failure modeling:
//   * Partitions — directed node pairs can be severed; messages crossing a
//     severed link are silently dropped (the sender cannot tell, exactly as
//     with a real partition).  Partitions can heal.
//   * Down nodes — a crashed node has no registered handler; deliveries to
//     it are dropped.  This models the receive-side loss of a crash.
//   * Probabilistic loss — optional, for stress tests.
//
// The payload travels as an inline MessageBody (env/message_body.h): the
// network is deliberately ignorant of protocol message contents; the ACP
// layer defines and downcasts its own message struct (src/acp/messages.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "env/env.h"
#include "env/transport.h"
#include "net/types.h"
#include "sim/rng.h"
#include "sim/trace.h"
#include "stats/counters.h"

namespace opc {

struct NetworkConfig {
  Duration latency = Duration::micros(100);  // one-way, paper's value
  double bytes_per_second = 0;               // 0 = latency-only model
  Duration jitter_max = Duration::zero();    // uniform extra delay in [0,max]
  double loss_probability = 0.0;             // applied per message
};

class Network final : public Transport {
 public:
  using Handler = Transport::Handler;

  Network(Env& env, NetworkConfig cfg, StatsRegistry& stats,
          TraceRecorder& trace, std::uint64_t seed = 1)
      : env_(env), cfg_(cfg), stats_(stats), trace_(trace),
        rng_(seed, /*stream=*/0xA11CE), c_sent_(stats, "net.sent"),
        c_delivered_(stats, "net.delivered") {}

  /// Attaches the receive handler for a node; replaces any previous one.
  /// A node with no handler (never attached, or detached by a crash) drops
  /// everything sent to it.
  void attach(NodeId node, Handler handler) override;

  /// Detaches a node (crash).  In-flight messages to it will be dropped at
  /// delivery time — they were "on the wire" when the node died.
  void detach(NodeId node) override;

  [[nodiscard]] bool attached(NodeId node) const override {
    return handlers_.contains(node);
  }

  /// Sends an envelope; delivery is scheduled after the link latency unless
  /// the link is severed or the message is lost.
  void send(Envelope env) override;

  /// Severs the directed link from -> to.  sever_pair() cuts both ways.
  void sever(NodeId from, NodeId to) { severed_.insert(key(from, to)); }
  void sever_pair(NodeId a, NodeId b) { sever(a, b); sever(b, a); }

  /// Heals previously severed links.
  void heal(NodeId from, NodeId to) { severed_.erase(key(from, to)); }
  void heal_pair(NodeId a, NodeId b) { heal(a, b); heal(b, a); }
  void heal_all() { severed_.clear(); }

  [[nodiscard]] bool severed(NodeId from, NodeId to) const {
    return severed_.contains(key(from, to));
  }

  /// Test hook: a predicate inspected for every send; returning true drops
  /// the envelope (counted under net.dropped.filter).  Used by the
  /// fault-injection tests to lose one specific protocol message
  /// deterministically.  nullptr disables.
  void set_drop_filter(std::function<bool(const Envelope&)> filter) {
    drop_filter_ = std::move(filter);
  }

  [[nodiscard]] const NetworkConfig& config() const { return cfg_; }

  // --- Runtime fault injection (chaos nemesis) ---
  /// Changes the per-message loss probability from now on; draws stay on
  /// this network's RNG stream, so runs remain seed-deterministic.
  void set_loss_probability(double p) { cfg_.loss_probability = p; }
  /// Changes the uniform extra-delay bound from now on.  FIFO per channel
  /// is still enforced, so jitter reorders nothing within a link.
  void set_jitter_max(Duration j) { cfg_.jitter_max = j; }

 private:
  static std::uint64_t key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
  }

  void deliver(Envelope env);

  Env& env_;
  NetworkConfig cfg_;
  StatsRegistry& stats_;
  TraceRecorder& trace_;
  Rng rng_;
  Counter c_sent_;
  Counter c_delivered_;
  std::function<bool(const Envelope&)> drop_filter_;
  std::unordered_map<NodeId, Handler> handlers_;
  std::unordered_set<std::uint64_t> severed_;
  // Last scheduled delivery time per directed channel, for FIFO enforcement
  // under jitter.
  std::unordered_map<std::uint64_t, SimTime> channel_clock_;
  // Recycled envelope boxes for in-flight messages: a send pops a box (or
  // allocates the first few), the delivery callback returns it.  Steady
  // state moves envelopes through without touching the heap.
  std::vector<std::unique_ptr<Envelope>> box_pool_;
};

}  // namespace opc
