#include "net/network.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace opc {

void Network::attach(NodeId node, Handler handler) {
  SIM_CHECK(handler != nullptr);
  handlers_[node] = std::move(handler);
}

void Network::detach(NodeId node) { handlers_.erase(node); }

void Network::send(Envelope env) {
  c_sent_.add();
  if (trace_.active()) {
    trace_.record(env_.now(), TraceKind::kMessageSend, env.from.str(),
                  env.kind + " -> " + env.to.str(), env.txn);
  }

  if (severed(env.from, env.to)) {
    stats_.add("net.dropped.partition");
    if (trace_.active()) {
      trace_.record(env_.now(), TraceKind::kMessageDrop, env.from.str(),
                    env.kind + " (partitioned) -> " + env.to.str(), env.txn);
    }
    return;
  }
  if (cfg_.loss_probability > 0.0 && rng_.bernoulli(cfg_.loss_probability)) {
    stats_.add("net.dropped.loss");
    if (trace_.active()) {
      trace_.record(env_.now(), TraceKind::kMessageDrop, env.from.str(),
                    env.kind + " (lost) -> " + env.to.str(), env.txn);
    }
    return;
  }
  if (drop_filter_ && drop_filter_(env)) {
    stats_.add("net.dropped.filter");
    if (trace_.active()) {
      trace_.record(env_.now(), TraceKind::kMessageDrop, env.from.str(),
                    env.kind + " (filtered) -> " + env.to.str(), env.txn);
    }
    return;
  }

  Duration delay = cfg_.latency;
  if (cfg_.bytes_per_second > 0.0) {
    delay += Duration::from_seconds_f(static_cast<double>(env.size_bytes) /
                                      cfg_.bytes_per_second);
  }
  if (cfg_.jitter_max > Duration::zero()) {
    delay += Duration::nanos(static_cast<std::int64_t>(rng_.uniform(
        0.0, static_cast<double>(cfg_.jitter_max.count_nanos()))));
  }

  SimTime when = env_.now() + delay;
  // FIFO per directed channel: never deliver before an earlier message on
  // the same channel.
  const std::uint64_t ch = key(env.from, env.to);
  if (auto it = channel_clock_.find(ch); it != channel_clock_.end()) {
    when = std::max(when, it->second + Duration::nanos(1));
  }
  channel_clock_[ch] = when;

  // Box the envelope: a 16-byte {this, unique_ptr} capture stays on the
  // kernel's allocation-free inline-callback path.  Boxes are recycled
  // through box_pool_, so steady state moves the envelope without any heap
  // traffic (the envelope's inline MessageBody carries the payload).
  std::unique_ptr<Envelope> boxed;
  if (!box_pool_.empty()) {
    boxed = std::move(box_pool_.back());
    box_pool_.pop_back();
    *boxed = std::move(env);
  } else {
    boxed = std::make_unique<Envelope>(std::move(env));
  }
  auto deliver_cb = [this, boxed = std::move(boxed)]() mutable {
    Envelope e = std::move(*boxed);
    box_pool_.push_back(std::move(boxed));
    deliver(std::move(e));
  };
  OPC_ASSERT_INLINE_CB(deliver_cb);
  env_.schedule_at(when, std::move(deliver_cb));
}

void Network::deliver(Envelope env) {
  // A partition raised *after* the send also kills in-flight traffic: the
  // packet is on the wire while the link goes dark.
  if (severed(env.from, env.to)) {
    stats_.add("net.dropped.partition");
    if (trace_.active()) {
      trace_.record(env_.now(), TraceKind::kMessageDrop, env.to.str(),
                    env.kind + " (partitioned in flight) from " +
                        env.from.str(),
                    env.txn);
    }
    return;
  }
  auto it = handlers_.find(env.to);
  if (it == handlers_.end()) {
    stats_.add("net.dropped.down");
    if (trace_.active()) {
      trace_.record(env_.now(), TraceKind::kMessageDrop, env.to.str(),
                    env.kind + " (node down) from " + env.from.str(),
                    env.txn);
    }
    return;
  }
  c_delivered_.add();
  if (trace_.active()) {
    trace_.record(env_.now(), TraceKind::kMessageRecv, env.to.str(),
                  env.kind + " <- " + env.from.str(), env.txn);
  }
  // Copy the handler: the callback may detach/re-attach the node.
  Handler h = it->second;
  h(std::move(env));
}

}  // namespace opc
