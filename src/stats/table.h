// ASCII table / CSV rendering for bench and example output.
//
// The benches print the same rows/series the paper reports; TextTable keeps
// that output aligned and diff-friendly without dragging in a formatting
// library.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace opc {

class TextTable {
 public:
  /// Column headers define the table width; every row must match.
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells);

  /// Convenience for mixed literal rows.
  void add_row(std::initializer_list<std::string> cells) {
    add_row(std::vector<std::string>(cells));
  }

  /// Aligned, boxed ASCII rendering.
  [[nodiscard]] std::string render() const;

  /// RFC-4180-ish CSV rendering (fields with commas/quotes get quoted).
  [[nodiscard]] std::string render_csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Formats a double with `prec` decimals (helper for numeric cells).
  [[nodiscard]] static std::string num(double v, int prec = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace opc
