#include "stats/counters.h"

#include <cinttypes>
#include <cstdio>

namespace opc {

std::string StatsRegistry::dump() const {
  std::string out;
  char buf[160];
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof(buf), "%-40s = %" PRId64 "\n", name.c_str(),
                  value);
    out += buf;
  }
  return out;
}

}  // namespace opc
