// Named counter registry.
//
// Protocol instrumentation (message counts, forced vs. lazy log writes,
// aborts, lock waits…) funnels through a StatsRegistry so the Table I bench
// can read back exact counts without the protocol code knowing who consumes
// them.  Names are hierarchical by convention: "acp.msgs.total",
// "wal.force.count", "lock.timeout_aborts".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace opc {

class StatsRegistry {
 public:
  /// Adds `delta` to the named counter, creating it at zero if absent.
  void add(std::string_view name, std::int64_t delta = 1) {
    counters_[std::string(name)] += delta;
  }

  /// Current value; zero for counters never touched.
  [[nodiscard]] std::int64_t get(std::string_view name) const {
    auto it = counters_.find(std::string(name));
    return it == counters_.end() ? 0 : it->second;
  }

  /// Sets a counter to an absolute value (used for gauges).
  void set(std::string_view name, std::int64_t value) {
    counters_[std::string(name)] = value;
  }

  /// All counters, sorted by name (std::map keeps them ordered), which makes
  /// dumps deterministic.
  [[nodiscard]] const std::map<std::string, std::int64_t>& all() const {
    return counters_;
  }

  /// Sums every counter from `other` into this registry.
  void merge(const StatsRegistry& other) {
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
  }

  void clear() { counters_.clear(); }

  /// Multi-line "name = value" dump, sorted by name.
  [[nodiscard]] std::string dump() const;

 private:
  std::map<std::string, std::int64_t> counters_;
};

}  // namespace opc
