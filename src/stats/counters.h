// Named counter registry.
//
// Protocol instrumentation (message counts, forced vs. lazy log writes,
// aborts, lock waits…) funnels through a StatsRegistry so the Table I bench
// can read back exact counts without the protocol code knowing who consumes
// them.  Names are hierarchical by convention: "acp.msgs.total",
// "wal.force.count", "lock.timeout_aborts".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

namespace opc {

class StatsRegistry {
 public:
  /// Map with a transparent comparator so string_view lookups never build a
  /// temporary std::string — counter bumps on the protocol hot path stay
  /// allocation-free once a counter exists (asserted by the bench smoke).
  using CounterMap = std::map<std::string, std::int64_t, std::less<>>;

  /// Adds `delta` to the named counter, creating it at zero if absent.
  /// Allocates only on the first touch of a name.
  void add(std::string_view name, std::int64_t delta = 1) {
    if (auto it = counters_.find(name); it != counters_.end()) {
      it->second += delta;
      return;
    }
    counters_.emplace(std::string(name), delta);
  }

  /// Current value; zero for counters never touched.
  [[nodiscard]] std::int64_t get(std::string_view name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Sets a counter to an absolute value (used for gauges).
  void set(std::string_view name, std::int64_t value) {
    if (auto it = counters_.find(name); it != counters_.end()) {
      it->second = value;
      return;
    }
    counters_.emplace(std::string(name), value);
  }

  /// All counters, sorted by name (std::map keeps them ordered), which makes
  /// dumps deterministic.
  [[nodiscard]] const CounterMap& all() const {
    return counters_;
  }

  /// Sums every counter from `other` into this registry.
  void merge(const StatsRegistry& other) {
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
  }

  void clear() { counters_.clear(); }

  /// Multi-line "name = value" dump, sorted by name.
  [[nodiscard]] std::string dump() const;

 private:
  CounterMap counters_;
};

}  // namespace opc
