// Named counter registry.
//
// Protocol instrumentation (message counts, forced vs. lazy log writes,
// aborts, lock waits…) funnels through a StatsRegistry so the Table I bench
// can read back exact counts without the protocol code knowing who consumes
// them.  Names are hierarchical by convention: "acp.msgs.total",
// "wal.force.count", "lock.timeout_aborts".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

namespace opc {

class StatsRegistry {
 public:
  /// Map with a transparent comparator so string_view lookups never build a
  /// temporary std::string — counter bumps on the protocol hot path stay
  /// allocation-free once a counter exists (asserted by the bench smoke).
  using CounterMap = std::map<std::string, std::int64_t, std::less<>>;

  /// Adds `delta` to the named counter, creating it at zero if absent.
  /// Allocates only on the first touch of a name.
  void add(std::string_view name, std::int64_t delta = 1) {
    if (auto it = counters_.find(name); it != counters_.end()) {
      it->second += delta;
      return;
    }
    counters_.emplace(std::string(name), delta);
  }

  /// Current value; zero for counters never touched.
  [[nodiscard]] std::int64_t get(std::string_view name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Stable reference to the named counter's storage, creating it at zero
  /// if absent.  CounterMap is node-based, so the reference stays valid for
  /// the registry's lifetime (clear() is never used on live registries).
  /// Hot paths bind once and bump through the reference instead of paying a
  /// map walk per add.
  [[nodiscard]] std::int64_t& slot(std::string_view name) {
    if (auto it = counters_.find(name); it != counters_.end()) {
      return it->second;
    }
    return counters_.emplace(std::string(name), 0).first->second;
  }

  /// Sets a counter to an absolute value (used for gauges).
  void set(std::string_view name, std::int64_t value) {
    if (auto it = counters_.find(name); it != counters_.end()) {
      it->second = value;
      return;
    }
    counters_.emplace(std::string(name), value);
  }

  /// All counters, sorted by name (std::map keeps them ordered), which makes
  /// dumps deterministic.
  [[nodiscard]] const CounterMap& all() const {
    return counters_;
  }

  /// Sums every counter from `other` into this registry.
  void merge(const StatsRegistry& other) {
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
  }

  void clear() { counters_.clear(); }

  /// Multi-line "name = value" dump, sorted by name.
  [[nodiscard]] std::string dump() const;

 private:
  CounterMap counters_;
};

/// Cached handle to one registry counter.
///
/// Binds lazily on the first bump rather than at construction: report
/// builders dump *every* registered counter, so eagerly registering a
/// counter that a given run never touches would change report output.  A
/// Counter that is never bumped leaves no trace in the registry.
///
/// The name must outlive the Counter (string literals in practice).
class Counter {
 public:
  Counter(StatsRegistry& reg, std::string_view name)
      : reg_(&reg), name_(name) {}

  void add(std::int64_t delta = 1) {
    if (slot_ == nullptr) slot_ = &reg_->slot(name_);
    *slot_ += delta;
  }

  [[nodiscard]] std::int64_t value() const {
    return slot_ != nullptr ? *slot_ : reg_->get(name_);
  }

 private:
  StatsRegistry* reg_;
  std::string_view name_;
  std::int64_t* slot_ = nullptr;
};

}  // namespace opc
