#include "stats/table.h"

#include <algorithm>
#include <cstdio>

#include "sim/check.h"

namespace opc {

void TextTable::add_row(std::vector<std::string> cells) {
  SIM_CHECK_MSG(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += ' ';
      s += cells[c];
      s += std::string(width[c] - cells[c].size() + 1, ' ');
      s += '|';
    }
    s += '\n';
    return s;
  };

  std::string out = rule();
  out += line(headers_);
  out += rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

std::string TextTable::render_csv() const {
  auto field = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += field(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += field(row[c]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace opc
