// Throughput measurement over simulated time.
//
// A ThroughputMeter counts completion events between a configurable warm-up
// point and the measurement end, yielding events/second of *simulated* time
// — the metric the paper's Figure 6 reports (distributed namespace
// operations per second).
#pragma once

#include <cstdint>

#include "sim/check.h"
#include "sim/time.h"

namespace opc {

class ThroughputMeter {
 public:
  ThroughputMeter() = default;

  /// Events before `at` are excluded from the rate (warm-up / ramp filter).
  void set_warmup_until(SimTime at) { warmup_until_ = at; }

  /// Events at/after `at` are excluded (e.g. stragglers draining after the
  /// measurement deadline).  Default: no cutoff.
  void set_cutoff(SimTime at) { cutoff_ = at; }

  void record(SimTime at) {
    ++total_;
    if (at < warmup_until_ || at >= cutoff_) return;
    if (measured_ == 0) first_ = at;
    last_ = at;
    ++measured_;
  }

  [[nodiscard]] std::uint64_t total_events() const { return total_; }
  [[nodiscard]] std::uint64_t measured_events() const { return measured_; }

  /// Events per simulated second across the measured window.  With fewer
  /// than two measured events the rate is 0 (no defined interval).
  [[nodiscard]] double events_per_second() const {
    if (measured_ < 2) return 0.0;
    const Duration span = last_ - first_;
    SIM_CHECK(span.count_nanos() > 0);
    return static_cast<double>(measured_ - 1) / span.to_seconds_f();
  }

  /// Rate relative to an externally supplied window (e.g. full run length),
  /// counting all measured events.
  [[nodiscard]] double events_per_second_over(Duration window) const {
    if (window.count_nanos() <= 0) return 0.0;
    return static_cast<double>(measured_) / window.to_seconds_f();
  }

 private:
  SimTime warmup_until_ = SimTime::zero();
  SimTime cutoff_ = SimTime::max();
  SimTime first_ = SimTime::zero();
  SimTime last_ = SimTime::zero();
  std::uint64_t total_ = 0;
  std::uint64_t measured_ = 0;
};

}  // namespace opc
