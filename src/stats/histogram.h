// Latency histogram with logarithmic bins.
//
// The simulator produces latencies spanning six orders of magnitude (1 µs
// method costs up to multi-second recovery pauses), so a log-binned
// histogram with ~2.5 % relative bin width gives accurate quantiles at a
// fixed, small memory footprint.  Exact min/max/mean/sum are tracked on the
// side so summary statistics do not suffer binning error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace opc {

class Histogram {
 public:
  Histogram() = default;

  void record(double value);
  void record(Duration d) { record(static_cast<double>(d.count_nanos())); }

  /// Merges another histogram into this one (used by the parallel sweep
  /// runner to combine per-thread results).
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const { return count_ ? sum_ / count_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Standard deviation of the recorded values (exact, not binned).
  [[nodiscard]] double stddev() const;

  /// Approximate quantile, q in [0, 1].  Linear interpolation within the
  /// matched log bin; exact for min (q=0) and max (q=1).
  [[nodiscard]] double quantile(double q) const;

  /// Convenience accessors in Duration form for time-valued histograms.
  [[nodiscard]] Duration mean_duration() const {
    return Duration::nanos(static_cast<std::int64_t>(mean()));
  }
  [[nodiscard]] Duration quantile_duration(double q) const {
    return Duration::nanos(static_cast<std::int64_t>(quantile(q)));
  }

  /// One-line summary: "n=100 mean=1.2ms p50=1.1ms p99=4.0ms max=5.0ms".
  [[nodiscard]] std::string summary() const;

 private:
  static constexpr int kBinsPerOctave = 28;  // ~2.5 % relative width
  [[nodiscard]] static int bin_index(double v);
  [[nodiscard]] static double bin_lower(int idx);
  [[nodiscard]] static double bin_upper(int idx);

  std::vector<std::uint64_t> bins_;  // grows on demand
  std::uint64_t count_ = 0;
  std::uint64_t zero_or_negative_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace opc
