#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/check.h"

namespace opc {

int Histogram::bin_index(double v) {
  // v > 0 guaranteed by caller.  log2(v) * kBinsPerOctave, floored.
  return static_cast<int>(std::floor(std::log2(v) * kBinsPerOctave));
}

double Histogram::bin_lower(int idx) {
  return std::exp2(static_cast<double>(idx) / kBinsPerOctave);
}

double Histogram::bin_upper(int idx) {
  return std::exp2(static_cast<double>(idx + 1) / kBinsPerOctave);
}

void Histogram::record(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
  if (value <= 0.0) {
    ++zero_or_negative_;
    return;
  }
  const int idx = bin_index(value);
  // Shift so index 0 covers 1.0; values below 1 ns land in the
  // zero_or_negative bucket's neighbourhood — clamp them to bin 0.
  const int slot = std::max(idx, 0);
  if (static_cast<std::size_t>(slot) >= bins_.size()) {
    bins_.resize(static_cast<std::size_t>(slot) + 1, 0);
  }
  ++bins_[static_cast<std::size_t>(slot)];
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  zero_or_negative_ += other.zero_or_negative_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  if (other.bins_.size() > bins_.size()) bins_.resize(other.bins_.size(), 0);
  for (std::size_t i = 0; i < other.bins_.size(); ++i) {
    bins_[i] += other.bins_[i];
  }
}

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

double Histogram::quantile(double q) const {
  SIM_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  std::uint64_t seen = zero_or_negative_;
  if (target < seen) return std::min(0.0, min_);
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    if (seen + bins_[i] > target) {
      const double lo = std::max(bin_lower(static_cast<int>(i)), min_);
      const double hi = std::min(bin_upper(static_cast<int>(i)), max_);
      const double frac =
          static_cast<double>(target - seen) / static_cast<double>(bins_[i]);
      return lo + (hi - lo) * frac;
    }
    seen += bins_[i];
  }
  return max_;
}

std::string Histogram::summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%s p50=%s p99=%s max=%s",
                static_cast<unsigned long long>(count_),
                to_string(mean_duration()).c_str(),
                to_string(quantile_duration(0.50)).c_str(),
                to_string(quantile_duration(0.99)).c_str(),
                to_string(Duration::nanos(static_cast<std::int64_t>(max()))).c_str());
  return buf;
}

}  // namespace opc
