// Path-based file-system client.
//
// The layer a real application would code against: absolute paths in,
// namespace operations out.  Each operation
//
//   1. resolves the path one component at a time with lookup RPCs to the
//      owning metadata servers (k components = k network round trips, as
//      in a real distributed file system without a client dentry cache);
//   2. plans the namespace operation through the NamespacePlanner (which
//      decides which MDSs participate);
//   3. submits it to the coordinator's commit engine and maps the
//      transaction outcome back to an FsStatus.
//
// The client is itself a network endpoint (it owns a NodeId outside the
// MDS range), so its reads travel the simulated wire, see partition
// effects, and can time out against crashed servers.
//
// Everything is asynchronous: callbacks fire from simulator events.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "fs/rpc.h"
#include "mds/namespace.h"

namespace opc {

enum class FsStatus : std::uint8_t {
  kOk,
  kNotFound,       // a path component does not exist
  kExists,         // create/mkdir target already exists
  kNotADirectory,  // a non-final component is not a directory
  kNotEmpty,       // rmdir of a non-empty directory
  kInvalidPath,    // not absolute / empty component
  kAborted,        // the commit protocol aborted the operation
  kUnreachable,    // an RPC timed out (server down / partitioned)
};

[[nodiscard]] const char* fs_status_name(FsStatus s);

struct FsClientConfig {
  Duration rpc_timeout = Duration::seconds(1);

  /// Client-side dentry cache TTL.  zero() disables caching (default):
  /// every component costs a lookup RPC, as in the paper's model.  With a
  /// TTL, resolutions reuse recent lookups; entries can go stale when other
  /// clients mutate the namespace — operations then fail (kAborted /
  /// kNotFound), the client invalidates the affected path and the caller
  /// retries against fresh state.
  Duration dentry_cache_ttl = Duration::zero();
};

class FsClient {
 public:
  using StatusCb = std::function<void(FsStatus)>;
  using StatCb = std::function<void(FsStatus, Inode)>;
  using ResolveCb = std::function<void(FsStatus, ObjectId)>;
  using ReaddirCb = std::function<void(
      FsStatus, std::vector<std::pair<std::string, ObjectId>>)>;

  /// `client_id` must be outside the MDS id range (e.g. cluster.size()+k).
  /// `root` is the root directory's object id.
  FsClient(Env& env, Cluster& cluster, NamespacePlanner& planner,
           IdAllocator& ids, ObjectId root, NodeId client_id,
           FsClientConfig cfg = {});
  ~FsClient();

  FsClient(const FsClient&) = delete;
  FsClient& operator=(const FsClient&) = delete;

  // --- namespace updates (run through the commit protocols) ---
  void create(const std::string& path, StatusCb cb) {
    create_node(path, /*is_dir=*/false, std::move(cb));
  }
  void mkdir(const std::string& path, StatusCb cb) {
    create_node(path, /*is_dir=*/true, std::move(cb));
  }
  /// Removes a file (or an empty directory).
  void unlink(const std::string& path, StatusCb cb);
  void rename(const std::string& from, const std::string& to, StatusCb cb);

  // --- metadata reads (lookup path, no commit machinery) ---
  void stat(const std::string& path, StatCb cb);
  void readdir(const std::string& path, ReaddirCb cb);
  /// Resolves a path to its inode id.
  void resolve(const std::string& path, ResolveCb cb);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] ObjectId root() const { return root_; }

  /// Splits an absolute path into components; empty result + false on
  /// malformed input ("" or not starting with '/'); "/" yields zero
  /// components.  Exposed for tests.
  [[nodiscard]] static bool split_path(const std::string& path,
                                       std::vector<std::string>& out);

  /// Drops every cached dentry along `path` (each component).  Called
  /// automatically when an operation fails in a way that suggests
  /// staleness; exposed so applications can force freshness.
  void invalidate(const std::string& path);

  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return cache_misses_; }

 private:
  struct Pending {
    std::function<void(bool delivered, FsRpcReply)> cb;
    TimerHandle timer;
  };
  struct CachedDentry {
    ObjectId child;
    SimTime cached_at;
  };

  void create_node(const std::string& path, bool is_dir, StatusCb cb);
  /// Resolves `components[0..n_components)` starting at the root; yields
  /// the final object id.
  void resolve_components(std::vector<std::string> components,
                          std::size_t index, ObjectId current, ResolveCb cb);
  /// Resolves everything but the last component; yields (parent dir, leaf).
  void resolve_parent(const std::string& path,
                      std::function<void(FsStatus, ObjectId parent,
                                         std::string leaf)> cb);
  void send_rpc(NodeId to, FsRpc rpc,
                std::function<void(bool delivered, FsRpcReply)> cb);
  void on_envelope(Envelope env);
  void submit_txn(Transaction txn, StatusCb cb);
  /// Wraps a status callback so cache entries along `path` are invalidated
  /// when the operation fails for possibly-stale reasons.
  [[nodiscard]] StatusCb with_staleness_retry(const std::string& path,
                                              StatusCb cb);

  Env& env_;
  Cluster& cluster_;
  NamespacePlanner& planner_;
  IdAllocator& ids_;
  ObjectId root_;
  NodeId id_;
  FsClientConfig cfg_;
  std::uint64_t next_req_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::map<std::pair<ObjectId, std::string>, CachedDentry> dentry_cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
};

}  // namespace opc
