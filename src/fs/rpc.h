// Metadata read RPCs between file-system clients and metadata servers.
//
// Path resolution, stat and readdir are reads: they are answered directly
// from the target MDS's current (mem) tables without entering the commit
// machinery — the same split real distributed file systems make between
// the lookup path and the update path.  These RPCs travel the simulated
// network like everything else, so a k-component path resolution costs k
// round trips to the owning servers.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mds/store.h"
#include "txn/types.h"

namespace opc {

/// Envelope.kind used for these RPCs; MdsNode dispatches on it.
inline constexpr const char* kFsRpcKind = "FS_REQ";
inline constexpr const char* kFsRpcReplyKind = "FS_REPLY";

enum class FsRpcOp : std::uint8_t { kLookup, kStat, kReaddir };

struct FsRpc {
  FsRpcOp op = FsRpcOp::kLookup;
  std::uint64_t req_id = 0;
  ObjectId target;    // directory (lookup/readdir) or inode (stat)
  std::string name;   // lookup: the component
};

struct FsRpcReply {
  std::uint64_t req_id = 0;
  bool found = false;
  ObjectId child;          // lookup: resolved component
  Inode inode;             // stat: attributes
  std::vector<std::pair<std::string, ObjectId>> entries;  // readdir
};

}  // namespace opc
