#include "fs/client.h"

#include <utility>

namespace opc {

const char* fs_status_name(FsStatus s) {
  switch (s) {
    case FsStatus::kOk: return "Ok";
    case FsStatus::kNotFound: return "NotFound";
    case FsStatus::kExists: return "Exists";
    case FsStatus::kNotADirectory: return "NotADirectory";
    case FsStatus::kNotEmpty: return "NotEmpty";
    case FsStatus::kInvalidPath: return "InvalidPath";
    case FsStatus::kAborted: return "Aborted";
    case FsStatus::kUnreachable: return "Unreachable";
  }
  return "?";
}

FsClient::FsClient(Env& env, Cluster& cluster, NamespacePlanner& planner,
                   IdAllocator& ids, ObjectId root, NodeId client_id,
                   FsClientConfig cfg)
    : env_(env), cluster_(cluster), planner_(planner), ids_(ids), root_(root),
      id_(client_id), cfg_(cfg) {
  SIM_CHECK_MSG(client_id.value() >= cluster.size(),
                "client id collides with an MDS id");
  cluster_.network().attach(id_,
                            [this](Envelope env) { on_envelope(std::move(env)); });
}

FsClient::~FsClient() { cluster_.network().detach(id_); }

bool FsClient::split_path(const std::string& path,
                          std::vector<std::string>& out) {
  out.clear();
  if (path.empty() || path.front() != '/') return false;
  std::size_t i = 1;
  while (i < path.size()) {
    const std::size_t next = path.find('/', i);
    const std::size_t end = next == std::string::npos ? path.size() : next;
    if (end == i) return false;  // empty component ("//")
    out.push_back(path.substr(i, end - i));
    i = end + 1;
  }
  if (!path.empty() && path.back() == '/' && path.size() > 1) return false;
  return true;
}

void FsClient::on_envelope(Envelope env) {
  if (env.kind != kFsRpcReplyKind) return;  // not for this layer
  const FsRpcReply& reply = *env.payload.get<FsRpcReply>();
  auto it = pending_.find(reply.req_id);
  if (it == pending_.end()) return;  // timed out earlier
  Pending p = std::move(it->second);
  pending_.erase(it);
  env_.cancel(p.timer);
  p.cb(true, reply);
}

void FsClient::send_rpc(NodeId to, FsRpc rpc,
                        std::function<void(bool, FsRpcReply)> cb) {
  rpc.req_id = next_req_++;
  const std::uint64_t req = rpc.req_id;
  Pending p;
  p.cb = std::move(cb);
  if (cfg_.rpc_timeout > Duration::zero()) {
    p.timer = env_.schedule_after(cfg_.rpc_timeout, [this, req] {
      auto it = pending_.find(req);
      if (it == pending_.end()) return;
      Pending dead = std::move(it->second);
      pending_.erase(it);
      dead.cb(false, FsRpcReply{});
    });
  }
  pending_.emplace(req, std::move(p));

  Envelope env;
  env.from = id_;
  env.to = to;
  env.kind = kFsRpcKind;
  env.size_bytes = 96 + rpc.name.size();
  env.payload.emplace<FsRpc>(std::move(rpc));
  cluster_.network().send(std::move(env));
}

void FsClient::resolve_components(std::vector<std::string> components,
                                  std::size_t index, ObjectId current,
                                  ResolveCb cb) {
  if (index == components.size()) {
    cb(FsStatus::kOk, current);
    return;
  }
  if (cfg_.dentry_cache_ttl > Duration::zero()) {
    auto it = dentry_cache_.find({current, components[index]});
    if (it != dentry_cache_.end()) {
      if (env_.now() - it->second.cached_at <= cfg_.dentry_cache_ttl) {
        ++cache_hits_;
        resolve_components(std::move(components), index + 1,
                           it->second.child, std::move(cb));
        return;
      }
      dentry_cache_.erase(it);  // expired
    }
    ++cache_misses_;
  }
  FsRpc rpc;
  rpc.op = FsRpcOp::kLookup;
  rpc.target = current;
  rpc.name = components[index];
  const NodeId home = planner_.partitioner().home_of(current);
  send_rpc(home, std::move(rpc),
           [this, components = std::move(components), index, current,
            cb = std::move(cb)](bool delivered, FsRpcReply reply) mutable {
             if (!delivered) {
               cb(FsStatus::kUnreachable, kNoObject);
               return;
             }
             if (!reply.found) {
               cb(FsStatus::kNotFound, kNoObject);
               return;
             }
             if (cfg_.dentry_cache_ttl > Duration::zero()) {
               dentry_cache_[{current, components[index]}] =
                   CachedDentry{reply.child, env_.now()};
             }
             resolve_components(std::move(components), index + 1, reply.child,
                                std::move(cb));
           });
}

void FsClient::resolve(const std::string& path, ResolveCb cb) {
  std::vector<std::string> components;
  if (!split_path(path, components)) {
    cb(FsStatus::kInvalidPath, kNoObject);
    return;
  }
  resolve_components(std::move(components), 0, root_, std::move(cb));
}

void FsClient::resolve_parent(
    const std::string& path,
    std::function<void(FsStatus, ObjectId, std::string)> cb) {
  std::vector<std::string> components;
  if (!split_path(path, components) || components.empty()) {
    cb(FsStatus::kInvalidPath, kNoObject, "");
    return;
  }
  std::string leaf = components.back();
  components.pop_back();
  resolve_components(
      std::move(components), 0, root_,
      [cb = std::move(cb), leaf = std::move(leaf)](FsStatus st,
                                                   ObjectId parent) {
        cb(st, parent, leaf);
      });
}

void FsClient::invalidate(const std::string& path) {
  std::vector<std::string> components;
  if (!split_path(path, components)) return;
  ObjectId current = root_;
  for (const std::string& name : components) {
    auto it = dentry_cache_.find({current, name});
    if (it == dentry_cache_.end()) break;
    const ObjectId next = it->second.child;
    dentry_cache_.erase(it);
    current = next;
  }
}

FsClient::StatusCb FsClient::with_staleness_retry(const std::string& path,
                                                  StatusCb cb) {
  if (cfg_.dentry_cache_ttl <= Duration::zero()) return cb;
  return [this, path, cb = std::move(cb)](FsStatus st) {
    // A failure may stem from stale cached dentries; drop them so the
    // caller's retry resolves fresh state.
    if (st == FsStatus::kAborted || st == FsStatus::kNotFound) {
      invalidate(path);
    }
    cb(st);
  };
}

void FsClient::submit_txn(Transaction txn, StatusCb cb) {
  cluster_.submit(std::move(txn),
                  [cb = std::move(cb)](TxnId, TxnOutcome outcome) {
                    cb(outcome == TxnOutcome::kCommitted ? FsStatus::kOk
                                                         : FsStatus::kAborted);
                  });
}

void FsClient::create_node(const std::string& path, bool is_dir,
                           StatusCb raw_cb) {
  StatusCb cb = with_staleness_retry(path, std::move(raw_cb));
  resolve_parent(path, [this, is_dir, cb = std::move(cb)](
                           FsStatus st, ObjectId parent, std::string leaf) {
    if (st != FsStatus::kOk) {
      cb(st);
      return;
    }
    // Existence pre-check (cheap fail with a crisp status; the commit
    // machinery still validates authoritatively under the lock).
    FsRpc probe;
    probe.op = FsRpcOp::kLookup;
    probe.target = parent;
    probe.name = leaf;
    send_rpc(planner_.partitioner().home_of(parent), std::move(probe),
             [this, is_dir, parent, leaf, cb = std::move(cb)](
                 bool delivered, FsRpcReply reply) {
               if (!delivered) {
                 cb(FsStatus::kUnreachable);
                 return;
               }
               if (reply.found) {
                 cb(FsStatus::kExists);
                 return;
               }
               submit_txn(planner_.plan_create(parent, leaf, ids_.next(),
                                               is_dir, ids_.peek()),
                          std::move(cb));
             });
  });
}

void FsClient::unlink(const std::string& path, StatusCb raw_cb) {
  StatusCb cb = with_staleness_retry(path, std::move(raw_cb));
  resolve_parent(path, [this, cb = std::move(cb)](FsStatus st, ObjectId parent,
                                                  std::string leaf) {
    if (st != FsStatus::kOk) {
      cb(st);
      return;
    }
    FsRpc probe;
    probe.op = FsRpcOp::kLookup;
    probe.target = parent;
    probe.name = leaf;
    send_rpc(planner_.partitioner().home_of(parent), std::move(probe),
             [this, parent, leaf, cb = std::move(cb)](bool delivered,
                                                      FsRpcReply reply) {
               if (!delivered) {
                 cb(FsStatus::kUnreachable);
                 return;
               }
               if (!reply.found) {
                 cb(FsStatus::kNotFound);
                 return;
               }
               submit_txn(planner_.plan_delete(parent, leaf, reply.child),
                          std::move(cb));
             });
  });
}

void FsClient::rename(const std::string& from, const std::string& to,
                      StatusCb raw_cb) {
  StatusCb cb = with_staleness_retry(
      from, with_staleness_retry(to, std::move(raw_cb)));
  resolve_parent(from, [this, to, cb = std::move(cb)](
                           FsStatus st, ObjectId src_dir, std::string src) {
    if (st != FsStatus::kOk) {
      cb(st);
      return;
    }
    FsRpc probe;
    probe.op = FsRpcOp::kLookup;
    probe.target = src_dir;
    probe.name = src;
    send_rpc(
        planner_.partitioner().home_of(src_dir), std::move(probe),
        [this, to, src_dir, src, cb = std::move(cb)](bool delivered,
                                                     FsRpcReply reply) {
          if (!delivered) {
            cb(FsStatus::kUnreachable);
            return;
          }
          if (!reply.found) {
            cb(FsStatus::kNotFound);
            return;
          }
          const ObjectId moved = reply.child;
          resolve_parent(to, [this, src_dir, src, moved, cb = std::move(cb)](
                                 FsStatus st2, ObjectId dst_dir,
                                 std::string dst) {
            if (st2 != FsStatus::kOk) {
              cb(st2);
              return;
            }
            FsRpc probe2;
            probe2.op = FsRpcOp::kLookup;
            probe2.target = dst_dir;
            probe2.name = dst;
            send_rpc(planner_.partitioner().home_of(dst_dir), std::move(probe2),
                     [this, src_dir, src, moved, dst_dir, dst,
                      cb = std::move(cb)](bool delivered2, FsRpcReply r2) {
                       if (!delivered2) {
                         cb(FsStatus::kUnreachable);
                         return;
                       }
                       std::optional<ObjectId> overwritten;
                       if (r2.found) overwritten = r2.child;
                       submit_txn(planner_.plan_rename(src_dir, src, dst_dir,
                                                       dst, moved, overwritten),
                                  std::move(cb));
                     });
          });
        });
  });
}

void FsClient::stat(const std::string& path, StatCb cb) {
  resolve(path, [this, cb = std::move(cb)](FsStatus st, ObjectId obj) {
    if (st != FsStatus::kOk) {
      cb(st, Inode{});
      return;
    }
    FsRpc rpc;
    rpc.op = FsRpcOp::kStat;
    rpc.target = obj;
    send_rpc(planner_.partitioner().home_of(obj), std::move(rpc),
             [cb = std::move(cb)](bool delivered, FsRpcReply reply) {
               if (!delivered) {
                 cb(FsStatus::kUnreachable, Inode{});
               } else if (!reply.found) {
                 cb(FsStatus::kNotFound, Inode{});
               } else {
                 cb(FsStatus::kOk, reply.inode);
               }
             });
  });
}

void FsClient::readdir(const std::string& path, ReaddirCb cb) {
  resolve(path, [this, cb = std::move(cb)](FsStatus st, ObjectId obj) {
    if (st != FsStatus::kOk) {
      cb(st, {});
      return;
    }
    FsRpc rpc;
    rpc.op = FsRpcOp::kReaddir;
    rpc.target = obj;
    send_rpc(planner_.partitioner().home_of(obj), std::move(rpc),
             [cb = std::move(cb)](bool delivered, FsRpcReply reply) {
               if (!delivered) {
                 cb(FsStatus::kUnreachable, {});
               } else if (!reply.found) {
                 cb(FsStatus::kNotADirectory, {});
               } else {
                 cb(FsStatus::kOk, std::move(reply.entries));
               }
             });
  });
}

}  // namespace opc
