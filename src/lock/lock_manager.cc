#include "lock/lock_manager.h"

#include <algorithm>
#include <utility>

namespace opc {
namespace {

const char* mode_name(LockMode m) {
  return m == LockMode::kShared ? "S" : "X";
}

}  // namespace

bool LockManager::txn_has_queued_waiter(const LockState& s,
                                        std::uint64_t txn) {
  return std::any_of(s.waiters.begin(), s.waiters.end(),
                     [txn](const Waiter& w) { return w.txn == txn; });
}

bool LockManager::grantable(const LockState& s, std::uint64_t txn,
                            LockMode mode, bool as_upgrade) const {
  if (as_upgrade) {
    // Upgrade is grantable when no *other* transaction holds the lock.
    return std::all_of(s.holders.begin(), s.holders.end(),
                       [txn](const Holder& h) { return h.txn == txn; });
  }
  return std::all_of(s.holders.begin(), s.holders.end(),
                     [&](const Holder& h) {
                       return h.txn == txn || lock_compatible(h.mode, mode);
                     });
}

bool LockManager::acquire(std::uint64_t txn, std::uint64_t resource,
                          LockMode mode, Granted on_granted, Duration timeout,
                          TimedOut on_timeout) {
  SIM_CHECK(on_granted != nullptr);
  LockState& s = locks_[resource];

  // Reentrancy and upgrades.  Holder entries are unique per transaction
  // (pump() merges grants into an existing entry), so the first match is
  // authoritative.
  for (Holder& h : s.holders) {
    if (h.txn != txn) continue;
    if (h.mode == LockMode::kExclusive || h.mode == mode) {
      stats_.add("lock.reentrant");
      on_granted();
      return true;
    }
    // Held S, requesting X.
    if (grantable(s, txn, mode, /*as_upgrade=*/true)) {
      h.mode = LockMode::kExclusive;
      stats_.add("lock.upgrades");
      trace_.record(env_.now(), TraceKind::kLockGrant, name_,
                    "upgrade r" + std::to_string(resource), txn);
      on_granted();
      return true;
    }
    // Queue at the front as an upgrade; it outranks new arrivals.
    Waiter w{txn, LockMode::kExclusive, /*upgrade=*/true,
             std::move(on_granted), std::move(on_timeout), TimerHandle{},
             env_.now()};
    if (timeout > Duration::zero()) {
      w.timer = env_.schedule_after(timeout, [this, txn, resource] {
        // Find and expire the queued request.
        auto it = locks_.find(resource);
        if (it == locks_.end()) return;
        auto& ws = it->second.waiters;
        auto wit = std::find_if(ws.begin(), ws.end(), [txn](const Waiter& x) {
          return x.txn == txn;
        });
        if (wit == ws.end()) return;
        TimedOut cb = std::move(wit->on_timeout);
        ws.erase(wit);
        if (!txn_has_queued_waiter(it->second, txn)) {
          waiting_by_txn_[txn].erase(resource);
        }
        stats_.add("lock.timeouts");
        if (cb) cb();
      });
    }
    s.waiters.push_front(std::move(w));
    waiting_by_txn_[txn].insert(resource);
    stats_.add("lock.waits");
    trace_.record(env_.now(), TraceKind::kLockWait, name_,
                  "wait-upgrade r" + std::to_string(resource), txn);
    return false;
  }

  // Fresh request: grant only if compatible AND nobody is queued (FIFO).
  if (s.waiters.empty() && grantable(s, txn, mode, /*as_upgrade=*/false)) {
    s.holders.push_back(Holder{txn, mode});
    held_by_txn_[txn].insert(resource);
    stats_.add("lock.grants.immediate");
    trace_.record(env_.now(), TraceKind::kLockGrant, name_,
                  std::string(mode_name(mode)) + " r" +
                      std::to_string(resource),
                  txn);
    on_granted();
    return true;
  }

  Waiter w{txn, mode, /*upgrade=*/false, std::move(on_granted),
           std::move(on_timeout), TimerHandle{}, env_.now()};
  if (timeout > Duration::zero()) {
    w.timer = env_.schedule_after(timeout, [this, txn, resource] {
      auto it = locks_.find(resource);
      if (it == locks_.end()) return;
      auto& ws = it->second.waiters;
      auto wit = std::find_if(ws.begin(), ws.end(), [txn](const Waiter& x) {
        return x.txn == txn;
      });
      if (wit == ws.end()) return;
      TimedOut cb = std::move(wit->on_timeout);
      ws.erase(wit);
      if (!txn_has_queued_waiter(it->second, txn)) {
        waiting_by_txn_[txn].erase(resource);
      }
      stats_.add("lock.timeouts");
      if (cb) cb();
      // The slot this waiter occupied may now unblock later waiters.
      pump(resource);
    });
  }
  s.waiters.push_back(std::move(w));
  waiting_by_txn_[txn].insert(resource);
  stats_.add("lock.waits");
  trace_.record(env_.now(), TraceKind::kLockWait, name_,
                std::string(mode_name(mode)) + " r" + std::to_string(resource),
                txn);
  return false;
}

void LockManager::pump(std::uint64_t resource) {
  while (true) {
    auto it = locks_.find(resource);
    if (it == locks_.end() || it->second.waiters.empty()) return;
    LockState& s = it->second;
    Waiter& front = s.waiters.front();
    if (!grantable(s, front.txn, front.mode, front.upgrade)) return;

    Waiter w = std::move(front);
    s.waiters.pop_front();
    env_.cancel(w.timer);
    if (!txn_has_queued_waiter(s, w.txn)) {
      waiting_by_txn_[w.txn].erase(resource);
    }
    if (w.upgrade) {
      auto hit = std::find_if(s.holders.begin(), s.holders.end(),
                              [&](const Holder& h) { return h.txn == w.txn; });
      SIM_CHECK_MSG(hit != s.holders.end(), "upgrade waiter lost its S hold");
      hit->mode = LockMode::kExclusive;
    } else if (auto hit = std::find_if(
                   s.holders.begin(), s.holders.end(),
                   [&](const Holder& h) { return h.txn == w.txn; });
               hit != s.holders.end()) {
      // The transaction already holds this resource (it queued the same
      // request twice): merge instead of duplicating the holder entry.
      if (w.mode == LockMode::kExclusive) hit->mode = LockMode::kExclusive;
    } else {
      s.holders.push_back(Holder{w.txn, w.mode});
      held_by_txn_[w.txn].insert(resource);
    }
    wait_hist_.record(env_.now() - w.enqueued);
    stats_.add("lock.grants.queued");
    trace_.record(env_.now(), TraceKind::kLockGrant, name_,
                  std::string(mode_name(w.mode)) + " r" +
                      std::to_string(resource) + " (queued)",
                  w.txn);
    // May recurse into acquire/release; state references are re-fetched at
    // the top of the loop.
    w.on_granted();
  }
}

void LockManager::release(std::uint64_t txn, std::uint64_t resource) {
  auto it = locks_.find(resource);
  if (it == locks_.end()) return;
  LockState& s = it->second;
  auto hit = std::find_if(s.holders.begin(), s.holders.end(),
                          [&](const Holder& h) { return h.txn == txn; });
  if (hit == s.holders.end()) return;
  s.holders.erase(hit);
  if (auto t = held_by_txn_.find(txn); t != held_by_txn_.end()) {
    t->second.erase(resource);
    if (t->second.empty()) held_by_txn_.erase(t);
  }
  stats_.add("lock.releases");
  trace_.record(env_.now(), TraceKind::kLockRelease, name_,
                "r" + std::to_string(resource), txn);
  if (s.holders.empty() && s.waiters.empty()) {
    locks_.erase(it);
    return;
  }
  pump(resource);
}

void LockManager::release_all(std::uint64_t txn) {
  // Cancel queued requests first so a release cannot grant a lock to a
  // request this same transaction is abandoning.
  if (auto wit = waiting_by_txn_.find(txn); wit != waiting_by_txn_.end()) {
    const std::unordered_set<std::uint64_t> waiting = std::move(wit->second);
    waiting_by_txn_.erase(wit);
    for (std::uint64_t resource : waiting) {
      auto it = locks_.find(resource);
      if (it == locks_.end()) continue;
      auto& ws = it->second.waiters;
      // Remove EVERY queued request of this transaction — a caller that
      // double-queued (acquired the same resource twice while blocked)
      // must not leave a zombie waiter behind.
      bool removed = false;
      for (auto x = ws.begin(); x != ws.end();) {
        if (x->txn == txn) {
          env_.cancel(x->timer);
          x = ws.erase(x);
          removed = true;
          stats_.add("lock.cancelled_waits");
        } else {
          ++x;
        }
      }
      if (removed) pump(resource);
    }
  }
  if (auto hit = held_by_txn_.find(txn); hit != held_by_txn_.end()) {
    const std::unordered_set<std::uint64_t> held = std::move(hit->second);
    held_by_txn_.erase(hit);
    for (std::uint64_t resource : held) {
      auto it = locks_.find(resource);
      if (it == locks_.end()) continue;
      LockState& s = it->second;
      std::erase_if(s.holders,
                    [txn](const Holder& h) { return h.txn == txn; });
      stats_.add("lock.releases");
      trace_.record(env_.now(), TraceKind::kLockRelease, name_,
                    "r" + std::to_string(resource), txn);
      if (s.holders.empty() && s.waiters.empty()) {
        locks_.erase(it);
      } else {
        pump(resource);
      }
    }
  }
}

void LockManager::reset() {
  for (auto& [res, s] : locks_) {
    (void)res;
    for (Waiter& w : s.waiters) env_.cancel(w.timer);
  }
  locks_.clear();
  held_by_txn_.clear();
  waiting_by_txn_.clear();
  stats_.add("lock.resets");
}

bool LockManager::holds(std::uint64_t txn, std::uint64_t resource,
                        LockMode mode) const {
  auto it = locks_.find(resource);
  if (it == locks_.end()) return false;
  for (const Holder& h : it->second.holders) {
    if (h.txn == txn) {
      return mode == LockMode::kShared || h.mode == LockMode::kExclusive;
    }
  }
  return false;
}

std::size_t LockManager::waiting_count(std::uint64_t resource) const {
  auto it = locks_.find(resource);
  return it == locks_.end() ? 0 : it->second.waiters.size();
}

std::size_t LockManager::held_resources(std::uint64_t txn) const {
  auto it = held_by_txn_.find(txn);
  return it == held_by_txn_.end() ? 0 : it->second.size();
}

std::vector<std::uint64_t> LockManager::find_deadlock_victims() const {
  // Wait-for edges: each waiter depends on every incompatible holder and on
  // every waiter queued ahead of it (FIFO queues make queue order part of
  // the dependency).
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> adj;
  for (const auto& [res, s] : locks_) {
    (void)res;
    for (std::size_t i = 0; i < s.waiters.size(); ++i) {
      const Waiter& w = s.waiters[i];
      auto& out = adj[w.txn];
      for (const Holder& h : s.holders) {
        if (h.txn != w.txn && !lock_compatible(h.mode, w.mode)) {
          out.push_back(h.txn);
        }
      }
      for (std::size_t j = 0; j < i; ++j) {
        if (s.waiters[j].txn != w.txn) out.push_back(s.waiters[j].txn);
      }
    }
  }

  std::vector<std::uint64_t> victims;
  std::unordered_map<std::uint64_t, int> color;  // 0 white 1 grey 2 black
  std::vector<std::uint64_t> stack;

  std::function<void(std::uint64_t)> dfs = [&](std::uint64_t u) {
    color[u] = 1;
    stack.push_back(u);
    if (auto it = adj.find(u); it != adj.end()) {
      for (std::uint64_t v : it->second) {
        if (color[v] == 1) {
          // Cycle: victim = youngest (largest id) on the cycle segment.
          std::uint64_t victim = v;
          for (auto r = stack.rbegin(); r != stack.rend(); ++r) {
            victim = std::max(victim, *r);
            if (*r == v) break;
          }
          if (std::find(victims.begin(), victims.end(), victim) ==
              victims.end()) {
            victims.push_back(victim);
          }
        } else if (color[v] == 0) {
          dfs(v);
        }
      }
    }
    color[u] = 2;
    stack.pop_back();
  };
  for (const auto& [txn, edges] : adj) {
    (void)edges;
    if (color[txn] == 0) dfs(txn);
  }
  std::sort(victims.begin(), victims.end());
  return victims;
}

}  // namespace opc
