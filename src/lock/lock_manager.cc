#include "lock/lock_manager.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <utility>

namespace opc {
namespace {

const char* mode_name(LockMode m) {
  return m == LockMode::kShared ? "S" : "X";
}

}  // namespace

LockManager::~LockManager() = default;

LockManager::LockState& LockManager::state_for(std::uint64_t resource) {
  auto [slot, inserted] = locks_.try_emplace(resource, nullptr);
  if (inserted) {
    LockState* s = state_pool_.acquire();
    s->clear_for_reuse();
    *slot = s;
  }
  return **slot;
}

void LockManager::retire_state(std::uint64_t resource, LockState* s) {
  locks_.erase(resource);
  state_pool_.release(s);
}

bool LockManager::txn_has_queued_waiter(const LockState& s,
                                        std::uint64_t txn) {
  return std::any_of(s.waiters.begin(), s.waiters.end(),
                     [txn](const Waiter& w) { return w.txn == txn; });
}

bool LockManager::grantable(const LockState& s, std::uint64_t txn,
                            LockMode mode, bool as_upgrade) const {
  if (as_upgrade) {
    // Upgrade is grantable when no *other* transaction holds the lock.
    return std::all_of(s.holders.begin(), s.holders.end(),
                       [txn](const Holder& h) { return h.txn == txn; });
  }
  return std::all_of(s.holders.begin(), s.holders.end(),
                     [&](const Holder& h) {
                       return h.txn == txn || lock_compatible(h.mode, mode);
                     });
}

bool LockManager::acquire(std::uint64_t txn, std::uint64_t resource,
                          LockMode mode, Granted on_granted, Duration timeout,
                          TimedOut on_timeout) {
  SIM_CHECK(on_granted != nullptr);
  LockState& s = state_for(resource);

  // Reentrancy and upgrades.  Holder entries are unique per transaction
  // (pump() merges grants into an existing entry), so the first match is
  // authoritative.
  for (Holder& h : s.holders) {
    if (h.txn != txn) continue;
    if (h.mode == LockMode::kExclusive || h.mode == mode) {
      c_reentrant_.add();
      on_granted();
      return true;
    }
    // Held S, requesting X.
    if (grantable(s, txn, mode, /*as_upgrade=*/true)) {
      h.mode = LockMode::kExclusive;
      c_upgrades_.add();
      if (trace_.active()) {
        trace_.record(env_.now(), TraceKind::kLockGrant, name_,
                      "upgrade r" + std::to_string(resource), txn);
      }
      on_granted();
      return true;
    }
    // Queue at the front as an upgrade; it outranks new arrivals.
    Waiter w{txn, LockMode::kExclusive, /*upgrade=*/true,
             std::move(on_granted), std::move(on_timeout), TimerHandle{},
             env_.now()};
    if (timeout > Duration::zero()) {
      w.timer = env_.schedule_after(timeout, [this, txn, resource] {
        // Find and expire the queued request.
        LockState* st = state_of(resource);
        if (st == nullptr) return;
        Waiter* wit = st->waiters.begin();
        for (; wit != st->waiters.end(); ++wit) {
          if (wit->txn == txn) break;
        }
        if (wit == st->waiters.end()) return;
        TimedOut cb = std::move(wit->on_timeout);
        st->waiters.erase(wit);
        if (!txn_has_queued_waiter(*st, txn)) {
          if (auto* wset = waiting_by_txn_.find(txn)) {
            wset->erase_value(resource);
            if (wset->empty()) waiting_by_txn_.erase(txn);
          }
        }
        c_timeouts_.add();
        if (cb) cb();
      });
    }
    s.waiters.push_front(std::move(w));
    waiting_by_txn_[txn].insert_unique(resource);
    c_waits_.add();
    if (trace_.active()) {
      trace_.record(env_.now(), TraceKind::kLockWait, name_,
                    "wait-upgrade r" + std::to_string(resource), txn);
    }
    return false;
  }

  // Fresh request: grant only if compatible AND nobody is queued (FIFO).
  if (s.waiters.empty() && grantable(s, txn, mode, /*as_upgrade=*/false)) {
    s.holders.push_back(Holder{txn, mode});
    held_by_txn_[txn].insert_unique(resource);
    c_grants_immediate_.add();
    if (trace_.active()) {
      trace_.record(env_.now(), TraceKind::kLockGrant, name_,
                    std::string(mode_name(mode)) + " r" +
                        std::to_string(resource),
                    txn);
    }
    on_granted();
    return true;
  }

  Waiter w{txn, mode, /*upgrade=*/false, std::move(on_granted),
           std::move(on_timeout), TimerHandle{}, env_.now()};
  if (timeout > Duration::zero()) {
    w.timer = env_.schedule_after(timeout, [this, txn, resource] {
      LockState* st = state_of(resource);
      if (st == nullptr) return;
      Waiter* wit = st->waiters.begin();
      for (; wit != st->waiters.end(); ++wit) {
        if (wit->txn == txn) break;
      }
      if (wit == st->waiters.end()) return;
      TimedOut cb = std::move(wit->on_timeout);
      st->waiters.erase(wit);
      if (!txn_has_queued_waiter(*st, txn)) {
        if (auto* wset = waiting_by_txn_.find(txn)) {
          wset->erase_value(resource);
          if (wset->empty()) waiting_by_txn_.erase(txn);
        }
      }
      c_timeouts_.add();
      if (cb) cb();
      // The slot this waiter occupied may now unblock later waiters.
      pump(resource);
    });
  }
  s.waiters.push_back(std::move(w));
  waiting_by_txn_[txn].insert_unique(resource);
  c_waits_.add();
  if (trace_.active()) {
    trace_.record(env_.now(), TraceKind::kLockWait, name_,
                  std::string(mode_name(mode)) + " r" +
                      std::to_string(resource),
                  txn);
  }
  return false;
}

void LockManager::pump(std::uint64_t resource) {
  while (true) {
    // Re-fetched every iteration: on_granted() may recurse into
    // acquire/release and rehash locks_ (slot pointers do not survive).
    LockState* sp = state_of(resource);
    if (sp == nullptr || sp->waiters.empty()) return;
    LockState& s = *sp;
    Waiter& front = s.waiters.front();
    if (!grantable(s, front.txn, front.mode, front.upgrade)) return;

    Waiter w = std::move(front);
    s.waiters.pop_front();
    env_.cancel(w.timer);
    if (!txn_has_queued_waiter(s, w.txn)) {
      if (auto* wset = waiting_by_txn_.find(w.txn)) {
        wset->erase_value(resource);
        if (wset->empty()) waiting_by_txn_.erase(w.txn);
      }
    }
    if (w.upgrade) {
      auto hit = std::find_if(s.holders.begin(), s.holders.end(),
                              [&](const Holder& h) { return h.txn == w.txn; });
      SIM_CHECK_MSG(hit != s.holders.end(), "upgrade waiter lost its S hold");
      hit->mode = LockMode::kExclusive;
    } else if (auto hit = std::find_if(
                   s.holders.begin(), s.holders.end(),
                   [&](const Holder& h) { return h.txn == w.txn; });
               hit != s.holders.end()) {
      // The transaction already holds this resource (it queued the same
      // request twice): merge instead of duplicating the holder entry.
      if (w.mode == LockMode::kExclusive) hit->mode = LockMode::kExclusive;
    } else {
      s.holders.push_back(Holder{w.txn, w.mode});
      held_by_txn_[w.txn].insert_unique(resource);
    }
    wait_hist_.record(env_.now() - w.enqueued);
    c_grants_queued_.add();
    if (trace_.active()) {
      trace_.record(env_.now(), TraceKind::kLockGrant, name_,
                    std::string(mode_name(w.mode)) + " r" +
                        std::to_string(resource) + " (queued)",
                    w.txn);
    }
    // May recurse into acquire/release; state references are re-fetched at
    // the top of the loop.
    w.on_granted();
  }
}

void LockManager::release(std::uint64_t txn, std::uint64_t resource) {
  LockState* sp = state_of(resource);
  if (sp == nullptr) return;
  LockState& s = *sp;
  auto hit = std::find_if(s.holders.begin(), s.holders.end(),
                          [&](const Holder& h) { return h.txn == txn; });
  if (hit == s.holders.end()) return;
  s.holders.erase(hit);
  if (auto* hset = held_by_txn_.find(txn)) {
    hset->erase_value(resource);
    if (hset->empty()) held_by_txn_.erase(txn);
  }
  c_releases_.add();
  if (trace_.active()) {
    trace_.record(env_.now(), TraceKind::kLockRelease, name_,
                  "r" + std::to_string(resource), txn);
  }
  if (s.holders.empty() && s.waiters.empty()) {
    retire_state(resource, &s);
    return;
  }
  pump(resource);
}

void LockManager::release_all(std::uint64_t txn) {
  // Cancel queued requests first so a release cannot grant a lock to a
  // request this same transaction is abandoning.
  if (auto* wset = waiting_by_txn_.find(txn)) {
    const SmallVec<std::uint64_t, 4> waiting = std::move(*wset);
    waiting_by_txn_.erase(txn);
    // Newest-first, matching the iteration order of the small
    // unordered_set this index replaced (trace-hash compatible).
    for (std::size_t i = waiting.size(); i-- > 0;) {
      const std::uint64_t resource = waiting[i];
      LockState* sp = state_of(resource);
      if (sp == nullptr) continue;
      WaitQueue& ws = sp->waiters;
      // Remove EVERY queued request of this transaction — a caller that
      // double-queued (acquired the same resource twice while blocked)
      // must not leave a zombie waiter behind.
      bool removed = false;
      for (Waiter* x = ws.begin(); x != ws.end();) {
        if (x->txn == txn) {
          env_.cancel(x->timer);
          x = ws.erase(x);
          removed = true;
          c_cancelled_waits_.add();
        } else {
          ++x;
        }
      }
      if (removed) pump(resource);
    }
  }
  if (auto* hset = held_by_txn_.find(txn)) {
    const SmallVec<std::uint64_t, 4> held = std::move(*hset);
    held_by_txn_.erase(txn);
    for (std::size_t i = held.size(); i-- > 0;) {
      const std::uint64_t resource = held[i];
      LockState* sp = state_of(resource);
      if (sp == nullptr) continue;
      LockState& s = *sp;
      std::erase_if(s.holders,
                    [txn](const Holder& h) { return h.txn == txn; });
      c_releases_.add();
      if (trace_.active()) {
        trace_.record(env_.now(), TraceKind::kLockRelease, name_,
                      "r" + std::to_string(resource), txn);
      }
      if (s.holders.empty() && s.waiters.empty()) {
        retire_state(resource, &s);
      } else {
        pump(resource);
      }
    }
  }
}

void LockManager::reset() {
  locks_.for_each([this](const std::uint64_t&, LockState*& s) {
    for (Waiter& w : s->waiters) env_.cancel(w.timer);
    state_pool_.release(s);
  });
  locks_.clear();
  held_by_txn_.clear();
  waiting_by_txn_.clear();
  stats_.add("lock.resets");
}

bool LockManager::holds(std::uint64_t txn, std::uint64_t resource,
                        LockMode mode) const {
  const LockState* s = state_of(resource);
  if (s == nullptr) return false;
  for (const Holder& h : s->holders) {
    if (h.txn == txn) {
      return mode == LockMode::kShared || h.mode == LockMode::kExclusive;
    }
  }
  return false;
}

std::size_t LockManager::waiting_count(std::uint64_t resource) const {
  const LockState* s = state_of(resource);
  return s == nullptr ? 0 : s->waiters.size();
}

std::size_t LockManager::held_resources(std::uint64_t txn) const {
  const auto* hset = held_by_txn_.find(txn);
  return hset == nullptr ? 0 : hset->size();
}

std::vector<std::uint64_t> LockManager::find_deadlock_victims() const {
  // Wait-for edges: each waiter depends on every incompatible holder and on
  // every waiter queued ahead of it (FIFO queues make queue order part of
  // the dependency).  Cold diagnostic path — std containers are fine here.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> adj;
  locks_.for_each([&adj](const std::uint64_t&, LockState* const& sp) {
    const LockState& s = *sp;
    for (std::size_t i = 0; i < s.waiters.size(); ++i) {
      const Waiter& w = s.waiters[i];
      auto& out = adj[w.txn];
      for (const Holder& h : s.holders) {
        if (h.txn != w.txn && !lock_compatible(h.mode, w.mode)) {
          out.push_back(h.txn);
        }
      }
      for (std::size_t j = 0; j < i; ++j) {
        if (s.waiters[j].txn != w.txn) out.push_back(s.waiters[j].txn);
      }
    }
  });

  std::vector<std::uint64_t> victims;
  std::unordered_map<std::uint64_t, int> color;  // 0 white 1 grey 2 black
  std::vector<std::uint64_t> stack;

  std::function<void(std::uint64_t)> dfs = [&](std::uint64_t u) {
    color[u] = 1;
    stack.push_back(u);
    if (auto it = adj.find(u); it != adj.end()) {
      for (std::uint64_t v : it->second) {
        if (color[v] == 1) {
          // Cycle: victim = youngest (largest id) on the cycle segment.
          std::uint64_t victim = v;
          for (auto r = stack.rbegin(); r != stack.rend(); ++r) {
            victim = std::max(victim, *r);
            if (*r == v) break;
          }
          if (std::find(victims.begin(), victims.end(), victim) ==
              victims.end()) {
            victims.push_back(victim);
          }
        } else if (color[v] == 0) {
          dfs(v);
        }
      }
    }
    color[u] = 2;
    stack.pop_back();
  };
  for (const auto& [txn, edges] : adj) {
    (void)edges;
    if (color[txn] == 0) dfs(txn);
  }
  std::sort(victims.begin(), victims.end());
  return victims;
}

}  // namespace opc
