// Two-phase-locking lock manager (one per MDS, as in ACID Sim Tools).
//
// The commit protocols provide isolation through strict 2PL (paper §II-B):
// every metadata object touched by a transaction is locked before the first
// update and released only when the protocol says the object's final state
// is decided (after COMMITTED for 2PC-family protocols; after the worker's
// UPDATED for the 1PC coordinator — the paper's headline latency win).
//
// Deadlock handling follows the paper: a waiter that is not granted within
// a timeout is aborted by its coordinator.  A proactive wait-for-graph
// cycle detector is also provided (extension; ablation material).
//
// Granting is strict FIFO — no barging — except that a lock upgrade
// (S -> X by the sole holder) jumps the queue, the standard rule that keeps
// upgrades deadlock-free against new arrivals.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "env/env.h"
#include "sim/trace.h"
#include "stats/counters.h"
#include "stats/histogram.h"

namespace opc {

enum class LockMode : std::uint8_t { kShared, kExclusive };

[[nodiscard]] constexpr bool lock_compatible(LockMode a, LockMode b) {
  return a == LockMode::kShared && b == LockMode::kShared;
}

/// Resources are identified by opaque 64-bit keys (the MDS layer maps
/// metadata object ids onto them); requesters by transaction id.
class LockManager {
 public:
  using Granted = std::function<void()>;
  using TimedOut = std::function<void()>;

  LockManager(Env& env, std::string name, StatsRegistry& stats,
              TraceRecorder& trace)
      : env_(env), name_(std::move(name)), stats_(stats), trace_(trace) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests `mode` on `resource` for `txn`.
  ///  * Granted immediately (compatible, nobody queued ahead): `on_granted`
  ///    runs synchronously and acquire() returns true.
  ///  * Otherwise the request queues; `on_granted` runs when the lock is
  ///    handed over.  If `timeout` > 0 and expires first, the request is
  ///    removed and `on_timeout` runs instead (never both).
  /// Reentrant: a txn holding >= `mode` is granted immediately; a sole
  /// holder of S requesting X is upgraded in place; a non-sole S holder
  /// requesting X queues at the front as an upgrade.
  bool acquire(std::uint64_t txn, std::uint64_t resource, LockMode mode,
               Granted on_granted, Duration timeout = Duration::zero(),
               TimedOut on_timeout = nullptr);

  /// Releases one resource held by `txn`; grants any now-unblocked waiters.
  void release(std::uint64_t txn, std::uint64_t resource);

  /// Releases everything `txn` holds and cancels its queued requests.
  void release_all(std::uint64_t txn);

  /// Drops the entire lock table (node crash — lock state is volatile).
  /// Queued waiters' timers are cancelled; no callbacks fire.
  void reset();

  /// True if `txn` currently holds `resource` in at least `mode`.
  [[nodiscard]] bool holds(std::uint64_t txn, std::uint64_t resource,
                           LockMode mode) const;

  [[nodiscard]] std::size_t waiting_count(std::uint64_t resource) const;
  [[nodiscard]] std::size_t held_resources(std::uint64_t txn) const;

  /// Wait-for-graph cycle scan.  Returns one victim per cycle found
  /// (the youngest transaction = largest id), without cancelling anything —
  /// the caller decides how to abort.  Extension beyond the paper's
  /// timeout-only scheme.
  [[nodiscard]] std::vector<std::uint64_t> find_deadlock_victims() const;

  /// Wait-time distribution across all granted-after-wait requests.
  [[nodiscard]] const Histogram& wait_times() const { return wait_hist_; }

 private:
  struct Holder {
    std::uint64_t txn;
    LockMode mode;
  };
  struct Waiter {
    std::uint64_t txn;
    LockMode mode;
    bool upgrade;
    Granted on_granted;
    TimedOut on_timeout;
    TimerHandle timer;
    SimTime enqueued;
  };
  struct LockState {
    std::vector<Holder> holders;
    std::deque<Waiter> waiters;
  };

  void pump(std::uint64_t resource);
  [[nodiscard]] bool grantable(const LockState& s, std::uint64_t txn,
                               LockMode mode, bool as_upgrade) const;
  /// A transaction may queue multiple waiters on one resource; the
  /// waiting_by_txn_ entry must survive until the LAST of them is gone.
  [[nodiscard]] static bool txn_has_queued_waiter(const LockState& s,
                                                  std::uint64_t txn);

  Env& env_;
  std::string name_;
  StatsRegistry& stats_;
  TraceRecorder& trace_;
  Histogram wait_hist_;
  std::unordered_map<std::uint64_t, LockState> locks_;
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>
      held_by_txn_;
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>
      waiting_by_txn_;
};

}  // namespace opc
