// Two-phase-locking lock manager (one per MDS, as in ACID Sim Tools).
//
// The commit protocols provide isolation through strict 2PL (paper §II-B):
// every metadata object touched by a transaction is locked before the first
// update and released only when the protocol says the object's final state
// is decided (after COMMITTED for 2PC-family protocols; after the worker's
// UPDATED for the 1PC coordinator — the paper's headline latency win).
//
// Deadlock handling follows the paper: a waiter that is not granted within
// a timeout is aborted by its coordinator.  A proactive wait-for-graph
// cycle detector is also provided (extension; ablation material).
//
// Granting is strict FIFO — no barging — except that a lock upgrade
// (S -> X by the sole holder) jumps the queue, the standard rule that keeps
// upgrades deadlock-free against new arrivals.
//
// Hot-path memory: lock states are pooled (the per-resource entry is reused
// across the storm with its holder/waiter capacity intact), the indexes are
// open-addressing FlatMaps, the per-txn resource sets ride inline in
// SmallVecs, and grant/timeout continuations are InlineCallbacks — so the
// steady-state acquire/wait/grant/release cycle never touches the heap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/arena.h"
#include "core/flat.h"
#include "env/env.h"
#include "sim/inline_callback.h"
#include "sim/trace.h"
#include "stats/counters.h"
#include "stats/histogram.h"

namespace opc {

enum class LockMode : std::uint8_t { kShared, kExclusive };

[[nodiscard]] constexpr bool lock_compatible(LockMode a, LockMode b) {
  return a == LockMode::kShared && b == LockMode::kShared;
}

/// Resources are identified by opaque 64-bit keys (the MDS layer maps
/// metadata object ids onto them); requesters by transaction id.
class LockManager {
 public:
  using Granted = InlineCallback<void(), kInlineCallbackBytes>;
  using TimedOut = InlineCallback<void(), kInlineCallbackBytes>;

  LockManager(Env& env, std::string name, StatsRegistry& stats,
              TraceRecorder& trace)
      : env_(env), name_(std::move(name)), stats_(stats), trace_(trace),
        c_waits_(stats, "lock.waits"),
        c_grants_immediate_(stats, "lock.grants.immediate"),
        c_grants_queued_(stats, "lock.grants.queued"),
        c_releases_(stats, "lock.releases"),
        c_reentrant_(stats, "lock.reentrant"),
        c_upgrades_(stats, "lock.upgrades"),
        c_timeouts_(stats, "lock.timeouts"),
        c_cancelled_waits_(stats, "lock.cancelled_waits") {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;
  ~LockManager();

  /// Requests `mode` on `resource` for `txn`.
  ///  * Granted immediately (compatible, nobody queued ahead): `on_granted`
  ///    runs synchronously and acquire() returns true.
  ///  * Otherwise the request queues; `on_granted` runs when the lock is
  ///    handed over.  If `timeout` > 0 and expires first, the request is
  ///    removed and `on_timeout` runs instead (never both).
  /// Reentrant: a txn holding >= `mode` is granted immediately; a sole
  /// holder of S requesting X is upgraded in place; a non-sole S holder
  /// requesting X queues at the front as an upgrade.
  bool acquire(std::uint64_t txn, std::uint64_t resource, LockMode mode,
               Granted on_granted, Duration timeout = Duration::zero(),
               TimedOut on_timeout = nullptr);

  /// Releases one resource held by `txn`; grants any now-unblocked waiters.
  void release(std::uint64_t txn, std::uint64_t resource);

  /// Releases everything `txn` holds and cancels its queued requests.
  void release_all(std::uint64_t txn);

  /// Drops the entire lock table (node crash — lock state is volatile).
  /// Queued waiters' timers are cancelled; no callbacks fire.
  void reset();

  /// True if `txn` currently holds `resource` in at least `mode`.
  [[nodiscard]] bool holds(std::uint64_t txn, std::uint64_t resource,
                           LockMode mode) const;

  [[nodiscard]] std::size_t waiting_count(std::uint64_t resource) const;
  [[nodiscard]] std::size_t held_resources(std::uint64_t txn) const;

  /// Wait-for-graph cycle scan.  Returns one victim per cycle found
  /// (the youngest transaction = largest id), without cancelling anything —
  /// the caller decides how to abort.  Extension beyond the paper's
  /// timeout-only scheme.
  [[nodiscard]] std::vector<std::uint64_t> find_deadlock_victims() const;

  /// Wait-time distribution across all granted-after-wait requests.
  [[nodiscard]] const Histogram& wait_times() const { return wait_hist_; }

 private:
  struct Holder {
    std::uint64_t txn;
    LockMode mode;
  };
  struct Waiter {
    std::uint64_t txn;
    LockMode mode;
    bool upgrade;
    Granted on_granted;
    TimedOut on_timeout;
    TimerHandle timer;
    SimTime enqueued;
  };

  /// FIFO queue over a vector with a consumed-prefix index: pop_front is
  /// O(1), the buffer (and each parked Waiter's callback storage) is reused
  /// once the queue drains, and upgrade push_front reoccupies the consumed
  /// prefix when one exists.
  class WaitQueue {
   public:
    [[nodiscard]] bool empty() const { return head_ == buf_.size(); }
    [[nodiscard]] std::size_t size() const { return buf_.size() - head_; }
    [[nodiscard]] Waiter& front() { return buf_[head_]; }
    [[nodiscard]] Waiter& operator[](std::size_t i) { return buf_[head_ + i]; }
    [[nodiscard]] const Waiter& operator[](std::size_t i) const {
      return buf_[head_ + i];
    }
    [[nodiscard]] Waiter* begin() { return buf_.data() + head_; }
    [[nodiscard]] Waiter* end() { return buf_.data() + buf_.size(); }
    [[nodiscard]] const Waiter* begin() const { return buf_.data() + head_; }
    [[nodiscard]] const Waiter* end() const {
      return buf_.data() + buf_.size();
    }
    void push_back(Waiter&& w) { buf_.push_back(std::move(w)); }
    void push_front(Waiter&& w) {
      if (head_ > 0) {
        buf_[--head_] = std::move(w);
      } else {
        buf_.insert(buf_.begin(), std::move(w));
      }
    }
    void pop_front() {
      ++head_;
      maybe_rewind();
    }
    /// Removes *it; returns the element that took its position (== end()
    /// when it was the last).
    Waiter* erase(Waiter* it) {
      const std::size_t i = static_cast<std::size_t>(it - begin());
      buf_.erase(buf_.begin() + static_cast<std::ptrdiff_t>(head_ + i));
      maybe_rewind();
      return begin() + i;
    }
    void clear() {
      buf_.clear();
      head_ = 0;
    }

   private:
    void maybe_rewind() {
      if (head_ == buf_.size()) {
        buf_.clear();
        head_ = 0;
      }
    }
    std::vector<Waiter> buf_;
    std::size_t head_ = 0;
  };

  struct LockState {
    std::vector<Holder> holders;
    WaitQueue waiters;
    void clear_for_reuse() {
      holders.clear();
      waiters.clear();
    }
  };

  [[nodiscard]] LockState* state_of(std::uint64_t resource) {
    LockState* const* p = locks_.find(resource);
    return p == nullptr ? nullptr : *p;
  }
  [[nodiscard]] const LockState* state_of(std::uint64_t resource) const {
    return const_cast<LockManager*>(this)->state_of(resource);
  }
  LockState& state_for(std::uint64_t resource);
  void retire_state(std::uint64_t resource, LockState* s);

  void pump(std::uint64_t resource);
  [[nodiscard]] bool grantable(const LockState& s, std::uint64_t txn,
                               LockMode mode, bool as_upgrade) const;
  /// A transaction may queue multiple waiters on one resource; the
  /// waiting_by_txn_ entry must survive until the LAST of them is gone.
  [[nodiscard]] static bool txn_has_queued_waiter(const LockState& s,
                                                  std::uint64_t txn);

  Env& env_;
  std::string name_;
  StatsRegistry& stats_;
  TraceRecorder& trace_;
  Histogram wait_hist_;
  FlatMap<std::uint64_t, LockState*> locks_;
  Pool<LockState> state_pool_;
  // Per-txn resource indexes.  Values are insertion-ordered; release_all
  // walks them newest-first, which reproduces the iteration order of the
  // small unordered_sets they replaced (trace-hash compatible).
  FlatMap<std::uint64_t, SmallVec<std::uint64_t, 4>> held_by_txn_;
  FlatMap<std::uint64_t, SmallVec<std::uint64_t, 4>> waiting_by_txn_;

  Counter c_waits_;
  Counter c_grants_immediate_;
  Counter c_grants_queued_;
  Counter c_releases_;
  Counter c_reentrant_;
  Counter c_upgrades_;
  Counter c_timeouts_;
  Counter c_cancelled_waits_;
};

}  // namespace opc
