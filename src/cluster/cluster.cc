#include "cluster/cluster.h"

namespace opc {

Cluster::Cluster(Simulator& sim, ClusterConfig cfg, StatsRegistry& stats,
                 TraceRecorder& trace)
    : sim_(sim), env_(sim, cfg.seed), cfg_(cfg), stats_(stats),
      trace_(trace) {
  net_ = std::make_unique<Network>(env_, cfg_.net, stats, trace, cfg_.seed);
  storage_ = std::make_unique<SharedStorage>(env_, stats, trace);
  fencing_ = std::make_unique<StonithController>(
      env_, *storage_, stats, trace, cfg_.fencing,
      [this](NodeId id) { crash_node(id); },
      [this](NodeId id) { reboot_node(id); });

  for (std::uint32_t i = 0; i < cfg_.n_nodes; ++i) {
    const NodeId id(i);
    LogPartition& part = storage_->add_partition(id, cfg_.disk);
    nodes_.push_back(std::make_unique<MdsNode>(
        env_, id, cfg_.protocol, cfg_.acp, cfg_.wal, cfg_.heartbeat, *net_,
        *storage_, part, stats, trace, fencing_.get(),
        cfg_.record_history ? &history_ : nullptr, cfg_.phase_log));
  }
  for (std::uint32_t i = 0; i < cfg_.n_nodes; ++i) {
    std::vector<NodeId> peers;
    for (std::uint32_t j = 0; j < cfg_.n_nodes; ++j) {
      if (j != i) peers.emplace_back(j);
    }
    nodes_[i]->set_peers(std::move(peers));
    nodes_[i]->start();
  }
}

void Cluster::bootstrap_directory(ObjectId dir, NodeId home) {
  Inode ino;
  ino.id = dir;
  ino.is_dir = true;
  ino.nlink = 1;
  node(home).store().bootstrap_inode(ino);
}

void Cluster::crash_node(NodeId id) {
  MdsNode& n = node(id);
  if (!n.alive()) return;
  trace_.record(sim_.now(), TraceKind::kCrash, id.str(), "node power off");
  n.crash();
}

void Cluster::reboot_node(NodeId id, std::function<void()> on_recovered) {
  MdsNode& n = node(id);
  if (n.alive()) return;
  if (fencing_->held(id)) return;  // STONITH holds the node down
  trace_.record(sim_.now(), TraceKind::kReboot, id.str(), "node power on");
  n.reboot(std::move(on_recovered));
}

void Cluster::schedule_crash(NodeId id, Duration after,
                             Duration reboot_after) {
  sim_.schedule_after(after, [this, id, reboot_after] {
    crash_node(id);
    if (reboot_after > Duration::zero()) {
      sim_.schedule_after(reboot_after, [this, id] { reboot_node(id); });
    }
  });
}

void Cluster::schedule_reboot(NodeId id, Duration after) {
  sim_.schedule_after(after, [this, id] { reboot_node(id); });
}

void Cluster::schedule_partition(NodeId a, NodeId b, Duration from,
                                 Duration until, bool asymmetric) {
  sim_.schedule_after(from, [this, a, b, asymmetric] {
    trace_.record(sim_.now(), TraceKind::kInfo, a.str(),
                  std::string(asymmetric ? "partition -> " : "partition <-> ") +
                      b.str());
    if (asymmetric) {
      net_->sever(a, b);
    } else {
      net_->sever_pair(a, b);
    }
  });
  if (until > from) {
    sim_.schedule_after(until, [this, a, b] {
      trace_.record(sim_.now(), TraceKind::kInfo, a.str(),
                    "partition healed <-> " + b.str());
      net_->heal_pair(a, b);
    });
  }
}

void Cluster::schedule_disk_degrade(NodeId id, Duration from, Duration until,
                                    double factor) {
  sim_.schedule_after(from, [this, id, factor] {
    trace_.record(sim_.now(), TraceKind::kInfo, id.str(),
                  "log device degraded x" + std::to_string(factor));
    storage_->partition(id).device().set_degrade_factor(factor);
  });
  if (until > from) {
    sim_.schedule_after(until, [this, id] {
      trace_.record(sim_.now(), TraceKind::kInfo, id.str(),
                    "log device restored");
      storage_->partition(id).device().set_degrade_factor(1.0);
    });
  }
}

void Cluster::schedule_heartbeat_mute(NodeId id, Duration from,
                                      Duration until) {
  sim_.schedule_after(from, [this, id] {
    trace_.record(sim_.now(), TraceKind::kInfo, id.str(),
                  "heartbeats muted");
    node(id).set_heartbeat_muted(true);
  });
  if (until > from) {
    sim_.schedule_after(until, [this, id] {
      trace_.record(sim_.now(), TraceKind::kInfo, id.str(),
                    "heartbeats resumed");
      node(id).set_heartbeat_muted(false);
    });
  }
}

std::vector<const MetaStore*> Cluster::stores() const {
  std::vector<const MetaStore*> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(&n->store());
  return out;
}

std::vector<InvariantViolation> Cluster::check_invariants(
    const std::vector<ObjectId>& roots) const {
  return opc::check_invariants(stores(), roots);
}

}  // namespace opc
