// Cluster wiring: N metadata servers over one network and one shared
// storage device, with failure-injection controls.
#pragma once

#include <memory>
#include <vector>

#include "acp/config.h"
#include "acp/protocol.h"
#include "cluster/fencing.h"
#include "env/sim_env.h"
#include "net/network.h"
#include "cluster/node.h"
#include "mds/invariants.h"
#include "txn/serializability.h"

namespace opc {

struct ClusterConfig {
  std::uint32_t n_nodes = 4;
  ProtocolKind protocol = ProtocolKind::kOnePC;
  NetworkConfig net;       // paper: 100 µs latency
  DiskConfig disk;         // paper: 400 KB/s log devices
  WalConfig wal;
  AcpConfig acp;
  HeartbeatConfig heartbeat;
  FencingConfig fencing;
  bool record_history = false;  // feed the serializability checker
  std::uint64_t seed = 1;
  // Observability opt-in: when set, every engine logs protocol phase
  // boundaries here for post-run span assembly (docs/OBSERVABILITY.md §3).
  // Null (the default) keeps the hot path at a single pointer compare and
  // leaves trace hashes and bench baselines untouched.
  obs::PhaseLog* phase_log = nullptr;
};

class Cluster {
 public:
  /// The cluster stays constructible from a bare Simulator — it owns the
  /// SimEnv adapter internally, so the dozens of simulation tests and
  /// benches keep their wiring while every component below runs against
  /// Env.  (The real-time backend wires MdsNode directly; see src/rt.)
  Cluster(Simulator& sim, ClusterConfig cfg, StatsRegistry& stats,
          TraceRecorder& trace);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] MdsNode& node(NodeId id) {
    return *nodes_.at(id.value());
  }
  [[nodiscard]] AcpEngine& engine(NodeId id) { return node(id).engine(); }
  [[nodiscard]] MetaStore& store(NodeId id) { return node(id).store(); }
  [[nodiscard]] SharedStorage& storage() { return *storage_; }
  [[nodiscard]] Network& network() { return *net_; }
  [[nodiscard]] Env& env() { return env_; }
  [[nodiscard]] StonithController& fencing() { return *fencing_; }
  [[nodiscard]] HistoryRecorder* history() {
    return cfg_.record_history ? &history_ : nullptr;
  }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }

  /// Submits a transaction to its coordinator's engine.
  TxnId submit(Transaction txn, AcpEngine::ClientCallback cb) {
    SIM_CHECK(!txn.participants.empty());
    return engine(txn.coordinator()).submit(std::move(txn), std::move(cb));
  }

  /// Seeds a directory inode on its home MDS (root directories etc.).
  void bootstrap_directory(ObjectId dir, NodeId home);

  // --- Failure injection ---
  // One-shot hooks plus first-class *scheduled* variants; the chaos
  // nemesis (src/chaos) compiles declarative fault schedules down to
  // these instead of ad-hoc lambdas.
  void crash_node(NodeId id);                  // no-op if already down
  void reboot_node(NodeId id,
                   std::function<void()> on_recovered = nullptr);
  void schedule_crash(NodeId id, Duration after,
                      Duration reboot_after = Duration::zero());
  /// Powers the node back on at now+after (no-op if up or STONITH-held).
  void schedule_reboot(NodeId id, Duration after);
  void partition_pair(NodeId a, NodeId b) { net_->sever_pair(a, b); }
  void heal_pair(NodeId a, NodeId b) { net_->heal_pair(a, b); }
  /// Severs a<->b (or only a->b when `asymmetric`) during [from, until).
  /// `until` <= `from` means the partition stays until healed explicitly.
  void schedule_partition(NodeId a, NodeId b, Duration from, Duration until,
                          bool asymmetric = false);
  /// Multiplies node `id`'s log-device service times by `factor` during
  /// [from, until) — a slow/failing spindle, not a crash.
  void schedule_disk_degrade(NodeId id, Duration from, Duration until,
                             double factor);
  /// Suppresses node `id`'s outgoing heartbeats during [from, until): the
  /// node stays up but peers falsely suspect it (split-brain exercise).
  void schedule_heartbeat_mute(NodeId id, Duration from, Duration until);

  /// Stable-state snapshot of every MDS, for the invariant checker.
  [[nodiscard]] std::vector<const MetaStore*> stores() const;

  /// Runs the namespace invariant checker over all stable state.
  [[nodiscard]] std::vector<InvariantViolation> check_invariants(
      const std::vector<ObjectId>& roots) const;

 private:
  Simulator& sim_;
  SimEnv env_;
  ClusterConfig cfg_;
  StatsRegistry& stats_;
  TraceRecorder& trace_;
  HistoryRecorder history_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<SharedStorage> storage_;
  std::unique_ptr<StonithController> fencing_;
  std::vector<std::unique_ptr<MdsNode>> nodes_;
};

}  // namespace opc
