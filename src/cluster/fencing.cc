#include "cluster/fencing.h"

namespace opc {

void StonithController::fence_and_isolate(NodeId requester, NodeId target,
                                          std::function<void()> on_fenced) {
  SIM_CHECK(on_fenced != nullptr);
  if (held(requester)) {
    // Dueling-shotguns breaker.  The requester is itself mid-fence: if the
    // arbiter honored both requests, two nodes recovering each other's
    // transactions would keep power-cycling one another before either
    // decision becomes durable — a deterministic livelock (the chaos
    // explorer finds it with one slow disk plus one crash).  Refusing is
    // safe: a held requester is guaranteed to be shot within fence_delay,
    // and its post-reboot recovery retries the fence once it is no longer
    // under fire.
    stats_.add("fencing.refused");
    trace_.record(sim_.now(), TraceKind::kFence, requester.str(),
                  "STONITH " + target.str() + " refused: requester is fenced");
    return;
  }
  stats_.add("fencing.requests");
  trace_.record(sim_.now(), TraceKind::kFence, requester.str(),
                "STONITH " + target.str());
  holds_[target].insert(requester);
  sim_.schedule_after(cfg_.fence_delay, [this, target,
                                         on_fenced = std::move(on_fenced)] {
    // Cut power (if the target is up — it may be merely partitioned, which
    // is the whole point) and fence the partition; only then is the log
    // safe to read.
    crash_node_(target);
    storage_.fence(target);
    on_fenced();
  });
}

void StonithController::release(NodeId requester, NodeId target) {
  auto it = holds_.find(target);
  if (it == holds_.end()) return;
  it->second.erase(requester);
  if (!it->second.empty()) return;
  holds_.erase(it);
  stats_.add("fencing.releases");
  if (cfg_.auto_reboot) {
    sim_.schedule_after(cfg_.reboot_delay, [this, target] {
      if (held(target)) return;  // re-fenced meanwhile
      reboot_node_(target);
    });
  }
}

}  // namespace opc
