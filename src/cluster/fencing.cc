#include "cluster/fencing.h"

namespace opc {

void StonithController::fence_and_isolate(NodeId requester, NodeId target,
                                          std::function<void()> on_fenced) {
  SIM_CHECK(on_fenced != nullptr);
  stats_.add("fencing.requests");
  trace_.record(sim_.now(), TraceKind::kFence, requester.str(),
                "STONITH " + target.str());
  holds_[target].insert(requester);
  sim_.schedule_after(cfg_.fence_delay, [this, target,
                                         on_fenced = std::move(on_fenced)] {
    // Cut power (if the target is up — it may be merely partitioned, which
    // is the whole point) and fence the partition; only then is the log
    // safe to read.
    crash_node_(target);
    storage_.fence(target);
    on_fenced();
  });
}

void StonithController::release(NodeId requester, NodeId target) {
  auto it = holds_.find(target);
  if (it == holds_.end()) return;
  it->second.erase(requester);
  if (!it->second.empty()) return;
  holds_.erase(it);
  stats_.add("fencing.releases");
  if (cfg_.auto_reboot) {
    sim_.schedule_after(cfg_.reboot_delay, [this, target] {
      if (held(target)) return;  // re-fenced meanwhile
      reboot_node_(target);
    });
  }
}

}  // namespace opc
