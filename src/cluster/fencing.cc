#include "cluster/fencing.h"

namespace opc {

void StonithController::fence_and_isolate(NodeId requester, NodeId target,
                                          FenceCallback on_fenced) {
  SIM_CHECK(on_fenced != nullptr);
  if (held(requester)) {
    // Dueling-shotguns breaker.  The requester is itself mid-fence: if the
    // arbiter honored both requests, two nodes recovering each other's
    // transactions would keep power-cycling one another before either
    // decision becomes durable — a deterministic livelock (the chaos
    // explorer finds it with one slow disk plus one crash).  Refusing is
    // safe: a held requester is guaranteed to be shot within fence_delay,
    // and its post-reboot recovery retries the fence once it is no longer
    // under fire.
    stats_.add("fencing.refused");
    trace_.record(env_.now(), TraceKind::kFence, requester.str(),
                  "STONITH " + target.str() + " refused: requester is fenced");
    return;
  }
  stats_.add("fencing.requests");
  trace_.record(env_.now(), TraceKind::kFence, requester.str(),
                "STONITH " + target.str());
  holds_[target].insert(requester);
  const std::uint64_t id = next_fence_id_++;
  pending_fences_.emplace(id, std::move(on_fenced));
  auto fire_cb = [this, target, id] {
    // Cut power (if the target is up — it may be merely partitioned, which
    // is the whole point) and fence the partition; only then is the log
    // safe to read.
    crash_node_(target);
    storage_.fence(target);
    auto it = pending_fences_.find(id);
    if (it == pending_fences_.end()) return;
    FenceCallback cb = std::move(it->second);
    pending_fences_.erase(it);
    cb();
  };
  OPC_ASSERT_INLINE_CB(fire_cb);
  env_.schedule_after(cfg_.fence_delay, std::move(fire_cb));
}

void StonithController::release(NodeId requester, NodeId target) {
  auto it = holds_.find(target);
  if (it == holds_.end()) return;
  it->second.erase(requester);
  if (!it->second.empty()) return;
  holds_.erase(it);
  stats_.add("fencing.releases");
  if (cfg_.auto_reboot) {
    env_.schedule_after(cfg_.reboot_delay, [this, target] {
      if (held(target)) return;  // re-fenced meanwhile
      reboot_node_(target);
    });
  }
}

}  // namespace opc
