// STONITH-style node fencing (paper §III-A).
//
// When a 1PC coordinator must read a suspected-dead worker's log it first
// asks this controller to "shoot the other node in the head": the target is
// power-cycled (crashed immediately, rebooted only after all readers
// release it) and its storage partition is fenced so no straggling write —
// from a merely *partitioned*, still-live worker — can land after the
// coordinator's read.  This is exactly the split-brain hazard the paper
// motivates: heartbeats cannot distinguish a crash from a partition, so the
// read is only safe post-fence.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "acp/services.h"
#include "env/env.h"
#include "sim/trace.h"
#include "stats/counters.h"
#include "wal/partition.h"

namespace opc {

struct FencingConfig {
  /// Time for the power-cycle command to take effect (command latency plus
  /// the window in which outstanding device writes are cut off).
  Duration fence_delay = Duration::millis(50);
  /// Repair time: fenced node reboots this long after the last release.
  Duration reboot_delay = Duration::millis(500);
  /// Whether released targets reboot automatically.
  bool auto_reboot = true;
};

class StonithController final : public FencingService {
 public:
  using CrashFn = std::function<void(NodeId)>;
  using RebootFn = std::function<void(NodeId)>;

  StonithController(Env& env, SharedStorage& storage,
                    StatsRegistry& stats, TraceRecorder& trace,
                    FencingConfig cfg, CrashFn crash_node,
                    RebootFn reboot_node)
      : env_(env), storage_(storage), stats_(stats), trace_(trace), cfg_(cfg),
        crash_node_(std::move(crash_node)),
        reboot_node_(std::move(reboot_node)) {}

  void fence_and_isolate(NodeId requester, NodeId target,
                         FenceCallback on_fenced) override;
  void release(NodeId requester, NodeId target) override;

  [[nodiscard]] bool held(NodeId target) const {
    auto it = holds_.find(target);
    return it != holds_.end() && !it->second.empty();
  }

 private:
  Env& env_;
  SharedStorage& storage_;
  StatsRegistry& stats_;
  TraceRecorder& trace_;
  FencingConfig cfg_;
  CrashFn crash_node_;
  RebootFn reboot_node_;
  std::unordered_map<NodeId, std::unordered_set<NodeId>> holds_;
  // Callbacks awaiting their fence_delay timer, keyed by a monotonic id so
  // the timer lambda captures only {this, target, id} — 20 bytes, safely
  // inside the callback's inline window (a moved-in FenceCallback capture
  // would be 56 bytes and spill to the heap).
  std::unordered_map<std::uint64_t, FenceCallback> pending_fences_;
  std::uint64_t next_fence_id_ = 1;
};

}  // namespace opc
