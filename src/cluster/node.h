// One simulated metadata server: store + locks + WAL + protocol engine,
// with a crash/reboot lifecycle and heartbeat emission.
#pragma once

#include <functional>
#include <memory>

#include "acp/engine.h"
#include "env/env.h"
#include "env/transport.h"
#include "lock/lock_manager.h"
#include "mds/store.h"
#include "wal/log_writer.h"

namespace opc {

struct HeartbeatConfig {
  bool enabled = false;
  Duration interval = Duration::millis(50);
  Duration suspicion_timeout = Duration::millis(250);
};

class MdsNode {
 public:
  MdsNode(Env& env, NodeId id, ProtocolKind proto, AcpConfig acp_cfg,
          WalConfig wal_cfg, HeartbeatConfig hb_cfg, Transport& net,
          SharedStorage& storage, LogPartition& partition,
          StatsRegistry& stats, TraceRecorder& trace, FencingService* fencing,
          HistoryRecorder* history, obs::PhaseLog* phases = nullptr);

  MdsNode(const MdsNode&) = delete;
  MdsNode& operator=(const MdsNode&) = delete;

  /// Attaches to the network and starts heartbeats.  Call once at startup
  /// and again implicitly via reboot().
  void start();

  /// Power-off: protocol state, locks, caches and lazy log writes vanish;
  /// the network drops traffic to this node from now on.
  void crash();

  /// Power-on after a crash: re-attach, scan the log, re-drive unfinished
  /// transactions (paper §II-C / §III-C).  `on_recovered` fires when the
  /// engine finishes its recovery scan.
  void reboot(std::function<void()> on_recovered = nullptr);

  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] NodeId id() const { return id_; }

  /// Chaos hook: while muted the node stays up and keeps serving, but
  /// stops *emitting* heartbeats — peers falsely suspect it, which is
  /// exactly the unreliable-failure-detection hazard (paper §III-A) that
  /// forces 1PC recovery to fence before reading a foreign log.
  void set_heartbeat_muted(bool muted) { hb_muted_ = muted; }
  [[nodiscard]] bool heartbeat_muted() const { return hb_muted_; }
  [[nodiscard]] AcpEngine& engine() { return engine_; }
  [[nodiscard]] MetaStore& store() { return store_; }
  [[nodiscard]] const MetaStore& store() const { return store_; }
  [[nodiscard]] LockManager& locks() { return locks_; }
  [[nodiscard]] LogWriter& wal() { return wal_; }

 private:
  void on_envelope(Envelope env);
  void handle_fs_rpc(const Envelope& env);
  void schedule_heartbeat();
  void schedule_sweep();

  Env& env_;
  NodeId id_;
  HeartbeatConfig hb_cfg_;
  Transport& net_;
  SharedStorage& storage_;
  StatsRegistry& stats_;
  TraceRecorder& trace_;

  MetaStore store_;
  LockManager locks_;
  LogWriter wal_;
  AcpEngine engine_;

  bool alive_ = false;
  bool hb_muted_ = false;
  std::uint64_t life_epoch_ = 0;  // invalidates timers across crash cycles
  std::unordered_map<NodeId, SimTime> last_heard_;
  std::unordered_map<NodeId, bool> suspected_;
  std::vector<NodeId> peers_;

 public:
  /// Cluster wiring: every other node's id (for heartbeat fan-out).
  void set_peers(std::vector<NodeId> peers) { peers_ = std::move(peers); }
};

}  // namespace opc
