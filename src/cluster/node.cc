#include "cluster/node.h"

#include "fs/rpc.h"

namespace opc {
namespace {
constexpr const char* kHeartbeatKind = "HB";
}

MdsNode::MdsNode(Env& env, NodeId id, ProtocolKind proto,
                 AcpConfig acp_cfg, WalConfig wal_cfg, HeartbeatConfig hb_cfg,
                 Transport& net, SharedStorage& storage,
                 LogPartition& partition, StatsRegistry& stats,
                 TraceRecorder& trace, FencingService* fencing,
                 HistoryRecorder* history, obs::PhaseLog* phases)
    : env_(env), id_(id), hb_cfg_(hb_cfg), net_(net), storage_(storage),
      stats_(stats), trace_(trace), store_(id),
      locks_(env, "locks." + id.str(), stats, trace),
      wal_(env, id, partition, stats, trace, wal_cfg),
      engine_(env, id, proto, acp_cfg, net, wal_, locks_, store_, storage,
              stats, trace, fencing, history, phases) {}

void MdsNode::start() {
  SIM_CHECK(!alive_);
  alive_ = true;
  ++life_epoch_;
  net_.attach(id_, [this](Envelope env) { on_envelope(std::move(env)); });
  if (hb_cfg_.enabled) {
    last_heard_.clear();
    suspected_.clear();
    for (NodeId p : peers_) last_heard_[p] = env_.now();
    schedule_heartbeat();
    schedule_sweep();
  }
}

void MdsNode::crash() {
  SIM_CHECK_MSG(alive_, "crash() on a node that is already down");
  alive_ = false;
  ++life_epoch_;  // kills heartbeat/sweep timers at their next firing
  net_.detach(id_);
  engine_.crash();  // also resets locks, store cache, WAL volatile state
  stats_.add("cluster.crashes");
}

void MdsNode::reboot(std::function<void()> on_recovered) {
  SIM_CHECK_MSG(!alive_, "reboot() on a node that is up");
  storage_.unfence(id_);
  start();
  stats_.add("cluster.reboots");
  engine_.recover(std::move(on_recovered));
}

void MdsNode::on_envelope(Envelope env) {
  if (!alive_) return;
  if (env.kind == kHeartbeatKind) {
    last_heard_[env.from] = env_.now();
    if (suspected_[env.from]) {
      suspected_[env.from] = false;
      engine_.clear_suspicion(env.from);
    }
    return;
  }
  if (env.kind == kFsRpcKind) {
    handle_fs_rpc(env);
    return;
  }
  engine_.on_message(std::move(env));
}

void MdsNode::handle_fs_rpc(const Envelope& env) {
  const FsRpc& rpc = *env.payload.get<FsRpc>();
  FsRpcReply reply;
  reply.req_id = rpc.req_id;
  // Reads are served from the current (mem) view — they see logically
  // committed state, including 1PC commits whose stable flush is pending.
  switch (rpc.op) {
    case FsRpcOp::kLookup: {
      const auto child = store_.mem_lookup(rpc.target, rpc.name);
      reply.found = child.has_value();
      if (child) reply.child = *child;
      break;
    }
    case FsRpcOp::kStat: {
      const auto ino = store_.mem_inode(rpc.target);
      reply.found = ino.has_value();
      if (ino) reply.inode = *ino;
      break;
    }
    case FsRpcOp::kReaddir: {
      const auto dir = store_.mem_inode(rpc.target);
      reply.found = dir.has_value() && dir->is_dir;
      if (reply.found) reply.entries = store_.mem_list_dir(rpc.target);
      break;
    }
  }
  stats_.add("fs.rpcs");
  Envelope out;
  out.from = id_;
  out.to = env.from;
  out.kind = kFsRpcReplyKind;
  out.size_bytes = 128 + reply.entries.size() * 32;
  out.payload.emplace<FsRpcReply>(std::move(reply));
  net_.send(std::move(out));
}

void MdsNode::schedule_heartbeat() {
  const std::uint64_t epoch = life_epoch_;
  env_.schedule_after(hb_cfg_.interval, [this, epoch] {
    if (epoch != life_epoch_ || !alive_) return;
    if (!hb_muted_) {
      for (NodeId p : peers_) {
        Envelope env;
        env.from = id_;
        env.to = p;
        env.kind = kHeartbeatKind;
        env.size_bytes = 64;
        net_.send(std::move(env));
      }
    }
    schedule_heartbeat();
  });
}

void MdsNode::schedule_sweep() {
  const std::uint64_t epoch = life_epoch_;
  env_.schedule_after(hb_cfg_.interval, [this, epoch] {
    if (epoch != life_epoch_ || !alive_) return;
    for (NodeId p : peers_) {
      const SimTime last = last_heard_.contains(p) ? last_heard_[p]
                                                   : SimTime::zero();
      const bool silent = env_.now() - last > hb_cfg_.suspicion_timeout;
      if (silent && !suspected_[p]) {
        suspected_[p] = true;
        stats_.add("cluster.suspicions");
        trace_.record(env_.now(), TraceKind::kInfo, id_.str(),
                      "suspects " + p.str());
        engine_.suspect(p);
      }
    }
    schedule_sweep();
  });
}

}  // namespace opc
