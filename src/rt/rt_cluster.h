// Real-time cluster: N MdsNodes on RtEnv workers, one per node.
//
// The exact components the simulated Cluster wires — MdsNode, AcpEngine,
// LogWriter, LockManager, SharedStorage — run unmodified; only the
// executor (RtEnv) and the fabric (RtTransport) differ.  Each node gets a
// private StatsRegistry / TraceRecorder and a log partition whose disk
// model reports into them, so every mutable sink is confined to one worker
// thread; results are merged after the run goes quiescent.
//
// v1 scope is the quiescent live storm: heartbeats off, fencing absent,
// no crash injection — the protocols' normal-case paths at real speed.
// Chaos and recovery exercises stay on the simulator, where faults are
// deterministic and replayable (docs/RUNTIME.md §4).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/node.h"
#include "mds/invariants.h"
#include "rt/rt_env.h"
#include "rt/rt_transport.h"
#include "rt/storm_plan.h"
#include "stats/histogram.h"

namespace opc {

struct RtClusterConfig {
  std::uint32_t n_nodes = 2;
  ProtocolKind protocol = ProtocolKind::kOnePC;
  NetworkConfig net;  // delays applied as real timer delays
  DiskConfig disk;
  WalConfig wal;
  AcpConfig acp;  // keep timeouts disabled: the storm runs quiescent
  std::uint64_t seed = 1;
};

class RtCluster {
 public:
  explicit RtCluster(RtClusterConfig cfg);
  ~RtCluster();

  RtCluster(const RtCluster&) = delete;
  RtCluster& operator=(const RtCluster&) = delete;

  struct StormResult {
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    Histogram latency;    // client-visible commit latency, merged
    StatsRegistry stats;  // all nodes + transport, merged
    double wall_seconds = 0.0;
    double ops_per_second = 0.0;
  };

  /// Runs the plan as a closed loop with `concurrency` outstanding
  /// transactions per node; blocks until every node drained its share (or
  /// `max_wall` elapsed, when nonzero — in-flight work still drains) and
  /// the cluster is quiescent.  Call at most once per RtCluster.
  StormResult run_storm(const StormPlan& plan, std::uint32_t concurrency,
                        Duration max_wall = Duration::zero());

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] MdsNode& node(NodeId id) { return *nodes_.at(id.value())->node; }
  [[nodiscard]] RtEnv& env() { return env_; }

  /// Seeds a directory inode on its home MDS (call before run_storm).
  void bootstrap_directory(ObjectId dir, NodeId home);

  [[nodiscard]] std::vector<const MetaStore*> stores() const;
  [[nodiscard]] std::vector<InvariantViolation> check_invariants(
      const std::vector<ObjectId>& roots) const;

 private:
  struct PerNode {
    StatsRegistry stats;
    TraceRecorder trace{false};
    std::unique_ptr<MdsNode> node;
    // Closed-loop state; touched only on this node's worker thread.
    const std::vector<Transaction>* items = nullptr;
    std::size_t next = 0;
    std::uint32_t inflight = 0;
    bool signaled_done = false;
  };

  void pump(std::uint32_t i, std::uint32_t concurrency);
  void on_completion(std::uint32_t i, std::uint32_t concurrency);

  RtClusterConfig cfg_;
  RtEnv env_;
  RtTransport net_;
  // Sinks for SharedStorage itself (per-partition disks report into the
  // owning node's registry via the add_partition overload instead).
  StatsRegistry storage_stats_;
  TraceRecorder storage_trace_{false};
  SharedStorage storage_;
  std::vector<std::unique_ptr<PerNode>> nodes_;

  std::atomic<bool> stop_issuing_{false};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::uint32_t nodes_done_ = 0;
};

}  // namespace opc
