#include "rt/storm_plan.h"

#include <string>

#include "sim/check.h"

namespace opc {

StormPlan make_storm_plan(std::uint32_t n_nodes, std::uint32_t ops_per_node,
                          std::uint32_t participants) {
  SIM_CHECK_MSG(participants >= 2 && participants <= n_nodes,
                "plan workers must be distinct non-coordinator nodes");
  StormPlan plan;
  plan.n_nodes = n_nodes;

  StridedPartitioner part(n_nodes);
  NamespacePlanner planner(part, OpCosts{});

  plan.dirs.reserve(n_nodes);
  for (std::uint32_t i = 0; i < n_nodes; ++i) {
    plan.dirs.emplace_back(static_cast<std::uint64_t>(i) + 1);
  }

  plan.per_node.resize(n_nodes);
  for (std::uint32_t i = 0; i < n_nodes; ++i) {
    plan.per_node[i].reserve(ops_per_node);
    for (std::uint32_t j = 0; j < ops_per_node; ++j) {
      if (participants == 2) {
        // The classic two-party plan, byte for byte.
        const std::string name =
            "f" + std::to_string(i) + "_" + std::to_string(j);
        plan.per_node[i].push_back(planner.plan_create(
            plan.dirs[i], name, part.inode_id(i, j), /*is_dir=*/false,
            /*hint=*/j));
        continue;
      }
      std::vector<std::pair<std::string, ObjectId>> entries;
      std::vector<NodeId> homes;
      entries.reserve(participants - 1);
      homes.reserve(participants - 1);
      for (std::uint32_t c = 0; c + 1 < participants; ++c) {
        const ObjectId inode = part.inode_id(i, j, c, participants);
        entries.emplace_back("f" + std::to_string(i) + "_" +
                                 std::to_string(j) + "_" + std::to_string(c),
                             inode);
        homes.push_back(part.home_of(inode));
      }
      plan.per_node[i].push_back(
          planner.plan_create_spread(plan.dirs[i], entries, homes));
    }
  }
  return plan;
}

}  // namespace opc
