#include "rt/storm_plan.h"

#include <string>

namespace opc {

StormPlan make_storm_plan(std::uint32_t n_nodes, std::uint32_t ops_per_node) {
  StormPlan plan;
  plan.n_nodes = n_nodes;

  StridedPartitioner part(n_nodes);
  NamespacePlanner planner(part, OpCosts{});

  plan.dirs.reserve(n_nodes);
  for (std::uint32_t i = 0; i < n_nodes; ++i) {
    plan.dirs.emplace_back(static_cast<std::uint64_t>(i) + 1);
  }

  plan.per_node.resize(n_nodes);
  for (std::uint32_t i = 0; i < n_nodes; ++i) {
    plan.per_node[i].reserve(ops_per_node);
    for (std::uint32_t j = 0; j < ops_per_node; ++j) {
      const std::string name =
          "f" + std::to_string(i) + "_" + std::to_string(j);
      plan.per_node[i].push_back(planner.plan_create(
          plan.dirs[i], name, part.inode_id(i, j), /*is_dir=*/false,
          /*hint=*/j));
    }
  }
  return plan;
}

}  // namespace opc
