#include "rt/rt_transport.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace opc {

void RtTransport::attach(NodeId node, Handler handler) {
  SIM_CHECK(handler != nullptr);
  SIM_CHECK_MSG(node.value() < env_.workers(),
                "node id beyond the worker pool");
  std::lock_guard<std::mutex> lk(mu_);
  handlers_[node] = std::move(handler);
}

void RtTransport::detach(NodeId node) {
  std::lock_guard<std::mutex> lk(mu_);
  handlers_.erase(node);
}

bool RtTransport::attached(NodeId node) const {
  std::lock_guard<std::mutex> lk(mu_);
  return handlers_.contains(node);
}

void RtTransport::send(Envelope env) {
  sent_.fetch_add(1, std::memory_order_relaxed);

  Duration delay = cfg_.latency;
  if (cfg_.bytes_per_second > 0.0) {
    delay += Duration::from_seconds_f(static_cast<double>(env.size_bytes) /
                                      cfg_.bytes_per_second);
  }

  const std::uint32_t dest = env.to.value();
  SimTime when;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (cfg_.jitter_max > Duration::zero()) {
      delay += Duration::nanos(static_cast<std::int64_t>(rng_.uniform(
          0.0, static_cast<double>(cfg_.jitter_max.count_nanos()))));
    }
    when = env_.now() + delay;
    // FIFO per directed channel, same +1ns rule as the simulated Network.
    const std::uint64_t ch = key(env.from, env.to);
    if (auto it = channel_clock_.find(ch); it != channel_clock_.end()) {
      when = std::max(when, it->second + Duration::nanos(1));
    }
    channel_clock_[ch] = when;
  }

  auto boxed = std::make_unique<Envelope>(std::move(env));
  auto deliver_cb = [this, boxed = std::move(boxed)] {
    deliver(std::move(*boxed));
  };
  OPC_ASSERT_INLINE_CB(deliver_cb);
  env_.schedule_on(dest, when, std::move(deliver_cb));
}

void RtTransport::deliver(Envelope env) {
  Handler h;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = handlers_.find(env.to);
    if (it == handlers_.end()) {
      dropped_down_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    h = it->second;  // copy: the handler may detach/re-attach the node
  }
  delivered_.fetch_add(1, std::memory_order_relaxed);
  h(std::move(env));
}

void RtTransport::export_stats(StatsRegistry& stats) const {
  stats.add("net.sent", static_cast<std::int64_t>(
                            sent_.load(std::memory_order_relaxed)));
  stats.add("net.delivered", static_cast<std::int64_t>(
                                 delivered_.load(std::memory_order_relaxed)));
  const auto down = dropped_down_.load(std::memory_order_relaxed);
  if (down != 0) stats.add("net.dropped.down", static_cast<std::int64_t>(down));
}

}  // namespace opc
