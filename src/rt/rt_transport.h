// In-process loopback Transport between RtEnv workers.
//
// Send-side, this is the simulated Network's delay model made real: one-way
// latency, optional per-byte cost, optional uniform jitter, and FIFO per
// directed channel (a later send never overtakes an earlier one on the same
// link).  Instead of advancing a virtual clock, the delay becomes a real
// timer on the *destination* node's worker, so a message delivery executes
// on the same thread as everything else that node does — the engines stay
// single-threaded per node, exactly as under the simulator.
//
// Failure injection (partitions, loss) is not carried over: the rt backend
// runs live quiescent storms (docs/RUNTIME.md §4); chaos stays on the
// deterministic simulator where faults are reproducible.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "env/transport.h"
#include "net/network.h"  // NetworkConfig
#include "rt/rt_env.h"
#include "sim/rng.h"

namespace opc {

class RtTransport final : public Transport {
 public:
  /// Node ids map 1:1 onto env workers: node i's handler runs on worker i.
  RtTransport(RtEnv& env, NetworkConfig cfg, std::uint64_t seed = 1)
      : env_(env), cfg_(cfg), rng_(seed, /*stream=*/0xA11CE) {}

  void attach(NodeId node, Handler handler) override;
  void detach(NodeId node) override;
  [[nodiscard]] bool attached(NodeId node) const override;
  void send(Envelope env) override;

  /// Folds this transport's counters into a registry (post-run, once the
  /// workers are quiescent), under the simulated Network's counter names.
  void export_stats(StatsRegistry& stats) const;

 private:
  static std::uint64_t key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
  }

  void deliver(Envelope env);

  RtEnv& env_;
  NetworkConfig cfg_;
  mutable std::mutex mu_;  // guards rng_, handlers_, channel_clock_
  Rng rng_;
  std::unordered_map<NodeId, Handler> handlers_;
  std::unordered_map<std::uint64_t, SimTime> channel_clock_;

  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_down_{0};
};

}  // namespace opc
