#include "rt/rt_env.h"

#include <algorithm>
#include <utility>

namespace opc {

namespace {
// Which worker the calling thread is, for scheduling affinity.  One RtEnv
// per process is the expected shape; with several, a thread belongs to at
// most one of them, so a plain index is still unambiguous enough for the
// affinity default (cross-env calls land on worker 0, which is safe).
thread_local std::uint32_t tl_worker = 0xFFFFFFFF;
}  // namespace

RtEnv::RtEnv(std::uint32_t n_workers, std::uint64_t seed)
    : start_(std::chrono::steady_clock::now()) {
  SIM_CHECK_MSG(n_workers >= 1 && n_workers <= 255,
                "RtEnv supports 1..255 workers");
  workers_.reserve(n_workers);
  for (std::uint32_t i = 0; i < n_workers; ++i) {
    // Distinct per-worker stream on the shared seed; the constant matches
    // SimEnv's stream tag so sim-vs-rt code paths draw from the same family.
    workers_.push_back(std::make_unique<Worker>(seed, 0xE4411u + i));
  }
  for (std::uint32_t i = 0; i < n_workers; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

RtEnv::~RtEnv() { stop(); }

void RtEnv::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lk(w->mu);
      w->stopping = true;
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

SimTime RtEnv::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return SimTime::from_nanos(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

std::uint32_t RtEnv::current_worker() const {
  const std::uint32_t w = tl_worker;
  return w < workers_.size() ? w : kNoWorker;
}

TimerHandle RtEnv::schedule_at(SimTime when, Callback cb) {
  const std::uint32_t w = current_worker();
  return arm(w == kNoWorker ? 0 : w, when, std::move(cb));
}

TimerHandle RtEnv::schedule_on(std::uint32_t worker, SimTime when,
                               Callback cb) {
  SIM_CHECK_MSG(worker < workers_.size(), "schedule_on: no such worker");
  return arm(worker, when, std::move(cb));
}

TimerHandle RtEnv::arm(std::uint32_t index, SimTime when, Callback cb) {
  Worker& w = *workers_[index];
  pending_.fetch_add(1, std::memory_order_seq_cst);
  std::uint32_t slot_idx;
  std::uint32_t gen;
  {
    std::lock_guard<std::mutex> lk(w.mu);
    if (w.free_head != kNilSlot) {
      slot_idx = w.free_head;
      w.free_head = w.slots[slot_idx].next_free;
    } else {
      slot_idx = static_cast<std::uint32_t>(w.slots.size());
      SIM_CHECK_MSG(slot_idx < kSlotMask, "worker timer slot space exhausted");
      w.slots.emplace_back();
    }
    Slot& s = w.slots[slot_idx];
    s.cb = std::move(cb);
    s.armed = true;
    if (s.gen == 0) s.gen = 1;  // skip the reserved "never armed" value
    gen = s.gen;
    w.heap.push_back(Entry{when.count_nanos(), w.next_seq++, slot_idx, gen});
    std::push_heap(w.heap.begin(), w.heap.end(), EntryLater{});
  }
  w.cv.notify_all();
  return TimerHandle{(index << kSlotBits) | slot_idx, gen};
}

bool RtEnv::cancel(TimerHandle h) {
  if (!h.valid()) return false;
  const std::uint32_t index = h.slot() >> kSlotBits;
  if (index >= workers_.size()) return false;
  Worker& w = *workers_[index];
  const std::uint32_t slot_idx = h.slot() & kSlotMask;
  {
    std::lock_guard<std::mutex> lk(w.mu);
    if (slot_idx >= w.slots.size()) return false;
    Slot& s = w.slots[slot_idx];
    if (!s.armed || s.gen != h.gen()) return false;
    s.cb.reset();
    s.armed = false;
    ++s.gen;
    s.next_free = w.free_head;
    w.free_head = slot_idx;
    // The heap entry stays; the dispatch loop skips it on the gen check.
  }
  pending_.fetch_sub(1, std::memory_order_seq_cst);
  return true;
}

Rng& RtEnv::rng() {
  const std::uint32_t w = current_worker();
  return workers_[w == kNoWorker ? 0 : w]->rng;
}

void RtEnv::worker_loop(std::uint32_t index) {
  tl_worker = index;
  Worker& w = *workers_[index];
  std::unique_lock<std::mutex> lk(w.mu);
  while (true) {
    if (w.stopping) return;
    if (w.heap.empty()) {
      w.cv.wait(lk);
      continue;
    }
    const Entry e = w.heap.front();
    // Stale entry (cancelled or superseded): drop without running.
    if (e.slot >= w.slots.size() || !w.slots[e.slot].armed ||
        w.slots[e.slot].gen != e.gen) {
      std::pop_heap(w.heap.begin(), w.heap.end(), EntryLater{});
      w.heap.pop_back();
      continue;
    }
    const auto deadline = start_ + std::chrono::nanoseconds(e.when_ns);
    if (std::chrono::steady_clock::now() < deadline) {
      w.cv.wait_until(lk, deadline);
      continue;  // re-examine: an earlier timer may have arrived meanwhile
    }
    std::pop_heap(w.heap.begin(), w.heap.end(), EntryLater{});
    w.heap.pop_back();
    Slot& s = w.slots[e.slot];
    Callback cb = std::move(s.cb);
    s.cb.reset();
    s.armed = false;
    ++s.gen;
    s.next_free = w.free_head;
    w.free_head = e.slot;
    lk.unlock();
    cb();  // run-to-completion; may schedule on any worker
    // Decrement only after the callback finished so wait_idle()'s zero
    // reading implies "nothing running" — anything the callback scheduled
    // was already counted before this drop.
    pending_.fetch_sub(1, std::memory_order_seq_cst);
    lk.lock();
  }
}

void RtEnv::wait_idle() {
  while (pending_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // Synchronize with every worker's last dispatch so state written by
  // callbacks is visible to the caller.
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lk(w->mu);
  }
}

}  // namespace opc
