#include "rt/rt_cluster.h"

#include <chrono>
#include <utility>

namespace opc {

RtCluster::RtCluster(RtClusterConfig cfg)
    : cfg_(cfg), env_(cfg.n_nodes, cfg.seed), net_(env_, cfg.net, cfg.seed),
      storage_(env_, storage_stats_, storage_trace_) {
  SIM_CHECK(cfg_.n_nodes >= 1);
  HeartbeatConfig hb;  // disabled: quiescent runs have no failure detection
  for (std::uint32_t i = 0; i < cfg_.n_nodes; ++i) {
    const NodeId id(i);
    auto pn = std::make_unique<PerNode>();
    LogPartition& part =
        storage_.add_partition(id, cfg_.disk, pn->stats, pn->trace);
    pn->node = std::make_unique<MdsNode>(
        env_, id, cfg_.protocol, cfg_.acp, cfg_.wal, hb, net_, storage_, part,
        pn->stats, pn->trace, /*fencing=*/nullptr, /*history=*/nullptr);
    nodes_.push_back(std::move(pn));
  }
  for (std::uint32_t i = 0; i < cfg_.n_nodes; ++i) {
    std::vector<NodeId> peers;
    for (std::uint32_t j = 0; j < cfg_.n_nodes; ++j) {
      if (j != i) peers.emplace_back(j);
    }
    nodes_[i]->node->set_peers(std::move(peers));
    nodes_[i]->node->start();  // attach only: heartbeats are off
  }
}

RtCluster::~RtCluster() { env_.stop(); }

void RtCluster::bootstrap_directory(ObjectId dir, NodeId home) {
  Inode ino;
  ino.id = dir;
  ino.is_dir = true;
  ino.nlink = 1;
  node(home).store().bootstrap_inode(ino);
}

void RtCluster::pump(std::uint32_t i, std::uint32_t concurrency) {
  PerNode& pn = *nodes_[i];
  while (pn.inflight < concurrency && pn.next < pn.items->size() &&
         !stop_issuing_.load(std::memory_order_relaxed)) {
    Transaction txn = (*pn.items)[pn.next++];
    ++pn.inflight;
    pn.node->engine().submit(
        std::move(txn),
        [this, i, concurrency](TxnId, TxnOutcome) { on_completion(i, concurrency); });
  }
}

void RtCluster::on_completion(std::uint32_t i, std::uint32_t concurrency) {
  // Runs on worker i (the coordinator replies on its own executor).
  PerNode& pn = *nodes_[i];
  --pn.inflight;
  pump(i, concurrency);
  const bool drained = pn.next >= pn.items->size() ||
                       stop_issuing_.load(std::memory_order_relaxed);
  if (pn.inflight == 0 && drained && !pn.signaled_done) {
    pn.signaled_done = true;
    std::lock_guard<std::mutex> lk(done_mu_);
    ++nodes_done_;
    done_cv_.notify_all();
  }
}

RtCluster::StormResult RtCluster::run_storm(const StormPlan& plan,
                                            std::uint32_t concurrency,
                                            Duration max_wall) {
  SIM_CHECK(plan.n_nodes == cfg_.n_nodes);
  SIM_CHECK(concurrency >= 1);
  for (std::uint32_t i = 0; i < cfg_.n_nodes; ++i) {
    bootstrap_directory(plan.dirs[i], NodeId(i));
  }

  std::uint32_t active = 0;
  for (std::uint32_t i = 0; i < cfg_.n_nodes; ++i) {
    nodes_[i]->items = &plan.per_node[i];
    if (!plan.per_node[i].empty()) ++active;
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint32_t i = 0; i < cfg_.n_nodes; ++i) {
    if (plan.per_node[i].empty()) continue;
    env_.post(i, [this, i, concurrency] { pump(i, concurrency); });
  }

  {
    std::unique_lock<std::mutex> lk(done_mu_);
    if (max_wall > Duration::zero()) {
      const auto deadline =
          t0 + std::chrono::nanoseconds(max_wall.count_nanos());
      if (!done_cv_.wait_until(lk, deadline,
                               [&] { return nodes_done_ == active; })) {
        stop_issuing_.store(true, std::memory_order_relaxed);
        // In-flight transactions drain; every active node still signals.
        done_cv_.wait(lk, [&] { return nodes_done_ == active; });
      }
    } else {
      done_cv_.wait(lk, [&] { return nodes_done_ == active; });
    }
  }
  const double wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - t0)
          .count();

  // Let lazy WAL flushes, checkpoints and stragglers finish before reading
  // any per-node state from this thread.
  env_.wait_idle();

  StormResult res;
  res.wall_seconds = wall;
  for (auto& pn : nodes_) {
    const AcpEngine& eng = pn->node->engine();
    res.committed += eng.committed_count();
    res.aborted += eng.aborted_count();
    res.latency.merge(eng.client_latency());
    res.stats.merge(pn->stats);
  }
  res.stats.merge(storage_stats_);
  net_.export_stats(res.stats);
  res.ops_per_second =
      wall > 0.0 ? static_cast<double>(res.committed) / wall : 0.0;
  return res;
}

std::vector<const MetaStore*> RtCluster::stores() const {
  std::vector<const MetaStore*> out;
  out.reserve(nodes_.size());
  for (const auto& pn : nodes_) out.push_back(&pn->node->store());
  return out;
}

std::vector<InvariantViolation> RtCluster::check_invariants(
    const std::vector<ObjectId>& roots) const {
  return opc::check_invariants(stores(), roots);
}

}  // namespace opc
