// Pre-planned create storms shared by the rt backend and the sim/rt
// differential test.
//
// Timing-independent by construction: every transaction (coordinator,
// participants, object ids, names) is fixed before the run starts, so two
// executions — one on the deterministic simulator, one on live threads —
// that both drain the plan must converge to the same namespace and the
// same commit/abort totals no matter how their schedules interleave.
//
// Shape: node i owns hot directory dirs[i] and coordinates ops_per_node
// transactions into it.  With `participants` = 2 (the default) each
// transaction creates one file whose inode lands on node (i+1) % n — the
// paper's Fig. 1 two-party scenario, the widest shape 1PC commits without
// degrading.  Wider plans create participants-1 files per transaction, one
// per worker node (i+1)%n .. (i+participants-1)%n, all distinct and never
// the coordinator; 1PC then runs these as presumed-abort (choose_protocol's
// degrade rule, src/acp/protocol.h).
#pragma once

#include <cstdint>
#include <vector>

#include "mds/namespace.h"
#include "txn/types.h"

namespace opc {

/// Stateless placement behind the plan: directory ids 1..n live on node
/// id-1; inode ids are allocated in strides so creator node i's files land
/// on node (i+1) % n.  Thread-safe (pure functions of the id).
class StridedPartitioner final : public Partitioner {
 public:
  explicit StridedPartitioner(std::uint32_t n_nodes) : n_(n_nodes) {}

  [[nodiscard]] NodeId home_of(ObjectId obj) const override {
    const std::uint64_t v = obj.value();
    if (v >= 1 && v <= n_) {  // hot directories
      return NodeId(static_cast<std::uint32_t>(v - 1));
    }
    const std::uint64_t k = v - inode_base();
    return NodeId(static_cast<std::uint32_t>((k % n_ + 1) % n_));
  }
  [[nodiscard]] NodeId place_child(ObjectId, ObjectId child,
                                   std::uint64_t) override {
    return home_of(child);
  }
  [[nodiscard]] std::uint32_t cluster_size() const override { return n_; }

  /// First inode id (directories occupy 1..n).
  [[nodiscard]] std::uint64_t inode_base() const { return n_ + 1; }

  /// Inode id of entry `c` of node `i`'s `j`-th transaction in a
  /// `participants`-wide plan: base + (j*(participants-1)+c)*n + (i+c)%n.
  /// The id's residue mod n is (i+c)%n, so home_of places it on node
  /// (i+c+1)%n: entries c = 0..participants-2 land on participants-1
  /// distinct nodes, none of them coordinator i (needs participants <= n).
  /// The quotient (j*(participants-1)+c) decomposes uniquely back into
  /// (j, c), so ids never collide across transactions.  For participants=2
  /// (c=0) this is exactly the classic base + j*n + i stride.
  [[nodiscard]] ObjectId inode_id(std::uint32_t i, std::uint32_t j,
                                  std::uint32_t c = 0,
                                  std::uint32_t participants = 2) const {
    const std::uint64_t q =
        static_cast<std::uint64_t>(j) * (participants - 1) + c;
    return ObjectId(inode_base() + q * n_ + (i + c) % n_);
  }

 private:
  std::uint32_t n_;
};

struct StormPlan {
  std::uint32_t n_nodes = 0;
  std::vector<ObjectId> dirs;                      // dirs[i] homed on node i
  std::vector<std::vector<Transaction>> per_node;  // coordinated by node i
};

/// Builds the plan.  Pure function of (n_nodes, ops_per_node,
/// participants); both backends consume the identical transaction set.
/// `participants` = 2 reproduces the classic two-party plan byte for byte;
/// wider values need participants <= n_nodes.
[[nodiscard]] StormPlan make_storm_plan(std::uint32_t n_nodes,
                                        std::uint32_t ops_per_node,
                                        std::uint32_t participants = 2);

}  // namespace opc
