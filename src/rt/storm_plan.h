// Pre-planned create storms shared by the rt backend and the sim/rt
// differential test.
//
// Timing-independent by construction: every transaction (coordinator,
// participants, object ids, names) is fixed before the run starts, so two
// executions — one on the deterministic simulator, one on live threads —
// that both drain the plan must converge to the same namespace and the
// same commit/abort totals no matter how their schedules interleave.
//
// Shape: node i owns hot directory dirs[i] and coordinates ops_per_node
// creates into it; each new file's inode lands on node (i+1) % n, making
// every create a two-party distributed transaction (the paper's Fig. 1
// scenario) — the widest shape 1PC supports without the PrN fallback.
#pragma once

#include <cstdint>
#include <vector>

#include "mds/namespace.h"
#include "txn/types.h"

namespace opc {

/// Stateless placement behind the plan: directory ids 1..n live on node
/// id-1; inode ids are allocated in strides so creator node i's files land
/// on node (i+1) % n.  Thread-safe (pure functions of the id).
class StridedPartitioner final : public Partitioner {
 public:
  explicit StridedPartitioner(std::uint32_t n_nodes) : n_(n_nodes) {}

  [[nodiscard]] NodeId home_of(ObjectId obj) const override {
    const std::uint64_t v = obj.value();
    if (v >= 1 && v <= n_) {  // hot directories
      return NodeId(static_cast<std::uint32_t>(v - 1));
    }
    const std::uint64_t k = v - inode_base();
    return NodeId(static_cast<std::uint32_t>((k % n_ + 1) % n_));
  }
  [[nodiscard]] NodeId place_child(ObjectId, ObjectId child,
                                   std::uint64_t) override {
    return home_of(child);
  }
  [[nodiscard]] std::uint32_t cluster_size() const override { return n_; }

  /// First inode id (directories occupy 1..n).
  [[nodiscard]] std::uint64_t inode_base() const { return n_ + 1; }

  /// Inode id of node `i`'s `j`-th create: base + j*n + i.
  [[nodiscard]] ObjectId inode_id(std::uint32_t i, std::uint32_t j) const {
    return ObjectId(inode_base() + static_cast<std::uint64_t>(j) * n_ + i);
  }

 private:
  std::uint32_t n_;
};

struct StormPlan {
  std::uint32_t n_nodes = 0;
  std::vector<ObjectId> dirs;                      // dirs[i] homed on node i
  std::vector<std::vector<Transaction>> per_node;  // coordinated by node i
};

/// Builds the plan.  Pure function of (n_nodes, ops_per_node); both
/// backends consume the identical transaction set.
[[nodiscard]] StormPlan make_storm_plan(std::uint32_t n_nodes,
                                        std::uint32_t ops_per_node);

}  // namespace opc
