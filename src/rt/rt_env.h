// Real-time Env: the same protocol code, on real threads and a real clock.
//
// RtEnv implements opc::Env over std::chrono::steady_clock with one worker
// thread per node.  Each worker owns a timer wheel (a mutex-guarded
// (when, seq) min-heap with generation-counted slots, the same cancellation
// scheme as the simulator kernel) and executes callbacks strictly one at a
// time, so every component wired to a single node — engine, WAL, lock
// manager, disk model — keeps the simulator's run-to-completion,
// single-threaded execution model without any code change.  Cross-node
// concurrency is real: workers run in parallel and interact only through
// the Transport (src/rt/rt_transport.h) and explicit cross-thread
// schedule_on / post calls.
//
// Affinity rule: schedule_at()/schedule_after() called from a worker thread
// lands on that worker's own wheel (thread-local affinity); called from a
// non-worker thread (the driver) it lands on worker 0.  Drivers that need a
// specific target use post()/schedule_on().
//
// What RtEnv does NOT promise (vs SimEnv): no global event order, no
// deterministic tie-breaking across workers, and now() advances whether or
// not anyone is looking.  docs/RUNTIME.md spells out the full contract.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "env/env.h"

namespace opc {

class RtEnv final : public Env {
 public:
  /// Spawns `n_workers` threads (one per node).  Workers idle until the
  /// first schedule.  `seed` derives each worker's private rng() stream.
  explicit RtEnv(std::uint32_t n_workers, std::uint64_t seed = 1);

  /// Stops and joins all workers; pending timers are discarded.
  ~RtEnv() override;

  // --- Env ---
  /// Nanoseconds of steady_clock time since this RtEnv was constructed,
  /// presented on the simulated-time axis so timer math is shared.
  [[nodiscard]] SimTime now() const override;
  /// Schedules on the calling worker's wheel (worker 0 from outside).
  TimerHandle schedule_at(SimTime when, Callback cb) override;
  bool cancel(TimerHandle h) override;
  /// The calling worker's private stream (worker 0's from outside).
  [[nodiscard]] Rng& rng() override;

  // --- RtEnv-only surface (drivers and RtTransport) ---
  [[nodiscard]] std::uint32_t workers() const {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Schedules on a specific worker's wheel from any thread.
  TimerHandle schedule_on(std::uint32_t worker, SimTime when, Callback cb);

  /// Runs `cb` on `worker` as soon as it drains earlier-scheduled work.
  void post(std::uint32_t worker, Callback cb) {
    schedule_on(worker, now(), std::move(cb));
  }

  /// Worker index of the calling thread, or kNoWorker outside the pool.
  static constexpr std::uint32_t kNoWorker = 0xFFFFFFFF;
  [[nodiscard]] std::uint32_t current_worker() const;

  /// Blocks until no timer is pending and no callback is running anywhere —
  /// i.e. the system has gone quiescent.  Only meaningful once the workload
  /// has stopped injecting new root events.
  void wait_idle();

  /// Stops and joins all workers (idempotent; the destructor calls it).
  void stop();

 private:
  // A worker-slot address packs into TimerHandle::slot(): worker index in
  // the high byte, slot index in the low 24 bits.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFF;

  struct Slot {
    Callback cb;
    std::uint32_t gen = 1;       // live generations are never 0
    std::uint32_t next_free = kNilSlot;
    bool armed = false;
  };

  struct Entry {
    std::int64_t when_ns;
    std::uint64_t seq;  // per-worker tie-break, FIFO at equal times
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.when_ns != b.when_ns ? a.when_ns > b.when_ns : a.seq > b.seq;
    }
  };

  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Slot> slots;
    std::uint32_t free_head = kNilSlot;
    std::vector<Entry> heap;  // min-heap via std::push_heap/EntryLater
    std::uint64_t next_seq = 0;
    bool stopping = false;
    Rng rng;
    std::thread thread;

    Worker(std::uint64_t seed, std::uint64_t stream) : rng(seed, stream) {}
  };

  void worker_loop(std::uint32_t index);
  TimerHandle arm(std::uint32_t index, SimTime when, Callback cb);

  std::chrono::steady_clock::time_point start_;
  std::vector<std::unique_ptr<Worker>> workers_;
  // Timers armed or callbacks executing, across all workers.  Zero means
  // quiescent; wait_idle() polls it.
  std::atomic<std::int64_t> pending_{0};
  bool stopped_ = false;
};

}  // namespace opc
