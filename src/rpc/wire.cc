#include "rpc/wire.h"

namespace opc::rpc {
namespace {

// Little-endian primitive appends.  memcpy keeps them alignment-safe; the
// byte swap is a no-op on every target we build for.
void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Appends the frame header, leaving the length word to be patched once the
/// body is in place.  Returns the index of the length word.
std::size_t begin_frame(WireBuf& out, MsgType type, std::uint64_t id) {
  const std::size_t at = out.bytes.size();
  put_u32(out.bytes, 0);  // patched by end_frame
  put_u16(out.bytes, kMagic);
  out.bytes.push_back(kWireVersion);
  out.bytes.push_back(static_cast<std::uint8_t>(type));
  put_u64(out.bytes, id);
  return at;
}

void end_frame(WireBuf& out, std::size_t at) {
  const auto len = static_cast<std::uint32_t>(out.bytes.size() - at - 4);
  for (int i = 0; i < 4; ++i) {
    out.bytes[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
  }
}

void put_name(WireBuf& out, std::string_view name) {
  put_u16(out.bytes, static_cast<std::uint16_t>(name.size()));
  out.bytes.insert(out.bytes.end(), name.begin(), name.end());
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kAborted: return "aborted";
    case Status::kBusy: return "busy";
    case Status::kBadRequest: return "bad_request";
    case Status::kNotFound: return "not_found";
    case Status::kTimeout: return "timeout";
    case Status::kShutdown: return "shutdown";
  }
  return "unknown";
}

void encode_ping(WireBuf& out, std::uint64_t id) {
  end_frame(out, begin_frame(out, MsgType::kPing, id));
}

void encode_create(WireBuf& out, std::uint64_t id, std::uint64_t dir,
                   std::string_view name, bool is_dir) {
  const std::size_t at =
      begin_frame(out, is_dir ? MsgType::kMkdir : MsgType::kCreate, id);
  put_u64(out.bytes, dir);
  put_name(out, name);
  end_frame(out, at);
}

void encode_create_spread(WireBuf& out, std::uint64_t id, std::uint64_t dir,
                          std::string_view name, std::uint8_t width) {
  const std::size_t at = begin_frame(out, MsgType::kCreateSpread, id);
  out.bytes.push_back(width);
  put_u64(out.bytes, dir);
  put_name(out, name);
  end_frame(out, at);
}

void encode_remove(WireBuf& out, std::uint64_t id, std::uint64_t dir,
                   std::string_view name) {
  const std::size_t at = begin_frame(out, MsgType::kRemove, id);
  put_u64(out.bytes, dir);
  put_name(out, name);
  end_frame(out, at);
}

void encode_rename(WireBuf& out, std::uint64_t id, std::uint64_t src_dir,
                   std::string_view src_name, std::uint64_t dst_dir,
                   std::string_view dst_name) {
  const std::size_t at = begin_frame(out, MsgType::kRename, id);
  put_u64(out.bytes, src_dir);
  put_u64(out.bytes, dst_dir);
  put_u16(out.bytes, static_cast<std::uint16_t>(src_name.size()));
  put_u16(out.bytes, static_cast<std::uint16_t>(dst_name.size()));
  out.bytes.insert(out.bytes.end(), src_name.begin(), src_name.end());
  out.bytes.insert(out.bytes.end(), dst_name.begin(), dst_name.end());
  end_frame(out, at);
}

void encode_reply(WireBuf& out, const Reply& r) {
  const std::size_t at = begin_frame(out, MsgType::kReply, r.id);
  out.bytes.push_back(static_cast<std::uint8_t>(r.status));
  put_u64(out.bytes, r.inode);
  end_frame(out, at);
}

namespace {

/// Body cursor: sequential reads that fail closed on truncation.
struct Cursor {
  const std::uint8_t* p;
  std::size_t left;
  bool ok = true;

  std::uint64_t u64() {
    if (left < 8) {
      ok = false;
      return 0;
    }
    const std::uint64_t v = get_u64(p);
    p += 8;
    left -= 8;
    return v;
  }
  std::uint16_t u16() {
    if (left < 2) {
      ok = false;
      return 0;
    }
    const std::uint16_t v = get_u16(p);
    p += 2;
    left -= 2;
    return v;
  }
  std::uint8_t u8() {
    if (left < 1) {
      ok = false;
      return 0;
    }
    const std::uint8_t v = *p;
    p += 1;
    left -= 1;
    return v;
  }
  std::string_view str(std::size_t n) {
    if (left < n || n > kMaxNameBytes) {
      ok = false;
      return {};
    }
    const auto* s = reinterpret_cast<const char*>(p);
    p += n;
    left -= n;
    return {s, n};
  }
};

}  // namespace

Decoded decode_frame(const std::uint8_t* data, std::size_t len) {
  Decoded d;
  if (len < 4) return d;  // kNeedMore
  const std::uint32_t frame_len = get_u32(data);
  if (frame_len < kHeaderBytes - 4 || frame_len > kMaxFrameBytes) {
    d.status = DecodeStatus::kCorrupt;
    return d;
  }
  if (len < 4 + frame_len) return d;  // kNeedMore
  d.consumed = 4 + frame_len;

  const std::uint8_t* p = data + 4;
  if (get_u16(p) != kMagic || p[2] != kWireVersion) {
    d.status = DecodeStatus::kCorrupt;
    return d;
  }
  const auto type = static_cast<MsgType>(p[3]);
  const std::uint64_t id = get_u64(p + 4);
  Cursor c{p + kHeaderBytes - 4, frame_len - (kHeaderBytes - 4)};

  switch (type) {
    case MsgType::kPing:
      d.request = {type, id, 0, 0, {}, {}};
      break;
    case MsgType::kCreate:
    case MsgType::kMkdir:
    case MsgType::kRemove: {
      const std::uint64_t dir = c.u64();
      const std::uint16_t n = c.u16();
      d.request = {type, id, dir, 0, c.str(n), {}};
      break;
    }
    case MsgType::kRename: {
      const std::uint64_t src = c.u64();
      const std::uint64_t dst = c.u64();
      const std::uint16_t sn = c.u16();
      const std::uint16_t dn = c.u16();
      d.request = {type, id, src, dst, c.str(sn), c.str(dn)};
      break;
    }
    case MsgType::kCreateSpread: {
      const std::uint8_t width = c.u8();
      const std::uint64_t dir = c.u64();
      const std::uint16_t n = c.u16();
      d.request = {type, id, dir, 0, c.str(n), {}, width};
      // width <= 2 is a protocol violation (width 2 is spelled kCreate);
      // a peer that sends it disagrees with us about the format.
      if (width < 3) {
        d.status = DecodeStatus::kCorrupt;
        return d;
      }
      break;
    }
    case MsgType::kReply: {
      const std::uint8_t status = c.u8();
      if (status > static_cast<std::uint8_t>(Status::kShutdown)) {
        d.status = DecodeStatus::kCorrupt;
        return d;
      }
      d.reply = {id, static_cast<Status>(status), c.u64()};
      break;
    }
    default:
      d.status = DecodeStatus::kCorrupt;
      return d;
  }
  // The declared length must match what the body actually used: trailing
  // garbage inside a frame means the peer and we disagree on the format.
  if (!c.ok || c.left != 0) {
    d.status = DecodeStatus::kCorrupt;
    return d;
  }
  d.status = type == MsgType::kReply ? DecodeStatus::kReply
                                     : DecodeStatus::kRequest;
  return d;
}

}  // namespace opc::rpc
