#include "rpc/client.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace opc::rpc {
namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

void RpcClient::fail(const std::string& why) {
  if (error_.empty()) error_ = why;
}

bool RpcClient::connect_uds(const std::string& path, double deadline_wall) {
  const double deadline = wall_now() + deadline_wall;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    fail("uds path too long");
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  // Retry until the deadline: the server may still be binding, and a
  // listen backlog overflow on UDS shows up as ECONNREFUSED/EAGAIN too.
  while (true) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      fail(std::string("socket: ") + std::strerror(errno));
      return false;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      fd_ = fd;
      if (!set_nonblocking(fd_)) {
        fail("fcntl(O_NONBLOCK)");
        close();
        return false;
      }
      return true;
    }
    const int err = errno;
    ::close(fd);
    if (wall_now() >= deadline) {
      fail(std::string("connect(uds): ") + std::strerror(err));
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

bool RpcClient::connect_tcp(std::uint16_t port, double deadline_wall) {
  const double deadline = wall_now() + deadline_wall;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      fail(std::string("socket: ") + std::strerror(errno));
      return false;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      fd_ = fd;
      const int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (!set_nonblocking(fd_)) {
        fail("fcntl(O_NONBLOCK)");
        close();
        return false;
      }
      return true;
    }
    const int err = errno;
    ::close(fd);
    if (wall_now() >= deadline) {
      fail(std::string("connect(tcp): ") + std::strerror(err));
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void RpcClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t RpcClient::send_ping() {
  const std::uint64_t id = next_id_++;
  encode_ping(wr_, id);
  return id;
}

std::uint64_t RpcClient::send_create(std::uint64_t dir, std::string_view name,
                                     bool is_dir) {
  const std::uint64_t id = next_id_++;
  encode_create(wr_, id, dir, name, is_dir);
  return id;
}

std::uint64_t RpcClient::send_create_spread(std::uint64_t dir,
                                            std::string_view name,
                                            std::uint8_t width) {
  const std::uint64_t id = next_id_++;
  encode_create_spread(wr_, id, dir, name, width);
  return id;
}

std::uint64_t RpcClient::send_remove(std::uint64_t dir,
                                     std::string_view name) {
  const std::uint64_t id = next_id_++;
  encode_remove(wr_, id, dir, name);
  return id;
}

std::uint64_t RpcClient::send_rename(std::uint64_t src_dir,
                                     std::string_view src_name,
                                     std::uint64_t dst_dir,
                                     std::string_view dst_name) {
  const std::uint64_t id = next_id_++;
  encode_rename(wr_, id, src_dir, src_name, dst_dir, dst_name);
  return id;
}

/// Single socket pump: pushes pending writes, pulls and decodes inbound
/// bytes.  With `want_reply`, returns once `ready_` is non-empty; without,
/// returns once the write buffer drained.  False on timeout/error.
bool RpcClient::pump(bool want_reply, double timeout_s) {
  if (broken()) return false;
  if (fd_ < 0) {
    fail("not connected");
    return false;
  }
  const double deadline = wall_now() + timeout_s;

  while (true) {
    // Write what we can.
    while (wr_.unread() > 0) {
      const ssize_t n = ::send(fd_, wr_.data(), wr_.unread(), MSG_NOSIGNAL);
      if (n > 0) {
        wr_.offset += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      fail(std::string("send: ") + std::strerror(errno));
      return false;
    }
    wr_.compact();

    // Read and decode what arrived.  EOF is judged only after decoding:
    // replies that landed in the same batch as the close still count.
    bool saw_eof = false;
    while (true) {
      std::uint8_t buf[16384];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        rd_.bytes.insert(rd_.bytes.end(), buf, buf + n);
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n == 0) {
        saw_eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      fail(std::string("recv: ") + std::strerror(errno));
      return false;
    }
    while (true) {
      const Decoded d = decode_frame(rd_.data(), rd_.unread());
      if (d.status == DecodeStatus::kNeedMore) break;
      if (d.status != DecodeStatus::kReply) {
        fail("corrupt frame from server");
        return false;
      }
      ready_.push_back(d.reply);
      ++received_;
      rd_.offset += d.consumed;
    }
    rd_.compact();

    if (want_reply ? !ready_.empty() : wr_.unread() == 0) return true;
    if (saw_eof) {
      if (outstanding() > 0 || wr_.unread() > 0) {
        fail("server closed connection with requests outstanding");
      } else {
        fail("server closed connection");
      }
      return false;
    }
    const double left = deadline - wall_now();
    if (left <= 0) return false;

    pollfd p{fd_, POLLIN, 0};
    if (wr_.unread() > 0) p.events |= POLLOUT;
    const int timeout_ms = static_cast<int>(left * 1000) + 1;
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0 && errno != EINTR) {
      fail(std::string("poll: ") + std::strerror(errno));
      return false;
    }
  }
}

bool RpcClient::flush(double timeout_s) { return pump(false, timeout_s); }

bool RpcClient::recv_reply(Reply& out, double timeout_s) {
  if (ready_.empty() && !pump(true, timeout_s)) return false;
  out = ready_.front();
  ready_.pop_front();
  return true;
}

bool RpcClient::wait_for(std::uint64_t id, Reply& out, double timeout_s) {
  const double deadline = wall_now() + timeout_s;
  while (true) {
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      if (ready_[i].id == id) {
        out = ready_[i];
        ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    const double left = deadline - wall_now();
    if (left <= 0 || !pump(true, left)) return false;
  }
}

bool RpcClient::call_ping(Reply& out, double timeout_s) {
  const std::uint64_t id = send_ping();
  return wait_for(id, out, timeout_s);
}

bool RpcClient::call_create(std::uint64_t dir, std::string_view name,
                            bool is_dir, Reply& out, double timeout_s) {
  const std::uint64_t id = send_create(dir, name, is_dir);
  return wait_for(id, out, timeout_s);
}

}  // namespace opc::rpc
