#include "rpc/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rpc/client.h"
#include "sim/rng.h"

namespace opc::rpc {
namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Zipf(s) sampler over 1..n via a precomputed CDF + binary search.
class ZipfPicker {
 public:
  ZipfPicker(std::uint32_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (std::uint32_t k = 1; k <= n; ++k) {
      total += s == 0.0 ? 1.0 : 1.0 / std::pow(static_cast<double>(k), s);
      cdf_[k - 1] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  [[nodiscard]] std::uint64_t pick(double u01) const {
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u01);
    return static_cast<std::uint64_t>(it - cdf_.begin()) + 1;  // dir ids 1..n
  }

 private:
  std::vector<double> cdf_;
};

enum class Op : std::uint8_t { kCreate, kMkdir, kRename };

struct PendingReq {
  double scheduled = 0.0;  // wall seconds: latency baseline (open loop)
  Op op = Op::kCreate;
  std::uint64_t dir = 0;
  std::string name;  // create: new entry; rename: destination entry
};

struct ThreadResult {
  LoadgenResult r;  // per-thread slice; merged by run_loadgen
};

void worker(const LoadgenConfig& cfg, std::uint32_t t, double start,
            ThreadResult* out) {
  LoadgenResult& res = out->r;
  RpcClient client;
  const bool connected =
      cfg.tcp_port != 0 ? client.connect_tcp(cfg.tcp_port)
                        : client.connect_uds(cfg.uds_path);
  if (!connected) {
    res.transport_errors = 1;
    res.error = client.error();
    return;
  }

  Rng rng(cfg.seed, /*stream=*/t + 1);
  const ZipfPicker zipf(cfg.n_dirs, cfg.zipf_s);
  const double thread_rate = cfg.rate / cfg.threads;
  const Duration mean_gap = Duration::from_seconds_f(1.0 / thread_rate);
  const double w_create = cfg.create_weight;
  const double w_mkdir = w_create + cfg.mkdir_weight;
  const double w_total = w_mkdir + cfg.rename_weight;

  const double end = start + cfg.duration.to_seconds_f();
  std::unordered_map<std::uint64_t, PendingReq> pending;
  // Names whose create was acknowledged OK, per directory — the only
  // legal rename sources.
  std::unordered_map<std::uint64_t, std::vector<std::string>> confirmed;
  std::uint64_t seq = 0;

  auto consume = [&](const Reply& rep) {
    const auto it = pending.find(rep.id);
    if (it == pending.end()) return;  // duplicate id cannot happen; be safe
    const PendingReq& pr = it->second;
    switch (rep.status) {
      case Status::kOk:
        ++res.ok;
        res.latency.record((wall_now() - pr.scheduled) * 1e9);
        confirmed[pr.dir].push_back(pr.name);
        break;
      case Status::kAborted:
        ++res.aborted;
        res.latency.record((wall_now() - pr.scheduled) * 1e9);
        break;
      case Status::kBusy: ++res.busy; break;
      case Status::kNotFound: ++res.not_found; break;
      case Status::kBadRequest: ++res.bad_request; break;
      case Status::kTimeout: ++res.timeouts; break;
      case Status::kShutdown: ++res.shutdown; break;
    }
    pending.erase(it);
  };

  double scheduled = start;
  bool broken = false;
  while (!broken) {
    scheduled += rng.exponential(mean_gap).to_seconds_f();
    if (scheduled >= end) break;

    // Between arrivals: push pending writes and absorb replies.
    while (true) {
      const double gap = scheduled - wall_now();
      if (gap <= 0) break;
      Reply rep;
      if (client.recv_reply(rep, gap)) {
        consume(rep);
      } else if (client.broken()) {
        broken = true;
        break;
      }
      // recv_reply timing out just means the arrival time came.
    }
    if (broken) break;

    if (client.outstanding() >= cfg.max_outstanding) {
      ++res.skipped;
      continue;
    }

    const double u = rng.uniform01() * w_total;
    const std::uint64_t dir = zipf.pick(rng.uniform01());
    std::uint64_t id = 0;
    PendingReq pr;
    pr.scheduled = scheduled;
    pr.dir = dir;
    const auto send_one_create = [&](bool is_dir) {
      if (!is_dir && cfg.participants > 2) {
        return client.send_create_spread(
            dir, pr.name, static_cast<std::uint8_t>(cfg.participants));
      }
      return client.send_create(dir, pr.name, is_dir);
    };
    if (u < w_create || u < w_mkdir) {
      pr.op = u < w_create ? Op::kCreate : Op::kMkdir;
      pr.name = "t" + std::to_string(t) + "_" + std::to_string(seq++);
      id = send_one_create(pr.op == Op::kMkdir);
    } else {
      auto& names = confirmed[dir];
      if (names.empty()) {  // nothing to rename here yet: create instead
        pr.op = Op::kCreate;
        pr.name = "t" + std::to_string(t) + "_" + std::to_string(seq++);
        id = send_one_create(false);
      } else {
        pr.op = Op::kRename;
        const std::string src = std::move(names.back());
        names.pop_back();
        pr.name = "t" + std::to_string(t) + "_r" + std::to_string(seq++);
        id = client.send_rename(dir, src, dir, pr.name);
      }
    }
    ++res.sent;
    pending.emplace(id, std::move(pr));
    if (!client.flush(/*timeout_s=*/1.0) && client.broken()) broken = true;
  }

  // Drain stragglers.  Keyed on `pending`, not client.outstanding(): a
  // reply can already be decoded into the client's ready queue (during a
  // flush) without having been consumed here, and it must not count lost.
  const double drain_end = wall_now() + cfg.drain_timeout_s;
  while (!broken && !pending.empty() && wall_now() < drain_end) {
    Reply rep;
    if (client.recv_reply(rep, std::min(1.0, drain_end - wall_now()))) {
      consume(rep);
    } else if (client.broken()) {
      broken = true;
    }
  }

  if (broken) {
    res.transport_errors = 1;
    res.error = client.error();
  }
  res.lost = pending.size();
}

}  // namespace

LoadgenResult run_loadgen(const LoadgenConfig& cfg) {
  LoadgenConfig c = cfg;
  if (c.threads == 0) c.threads = 1;
  if (c.rate <= 0.0) c.rate = 1.0;
  if (c.n_dirs == 0) c.n_dirs = 1;
  if (c.participants < 2) c.participants = 2;

  std::vector<ThreadResult> slices(c.threads);
  const double start = wall_now() + 0.05;  // common epoch for all threads
  std::vector<std::thread> threads;
  threads.reserve(c.threads);
  for (std::uint32_t t = 0; t < c.threads; ++t) {
    threads.emplace_back(worker, std::cref(c), t, start, &slices[t]);
  }
  for (auto& th : threads) th.join();
  const double wall = wall_now() - start;

  LoadgenResult total;
  for (const ThreadResult& s : slices) {
    total.sent += s.r.sent;
    total.ok += s.r.ok;
    total.aborted += s.r.aborted;
    total.busy += s.r.busy;
    total.not_found += s.r.not_found;
    total.bad_request += s.r.bad_request;
    total.timeouts += s.r.timeouts;
    total.shutdown += s.r.shutdown;
    total.skipped += s.r.skipped;
    total.lost += s.r.lost;
    total.transport_errors += s.r.transport_errors;
    total.latency.merge(s.r.latency);
    if (total.error.empty() && !s.r.error.empty()) total.error = s.r.error;
  }
  total.offered_rate = c.rate;
  total.wall_seconds = wall;
  total.achieved_rate = wall > 0 ? total.answered() / wall : 0.0;
  return total;
}

}  // namespace opc::rpc
