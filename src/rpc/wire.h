// Wire protocol v1: the length-prefixed binary codec `opc serve` speaks.
//
// Every frame is  [u32 length] [u16 magic] [u8 version] [u8 type]
//                 [u64 request id] [type-specific body]
// with all integers little-endian and `length` counting everything after
// the length word itself.  The codec is symmetric (requests and replies
// share the header) and allocation-free on the hot path: encoders append
// into a caller-owned, reused byte buffer and decoders return views into
// the connection's read buffer — no per-frame heap traffic on either side
// (the SBO/slab discipline of the PR-2 kernel, applied to the socket
// boundary).  docs/SERVING.md §2 is the normative description; the codec
// unit tests (tests/rpc/rpc_codec_test.cc) pin round-trips and rejection
// of truncated/corrupt frames.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace opc::rpc {

inline constexpr std::uint16_t kMagic = 0x4F50;  // "PO" on the wire: 'O','P'
inline constexpr std::uint8_t kWireVersion = 1;
/// Hard ceiling on `length`; anything larger is corruption, not a big
/// request (names are capped far below this).
inline constexpr std::uint32_t kMaxFrameBytes = 64 * 1024;
inline constexpr std::size_t kMaxNameBytes = 4096;
inline constexpr std::size_t kHeaderBytes = 4 + 2 + 1 + 1 + 8;

/// Frame types.  1..63 are requests, 64+ are replies.
enum class MsgType : std::uint8_t {
  kPing = 1,    // empty body; replies kOk with inode=0
  kCreate = 2,  // u64 dir, u16 name_len, name       (server allocates inode)
  kMkdir = 3,   // u64 dir, u16 name_len, name       (server allocates inode)
  kRemove = 4,  // u64 dir, u16 name_len, name       (server resolves inode)
  kRename = 5,  // u64 src_dir, u64 dst_dir, u16 src_len, u16 dst_len,
                // src_name, dst_name                (server resolves inode)
  kCreateSpread = 6,  // u8 width, u64 dir, u16 name_len, name
                      // One atomic transaction spanning `width` MDSs: the
                      // named file plus width-2 siblings (name.s1, ...),
                      // each inode on a distinct non-coordinator node.
                      // width must be >= 3 (width 2 is just kCreate).
  kReply = 64,  // u8 status, u64 inode (0 when not applicable)
};

enum class Status : std::uint8_t {
  kOk = 0,        // transaction committed
  kAborted = 1,   // transaction aborted by the protocol
  kBusy = 2,      // shed by backpressure before reaching an engine
  kBadRequest = 3,  // malformed body / unknown op / name too long
  kNotFound = 4,  // remove/rename of a name the namespace does not hold
  kTimeout = 5,   // server-side request deadline elapsed (reply dropped)
  kShutdown = 6,  // server is draining; no new work accepted
};

[[nodiscard]] const char* status_name(Status s);

/// A decoded request, viewing name bytes inside the connection's read
/// buffer — valid only until that buffer is consumed/compacted.
struct Request {
  MsgType op = MsgType::kPing;
  std::uint64_t id = 0;
  std::uint64_t dir = 0;       // create/mkdir/remove: parent directory
  std::uint64_t dir2 = 0;      // rename: destination directory
  std::string_view name;       // create/mkdir/remove: entry; rename: source
  std::string_view name2;      // rename: destination entry
  std::uint8_t width = 0;      // create-spread: participants (>= 3)
};

struct Reply {
  std::uint64_t id = 0;
  Status status = Status::kOk;
  std::uint64_t inode = 0;  // created inode id on kOk create/mkdir
};

/// Reused output buffer: encoders append frames, the socket writer drains
/// from `offset`.  clear() keeps capacity, so a warm connection encodes
/// without allocating.
struct WireBuf {
  std::vector<std::uint8_t> bytes;
  std::size_t offset = 0;  // drained prefix

  [[nodiscard]] std::size_t unread() const { return bytes.size() - offset; }
  [[nodiscard]] const std::uint8_t* data() const { return bytes.data() + offset; }
  void clear() {
    bytes.clear();
    offset = 0;
  }
  /// Drops the drained prefix once it dominates the buffer (amortized O(1)).
  void compact() {
    if (offset == 0) return;
    if (offset == bytes.size()) {
      clear();
    } else if (offset >= 4096 && offset * 2 >= bytes.size()) {
      bytes.erase(bytes.begin(),
                  bytes.begin() + static_cast<std::ptrdiff_t>(offset));
      offset = 0;
    }
  }
};

// ---- encoders (append one frame to `out.bytes`) -------------------------

void encode_ping(WireBuf& out, std::uint64_t id);
void encode_create(WireBuf& out, std::uint64_t id, std::uint64_t dir,
                   std::string_view name, bool is_dir);
void encode_create_spread(WireBuf& out, std::uint64_t id, std::uint64_t dir,
                          std::string_view name, std::uint8_t width);
void encode_remove(WireBuf& out, std::uint64_t id, std::uint64_t dir,
                   std::string_view name);
void encode_rename(WireBuf& out, std::uint64_t id, std::uint64_t src_dir,
                   std::string_view src_name, std::uint64_t dst_dir,
                   std::string_view dst_name);
void encode_reply(WireBuf& out, const Reply& r);

// ---- incremental decoder ------------------------------------------------

enum class DecodeStatus : std::uint8_t {
  kNeedMore,  // buffer holds a frame prefix; read more bytes
  kRequest,   // one request decoded; `consumed` bytes may be dropped
  kReply,     // one reply decoded
  kCorrupt,   // stream is unrecoverable; close the connection
};

struct Decoded {
  DecodeStatus status = DecodeStatus::kNeedMore;
  std::size_t consumed = 0;  // bytes of input this frame occupied
  Request request;
  Reply reply;
};

/// Attempts to decode one frame from `[data, data+len)`.  Never reads past
/// `len`; on kNeedMore nothing is consumed.  Corruption (bad magic/version,
/// oversize length, body/declared-length mismatch, unknown type, embedded
/// truncation) yields kCorrupt — a byte stream cannot be resynchronized.
[[nodiscard]] Decoded decode_frame(const std::uint8_t* data, std::size_t len);

}  // namespace opc::rpc
