// RpcClient: thin synchronous + pipelined client for the opc wire protocol.
//
// Single-threaded by design — one client per loadgen thread.  Two usage
// styles:
//   * synchronous: `call_create(...)` sends, flushes and waits for that
//     request's reply (convenient for tests and scripted sequences);
//   * pipelined: `send_*()` buffers frames and returns the request id,
//     `flush()` pushes them out, `recv_reply()` hands back replies in
//     server-completion order (NOT send order: requests land on different
//     node workers, so completions interleave).  Callers correlate by id.
//
// All sockets are nonblocking; waits are poll()-based with deadlines.  A
// transport error (peer reset, corrupt frame, EOF with outstanding
// requests) marks the client broken — `error()` says why, every later call
// fails fast.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "rpc/wire.h"
#include "sim/time.h"

namespace opc::rpc {

class RpcClient {
 public:
  RpcClient() = default;
  ~RpcClient() { close(); }

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Connects, retrying until `deadline_wall` (steady-clock seconds from
  /// now) so a loadgen can race a server that is still binding.
  [[nodiscard]] bool connect_uds(const std::string& path,
                                 double deadline_wall = 5.0);
  [[nodiscard]] bool connect_tcp(std::uint16_t port,
                                 double deadline_wall = 5.0);
  void close();

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] bool broken() const { return !error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  // ---- pipelined interface ----
  // Buffer one request; returns its id (monotonically increasing, starting
  // at 1).  Nothing hits the socket until flush()/recv_reply().
  std::uint64_t send_ping();
  std::uint64_t send_create(std::uint64_t dir, std::string_view name,
                            bool is_dir = false);
  /// One transaction creating `name` plus width-2 siblings, each inode on a
  /// distinct non-coordinator node (width >= 3; see wire.h kCreateSpread).
  std::uint64_t send_create_spread(std::uint64_t dir, std::string_view name,
                                   std::uint8_t width);
  std::uint64_t send_remove(std::uint64_t dir, std::string_view name);
  std::uint64_t send_rename(std::uint64_t src_dir, std::string_view src_name,
                            std::uint64_t dst_dir, std::string_view dst_name);

  /// Writes buffered frames; on a full socket buffer, polls and also drains
  /// inbound replies (never deadlocks against a server blocked on write).
  [[nodiscard]] bool flush(double timeout_s = 5.0);

  /// Next reply in arrival order.  False on timeout or transport error
  /// (check broken() to tell them apart).
  [[nodiscard]] bool recv_reply(Reply& out, double timeout_s = 5.0);

  /// Requests sent (or buffered) whose reply has not been received yet.
  [[nodiscard]] std::uint64_t outstanding() const {
    return next_id_ - 1 - received_;
  }

  // ---- synchronous conveniences (send + flush + wait for *this* id) ----
  [[nodiscard]] bool call_ping(Reply& out, double timeout_s = 5.0);
  [[nodiscard]] bool call_create(std::uint64_t dir, std::string_view name,
                                 bool is_dir, Reply& out,
                                 double timeout_s = 5.0);

 private:
  [[nodiscard]] bool finish_connect(double deadline_wall);
  [[nodiscard]] bool pump(bool want_reply, double timeout_s);
  [[nodiscard]] bool wait_for(std::uint64_t id, Reply& out, double timeout_s);
  void fail(const std::string& why);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::uint64_t received_ = 0;
  WireBuf wr_;
  WireBuf rd_;
  std::deque<Reply> ready_;
  std::string error_;
};

}  // namespace opc::rpc
