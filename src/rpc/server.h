// RpcServer: the real ingress in front of an RtCluster.
//
// Accepts TCP (127.0.0.1) and/or Unix-domain connections, speaks the wire
// codec (src/rpc/wire.h), and turns each request into a distributed
// transaction submitted to the owning node's engine on that node's RtEnv
// worker — the engines stay single-threaded per node; the server only
// crosses threads through Env::post and per-connection mutexes.
//
// Threading model:
//   * `event_threads` poll loops own the sockets.  Each connection belongs
//     to exactly one loop; reads, frame decoding, and writes happen there.
//   * Requests are posted to the coordinator node's worker (the home MDS
//     of the parent directory, as in the simulated planner).  The engine's
//     completion callback runs on that worker and appends the encoded
//     reply to the connection's outbox (mutex-guarded), then wakes the
//     owning loop through its self-pipe.
//
// Backpressure: admitted requests are bounded by `max_inflight` across the
// whole server.  A request over the bound is answered BUSY immediately on
// the event loop — bounded memory and bounded queueing delay instead of an
// unbounded queue (docs/SERVING.md §3).  Replies to dead connections are
// dropped; the transaction still runs to completion, so RtEnv::wait_idle
// cannot hang on a vanished client.
//
// Shutdown: stop() closes the listeners, answers new requests SHUTDOWN,
// waits for every admitted transaction to complete (drain), flushes
// sockets, then joins the loops.  `opc serve` drives this from SIGINT.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mds/namespace.h"
#include "rpc/wire.h"
#include "rt/rt_cluster.h"
#include "rt/storm_plan.h"
#include "stats/counters.h"

namespace opc::rpc {

struct RpcServerConfig {
  std::string uds_path;        // listen on this UDS path when non-empty
  std::uint16_t tcp_port = 0;  // listen on 127.0.0.1:port when > 0
  bool tcp = false;            // listen on TCP (port 0 = ephemeral)
  std::uint32_t event_threads = 1;
  /// Bound on concurrently admitted (engine-submitted) requests across the
  /// server; requests beyond it are shed with Status::kBusy.
  std::uint32_t max_inflight = 1024;
  /// Server-side deadline per admitted request; zero disables.  On expiry
  /// the client gets Status::kTimeout and the transaction's eventual
  /// completion is dropped (the transaction itself is never cancelled).
  Duration request_timeout = Duration::zero();
};

class RpcServer {
 public:
  /// The server plans transactions with the same StridedPartitioner the
  /// storm plan uses: directory ids 1..n_nodes are the bootstrap hot
  /// directories, homed on node id-1; created inodes get ids allocated
  /// above `StridedPartitioner::inode_base()`.
  RpcServer(RtCluster& cluster, RpcServerConfig cfg);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens and spawns the event loops.  False on any socket error
  /// (logged to stderr).  Call at most once.
  [[nodiscard]] bool start();

  /// Graceful drain (idempotent): stop accepting, shed new requests with
  /// SHUTDOWN, wait until every admitted transaction completed, flush and
  /// close connections, join loops.
  void stop();

  /// Actual TCP port (after an ephemeral bind), 0 when TCP is off.
  [[nodiscard]] std::uint16_t tcp_port() const { return bound_port_; }

  /// Admitted requests currently inside an engine.
  [[nodiscard]] std::uint64_t inflight() const {
    return static_cast<std::uint64_t>(inflight_.load(std::memory_order_relaxed));
  }

  /// Folds the server's counters into `stats` under "rpc.*" names
  /// (docs/OBSERVABILITY.md §4).  Safe any time; exact once quiescent.
  void export_stats(StatsRegistry& stats) const;

  [[nodiscard]] std::uint64_t committed() const {
    return committed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t busy_count() const {
    return busy_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    std::uint32_t loop = 0;
    WireBuf rd;  // raw inbound bytes (decoded in place)
    WireBuf wr;  // loop-owned outbound bytes
    // --- cross-thread state (mu) ---
    std::mutex mu;
    std::vector<std::uint8_t> outbox;  // replies encoded off-loop
    // Admitted requests awaiting an engine completion: id -> deadline
    // (SimTime::max() when timeouts are off).  A completion that finds its
    // id gone was timed out (or the request was never admitted) — drop.
    std::unordered_map<std::uint64_t, SimTime> pending;
    bool closed = false;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  struct Loop {
    std::thread thread;
    int wake_rd = -1;  // self-pipe: worker threads poke the poll loop
    int wake_wr = -1;
    std::mutex mu;
    std::vector<ConnPtr> incoming;  // accepted conns waiting for adoption
    std::vector<ConnPtr> conns;     // loop-thread-owned
  };

  void loop_main(std::uint32_t index);
  void wake(std::uint32_t loop);
  void adopt_incoming(Loop& lp, std::uint32_t index);
  void accept_ready(int listen_fd);
  /// Returns false when the connection must be closed.
  bool read_ready(const ConnPtr& c);
  bool write_ready(const ConnPtr& c);
  void drain_outbox(const ConnPtr& c);
  void close_conn(Loop& lp, const ConnPtr& c);
  void scan_timeouts(Loop& lp);

  void handle_request(const ConnPtr& c, const Request& req);
  /// Engine-side half: plan + submit on the coordinator's worker thread.
  void submit_on_worker(const ConnPtr& c, MsgType op, std::uint64_t dir,
                        std::uint64_t dir2, std::string name,
                        std::string name2, std::uint64_t id,
                        std::uint8_t width);
  void complete(const ConnPtr& c, std::uint64_t id, Status st,
                std::uint64_t inode);
  /// Direct reply from the event loop (never entered `pending`).
  static void reply_now(const ConnPtr& c, std::uint64_t id, Status st,
                        std::uint64_t inode = 0);

  RtCluster& cluster_;
  RpcServerConfig cfg_;
  StridedPartitioner part_;
  NamespacePlanner planner_;
  std::atomic<std::uint64_t> next_inode_;

  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<int> listen_fds_;
  std::uint16_t bound_port_ = 0;
  std::atomic<std::uint32_t> next_loop_{0};  // round-robin conn placement
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_{false};
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<std::int64_t> inflight_{0};
  // Counters (docs/OBSERVABILITY.md §4, "rpc.*").
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> replies_{0};
  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::uint64_t> aborted_{0};
  std::atomic<std::uint64_t> busy_{0};
  std::atomic<std::uint64_t> not_found_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> corrupt_frames_{0};
  std::atomic<std::uint64_t> conns_closed_{0};
  std::atomic<std::uint64_t> shed_shutdown_{0};
};

}  // namespace opc::rpc
