// Open-loop load generator for the opc serving path.
//
// Each thread owns one RpcClient and fires requests at Poisson arrival
// times drawn for a fixed offered rate — arrivals do NOT wait for replies.
// Latency is measured from the *scheduled* arrival time, not the send
// time, so queueing delay inside the generator (and the server pushing
// back) shows up in the tail instead of being silently omitted — the
// coordinated-omission trap a closed-loop generator falls into
// (docs/SERVING.md §5).
//
// Workload shape: a create/mkdir/rename mix over hot directories 1..n_dirs
// with optional Zipf(s) skew.  Renames only touch names whose create has
// already been acknowledged, so the offered stream is always semantically
// valid and aborts measure protocol behaviour, not generator races.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"
#include "stats/histogram.h"

namespace opc::rpc {

struct LoadgenConfig {
  // Target: exactly one of uds_path / tcp_port.
  std::string uds_path;
  std::uint16_t tcp_port = 0;

  std::uint32_t threads = 4;
  double rate = 10000.0;  // offered ops/s across all threads
  Duration duration = Duration::seconds(10);
  std::uint64_t seed = 1;

  std::uint32_t n_dirs = 3;  // request dirs 1..n_dirs (must be bootstrapped)
  double zipf_s = 0.0;       // directory skew exponent; 0 = uniform

  /// Participants per create transaction.  2 sends classic kCreate; >2
  /// sends kCreateSpread so the server plans one atomic create spanning
  /// participants MDSs (must be <= the server's cluster size, else the
  /// server answers BadRequest).  Mkdirs and renames are unaffected.
  std::uint32_t participants = 2;

  // Op mix weights (normalized internally).
  double create_weight = 0.8;
  double mkdir_weight = 0.1;
  double rename_weight = 0.1;

  /// Safety valve: past this many unanswered requests a thread skips sends
  /// (counted in `skipped`) instead of growing without bound — an overload
  /// signal, not a normal-operation path.
  std::uint64_t max_outstanding = 100000;

  /// Extra wall time after the offered window to collect stragglers.
  double drain_timeout_s = 15.0;
};

struct LoadgenResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;         // committed
  std::uint64_t aborted = 0;    // protocol abort
  std::uint64_t busy = 0;       // shed by server backpressure
  std::uint64_t not_found = 0;
  std::uint64_t bad_request = 0;
  std::uint64_t timeouts = 0;   // server-side request deadline replies
  std::uint64_t shutdown = 0;   // server draining
  std::uint64_t skipped = 0;    // suppressed by max_outstanding
  std::uint64_t lost = 0;       // sent but never answered
  std::uint64_t transport_errors = 0;  // threads that hit a socket error
  Histogram latency;            // ns, scheduled-arrival -> reply, ok+aborted
  double offered_rate = 0.0;
  double achieved_rate = 0.0;   // answered (ok+aborted) per wall second
  double wall_seconds = 0.0;
  std::string error;            // first transport error message, if any

  /// Replies that reflect a server-processed transaction.
  [[nodiscard]] std::uint64_t answered() const { return ok + aborted; }
  /// Anything that violates the "zero lost/errored replies" bar.
  [[nodiscard]] std::uint64_t hard_failures() const {
    return lost + transport_errors + bad_request;
  }
};

/// Runs the generator to completion (blocks for ~duration + drain).
[[nodiscard]] LoadgenResult run_loadgen(const LoadgenConfig& cfg);

}  // namespace opc::rpc
