#include "rpc/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

namespace opc::rpc {
namespace {

constexpr int kPollMillis = 10;
constexpr std::size_t kReadChunk = 16384;

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void perror_tag(const char* what) {
  std::fprintf(stderr, "rpc: %s: %s\n", what, std::strerror(errno));
}

}  // namespace

RpcServer::RpcServer(RtCluster& cluster, RpcServerConfig cfg)
    : cluster_(cluster), cfg_(std::move(cfg)), part_(cluster.size()),
      planner_(part_, OpCosts{}), next_inode_(part_.inode_base()) {
  if (cfg_.event_threads == 0) cfg_.event_threads = 1;
  if (cfg_.max_inflight == 0) cfg_.max_inflight = 1;
}

RpcServer::~RpcServer() { stop(); }

bool RpcServer::start() {
  if (started_) return false;
  started_ = true;

  if (!cfg_.uds_path.empty()) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      perror_tag("socket(AF_UNIX)");
      return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.uds_path.size() >= sizeof(addr.sun_path)) {
      std::fprintf(stderr, "rpc: UDS path too long: %s\n",
                   cfg_.uds_path.c_str());
      ::close(fd);
      return false;
    }
    std::strncpy(addr.sun_path, cfg_.uds_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(cfg_.uds_path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0 || !set_nonblocking(fd)) {
      perror_tag("bind/listen(uds)");
      ::close(fd);
      return false;
    }
    listen_fds_.push_back(fd);
  }

  if (cfg_.tcp || cfg_.tcp_port != 0) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      perror_tag("socket(AF_INET)");
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(cfg_.tcp_port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0 || !set_nonblocking(fd)) {
      perror_tag("bind/listen(tcp)");
      ::close(fd);
      return false;
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    bound_port_ = ntohs(bound.sin_port);
    listen_fds_.push_back(fd);
  }

  if (listen_fds_.empty()) {
    std::fprintf(stderr, "rpc: no listen endpoint configured\n");
    return false;
  }

  for (std::uint32_t i = 0; i < cfg_.event_threads; ++i) {
    auto lp = std::make_unique<Loop>();
    int pipefd[2];
    if (::pipe(pipefd) != 0 || !set_nonblocking(pipefd[0]) ||
        !set_nonblocking(pipefd[1])) {
      perror_tag("pipe");
      return false;
    }
    lp->wake_rd = pipefd[0];
    lp->wake_wr = pipefd[1];
    loops_.push_back(std::move(lp));
  }
  for (std::uint32_t i = 0; i < cfg_.event_threads; ++i) {
    loops_[i]->thread = std::thread([this, i] { loop_main(i); });
  }
  return true;
}

void RpcServer::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;

  // 1. Shed new work: loop 0 closes the listeners, every loop answers new
  //    requests with SHUTDOWN from here on.
  stopping_.store(true, std::memory_order_release);
  for (std::uint32_t i = 0; i < loops_.size(); ++i) wake(i);

  // 2. Drain: every admitted transaction runs to completion (the engines
  //    never cancel), so inflight_ must reach zero.
  while (inflight_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // 3. Flush and exit: loops push remaining outboxes onto the sockets,
  //    close their connections and return.
  shutdown_.store(true, std::memory_order_release);
  for (std::uint32_t i = 0; i < loops_.size(); ++i) wake(i);
  for (auto& lp : loops_) {
    if (lp->thread.joinable()) lp->thread.join();
    ::close(lp->wake_rd);
    ::close(lp->wake_wr);
  }
  for (const int fd : listen_fds_) {
    if (fd >= 0) ::close(fd);
  }
  listen_fds_.clear();
  if (!cfg_.uds_path.empty()) ::unlink(cfg_.uds_path.c_str());
}

void RpcServer::wake(std::uint32_t loop) {
  const char b = 1;
  [[maybe_unused]] const ssize_t n = ::write(loops_[loop]->wake_wr, &b, 1);
}

void RpcServer::export_stats(StatsRegistry& stats) const {
  auto set = [&stats](std::string_view name,
                      const std::atomic<std::uint64_t>& v) {
    stats.set(name, static_cast<std::int64_t>(v.load(std::memory_order_relaxed)));
  };
  set("rpc.conns.accepted", accepted_);
  set("rpc.conns.closed", conns_closed_);
  set("rpc.requests", requests_);
  set("rpc.replies", replies_);
  set("rpc.committed", committed_);
  set("rpc.aborted", aborted_);
  set("rpc.busy", busy_);
  set("rpc.not_found", not_found_);
  set("rpc.bad_requests", bad_requests_);
  set("rpc.timeouts", timeouts_);
  set("rpc.corrupt_frames", corrupt_frames_);
  set("rpc.shed_shutdown", shed_shutdown_);
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void RpcServer::loop_main(std::uint32_t index) {
  Loop& lp = *loops_[index];
  bool listeners_closed = false;
  std::vector<pollfd> pfds;
  std::vector<ConnPtr> pfd_conn;  // parallel to pfds; null for non-conn fds

  while (true) {
    const bool flushing = shutdown_.load(std::memory_order_acquire);
    adopt_incoming(lp, index);
    if (index == 0 && stopping_.load(std::memory_order_acquire) &&
        !listeners_closed) {
      for (const int fd : listen_fds_) ::close(fd);
      listen_fds_.clear();
      listeners_closed = true;
    }

    // Move worker-encoded replies into loop-owned write buffers.
    for (const ConnPtr& c : lp.conns) drain_outbox(c);

    if (flushing) break;

    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({lp.wake_rd, POLLIN, 0});
    pfd_conn.push_back(nullptr);
    if (index == 0 && !listeners_closed) {
      for (const int fd : listen_fds_) {
        pfds.push_back({fd, POLLIN, 0});
        pfd_conn.push_back(nullptr);
      }
    }
    for (const ConnPtr& c : lp.conns) {
      short events = POLLIN;
      if (c->wr.unread() > 0) events |= POLLOUT;
      pfds.push_back({c->fd, events, 0});
      pfd_conn.push_back(c);
    }

    if (::poll(pfds.data(), pfds.size(), kPollMillis) < 0 && errno != EINTR) {
      perror_tag("poll");
      break;
    }

    std::vector<ConnPtr> dead;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const short re = pfds[i].revents;
      if (re == 0) continue;
      if (pfd_conn[i] == nullptr) {
        if (pfds[i].fd == lp.wake_rd) {
          char buf[256];
          while (::read(lp.wake_rd, buf, sizeof(buf)) > 0) {
          }
        } else {
          accept_ready(pfds[i].fd);
        }
        continue;
      }
      const ConnPtr& c = pfd_conn[i];
      bool ok = true;
      if ((re & (POLLERR | POLLNVAL)) != 0) ok = false;
      if (ok && (re & (POLLIN | POLLHUP)) != 0) ok = read_ready(c);
      if (ok) drain_outbox(c);
      if (ok && c->wr.unread() > 0) ok = write_ready(c);
      if (!ok) dead.push_back(c);
    }
    for (const ConnPtr& c : dead) close_conn(lp, c);

    if (cfg_.request_timeout > Duration::zero()) scan_timeouts(lp);
  }

  // Final flush: bounded effort to land already-encoded replies, then close.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  for (const ConnPtr& c : lp.conns) {
    drain_outbox(c);
    while (c->wr.unread() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      pollfd p{c->fd, POLLOUT, 0};
      if (::poll(&p, 1, 50) <= 0) continue;
      if (!write_ready(c)) break;
    }
  }
  std::vector<ConnPtr> all = lp.conns;
  for (const ConnPtr& c : all) close_conn(lp, c);
}

void RpcServer::adopt_incoming(Loop& lp, std::uint32_t index) {
  (void)index;
  std::vector<ConnPtr> fresh;
  {
    std::lock_guard<std::mutex> lk(lp.mu);
    fresh.swap(lp.incoming);
  }
  for (ConnPtr& c : fresh) lp.conns.push_back(std::move(c));
}

void RpcServer::accept_ready(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR &&
          errno != ECONNABORTED) {
        perror_tag("accept");
      }
      return;
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepted_.fetch_add(1, std::memory_order_relaxed);

    auto c = std::make_shared<Conn>();
    c->fd = fd;
    c->loop = next_loop_.fetch_add(1, std::memory_order_relaxed) %
              static_cast<std::uint32_t>(loops_.size());
    {
      Loop& target = *loops_[c->loop];
      std::lock_guard<std::mutex> lk(target.mu);
      target.incoming.push_back(c);
    }
    wake(c->loop);
  }
}

bool RpcServer::read_ready(const ConnPtr& c) {
  while (true) {
    std::uint8_t buf[kReadChunk];
    const ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    c->rd.bytes.insert(c->rd.bytes.end(), buf, buf + n);
    if (static_cast<std::size_t>(n) < sizeof(buf)) break;
  }

  while (true) {
    const Decoded d = decode_frame(c->rd.data(), c->rd.unread());
    if (d.status == DecodeStatus::kNeedMore) break;
    if (d.status != DecodeStatus::kRequest) {
      // Corrupt bytes, or a reply frame sent at a server: both mean the
      // peer lost the plot — a length-prefixed stream can't resync.
      corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    handle_request(c, d.request);
    c->rd.offset += d.consumed;
  }
  c->rd.compact();
  return true;
}

bool RpcServer::write_ready(const ConnPtr& c) {
  while (c->wr.unread() > 0) {
    const ssize_t n =
        ::send(c->fd, c->wr.data(), c->wr.unread(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    c->wr.offset += static_cast<std::size_t>(n);
  }
  c->wr.compact();
  return true;
}

void RpcServer::drain_outbox(const ConnPtr& c) {
  std::lock_guard<std::mutex> lk(c->mu);
  if (c->outbox.empty()) return;
  c->wr.bytes.insert(c->wr.bytes.end(), c->outbox.begin(), c->outbox.end());
  c->outbox.clear();
}

void RpcServer::close_conn(Loop& lp, const ConnPtr& c) {
  {
    std::lock_guard<std::mutex> lk(c->mu);
    if (c->closed) return;
    c->closed = true;
  }
  ::close(c->fd);
  conns_closed_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < lp.conns.size(); ++i) {
    if (lp.conns[i] == c) {
      lp.conns.erase(lp.conns.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  // Entries left in c->pending belong to transactions still running inside
  // an engine; their completions will find the connection closed and drop
  // the reply — the inflight_ bound still drains to zero (the shutdown
  // audit in tests/rt/rt_shutdown_test.cc pins this).
}

void RpcServer::scan_timeouts(Loop& lp) {
  const SimTime now = cluster_.env().now();
  for (const ConnPtr& c : lp.conns) {
    std::lock_guard<std::mutex> lk(c->mu);
    for (auto it = c->pending.begin(); it != c->pending.end();) {
      if (now > it->second) {
        Reply r{it->first, Status::kTimeout, 0};
        WireBuf tmp;
        tmp.bytes.swap(c->outbox);
        encode_reply(tmp, r);
        tmp.bytes.swap(c->outbox);
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        replies_.fetch_add(1, std::memory_order_relaxed);
        it = c->pending.erase(it);
      } else {
        ++it;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Request path
// ---------------------------------------------------------------------------

void RpcServer::reply_now(const ConnPtr& c, std::uint64_t id, Status st,
                          std::uint64_t inode) {
  // Loop-thread path: the connection's write buffer is loop-owned.
  Reply r{id, st, inode};
  encode_reply(c->wr, r);
}

void RpcServer::handle_request(const ConnPtr& c, const Request& req) {
  if (stopping_.load(std::memory_order_acquire)) {
    shed_shutdown_.fetch_add(1, std::memory_order_relaxed);
    replies_.fetch_add(1, std::memory_order_relaxed);
    reply_now(c, req.id, Status::kShutdown);
    return;
  }
  if (req.op == MsgType::kPing) {
    replies_.fetch_add(1, std::memory_order_relaxed);
    reply_now(c, req.id, Status::kOk);
    return;
  }

  const bool rename = req.op == MsgType::kRename;
  if (req.dir == 0 || req.name.empty() || (rename && req.dir2 == 0) ||
      (rename && req.name2.empty()) ||
      (req.op == MsgType::kCreateSpread && req.width > cluster_.size())) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    replies_.fetch_add(1, std::memory_order_relaxed);
    reply_now(c, req.id, Status::kBadRequest);
    return;
  }

  // Bounded in-flight admission: shed with BUSY instead of queueing.
  if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
      static_cast<std::int64_t>(cfg_.max_inflight)) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    busy_.fetch_add(1, std::memory_order_relaxed);
    replies_.fetch_add(1, std::memory_order_relaxed);
    reply_now(c, req.id, Status::kBusy);
    return;
  }

  {
    std::lock_guard<std::mutex> lk(c->mu);
    const SimTime deadline = cfg_.request_timeout > Duration::zero()
                                 ? cluster_.env().now() + cfg_.request_timeout
                                 : SimTime::max();
    if (!c->pending.emplace(req.id, deadline).second) {
      // Duplicate request id on one connection: client bug.
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      replies_.fetch_add(1, std::memory_order_relaxed);
      reply_now(c, req.id, Status::kBadRequest);
      return;
    }
  }

  const std::uint32_t worker = part_.home_of(ObjectId(req.dir)).value();
  cluster_.env().post(
      worker, [this, c, op = req.op, dir = req.dir, dir2 = req.dir2,
               name = std::string(req.name), name2 = std::string(req.name2),
               id = req.id, width = req.width]() mutable {
        submit_on_worker(c, op, dir, dir2, std::move(name), std::move(name2),
                         id, width);
      });
}

void RpcServer::submit_on_worker(const ConnPtr& c, MsgType op,
                                 std::uint64_t dir, std::uint64_t dir2,
                                 std::string name, std::string name2,
                                 std::uint64_t id, std::uint8_t width) {
  const NodeId self = part_.home_of(ObjectId(dir));
  MdsNode& node = cluster_.node(self);

  Transaction txn;
  std::uint64_t created = 0;
  switch (op) {
    case MsgType::kCreate:
    case MsgType::kMkdir: {
      created = next_inode_.fetch_add(1, std::memory_order_relaxed);
      txn = planner_.plan_create(ObjectId(dir), name, ObjectId(created),
                                 /*is_dir=*/op == MsgType::kMkdir,
                                 /*hint=*/id);
      break;
    }
    case MsgType::kCreateSpread: {
      // One width-participant transaction: the named file plus width-2
      // siblings on the width-1 nodes following the coordinator on the
      // ring.  A block of cluster_size() consecutive ids covers every ring
      // position exactly once, so each wanted home resolves to one id in
      // the block by arithmetic; the block's unused ids are never minted.
      const std::uint32_t n = cluster_.size();
      const std::uint64_t block =
          next_inode_.fetch_add(n, std::memory_order_relaxed);
      std::vector<std::pair<std::string, ObjectId>> entries;
      std::vector<NodeId> homes;
      entries.reserve(width - 1u);
      homes.reserve(width - 1u);
      for (std::uint8_t k = 1; k < width; ++k) {
        const NodeId want((self.value() + k) % n);
        // home_of(v) == want  <=>  (v - base) % n == (want + n - 1) % n.
        const std::uint64_t residue = (want.value() + n - 1u) % n;
        const std::uint64_t off = (block - part_.inode_base()) % n;
        const std::uint64_t inode = block + (residue + n - off) % n;
        entries.emplace_back(
            k == 1 ? name : name + ".s" + std::to_string(k - 1),
            ObjectId(inode));
        homes.push_back(want);
        if (k == 1) created = inode;
      }
      txn = planner_.plan_create_spread(ObjectId(dir), entries, homes);
      break;
    }
    case MsgType::kRemove: {
      const auto inode = node.store().mem_lookup(ObjectId(dir), name);
      if (!inode) {
        not_found_.fetch_add(1, std::memory_order_relaxed);
        complete(c, id, Status::kNotFound, 0);
        return;
      }
      txn = planner_.plan_delete(ObjectId(dir), name, *inode);
      break;
    }
    case MsgType::kRename: {
      const auto inode = node.store().mem_lookup(ObjectId(dir), name);
      if (!inode) {
        not_found_.fetch_add(1, std::memory_order_relaxed);
        complete(c, id, Status::kNotFound, 0);
        return;
      }
      // Overwrite detection needs the destination directory's store, which
      // lives on another worker when dir2 is homed elsewhere; only probe it
      // when co-located.  A racing destination entry aborts at validation,
      // which is the honest protocol answer.
      std::optional<ObjectId> overwritten;
      if (part_.home_of(ObjectId(dir2)) == self) {
        overwritten = node.store().mem_lookup(ObjectId(dir2), name2);
      }
      txn = planner_.plan_rename(ObjectId(dir), name, ObjectId(dir2), name2,
                                 *inode, overwritten);
      break;
    }
    default:
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      complete(c, id, Status::kBadRequest, 0);
      return;
  }

  node.engine().submit(
      std::move(txn), [this, c, id, created](TxnId, TxnOutcome outcome) {
        if (outcome == TxnOutcome::kCommitted) {
          committed_.fetch_add(1, std::memory_order_relaxed);
          complete(c, id, Status::kOk, created);
        } else {
          aborted_.fetch_add(1, std::memory_order_relaxed);
          complete(c, id, Status::kAborted, created);
        }
      });
}

void RpcServer::complete(const ConnPtr& c, std::uint64_t id, Status st,
                         std::uint64_t inode) {
  bool deliver = false;
  {
    std::lock_guard<std::mutex> lk(c->mu);
    const auto it = c->pending.find(id);
    if (it != c->pending.end()) {
      c->pending.erase(it);
      if (!c->closed) {
        // Encode straight into the outbox (swap trick reuses WireBuf's
        // encoder without copying the bytes twice).
        Reply r{id, st, inode};
        WireBuf tmp;
        tmp.bytes.swap(c->outbox);
        encode_reply(tmp, r);
        tmp.bytes.swap(c->outbox);
        replies_.fetch_add(1, std::memory_order_relaxed);
        deliver = true;
      }
    }
    // else: timed out (already answered) or connection raced away.
  }
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  if (deliver) wake(c->loop);
}

}  // namespace opc::rpc
