#include "chaos/runner.h"

#include "obs/assembler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace opc {
namespace {

bool parse_protocol(const std::string& s, ProtocolKind& out) {
  std::string lower = s;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (ProtocolKind p : kAllProtocolsExt) {
    std::string name(protocol_name(p));
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == name) {
      out = p;
      return true;
    }
  }
  return false;
}

}  // namespace

ChaosRunResult run_schedule(const ChaosRunConfig& cfg,
                            const FaultSchedule& schedule) {
  return run_schedule(cfg, schedule, nullptr);
}

ChaosRunResult run_schedule(const ChaosRunConfig& cfg,
                            const FaultSchedule& schedule,
                            obs::RunReport* report) {
  Simulator sim;
  StatsRegistry stats;
  TraceRecorder trace(true);  // hashes + trigger observers need the trace

  ClusterConfig cc;
  cc.n_nodes = cfg.n_nodes;
  cc.protocol = cfg.protocol;
  cc.seed = cfg.seed;
  cc.record_history = true;
  cc.acp.response_timeout = Duration::millis(300);
  cc.acp.retry_interval = Duration::millis(100);
  cc.acp.unsafe_skip_fencing = cfg.unsafe_skip_fencing;
  cc.heartbeat.enabled = true;
  cc.heartbeat.interval = Duration::millis(50);
  cc.heartbeat.suspicion_timeout = Duration::millis(250);
  obs::PhaseLog phase_log;
  if (report != nullptr) cc.phase_log = &phase_log;
  Cluster cluster(sim, cc, stats, trace);

  IdAllocator ids;
  HashPartitioner part(cfg.n_nodes);
  NamespacePlanner planner(part, OpCosts{});
  std::vector<ObjectId> dirs;
  for (std::uint32_t i = 0; i < cfg.n_dirs; ++i) {
    const ObjectId dir = ids.next();
    dirs.push_back(dir);
    cluster.bootstrap_directory(dir, part.home_of(dir));
  }

  ThroughputMeter meter;
  SourceConfig scfg;
  scfg.concurrency = cfg.concurrency;
  scfg.client_timeout = Duration::seconds(1);
  MixedSource source(cluster.env(), cluster, scfg, meter, stats, planner, ids, dirs,
                     MixedSource::Mix{0.6, 0.25}, cfg.seed, cfg.participants);

  Nemesis nemesis(sim, cluster, trace);
  nemesis.install(schedule);
  source.start();

  // Run past both the workload window and every bounded fault window, so no
  // timed fault fires into the healed, draining cluster.
  const Duration window =
      std::max(cfg.run_for, schedule.horizon() + Duration::seconds(1));
  sim.run_until(SimTime::zero() + window);
  source.stop();
  nemesis.disarm();
  nemesis.heal();

  // Drain to quiescence.  Crashed nodes are rebooted every round: a single
  // attempt is not enough because STONITH may still hold a victim down
  // (reboot_node no-ops until the fencing round releases it).
  bool drained = false;
  const SimTime deadline = sim.now() + Duration::seconds(600);
  while (sim.now() < deadline) {
    for (std::uint32_t i = 0; i < cluster.size(); ++i) {
      cluster.reboot_node(NodeId(i));
    }
    sim.run_for(Duration::seconds(1));
    bool quiescent = true;
    for (std::uint32_t i = 0; i < cluster.size(); ++i) {
      const NodeId id(i);
      if (!cluster.node(id).alive() ||
          cluster.engine(id).active_coordinations() != 0 ||
          cluster.engine(id).active_participations() != 0) {
        quiescent = false;
        break;
      }
    }
    if (quiescent) {
      drained = true;
      break;
    }
  }

  CheckContext ctx{cluster.env(), cluster, stats, dirs, drained,
                   [&sim](Duration d) { sim.run_for(d); }};
  ChaosRunResult r;
  r.failures = run_checkers(ctx);
  r.passed = r.failures.empty();
  r.committed = source.committed();
  r.aborted = source.aborted();
  r.lost = source.lost();
  r.triggers_fired = nemesis.triggers_fired();
  // Hash last: it covers the drain and the durability power cycle too, so a
  // replay must reproduce the *entire* history byte-for-byte.
  r.trace_hash = trace.history_hash();

  if (report != nullptr) {
    const obs::SpanSet spans = obs::assemble_spans(trace.events(), &phase_log);
    Histogram latency;
    for (std::uint32_t i = 0; i < cluster.size(); ++i) {
      latency.merge(cluster.engine(NodeId(i)).client_latency());
    }
    obs::ReportInputs in;
    in.meta.protocol = std::string(protocol_name(cfg.protocol));
    in.meta.workload = "chaos";
    in.meta.seed = cfg.seed;
    in.meta.nodes = static_cast<int>(cfg.n_nodes);
    in.meta.sim_duration_ns = sim.now().count_nanos();
    in.spans = &spans;
    in.stats = &stats;
    in.latency = &latency;
    in.committed = static_cast<std::int64_t>(r.committed);
    in.aborted = static_cast<std::int64_t>(r.aborted);
    in.lost = static_cast<std::int64_t>(r.lost);
    in.ops_per_second = meter.events_per_second_over(cfg.run_for);
    in.trace_hash = r.trace_hash;
    std::istringstream lines(render_schedule(schedule));
    for (std::string line; std::getline(lines, line);) {
      if (!line.empty()) in.faults.push_back(line);
    }
    *report = obs::build_report(in);
  }
  return r;
}

std::string render_repro(const ChaosRunConfig& cfg,
                         const FaultSchedule& schedule) {
  std::string out =
      "# opc chaos repro — replay with: opc chaos --replay <this file>\n";
  out += "proto=" + std::string(protocol_name(cfg.protocol)) + "\n";
  out += "nodes=" + std::to_string(cfg.n_nodes) + "\n";
  out += "seed=" + std::to_string(cfg.seed) + "\n";
  out += "concurrency=" + std::to_string(cfg.concurrency) + "\n";
  out += "dirs=" + std::to_string(cfg.n_dirs) + "\n";
  // Emitted only for wide runs so pre-existing repro files stay byte-stable.
  if (cfg.participants != 2) {
    out += "participants=" + std::to_string(cfg.participants) + "\n";
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "run_ns=%" PRId64 "\n",
                cfg.run_for.count_nanos());
  out += buf;
  if (cfg.unsafe_skip_fencing) out += "bug_skip_fencing=1\n";
  out += render_schedule(schedule);
  return out;
}

bool parse_repro(const std::string& text, ChaosRunConfig& cfg,
                 FaultSchedule& schedule) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("fault", 0) == 0 || line.rfind("trigger", 0) == 0) {
      if (!parse_schedule_line(line, schedule)) return false;
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    char* end = nullptr;
    if (key == "proto") {
      if (!parse_protocol(val, cfg.protocol)) return false;
    } else if (key == "nodes") {
      cfg.n_nodes = static_cast<std::uint32_t>(
          std::strtoul(val.c_str(), &end, 10));
      if (!end || *end != '\0') return false;
    } else if (key == "seed") {
      cfg.seed = std::strtoull(val.c_str(), &end, 10);
      if (!end || *end != '\0') return false;
    } else if (key == "concurrency") {
      cfg.concurrency = static_cast<std::uint32_t>(
          std::strtoul(val.c_str(), &end, 10));
      if (!end || *end != '\0') return false;
    } else if (key == "dirs") {
      cfg.n_dirs = static_cast<std::uint32_t>(
          std::strtoul(val.c_str(), &end, 10));
      if (!end || *end != '\0') return false;
    } else if (key == "participants") {
      cfg.participants = static_cast<std::uint32_t>(
          std::strtoul(val.c_str(), &end, 10));
      if (!end || *end != '\0') return false;
    } else if (key == "run_ns") {
      cfg.run_for = Duration::nanos(std::strtoll(val.c_str(), &end, 10));
      if (!end || *end != '\0') return false;
    } else if (key == "bug_skip_fencing") {
      cfg.unsafe_skip_fencing = (val == "1");
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace opc
