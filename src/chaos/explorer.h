// Property-based fault-schedule exploration.
//
// The explorer turns the deterministic simulator into a test *generator*:
// instead of hand-writing crash scenarios, it derives many schedules —
// seeded random walks over the fault vocabulary, plus systematic
// crash-point enumeration keyed off the trace of a fault-free probe run
// ("crash that worker right after its first forced WAL flush") — and runs
// each one as an independent deterministic simulation through the sweep
// runner's thread pool, applying the full checker battery to every run.
//
// Everything is a pure function of the master seed: the report (including
// its combined hash) is byte-identical across re-runs, and any failure
// carries the exact (config, schedule) pair needed to replay or shrink it.
#pragma once

#include "chaos/runner.h"
#include "sim/rng.h"

namespace opc {

struct ExplorerConfig {
  /// Template for every run; its `seed` is overridden per schedule.
  ChaosRunConfig base;
  std::uint32_t n_schedules = 100;  // random schedules to generate
  std::uint64_t seed = 42;          // master seed for the whole exploration
  std::uint32_t max_faults = 4;     // faults per random schedule (>= 1)
  /// Also enumerate systematic crash points from a fault-free probe run.
  bool systematic = false;
  std::uint32_t max_systematic = 64;  // cap on enumerated crash points
  unsigned threads = 0;               // 0 = hardware concurrency
};

struct ScheduleOutcome {
  std::uint32_t index = 0;     // position in the exploration
  std::uint64_t seed = 0;      // the run's workload/cluster seed
  bool systematic = false;     // came from crash-point enumeration
  FaultSchedule schedule;
  ChaosRunResult result;
};

struct ExplorationReport {
  std::vector<ScheduleOutcome> outcomes;  // in schedule order
  std::uint32_t passed = 0;
  std::uint32_t failed = 0;

  /// FNV-1a over every run's trace hash, in order — one number that must
  /// be identical across re-runs with the same master seed.
  std::uint64_t combined_hash = 0;

  [[nodiscard]] const ScheduleOutcome* first_failure() const;
};

/// Draws one random schedule from the full fault vocabulary.
[[nodiscard]] FaultSchedule random_schedule(Rng& rng,
                                            const ChaosRunConfig& base,
                                            std::uint32_t max_faults);

/// Enumerates single-crash trigger schedules from the trace of a
/// fault-free probe run of `base`: one schedule per (node, occurrence)
/// of the crash-worthy trace points (forced-write start/completion,
/// message send) seen in the probe, capped at `limit`.
[[nodiscard]] std::vector<FaultSchedule> enumerate_crash_points(
    const ChaosRunConfig& base, std::uint32_t limit);

/// Generates and runs the whole exploration.  Deterministic.
[[nodiscard]] ExplorationReport explore(const ExplorerConfig& cfg);

}  // namespace opc
