#include "chaos/nemesis.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace opc {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kDiskDegrade: return "disk_degrade";
    case FaultKind::kHeartbeatMute: return "heartbeat_mute";
    case FaultKind::kMessageLoss: return "message_loss";
    case FaultKind::kDelayJitter: return "delay_jitter";
  }
  return "?";
}

Duration FaultSchedule::horizon() const {
  Duration h = Duration::zero();
  for (const FaultEvent& e : events) {
    Duration end = e.at + e.duration;
    if (end > h) h = end;
  }
  for (const TraceTrigger& t : triggers) {
    // Fire time is history-dependent; only the post-fire tail is knowable.
    Duration tail = t.delay + t.reboot_after;
    if (tail > h) h = tail;
  }
  return h;
}

namespace {

bool parse_fault_kind(std::string_view s, FaultKind& out) {
  for (int i = 0; i <= static_cast<int>(FaultKind::kDelayJitter); ++i) {
    const auto k = static_cast<FaultKind>(i);
    if (s == fault_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

bool parse_trace_kind(std::string_view s, TraceKind& out) {
  for (int i = 0; i <= static_cast<int>(TraceKind::kInfo); ++i) {
    const auto k = static_cast<TraceKind>(i);
    if (s == trace_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

/// "%.17g" round-trips every finite double exactly.
std::string render_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Splits "key=value" tokens; returns false if any token lacks '='.
bool split_kv(const std::string& line,
              std::vector<std::pair<std::string, std::string>>& out) {
  std::istringstream in(line);
  std::string tok;
  in >> tok;  // the already-checked "fault"/"trigger" tag
  while (in >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == tok.size()) {
      return false;  // "k=" with no value is malformed, not a zero
    }
    out.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
  }
  return true;
}

}  // namespace

std::string render_schedule(const FaultSchedule& s) {
  std::string out;
  char buf[64];
  for (const FaultEvent& e : s.events) {
    out += "fault kind=";
    out += fault_kind_name(e.kind);
    if (e.node != kNoNode) {
      out += " node=" + std::to_string(e.node.value());
    }
    if (e.kind == FaultKind::kPartition) {
      out += " peer=" + std::to_string(e.peer.value());
      if (e.asymmetric) out += " asym=1";
    }
    std::snprintf(buf, sizeof(buf), " at_ns=%" PRId64 " dur_ns=%" PRId64,
                  e.at.count_nanos(), e.duration.count_nanos());
    out += buf;
    if (e.magnitude != 0.0) out += " mag=" + render_double(e.magnitude);
    out += '\n';
  }
  for (const TraceTrigger& t : s.triggers) {
    out += "trigger on=";
    out += trace_kind_name(t.on);
    out += " actor=" + t.actor;
    out += " n=" + std::to_string(t.occurrence);
    out += " victim=" + std::to_string(t.victim.value());
    std::snprintf(buf, sizeof(buf),
                  " delay_ns=%" PRId64 " reboot_ns=%" PRId64,
                  t.delay.count_nanos(), t.reboot_after.count_nanos());
    out += buf;
    out += '\n';
  }
  return out;
}

bool parse_schedule_line(const std::string& line, FaultSchedule& out) {
  std::istringstream probe(line);
  std::string tag;
  probe >> tag;
  if (tag != "fault" && tag != "trigger") return false;

  std::vector<std::pair<std::string, std::string>> kvs;
  if (!split_kv(line, kvs)) return false;

  auto as_i64 = [](const std::string& v, std::int64_t& dst) {
    char* end = nullptr;
    dst = std::strtoll(v.c_str(), &end, 10);
    return end && *end == '\0';
  };
  auto as_u32 = [&](const std::string& v, std::uint32_t& dst) {
    std::int64_t x = 0;
    if (!as_i64(v, x) || x < 0 || x > UINT32_MAX) return false;
    dst = static_cast<std::uint32_t>(x);
    return true;
  };

  if (tag == "fault") {
    FaultEvent e;
    for (const auto& [k, v] : kvs) {
      std::int64_t i = 0;
      std::uint32_t u = 0;
      if (k == "kind") {
        if (!parse_fault_kind(v, e.kind)) return false;
      } else if (k == "node") {
        if (!as_u32(v, u)) return false;
        e.node = NodeId(u);
      } else if (k == "peer") {
        if (!as_u32(v, u)) return false;
        e.peer = NodeId(u);
      } else if (k == "at_ns") {
        if (!as_i64(v, i)) return false;
        e.at = Duration::nanos(i);
      } else if (k == "dur_ns") {
        if (!as_i64(v, i)) return false;
        e.duration = Duration::nanos(i);
      } else if (k == "mag") {
        char* end = nullptr;
        e.magnitude = std::strtod(v.c_str(), &end);
        if (!end || *end != '\0') return false;
      } else if (k == "asym") {
        e.asymmetric = (v == "1");
      } else {
        return false;
      }
    }
    out.events.push_back(e);
    return true;
  }

  TraceTrigger t;
  for (const auto& [k, v] : kvs) {
    std::int64_t i = 0;
    std::uint32_t u = 0;
    if (k == "on") {
      if (!parse_trace_kind(v, t.on)) return false;
    } else if (k == "actor") {
      t.actor = v;
    } else if (k == "n") {
      if (!as_u32(v, t.occurrence)) return false;
    } else if (k == "victim") {
      if (!as_u32(v, u)) return false;
      t.victim = NodeId(u);
    } else if (k == "delay_ns") {
      if (!as_i64(v, i)) return false;
      t.delay = Duration::nanos(i);
    } else if (k == "reboot_ns") {
      if (!as_i64(v, i)) return false;
      t.reboot_after = Duration::nanos(i);
    } else {
      return false;
    }
  }
  out.triggers.push_back(std::move(t));
  return true;
}

FaultSchedule parse_schedule(const std::string& text) {
  FaultSchedule s;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    (void)parse_schedule_line(line, s);  // non-schedule lines are config
  }
  return s;
}

void Nemesis::install(const FaultSchedule& schedule) {
  SIM_CHECK_MSG(!installed_, "Nemesis::install called twice");
  installed_ = true;

  const NetworkConfig& base = cluster_.config().net;
  for (const FaultEvent& e : schedule.events) {
    const Duration until = e.duration > Duration::zero()
                               ? e.at + e.duration
                               : Duration::zero();
    switch (e.kind) {
      case FaultKind::kCrash:
        cluster_.schedule_crash(e.node, e.at, e.duration);
        break;
      case FaultKind::kPartition:
        cluster_.schedule_partition(e.node, e.peer, e.at, until,
                                    e.asymmetric);
        break;
      case FaultKind::kDiskDegrade:
        cluster_.schedule_disk_degrade(e.node, e.at, until, e.magnitude);
        break;
      case FaultKind::kHeartbeatMute:
        cluster_.schedule_heartbeat_mute(e.node, e.at, until);
        break;
      case FaultKind::kMessageLoss: {
        const double p = e.magnitude;
        sim_.schedule_after(e.at, [this, p] {
          trace_.record(sim_.now(), TraceKind::kInfo, "nemesis",
                        "message loss p=" + render_double(p));
          cluster_.network().set_loss_probability(p);
        });
        if (until > e.at) {
          sim_.schedule_after(until, [this, base] {
            trace_.record(sim_.now(), TraceKind::kInfo, "nemesis",
                          "message loss restored");
            cluster_.network().set_loss_probability(base.loss_probability);
          });
        }
        break;
      }
      case FaultKind::kDelayJitter: {
        const Duration j =
            Duration::nanos(static_cast<std::int64_t>(e.magnitude * 1000.0));
        sim_.schedule_after(e.at, [this, j] {
          trace_.record(sim_.now(), TraceKind::kInfo, "nemesis",
                        "delay jitter up to " +
                            std::to_string(j.count_nanos()) + "ns");
          cluster_.network().set_jitter_max(j);
        });
        if (until > e.at) {
          sim_.schedule_after(until, [this, base] {
            trace_.record(sim_.now(), TraceKind::kInfo, "nemesis",
                          "delay jitter restored");
            cluster_.network().set_jitter_max(base.jitter_max);
          });
        }
        break;
      }
    }
  }

  if (!schedule.triggers.empty()) {
    armed_.clear();
    for (const TraceTrigger& t : schedule.triggers) {
      armed_.push_back(Armed{t, 0, false});
    }
    observing_ = true;
    trace_.set_observer(
        [this](const TraceEvent& ev) { on_trace_event(ev); });
  }
}

void Nemesis::on_trace_event(const TraceEvent& ev) {
  for (Armed& a : armed_) {
    if (a.fired || ev.kind != a.spec.on || ev.actor != a.spec.actor) continue;
    if (++a.seen < a.spec.occurrence) continue;
    a.fired = true;
    ++fired_;
    // Never mutate cluster state synchronously from inside trace recording
    // (we may be deep in a disk or network completion); schedule_crash goes
    // through the event queue, so even delay==0 fires after this event.
    cluster_.schedule_crash(a.spec.victim, a.spec.delay, a.spec.reboot_after);
  }
}

void Nemesis::disarm() {
  if (!observing_) return;
  observing_ = false;
  trace_.set_observer(nullptr);
}

void Nemesis::heal() {
  const NetworkConfig& base = cluster_.config().net;
  cluster_.network().heal_all();
  cluster_.network().set_loss_probability(base.loss_probability);
  cluster_.network().set_jitter_max(base.jitter_max);
  for (std::uint32_t i = 0; i < cluster_.size(); ++i) {
    const NodeId id(i);
    cluster_.storage().partition(id).device().set_degrade_factor(1.0);
    cluster_.node(id).set_heartbeat_muted(false);
  }
}

}  // namespace opc
