#include "chaos/shrinker.h"

#include <algorithm>

namespace opc {
namespace {

/// One schedule item: false = events[idx], true = triggers[idx].
struct Item {
  bool is_trigger = false;
  std::size_t idx = 0;
};

FaultSchedule build(const FaultSchedule& orig, const std::vector<Item>& items) {
  FaultSchedule s;
  for (const Item& it : items) {
    if (it.is_trigger) {
      s.triggers.push_back(orig.triggers[it.idx]);
    } else {
      s.events.push_back(orig.events[it.idx]);
    }
  }
  return s;
}

}  // namespace

ShrinkResult shrink(const ChaosRunConfig& cfg, const FaultSchedule& failing) {
  ShrinkResult out;

  std::vector<Item> items;
  for (std::size_t i = 0; i < failing.events.size(); ++i) {
    items.push_back({false, i});
  }
  for (std::size_t i = 0; i < failing.triggers.size(); ++i) {
    items.push_back({true, i});
  }

  auto test = [&](const std::vector<Item>& subset, ChaosRunResult& result) {
    result = run_schedule(cfg, build(failing, subset));
    ++out.runs;
    return !result.passed;
  };

  ChaosRunResult current;
  if (!test(items, current)) {
    out.minimal = failing;
    out.result = current;
    return out;  // input does not fail — nothing to shrink
  }
  out.input_failed = true;

  // ddmin: split into n chunks, try each complement; keep any complement
  // that still fails, refine granularity otherwise.
  std::size_t n = 2;
  while (items.size() >= 2) {
    const std::size_t chunk = (items.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t start = 0; start < items.size(); start += chunk) {
      std::vector<Item> complement;
      complement.reserve(items.size());
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i < start || i >= start + chunk) complement.push_back(items[i]);
      }
      if (complement.empty()) continue;
      ChaosRunResult result;
      if (test(complement, result)) {
        items = std::move(complement);
        current = std::move(result);
        n = std::max<std::size_t>(n - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= items.size()) break;  // 1-minimal: no single item removable
      n = std::min(n * 2, items.size());
    }
  }

  out.minimal = build(failing, items);
  out.result = std::move(current);
  return out;
}

}  // namespace opc
