// One chaos run: cluster + mixed workload + one FaultSchedule + checkers.
//
// run_schedule() is a pure function of (ChaosRunConfig, FaultSchedule):
// it builds a fresh deterministic simulation, injects the schedule through
// the Nemesis, heals, drains, and hands the end state to the full checker
// battery.  Equal inputs produce byte-identical ChaosRunResults (including
// the trace hash), which is what makes exploration reports reproducible
// and shrinking sound.
//
// A (config, schedule) pair round-trips through a textual *repro file*
// (render_repro/parse_repro) so a failure found by the explorer can be
// replayed exactly with `opc chaos --replay <file>`.
#pragma once

#include "chaos/checker.h"
#include "chaos/nemesis.h"
#include "obs/report.h"
#include "workload/source.h"

namespace opc {

struct ChaosRunConfig {
  ProtocolKind protocol = ProtocolKind::kOnePC;
  std::uint32_t n_nodes = 3;
  std::uint64_t seed = 1;
  std::uint32_t concurrency = 6;
  std::uint32_t n_dirs = 4;
  /// Participants per CREATE (2 = classic two-MDS; >2 spreads each create
  /// over participants-1 distinct worker nodes).  Must be <= n_nodes.
  std::uint32_t participants = 2;
  Duration run_for = Duration::seconds(8);  // fault + workload window
  /// TEST-ONLY: forwarded to AcpConfig::unsafe_skip_fencing, so the bug
  /// the fencing oracle exists to catch can be demonstrated on demand.
  bool unsafe_skip_fencing = false;

  [[nodiscard]] bool operator==(const ChaosRunConfig&) const = default;
};

struct ChaosRunResult {
  bool passed = false;
  std::vector<CheckFailure> failures;
  std::uint64_t trace_hash = 0;   // FNV-1a over the full trace
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t lost = 0;
  std::uint32_t triggers_fired = 0;
};

/// Runs one schedule to completion and checks it.  Deterministic.
[[nodiscard]] ChaosRunResult run_schedule(const ChaosRunConfig& cfg,
                                          const FaultSchedule& schedule);

/// Same run, but additionally assembles the observability RunReport —
/// spans from the (already recorded) trace plus engine phase annotations,
/// joined with counters, and with the injected fault schedule attached
/// (docs/OBSERVABILITY.md §4 `faults`).  The report path changes nothing
/// about the simulation: trace hashes are identical with and without it.
[[nodiscard]] ChaosRunResult run_schedule(const ChaosRunConfig& cfg,
                                          const FaultSchedule& schedule,
                                          obs::RunReport* report);

/// Serializes config + schedule as a replayable repro file.
[[nodiscard]] std::string render_repro(const ChaosRunConfig& cfg,
                                       const FaultSchedule& schedule);

/// Parses a repro file.  Returns false on a malformed config line; the
/// schedule is whatever fault/trigger lines parsed.
[[nodiscard]] bool parse_repro(const std::string& text, ChaosRunConfig& cfg,
                               FaultSchedule& schedule);

}  // namespace opc
