// Oracle battery run after every chaos schedule.
//
// A chaos run is only as good as its checkers: each completed simulation
// (faults injected, healed, drained to quiescence) is handed to the full
// battery, and any failure is recorded with the seed and schedule that
// produced it so the shrinker can minimize it.
//
// Oracles, in check order:
//   quiescence      — the cluster drained: no engine holds an active
//                     coordination or participation, every node is back up.
//   invariants      — namespace invariants over all stable state
//                     (dentry/inode agreement, nlink counts, no orphans).
//   serializability — the committed history is conflict-serializable.
//   fencing         — no node ever read a *foreign* log partition without
//                     fencing it first (the paper's §III-A STONITH rule;
//                     an unfenced foreign read is the split-brain hazard).
//   durability      — power-cycling the whole cluster and recovering from
//                     the logs reproduces the exact stable state (replay
//                     is exercised end-to-end, and must be idempotent).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "env/env.h"

namespace opc {

struct CheckFailure {
  std::string oracle;  // "quiescence", "invariants", ...
  std::string detail;
};

[[nodiscard]] std::string render_failures(
    const std::vector<CheckFailure>& failures);

struct CheckContext {
  Env& env;  // executor clock for deadlines (the cluster's SimEnv today)
  Cluster& cluster;
  StatsRegistry& stats;
  std::vector<ObjectId> roots;  // directory roots for the invariant walk
  bool drained = false;         // did the runner's drain loop quiesce?
  /// Drives the underlying executor forward by `d`; the durability oracle
  /// uses it to let the power-cycled cluster replay its logs.  Supplied by
  /// the run loop's owner (sim.run_for for the simulation backend).
  std::function<void(Duration)> drive;
};

/// Runs the full battery; returns every failure (empty == all green).
/// The durability oracle mutates the cluster (full power cycle) — run it
/// last and do not reuse the cluster for measurements afterwards.
[[nodiscard]] std::vector<CheckFailure> run_checkers(CheckContext& ctx);

}  // namespace opc
